// Command epg is the easy-parallel-graph-* CLI. Its subcommands
// mirror the five single-shell-command phases of the paper's Fig. 1:
//
//	epg gen        -dataset kron-16 -out graph.snap        # generate
//	epg homogenize -in graph.snap -outdir data/            # convert per engine
//	epg run        -dataset kron-16 -alg BFS -threads 32   # run + parse
//	epg sweep      -dataset kron-18 -alg BFS               # Figs. 5/6
//	epg analyze    -csv results.csv -alg BFS               # figures/tables
//
// (Installation, phase 1 of the original, is `go build` here.)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/hpcl-repro/epg"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "homogenize":
		err = cmdHomogenize(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "epg: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "epg: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: epg <gen|homogenize|run|sweep|analyze> [flags]

  gen         generate a dataset and write it in SNAP format
  homogenize  convert a SNAP file into every engine's format
  run         run an algorithm across engines, emit CSV and figures
  sweep       thread-count sweep for the scalability figures
  analyze     render figures/tables from a results CSV

Run 'epg <subcommand> -h' for flags.
`)
}

func newSuite(divisor int, seed uint64) *epg.Suite {
	return epg.NewSuite(epg.Options{RealWorldDivisor: divisor, Seed: seed, Warnings: os.Stderr})
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	dataset := fs.String("dataset", "kron-16", "dataset name (kron-<scale>, dota-league, cit-Patents)")
	out := fs.String("out", "", "output SNAP file (default stdout)")
	divisor := fs.Int("divisor", 64, "real-world dataset scale divisor (1 = full size)")
	seed := fs.Uint64("seed", 1, "generation seed")
	fs.Parse(args)

	s := newSuite(*divisor, *seed)
	g, err := s.Dataset(*dataset)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := s.Homogenize(w, g, "snap"); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %s: %d vertices, %d edges\n", *dataset, g.NumVertices(), g.NumEdges())
	return nil
}

func cmdHomogenize(args []string) error {
	fs := flag.NewFlagSet("homogenize", flag.ExitOnError)
	in := fs.String("in", "", "input SNAP file")
	outdir := fs.String("outdir", ".", "output directory")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("homogenize: -in required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	s := newSuite(64, 1)
	g, err := s.ReadSNAP(f, filepath.Base(*in))
	if err != nil {
		return err
	}
	for _, format := range epg.Formats() {
		path := filepath.Join(*outdir, strings.TrimSuffix(filepath.Base(*in), ".snap")+"."+format)
		out, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := s.Homogenize(out, g, format); err != nil {
			out.Close()
			return err
		}
		out.Close()
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	dataset := fs.String("dataset", "kron-16", "dataset name")
	alg := fs.String("alg", "BFS", "algorithm (BFS, SSSP, PR, CDLP, LCC, WCC)")
	threads := fs.Int("threads", 32, "virtual thread count")
	roots := fs.Int("roots", 32, "roots / trials")
	enginesFlag := fs.String("engines", "", "comma-separated engine subset")
	csvPath := fs.String("csv", "", "write the phase-4 CSV here")
	measurePower := fs.Bool("power", false, "meter power per root (Table III, Fig. 9)")
	divisor := fs.Int("divisor", 64, "real-world dataset scale divisor")
	seed := fs.Uint64("seed", 1, "seed")
	sched := fs.String("sched", "", "force a scheduling policy on every region (static, dynamic, steal, numa)")
	sockets := fs.Int("sockets", 0, "virtual socket count for the locality model (0 = one socket, no penalties)")
	remotePenalty := fs.Float64("remote-penalty", 0, "remote-chunk-access bytes multiplier (0 = model default)")
	grain := fs.String("grain", "", "region grain policy: fixed (engine defaults) or adaptive (frontier-proportional)")
	placement := fs.String("placement", "", "locality model for resident data: none (steals only) or firsttouch (page ownership; needs -sockets > 1)")
	freq := fs.String("freq", "", "modeled DVFS operating point: turbo (default), balanced, or powersave — scales core clocks and CPU dynamic power together")
	syncSSSP := fs.Bool("sync-sssp", false, "synchronous deterministic SSSP in GAP and GraphBIG")
	compress := fs.Bool("compress", false, "delta+varint compressed adjacency in GAP and Graph500 BFS/PR (decode-aware cost model)")
	nodes := fs.Int("nodes", 0, "virtual cluster node count for the modeled distributed-memory mode (0/1 = single box)")
	partition := fs.String("partition", "", "cluster partition scheme: 1d (blocked vertex ranges) or 2d (greedy vertex-cut homes); needs -nodes > 1")
	mutations := fs.String("mutations", "", "streaming phase 'BxS@F': B batches of S edge mutations with delete fraction F (e.g. 4x64@0.25); PR and WCC only")
	fs.Parse(args)

	s := newSuite(*divisor, *seed)
	g, err := s.Dataset(*dataset)
	if err != nil {
		return err
	}
	spec := epg.Spec{
		Dataset:       *dataset,
		Algorithm:     epg.Algorithm(*alg),
		Threads:       *threads,
		Roots:         *roots,
		Seed:          *seed,
		MeasurePower:  *measurePower,
		Sched:         *sched,
		Sockets:       *sockets,
		RemotePenalty: *remotePenalty,
		Grain:         *grain,
		Placement:     *placement,
		FreqState:     *freq,
		SyncSSSP:      *syncSSSP,
		Compress:      *compress,
		Nodes:         *nodes,
		Partition:     *partition,
	}
	if *enginesFlag != "" {
		spec.Engines = strings.Split(*enginesFlag, ",")
	}
	if *mutations != "" {
		ms, err := parseMutations(*mutations, *seed)
		if err != nil {
			return err
		}
		spec.Mutations = ms
	}
	results, err := s.Run(spec, g)
	if err != nil {
		return err
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := epg.WriteCSV(f, results); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d rows)\n", *csvPath, len(results))
	}
	renderFor(spec.Algorithm, s, results, *measurePower)
	return nil
}

// parseMutations parses the -mutations syntax "BxS@F" into a schedule
// seeded from the run seed.
func parseMutations(s string, seed uint64) (*epg.MutationSchedule, error) {
	bad := func() error {
		return fmt.Errorf("run: bad -mutations %q (want BxS@F, e.g. 4x64@0.25)", s)
	}
	body, fracStr, hasFrac := strings.Cut(s, "@")
	bStr, sizeStr, ok := strings.Cut(body, "x")
	if !ok {
		return nil, bad()
	}
	batches, err := strconv.Atoi(bStr)
	if err != nil {
		return nil, bad()
	}
	size, err := strconv.Atoi(sizeStr)
	if err != nil {
		return nil, bad()
	}
	frac := 0.0
	if hasFrac {
		if frac, err = strconv.ParseFloat(fracStr, 64); err != nil {
			return nil, bad()
		}
	}
	return &epg.MutationSchedule{Batches: batches, BatchSize: size, DeleteFrac: frac, Seed: seed}, nil
}

func renderFor(alg epg.Algorithm, s *epg.Suite, results []epg.Result, withPower bool) {
	title := fmt.Sprintf("%s Time (s)", alg)
	epg.RenderTimeFigure(os.Stdout, title, results)
	fmt.Println()
	epg.RenderConstructionFigure(os.Stdout, fmt.Sprintf("%s Data Structure Construction (s)", alg), results)
	if alg == epg.PageRank || alg == epg.CDLP {
		fmt.Println()
		epg.RenderIterationsFigure(os.Stdout, fmt.Sprintf("%s Iterations", alg), results)
	}
	if withPower {
		fmt.Println()
		s.RenderEnergyTable(os.Stdout, results)
		fmt.Println()
		s.RenderPowerFigure(os.Stdout, results)
	}
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	dataset := fs.String("dataset", "kron-18", "dataset name")
	alg := fs.String("alg", "BFS", "algorithm")
	threadsFlag := fs.String("threads", "1,2,4,8,16,32,64,72", "thread counts")
	trials := fs.Int("trials", 4, "trials per point (the paper used 4)")
	enginesFlag := fs.String("engines", "", "comma-separated engine subset")
	divisor := fs.Int("divisor", 64, "real-world dataset scale divisor")
	seed := fs.Uint64("seed", 1, "seed")
	fs.Parse(args)

	var threadCounts []int
	for _, tok := range strings.Split(*threadsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return fmt.Errorf("sweep: bad thread count %q", tok)
		}
		threadCounts = append(threadCounts, n)
	}
	s := newSuite(*divisor, *seed)
	g, err := s.Dataset(*dataset)
	if err != nil {
		return err
	}
	spec := epg.Spec{Dataset: *dataset, Algorithm: epg.Algorithm(*alg), Seed: *seed}
	if *enginesFlag != "" {
		spec.Engines = strings.Split(*enginesFlag, ",")
	}
	series, err := s.Sweep(spec, g, threadCounts, *trials)
	if err != nil {
		return err
	}
	return epg.RenderScalingFigure(os.Stdout,
		fmt.Sprintf("%s scalability on %s (Figs. 5/6)", *alg, *dataset), series)
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	csvPath := fs.String("csv", "", "results CSV from 'epg run'")
	withPower := fs.Bool("power", false, "render the energy table and power figure")
	fs.Parse(args)
	if *csvPath == "" {
		return fmt.Errorf("analyze: -csv required")
	}
	f, err := os.Open(*csvPath)
	if err != nil {
		return err
	}
	defer f.Close()
	results, err := epg.ReadCSV(f)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("analyze: empty CSV")
	}
	s := newSuite(64, 1)
	// Datasets may be mixed (Fig. 8); group by algorithm+dataset.
	byAlg := map[epg.Algorithm][]epg.Result{}
	for _, r := range results {
		byAlg[r.Algorithm] = append(byAlg[r.Algorithm], r)
	}
	multiDataset := map[string]bool{}
	for _, r := range results {
		multiDataset[r.Dataset] = true
	}
	if len(multiDataset) > 1 {
		epg.RenderRealWorldFigure(os.Stdout, results)
		return nil
	}
	for alg, rs := range byAlg {
		renderFor(alg, s, rs, *withPower)
	}
	return nil
}
