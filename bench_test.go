// Benchmark harness: one benchmark per table and figure of the
// paper's evaluation section. Each benchmark regenerates the
// corresponding artifact and reports the modeled metric the paper
// tabulates (modeled seconds on the 72-thread Haswell analogue,
// joules, iterations) via b.ReportMetric, alongside Go's wall-time
// measurement of this process.
//
// Scales default to laptop-size graphs so `go test -bench=.` finishes
// quickly; set EPG_BENCH_SCALE (e.g. 22) and EPG_BENCH_DIVISOR (e.g.
// 1) to reproduce the paper's full-size runs.
package epg_test

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"github.com/hpcl-repro/epg"
	"github.com/hpcl-repro/epg/internal/core"
	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/engines/gap"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/harness"
	"github.com/hpcl-repro/epg/internal/kronecker"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

func benchScale() int {
	if s := os.Getenv("EPG_BENCH_SCALE"); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return 14
}

func benchDivisor() int {
	if s := os.Getenv("EPG_BENCH_DIVISOR"); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return 128
}

func suite() *epg.Suite {
	return epg.NewSuite(epg.Options{RealWorldDivisor: benchDivisor(), Seed: 1})
}

func kronName() string { return fmt.Sprintf("kron-%d", benchScale()) }

func meanModeled(results []epg.Result) float64 {
	if len(results) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range results {
		sum += r.AlgorithmSec
	}
	return sum / float64(len(results))
}

// BenchmarkTable1 regenerates Table I: the Graphalytics-methodology
// single-run grid on the two real-world datasets (platforms GraphBIG,
// PowerGraph, GraphMat x six algorithms; SSSP N/A on cit-Patents).
func BenchmarkTable1(b *testing.B) {
	s := suite()
	for i := 0; i < b.N; i++ {
		var cells []epg.GraphalyticsCell
		for _, name := range []string{"cit-Patents", "dota-league"} {
			g, err := s.Dataset(name)
			if err != nil {
				b.Fatal(err)
			}
			cs, err := s.Graphalytics(g, 32)
			if err != nil {
				b.Fatal(err)
			}
			cells = append(cells, cs...)
		}
		if i == 0 {
			var total, na float64
			for _, c := range cells {
				if c.NA {
					na++
					continue
				}
				total += c.Seconds
			}
			b.ReportMetric(total, "modeled_s_total")
			b.ReportMetric(na, "na_cells")
			epg.RenderGraphalyticsTable(io.Discard, "Table I", cells)
		}
	}
}

// BenchmarkTable2 regenerates Table II: Graphalytics on the Kronecker
// graph (the paper's scale 22).
func BenchmarkTable2(b *testing.B) {
	s := suite()
	g, err := s.Dataset(kronName())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		cells, err := s.Graphalytics(g, 32)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var total float64
			for _, c := range cells {
				total += c.Seconds
			}
			b.ReportMetric(total, "modeled_s_total")
		}
	}
}

// BenchmarkTable3 regenerates Table III: per-root power and energy
// during BFS for GAP, Graph500, GraphBIG, GraphMat.
func BenchmarkTable3(b *testing.B) {
	s := suite()
	g, err := s.Dataset(kronName())
	if err != nil {
		b.Fatal(err)
	}
	spec := epg.Spec{Algorithm: epg.BFS, Threads: 32, Roots: 8, MeasurePower: true}
	for i := 0; i < b.N; i++ {
		results, err := s.Run(spec, g)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var joules float64
			for _, r := range results {
				joules += r.CPUJoules + r.RAMJoules
			}
			b.ReportMetric(joules/float64(len(results)), "J_per_root_mean")
			s.RenderEnergyTable(io.Discard, results)
		}
	}
}

// benchAlgorithmFigure measures one engine's algorithm runs (the
// Figs. 2-4 panels) and reports the modeled mean.
func benchAlgorithmFigure(b *testing.B, alg epg.Algorithm, engine string, roots int) {
	s := suite()
	g, err := s.Dataset(kronName())
	if err != nil {
		b.Fatal(err)
	}
	spec := epg.Spec{Algorithm: alg, Threads: 32, Roots: roots, Engines: []string{engine}}
	for i := 0; i < b.N; i++ {
		results, err := s.Run(spec, g)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(meanModeled(results), "modeled_s_mean")
			if results[0].HasConstruction {
				b.ReportMetric(results[0].ConstructionSec, "construction_s")
			}
			if results[0].Iterations > 0 {
				b.ReportMetric(float64(results[0].Iterations), "iterations")
			}
		}
	}
}

// BenchmarkFig2BFS regenerates Fig. 2: BFS time and construction
// panels, one sub-benchmark per engine in the figure.
func BenchmarkFig2BFS(b *testing.B) {
	for _, engine := range []string{"GAP", "Graph500", "GraphBIG", "GraphMat"} {
		b.Run(engine, func(b *testing.B) {
			benchAlgorithmFigure(b, epg.BFS, engine, 8)
		})
	}
}

// BenchmarkFig3SSSP regenerates Fig. 3: SSSP time and construction.
func BenchmarkFig3SSSP(b *testing.B) {
	for _, engine := range []string{"GAP", "GraphBIG", "GraphMat", "PowerGraph"} {
		b.Run(engine, func(b *testing.B) {
			benchAlgorithmFigure(b, epg.SSSP, engine, 8)
		})
	}
}

// BenchmarkFig4PageRank regenerates Fig. 4: PageRank time and
// iteration counts (GraphMat's run-until-no-change rule shows up in
// the iterations metric).
func BenchmarkFig4PageRank(b *testing.B) {
	for _, engine := range []string{"GAP", "PowerGraph", "GraphBIG", "GraphMat"} {
		b.Run(engine, func(b *testing.B) {
			benchAlgorithmFigure(b, epg.PageRank, engine, 2)
		})
	}
}

// BenchmarkFig5and6Scaling regenerates Figs. 5/6: the BFS strong-
// scaling sweep across thread counts with four trials per point,
// reporting each engine's 72-thread speedup.
func BenchmarkFig5and6Scaling(b *testing.B) {
	s := suite()
	g, err := s.Dataset(kronName())
	if err != nil {
		b.Fatal(err)
	}
	threads := []int{1, 2, 4, 8, 16, 32, 64, 72}
	for i := 0; i < b.N; i++ {
		series, err := s.Sweep(epg.Spec{Algorithm: epg.BFS}, g, threads, 4)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for eng, pts := range series {
				if t1, ok := pts[1]; ok {
					if t72, ok := pts[72]; ok && t72 > 0 {
						b.ReportMetric(t1/t72, "speedup72_"+eng)
					}
				}
			}
			if err := epg.RenderScalingFigure(io.Discard, "Figs 5/6", series); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig7HTMLReport regenerates Fig. 7: the per-platform
// Graphalytics HTML page.
func BenchmarkFig7HTMLReport(b *testing.B) {
	s := suite()
	g, err := s.Dataset("dota-league")
	if err != nil {
		b.Fatal(err)
	}
	cells, err := s.Graphalytics(g, 32)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := epg.RenderGraphalyticsHTML(io.Discard, "GraphBIG", cells); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8RealWorld regenerates Fig. 8: BFS/PR/SSSP across the
// two real-world datasets.
func BenchmarkFig8RealWorld(b *testing.B) {
	s := suite()
	for i := 0; i < b.N; i++ {
		var results []epg.Result
		for _, dataset := range []string{"dota-league", "cit-Patents"} {
			g, err := s.Dataset(dataset)
			if err != nil {
				b.Fatal(err)
			}
			for _, alg := range []epg.Algorithm{epg.BFS, epg.PageRank, epg.SSSP} {
				if alg == epg.SSSP && !g.Weighted() {
					continue
				}
				rs, err := s.Run(epg.Spec{Algorithm: alg, Threads: 32, Roots: 4}, g)
				if err != nil {
					b.Fatal(err)
				}
				results = append(results, rs...)
			}
		}
		if i == 0 {
			b.ReportMetric(float64(len(results)), "rows")
			epg.RenderRealWorldFigure(io.Discard, results)
		}
	}
}

// BenchmarkFig9Power regenerates Fig. 9: CPU and RAM power box plots
// during BFS with the sleep baselines.
func BenchmarkFig9Power(b *testing.B) {
	s := suite()
	g, err := s.Dataset(kronName())
	if err != nil {
		b.Fatal(err)
	}
	spec := epg.Spec{Algorithm: epg.BFS, Threads: 32, Roots: 8, MeasurePower: true}
	for i := 0; i < b.N; i++ {
		results, err := s.Run(spec, g)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var cpu float64
			for _, r := range results {
				cpu += r.AvgCPUWatts
			}
			b.ReportMetric(cpu/float64(len(results)), "cpu_W_mean")
			s.RenderPowerFigure(io.Discard, results)
		}
	}
}

// BenchmarkAblationDirectionOptimization quantifies the design choice
// behind GAP's BFS win: direction-optimizing vs pure top-down
// (Alpha disabled is modeled by the Graph500 engine's plain
// traversal; GAP's own knob is covered in its package tests).
func BenchmarkAblationDirectionOptimization(b *testing.B) {
	s := suite()
	g, err := s.Dataset(kronName())
	if err != nil {
		b.Fatal(err)
	}
	for _, engine := range []string{"GAP", "Graph500"} {
		b.Run(engine, func(b *testing.B) {
			spec := epg.Spec{Algorithm: epg.BFS, Threads: 32, Roots: 4, Engines: []string{engine}}
			for i := 0; i < b.N; i++ {
				results, err := s.Run(spec, g)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(meanModeled(results), "modeled_s_mean")
					b.ReportMetric(float64(results[0].EdgesExamined), "edges_examined")
				}
			}
		})
	}
}

// BenchmarkAblationDeltaTuning sweeps delta-stepping bucket widths on
// GAP's SSSP — the parameter-tuning loop the paper lists as future
// work — and reports the best candidate's modeled time.
func BenchmarkAblationDeltaTuning(b *testing.B) {
	s := suite()
	_ = s
	el, err := harnessDataset(kronName())
	if err != nil {
		b.Fatal(err)
	}
	roots := tuneRootsFor(el, 2)
	for i := 0; i < b.N; i++ {
		best, sweep, err := gap.TuneDelta(el, simmachine.Haswell72(), 32, roots, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(best, "best_delta")
			for _, r := range sweep {
				if r.Delta == best {
					b.ReportMetric(r.Seconds, "best_modeled_s")
				}
			}
		}
	}
}

// BenchmarkAblationAlphaBeta sweeps the direction-optimizing BFS
// switch parameters against the paper's untuned defaults.
func BenchmarkAblationAlphaBeta(b *testing.B) {
	el, err := harnessDataset(kronName())
	if err != nil {
		b.Fatal(err)
	}
	roots := tuneRootsFor(el, 2)
	for i := 0; i < b.N; i++ {
		alpha, beta, _, err := gap.TuneAlphaBeta(el, simmachine.Haswell72(), 32, roots, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(alpha), "best_alpha")
			b.ReportMetric(float64(beta), "best_beta")
		}
	}
}

// BenchmarkExtensionTriangleCount exercises the GAP TC extension (the
// paper's future-work kernel).
func BenchmarkExtensionTriangleCount(b *testing.B) {
	el, err := harnessDataset(kronName())
	if err != nil {
		b.Fatal(err)
	}
	m := simmachine.New(simmachine.Haswell72(), 32)
	inst, err := gap.New().Load(el, m)
	if err != nil {
		b.Fatal(err)
	}
	inst.BuildStructure()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := m.Elapsed()
		tri, err := inst.(*gap.Instance).TriangleCount()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(tri), "triangles")
			b.ReportMetric(m.Elapsed()-start, "modeled_s")
		}
	}
}

// --- Parallel runtime wall-clock speedup ----------------------------
//
// BenchmarkParallelRuntime measures *real* wall-clock time of the two
// headline kernels on kron-16 across worker counts. Modeled time is
// identical at every worker count (the determinism tests enforce it);
// what changes is how fast this process gets there. On a multicore
// host the 4-worker runs show the runtime's speedup; on a single-core
// host they measure scheduling overhead. TestWriteBenchBaseline
// records the numbers in BENCH_baseline.json when asked.

const speedupScale = 16

// speedupWorkerCounts are the worker counts the baseline records.
var speedupWorkerCounts = []int{1, 2, 4}

func speedupGraph(b testing.TB) *graph.EdgeList {
	return kronecker.Generate(kronecker.Params{Scale: speedupScale, Seed: 1})
}

// speedupInstance loads GAP (the leanest engine: its wall time is
// dominated by the kernels, not the model bookkeeping).
func speedupInstance(b testing.TB, el *graph.EdgeList, workers int) (*gap.Instance, graph.VID) {
	m := simmachine.New(simmachine.Haswell72(), 32)
	m.SetWorkers(workers)
	m.SetTracing(false)
	inst, err := gap.New().Load(el, m)
	if err != nil {
		b.Fatal(err)
	}
	inst.BuildStructure()
	csr := graph.BuildCSR(el, graph.BuildOptions{Symmetrize: !el.Directed, DropSelfLoops: true})
	roots := core.SelectRoots(csr, 1, 1)
	return inst.(*gap.Instance), roots[0]
}

// benchBaseline mirrors the JSON layout TestWriteBenchBaseline
// writes. NumCPU distinguishes hosts whose GOMAXPROCS was capped;
// HostClass makes the known small-host caveat machine-readable.
type benchBaseline struct {
	Dataset    string `json:"dataset"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	HostClass  string `json:"hostClass"`
}

// baselineHostClass classifies the recording host: speedup columns
// from hosts below four CPUs are scheduling-overhead measurements, not
// parallel speedups (the long-standing 1-core-container caveat, now
// stamped into the artifact instead of living in a ROADMAP footnote).
func baselineHostClass() string {
	if runtime.NumCPU() < 4 {
		return "small-host-speedups-unreliable"
	}
	return "multicore"
}

// warnBaselineHostMismatch compares the committed BENCH_baseline.json
// host against this one and warns when wall-clock numbers are not
// comparable (the original committed baseline was recorded on a
// 1-core container). It never fails the run: a mismatch means
// "regenerate before comparing", not "broken".
func warnBaselineHostMismatch(tb testing.TB) {
	data, err := os.ReadFile("BENCH_baseline.json")
	if err != nil {
		return // no baseline committed: nothing to compare against
	}
	var base benchBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		tb.Logf("WARNING: BENCH_baseline.json unreadable: %v", err)
		return
	}
	if base.GOMAXPROCS != runtime.GOMAXPROCS(0) || (base.NumCPU != 0 && base.NumCPU != runtime.NumCPU()) {
		tb.Logf("WARNING: BENCH_baseline.json was recorded with GOMAXPROCS=%d NumCPU=%d; "+
			"this host has GOMAXPROCS=%d NumCPU=%d — wall-clock comparisons are not "+
			"apples-to-apples, run `make baseline` here first",
			base.GOMAXPROCS, base.NumCPU, runtime.GOMAXPROCS(0), runtime.NumCPU())
	}
	if base.HostClass == "small-host-speedups-unreliable" {
		tb.Logf("WARNING: BENCH_baseline.json is stamped hostClass=%q (recorded below 4 CPUs): "+
			"its speedup columns measure scheduling overhead, not parallel speedup — regenerate "+
			"on a multicore host before drawing scaling conclusions", base.HostClass)
	}
}

// TestBaselineHostComparable surfaces the core-count warning on every
// plain `go test` run, so a stale baseline is noticed before anyone
// diffs speedups against it.
func TestBaselineHostComparable(t *testing.T) {
	warnBaselineHostMismatch(t)
}

func BenchmarkParallelRuntime(b *testing.B) {
	warnBaselineHostMismatch(b)
	el := speedupGraph(b)
	for _, workers := range speedupWorkerCounts {
		inst, root := speedupInstance(b, el, workers)
		b.Run(fmt.Sprintf("BFS/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := inst.BFS(root); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("PR/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := inst.PageRank(engines.DefaultPROpts()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestWriteBenchBaseline regenerates BENCH_baseline.json: the
// wall-clock seconds of GAP BFS and PageRank on kron-16 at 1/2/4 real
// workers, plus the derived speedups, so later PRs can diff
// performance against this one. Gated behind EPG_WRITE_BASELINE=1 (it
// is a measurement, not a correctness check); run via `make baseline`.
func TestWriteBenchBaseline(t *testing.T) {
	if os.Getenv("EPG_WRITE_BASELINE") == "" {
		t.Skip("set EPG_WRITE_BASELINE=1 to rewrite BENCH_baseline.json")
	}
	type entry struct {
		Kernel  string  `json:"kernel"`
		Workers int     `json:"workers"`
		Seconds float64 `json:"seconds_per_op"`
	}
	baseline := struct {
		Dataset    string             `json:"dataset"`
		Engine     string             `json:"engine"`
		Threads    int                `json:"threads"`
		GOMAXPROCS int                `json:"gomaxprocs"`
		NumCPU     int                `json:"numcpu"`
		HostClass  string             `json:"hostClass"`
		Reps       int                `json:"reps"`
		Results    []entry            `json:"results"`
		Speedup4W  map[string]float64 `json:"speedup_4w_vs_1w"`
	}{
		Dataset:    fmt.Sprintf("kron-%d", speedupScale),
		Engine:     "GAP",
		Threads:    32,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		HostClass:  baselineHostClass(),
		Reps:       3,
		Speedup4W:  map[string]float64{},
	}
	if baseline.HostClass != "multicore" {
		t.Logf("")
		t.Logf("=========================================================================")
		t.Logf("WARNING: recording BENCH_baseline.json on a %d-CPU host (hostClass=%q).", runtime.NumCPU(), baseline.HostClass)
		t.Logf("The speedup_4w_vs_1w columns will measure scheduling overhead, NOT")
		t.Logf("parallel speedup. Regenerate on a >=4-CPU host for meaningful numbers.")
		t.Logf("=========================================================================")
		t.Logf("")
	}
	el := speedupGraph(t)
	secs := map[string]map[int]float64{"BFS": {}, "PR": {}}
	for _, workers := range speedupWorkerCounts {
		inst, root := speedupInstance(t, el, workers)
		measure := func(kernel string, run func() error) {
			if err := run(); err != nil { // warm-up
				t.Fatal(err)
			}
			start := time.Now()
			for i := 0; i < baseline.Reps; i++ {
				if err := run(); err != nil {
					t.Fatal(err)
				}
			}
			s := time.Since(start).Seconds() / float64(baseline.Reps)
			secs[kernel][workers] = s
			baseline.Results = append(baseline.Results, entry{kernel, workers, s})
		}
		measure("BFS", func() error { _, err := inst.BFS(root); return err })
		measure("PR", func() error { _, err := inst.PageRank(engines.DefaultPROpts()); return err })
	}
	for _, kernel := range []string{"BFS", "PR"} {
		if s4 := secs[kernel][4]; s4 > 0 {
			baseline.Speedup4W[kernel] = secs[kernel][1] / s4
		}
	}
	data, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_baseline.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_baseline.json: %s", data)
}

func harnessDataset(name string) (*graph.EdgeList, error) {
	return harness.ResolveDataset(name, harness.DatasetOptions{Seed: 1, RealWorldDivisor: benchDivisor()})
}

func tuneRootsFor(el *graph.EdgeList, n int) []graph.VID {
	csr := graph.BuildCSR(el, graph.BuildOptions{Symmetrize: !el.Directed, DropSelfLoops: true})
	return core.SelectRoots(csr, n, 1)
}
