package logfmt

import (
	"fmt"
	"io"
)

// EmitKnobWarning writes one structured warning line recording that a
// spec knob was requested but the engine has no setter for it, so the
// run proceeded without it. The original framework's per-system shell
// drivers silently ignored flags a system did not understand — which
// is exactly how a "compressed" GraphMat run that never compressed
// anything ends up in a results table. The line is machine-parseable
// (key=value pairs, one line) and names both the engine and the knob:
//
//	warn event=knob-drop engine=GraphMat knob=compress msg="engine has no setter; knob ignored"
//
// A nil writer is allowed and discards the warning.
func EmitKnobWarning(w io.Writer, engine, knob string) error {
	if w == nil {
		return nil
	}
	_, err := fmt.Fprintf(w,
		"warn event=knob-drop engine=%s knob=%s msg=\"engine has no setter; knob ignored\"\n",
		engine, knob)
	return err
}
