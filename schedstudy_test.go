// Scheduling-study artifact: the ROADMAP's "modeled time vs. policy
// across thread counts" figure, extended with the locality dimensions.
// Gated behind EPG_WRITE_SCHEDFIG=1 (it is a measurement, not a
// correctness check); run via `make benchfig`, which writes
// FIG_sched_study.csv. The dynamic column grows with the thread count
// as the greedy shared-counter assignment loses to lane contention;
// the steal column tracks static until imbalance appears, then
// recovers it — the same story the paper tells about OpenMP
// schedule(dynamic) vs. Cilk-style runtimes. The sockets axis applies
// the locality model: at sockets > 1 flat stealing (steal) pays
// remote-steal and remote-chunk-access penalties for every
// cross-socket steal, while two-level stealing (numa) keeps most
// steals on-socket. The grain axis re-chunks every region
// frontier-proportionally (Spec.Grain = "adaptive"), which is what
// lets the locality columns separate for the *traversal* kernel: at
// fixed grains BFS levels split into too few chunks to steal at 16/32
// threads. The placement axis stacks the first-touch page-ownership
// model on top (Spec.Placement = "firsttouch"), charging
// remotely-placed resident data under all four policies — static and
// dynamic now have sockets>1 rows of their own. Every row additionally
// carries the energy axis: CPU/RAM/total joules from the power model
// integrated over the run's region trace, and the energy-delay
// product. The frequency axis (modeled DVFS operating points, swept on
// the firsttouch configuration) makes the table answer which policy ×
// grain × placement × frequency is fastest per joule — the paper's
// second measurement axis at modern scale. The compress axis runs the
// same kernels over the delta+varint adjacency (Spec.Compress): decode
// cycles are charged per compressed byte while the byte columns shrink
// to the encoded stream, so the on/off pairs quantify whether trading
// compute for bandwidth pays at each operating point.
//
// A second artifact serves CI: FIG_sched_study_ci.csv is the same
// table pinned to kron-12 with wall-clock zeroed, so it contains only
// modeled (bit-deterministic) numbers and an exact-match diff is a
// valid regression gate. `make benchfig-ci` rewrites it; `make
// benchfig-check` (the sched-study-drift CI job) regenerates the rows
// and fails on any byte difference — any drift in the cost model,
// scheduler simulations, grain policy, or placement model shows up as
// a failing diff tied to the commit that caused it.
package epg_test

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/engines/gap"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/parallel"
	"github.com/hpcl-repro/epg/internal/power"
	"github.com/hpcl-repro/epg/internal/report"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// schedStudyThreads is the virtual-thread axis (the paper's Fig. 5/6
// x-axis, plus the 72-thread full machine).
var schedStudyThreads = []int{1, 2, 4, 8, 16, 32, 64, 72}

// schedStudyConfigs is the (grain, placement, frequency, compress)
// axis: the historical fixed-grain table, the adaptive re-chunking
// alone, adaptive with the first-touch placement model stacked on top,
// on that headline locality configuration the DVFS sweep over the two
// lower modeled operating points, and the compressed-adjacency
// (delta+varint) variant of both the baseline and the headline
// configuration. Every row carries joules and EDP; the frequency and
// compress axes are swept on selected configurations rather than the
// full cross product, which keeps the artifact and the CI drift gate's
// regeneration time bounded while still answering the paper's energy
// question per policy × threads × sockets — and, for compress, whether
// trading decode cycles for bytes pays off at each operating point.
var schedStudyConfigs = []struct {
	grain     string
	placement string
	freq      string
	compress  bool
	nodes     int
	partition string
}{
	{"fixed", "none", "turbo", false, 1, ""},
	{"adaptive", "none", "turbo", false, 1, ""},
	{"adaptive", "firsttouch", "turbo", false, 1, ""},
	{"adaptive", "firsttouch", "balanced", false, 1, ""},
	{"adaptive", "firsttouch", "powersave", false, 1, ""},
	// Compressed adjacency: the sockets=1 baseline (fixed grain, no
	// placement) isolates the pure decode-cycles-for-bytes trade, and
	// the headline locality configuration shows it composed with
	// adaptive grain + first-touch placement, where the smaller
	// resident footprint also shrinks the remotely-placed byte stream.
	{"fixed", "none", "turbo", true, 1, ""},
	{"adaptive", "firsttouch", "turbo", true, 1, ""},
	// Modeled cluster: the fixed-grain baseline sharded across virtual
	// nodes, 1D blocked at 2 nodes and the greedy-vertex-cut 2D homes
	// at 4 — the rows carry the net_bytes column, and their presence in
	// the CI artifact makes the drift gate sensitive to every network
	// cost term (NetLatencyCycles, NetBytesFactor, the partitioners).
	{"fixed", "none", "turbo", false, 2, "1d"},
	{"fixed", "none", "turbo", false, 4, "2d"},
}

var schedStudyPolicies = []struct {
	name  string
	sched simmachine.Sched
}{
	{"static", simmachine.Static},
	{"dynamic", simmachine.Dynamic},
	{"steal", simmachine.Steal},
	{"numa", simmachine.NUMA},
}

// schedStudySockets returns the socket axis for one (policy,
// placement) cell. Without placement, static and dynamic have no
// locality path at all — only their sockets=1 rows are emitted — while
// the steal policies sweep 1/2/4. With first-touch placement every
// policy pays locality penalties, so all four sweep the multi-socket
// points; sockets=1 rows are omitted there because placement is inert
// on one socket (byte-identical to the "none" rows above them).
func schedStudySockets(policy, placement string) []int {
	if placement == "firsttouch" {
		return []int{2, 4}
	}
	if policy == "static" || policy == "dynamic" {
		return []int{1}
	}
	return []int{1, 2, 4}
}

// generateSchedStudyRows runs GAP BFS and PageRank over the full
// policy × grain × placement × compress × threads × sockets matrix on
// el and returns the table. With modeledOnly the two host-dependent columns
// — wall-clock seconds and the real worker count (min(threads,
// GOMAXPROCS)) — are zeroed so the output is a pure function of the
// Spec dimensions (the CI artifact's requirement: the drift gate
// byte-compares it across machines with different CPU counts);
// otherwise both record this host's values as convenience columns.
func generateSchedStudyRows(t *testing.T, el *graph.EdgeList, modeledOnly bool) []report.SchedStudyRow {
	t.Helper()
	roots := tuneRootsFor(el, 1)
	root := roots[0]

	// The 2D cluster owner table is a pure function of the homogenized
	// graph and the node count — computed once per count and shared by
	// every cell, the way the harness shares it across engines.
	owners := map[int][]int16{}
	ownersFor := func(nodes int) []int16 {
		if tbl, ok := owners[nodes]; ok {
			return tbl
		}
		csr := graph.BuildCSR(el, graph.BuildOptions{
			Symmetrize:    !el.Directed,
			DropSelfLoops: true,
			Dedup:         true,
		})
		tbl := graph.GreedyVertexCut(csr, nodes, nil).Owners()
		owners[nodes] = tbl
		return tbl
	}

	var rows []report.SchedStudyRow
	for _, kernel := range []string{"BFS", "PR"} {
		for _, cfg := range schedStudyConfigs {
			for _, pol := range schedStudyPolicies {
				for _, sockets := range schedStudySockets(pol.name, cfg.placement) {
					for _, threads := range schedStudyThreads {
						freq, err := power.FreqStateByName(cfg.freq)
						if err != nil {
							t.Fatal(err)
						}
						m := simmachine.New(freq.ScaleModel(simmachine.Haswell72()), threads)
						pconsts := freq.ScaleConstants(power.DefaultConstants())
						m.SetSchedOverride(pol.sched)
						if sockets > 1 {
							m.SetSockets(sockets)
						}
						if cfg.grain == "adaptive" {
							m.SetGrainPolicy(parallel.GrainAdaptive)
						}
						if cfg.placement == "firsttouch" {
							m.SetPlacement(true)
						}
						if cfg.nodes > 1 {
							var owner []int16
							if cfg.partition == "2d" {
								owner = ownersFor(cfg.nodes)
							}
							m.SetCluster(cfg.nodes, owner)
						}
						eng := gap.New()
						// Before Load: the compressed structure is built
						// during construction (and charged there).
						eng.SetCompress(cfg.compress)
						instAny, err := eng.Load(el, m)
						if err != nil {
							t.Fatal(err)
						}
						inst := instAny.(*gap.Instance)
						inst.BuildStructure()
						m.Reset()
						run := func() error {
							if kernel == "BFS" {
								_, err := inst.BFS(root)
								return err
							}
							_, err := inst.PageRank(engines.DefaultPROpts())
							return err
						}
						meter := power.NewRAPL(m, pconsts)
						meter.Start()
						start := time.Now()
						if err := run(); err != nil {
							t.Fatal(err)
						}
						wall := time.Since(start).Seconds()
						rd := meter.End()
						workers := m.Workers()
						if modeledOnly {
							wall = 0
							workers = 0
						}
						// Aggregate charged work: the raw quantities the
						// model prices. Penalty charges land here even
						// when they miss the critical-path lane, which is
						// what makes the CI drift gate sensitive to every
						// cost-accounting change. The joules integrate
						// the power model over the same trace, so the
						// gate additionally pins every power constant.
						var total simmachine.Cost
						var netBytes float64
						for _, reg := range m.Trace() {
							total.Add(reg.Cost)
							netBytes += reg.NetBytes
						}
						compress := "off"
						if cfg.compress {
							compress = "on"
						}
						nodes, partition := cfg.nodes, cfg.partition
						if nodes < 2 {
							nodes, partition = 1, "none"
						}
						rows = append(rows, report.SchedStudyRow{
							Kernel:      kernel,
							Sched:       pol.name,
							Grain:       cfg.grain,
							Placement:   cfg.placement,
							Freq:        cfg.freq,
							Compress:    compress,
							Threads:     threads,
							Sockets:     sockets,
							Nodes:       nodes,
							Partition:   partition,
							Workers:     workers,
							ModeledSec:  m.Elapsed(),
							Cycles:      total.Cycles,
							Bytes:       total.Bytes,
							NetBytes:    netBytes,
							Atomics:     total.Atomics,
							CPUJoules:   rd.CPUJoules,
							RAMJoules:   rd.RAMJoules,
							TotalJoules: rd.TotalJoules(),
							EDPJouleSec: rd.EDP(),
							WallSec:     wall,
						})
					}
				}
			}
		}
	}
	return rows
}

func TestWriteSchedStudy(t *testing.T) {
	if os.Getenv("EPG_WRITE_SCHEDFIG") == "" {
		t.Skip("set EPG_WRITE_SCHEDFIG=1 to rewrite FIG_sched_study.csv")
	}
	el, err := harnessDataset(kronName())
	if err != nil {
		t.Fatal(err)
	}
	rows := generateSchedStudyRows(t, el, false)
	f, err := os.Create("FIG_sched_study.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := report.WriteSchedStudyCSV(f, rows); err != nil {
		t.Fatal(err)
	}
	var tbl testWriter = func(p []byte) (int, error) {
		t.Logf("%s", p)
		return len(p), nil
	}
	report.SchedStudyTable(tbl, rows)
	t.Logf("wrote FIG_sched_study.csv (%d rows, dataset %s)", len(rows), kronName())
}

// schedStudyCIFile is the committed CI artifact; schedStudyCIDataset
// pins its scale in code so the gate never silently drifts with
// EPG_BENCH_SCALE.
const (
	schedStudyCIFile    = "FIG_sched_study_ci.csv"
	schedStudyCIDataset = "kron-12"
)

// schedStudyCIRows regenerates the pinned-scale, modeled-only table.
func schedStudyCIRows(t *testing.T) []report.SchedStudyRow {
	t.Helper()
	el, err := harnessDataset(schedStudyCIDataset)
	if err != nil {
		t.Fatal(err)
	}
	return generateSchedStudyRows(t, el, true)
}

// TestWriteSchedStudyCI rewrites FIG_sched_study_ci.csv (gated: it is
// an artifact writer, not a check; run via `make benchfig-ci` after an
// intentional cost-model change).
func TestWriteSchedStudyCI(t *testing.T) {
	if os.Getenv("EPG_WRITE_SCHEDFIG_CI") == "" {
		t.Skip("set EPG_WRITE_SCHEDFIG_CI=1 (make benchfig-ci) to rewrite FIG_sched_study_ci.csv")
	}
	rows := schedStudyCIRows(t)
	f, err := os.Create(schedStudyCIFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := report.WriteSchedStudyCSV(f, rows); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d rows, dataset %s)", schedStudyCIFile, len(rows), schedStudyCIDataset)
}

// TestSchedStudyCIDrift is the bench-regression gate (`make
// benchfig-check`, the sched-study-drift CI job): the regenerated
// modeled scheduling study must match the committed artifact byte for
// byte. Modeled costs are bit-deterministic — pure float64 arithmetic
// over Spec-derived seeds, no wall clock in the table — so an exact
// diff is valid: any mismatch means a commit changed modeled
// performance (cost model constants, scheduler simulation, grain
// policy, placement model) without regenerating the artifact, i.e. an
// unacknowledged perf change.
func TestSchedStudyCIDrift(t *testing.T) {
	if os.Getenv("EPG_SCHEDFIG_CHECK") == "" {
		t.Skip("set EPG_SCHEDFIG_CHECK=1 (make benchfig-check) to run the sched-study drift gate")
	}
	committed, err := os.ReadFile(schedStudyCIFile)
	if err != nil {
		t.Fatalf("no committed %s (run `make benchfig-ci` and commit it): %v", schedStudyCIFile, err)
	}
	rows := schedStudyCIRows(t)
	var regenerated bytes.Buffer
	if err := report.WriteSchedStudyCSV(&regenerated, rows); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(regenerated.Bytes(), committed) {
		t.Logf("%s matches the regenerated study exactly (%d rows)", schedStudyCIFile, len(rows))
		return
	}
	got := strings.Split(strings.TrimRight(regenerated.String(), "\n"), "\n")
	want := strings.Split(strings.TrimRight(string(committed), "\n"), "\n")
	if len(got) != len(want) {
		t.Errorf("row count drifted: regenerated %d lines, committed %d", len(got), len(want))
	}
	shown := 0
	for i := 0; i < len(got) && i < len(want) && shown < 5; i++ {
		if got[i] != want[i] {
			t.Errorf("line %d drifted:\n  committed:   %s\n  regenerated: %s", i+1, want[i], got[i])
			shown++
		}
	}
	t.Fatalf("%s drifted from the regenerated modeled study: a change moved modeled "+
		"performance; if intentional, run `make benchfig-ci` and commit the new artifact "+
		"(and `make benchfig` for the full-scale figure)", schedStudyCIFile)
}

// testWriter adapts t.Logf to io.Writer for the quick-look table.
type testWriter func(p []byte) (int, error)

func (w testWriter) Write(p []byte) (int, error) { return w(p) }
