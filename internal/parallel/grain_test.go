package parallel

import "testing"

// TestAdaptiveGrainChunkTarget: the adaptive grain yields at most
// consumers*AdaptiveChunksPerLane chunks, and (when n is large enough
// to fill the target at the requested alignment) at least half of it —
// the chunk count tracks lanes, not items.
func TestAdaptiveGrainChunkTarget(t *testing.T) {
	for _, consumers := range []int{1, 2, 8, 32, 72} {
		target := consumers * AdaptiveChunksPerLane
		for _, align := range []int{1, 64} {
			for _, n := range []int{1, 5, 100, 4096, 1 << 17} {
				g := AdaptiveGrain(n, consumers, align)
				if g < 1 || g%align != 0 {
					t.Fatalf("n=%d consumers=%d align=%d: grain %d not a positive multiple of align", n, consumers, align, g)
				}
				nchunks := NumChunks(n, g)
				if nchunks > target {
					t.Errorf("n=%d consumers=%d align=%d: %d chunks exceeds target %d", n, consumers, align, nchunks, target)
				}
				if n >= target*align && nchunks < (target+1)/2 {
					t.Errorf("n=%d consumers=%d align=%d: only %d chunks for target %d", n, consumers, align, nchunks, target)
				}
			}
		}
	}
}

// TestAdaptiveGrainDegenerateInputs: non-positive sizes, consumer
// counts, and alignments resolve to safe values instead of zero grains
// (NumChunks would divide by the grain).
func TestAdaptiveGrainDegenerateInputs(t *testing.T) {
	if g := AdaptiveGrain(0, 4, 64); g != 64 {
		t.Errorf("n=0: grain %d, want align", g)
	}
	if g := AdaptiveGrain(-3, 4, 1); g != 1 {
		t.Errorf("n<0: grain %d, want 1", g)
	}
	if g := AdaptiveGrain(100, 0, 1); g != AdaptiveGrain(100, 1, 1) {
		t.Errorf("consumers=0 (%d) differs from consumers=1 (%d)", g, AdaptiveGrain(100, 1, 1))
	}
	if g := AdaptiveGrain(100, 4, 0); g != AdaptiveGrain(100, 4, 1) {
		t.Errorf("align=0 (%d) differs from align=1 (%d)", g, AdaptiveGrain(100, 4, 1))
	}
}

// TestAdaptiveGrainCoverage: For at an adaptive grain still covers
// [0, n) exactly once with stable chunk boundaries, for every policy.
func TestAdaptiveGrainCoverage(t *testing.T) {
	p := NewPool(8)
	n, consumers := 997, 8
	for _, align := range []int{1, 64} {
		g := AdaptiveGrain(n, consumers, align)
		for _, sched := range []Sched{Static, Dynamic, Steal, NUMA} {
			seen := make([]int32, n)
			For(p, 4, n, g, sched, func(lo, hi, chunk, worker int) {
				if lo != chunk*g {
					t.Errorf("chunk %d starts at %d, want %d", chunk, lo, chunk*g)
				}
				for i := lo; i < hi; i++ {
					seen[i]++
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("align=%d sched=%v: index %d covered %d times", align, sched, i, c)
				}
			}
		}
	}
}
