// Package report renders the paper's tables and figures from
// normalized results: aligned text tables (Tables I-III), ASCII box
// plots and series (Figs. 2-6, 8, 9), and CSV exports for external
// plotting.
package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"github.com/hpcl-repro/epg/internal/core"
	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/stats"
)

// Group aggregates results by (engine) within one dataset+algorithm.
func groupTimes(results []core.Result, pick func(core.Result) float64) map[string][]float64 {
	out := map[string][]float64{}
	for _, r := range results {
		out[r.Engine] = append(out[r.Engine], pick(r))
	}
	return out
}

// sortedKeys returns map keys in presentation order: known engines
// first (paper order), then the rest alphabetically.
var engineOrder = map[string]int{
	"Graph500": 0, "GAP": 1, "GraphBIG": 2, "GraphMat": 3, "PowerGraph": 4,
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		oi, iOK := engineOrder[keys[i]]
		oj, jOK := engineOrder[keys[j]]
		switch {
		case iOK && jOK:
			return oi < oj
		case iOK:
			return true
		case jOK:
			return false
		default:
			return keys[i] < keys[j]
		}
	})
	return keys
}

// Table writes an aligned text table. Rows are [label, cells...].
func Table(w io.Writer, title string, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if title != "" {
		fmt.Fprintln(w, title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// FormatSeconds renders a duration the way the paper's tables do.
func FormatSeconds(s float64) string {
	switch {
	case s == 0:
		return "N/A"
	case s >= 100:
		return fmt.Sprintf("%.1f", s)
	case s >= 1:
		return fmt.Sprintf("%.2f", s)
	default:
		return fmt.Sprintf("%.4g", s)
	}
}

// BoxPlot renders labeled five-number summaries on a shared
// horizontal axis. With logScale, positions use log10 (the paper's
// Figs. 2-4 use logarithmic y-axes).
func BoxPlot(w io.Writer, title string, series map[string][]float64, logScale bool) {
	fmt.Fprintln(w, title)
	if len(series) == 0 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	type row struct {
		name string
		f    stats.FiveNum
	}
	var rows []row
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, name := range sortedKeys(series) {
		f := stats.Summarize(series[name])
		rows = append(rows, row{name, f})
		if f.Min < lo {
			lo = f.Min
		}
		if f.Max > hi {
			hi = f.Max
		}
	}
	xform := func(v float64) float64 { return v }
	if logScale {
		if lo <= 0 {
			logScale = false
		} else {
			xform = math.Log10
		}
	}
	tlo, thi := xform(lo), xform(hi)
	span := thi - tlo
	if span <= 0 {
		span = 1
	}
	const width = 48
	pos := func(v float64) int {
		p := int((xform(v) - tlo) / span * float64(width-1))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	nameW := 0
	for _, r := range rows {
		if len(r.name) > nameW {
			nameW = len(r.name)
		}
	}
	for _, r := range rows {
		canvas := []byte(strings.Repeat(" ", width))
		for i := pos(r.f.Min); i <= pos(r.f.Max); i++ {
			canvas[i] = '-'
		}
		for i := pos(r.f.Q1); i <= pos(r.f.Q3); i++ {
			canvas[i] = '='
		}
		canvas[pos(r.f.Min)] = '|'
		canvas[pos(r.f.Max)] = '|'
		canvas[pos(r.f.Q1)] = '['
		canvas[pos(r.f.Q3)] = ']'
		canvas[pos(r.f.Median)] = '#'
		fmt.Fprintf(w, "  %s %s  med=%s n=%d\n",
			pad(r.name, nameW), string(canvas), FormatSeconds(r.f.Median), r.f.N)
	}
	scaleName := "linear"
	if logScale {
		scaleName = "log10"
	}
	fmt.Fprintf(w, "  %s %s  axis: %s .. %s (%s)\n",
		pad("", nameW), strings.Repeat("~", width), FormatSeconds(lo), FormatSeconds(hi), scaleName)
}

// TimeBoxFigure renders a Fig. 2/3/4-style algorithm-time panel.
func TimeBoxFigure(w io.Writer, title string, results []core.Result) {
	BoxPlot(w, title, groupTimes(results, func(r core.Result) float64 { return r.AlgorithmSec }), true)
}

// ConstructionFigure renders the construction-time panel, restricted
// to the engines that report a separate construction phase (the paper
// omits GraphBIG/PowerGraph from these panels).
func ConstructionFigure(w io.Writer, title string, results []core.Result) {
	filtered := map[string][]float64{}
	for _, r := range results {
		if r.HasConstruction && r.Trial == 0 {
			filtered[r.Engine] = append(filtered[r.Engine], r.ConstructionSec)
		}
	}
	BoxPlot(w, title, filtered, false)
}

// IterationsFigure renders Fig. 4's right panel: PageRank iteration
// counts per engine.
func IterationsFigure(w io.Writer, title string, results []core.Result) {
	fmt.Fprintln(w, title)
	byEngine := map[string][]float64{}
	for _, r := range results {
		byEngine[r.Engine] = append(byEngine[r.Engine], float64(r.Iterations))
	}
	for _, name := range sortedKeys(byEngine) {
		m := stats.Mean(byEngine[name])
		bar := strings.Repeat("*", int(math.Min(m/2, 72)))
		fmt.Fprintf(w, "  %-12s %4.0f %s\n", name, m, bar)
	}
}

// ScalingFigure renders Figs. 5/6 from sweep aggregates: one series
// per engine, speedup and efficiency at each thread count.
func ScalingFigure(w io.Writer, title string, byEngine map[string]map[int]float64) error {
	fmt.Fprintln(w, title)
	header := []string{"engine", "threads", "seconds", "speedup", "efficiency"}
	var rows [][]string
	for _, name := range sortedKeys(byEngine) {
		pts, err := stats.Scaling(byEngine[name])
		if err != nil {
			return fmt.Errorf("report: %s: %w", name, err)
		}
		for _, p := range pts {
			rows = append(rows, []string{
				name, fmt.Sprint(p.Threads), FormatSeconds(p.Seconds),
				fmt.Sprintf("%.2f", p.Speedup), fmt.Sprintf("%.3f", p.Efficiency),
			})
		}
	}
	Table(w, "", header, rows)
	return nil
}

// RealWorldFigure renders Fig. 8: mean algorithm time per
// (algorithm, dataset, engine).
func RealWorldFigure(w io.Writer, results []core.Result) {
	type key struct {
		alg     engines.Algorithm
		dataset string
	}
	groups := map[key]map[string][]float64{}
	for _, r := range results {
		k := key{r.Algorithm, r.Dataset}
		if groups[k] == nil {
			groups[k] = map[string][]float64{}
		}
		groups[k][r.Engine] = append(groups[k][r.Engine], r.AlgorithmSec)
	}
	var keys []key
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].alg != keys[j].alg {
			return keys[i].alg < keys[j].alg
		}
		return keys[i].dataset < keys[j].dataset
	})
	header := []string{"algorithm", "dataset", "engine", "mean_s"}
	var rows [][]string
	for _, k := range keys {
		for _, eng := range sortedKeys(groups[k]) {
			rows = append(rows, []string{
				string(k.alg), k.dataset, eng,
				FormatSeconds(stats.Mean(groups[k][eng])),
			})
		}
	}
	Table(w, "Fig. 8: real-world dataset mean runtimes", header, rows)
}

// PowerFigure renders Fig. 9: CPU and RAM average power box plots
// during BFS, with the sleep baseline.
func PowerFigure(w io.Writer, results []core.Result, sleepCPUWatts, sleepRAMWatts float64) {
	cpu := groupTimes(results, func(r core.Result) float64 { return r.AvgCPUWatts })
	ram := groupTimes(results, func(r core.Result) float64 { return r.AvgRAMWatts })
	BoxPlot(w, "Fig. 9a: CPU average power during BFS (W)", cpu, false)
	fmt.Fprintf(w, "  sleep baseline: %.1f W\n\n", sleepCPUWatts)
	BoxPlot(w, "Fig. 9b: RAM average power during BFS (W)", ram, false)
	fmt.Fprintf(w, "  sleep baseline: %.1f W\n", sleepRAMWatts)
}

// EnergyTable renders Table III from power-metered BFS results.
func EnergyTable(w io.Writer, results []core.Result, sleepWatts float64) {
	byEngine := map[string][]core.Result{}
	for _, r := range results {
		byEngine[r.Engine] = append(byEngine[r.Engine], r)
	}
	names := sortedKeys(byEngine)
	header := append([]string{"metric"}, names...)
	metric := func(label string, f func(core.Result) float64, format string) []string {
		row := []string{label}
		for _, n := range names {
			var xs []float64
			for _, r := range byEngine[n] {
				xs = append(xs, f(r))
			}
			row = append(row, fmt.Sprintf(format, stats.Mean(xs)))
		}
		return row
	}
	rows := [][]string{
		metric("Time (s)", func(r core.Result) float64 { return r.AlgorithmSec }, "%.5g"),
		metric("Average Power per Root (W)", func(r core.Result) float64 { return r.AvgCPUWatts + r.AvgRAMWatts }, "%.2f"),
		metric("Energy per Root (J)", func(r core.Result) float64 { return r.CPUJoules + r.RAMJoules }, "%.4g"),
		metric("Energy-Delay Product (J*s)", func(r core.Result) float64 {
			return (r.CPUJoules + r.RAMJoules) * r.AlgorithmSec
		}, "%.4g"),
		metric("Sleeping Energy (J)", func(r core.Result) float64 { return sleepWatts * r.AlgorithmSec }, "%.4g"),
		metric("Increase over Sleep", func(r core.Result) float64 {
			if r.AlgorithmSec <= 0 {
				return 0
			}
			return (r.CPUJoules + r.RAMJoules) / (sleepWatts * r.AlgorithmSec)
		}, "%.3f"),
	}
	Table(w, "Table III: power and energy during BFS (means over roots)", header, rows)
}
