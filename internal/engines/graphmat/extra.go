package graphmat

import (
	"sync/atomic"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// CDLP implements engines.Instance: synchronous label propagation as
// a histogram-semiring SpMV. For directed graphs both the in- and
// out-matrices contribute messages (LDBC semantics).
func (inst *Instance) CDLP(maxIter int) (*engines.CDLPResult, error) {
	inst.ensureBuilt()
	n := inst.n
	label := make([]graph.VID, n)
	next := make([]graph.VID, n)
	for i := range label {
		label[i] = graph.VID(i)
	}
	// Out-edge column lists per vertex for the directed case: build
	// a row index into outMat once.
	var outRowOf []int32
	if inst.directed {
		outRowOf = make([]int32, n)
		for i := range outRowOf {
			outRowOf[i] = -1
		}
		for ri, v := range inst.outMat.rows {
			outRowOf[v] = int32(ri)
		}
	}
	res := &engines.CDLPResult{}
	for iter := 1; iter <= maxIter; iter++ {
		copy(next, label)
		var changed int64
		inst.spmvRows(inst.inMat, func(ri, _ int, w *simmachine.W) {
			v := inst.inMat.rows[ri]
			counts := make(map[graph.VID]int)
			lo, hi := inst.inMat.ptr[ri], inst.inMat.ptr[ri+1]
			for i := lo; i < hi; i++ {
				counts[label[inst.inMat.cols[i]]]++
			}
			nz := hi - lo
			if inst.directed {
				if ro := outRowOf[v]; ro >= 0 {
					olo, ohi := inst.outMat.ptr[ro], inst.outMat.ptr[ro+1]
					for i := olo; i < ohi; i++ {
						counts[label[inst.outMat.cols[i]]]++
					}
					nz += ohi - olo
				}
			}
			w.Charge(costScanNZ.Scale(float64(nz)))
			w.Charge(costProcessNZ.Scale(float64(nz)))
			nl := minMaxLabel(counts, label[v])
			if nl != label[v] {
				next[v] = nl
				atomic.AddInt64(&changed, 1)
			}
		})
		// Directed graphs: vertices with only out-edges never appear
		// as inMat rows; give them their histogram too.
		if inst.directed {
			inst.spmvRows(inst.outMat, func(ri, _ int, w *simmachine.W) {
				v := inst.outMat.rows[ri]
				// Skip vertices already handled via inMat rows.
				if hasInRow(inst.inMat, v) {
					return
				}
				counts := make(map[graph.VID]int)
				lo, hi := inst.outMat.ptr[ri], inst.outMat.ptr[ri+1]
				for i := lo; i < hi; i++ {
					counts[label[inst.outMat.cols[i]]]++
				}
				w.Charge(costScanNZ.Scale(float64(hi - lo)))
				nl := minMaxLabel(counts, label[v])
				if nl != label[v] {
					next[v] = nl
					atomic.AddInt64(&changed, 1)
				}
			})
		}
		inst.denseSweep(1)
		label, next = next, label
		res.Iterations = iter
		if changed == 0 {
			break
		}
	}
	res.Label = label
	return res, nil
}

// hasInRow reports whether v appears as a row of mat (binary search:
// rows are ascending by construction).
func hasInRow(mat *dcsr, v graph.VID) bool {
	lo, hi := 0, len(mat.rows)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case mat.rows[mid] < v:
			lo = mid + 1
		case mat.rows[mid] > v:
			hi = mid
		default:
			return true
		}
	}
	return false
}

func minMaxLabel(counts map[graph.VID]int, own graph.VID) graph.VID {
	if len(counts) == 0 {
		return own
	}
	best := graph.VID(0)
	bestN := -1
	for l, c := range counts {
		if c > bestN || (c == bestN && l < best) {
			best, bestN = l, c
		}
	}
	return best
}

// WCC implements engines.Instance: min-semiring SpMV iterated until
// quiescent. For directed graphs the min gathers over both
// directions (weak connectivity).
func (inst *Instance) WCC() (*engines.WCCResult, error) {
	inst.ensureBuilt()
	n := inst.n
	comp := make([]graph.VID, n)
	next := make([]graph.VID, n)
	for i := range comp {
		comp[i] = graph.VID(i)
	}
	sweep := func(mat *dcsr) int64 {
		var changed int64
		inst.spmvRows(mat, func(ri, _ int, w *simmachine.W) {
			v := mat.rows[ri]
			lo, hi := mat.ptr[ri], mat.ptr[ri+1]
			min := next[v]
			for i := lo; i < hi; i++ {
				if c := comp[mat.cols[i]]; c < min {
					min = c
				}
			}
			nz := hi - lo
			w.Charge(costScanNZ.Scale(float64(nz)))
			if min < next[v] {
				next[v] = min
				atomic.AddInt64(&changed, 1)
			}
		})
		return changed
	}
	for {
		copy(next, comp)
		changed := sweep(inst.inMat)
		if inst.directed {
			changed += sweep(inst.outMat)
		}
		inst.denseSweep(2)
		comp, next = next, comp
		if changed == 0 {
			break
		}
	}
	return &engines.WCCResult{Component: comp}, nil
}

// LCC implements engines.Instance: GraphMat's Graphalytics LCC maps
// to masked sparse matrix products; here the same counts come from
// sorted-adjacency intersections with SpMV-grade per-check costs (the
// paper's Table I shows LCC dominating every system's runtime on the
// dense Dota-League graph).
func (inst *Instance) LCC() (*engines.LCCResult, error) {
	inst.ensureBuilt()
	n := inst.n
	coeff := make([]float64, n)
	out := inst.outCSR
	var inCSR *graph.CSR
	if inst.directed {
		inCSR = graph.Transpose(out, 0)
		inCSR.SortAdjacency()
	} else {
		inCSR = out
	}
	inst.m.ParallelFor(n, 64, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
		var checks int64
		for v := lo; v < hi; v++ {
			nbrs := mergedNeighborhood(out, inCSR, graph.VID(v), inst.directed)
			d := len(nbrs)
			if d < 2 {
				continue
			}
			links := 0
			for _, u := range nbrs {
				adj := out.Neighbors(u)
				// Sorted-merge intersection of adj with nbrs.
				i, j := 0, 0
				for i < len(adj) && j < len(nbrs) {
					checks++
					switch {
					case adj[i] < nbrs[j]:
						i++
					case adj[i] > nbrs[j]:
						j++
					default:
						if adj[i] != u && adj[i] != graph.VID(v) {
							links++
						}
						i++
						j++
					}
				}
			}
			coeff[v] = float64(links) / float64(d*(d-1))
		}
		w.Charge(costScanNZ.Scale(float64(checks)))
		w.Charge(costVecEntry.Scale(float64(hi - lo)))
	})
	return &engines.LCCResult{Coeff: coeff}, nil
}

// mergedNeighborhood returns sorted distinct in∪out neighbors
// excluding v.
func mergedNeighborhood(out, in *graph.CSR, v graph.VID, directed bool) []graph.VID {
	a := out.Neighbors(v)
	if !directed {
		return a
	}
	b := in.Neighbors(v)
	merged := make([]graph.VID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var nxt graph.VID
		switch {
		case i >= len(a):
			nxt = b[j]
			j++
		case j >= len(b):
			nxt = a[i]
			i++
		case a[i] < b[j]:
			nxt = a[i]
			i++
		case b[j] < a[i]:
			nxt = b[j]
			j++
		default:
			nxt = a[i]
			i++
			j++
		}
		if nxt == v {
			continue
		}
		if len(merged) == 0 || merged[len(merged)-1] != nxt {
			merged = append(merged, nxt)
		}
	}
	return merged
}
