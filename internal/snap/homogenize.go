package snap

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/hpcl-repro/epg/internal/graph"
)

// Format names one engine's preferred on-disk representation. The
// homogenization phase of the paper converts a source graph into every
// format once, so that no engine pays conversion cost at run time.
type Format string

const (
	// FormatSNAP is the common text interchange format.
	FormatSNAP Format = "snap"
	// FormatGraph500 is the packed binary edge list consumed by the
	// Graph500 reference (pairs of little-endian uint32, with a
	// small header added here for safety).
	FormatGraph500 Format = "graph500-bin"
	// FormatGraphMat is a 1-indexed Matrix Market-like coordinate
	// listing, GraphMat's native input.
	FormatGraphMat Format = "graphmat-mtx"
	// FormatAdjacency is Ligra/GAP-style adjacency text: header,
	// offsets, then neighbor lists.
	FormatAdjacency Format = "adjacency"
)

// AllFormats lists every supported homogenization target.
var AllFormats = []Format{FormatSNAP, FormatGraph500, FormatGraphMat, FormatAdjacency}

const g500Magic = 0x47353030 // "G500"

// WriteFormat converts el into the requested format on w.
func WriteFormat(w io.Writer, el *graph.EdgeList, f Format, name string) error {
	switch f {
	case FormatSNAP:
		return Write(w, el, name)
	case FormatGraph500:
		return writeGraph500(w, el)
	case FormatGraphMat:
		return writeGraphMat(w, el, name)
	case FormatAdjacency:
		return writeAdjacency(w, el)
	default:
		return fmt.Errorf("snap: unknown format %q", f)
	}
}

func writeGraph500(w io.Writer, el *graph.EdgeList) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint32(hdr[0:], g500Magic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(el.NumVertices))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(el.Edges)))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	var buf [8]byte
	for _, e := range el.Edges {
		binary.LittleEndian.PutUint32(buf[0:], e.Src)
		binary.LittleEndian.PutUint32(buf[4:], e.Dst)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadGraph500 parses the packed binary edge list format.
func ReadGraph500(r io.Reader) (*graph.EdgeList, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("snap: graph500 header: %v", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != g500Magic {
		return nil, fmt.Errorf("snap: not a graph500 binary edge list")
	}
	n := int(binary.LittleEndian.Uint32(hdr[4:]))
	m := binary.LittleEndian.Uint64(hdr[8:])
	el := &graph.EdgeList{NumVertices: n, Edges: make([]graph.Edge, m)}
	var buf [8]byte
	for i := range el.Edges {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("snap: graph500 edge %d: %v", i, err)
		}
		el.Edges[i].Src = binary.LittleEndian.Uint32(buf[0:])
		el.Edges[i].Dst = binary.LittleEndian.Uint32(buf[4:])
	}
	return el, nil
}

func writeGraphMat(w io.Writer, el *graph.EdgeList, name string) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%% %s\n", name)
	fmt.Fprintf(bw, "%d %d %d\n", el.NumVertices, el.NumVertices, len(el.Edges))
	for _, e := range el.Edges {
		w := e.W
		if !el.Weighted {
			w = 1
		}
		// GraphMat is 1-indexed.
		if _, err := fmt.Fprintf(bw, "%d %d %g\n", e.Src+1, e.Dst+1, w); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeAdjacency(w io.Writer, el *graph.EdgeList) error {
	csr := graph.BuildCSR(el, graph.BuildOptions{})
	bw := bufio.NewWriterSize(w, 1<<20)
	if el.Weighted {
		fmt.Fprintln(bw, "WeightedAdjacencyGraph")
	} else {
		fmt.Fprintln(bw, "AdjacencyGraph")
	}
	fmt.Fprintln(bw, csr.NumVertices)
	fmt.Fprintln(bw, len(csr.Adj))
	for v := 0; v < csr.NumVertices; v++ {
		fmt.Fprintln(bw, csr.Offsets[v])
	}
	for _, u := range csr.Adj {
		fmt.Fprintln(bw, u)
	}
	if el.Weighted {
		for _, wt := range csr.Weights {
			fmt.Fprintln(bw, wt)
		}
	}
	return bw.Flush()
}
