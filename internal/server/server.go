package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/harness"
	"github.com/hpcl-repro/epg/internal/logfmt"
)

// Config parameterizes a daemon.
type Config struct {
	// Dataset is a harness dataset name ("kron-12", "dota-league",
	// "cit-Patents"); Seed feeds the synthetic generators.
	Dataset string
	Seed    uint64
	// Executors is the number of engine instances serving in parallel
	// (each owns a machine and serves one query at a time); Threads is
	// the modeled thread count of each. Defaults: 2 and 8.
	Executors int
	Threads   int
	// Admit configures admission control; zero values get defaults
	// (QueueCap 64, watermark half the cap, throttling off).
	Admit AdmitConfig
	// DefaultDeadlineSec is the modeled service budget applied when a
	// query does not carry one; <= 0 means no default budget.
	DefaultDeadlineSec float64
	// Landmarks sizes the degradation sketch (default 8; 0 after
	// defaulting disables degraded answers).
	Landmarks int
	// Compress serves BFS/PR from the delta+varint compressed
	// adjacency (trades decode cycles for bandwidth, as in the
	// compression study).
	Compress bool
	// FaultInjection permits OpPanic queries, for soak tests that
	// prove panic isolation.
	FaultInjection bool
	// QueryLog, when non-nil, receives one structured line per query
	// (logfmt.EmitQuery).
	QueryLog io.Writer
}

func (c Config) withDefaults() Config {
	if c.Executors <= 0 {
		c.Executors = 2
	}
	if c.Threads <= 0 {
		c.Threads = 8
	}
	if c.Admit.QueueCap == 0 {
		c.Admit.QueueCap = 64
	}
	if c.Admit.DegradeWatermark == 0 {
		c.Admit.DegradeWatermark = c.Admit.QueueCap / 2
	}
	if c.Landmarks == 0 {
		c.Landmarks = 8
	}
	return c
}

// pending is one admitted query waiting for an executor.
type pending struct {
	ctx      context.Context
	q        Query
	seq      int64
	budget   float64
	degraded bool
	refresh  bool
	// mutate, when non-nil, is a maintenance entry like refresh: the
	// dequeuing executor applies the batch, re-converges the vectors
	// incrementally, and swaps vectors+sketch+log in one critical
	// section. mutRep is written by the executor before it responds
	// (the resC receive orders the read).
	mutate graph.Batch
	mutRep *engines.MutationReport
	depth  int // queue depth observed at admission, for the log
	resC   chan Response
}

// Server is a running daemon instance (transport-agnostic; see
// Handler for HTTP).
type Server struct {
	cfg   Config
	el    *graph.EdgeList
	csr   *graph.CSR
	execs []*executor

	// vecMu guards the precomputed state a refresh or mutate swaps: the
	// PR/WCC vectors AND the degradation sketch (plus its generation
	// counter — monotone, bumped by every successful refresh/mutate, so
	// tests can prove degraded answers come from the rebuilt sketch,
	// not a stale one), plus the append-only mutation batch log and the
	// current homogenized adjacency epoch. Executors replay the log
	// lazily when they dequeue, so every query is served on a graph at
	// least as new as the last acknowledged mutation.
	vecMu     sync.RWMutex
	vec       vectors
	sketch    *Sketch
	sketchGen uint64
	batches   []graph.Batch

	admit   *admitter
	queue   chan *pending
	metrics Metrics
	seq     atomic.Int64
	started time.Time

	logMu   sync.Mutex
	wg      sync.WaitGroup
	stopped chan struct{}
	closed  atomic.Bool
}

// New resolves cfg.Dataset and starts a server.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	el, err := harness.ResolveDataset(cfg.Dataset, harness.DatasetOptions{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	return NewFromEdgeList(el, cfg)
}

// NewFromEdgeList starts a server over an in-memory edge list: builds
// the homogenized CSR, loads one engine instance per executor,
// precomputes the PR/WCC vectors, builds the landmark sketch, and
// starts the executor goroutines. The returned server is serving.
func NewFromEdgeList(el *graph.EdgeList, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Admit.validate(); err != nil {
		return nil, err
	}
	csr := graph.BuildCSR(el, graph.BuildOptions{
		Symmetrize:    !el.Directed,
		DropSelfLoops: true,
		Dedup:         true,
		Sort:          true,
	})
	s := &Server{
		cfg:     cfg,
		el:      el,
		csr:     csr,
		admit:   newAdmitter(cfg.Admit),
		queue:   make(chan *pending, cfg.Admit.QueueCap),
		started: time.Now(),
		stopped: make(chan struct{}),
	}
	for i := 0; i < cfg.Executors; i++ {
		e, err := newExecutor(i, el, csr, cfg.Threads, cfg.Compress)
		if err != nil {
			return nil, err
		}
		s.execs = append(s.execs, e)
	}
	vec, err := s.execs[0].computeVectors()
	if err != nil {
		return nil, err
	}
	s.vec = vec
	s.sketch = BuildSketch(csr, cfg.Landmarks)
	s.sketchGen = 1
	for _, e := range s.execs {
		s.wg.Add(1)
		go s.serveLoop(e)
	}
	return s, nil
}

// NumVertices reports the homogenized vertex count (query ID space).
func (s *Server) NumVertices() int { return s.csr.NumVertices }

// Weighted reports whether SSSP queries are servable.
func (s *Server) Weighted() bool { return s.el.Weighted }

// Metrics returns the live counters.
func (s *Server) Metrics() MetricsSnapshot { return s.metrics.Snapshot() }

// QueueDepth returns the current admission queue depth.
func (s *Server) QueueDepth() int { return s.admit.Depth() }

// MaxQueueDepth returns the depth high-water mark.
func (s *Server) MaxQueueDepth() int { return s.admit.MaxDepth() }

// Close stops accepting queries, drains the executors, and waits for
// them to exit. Safe to call twice.
func (s *Server) Close() {
	if s.closed.CompareAndSwap(false, true) {
		close(s.stopped)
	}
	s.wg.Wait()
}

func (s *Server) vectors() vectors {
	s.vecMu.RLock()
	defer s.vecMu.RUnlock()
	return s.vec
}

// snapshot returns the precomputed state one query serves from — the
// vectors and the sketch taken under one lock, so a query never mixes
// pre-refresh vectors with a post-refresh sketch or vice versa.
func (s *Server) snapshot() (vectors, *Sketch) {
	s.vecMu.RLock()
	defer s.vecMu.RUnlock()
	return s.vec, s.sketch
}

// SketchGeneration returns the degradation sketch's generation:
// 1 after construction, +1 per successful refresh.
func (s *Server) SketchGeneration() uint64 {
	s.vecMu.RLock()
	defer s.vecMu.RUnlock()
	return s.sketchGen
}

// serveLoop is one executor's goroutine: dequeue, serve, respond.
// After Close it drains whatever is already queued (those callers
// were admitted and are waiting) and exits.
func (s *Server) serveLoop(e *executor) {
	defer s.wg.Done()
	for {
		select {
		case p := <-s.queue:
			s.serveOne(e, p)
		case <-s.stopped:
			for {
				select {
				case p := <-s.queue:
					s.serveOne(e, p)
				default:
					return
				}
			}
		}
	}
}

func (s *Server) serveOne(e *executor, p *pending) {
	s.admit.release()
	var resp Response
	if p.refresh || p.mutate != nil {
		resp = s.maintainOn(e, p)
		// Maintenance holds a queue slot but is not a query: keeping it
		// out of the outcome counters preserves the exact identity
		// completed+deadline+errors+panics == admitted.
		p.resC <- resp
		return
	}
	// Catch this executor's resident graph up with the acknowledged
	// mutation log before serving, so a query admitted after a mutate
	// completed never reads a pre-mutation structure.
	if err := s.syncExecutor(e); err != nil {
		resp = Response{Op: p.q.Op, Source: p.q.Source, Target: p.q.Target,
			Status: StatusError, Err: err.Error()}
	} else {
		vec, sketch := s.snapshot()
		resp = e.run(p.ctx, p.q, p.budget, p.degraded, vec, sketch)
	}
	switch resp.Status {
	case StatusOK:
		s.metrics.Completed.Add(1)
		if resp.Degraded {
			s.metrics.Degraded.Add(1)
		}
	case StatusDeadline:
		s.metrics.DeadlineExceeded.Add(1)
	case StatusPanic:
		s.metrics.Panics.Add(1)
	default:
		s.metrics.Errors.Add(1)
	}
	s.logQuery(p, resp)
	p.resC <- resp // buffered: never blocks, even if the caller left
}

func (s *Server) logQuery(p *pending, resp Response) {
	if s.cfg.QueryLog == nil {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	logfmt.EmitQuery(s.cfg.QueryLog, logfmt.QueryRecord{
		Seq:       p.seq,
		Op:        string(p.q.Op),
		Src:       uint32(p.q.Source),
		Dst:       uint32(p.q.Target),
		Status:    string(resp.Status),
		Degraded:  resp.Degraded,
		ModeledUS: resp.ModeledSec * 1e6,
		Depth:     p.depth,
	})
}

func (s *Server) logShed(seq int64, q Query, status Status, depth int) {
	if s.cfg.QueryLog == nil {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	logfmt.EmitQuery(s.cfg.QueryLog, logfmt.QueryRecord{
		Seq:    seq,
		Op:     string(q.Op),
		Src:    uint32(q.Source),
		Dst:    uint32(q.Target),
		Status: string(status),
		Depth:  depth,
	})
}

// syncExecutor replays any acknowledged mutation batches this
// executor's instance has not applied yet and rebinds its adjacency
// epoch. The log is append-only and e.gen is only touched by e's own
// serve goroutine, so a read-locked snapshot of the tail is safe.
func (s *Server) syncExecutor(e *executor) error {
	s.vecMu.RLock()
	var todo []graph.Batch
	if e.gen < len(s.batches) {
		todo = s.batches[e.gen:]
	}
	s.vecMu.RUnlock()
	if len(todo) == 0 {
		return nil
	}
	for _, b := range todo {
		if _, err := e.streamer.Mutate(b); err != nil {
			return fmt.Errorf("server: executor %d sync: %w", e.id, err)
		}
		e.gen++
	}
	e.csr = e.outCSR()
	return nil
}

// maintainOn executes a refresh or mutate entry on the dequeuing
// executor: sync the instance, apply the new batch (mutate only),
// re-converge the vectors incrementally, rebuild the degradation
// sketch on the post-batch adjacency, and swap vectors + sketch + log
// in one critical section. Queries keep flowing on the other
// executors throughout; they observe the new state atomically.
func (s *Server) maintainOn(e *executor, p *pending) Response {
	if err := s.syncExecutor(e); err != nil {
		return Response{Status: StatusError, Err: err.Error()}
	}
	if p.mutate != nil {
		rep, err := e.streamer.Mutate(p.mutate)
		if err != nil {
			// Validation failed atomically: the instance is unchanged
			// and the batch is not logged, so nothing diverges.
			return Response{Status: StatusError, Err: err.Error()}
		}
		p.mutRep = rep
		e.csr = e.outCSR()
	}
	vec, err := e.computeVectors()
	if err != nil {
		return Response{Status: StatusError, Err: err.Error()}
	}
	// The degradation sketch is precomputation too: a swap that
	// replaced the vectors but kept the old sketch would keep serving
	// degraded answers from stale state. Rebuild it on the current
	// epoch and swap everything in one critical section.
	sketch := BuildSketch(e.csr, s.cfg.Landmarks)
	s.vecMu.Lock()
	if p.mutate != nil {
		s.batches = append(s.batches, p.mutate)
		e.gen = len(s.batches)
	}
	s.vec = vec
	s.sketch = sketch
	s.sketchGen++
	s.vecMu.Unlock()
	return Response{Status: StatusOK}
}

// Submit runs one query through admission, the queue, and an
// executor, blocking until the response (or ctx cancellation while
// queued — the executor will also observe the cancellation through
// its hook and abandon the kernel at the next frontier).
func (s *Server) Submit(ctx context.Context, q Query) Response {
	seq := s.seq.Add(1)
	if s.closed.Load() {
		return Response{Op: q.Op, Source: q.Source, Target: q.Target,
			Status: StatusError, Err: "server closed"}
	}
	if err := q.validate(s.csr.NumVertices, s.el.Weighted, s.cfg.FaultInjection); err != nil {
		s.metrics.Rejected.Add(1)
		return Response{Op: q.Op, Source: q.Source, Target: q.Target,
			Status: StatusError, Err: err.Error()}
	}
	s.metrics.Offered.Add(1)
	now := time.Since(s.started).Seconds()
	depth := s.admit.Depth()
	dec := s.admit.tryAdmit(now, q.degradable(s.el.Weighted))
	switch dec {
	case shedQueueFull:
		s.metrics.ShedQueueFull.Add(1)
		s.logShed(seq, q, StatusShed, depth)
		return Response{Op: q.Op, Source: q.Source, Target: q.Target,
			Status: StatusShed, Err: "queue full"}
	case shedThrottled:
		s.metrics.ShedThrottled.Add(1)
		s.logShed(seq, q, StatusShed, depth)
		return Response{Op: q.Op, Source: q.Source, Target: q.Target,
			Status: StatusShed, Err: "rate limited"}
	}
	s.metrics.Admitted.Add(1)
	budget := q.DeadlineSec
	if budget <= 0 {
		budget = s.cfg.DefaultDeadlineSec
	}
	p := &pending{
		ctx:      ctx,
		q:        q,
		seq:      seq,
		budget:   budget,
		degraded: dec == admitDegraded,
		depth:    depth,
		resC:     make(chan Response, 1),
	}
	// Never blocks: entries in the channel cannot exceed the admitted
	// depth, and depth <= QueueCap == cap(queue) by the admitter.
	s.queue <- p
	select {
	case resp := <-p.resC:
		return resp
	case <-ctx.Done():
		// The executor will still process p (and observe ctx through
		// the hook); the buffered resC absorbs its response.
		return Response{Op: q.Op, Source: q.Source, Target: q.Target,
			Status: StatusDeadline, Err: ctx.Err().Error()}
	}
}

// Sentinel errors for the maintenance entry points, so transports can
// map them to distinct status codes.
var (
	// ErrClosed reports a server that no longer accepts work.
	ErrClosed = errors.New("server closed")
	// ErrOverloaded reports maintenance shed by the bounded queue.
	ErrOverloaded = errors.New("server overloaded")
	// ErrInvalidBatch wraps mutation-batch validation failures — the
	// client's error, rejected before any queue slot is taken.
	ErrInvalidBatch = errors.New("invalid mutation batch")
)

// Refresh recomputes the PR/WCC vectors on an executor, swapping them
// in atomically. It shares the bounded queue (a refresh is heavy
// executor work and must not bypass overload protection) but not the
// token bucket. The recompute runs through the incremental
// maintainers, so an up-to-date baseline swaps at near-zero modeled
// cost instead of re-paying full kernel runs.
func (s *Server) Refresh(ctx context.Context) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if !s.admit.tryReserve() {
		return fmt.Errorf("%w: refresh shed (queue full)", ErrOverloaded)
	}
	p := &pending{ctx: ctx, refresh: true, seq: s.seq.Add(1), resC: make(chan Response, 1)}
	s.queue <- p
	select {
	case resp := <-p.resC:
		if resp.Status != StatusOK {
			return fmt.Errorf("refresh failed: %s", resp.Err)
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Mutate applies one batch of edge mutations to the served graph: the
// dequeuing executor updates its resident structures in place,
// re-converges the PR/WCC vectors incrementally (bit-equal to a full
// recompute on the post-batch graph), rebuilds the degradation
// sketch, and swaps everything atomically. Concurrent queries are
// never dropped — they serve from the previous epoch until the swap,
// and executors replay the acknowledged batch log before serving.
// Like Refresh, a mutate holds a bounded-queue slot but stays out of
// the query outcome counters.
func (s *Server) Mutate(ctx context.Context, batch graph.Batch) (*engines.MutationReport, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if batch == nil {
		// Keep the maintenance marker non-nil so an empty batch still
		// routes through maintainOn (a harmless vector re-swap), never
		// through the query path.
		batch = graph.Batch{}
	}
	if err := batch.Validate(s.csr.NumVertices, s.el.Weighted); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidBatch, err)
	}
	if !s.admit.tryReserve() {
		return nil, fmt.Errorf("%w: mutate shed (queue full)", ErrOverloaded)
	}
	p := &pending{ctx: ctx, mutate: batch, seq: s.seq.Add(1), resC: make(chan Response, 1)}
	s.queue <- p
	select {
	case resp := <-p.resC:
		if resp.Status != StatusOK {
			return nil, fmt.Errorf("mutate failed: %s", resp.Err)
		}
		return p.mutRep, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
