// Package core defines the experiment model of easy-parallel-graph-*:
// the five framework phases, experiment specifications, root
// selection, and the normalized result records every later stage
// (parsing, analysis, reporting) consumes.
package core

import (
	"fmt"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/xrand"
)

// Phase names one of the five framework phases of the paper's Fig. 1.
// Each corresponds to a single shell command in the original.
type Phase string

// The five phases.
const (
	PhaseInstall    Phase = "install"
	PhaseHomogenize Phase = "homogenize"
	PhaseRun        Phase = "run"
	PhaseParse      Phase = "parse"
	PhaseAnalyze    Phase = "analyze"
)

// Phases lists the framework phases in execution order.
var Phases = []Phase{PhaseInstall, PhaseHomogenize, PhaseRun, PhaseParse, PhaseAnalyze}

// DefaultRoots is the number of search roots per graph, following the
// Graph500 specification the paper adopts (PageRank simply runs this
// many times).
const DefaultRoots = 32

// Spec describes one experiment: a dataset, an algorithm, a set of
// engines, and the execution parameters.
type Spec struct {
	// Dataset is a human-readable name ("kron-22", "dota-league").
	Dataset string
	// Algorithm to run.
	Algorithm engines.Algorithm
	// Engines by name; empty means every engine that supports the
	// algorithm.
	Engines []string
	// Threads is the virtual thread count (the paper's headline
	// configuration is 32).
	Threads int
	// Workers bounds the real goroutines executing region bodies;
	// 0 means min(Threads, GOMAXPROCS). Results and modeled durations
	// never depend on it — it only changes wall-clock time.
	Workers int
	// Roots is the number of roots/trials; 0 means DefaultRoots.
	Roots int
	// Seed drives root selection.
	Seed uint64
	// MeasurePower enables RAPL-style metering per root.
	MeasurePower bool
	// Sched overrides the scheduling policy of every parallel region
	// (SchedStatic, SchedDynamic, SchedSteal, or SchedNUMA). Empty
	// (SchedAuto) keeps each engine's own per-region choice — the
	// paper's configuration, where e.g. Graph500 is static and GAP
	// dynamic. The override changes both the real chunk assignment
	// and the modeled virtual-lane accounting.
	Sched string
	// Sockets is the virtual socket count of the locality model: the
	// steal simulation charges remote-steal and remote-chunk-access
	// penalties whenever a lane takes a chunk homed on another
	// socket's block of lanes, and the real work-stealing executor
	// uses the same count for its two-level victim order. 0 keeps one
	// virtual socket — no locality penalties, so SchedSteal retains
	// its historical durations and SchedNUMA coincides with it — and
	// lets the real executor derive a topology from GOMAXPROCS.
	Sockets int
	// RemotePenalty overrides the modeled remote-chunk-access
	// multiplier (the factor on a chunk's DRAM bytes when executed
	// off its home socket). 0 keeps the machine model's default;
	// values in (0, 1) are rejected — remote memory is never faster
	// than local.
	RemotePenalty float64
	// Grain selects the region grain policy. Empty or GrainFixed
	// keeps each engine's hand-picked per-region grain (the historical
	// behavior); GrainAdaptive derives every kernel region's grain
	// from the live region size and the virtual thread count
	// (frontier-proportional: about eight chunks per lane whatever the
	// frontier size), which keeps the steal policies live on the small
	// BFS/SSSP frontiers where fixed grains leave nothing to steal.
	// The chunk-count function is deterministic in (region size,
	// Threads), so outputs and modeled durations remain
	// schedule-independent.
	Grain string
	// Placement selects the locality model for resident data. Empty
	// or PlacementNone charges remote-access penalties for *stolen*
	// chunks only (the historical model); PlacementFirstTouch
	// additionally records first-touch socket ownership per page of
	// the region index space and charges RemotePenalty bytes whenever
	// a chunk — under any policy, static included — reads pages first
	// touched on another socket. Requires Sockets > 1 to have any
	// effect.
	Placement string
	// FreqState selects the modeled DVFS operating point (power
	// package): FreqTurbo (empty/default) keeps the calibration every
	// artifact historically used; FreqBalanced and FreqPowersave scale
	// the core clocks down and the CPU-plane dynamic power constants
	// superlinearly down (voltage–frequency coupling), stretching
	// compute-bound regions while memory-bound ones ride the unchanged
	// DRAM roofline. The scalings reach both the machine model and the
	// power constants, so modeled seconds AND joules move together —
	// the axis the energy study sweeps.
	FreqState string
	// Compress switches GAP and Graph500 to the delta+varint
	// byte-compressed adjacency (graph.CompressedCSR) in their BFS and
	// PageRank inner loops, decoding neighbors on the fly. The cost
	// model charges Model.DecodeCyclesPerByte per compressed byte and
	// routes the compressed bytes (not the raw 4 B/edge) into the
	// bandwidth, placement, and energy terms — the modeled roofline
	// decides where compression wins. Outputs are identical to the
	// uncompressed run; engines without a compressed path ignore the
	// knob.
	Compress bool
	// SyncSSSP switches GAP's delta-stepping and GraphBIG's
	// relaxation to their synchronous bucket/round-barrier modes,
	// making their parents, relaxation counts, and modeled durations
	// schedule-independent (the determinism wall). Engines whose SSSP
	// is already synchronous (GraphMat, PowerGraph) ignore it.
	SyncSSSP bool
	// Nodes is the virtual cluster node count of the modeled
	// distributed-memory mode: lanes group into nodes, the graph is
	// partitioned across them (Partition), and inter-node traffic is
	// charged through Model.NetBytesFactor/NetLatencyCycles with
	// messages batched per superstep. 0 or 1 keeps the single-box
	// model — the trace is byte-identical to a spec without the knob.
	// Outputs never depend on it; only modeled durations move.
	Nodes int
	// Partition selects how the cluster partitions the graph when
	// Nodes > 1: Partition1D (empty default) assigns contiguous
	// blocked vertex ranges; Partition2D derives per-vertex homes from
	// the greedy streaming vertex-cut (each vertex lives on its lowest
	// replica shard), the PowerGraph-style edge partition.
	Partition string
	// Mutations, when non-nil, appends a streaming phase after the
	// baseline trials: deterministic batches of edge inserts/deletes
	// are applied through the engine's Streamer hook and the result is
	// maintained incrementally, conformance-checked bit-equal against a
	// full recompute on the post-batch graph. Only PageRank and WCC
	// support incremental maintenance; engines without the hook get a
	// knob-drop warning and skip the phase.
	Mutations *MutationSchedule
}

// MutationSchedule parameterizes the streaming phase of a spec: how
// many batches, how many operations per batch, the delete fraction,
// and the seed driving batch generation. Batches are generated on the
// homogenized graph, so every engine sees the identical stream.
type MutationSchedule struct {
	// Batches is the number of successive mutation batches (>= 1).
	Batches int
	// BatchSize is the number of operations per batch (>= 1).
	BatchSize int
	// DeleteFrac is the probability each operation is a delete of an
	// existing edge (the rest are random inserts); in [0, 1].
	DeleteFrac float64
	// Seed drives batch generation, independently of Spec.Seed.
	Seed uint64
}

// Scheduling policy names for Spec.Sched.
const (
	// SchedAuto keeps each engine's own per-region policy.
	SchedAuto = ""
	// SchedStatic forces OpenMP schedule(static)-style round-robin.
	SchedStatic = "static"
	// SchedDynamic forces chunks off a shared counter
	// (schedule(dynamic)).
	SchedDynamic = "dynamic"
	// SchedSteal forces the work-stealing scheduler (per-worker
	// Chase–Lev deques with randomized victim selection).
	SchedSteal = "steal"
	// SchedNUMA forces the two-level (socket-aware) work-stealing
	// scheduler: same-socket victims are swept before remote ones,
	// and the locality model (Spec.Sockets, Spec.RemotePenalty)
	// charges cross-socket steals. With Sockets <= 1 it is
	// byte-identical to SchedSteal.
	SchedNUMA = "numa"
)

// Grain policy names for Spec.Grain.
const (
	// GrainFixed keeps each engine's per-region grain (default).
	GrainFixed = "fixed"
	// GrainAdaptive derives grains from region size × virtual threads.
	GrainAdaptive = "adaptive"
)

// Placement model names for Spec.Placement.
const (
	// PlacementNone charges locality penalties for stolen chunks only
	// (default).
	PlacementNone = "none"
	// PlacementFirstTouch adds the first-touch page-ownership model:
	// remotely-placed resident data is charged under every policy.
	PlacementFirstTouch = "firsttouch"
)

// Frequency-state names for Spec.FreqState. The scalings live in the
// power package (power.FreqStateByName); these are the Spec-level
// names, validated here like the other knobs.
const (
	// FreqTurbo is the default operating point: no scaling, the
	// historical calibration.
	FreqTurbo = "turbo"
	// FreqBalanced runs the cores at 0.8× clock with dynamic power
	// scaled by voltage–frequency coupling.
	FreqBalanced = "balanced"
	// FreqPowersave runs the cores at 0.6× clock, the deepest modeled
	// P-state.
	FreqPowersave = "powersave"
)

// Partition scheme names for Spec.Partition.
const (
	// Partition1D assigns contiguous blocked vertex ranges to nodes
	// (default).
	Partition1D = "1d"
	// Partition2D homes each vertex on its lowest greedy-vertex-cut
	// replica shard — the PowerGraph-style edge partition.
	Partition2D = "2d"
)

// MaxNodes bounds Spec.Nodes: the 2D partitioner's replica sets are
// one 64-bit mask (graph.MaxVertexCutShards).
const MaxNodes = 64

// NumRoots returns the effective root count.
func (s Spec) NumRoots() int {
	if s.Roots > 0 {
		return s.Roots
	}
	return DefaultRoots
}

// Validate rejects malformed specs.
func (s Spec) Validate() error {
	if s.Dataset == "" {
		return fmt.Errorf("core: spec missing dataset")
	}
	if s.Algorithm == "" {
		return fmt.Errorf("core: spec missing algorithm")
	}
	if s.Threads < 1 {
		return fmt.Errorf("core: spec needs threads >= 1, got %d", s.Threads)
	}
	switch s.Sched {
	case SchedAuto, SchedStatic, SchedDynamic, SchedSteal, SchedNUMA:
	default:
		return fmt.Errorf("core: unknown scheduling policy %q (want %q, %q, %q or %q)",
			s.Sched, SchedStatic, SchedDynamic, SchedSteal, SchedNUMA)
	}
	switch s.Grain {
	case "", GrainFixed, GrainAdaptive:
	default:
		return fmt.Errorf("core: unknown grain policy %q (want %q or %q)",
			s.Grain, GrainFixed, GrainAdaptive)
	}
	switch s.Placement {
	case "", PlacementNone, PlacementFirstTouch:
	default:
		return fmt.Errorf("core: unknown placement model %q (want %q or %q)",
			s.Placement, PlacementNone, PlacementFirstTouch)
	}
	switch s.FreqState {
	case "", FreqTurbo, FreqBalanced, FreqPowersave:
	default:
		return fmt.Errorf("core: unknown frequency state %q (want %q, %q or %q)",
			s.FreqState, FreqTurbo, FreqBalanced, FreqPowersave)
	}
	if s.Sockets < 0 {
		return fmt.Errorf("core: spec needs sockets >= 0, got %d", s.Sockets)
	}
	if s.RemotePenalty != 0 && s.RemotePenalty < 1 {
		return fmt.Errorf("core: remote penalty must be 0 (model default) or >= 1, got %g", s.RemotePenalty)
	}
	if s.Nodes < 0 || s.Nodes > MaxNodes {
		return fmt.Errorf("core: spec needs 0 <= nodes <= %d, got %d", MaxNodes, s.Nodes)
	}
	switch s.Partition {
	case "", Partition1D, Partition2D:
	default:
		return fmt.Errorf("core: unknown partition scheme %q (want %q or %q)",
			s.Partition, Partition1D, Partition2D)
	}
	if ms := s.Mutations; ms != nil {
		if ms.Batches < 1 {
			return fmt.Errorf("core: mutation schedule needs batches >= 1, got %d", ms.Batches)
		}
		if ms.BatchSize < 1 {
			return fmt.Errorf("core: mutation schedule needs batch size >= 1, got %d", ms.BatchSize)
		}
		if ms.DeleteFrac < 0 || ms.DeleteFrac > 1 {
			return fmt.Errorf("core: mutation delete fraction must be in [0, 1], got %g", ms.DeleteFrac)
		}
		switch s.Algorithm {
		case engines.PageRank, engines.WCC:
		default:
			return fmt.Errorf("core: streaming mutations support pr and wcc, not %s", s.Algorithm)
		}
	}
	return nil
}

// SelectRoots picks count distinct search roots with degree greater
// than one, as the Graph500 specification requires. Selection is
// deterministic in the seed. If the graph has fewer qualifying
// vertices than requested, all of them are returned.
func SelectRoots(csr *graph.CSR, count int, seed uint64) []graph.VID {
	var candidates []graph.VID
	for v := 0; v < csr.NumVertices; v++ {
		if csr.Degree(graph.VID(v)) > 1 {
			candidates = append(candidates, graph.VID(v))
		}
	}
	if len(candidates) <= count {
		return candidates
	}
	r := xrand.New(seed ^ 0x9007)
	r.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	return candidates[:count]
}

// Result is one measured run: a single (engine, algorithm, root)
// execution with its phase breakdown. Times are in seconds.
type Result struct {
	Engine    string
	Dataset   string
	Algorithm engines.Algorithm
	Threads   int
	Trial     int
	Root      graph.VID

	// Phase breakdown (modeled machine time). FileRead and
	// Construction are zero for phases an engine does not expose
	// separately; HasConstruction records whether Construction is
	// meaningful (Figs. 2/3 omit engines without it).
	FileReadSec     float64
	ConstructionSec float64
	AlgorithmSec    float64
	HasConstruction bool

	// WallSec is the real elapsed time of the algorithm phase in
	// this process — reported alongside, never mixed with modeled
	// time.
	WallSec float64

	// Algorithm-specific outputs.
	Iterations    int   // PageRank/CDLP
	EdgesExamined int64 // traversals (TEPS basis)

	// Streaming-phase fields (Spec.Mutations). Batch is the 1-based
	// batch index, zero on baseline rows. MutateSec is the modeled cost
	// of applying the batch to the resident structures, MaintainSec the
	// incremental re-convergence, and RecomputeSec the displaced
	// alternative — rebuild plus cold recompute on the post-batch graph
	// — measured on a fresh machine with the same spec knobs.
	Batch        int
	MutateSec    float64
	MaintainSec  float64
	RecomputeSec float64

	// NetBytes is the modeled inter-node message traffic of the
	// algorithm phase (zero on single-box specs; see Spec.Nodes).
	NetBytes float64

	// Power metering (zero unless requested).
	CPUJoules   float64
	RAMJoules   float64
	AvgCPUWatts float64
	AvgRAMWatts float64
}

// TEPS returns traversed edges per second for traversal kernels, the
// Graph500's figure of merit.
func (r Result) TEPS() float64 {
	if r.AlgorithmSec <= 0 || r.EdgesExamined <= 0 {
		return 0
	}
	return float64(r.EdgesExamined) / r.AlgorithmSec
}

// Key returns a stable grouping key for analysis.
func (r Result) Key() string {
	return fmt.Sprintf("%s/%s/%s/t%d", r.Dataset, r.Algorithm, r.Engine, r.Threads)
}
