// Energy determinism wall: the scheduling study's joules columns are
// only a valid drift-gate payload (and only host-independent) if the
// energy integral is a pure function of the Spec. This wall pins that
// for all six kernels: total joules are bit-identical across repeated
// runs and real worker counts, under both the default per-engine
// policies and the full locality configuration the study sweeps (numa
// × sockets × adaptive grain × first-touch placement). It complements
// the duration walls in determinism_test.go, which since the energy
// columns landed also bit-compare per-run joules via sameDurations.
package all

import (
	"math"
	"testing"

	"github.com/hpcl-repro/epg/internal/core"
	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/harness"
	"github.com/hpcl-repro/epg/internal/kronecker"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

func TestEnergyDeterministicAllKernels(t *testing.T) {
	el, root := determinismGraph()
	configs := []struct {
		name string
		opts runOpts
	}{
		{"default", runOpts{syncSSSP: true}},
		{"locality", runOpts{syncSSSP: true, sched: simmachine.NUMA, override: true,
			sockets: 4, adaptive: true, placement: true}},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			for _, alg := range engines.AllAlgorithms {
				t.Run(string(alg), func(t *testing.T) {
					for _, name := range Names {
						eng, err := Registry().New(name)
						if err != nil {
							t.Fatal(err)
						}
						if !eng.Has(alg) {
							continue
						}
						t.Run(name, func(t *testing.T) {
							base := runKernelOpts(t, name, alg, el, root, workerCounts[0], cfg.opts)
							if base.cpuJoules <= 0 || base.ramJoules <= 0 {
								t.Fatalf("no energy recorded: cpu %v J, ram %v J", base.cpuJoules, base.ramJoules)
							}
							for _, workers := range workerCounts {
								got := runKernelOpts(t, name, alg, el, root, workers, cfg.opts)
								if math.Float64bits(got.cpuJoules) != math.Float64bits(base.cpuJoules) ||
									math.Float64bits(got.ramJoules) != math.Float64bits(base.ramJoules) {
									t.Errorf("workers=%d: joules (%v cpu, %v ram) != base (%v cpu, %v ram)",
										workers, got.cpuJoules, got.ramJoules, base.cpuJoules, base.ramJoules)
								}
							}
						})
					}
				})
			}
		})
	}
}

// TestSpecFreqKnobEndToEnd drives Spec.FreqState through the harness:
// "turbo" must be byte-identical to the default empty state, lower
// operating points must stretch modeled time while drawing less
// average CPU power (the DVFS trade the study sweeps), joules must
// stay bit-identical across worker counts at every state, and an
// unknown state must be rejected.
func TestSpecFreqKnobEndToEnd(t *testing.T) {
	el := kronecker.Generate(kronecker.Params{Scale: 9, Seed: 7})
	r := harness.NewRunner(Registry())
	run := func(freq string, workers int) []core.Result {
		spec := coreSpec(engines.PageRank, workers)
		spec.Engines = []string{GAP}
		spec.FreqState = freq
		spec.MeasurePower = true
		rs, err := r.Run(spec, el)
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}

	turboDefault := run("", 1)
	turboNamed := run(core.FreqTurbo, 1)
	for i := range turboDefault {
		a, b := turboDefault[i], turboNamed[i]
		if math.Float64bits(a.AlgorithmSec) != math.Float64bits(b.AlgorithmSec) ||
			math.Float64bits(a.CPUJoules) != math.Float64bits(b.CPUJoules) ||
			math.Float64bits(a.RAMJoules) != math.Float64bits(b.RAMJoules) {
			t.Errorf("trial %d: named turbo differs from default: %+v vs %+v", i, b, a)
		}
	}

	for _, freq := range []string{core.FreqBalanced, core.FreqPowersave} {
		slow := run(freq, 1)
		for i := range slow {
			if slow[i].AlgorithmSec <= turboDefault[i].AlgorithmSec {
				t.Errorf("%s trial %d: modeled %v s not above turbo %v s",
					freq, i, slow[i].AlgorithmSec, turboDefault[i].AlgorithmSec)
			}
			if slow[i].AvgCPUWatts >= turboDefault[i].AvgCPUWatts {
				t.Errorf("%s trial %d: avg cpu %v W not below turbo %v W",
					freq, i, slow[i].AvgCPUWatts, turboDefault[i].AvgCPUWatts)
			}
		}
		for _, workers := range []int{2, 4} {
			again := run(freq, workers)
			for i := range slow {
				if math.Float64bits(again[i].CPUJoules) != math.Float64bits(slow[i].CPUJoules) ||
					math.Float64bits(again[i].RAMJoules) != math.Float64bits(slow[i].RAMJoules) {
					t.Errorf("%s workers=%d trial %d: joules drifted across workers", freq, workers, i)
				}
			}
		}
	}

	bad := coreSpec(engines.BFS, 1)
	bad.FreqState = "overclocked"
	if _, err := r.Run(bad, el); err == nil {
		t.Error("unknown frequency state accepted")
	}
}
