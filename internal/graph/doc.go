// Package graph provides the shared graph representations used by all
// engines: unsorted edge lists (the Graph500 "kernel 0" output),
// compressed sparse row (CSR) structures, and a delta/varint
// byte-compressed adjacency variant (CompressedCSR), along with
// parallel builders and degree utilities.
//
// Vertices are dense integers in [0, N). Edge weights are float32 in
// (0, 1], matching the Graph500 SSSP specification; unweighted graphs
// carry a nil weight slice. All builders are deterministic for a fixed
// input regardless of parallelism.
//
// # Representations
//
// EdgeList is the unstructured input every engine homogenizes from.
// CSR is the canonical adjacency structure: Offsets (int64 row
// starts), Adj (uint32 neighbor IDs), optional parallel Weights.
// BuildCSR and Transpose construct it with zero per-edge atomics
// (per-worker degree histograms merged by parallel.ScanInt64, then a
// scatter into per-(worker,vertex) reserved sub-ranges).
//
// CompressedCSR is the Ligra+/GBBS-style byte-compressed sibling for
// bandwidth-bound traversal: each vertex's sorted neighbor list is
// stored as a varint degree, a zigzag-varint first-neighbor delta from
// the vertex ID, and unsigned varint gaps between consecutive
// neighbors. CompressCSR builds it from a sorted CSR with the same
// atomic-free discipline (per-vertex byte sizes merged by ScanInt64,
// then a range-reserved encode into one shared byte buffer), so the
// byte layout is deterministic at any worker count. Kernels decode on
// the fly through NeighborDecoder (allocation-free, reports bytes
// consumed so cost models can charge exactly the decoded prefix) or
// DecodeNeighbors (scratch-buffer bulk decode). Weights are not
// compressed; weighted kernels keep the raw CSR.
package graph
