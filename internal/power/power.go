// Package power models CPU-package and DRAM power the way the paper
// measures it through PAPI's RAPL interface, and exposes an API that
// mirrors the paper's Fig. 10 instrumentation
// (power_rapl_init/start/end/print).
//
// Real RAPL reads model-specific registers that this environment (and
// any non-Intel host — a portability limit the paper itself notes)
// cannot access. Instead, power is computed from the simulated
// machine's activity trace: every region contributes package power as
// a function of active lanes, instruction throughput, and atomic-
// operation rate, and DRAM power as a function of memory traffic.
// Idle (sleeping) power matches the paper's own calibration: Table III
// implies Sleeping Energy / Time ≈ 24.7 W on their server, which we
// split between package and DRAM planes.
//
// Integrating P(t) over a measurement window yields energy in joules,
// exactly what PAPI returns (RAPL reports energy, not power).
package power

import (
	"fmt"
	"io"

	"github.com/hpcl-repro/epg/internal/simmachine"
)

// Constants calibrated against the paper's Table III and Fig. 9 (see
// package comment). Units: watts, or watts per unit rate.
type Constants struct {
	// Idle plane power.
	CPUIdleWatts float64
	RAMIdleWatts float64

	// CPU dynamic power: per busy lane (scaled by utilization), per
	// 1e9 cycles/s of aggregate instruction throughput, and per 1e6
	// atomics/s (contended RMWs keep execution units and the
	// coherence fabric busy).
	LaneWatts       float64
	ThroughputWatts float64 // per Gcycle/s
	AtomicWatts     float64 // per Matomic/s

	// DRAM dynamic power per GB/s of traffic.
	BandwidthWatts float64
}

// DefaultConstants returns the Haswell-EP calibration.
func DefaultConstants() Constants {
	return Constants{
		CPUIdleWatts:    15.5,
		RAMIdleWatts:    9.2,
		LaneWatts:       1.55,
		ThroughputWatts: 0.10,
		AtomicWatts:     0.05,
		BandwidthWatts:  0.22,
	}
}

// SleepWatts returns the total (CPU+RAM) idle draw, the quantity the
// paper measures with a ten-second sleep().
func (c Constants) SleepWatts() float64 { return c.CPUIdleWatts + c.RAMIdleWatts }

// regionPower returns (cpuWatts, ramWatts) during the given region.
func (c Constants) regionPower(r simmachine.Region) (float64, float64) {
	cpu := c.CPUIdleWatts
	ram := c.RAMIdleWatts
	if r.Seconds <= 0 {
		return cpu, ram
	}
	if r.ActiveLanes > 0 {
		busyLanes := float64(r.ActiveLanes)
		if r.Lanes > 0 {
			busyLanes = float64(r.Lanes) * r.Utilization
		}
		cpu += c.LaneWatts * busyLanes
		cpu += c.ThroughputWatts * (r.Cost.Cycles / r.Seconds / 1e9)
		cpu += c.AtomicWatts * (r.Cost.Atomics / r.Seconds / 1e6)
	}
	ram += c.BandwidthWatts * (r.Cost.Bytes / r.Seconds / 1e9)
	return cpu, ram
}

// MeasureTrace integrates the power model over a slice of trace
// regions and returns the reading: the window's seconds are the sum of
// region durations, and each region contributes watts × seconds per
// plane. This is the single evaluation path — RAPL windows and the
// scheduling study's per-run joules both flow through it — so every
// consumer prices a region identically. The result is a pure function
// of (c, regions): bit-deterministic and host-independent.
func (c Constants) MeasureTrace(regions []simmachine.Region) Reading {
	var rd Reading
	for _, reg := range regions {
		cpuW, ramW := c.regionPower(reg)
		rd.Seconds += reg.Seconds
		rd.CPUJoules += cpuW * reg.Seconds
		rd.RAMJoules += ramW * reg.Seconds
	}
	return rd
}

// Reading is the result of one measurement window, in the units PAPI
// reports (joules; derived averages in watts).
type Reading struct {
	Seconds   float64
	CPUJoules float64
	RAMJoules float64
}

// TotalJoules returns package + DRAM energy.
func (r Reading) TotalJoules() float64 { return r.CPUJoules + r.RAMJoules }

// EDP returns the window's energy-delay product (total joules ×
// seconds), the metric that rewards being fast AND frugal: a slower
// frequency state only wins EDP when its energy saving outpaces its
// slowdown. Zero or negative windows have no meaningful delay.
func (r Reading) EDP() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return r.TotalJoules() * r.Seconds
}

// AvgCPUWatts returns mean package power over the window.
func (r Reading) AvgCPUWatts() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return r.CPUJoules / r.Seconds
}

// AvgRAMWatts returns mean DRAM power over the window.
func (r Reading) AvgRAMWatts() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return r.RAMJoules / r.Seconds
}

// AvgWatts returns mean total power over the window.
func (r Reading) AvgWatts() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return r.TotalJoules() / r.Seconds
}

// Print writes the reading in the spirit of power_rapl_print.
func (r Reading) Print(w io.Writer) {
	fmt.Fprintf(w, "PACKAGE_ENERGY: %.6f J\n", r.CPUJoules)
	fmt.Fprintf(w, "DRAM_ENERGY:    %.6f J\n", r.RAMJoules)
	fmt.Fprintf(w, "ELAPSED:        %.6f s\n", r.Seconds)
	fmt.Fprintf(w, "AVG_POWER:      %.3f W (cpu %.3f, dram %.3f)\n",
		r.AvgWatts(), r.AvgCPUWatts(), r.AvgRAMWatts())
}

// RAPL is a measurement session bound to a machine, mirroring the
// power_rapl_t of the paper's Fig. 10. A window is a pair of trace
// cursors on one machine; the machine must keep tracing enabled and
// must not be Reset while a window is open — both would silently
// corrupt the energy integral, so Start and End fail loudly (panic)
// instead.
type RAPL struct {
	m        *simmachine.Machine
	c        Constants
	startIdx int
	startGen uint64
	running  bool
}

// NewRAPL initializes a session (power_rapl_init).
func NewRAPL(m *simmachine.Machine, c Constants) *RAPL {
	return &RAPL{m: m, c: c}
}

// Start begins a measurement window (power_rapl_start). It panics if
// trace retention is disabled: with no regions recorded the window
// would report positive seconds and zero joules.
func (p *RAPL) Start() {
	if !p.m.Tracing() {
		panic("power: RAPL.Start with machine tracing disabled — the energy integral needs the region trace (simmachine.Machine.SetTracing)")
	}
	p.startIdx, _ = p.m.Mark()
	p.startGen = p.m.Generation()
	p.running = true
}

// End closes the window and returns its reading (power_rapl_end). It
// panics if the machine was Reset inside the window: the start cursor
// indexes a truncated trace, so the slice would be out of range or —
// worse — a silently wrong reading. Measure around Reset, not across
// it.
func (p *RAPL) End() Reading {
	if !p.running {
		return Reading{}
	}
	p.running = false
	if gen := p.m.Generation(); gen != p.startGen {
		panic("power: RAPL window spans a Machine.Reset — the start cursor indexes a discarded trace generation; End() before Reset, or Start() after it")
	}
	endIdx, _ := p.m.Mark()
	return p.c.MeasureTrace(p.m.Trace()[p.startIdx:endIdx])
}

// MeasureSleep reproduces the paper's baseline: the machine sleeps for
// the given duration and the reading reports the idle draw.
func MeasureSleep(m *simmachine.Machine, c Constants, seconds float64) Reading {
	r := NewRAPL(m, c)
	r.Start()
	m.Sleep(seconds)
	return r.End()
}
