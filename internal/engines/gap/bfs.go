package gap

import (
	"sync/atomic"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/parallel"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// BFS implements engines.Instance with the direction-optimizing
// algorithm of Beamer et al.: top-down steps process the frontier and
// claim children with a priority write (min parent wins); once the
// frontier's outgoing edge count exceeds the unexplored edge count
// divided by α, the search switches to bottom-up steps in which every
// unvisited vertex scans its in-neighbors for a parent (no atomics
// needed — each vertex writes only its own state); it switches back
// once the frontier shrinks below n/β. Setting Alpha <= 0 disables
// bottom-up entirely (pure top-down), which the ablation benchmarks
// use.
//
// Execution runs on the shared parallel runtime and is deterministic:
// claims are write-min (so every claimed vertex ends with its minimum
// frontier in-neighbor as parent, matching the bottom-up rule over
// sorted adjacency), frontiers are canonicalized by sorting, and every
// charged cost is a function of chunk contents only — never of the
// goroutine schedule.
func (inst *Instance) BFS(root graph.VID) (*engines.BFSResult, error) {
	inst.ensureBuilt()
	n := inst.n
	res := &engines.BFSResult{
		Root:   root,
		Parent: make([]int64, n),
		Depth:  make([]int64, n),
	}
	parent := res.Parent
	depth := res.Depth
	for i := range parent {
		parent[i] = engines.NoParent
		depth[i] = -1
	}
	parent[root] = int64(root)
	depth[root] = 0

	next := parallel.NewQueue[graph.VID](n)
	frontier := []graph.VID{root}
	scout := inst.out.Degree(root)
	level := int64(0)
	edgesUnexplored := inst.mEdges
	bottomUp := false
	var edgesExamined int64

	for len(frontier) > 0 {
		if inst.eng.Alpha > 0 {
			if !bottomUp && scout > edgesUnexplored/int64(inst.eng.Alpha) {
				bottomUp = true
			} else if bottomUp && int64(len(frontier)) < int64(n)/int64(inst.eng.Beta) {
				bottomUp = false
			}
		}

		next.Reset()
		var examined, nextScout int64
		if bottomUp {
			examined, nextScout = inst.stepBottomUp(parent, depth, level, next)
		} else {
			examined, nextScout = inst.stepTopDown(frontier, parent, depth, level, next)
		}
		edgesExamined += examined
		edgesUnexplored -= scout
		// Sorting canonicalizes the frontier: which worker discovered a
		// vertex is a race, but the set is not, so the sorted order —
		// and with it every later chunk boundary — is deterministic.
		frontier = append(frontier[:0], parallel.SortedQueueSlice(next)...)
		scout = nextScout
		level++
	}
	res.EdgesExamined = edgesExamined
	return res, nil
}

// stepTopDown expands the frontier along out-edges, claiming children
// with a write-min on the parent array. The next frontier is collected
// through the atomic queue (per-chunk batches; the real suite's
// per-thread queues). Charged costs depend only on the frontier slice
// a chunk owns: scan cost per edge, one atomic per edge whose target
// is not yet finalized (the set of such edges is fixed by the previous
// levels), and queue cycles per dequeued vertex.
func (inst *Instance) stepTopDown(frontier []graph.VID, parent, depth []int64, level int64, next *parallel.Queue[graph.VID]) (examined, nextScout int64) {
	exa := parallel.NewCounter(inst.m.Workers())
	sct := parallel.NewCounter(inst.m.Workers())
	inst.m.ParallelForChunks(len(frontier), 64, simmachine.Dynamic, func(lo, hi, chunk, worker int, w *simmachine.W) {
		var local []graph.VID
		var edges, claims, localScout int64
		for _, v := range frontier[lo:hi] {
			for _, u := range inst.out.Neighbors(v) {
				edges++
				// Finalized before this level (root included): skip.
				// Racing claims from this level read -1 or level+1 —
				// both sides of the race take the claim path, so the
				// eligible-edge count is schedule-independent.
				if d := atomic.LoadInt64(&depth[u]); d != -1 && d != level+1 {
					continue
				}
				claims++
				if parallel.WriteMinInt64(&parent[u], int64(v), engines.NoParent) {
					// Exactly one claimer observes the first write:
					// it owns discovery (queue push, scout count).
					atomic.StoreInt64(&depth[u], level+1)
					local = append(local, u)
					localScout += inst.out.Degree(u)
				}
			}
		}
		next.PushBatch(local)
		exa.Add(worker, edges)
		sct.Add(worker, localScout)
		w.Charge(costTopDownEdge.Scale(float64(edges)))
		w.Charge(costClaim.Scale(float64(claims)))
		w.Cycles(float64(hi-lo) * 6) // queue pop + amortized push/sort
	})
	return exa.Sum(), sct.Sum()
}

// stepBottomUp scans unvisited vertices for a parent on the frontier
// (identified by depth == level). Each vertex mutates only its own
// entries, so no atomics are charged — the source of GAP's superior
// scaling on low-diameter graphs. Taking the first match in sorted
// in-adjacency yields the minimum-ID parent, the same rule the
// top-down write-min enforces.
func (inst *Instance) stepBottomUp(parent, depth []int64, level int64, next *parallel.Queue[graph.VID]) (examined, nextScout int64) {
	n := inst.n
	exa := parallel.NewCounter(inst.m.Workers())
	sct := parallel.NewCounter(inst.m.Workers())
	inst.m.ParallelForChunks(n, 1024, simmachine.Dynamic, func(lo, hi, chunk, worker int, w *simmachine.W) {
		var local []graph.VID
		var edges, localScout int64
		for v := lo; v < hi; v++ {
			if parent[v] != engines.NoParent {
				continue
			}
			for _, u := range inst.in.Neighbors(graph.VID(v)) {
				edges++
				// depth[u] == level implies u was claimed in an
				// earlier step, so its entry is stable this region.
				if atomic.LoadInt64(&depth[u]) == level {
					parent[v] = int64(u)
					atomic.StoreInt64(&depth[v], level+1)
					local = append(local, graph.VID(v))
					localScout += inst.out.Degree(graph.VID(v))
					break
				}
			}
		}
		next.PushBatch(local)
		exa.Add(worker, edges)
		sct.Add(worker, localScout)
		w.Charge(costBottomUpEdge.Scale(float64(edges)))
		w.Cycles(float64(hi-lo) * 2) // visited-bitmap test per vertex
		w.Bytes(float64(hi-lo) * 1)
	})
	return exa.Sum(), sct.Sum()
}
