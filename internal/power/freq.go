package power

import (
	"fmt"

	"github.com/hpcl-repro/epg/internal/simmachine"
)

// FreqState is one modeled DVFS operating point (Spec.FreqState): a
// named pair of scalings applied to the machine's core clocks and to
// the CPU-plane dynamic power constants. The paper measures a single
// fixed governor; modeling a small set of P-state-like points lets the
// scheduling study answer its energy question — which policy × grain ×
// placement × frequency is fastest *per joule* — the way a DVFS sweep
// on the real machine would.
//
// The scalings follow classic voltage–frequency coupling with voltage
// roughly linear in frequency over the DVFS range: per-lane dynamic
// power P ∝ f·V² scales as Clock³, and per-event (per-cycle,
// per-atomic) energy E ∝ V² scales as Clock². The DRAM plane
// (BandwidthWatts, RAMIdleWatts) and the package idle draw
// (CPUIdleWatts — leakage and uncore, largely governor-independent)
// are untouched, which reproduces the real trade-off: memory-bound
// regions barely slow down at a lower point (the DRAM roofline is
// clock-independent) while their CPU dynamic draw drops, but
// compute-bound regions stretch and pay the idle draw for longer —
// race-to-idle can win.
//
// All factors are literal constants, so scaled models and constants —
// and every joule derived from them — remain bit-deterministic and
// host-independent.
type FreqState struct {
	Name string
	// Clock multiplies both core clocks (TurboHz, BaseHz); cycle time
	// divides by it. Costs expressed in cycles (AtomicCycles,
	// RemoteStealCycles, ParseCyclesPerByte) stretch automatically.
	Clock float64
	// LanePower multiplies LaneWatts (per busy lane, P ∝ f·V² ≈ Clock³).
	LanePower float64
	// CyclePower multiplies ThroughputWatts and AtomicWatts (per-event
	// energy, E ∝ V² ≈ Clock²).
	CyclePower float64
}

// The modeled operating points. FreqTurbo is the identity — the
// calibration every artifact used before the frequency axis existed.
var (
	freqTurbo     = FreqState{Name: "turbo", Clock: 1, LanePower: 1, CyclePower: 1}
	freqBalanced  = FreqState{Name: "balanced", Clock: 0.8, LanePower: 0.512, CyclePower: 0.64}
	freqPowersave = FreqState{Name: "powersave", Clock: 0.6, LanePower: 0.216, CyclePower: 0.36}
)

// FreqStates lists the modeled operating points, fastest first.
func FreqStates() []FreqState {
	return []FreqState{freqTurbo, freqBalanced, freqPowersave}
}

// FreqStateByName resolves a Spec.FreqState name. The empty string is
// the default point, turbo (no scaling).
func FreqStateByName(name string) (FreqState, error) {
	if name == "" {
		return freqTurbo, nil
	}
	for _, f := range FreqStates() {
		if f.Name == name {
			return f, nil
		}
	}
	return FreqState{}, fmt.Errorf("power: unknown frequency state %q (want %q, %q or %q)",
		name, freqTurbo.Name, freqBalanced.Name, freqPowersave.Name)
}

// ScaleModel returns the machine model at this operating point: core
// clocks multiplied by Clock, everything else untouched (DRAM and disk
// bandwidth, synchronization seconds, locality factors). Turbo returns
// the model bit-identical.
func (f FreqState) ScaleModel(m simmachine.Model) simmachine.Model {
	m.TurboHz *= f.Clock
	m.BaseHz *= f.Clock
	return m
}

// ScaleConstants returns the power calibration at this operating
// point: LaneWatts × LanePower, ThroughputWatts and AtomicWatts ×
// CyclePower; idle draws and the DRAM plane untouched. Turbo returns
// the constants bit-identical.
func (f FreqState) ScaleConstants(c Constants) Constants {
	c.LaneWatts *= f.LanePower
	c.ThroughputWatts *= f.CyclePower
	c.AtomicWatts *= f.CyclePower
	return c
}
