// Package graphbig implements a Go analogue of GraphBIG (Nai et al.,
// SC'15), IBM System G's benchmark suite.
//
// Architectural character preserved from the original:
//
//   - a property-graph layout: per-vertex objects own their adjacency
//     lists (slice-of-slices here, matching the pointer-chasing and
//     allocation overhead of System G's vertex/edge property model);
//   - the input file is read and the graph built simultaneously —
//     there is no separately-timed construction phase, which is why
//     Figs. 2 and 3 omit GraphBIG from the construction plots;
//   - frontier-based kernels guard shared state with per-vertex
//     atomics (System G uses fine-grained locks), making GraphBIG the
//     most synchronization-heavy shared-memory system in the study;
//   - SSSP is chaotic parallel Bellman-Ford relaxation by default; a
//     synchronous round-barrier variant (Engine.SyncSSSP) makes its
//     parents, relaxation counts, and modeled durations
//     schedule-independent;
//   - PageRank computes in float32 (single-precision vertex
//     properties), so the homogenized ε = 6e-8 L1 stop sits at the
//     precision floor.
//
// Known fidelity gaps: System G's per-vertex mutex traffic is modeled
// as atomic-RMW charges rather than executed locks (Go kernels use
// CAS helpers from internal/parallel), and its C++ object allocator
// behavior is approximated by slice-of-slices indirection costs. The
// suite's GPU and streaming workloads are out of scope; only the six
// study kernels exist. All timing is simmachine-modeled, not
// measured.
package graphbig
