package gap

import (
	"sync/atomic"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/parallel"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// Frontier grains: small top-down chunks keep skewed frontiers
// balanced; bottom-up sweeps the whole vertex range in larger chunks.
// Both are multiples of 64 so bitmap chunks never share words. These
// are the GrainFixed bases; under Spec.Grain = "adaptive" every
// region resolves its grain through Machine.Grain instead
// (frontier-proportional, so small levels still split into enough
// chunks to steal). Bottom-up passes align 64 because each chunk
// clears its own word range of the next bitmap in-region.
const (
	bfsTopDownGrain  = 64
	bfsBottomUpGrain = 1024
	// bfsBitmapWordGrain is the modeled chunking of bitmap-word sweeps
	// (the real sweep runs inside Bitmap.ToSlice at the same grain).
	bfsBitmapWordGrain = 256
)

// BFS implements engines.Instance with the direction-optimizing
// algorithm of Beamer et al.: top-down steps process the frontier and
// claim children with a priority write (min parent wins); once the
// frontier's outgoing edge count exceeds the unexplored edge count
// divided by α, the search switches to bottom-up steps in which every
// unvisited vertex scans its in-neighbors for a parent (no atomics
// needed — each vertex writes only its own state); it switches back
// once the frontier shrinks below n/β. Setting Alpha <= 0 disables
// bottom-up entirely (pure top-down), which the ablation benchmarks
// use.
//
// Frontiers are deterministic by construction, never by sorting — the
// sliding-queue discipline of the real suite. Top-down collects
// tentative claims in a chunk-ordered queue and drains it with the
// final write-min parents as the filter, so the next frontier's
// membership and order are schedule-independent; bottom-up keeps the
// frontier as a bitmap (set bits are idempotent), and the two
// representations convert into each other at the direction switch
// exactly as GAP's sliding queue does. Every charged cost is a
// function of chunk contents only — never of the goroutine schedule.
func (inst *Instance) BFS(root graph.VID) (*engines.BFSResult, error) {
	inst.ensureBuilt()
	n := inst.n
	res := &engines.BFSResult{
		Root:   root,
		Parent: make([]int64, n),
		Depth:  make([]int64, n),
	}
	parent := res.Parent
	depth := res.Depth
	for i := range parent {
		parent[i] = engines.NoParent
		depth[i] = -1
	}
	parent[root] = int64(root)
	depth[root] = 0

	next := parallel.NewChunkQueue[parallel.Claim]()
	var front, nextBits *parallel.Bitmap // allocated at the first switch
	frontier := []graph.VID{root}
	frontierLen := 1
	scout := inst.out.Degree(root)
	level := int64(0)
	edgesUnexplored := inst.mEdges
	bottomUp := false
	var edgesExamined int64

	for frontierLen > 0 {
		// Cancellation is polled once per level — frontier granularity:
		// between regions, so an abandoned run has charged exactly the
		// levels it completed.
		if err := inst.checkCancel("BFS"); err != nil {
			return nil, err
		}
		wasBottomUp := bottomUp
		if inst.eng.Alpha > 0 {
			if !bottomUp && scout > edgesUnexplored/int64(inst.eng.Alpha) {
				bottomUp = true
			} else if bottomUp && int64(frontierLen) < int64(n)/int64(inst.eng.Beta) {
				bottomUp = false
			}
		}

		var examined, nextScout int64
		if bottomUp {
			if front == nil {
				front = parallel.NewBitmap(n)
				nextBits = parallel.NewBitmap(n)
			}
			if !wasBottomUp {
				inst.frontierToBitmap(frontier, front)
			}
			var found int64
			examined, nextScout, found = inst.stepBottomUp(front, nextBits, parent, depth, level)
			front, nextBits = nextBits, front
			frontierLen = int(found)
		} else {
			if wasBottomUp {
				frontier = inst.bitmapToFrontier(front, frontier[:0], frontierLen)
			}
			g := inst.m.Grain(len(frontier), bfsTopDownGrain, 1)
			next.Reset(parallel.NumChunks(len(frontier), g))
			examined = inst.stepTopDown(frontier, g, parent, depth, level, next)
			frontier, nextScout = inst.drainFrontier(next, parent, frontier)
			frontierLen = len(frontier)
		}
		edgesExamined += examined
		edgesUnexplored -= scout
		scout = nextScout
		level++
	}
	res.EdgesExamined = edgesExamined
	return res, nil
}

// stepTopDown expands the frontier along out-edges, claiming children
// with a priority write on the parent array. Every lowering pushes a
// tentative Claim into the chunk-ordered queue; drainFrontier keeps
// the winners. Charged costs depend only on the frontier slice a chunk
// owns: scan cost per edge, one atomic per edge whose target is not
// yet finalized (the set of such edges is fixed by the previous
// levels), and queue cycles per dequeued vertex — the last amortizing
// the chunk-ordered flush, which replaced the per-level sort.
func (inst *Instance) stepTopDown(frontier []graph.VID, grain int, parent, depth []int64, level int64, next *parallel.ChunkQueue[parallel.Claim]) (examined int64) {
	exa := parallel.NewCounter(inst.m.Workers())
	cpb := inst.m.Model().DecodeCyclesPerByte
	inst.m.ParallelForChunks(len(frontier), grain, simmachine.Dynamic, func(lo, hi, chunk, worker int, w *simmachine.W) {
		var local []parallel.Claim
		var buf []graph.VID
		var edges, claims, decBytes int64
		for _, v := range frontier[lo:hi] {
			adj := inst.out.Neighbors(v)
			if inst.cout != nil {
				// Full expansion decodes the whole stream; charge its
				// compressed length instead of the raw 4 B/edge.
				buf = inst.cout.DecodeNeighbors(v, buf)
				adj = buf
				decBytes += inst.cout.EncodedBytes(v)
			}
			for _, u := range adj {
				edges++
				// Finalized before this level (root included): skip.
				// Racing claims from this level read -1 or level+1 —
				// both sides of the race take the claim path, so the
				// eligible-edge count is schedule-independent.
				if d := atomic.LoadInt64(&depth[u]); d != -1 && d != level+1 {
					continue
				}
				claims++
				if parallel.LowerMinInt64(&parent[u], int64(v), engines.NoParent) {
					// Every lowering is a tentative discovery; the
					// final minimum always lowers, so the winning
					// chunk always holds a claim for u.
					atomic.StoreInt64(&depth[u], level+1)
					local = append(local, parallel.Claim{V: u, By: v})
				}
			}
		}
		next.Put(chunk, local)
		exa.Add(worker, edges)
		if inst.cout != nil {
			w.Charge(costTopDownEdgeC.Scale(float64(edges)))
			w.Cycles(cpb * float64(decBytes))
			w.Bytes(float64(decBytes))
		} else {
			w.Charge(costTopDownEdge.Scale(float64(edges)))
		}
		w.Charge(costClaim.Scale(float64(claims)))
		w.Cycles(float64(hi-lo) * 6) // queue pop + amortized chunk flush
	})
	return exa.Sum()
}

// drainFrontier filters the tentative claims against the final
// write-min parents — keeping, for each discovered vertex, exactly the
// claim made by its minimum parent — and returns the next frontier in
// chunk order plus its scout (outgoing-degree) count. Both outputs are
// schedule-independent: the kept set and order depend only on the
// final parents and the chunk partition. Its cost is charged inside
// stepTopDown (the amortized flush cycles), not as a region of its
// own: a region per level would pay a barrier per level.
func (inst *Instance) drainFrontier(next *parallel.ChunkQueue[parallel.Claim], parent []int64, dst []graph.VID) ([]graph.VID, int64) {
	var scout int64
	out := parallel.DrainChunkQueue(next, dst[:0], func(c parallel.Claim) (graph.VID, bool) {
		if parent[c.V] != int64(c.By) {
			return 0, false // lost the min race to another chunk
		}
		scout += inst.out.Degree(c.V)
		return c.V, true
	})
	return out, scout
}

// frontierToBitmap converts a queue frontier into the bitmap the
// bottom-up step consumes (the top-down→bottom-up side of the
// direction switch). Bit sets are atomic ORs: idempotent and
// commutative, hence schedule-independent. The bitmap reset is charged
// as a uniform word share folded into each insert chunk — a pure
// function of (frontier length, n), so still deterministic.
func (inst *Instance) frontierToBitmap(frontier []graph.VID, b *parallel.Bitmap) {
	b.Clear()
	g := inst.m.Grain(len(frontier), bfsTopDownGrain, 1)
	words := float64((inst.n + 63) / 64)
	share := words / float64(parallel.NumChunks(len(frontier), g))
	inst.m.ParallelForChunks(len(frontier), g, simmachine.Dynamic, func(lo, hi, chunk, worker int, w *simmachine.W) {
		for _, v := range frontier[lo:hi] {
			b.Set(int(v))
		}
		w.Charge(costBitmapInsert.Scale(float64(hi - lo)))
		w.Charge(costBitmapWord.Scale(share))
	})
}

// bitmapToFrontier converts the bitmap frontier back into an ascending
// vertex slice (the bottom-up→top-down side of the switch), running
// the two-pass parallel ToSlice on the machine's pool and charging it
// as one uniform word sweep whose per-word cost folds in the flush of
// the produced queue entries (count/words each) — a pure function of
// (n, count), so the modeled duration is schedule-independent.
func (inst *Instance) bitmapToFrontier(b *parallel.Bitmap, dst []graph.VID, count int) []graph.VID {
	out := b.ToSlice(inst.m.Pool(), inst.m.Workers(), dst)
	words := (inst.n + 63) / 64
	per := costBitmapWord
	per.Add(costQueueDrain.Scale(float64(count) / float64(words)))
	inst.m.ChargeUniform(words, inst.m.Grain(words, bfsBitmapWordGrain, 1), simmachine.Dynamic, per)
	return out
}

// stepBottomUp scans unvisited vertices for a parent on the frontier
// bitmap. Each vertex mutates only its own entries, so no atomics are
// charged — the source of GAP's superior scaling on low-diameter
// graphs. Taking the first match in sorted in-adjacency yields the
// minimum-ID parent, the same rule the top-down write-min enforces.
// The next frontier is the bitmap of discovered vertices: membership
// is per-vertex-owned, hence deterministic, and needs no
// canonicalization at all. Each chunk resets its own word range of the
// next bitmap in-region (ranges are 64-aligned by the grain), so the
// reset is parallel and charged per chunk — no extra region, no extra
// barrier.
func (inst *Instance) stepBottomUp(front, next *parallel.Bitmap, parent, depth []int64, level int64) (examined, nextScout, found int64) {
	n := inst.n
	exa := parallel.NewCounter(inst.m.Workers())
	sct := parallel.NewCounter(inst.m.Workers())
	fnd := parallel.NewCounter(inst.m.Workers())
	cpb := inst.m.Model().DecodeCyclesPerByte
	// align 64: each chunk clears its own word range of `next`.
	g := inst.m.Grain(n, bfsBottomUpGrain, 64)
	inst.m.ParallelForChunks(n, g, simmachine.Dynamic, func(lo, hi, chunk, worker int, w *simmachine.W) {
		next.ClearRange(lo, hi)
		w.Charge(costBitmapWord.Scale(float64(hi-lo) / 64))
		var edges, localScout, localFound, decBytes int64
		for v := lo; v < hi; v++ {
			if parent[v] != engines.NoParent {
				continue
			}
			if inst.cin != nil {
				// Streaming decode so the early break charges exactly
				// the compressed prefix actually consumed. Bytes read
				// depend only on how far this vertex scans — a function
				// of the previous level's frontier, not the schedule.
				d := inst.cin.Decoder(graph.VID(v))
				for u, ok := d.Next(); ok; u, ok = d.Next() {
					edges++
					if front.Test(int(u)) {
						parent[v] = int64(u)
						depth[v] = level + 1
						next.Set(v)
						localFound++
						localScout += inst.out.Degree(graph.VID(v))
						break
					}
				}
				decBytes += int64(d.BytesRead())
				continue
			}
			for _, u := range inst.in.Neighbors(graph.VID(v)) {
				edges++
				if front.Test(int(u)) {
					// Own-vertex writes only: no atomics, no races.
					parent[v] = int64(u)
					depth[v] = level + 1
					next.Set(v)
					localFound++
					localScout += inst.out.Degree(graph.VID(v))
					break
				}
			}
		}
		exa.Add(worker, edges)
		sct.Add(worker, localScout)
		fnd.Add(worker, localFound)
		if inst.cin != nil {
			w.Charge(costBottomUpEdgeC.Scale(float64(edges)))
			w.Cycles(cpb * float64(decBytes))
			w.Bytes(float64(decBytes))
		} else {
			w.Charge(costBottomUpEdge.Scale(float64(edges)))
		}
		w.Cycles(float64(hi-lo) * 2) // visited test per vertex
		w.Bytes(float64(hi-lo) * 1)
	})
	return exa.Sum(), sct.Sum(), fnd.Sum()
}
