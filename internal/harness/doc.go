// Package harness executes experiments: it resolves datasets, drives
// every engine through the framework's phases (file read, structure
// construction, algorithm runs over 32 roots), meters power on
// request, and produces normalized result records. It is the Go
// analogue of the easy-parallel-graph run scripts (phase 3 of the
// paper's Fig. 1 framework).
//
// Timing follows the paper's methodology: the file read is never
// mixed into an algorithm measurement; construction is measured
// separately for the engines that expose it (GAP, Graph500,
// GraphMat); each algorithm run is a separate measurement window.
// Modeled machine time is the primary clock; wall-clock time of this
// process is recorded alongside for transparency.
//
// Two Spec knobs configure the shared runtime uniformly across
// engines: Spec.Sched forces one scheduling policy (static / dynamic
// / steal) onto every parallel region, overriding each engine's own
// choice, and Spec.SyncSSSP switches GAP and GraphBIG to their
// synchronous deterministic SSSP modes. Spec.Workers bounds the real
// goroutines and never affects results or modeled durations.
//
// Energy flows through the same pipeline as time. With
// Spec.MeasurePower set, the harness opens a power.RAPL window
// around each algorithm run; RAPL evaluates the calibrated power
// model (power.Constants) over the machine's region trace and the
// resulting CPU/RAM joules and average watts land in core.Result
// next to the phase times — consumed downstream by report.EnergyTable
// (Table III), report.PowerFigure (Fig. 9), the scheduling study's
// joules/EDP columns, and cmd/epg-power. Spec.FreqState selects a
// modeled DVFS operating point (turbo / balanced / powersave): it
// scales the machine's core clocks and the CPU-plane dynamic power
// constants together (lane power ~ clock cubed, per-event energy ~
// clock squared) before the machine is built, so one knob moves both
// the time and the energy sides of the trade. Idle draws and the
// DRAM plane are never scaled — race-to-idle stays representable.
//
// Known fidelity gaps: the original framework shells out to five
// separately-built binaries and parses their logs; here the engines
// are in-process libraries and the "log" path is exercised via
// internal/logfmt round-trips instead. Datasets are synthetic
// analogues at configurable scale rather than the published
// downloads.
package harness
