// Fuzz wall for the SNAP text parser: arbitrary byte streams — the
// things a corrupted download or a hostile dataset mirror can hand the
// homogenization phase — must produce either a valid graph or an error
// naming the offending line, and never a panic or unbounded
// allocation. The seed corpus runs in plain `go test`; `make fuzz` and
// CI run the target with a bounded -fuzztime.
package snap

import (
	"bytes"
	"strings"
	"testing"
)

// hostileInputs enumerates the known attack shapes with the exact
// failure each must produce; the fuzzer explores the space between
// them.
func TestReadHostileInputs(t *testing.T) {
	hugeToken := strings.Repeat("9", 2<<20) // one 2 MiB line: over the scanner's token limit
	cases := []struct {
		name    string
		in      string
		wantSub string // "" means the input must parse cleanly
	}{
		{"empty stream", "", "no edges found"},
		{"comments only", "# Nodes: 5 Edges: 0\n#\n", "no edges found"},
		{"truncated line one field", "0\n", "line 1: expected at least 2 fields"},
		{"truncated line trailing sep", "0 \n", "line 1: expected at least 2 fields"},
		{"negative source", "-1 2\n", "line 1: negative vertex ID"},
		{"negative destination", "0 -7\n", "line 1: negative vertex ID"},
		{"overflow source", "99999999999999999999 1\n", "line 1: bad source"},
		{"overflow destination", "1 18446744073709551616\n", "line 1: bad destination"},
		{"NUL in field", "0\x001 2\n", "line 1: bad source"},
		{"NUL as line", "\x00\n", "line 1: expected at least 2 fields"},
		{"non-numeric weight", "0 1 heavy\n", "line 1: bad weight"},
		{"weight NaN parses", "0 1 NaN\n", ""}, // strconv accepts NaN; graph layer owns semantics
		{"four fields", "0 1 2 3\n", "line 1: too many fields"},
		{"inconsistent weights", "0 1 0.5\n2 3\n", "line 2: inconsistent weight columns"},
		{"error names later line", "0 1\n0 2\nbogus 3\n", "line 3: bad source"},
		{"huge token bounded", hugeToken + " 1\n", "line 1:"},
		{"huge token after data", "0 1\n" + hugeToken + "\n", "line 2:"},
		{"crlf accepted", "0 1\r\n1 2\r\n", ""},
		{"tabs accepted", "0\t1\n", ""},
		{"no trailing newline", "0 1", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Read(strings.NewReader(tc.in))
			if tc.wantSub == "" {
				if err != nil {
					t.Fatalf("want clean parse, got %v", err)
				}
				if res.Graph.NumVertices == 0 {
					t.Fatal("clean parse produced empty graph")
				}
				return
			}
			if err == nil {
				t.Fatalf("parsed hostile input, want error containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

// FuzzRead pins the no-panic/no-OOM contract and, when the input does
// parse, the structural invariants every downstream builder assumes:
// dense IDs in [0, N), a faithful OrigID mapping, and a consistent
// weight column.
func FuzzRead(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n"))
	f.Add([]byte("# comment\n3 4 0.5\n"))
	f.Add([]byte("0\t1\r\n"))
	f.Add([]byte("-1 2\n"))
	f.Add([]byte("99999999999999999999 1\n"))
	f.Add([]byte("0 1 2 3\n"))
	f.Add([]byte("0 1 0.5\n2 3\n"))
	f.Add([]byte{0, '1', ' ', '2', '\n'})
	f.Add(bytes.Repeat([]byte("7 "), 100))
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := Read(bytes.NewReader(data))
		if err != nil {
			if !strings.HasPrefix(err.Error(), "snap: ") {
				t.Fatalf("error without package context: %q", err)
			}
			return
		}
		el := res.Graph
		if el.NumVertices == 0 || len(res.OrigID) != el.NumVertices {
			t.Fatalf("parsed graph has %d vertices, %d original IDs",
				el.NumVertices, len(res.OrigID))
		}
		seen := make(map[int64]bool, len(res.OrigID))
		for _, id := range res.OrigID {
			if id < 0 {
				t.Fatalf("negative original ID %d survived parsing", id)
			}
			if seen[id] {
				t.Fatalf("original ID %d interned twice", id)
			}
			seen[id] = true
		}
		for _, e := range el.Edges {
			if int(e.Src) >= el.NumVertices || int(e.Dst) >= el.NumVertices {
				t.Fatalf("edge (%d,%d) outside dense range [0,%d)", e.Src, e.Dst, el.NumVertices)
			}
			if !el.Weighted && e.W != 0 {
				t.Fatalf("unweighted graph carries weight %v", e.W)
			}
		}
	})
}
