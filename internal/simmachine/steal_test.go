package simmachine

import (
	"math"
	"testing"
)

// skewedRegion charges a degree-skewed workload (chunk cost grows with
// the index) under the given policy and worker count.
func skewedRegion(sched Sched, threads, workers int) (float64, Cost) {
	m := New(testModel(), threads)
	m.SetWorkers(workers)
	m.ParallelFor(1024, 8, sched, func(lo, hi int, w *W) {
		w.Cycles(float64((hi - lo) * (lo + 7)))
		w.Bytes(float64(hi-lo) * 48)
		w.Atomics(float64(lo % 5))
	})
	var total Cost
	for _, r := range m.Trace() {
		total.Add(r.Cost)
	}
	return m.Elapsed(), total
}

func TestStealDurationsIndependentOfWorkers(t *testing.T) {
	base, baseCost := skewedRegion(Steal, 8, 1)
	for _, workers := range []int{1, 2, 4, 16} {
		for rep := 0; rep < 3; rep++ {
			got, cost := skewedRegion(Steal, 8, workers)
			if got != base {
				t.Fatalf("workers=%d rep=%d: modeled %v != %v", workers, rep, got, base)
			}
			if cost != baseCost {
				t.Fatalf("workers=%d: charged cost %+v != %+v", workers, cost, baseCost)
			}
		}
	}
}

func TestStealLanesConserveChunkCosts(t *testing.T) {
	model := testModel()
	costs := make([]Cost, 100)
	var wantCycles, wantBytes, wantAtomics float64
	for i := range costs {
		costs[i] = Cost{Cycles: float64(i * 11), Bytes: float64(i % 7 * 32), Atomics: float64(i % 3)}
		wantCycles += costs[i].Cycles
		wantBytes += costs[i].Bytes
		wantAtomics += costs[i].Atomics
	}
	for _, threads := range []int{1, 3, 8, 72} {
		lanes := stealLanes(costs, threads, &model)
		if len(lanes) != threads {
			t.Fatalf("threads=%d: %d lanes", threads, len(lanes))
		}
		var got Cost
		for _, l := range lanes {
			got.Add(l)
		}
		if got.Cycles != wantCycles || got.Bytes != wantBytes {
			t.Errorf("threads=%d: cycles/bytes not conserved: %+v", threads, got)
		}
		// Steals add atomics (the claiming CAS) but never drop any.
		if got.Atomics < wantAtomics {
			t.Errorf("threads=%d: atomics dropped: %v < %v", threads, got.Atomics, wantAtomics)
		}
	}
}

// Work stealing must fix the load imbalance Static suffers when the
// heavy chunks cluster on one lane's residue class, landing near
// Dynamic's greedy-balanced duration. (On *balanced* chunk costs the
// steal simulation performs no steals and coincides with Static —
// that is the point of locality-preserving initial placement.)
func TestStealBalancesSkewLikeDynamic(t *testing.T) {
	region := func(sched Sched) float64 {
		m := New(testModel(), 16)
		m.ParallelFor(1024, 8, sched, func(lo, hi int, w *W) {
			if (lo/8)%16 == 0 { // all heavy chunks belong to lane 0 statically
				w.Cycles(5e5)
			} else {
				w.Cycles(200)
			}
		})
		return m.Elapsed()
	}
	static := region(Static)
	dynamic := region(Dynamic)
	steal := region(Steal)
	if steal >= static {
		t.Errorf("steal (%v) not faster than static (%v) on skew", steal, static)
	}
	if steal > dynamic*1.25 {
		t.Errorf("steal (%v) more than 25%% behind dynamic (%v)", steal, dynamic)
	}
}

func TestSchedOverrideForcesPolicy(t *testing.T) {
	// Residue-clustered skew: every chunk with index ≡ 0 (mod 16) is
	// heavy, so Static piles all heavy chunks on lane 0 and stealing
	// must redistribute them — the durations cannot coincide.
	body := func(lo, hi int, w *W) {
		if (lo/4)%16 == 0 {
			w.Cycles(1e6)
		} else {
			w.Cycles(100)
		}
	}
	run := func(override bool) float64 {
		m := New(testModel(), 16)
		if override {
			m.SetSchedOverride(Steal)
		}
		// Engine asks for Static; the override must land on Steal.
		m.ParallelFor(512, 4, Static, body)
		return m.Elapsed()
	}
	plainStatic := run(false)
	forced := run(true)
	m := New(testModel(), 16)
	m.SetSchedOverride(Steal)
	m.ClearSchedOverride()
	m.ParallelFor(512, 4, Static, body)
	cleared := m.Elapsed()
	if forced == plainStatic {
		t.Error("override did not change the modeled schedule on skewed work")
	}
	if cleared != plainStatic {
		t.Errorf("cleared override still active: %v vs %v", cleared, plainStatic)
	}
	if math.IsNaN(forced) || forced <= 0 {
		t.Errorf("forced duration bogus: %v", forced)
	}
}
