package harness

import (
	"bytes"
	"strings"
	"testing"

	"github.com/hpcl-repro/epg/internal/core"
	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/engines/all"
	"github.com/hpcl-repro/epg/internal/logfmt"
)

func testRunner() *Runner { return NewRunner(all.Registry()) }

func testSpec(alg engines.Algorithm, roots int) core.Spec {
	return core.Spec{
		Dataset:   "kron-9",
		Algorithm: alg,
		Threads:   8,
		Roots:     roots,
		Seed:      42,
	}
}

func TestResolveDataset(t *testing.T) {
	opt := DatasetOptions{Seed: 1, RealWorldDivisor: 512}
	kron, err := ResolveDataset("kron-8", opt)
	if err != nil {
		t.Fatal(err)
	}
	if kron.NumVertices != 256 {
		t.Errorf("kron-8 vertices = %d", kron.NumVertices)
	}
	if _, err := ResolveDataset("dota-league", opt); err != nil {
		t.Errorf("dota-league: %v", err)
	}
	if _, err := ResolveDataset("cit-Patents", opt); err != nil {
		t.Errorf("cit-Patents: %v", err)
	}
	for _, bad := range []string{"kron-x", "kron-0", "livejournal"} {
		if _, err := ResolveDataset(bad, opt); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestRunBFSProducesPerRootResults(t *testing.T) {
	r := testRunner()
	spec := testSpec(engines.BFS, 4)
	el, err := ResolveDataset(spec.Dataset, DatasetOptions{Seed: spec.Seed})
	if err != nil {
		t.Fatal(err)
	}
	results, err := r.Run(spec, el)
	if err != nil {
		t.Fatal(err)
	}
	// BFS is supported by 4 of 5 engines (not PowerGraph).
	wantEngines := map[string]int{"Graph500": 0, "GAP": 0, "GraphBIG": 0, "GraphMat": 0}
	for _, res := range results {
		if _, ok := wantEngines[res.Engine]; !ok {
			t.Errorf("unexpected engine %q in BFS results", res.Engine)
		}
		wantEngines[res.Engine]++
		if res.AlgorithmSec <= 0 {
			t.Errorf("%s trial %d: no algorithm time", res.Engine, res.Trial)
		}
		if res.WallSec <= 0 {
			t.Errorf("%s trial %d: no wall time", res.Engine, res.Trial)
		}
		if res.EdgesExamined <= 0 {
			t.Errorf("%s trial %d: no edges examined", res.Engine, res.Trial)
		}
	}
	for name, n := range wantEngines {
		if n != 4 {
			t.Errorf("%s produced %d results, want 4", name, n)
		}
	}
}

func TestConstructionPhaseSemantics(t *testing.T) {
	r := testRunner()
	spec := testSpec(engines.BFS, 2)
	el, _ := ResolveDataset(spec.Dataset, DatasetOptions{Seed: spec.Seed})
	results, err := r.Run(spec, el)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		switch res.Engine {
		case "GAP", "Graph500", "GraphMat":
			if !res.HasConstruction || res.ConstructionSec <= 0 {
				t.Errorf("%s should report separate construction (got %v, %v)",
					res.Engine, res.HasConstruction, res.ConstructionSec)
			}
			if res.FileReadSec <= 0 {
				t.Errorf("%s missing modeled file read", res.Engine)
			}
		case "GraphBIG":
			if res.HasConstruction {
				t.Errorf("GraphBIG should not report separate construction")
			}
			if res.FileReadSec <= 0 {
				t.Errorf("GraphBIG combined read+build missing")
			}
		}
	}
}

func TestRunSSSPSkipsGraph500(t *testing.T) {
	r := testRunner()
	spec := testSpec(engines.SSSP, 2)
	el, _ := ResolveDataset(spec.Dataset, DatasetOptions{Seed: spec.Seed})
	results, err := r.Run(spec, el)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if res.Engine == "Graph500" {
			t.Error("Graph500 appeared in SSSP results")
		}
	}
}

func TestExplicitUnsupportedEngineErrors(t *testing.T) {
	r := testRunner()
	spec := testSpec(engines.BFS, 1)
	spec.Engines = []string{"PowerGraph"}
	el, _ := ResolveDataset(spec.Dataset, DatasetOptions{Seed: spec.Seed})
	if _, err := r.Run(spec, el); err == nil {
		t.Error("explicitly requesting PowerGraph BFS should error")
	}
}

func TestPowerMetering(t *testing.T) {
	r := testRunner()
	spec := testSpec(engines.BFS, 2)
	spec.Engines = []string{"GAP"}
	spec.MeasurePower = true
	el, _ := ResolveDataset(spec.Dataset, DatasetOptions{Seed: spec.Seed})
	results, err := r.Run(spec, el)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if res.CPUJoules <= 0 || res.RAMJoules <= 0 {
			t.Errorf("no energy recorded: %+v", res)
		}
		if res.AvgCPUWatts < r.Power.CPUIdleWatts {
			t.Errorf("cpu power %v below idle", res.AvgCPUWatts)
		}
	}
}

func TestPageRankIterationsRecorded(t *testing.T) {
	r := testRunner()
	spec := testSpec(engines.PageRank, 1)
	spec.Engines = []string{"GAP", "GraphMat"}
	el, _ := ResolveDataset(spec.Dataset, DatasetOptions{Seed: spec.Seed})
	results, err := r.Run(spec, el)
	if err != nil {
		t.Fatal(err)
	}
	iters := map[string]int{}
	for _, res := range results {
		if res.Iterations <= 0 {
			t.Errorf("%s: no iterations", res.Engine)
		}
		iters[res.Engine] = res.Iterations
	}
	if iters["GraphMat"] < iters["GAP"] {
		t.Errorf("GraphMat iterations (%d) below GAP (%d)", iters["GraphMat"], iters["GAP"])
	}
}

func TestSweepProducesAllThreadCounts(t *testing.T) {
	r := testRunner()
	spec := testSpec(engines.BFS, 0)
	spec.Engines = []string{"GAP", "Graph500"}
	el, _ := ResolveDataset("kron-10", DatasetOptions{Seed: 1})
	spec.Dataset = "kron-10"
	points, err := r.Sweep(spec, el, []int{1, 2, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]map[int]bool{}
	for _, p := range points {
		if len(p.Seconds) != 2 {
			t.Errorf("%s t=%d has %d trials, want 2", p.Engine, p.Threads, len(p.Seconds))
		}
		if seen[p.Engine] == nil {
			seen[p.Engine] = map[int]bool{}
		}
		seen[p.Engine][p.Threads] = true
	}
	for _, eng := range []string{"GAP", "Graph500"} {
		for _, tc := range []int{1, 2, 4} {
			if !seen[eng][tc] {
				t.Errorf("missing sweep point %s/t%d", eng, tc)
			}
		}
	}
}

func TestResultsSurviveLogRoundTrip(t *testing.T) {
	// Phase 3 (run) -> logs -> phase 4 (parse) must preserve the
	// timings, as in the original framework.
	r := testRunner()
	spec := testSpec(engines.BFS, 1)
	spec.Engines = []string{"GAP"}
	el, _ := ResolveDataset(spec.Dataset, DatasetOptions{Seed: spec.Seed})
	results, err := r.Run(spec, el)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := logfmt.Emit(&buf, results[0]); err != nil {
		t.Fatal(err)
	}
	parsed, err := logfmt.Parse(strings.NewReader(buf.String()), core.Result{
		Engine: "GAP", Dataset: spec.Dataset, Algorithm: spec.Algorithm,
		Threads: spec.Threads, Trial: 0, Root: results[0].Root,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := parsed.AlgorithmSec - results[0].AlgorithmSec; d > 1e-5 || d < -1e-5 {
		t.Errorf("parsed time %v, ran %v", parsed.AlgorithmSec, results[0].AlgorithmSec)
	}
}

func TestInvalidSpecRejected(t *testing.T) {
	r := testRunner()
	el, _ := ResolveDataset("kron-8", DatasetOptions{Seed: 1})
	if _, err := r.Run(core.Spec{}, el); err == nil {
		t.Error("empty spec accepted")
	}
}
