package graphbig

import (
	"testing"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/kronecker"
	"github.com/hpcl-repro/epg/internal/simmachine"
	"github.com/hpcl-repro/epg/internal/verify"
)

func machine(threads int) *simmachine.Machine {
	return simmachine.New(simmachine.Haswell72(), threads)
}

func TestMetadata(t *testing.T) {
	e := New()
	if e.Name() != "GraphBIG" {
		t.Errorf("name = %q", e.Name())
	}
	if e.SeparateConstruction() {
		t.Error("GraphBIG reads and builds simultaneously")
	}
	for _, alg := range engines.AllAlgorithms {
		if !e.Has(alg) {
			t.Errorf("GraphBIG should provide %s", alg)
		}
	}
}

func TestLoadChargesCombinedReadBuild(t *testing.T) {
	m := machine(4)
	el := kronecker.Generate(kronecker.Params{Scale: 10, Seed: 1})
	inst, err := New().Load(el, m)
	if err != nil {
		t.Fatal(err)
	}
	if m.Elapsed() <= 0 {
		t.Error("load charged no modeled time")
	}
	// The trace must contain an I/O region: file read and build
	// happen together.
	hasIO := false
	for _, r := range m.Trace() {
		if r.IO {
			hasIO = true
		}
	}
	if !hasIO {
		t.Error("no I/O region recorded during load")
	}
	before := m.Elapsed()
	inst.BuildStructure() // must be a no-op
	if m.Elapsed() != before {
		t.Error("BuildStructure charged time despite combined load")
	}
}

func TestPageRankFloat32Iterations(t *testing.T) {
	// float32 properties: with the ε=6e-8 L1 criterion GraphBIG
	// must take at least as many iterations as a float64 engine on
	// the same graph (it cannot cut below the precision floor
	// faster).
	el := kronecker.Generate(kronecker.Params{Scale: 10, Seed: 2})
	p := verify.Prepare(el)
	ref := verify.PageRank(p, engines.PROpts{})
	inst, err := New().Load(el, machine(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.PageRank(engines.PROpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < ref.Iterations/2 {
		t.Errorf("GraphBIG converged in %d iterations, reference needed %d", res.Iterations, ref.Iterations)
	}
	if err := verify.ValidatePageRank(res, ref, 5e-3); err != nil {
		t.Error(err)
	}
}

func TestNeighborhoodDirected(t *testing.T) {
	el := &graph.EdgeList{
		NumVertices: 4,
		Directed:    true,
		Edges: []graph.Edge{
			{Src: 0, Dst: 1}, {Src: 2, Dst: 0}, {Src: 0, Dst: 3}, {Src: 3, Dst: 0},
		},
	}
	inst, err := New().Load(el, machine(1))
	if err != nil {
		t.Fatal(err)
	}
	nbrs := inst.(*Instance).neighborhood(0)
	want := []graph.VID{1, 2, 3}
	if len(nbrs) != len(want) {
		t.Fatalf("neighborhood = %v, want %v", nbrs, want)
	}
	for i := range want {
		if nbrs[i] != want[i] {
			t.Fatalf("neighborhood = %v, want %v", nbrs, want)
		}
	}
}

func TestSSSPOnDenseWeightedGraph(t *testing.T) {
	el := kronecker.Generate(kronecker.Params{Scale: 9, Seed: 8})
	p := verify.Prepare(el)
	inst, err := New().Load(el, machine(4))
	if err != nil {
		t.Fatal(err)
	}
	var root graph.VID
	for v := 0; v < p.Out.NumVertices; v++ {
		if p.Out.Degree(graph.VID(v)) > 1 {
			root = graph.VID(v)
			break
		}
	}
	got, err := inst.SSSP(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.ValidateSSSP(p, got, verify.SSSP(p, root)); err != nil {
		t.Error(err)
	}
	if got.Relaxations == 0 {
		t.Error("no relaxations recorded")
	}
}

func TestCDLPIterationCap(t *testing.T) {
	el := kronecker.Generate(kronecker.Params{Scale: 8, Seed: 4})
	inst, err := New().Load(el, machine(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.CDLP(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 3 {
		t.Errorf("ran %d iterations, cap was 3", res.Iterations)
	}
}
