// Package snap reads and writes graphs in the SNAP text format used by
// the Stanford Network Analysis Project datasets, and converts graphs
// into each engine's preferred on-disk representation (the paper's
// "dataset homogenization" phase).
//
// A SNAP file is one edge per line, endpoints separated by whitespace,
// with an optional third column holding the weight; lines starting
// with '#' are comments. Vertex IDs in the file may be arbitrary
// non-negative integers; the reader densifies them to [0, N) and
// records the mapping.
package snap

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"github.com/hpcl-repro/epg/internal/graph"
)

// ReadResult carries the parsed graph plus the original-ID mapping.
type ReadResult struct {
	Graph *graph.EdgeList
	// OrigID maps dense vertex ID -> the ID that appeared in the
	// file, so results can be reported in the dataset's own terms.
	OrigID []int64
}

// Read parses a SNAP-format stream. Weighted is inferred: if any data
// line has a third column, all lines must have one.
func Read(r io.Reader) (*ReadResult, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	ids := make(map[int64]graph.VID)
	var orig []int64
	intern := func(raw int64) graph.VID {
		if v, ok := ids[raw]; ok {
			return v
		}
		v := graph.VID(len(orig))
		ids[raw] = v
		orig = append(orig, raw)
		return v
	}

	el := &graph.EdgeList{Directed: true}
	lineNo := 0
	weightedKnown := false
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		f0, f1, f2, nf, err := splitFields(line)
		if err != nil {
			return nil, fmt.Errorf("snap: line %d: %v", lineNo, err)
		}
		if nf == 0 {
			continue
		}
		if nf < 2 {
			return nil, fmt.Errorf("snap: line %d: expected at least 2 fields", lineNo)
		}
		src, err := strconv.ParseInt(f0, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("snap: line %d: bad source %q", lineNo, f0)
		}
		dst, err := strconv.ParseInt(f1, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("snap: line %d: bad destination %q", lineNo, f1)
		}
		if src < 0 || dst < 0 {
			return nil, fmt.Errorf("snap: line %d: negative vertex ID", lineNo)
		}
		e := graph.Edge{Src: intern(src), Dst: intern(dst)}
		hasW := nf >= 3
		if !weightedKnown {
			el.Weighted = hasW
			weightedKnown = true
		} else if hasW != el.Weighted {
			return nil, fmt.Errorf("snap: line %d: inconsistent weight columns", lineNo)
		}
		if hasW {
			w, err := strconv.ParseFloat(f2, 32)
			if err != nil {
				return nil, fmt.Errorf("snap: line %d: bad weight %q", lineNo, f2)
			}
			e.W = float32(w)
		}
		el.Edges = append(el.Edges, e)
	}
	if err := sc.Err(); err != nil {
		// The scanner fails on the line AFTER the last one delivered —
		// e.g. a line longer than the 1 MiB token limit surfaces here
		// as bufio.ErrTooLong, bounding memory on hostile input.
		return nil, fmt.Errorf("snap: line %d: %v", lineNo+1, err)
	}
	el.NumVertices = len(orig)
	if el.NumVertices == 0 {
		return nil, fmt.Errorf("snap: no edges found")
	}
	return &ReadResult{Graph: el, OrigID: orig}, nil
}

// splitFields extracts up to three whitespace-separated fields without
// allocating per line.
func splitFields(line []byte) (a, b, c string, n int, err error) {
	i := 0
	next := func() string {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
			i++
		}
		start := i
		for i < len(line) && line[i] != ' ' && line[i] != '\t' && line[i] != '\r' {
			i++
		}
		return string(line[start:i])
	}
	a = next()
	if a == "" {
		return "", "", "", 0, nil
	}
	b = next()
	if b == "" {
		return a, "", "", 1, nil
	}
	c = next()
	if c == "" {
		return a, b, "", 2, nil
	}
	if rest := next(); rest != "" {
		return "", "", "", 0, fmt.Errorf("too many fields")
	}
	return a, b, c, 3, nil
}

// Write emits the edge list in SNAP format. A header comment records
// the sizes, as the SNAP datasets do.
func Write(w io.Writer, el *graph.EdgeList, name string) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "# %s\n# Nodes: %d Edges: %d\n", name, el.NumVertices, len(el.Edges))
	if el.Weighted {
		fmt.Fprintf(bw, "# SrcId\tDstId\tWeight\n")
	} else {
		fmt.Fprintf(bw, "# SrcId\tDstId\n")
	}
	for _, e := range el.Edges {
		if el.Weighted {
			if _, err := fmt.Fprintf(bw, "%d\t%d\t%g\n", e.Src, e.Dst, e.W); err != nil {
				return err
			}
		} else {
			if _, err := fmt.Fprintf(bw, "%d\t%d\n", e.Src, e.Dst); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
