// power-study reproduces Table III and Fig. 9: per-root power and
// energy during BFS through the RAPL-analogue meter, including the
// sleep(10) baseline calibration the paper uses.
//
//	go run ./examples/power-study [-scale N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/hpcl-repro/epg"
)

func main() {
	scale := flag.Int("scale", 14, "Kronecker scale (the paper uses 22)")
	threads := flag.Int("threads", 32, "virtual threads")
	roots := flag.Int("roots", 32, "BFS roots")
	flag.Parse()

	suite := epg.NewSuite()
	g, err := suite.Dataset(fmt.Sprintf("kron-%d", *scale))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("machine: %s\n", suite.MachineName())
	fmt.Printf("sleep(10) baseline: %.2f W (paper's Table III implies ~24.7 W)\n\n",
		suite.MeasureSleepBaseline(10))

	results, err := suite.Run(epg.Spec{
		Algorithm:    epg.BFS,
		Threads:      *threads,
		Roots:        *roots,
		MeasurePower: true,
	}, g)
	if err != nil {
		log.Fatal(err)
	}

	suite.RenderEnergyTable(os.Stdout, results)
	fmt.Println()
	suite.RenderPowerFigure(os.Stdout, results)
	fmt.Println("\nShape to compare with the paper: the fastest engine (GAP) is")
	fmt.Println("also the most energy-efficient per root; the slow frameworks pay")
	fmt.Println("two orders of magnitude more energy for the same search.")
}
