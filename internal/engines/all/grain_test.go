// Adaptive-grain walls: under Spec.Grain = "adaptive" every kernel
// region derives its chunk partition from (region size, virtual
// threads) instead of the engine's fixed grain. The partition is a
// pure function of the Spec, so the full determinism contract — bit-
// identical outputs AND modeled durations across runs and real worker
// counts — must hold under every scheduling policy, with the
// first-touch placement model stacked on top for the steal policies.
package all

import (
	"slices"
	"testing"

	"github.com/hpcl-repro/epg/internal/core"
	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/harness"
	"github.com/hpcl-repro/epg/internal/kronecker"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// adaptivePolicies is the scheduling axis of the adaptive-grain wall.
var adaptivePolicies = []struct {
	name      string
	sched     simmachine.Sched
	sockets   int
	placement bool
}{
	{"static", simmachine.Static, 0, false},
	{"dynamic", simmachine.Dynamic, 0, false},
	{"steal", simmachine.Steal, 0, false},
	{"numa", simmachine.NUMA, 2, false},
	// The placement model joins the wall where it is live: multiple
	// sockets, with both a steal policy and (the new regime) static.
	{"static+placement", simmachine.Static, 2, true},
	{"numa+placement", simmachine.NUMA, 2, true},
}

// TestAdaptiveGrainDeterministicAllKernels is the six-kernel wall
// under the adaptive grain policy × {static, dynamic, steal, numa}
// (plus placement-enabled variants): outputs and modeled durations
// bit-identical across runs and worker counts for every engine that
// implements each kernel.
func TestAdaptiveGrainDeterministicAllKernels(t *testing.T) {
	el, root := determinismGraph()
	for _, pol := range adaptivePolicies {
		t.Run(pol.name, func(t *testing.T) {
			opts := runOpts{
				syncSSSP: true, sched: pol.sched, override: true,
				sockets: pol.sockets, adaptive: true, placement: pol.placement,
			}
			for _, alg := range engines.AllAlgorithms {
				t.Run(string(alg), func(t *testing.T) {
					for _, name := range Names {
						eng, err := Registry().New(name)
						if err != nil {
							t.Fatal(err)
						}
						if !eng.Has(alg) {
							continue
						}
						t.Run(name, func(t *testing.T) {
							base := runKernelOpts(t, name, alg, el, root, 1, opts)
							for _, workers := range []int{1, 4} {
								got := runKernelOpts(t, name, alg, el, root, workers, opts)
								sameOutputs(t, "adaptive", base.out, got.out)
								sameDurations(t, "adaptive", base, got)
							}
						})
					}
				})
			}
		})
	}
}

// TestAdaptiveGrainChangesPartition pins that the knob is live: the
// adaptive policy must re-chunk GAP's BFS (its fixed 64-grain top-down
// levels become threads-proportional), which shifts the modeled
// duration trace. Equal traces would mean Machine.Grain is not
// reaching the kernels.
func TestAdaptiveGrainChangesPartition(t *testing.T) {
	el, root := determinismGraph()
	fixed := runKernelOpts(t, GAP, engines.BFS, el, root, 1, runOpts{})
	adaptive := runKernelOpts(t, GAP, engines.BFS, el, root, 1, runOpts{adaptive: true})
	sameOutputs(t, "adaptive vs fixed outputs", fixed.out, adaptive.out)
	if fixed.elapsed == adaptive.elapsed && slices.Equal(fixed.durations, adaptive.durations) {
		t.Error("adaptive grain produced a byte-identical duration trace: Machine.Grain not reaching kernels")
	}
}

// TestSpecGrainPlacementKnobsEndToEnd drives the harness with the new
// Spec knobs: modeled measurements under Grain="adaptive" +
// Placement="firsttouch" must be identical across worker counts, the
// grain knob must actually move modeled time relative to fixed, and
// malformed values are rejected by validation.
func TestSpecGrainPlacementKnobsEndToEnd(t *testing.T) {
	el := kronecker.Generate(kronecker.Params{Scale: 9, Seed: 7})
	r := harness.NewRunner(Registry())
	run := func(workers int, grain, placement string) []float64 {
		spec := coreSpec(engines.BFS, workers)
		spec.Sched = core.SchedNUMA
		spec.Sockets = 2
		spec.Grain = grain
		spec.Placement = placement
		rs, err := r.Run(spec, el)
		if err != nil {
			t.Fatal(err)
		}
		secs := make([]float64, len(rs))
		for i, res := range rs {
			secs[i] = res.AlgorithmSec
		}
		return secs
	}
	base := run(1, core.GrainAdaptive, core.PlacementFirstTouch)
	for _, workers := range []int{2, 4} {
		sameFloat64sBitwise(t, "adaptive+placement spec seconds", base,
			run(workers, core.GrainAdaptive, core.PlacementFirstTouch))
	}
	if fixed := run(1, core.GrainFixed, core.PlacementFirstTouch); slices.Equal(base, fixed) {
		t.Error("Grain=adaptive modeled seconds identical to fixed: knob not reaching the machine")
	}

	bad := coreSpec(engines.BFS, 1)
	bad.Grain = "coarse"
	if _, err := r.Run(bad, el); err == nil {
		t.Error("unknown grain policy accepted")
	}
	bad = coreSpec(engines.BFS, 1)
	bad.Placement = "interleave"
	if _, err := r.Run(bad, el); err == nil {
		t.Error("unknown placement model accepted")
	}
}
