package graphalytics

import (
	"strings"
	"testing"

	"github.com/hpcl-repro/epg/internal/datasets"
	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/engines/all"
	"github.com/hpcl-repro/epg/internal/kronecker"
)

func runSmallKron(t *testing.T) []Cell {
	t.Helper()
	c := New(all.Registry())
	c.Threads = 8
	el := kronecker.Generate(kronecker.Params{Scale: 8, Seed: 3})
	cells, err := c.RunDataset("kron-8", el)
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

func TestAllCellsPresent(t *testing.T) {
	cells := runSmallKron(t)
	if want := len(Platforms) * len(Algorithms); len(cells) != want {
		t.Fatalf("cells = %d, want %d", len(cells), want)
	}
	for _, c := range cells {
		if c.NA {
			t.Errorf("%s/%s unexpectedly N/A on a weighted graph", c.Platform, c.Algorithm)
		}
		if !c.NA && c.Seconds <= 0 {
			t.Errorf("%s/%s has no reported time", c.Platform, c.Algorithm)
		}
	}
}

func TestPowerGraphBFSViaDriver(t *testing.T) {
	// PowerGraph has no native BFS; the Graphalytics driver
	// provides one, so the cell must carry a number (Table I).
	for _, c := range runSmallKron(t) {
		if c.Platform == "PowerGraph" && c.Algorithm == engines.BFS {
			if c.NA || c.Seconds <= 0 {
				t.Errorf("PowerGraph BFS cell = %+v, want driver-provided time", c)
			}
			return
		}
	}
	t.Fatal("PowerGraph BFS cell missing")
}

func TestSSSPNAOnUnweighted(t *testing.T) {
	// The cit-Patents column of Table I: SSSP is N/A because the
	// graph is unweighted.
	c := New(all.Registry())
	c.Threads = 4
	el := datasets.GenerateCitPatents(datasets.Config{ScaleDivisor: 4096, Seed: 1})
	cells, err := c.RunDataset("cit-Patents", el)
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range cells {
		if cell.Algorithm == engines.SSSP && !cell.NA {
			t.Errorf("%s SSSP on unweighted graph not N/A", cell.Platform)
		}
	}
}

func TestTimingInconsistencyReproduced(t *testing.T) {
	// The paper's critique: GraphMat's reported time includes the
	// file read; GraphBIG's does not.
	cells := runSmallKron(t)
	byPlatform := map[string]Cell{}
	for _, c := range cells {
		if c.Algorithm == engines.PageRank {
			byPlatform[c.Platform] = c
		}
	}
	gm := byPlatform["GraphMat"]
	if gm.Seconds <= gm.AlgorithmSec {
		t.Errorf("GraphMat reported %v should exceed pure algorithm %v (file read included)",
			gm.Seconds, gm.AlgorithmSec)
	}
	if gm.FileReadSec <= 0 {
		t.Error("GraphMat file read not recorded")
	}
	gb := byPlatform["GraphBIG"]
	if gb.Seconds != gb.AlgorithmSec {
		t.Errorf("GraphBIG reported %v should equal pure algorithm %v (file read excluded)",
			gb.Seconds, gb.AlgorithmSec)
	}
	pg := byPlatform["PowerGraph"]
	if pg.Seconds <= pg.AlgorithmSec {
		t.Error("PowerGraph reported time should include ingest")
	}
}

func TestWriteTableLayout(t *testing.T) {
	cells := runSmallKron(t)
	var sb strings.Builder
	WriteTable(&sb, "Table II analogue", cells)
	out := sb.String()
	for _, want := range []string{"GraphBIG", "PowerGraph", "GraphMat", "BFS", "CDLP", "LCC", "PR", "SSSP", "WCC"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestWriteHTML(t *testing.T) {
	cells := runSmallKron(t)
	var sb strings.Builder
	if err := WriteHTML(&sb, "GraphBIG", cells); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"<html>", "GraphBIG", "<table", "Runtime"} {
		if !strings.Contains(out, want) {
			t.Errorf("html missing %q", want)
		}
	}
	if strings.Contains(out, "PowerGraph") {
		t.Error("per-platform page leaked other platforms")
	}
}
