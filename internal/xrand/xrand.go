// Package xrand provides small, fast, deterministic random number
// generators for reproducible experiments.
//
// Every experiment in this repository is seeded, and parallel workers
// derive independent streams from a parent seed via SplitMix64, so the
// same seed always produces the same graph, the same roots, and the
// same schedule regardless of GOMAXPROCS. The generators are
// xoshiro256** (public domain, Blackman & Vigna) seeded through
// SplitMix64, matching common HPC practice.
package xrand

import "math"

// SplitMix64 advances the given state and returns the next value of
// the SplitMix64 sequence. It is used both as a seeder for xoshiro
// streams and as a cheap stateless mixer.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 returns a well-mixed 64-bit hash of x. It is the SplitMix64
// finalizer and is suitable for hashing loop indices into
// pseudo-random values without carrying generator state.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RNG is a xoshiro256** generator. The zero value is invalid; use New.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64.
func New(seed uint64) *RNG {
	var r RNG
	r.Seed(seed)
	return &r
}

// Seed resets the generator state deterministically from seed.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
	// xoshiro must not be seeded with all zeros; SplitMix64 cannot
	// produce four consecutive zeros, so no further check is needed.
}

// Split returns a new generator whose stream is independent of r's for
// all practical purposes. It consumes one value from r, so sibling
// splits differ. Use it to hand child streams to parallel workers.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xd1342543de82ef95)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value of the xoshiro256** sequence.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns a uniformly distributed 32-bit value.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0. Lemire's multiply-shift rejection method avoids modulo bias.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed value in [0, n). It panics
// if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	// Rejection sampling on the top bits: unbiased and branch-cheap.
	mask := ^uint64(0)
	if n&(n-1) == 0 { // power of two
		return r.Uint64() & (n - 1)
	}
	// Smallest mask covering n-1.
	v := n - 1
	v |= v >> 1
	v |= v >> 2
	v |= v >> 4
	v |= v >> 8
	v |= v >> 16
	v |= v >> 32
	mask = v
	for {
		x := r.Uint64() & mask
		if x < n {
			return x
		}
	}
}

// Float64 returns a uniformly distributed value in [0, 1) with 53 bits
// of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniformly distributed value in [0, 1) with 24 bits
// of precision.
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Exp returns an exponentially distributed value with rate 1.
func (r *RNG) Exp() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the n elements exchanged by swap in place.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
