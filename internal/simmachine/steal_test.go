package simmachine

import (
	"math"
	"testing"
)

// skewedRegion charges a degree-skewed workload (chunk cost grows with
// the index) under the given policy and worker count.
func skewedRegion(sched Sched, threads, workers int) (float64, Cost) {
	m := New(testModel(), threads)
	m.SetWorkers(workers)
	m.ParallelFor(1024, 8, sched, func(lo, hi int, w *W) {
		w.Cycles(float64((hi - lo) * (lo + 7)))
		w.Bytes(float64(hi-lo) * 48)
		w.Atomics(float64(lo % 5))
	})
	var total Cost
	for _, r := range m.Trace() {
		total.Add(r.Cost)
	}
	return m.Elapsed(), total
}

func TestStealDurationsIndependentOfWorkers(t *testing.T) {
	base, baseCost := skewedRegion(Steal, 8, 1)
	for _, workers := range []int{1, 2, 4, 16} {
		for rep := 0; rep < 3; rep++ {
			got, cost := skewedRegion(Steal, 8, workers)
			if got != base {
				t.Fatalf("workers=%d rep=%d: modeled %v != %v", workers, rep, got, base)
			}
			if cost != baseCost {
				t.Fatalf("workers=%d: charged cost %+v != %+v", workers, cost, baseCost)
			}
		}
	}
}

func TestStealLanesConserveChunkCosts(t *testing.T) {
	model := testModel()
	costs := make([]Cost, 100)
	var wantCycles, wantBytes, wantAtomics float64
	for i := range costs {
		costs[i] = Cost{Cycles: float64(i * 11), Bytes: float64(i % 7 * 32), Atomics: float64(i % 3)}
		wantCycles += costs[i].Cycles
		wantBytes += costs[i].Bytes
		wantAtomics += costs[i].Atomics
	}
	for _, threads := range []int{1, 3, 8, 72} {
		lanes := stealLanes(costs, threads, &model)
		if len(lanes) != threads {
			t.Fatalf("threads=%d: %d lanes", threads, len(lanes))
		}
		var got Cost
		for _, l := range lanes {
			got.Add(l)
		}
		if got.Cycles != wantCycles || got.Bytes != wantBytes {
			t.Errorf("threads=%d: cycles/bytes not conserved: %+v", threads, got)
		}
		// Steals add atomics (the claiming CAS) but never drop any.
		if got.Atomics < wantAtomics {
			t.Errorf("threads=%d: atomics dropped: %v < %v", threads, got.Atomics, wantAtomics)
		}
	}
}

// Work stealing must fix the load imbalance Static suffers when the
// heavy chunks cluster on one lane's residue class, landing near
// Dynamic's greedy-balanced duration. (On *balanced* chunk costs the
// steal simulation performs no steals and coincides with Static —
// that is the point of locality-preserving initial placement.)
func TestStealBalancesSkewLikeDynamic(t *testing.T) {
	region := func(sched Sched) float64 {
		m := New(testModel(), 16)
		m.ParallelFor(1024, 8, sched, func(lo, hi int, w *W) {
			if (lo/8)%16 == 0 { // all heavy chunks belong to lane 0 statically
				w.Cycles(5e5)
			} else {
				w.Cycles(200)
			}
		})
		return m.Elapsed()
	}
	static := region(Static)
	dynamic := region(Dynamic)
	steal := region(Steal)
	if steal >= static {
		t.Errorf("steal (%v) not faster than static (%v) on skew", steal, static)
	}
	if steal > dynamic*1.25 {
		t.Errorf("steal (%v) more than 25%% behind dynamic (%v)", steal, dynamic)
	}
}

func TestSchedOverrideForcesPolicy(t *testing.T) {
	// Residue-clustered skew: every chunk with index ≡ 0 (mod 16) is
	// heavy, so Static piles all heavy chunks on lane 0 and stealing
	// must redistribute them — the durations cannot coincide.
	body := func(lo, hi int, w *W) {
		if (lo/4)%16 == 0 {
			w.Cycles(1e6)
		} else {
			w.Cycles(100)
		}
	}
	run := func(override bool) float64 {
		m := New(testModel(), 16)
		if override {
			m.SetSchedOverride(Steal)
		}
		// Engine asks for Static; the override must land on Steal.
		m.ParallelFor(512, 4, Static, body)
		return m.Elapsed()
	}
	plainStatic := run(false)
	forced := run(true)
	m := New(testModel(), 16)
	m.SetSchedOverride(Steal)
	m.ClearSchedOverride()
	m.ParallelFor(512, 4, Static, body)
	cleared := m.Elapsed()
	if forced == plainStatic {
		t.Error("override did not change the modeled schedule on skewed work")
	}
	if cleared != plainStatic {
		t.Errorf("cleared override still active: %v vs %v", cleared, plainStatic)
	}
	if math.IsNaN(forced) || forced <= 0 {
		t.Errorf("forced duration bogus: %v", forced)
	}
}

// numaRegion charges a degree-skewed workload under the given policy,
// socket count, and worker count, returning modeled duration and cost.
func numaRegion(sched Sched, threads, sockets, workers int) (float64, Cost) {
	m := New(testModel(), threads)
	m.SetWorkers(workers)
	if sockets > 0 {
		m.SetSockets(sockets)
	}
	m.ParallelFor(1024, 8, sched, func(lo, hi int, w *W) {
		w.Cycles(float64((hi - lo) * (lo + 7)))
		w.Bytes(float64(hi-lo) * 48)
		w.Atomics(float64(lo % 5))
	})
	var total Cost
	for _, r := range m.Trace() {
		total.Add(r.Cost)
	}
	return m.Elapsed(), total
}

// TestNUMASocketsOneMatchesSteal: with one virtual socket (explicit or
// default) the NUMA policy is byte-identical to Steal — durations and
// charged costs included.
func TestNUMASocketsOneMatchesSteal(t *testing.T) {
	for _, threads := range []int{1, 2, 8, 72} {
		stealSec, stealCost := numaRegion(Steal, threads, 0, 1)
		for _, sockets := range []int{0, 1} {
			numaSec, numaCost := numaRegion(NUMA, threads, sockets, 1)
			if numaSec != stealSec {
				t.Errorf("threads=%d sockets=%d: numa %v != steal %v", threads, sockets, numaSec, stealSec)
			}
			if numaCost != stealCost {
				t.Errorf("threads=%d sockets=%d: numa cost %+v != steal cost %+v", threads, sockets, numaCost, stealCost)
			}
		}
	}
}

// TestNUMADurationsIndependentOfWorkers: the NUMA policy joins the
// worker-count determinism contract at every socket count.
func TestNUMADurationsIndependentOfWorkers(t *testing.T) {
	for _, sockets := range []int{1, 2, 4} {
		base, baseCost := numaRegion(NUMA, 8, sockets, 1)
		for _, workers := range []int{1, 2, 4, 16} {
			for rep := 0; rep < 3; rep++ {
				got, cost := numaRegion(NUMA, 8, sockets, workers)
				if got != base {
					t.Fatalf("sockets=%d workers=%d rep=%d: modeled %v != %v", sockets, workers, rep, got, base)
				}
				if cost != baseCost {
					t.Fatalf("sockets=%d workers=%d: charged cost %+v != %+v", sockets, workers, cost, baseCost)
				}
			}
		}
	}
}

// TestLocalityPenaltyChargesRemoteSteals: when the only imbalance
// sits on one socket (every heavy chunk is owned by lane 0), the
// other sockets' thieves must cross to rebalance, and at sockets > 1
// the steal simulation charges penalties it did not charge at
// sockets = 1 — for both victim orders, since the crossing is
// unavoidable. Charged bytes grow too (the remote-chunk-access
// multiplier), not just the modeled seconds.
func TestLocalityPenaltyChargesRemoteSteals(t *testing.T) {
	region := func(sched Sched, sockets int) (float64, Cost) {
		m := New(testModel(), 16)
		m.SetSockets(sockets)
		m.ParallelFor(1024, 8, sched, func(lo, hi int, w *W) {
			if (lo/8)%16 == 0 { // all heavy chunks owned by lane 0
				w.Cycles(5e5)
				w.Bytes(2e5)
			} else {
				w.Cycles(200)
				w.Bytes(96)
			}
		})
		var total Cost
		for _, r := range m.Trace() {
			total.Add(r.Cost)
		}
		return m.Elapsed(), total
	}
	for _, sched := range []Sched{Steal, NUMA} {
		sec1, cost1 := region(sched, 1)
		sec4, cost4 := region(sched, 4)
		if sec4 <= sec1 {
			t.Errorf("%v: 4 sockets (%v) not slower than 1 socket (%v)", sched, sec4, sec1)
		}
		if cost4.Bytes <= cost1.Bytes {
			t.Errorf("%v: remote bytes not charged: %v <= %v", sched, cost4.Bytes, cost1.Bytes)
		}
	}
}

// TestTwoLevelBeatsFlatOnSkew is the study's headline regime: when
// every socket has its own imbalance (here one heavy-owner lane per
// socket block — the per-socket hub pattern of a partitioned power-law
// graph), a socket's idle lanes can rebalance locally. Flat stealing
// probes victims regardless of socket and pays the remote-chunk
// penalties for avoidable crossings; two-level stealing drains the
// local heavy lane first and models faster under the same locality
// model (same sockets, same penalties).
func TestTwoLevelBeatsFlatOnSkew(t *testing.T) {
	region := func(sched Sched, sockets int) float64 {
		m := New(testModel(), 16)
		m.SetSockets(sockets)
		m.ParallelFor(1024, 8, sched, func(lo, hi int, w *W) {
			if (lo/8)%4 == 0 { // heavy owners: lanes 0, 4, 8, 12
				w.Cycles(4e5)
				w.Bytes(2e5)
			} else {
				w.Cycles(200)
				w.Bytes(96)
			}
		})
		return m.Elapsed()
	}
	for _, sockets := range []int{2, 4} {
		flat := region(Steal, sockets)
		twoLevel := region(NUMA, sockets)
		if twoLevel >= flat {
			t.Errorf("sockets=%d: two-level (%v) not faster than flat (%v)", sockets, twoLevel, flat)
		}
	}
}

// TestSetRemotePenaltyOverridesModel: on a memory-bound region whose
// steals cross sockets, the remote-chunk-access multiplier is live —
// a stiffer Spec.RemotePenalty (SetRemotePenalty) lengthens the
// modeled duration, and 0 falls back to the model constant.
func TestSetRemotePenaltyOverridesModel(t *testing.T) {
	region := func(penalty float64) float64 {
		m := New(testModel(), 16)
		m.SetSockets(4)
		m.SetRemotePenalty(penalty)
		m.ParallelFor(1024, 8, Steal, func(lo, hi int, w *W) {
			if (lo/8)%16 == 0 { // all heavy chunks owned by lane 0
				w.Cycles(5e5)
				w.Bytes(5e7) // deep into the bandwidth roofline
			} else {
				w.Cycles(200)
				w.Bytes(96)
			}
		})
		return m.Elapsed()
	}
	def := region(0)
	if modelDefault := region(testModel().RemoteBytesFactor); modelDefault != def {
		t.Errorf("penalty 0 (%v) does not fall back to the model constant (%v)", def, modelDefault)
	}
	if stiff := region(3); stiff <= def {
		t.Errorf("remote penalty 3 (%v) not slower than the 1.7 default (%v)", stiff, def)
	}
	if soft := region(1); soft >= def {
		t.Errorf("remote penalty 1 (%v) not faster than the 1.7 default (%v)", soft, def)
	}
}

// TestStealLanesTopoConservesChunkCosts: penalties add work but the
// original chunk cycles are never dropped, and every configuration is
// a pure function of its inputs (two calls agree exactly).
func TestStealLanesTopoConservesChunkCosts(t *testing.T) {
	model := testModel()
	costs := make([]Cost, 100)
	var wantCycles float64
	for i := range costs {
		costs[i] = Cost{Cycles: float64(i * 11), Bytes: float64(i % 7 * 32), Atomics: float64(i % 3)}
		wantCycles += costs[i].Cycles
	}
	for _, twoLevel := range []bool{false, true} {
		for _, threads := range []int{1, 3, 8, 72} {
			for _, sockets := range []int{1, 2, 4} {
				lanes, exec := stealLanesTopo(costs, threads, sockets, 1.7, 120, twoLevel, true, &model)
				again, execAgain := stealLanesTopo(costs, threads, sockets, 1.7, 120, twoLevel, true, &model)
				for c := range exec {
					if exec[c] != execAgain[c] {
						t.Fatalf("twoLevel=%v threads=%d sockets=%d: exec lane of chunk %d not deterministic: %d vs %d",
							twoLevel, threads, sockets, c, exec[c], execAgain[c])
					}
					if exec[c] < 0 || exec[c] >= threads {
						t.Fatalf("chunk %d executed by out-of-range lane %d", c, exec[c])
					}
				}
				if len(lanes) != threads || len(again) != threads {
					t.Fatalf("lane count %d/%d, want %d", len(lanes), len(again), threads)
				}
				var got, rep Cost
				for l := range lanes {
					got.Add(lanes[l])
					rep.Add(again[l])
				}
				if got != rep {
					t.Errorf("twoLevel=%v threads=%d sockets=%d: not deterministic: %+v vs %+v", twoLevel, threads, sockets, got, rep)
				}
				// RemoteStealCycles lands in Cycles, so conservation
				// is >=; Bytes likewise only grow (factor >= 1).
				if got.Cycles < wantCycles {
					t.Errorf("twoLevel=%v threads=%d sockets=%d: cycles dropped: %v < %v", twoLevel, threads, sockets, got.Cycles, wantCycles)
				}
			}
		}
	}
}
