package powergraph

import (
	"math"
	"sync/atomic"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// SSSP implements engines.Instance as a GAS vertex program: gather
// takes the min over in-edges from active sources, apply commits the
// improvement, scatter re-activates improved vertices.
func (inst *Instance) SSSP(root graph.VID) (*engines.SSSPResult, error) {
	if !inst.weighted {
		return nil, engines.ErrUnsupported
	}
	n := inst.n
	res := &engines.SSSPResult{
		Root:   root,
		Dist:   make([]float64, n),
		Parent: make([]int64, n),
	}
	dist := make([]uint64, n)
	inf := math.Float64bits(math.Inf(1))
	for i := range dist {
		dist[i] = inf
		res.Parent[i] = engines.NoParent
	}
	dist[root] = math.Float64bits(0)
	res.Parent[root] = int64(root)

	active := make([]bool, n)
	active[root] = true
	var relaxations int64

	for {
		improved := make([]int32, n)
		var any int64
		inst.gatherSweep(active, func(e shardEdge) {
			dv := math.Float64frombits(atomic.LoadUint64(&dist[e.src]))
			nd := dv + float64(e.w)
			for {
				old := atomic.LoadUint64(&dist[e.dst])
				if math.Float64frombits(old) <= nd {
					break
				}
				if atomic.CompareAndSwapUint64(&dist[e.dst], old, math.Float64bits(nd)) {
					atomic.StoreInt64(&res.Parent[e.dst], int64(e.src))
					atomic.StoreInt32(&improved[e.dst], 1)
					break
				}
			}
			atomic.AddInt64(&relaxations, 1)
		})
		inst.syncGhosts()
		// Apply + scatter: activate improved vertices.
		next := make([]bool, n)
		inst.m.ParallelFor(n, 2048, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
			var applied int64
			for v := lo; v < hi; v++ {
				if improved[v] != 0 {
					next[v] = true
					applied++
					atomic.AddInt64(&any, 1)
				}
			}
			w.Charge(costApplyVertex.Scale(float64(applied)))
			w.Cycles(float64(hi-lo) * 1)
		})
		if any == 0 {
			break
		}
		active = next
	}
	for v := 0; v < n; v++ {
		res.Dist[v] = math.Float64frombits(dist[v])
	}
	res.Relaxations = relaxations
	return res, nil
}

// PageRank implements engines.Instance: sum-gather over in-edges,
// apply with the homogenized float64 L1 stopping criterion (the paper
// modified each system to use it where possible).
func (inst *Instance) PageRank(opts engines.PROpts) (*engines.PRResult, error) {
	opts = opts.Normalize()
	n := inst.n
	if n == 0 {
		return &engines.PRResult{}, nil
	}
	inv := 1.0 / float64(n)
	rank := make([]float64, n)
	for i := range rank {
		rank[i] = inv
	}
	outDeg := inst.out.OutDegrees()
	contrib := make([]float64, n)
	acc := make([]uint64, n)

	res := &engines.PRResult{}
	for iter := 1; iter <= opts.MaxIter; iter++ {
		var danglingBits uint64
		inst.m.ParallelFor(n, 4096, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
			local := 0.0
			for v := lo; v < hi; v++ {
				acc[v] = 0
				if outDeg[v] == 0 {
					local += rank[v]
					contrib[v] = 0
					continue
				}
				contrib[v] = rank[v] / float64(outDeg[v])
			}
			addFloat64(&danglingBits, local)
			w.Cycles(float64(hi-lo) * 4)
			w.Bytes(float64(hi-lo) * 24)
		})
		dangling := math.Float64frombits(atomic.LoadUint64(&danglingBits))
		base := (1-opts.Damping)*inv + opts.Damping*dangling*inv

		inst.gatherSweep(nil, func(e shardEdge) {
			addFloat64(&acc[e.dst], contrib[e.src])
		})
		inst.syncGhosts()

		var l1Bits uint64
		inst.m.ParallelFor(n, 2048, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
			local := 0.0
			for v := lo; v < hi; v++ {
				nv := base + opts.Damping*math.Float64frombits(acc[v])
				local += math.Abs(nv - rank[v])
				rank[v] = nv
			}
			addFloat64(&l1Bits, local)
			w.Charge(costApplyVertex.Scale(float64(hi - lo)))
		})
		l1 := math.Float64frombits(atomic.LoadUint64(&l1Bits))
		res.Iterations = iter
		if l1 < opts.Epsilon {
			break
		}
	}
	res.Rank = rank
	return res, nil
}

func addFloat64(bits *uint64, delta float64) {
	for {
		old := atomic.LoadUint64(bits)
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if atomic.CompareAndSwapUint64(bits, old, nv) {
			return
		}
	}
}

// CDLP implements engines.Instance: the gather phase accumulates a
// label histogram per vertex (shipping per-edge label messages), the
// apply phase picks the most frequent label with min tie-break.
// Directed graphs gather from both directions (LDBC semantics); the
// adjacency retained at load supplies the reverse edges.
func (inst *Instance) CDLP(maxIter int) (*engines.CDLPResult, error) {
	n := inst.n
	label := make([]graph.VID, n)
	next := make([]graph.VID, n)
	for i := range label {
		label[i] = graph.VID(i)
	}
	res := &engines.CDLPResult{}
	for iter := 1; iter <= maxIter; iter++ {
		var changed int64
		inst.m.ParallelFor(n, 512, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
			counts := make(map[graph.VID]int)
			var edges, localChanged int64
			for v := lo; v < hi; v++ {
				clear(counts)
				for _, u := range inst.out.Neighbors(graph.VID(v)) {
					counts[label[u]]++
				}
				edges += inst.out.Degree(graph.VID(v))
				if inst.directed {
					for _, u := range inst.in.Neighbors(graph.VID(v)) {
						counts[label[u]]++
					}
					edges += inst.in.Degree(graph.VID(v))
				}
				nl := pickLabel(counts, label[v])
				next[v] = nl
				if nl != label[v] {
					localChanged++
				}
			}
			atomic.AddInt64(&changed, localChanged)
			w.Charge(costGatherEdge.Scale(float64(edges) * 0.6))
			w.Charge(costApplyVertex.Scale(float64(hi - lo)))
		})
		inst.syncGhosts()
		label, next = next, label
		res.Iterations = iter
		if changed == 0 {
			break
		}
	}
	res.Label = label
	return res, nil
}

func pickLabel(counts map[graph.VID]int, own graph.VID) graph.VID {
	if len(counts) == 0 {
		return own
	}
	best := graph.VID(0)
	bestN := -1
	for l, c := range counts {
		if c > bestN || (c == bestN && l < best) {
			best, bestN = l, c
		}
	}
	return best
}

// LCC implements engines.Instance: neighborhood intersection with
// GAS-grade per-check cost.
func (inst *Instance) LCC() (*engines.LCCResult, error) {
	n := inst.n
	coeff := make([]float64, n)
	inst.m.ParallelFor(n, 64, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
		var checks int64
		for v := lo; v < hi; v++ {
			nbrs := inst.neighborhood(graph.VID(v))
			d := len(nbrs)
			if d < 2 {
				continue
			}
			links := 0
			for _, u := range nbrs {
				adj := inst.out.Neighbors(u)
				i, j := 0, 0
				for i < len(adj) && j < len(nbrs) {
					checks++
					switch {
					case adj[i] < nbrs[j]:
						i++
					case adj[i] > nbrs[j]:
						j++
					default:
						links++
						i++
						j++
					}
				}
			}
			coeff[v] = float64(links) / float64(d*(d-1))
		}
		w.Charge(costLCCCheck.Scale(float64(checks)))
		w.Charge(costApplyVertex.Scale(float64(hi - lo)))
	})
	return &engines.LCCResult{Coeff: coeff}, nil
}

func (inst *Instance) neighborhood(v graph.VID) []graph.VID {
	out := inst.out.Neighbors(v)
	if !inst.directed {
		return out
	}
	in := inst.in.Neighbors(v)
	merged := make([]graph.VID, 0, len(out)+len(in))
	i, j := 0, 0
	for i < len(out) || j < len(in) {
		var nxt graph.VID
		switch {
		case i >= len(out):
			nxt = in[j]
			j++
		case j >= len(in):
			nxt = out[i]
			i++
		case out[i] < in[j]:
			nxt = out[i]
			i++
		case in[j] < out[i]:
			nxt = in[j]
			j++
		default:
			nxt = out[i]
			i++
			j++
		}
		if nxt == v {
			continue
		}
		if len(merged) == 0 || merged[len(merged)-1] != nxt {
			merged = append(merged, nxt)
		}
	}
	return merged
}

// WCC implements engines.Instance: min-label GAS supersteps over both
// edge directions until quiescent.
func (inst *Instance) WCC() (*engines.WCCResult, error) {
	n := inst.n
	comp := make([]uint32, n)
	for i := range comp {
		comp[i] = uint32(i)
	}
	for {
		improved := make([]int32, n)
		// Full gather each superstep: min must flow across an edge
		// whenever either endpoint changed, so the sweep processes
		// every local edge (PowerGraph's dense-gather mode).
		inst.gatherSweep(nil, func(e shardEdge) {
			// Weak connectivity: propagate min both ways.
			propagateMin(comp, improved, e.src, e.dst)
			propagateMin(comp, improved, e.dst, e.src)
		})
		inst.syncGhosts()
		var any int64
		inst.m.ParallelFor(n, 2048, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
			var applied int64
			for v := lo; v < hi; v++ {
				if improved[v] != 0 {
					applied++
					atomic.AddInt64(&any, 1)
				}
			}
			w.Charge(costApplyVertex.Scale(float64(applied)))
		})
		if any == 0 {
			break
		}
	}
	res := &engines.WCCResult{Component: make([]graph.VID, n)}
	for v := 0; v < n; v++ {
		res.Component[v] = graph.VID(comp[v])
	}
	return res, nil
}

// propagateMin lowers comp[to] to comp[from] if smaller.
func propagateMin(comp []uint32, improved []int32, from, to graph.VID) {
	c := atomic.LoadUint32(&comp[from])
	for {
		old := atomic.LoadUint32(&comp[to])
		if old <= c {
			return
		}
		if atomic.CompareAndSwapUint32(&comp[to], old, c) {
			atomic.StoreInt32(&improved[to], 1)
			return
		}
	}
}
