package epg

import (
	"bytes"
	"strings"
	"testing"
)

func TestEnginesList(t *testing.T) {
	names := Engines()
	if len(names) != 5 {
		t.Fatalf("engines = %v", names)
	}
	want := []string{"Graph500", "GAP", "GraphBIG", "GraphMat", "PowerGraph"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("engine %d = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestSuiteDatasets(t *testing.T) {
	s := NewSuite(Options{RealWorldDivisor: 512, Seed: 3})
	for _, name := range []string{"kron-8", "dota-league", "cit-Patents"} {
		g, err := s.Dataset(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Errorf("%s empty", name)
		}
	}
	if _, err := s.Dataset("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestRunAndRenderEndToEnd(t *testing.T) {
	s := NewSuite()
	g, err := s.Dataset("kron-8")
	if err != nil {
		t.Fatal(err)
	}
	results, err := s.Run(Spec{Algorithm: BFS, Threads: 8, Roots: 3, MeasurePower: true}, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}

	var fig bytes.Buffer
	RenderTimeFigure(&fig, "BFS Time", results)
	RenderConstructionFigure(&fig, "BFS Data Structure Construction", results)
	s.RenderEnergyTable(&fig, results)
	s.RenderPowerFigure(&fig, results)
	out := fig.String()
	for _, want := range []string{"BFS Time", "Construction", "Table III", "Fig. 9a"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}

	var csv bytes.Buffer
	if err := WriteCSV(&csv, results); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&csv)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(results) {
		t.Errorf("csv round trip lost rows: %d vs %d", len(back), len(results))
	}
}

func TestSweepAndScalingFigure(t *testing.T) {
	s := NewSuite()
	g, err := s.Dataset("kron-9")
	if err != nil {
		t.Fatal(err)
	}
	series, err := s.Sweep(Spec{Algorithm: BFS, Engines: []string{"GAP"}}, g, []int{1, 2, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(series["GAP"]) != 3 {
		t.Fatalf("series = %v", series)
	}
	var sb strings.Builder
	if err := RenderScalingFigure(&sb, "Fig 5/6", series); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "speedup") {
		t.Error("scaling figure missing speedup column")
	}
}

func TestGraphalyticsEndToEnd(t *testing.T) {
	s := NewSuite()
	g, err := s.Dataset("kron-8")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := s.Graphalytics(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	var tbl, html bytes.Buffer
	RenderGraphalyticsTable(&tbl, "Table II analogue", cells)
	if err := RenderGraphalyticsHTML(&html, "GraphMat", cells); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "GraphMat") || !strings.Contains(html.String(), "GraphMat") {
		t.Error("graphalytics outputs incomplete")
	}
}

func TestHomogenizeFormats(t *testing.T) {
	s := NewSuite()
	g, _ := s.Dataset("kron-6")
	for _, f := range Formats() {
		var buf bytes.Buffer
		if err := s.Homogenize(&buf, g, f); err != nil {
			t.Errorf("format %s: %v", f, err)
		}
		if buf.Len() == 0 {
			t.Errorf("format %s produced no output", f)
		}
	}
}

func TestReadSNAP(t *testing.T) {
	s := NewSuite()
	g, err := s.ReadSNAP(strings.NewReader("0 1\n1 2\n2 0\n"), "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Errorf("tiny graph = %d/%d", g.NumVertices(), g.NumEdges())
	}
	if g.Weighted() {
		t.Error("unweighted read as weighted")
	}
}

func TestSleepBaseline(t *testing.T) {
	s := NewSuite()
	got := s.MeasureSleepBaseline(10)
	if want := s.SleepWatts(); got != want {
		t.Errorf("sleep baseline %v, want %v", got, want)
	}
	if s.CPUIdleWatts() <= 0 || s.RAMIdleWatts() <= 0 {
		t.Error("idle constants missing")
	}
	if s.MachineName() == "" {
		t.Error("machine name missing")
	}
}

func TestLogRoundTripThroughFacade(t *testing.T) {
	s := NewSuite()
	g, _ := s.Dataset("kron-8")
	results, err := s.Run(Spec{Algorithm: BFS, Threads: 4, Roots: 1, Engines: []string{"GAP"}}, g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EmitLog(&buf, results[0]); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseLog(&buf, Result{Engine: "GAP", Dataset: "kron-8", Algorithm: BFS, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if parsed.AlgorithmSec <= 0 {
		t.Error("parsed log lost timing")
	}
}
