package server

import (
	"math"
	"testing"

	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/harness"
)

func buildTestCSR(t *testing.T, name string, seed uint64) *graph.CSR {
	t.Helper()
	el, err := harness.ResolveDataset(name, harness.DatasetOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return graph.BuildCSR(el, graph.BuildOptions{
		Symmetrize:    !el.Directed,
		DropSelfLoops: true,
		Dedup:         true,
		Sort:          true,
	})
}

func TestSketchLandmarksDeterministic(t *testing.T) {
	c := buildTestCSR(t, "kron-8", 3)
	a := BuildSketch(c, 4)
	b := BuildSketch(c, 4)
	if len(a.Landmarks()) != 4 {
		t.Fatalf("landmark count %d, want 4", len(a.Landmarks()))
	}
	for i, l := range a.Landmarks() {
		if b.Landmarks()[i] != l {
			t.Fatalf("landmark %d differs: %d vs %d", i, l, b.Landmarks()[i])
		}
	}
	// Landmarks are the top-degree vertices: every landmark's degree
	// is >= every non-landmark's degree.
	inSet := map[graph.VID]bool{}
	minLandmark := int64(math.MaxInt64)
	for _, l := range a.Landmarks() {
		inSet[l] = true
		if d := c.Degree(l); d < minLandmark {
			minLandmark = d
		}
	}
	for v := 0; v < c.NumVertices; v++ {
		if !inSet[graph.VID(v)] && c.Degree(graph.VID(v)) > minLandmark {
			t.Fatalf("vertex %d (degree %d) outranks a landmark (min degree %d)",
				v, c.Degree(graph.VID(v)), minLandmark)
		}
	}
}

// TestSketchIsUpperBound checks the triangle-inequality contract the
// degraded mode relies on: the sketch never underestimates, and is
// exact between a landmark and any vertex.
func TestSketchIsUpperBound(t *testing.T) {
	c := buildTestCSR(t, "kron-8", 3)
	s := BuildSketch(c, 4)
	// True hop distances from vertex 0 via the same serial BFS.
	truth := bfsHops(c, 0)
	for v := 0; v < c.NumVertices; v++ {
		est := s.EstimateHops(0, graph.VID(v))
		switch {
		case truth[v] < 0:
			// Unreachable in truth: any landmark path would contradict
			// connectivity, so the sketch must also say unreachable.
			if est >= 0 {
				t.Fatalf("v=%d unreachable but sketch says %v", v, est)
			}
		case est < 0:
			// Reachable but no landmark covers the pair: legal (sketch
			// is partial), though rare on a kron component.
		case est < float64(truth[v]):
			t.Fatalf("v=%d sketch %v under true distance %d", v, est, truth[v])
		}
	}
	// Exactness through a landmark: d(L, v) estimates as exactly the
	// BFS distance from L.
	l := s.Landmarks()[0]
	truthL := bfsHops(c, l)
	for v := 0; v < c.NumVertices; v++ {
		if truthL[v] < 0 {
			continue
		}
		if est := s.EstimateHops(l, graph.VID(v)); est != float64(truthL[v]) {
			t.Fatalf("landmark estimate d(%d,%d)=%v, true %d", l, v, est, truthL[v])
		}
	}
}

func TestSketchWeightedUpperBound(t *testing.T) {
	c := buildTestCSR(t, "kron-8", 3)
	if c.Weights == nil {
		t.Fatal("kron should be weighted")
	}
	s := BuildSketch(c, 4)
	truth := dijkstra(c, 0)
	for v := 0; v < c.NumVertices; v++ {
		est := s.EstimateDist(0, graph.VID(v))
		if math.IsInf(truth[v], 1) {
			if est >= 0 {
				t.Fatalf("v=%d unreachable but weighted sketch says %v", v, est)
			}
			continue
		}
		if est >= 0 && est < truth[v]-1e-12 {
			t.Fatalf("v=%d weighted sketch %v under true %v", v, est, truth[v])
		}
	}
}

func TestSketchIdentityAndEmpty(t *testing.T) {
	c := buildTestCSR(t, "kron-8", 3)
	s := BuildSketch(c, 4)
	if got := s.EstimateHops(5, 5); got != 0 {
		t.Fatalf("self-distance %v, want 0", got)
	}
	empty := BuildSketch(c, 0)
	if got := empty.EstimateHops(0, 1); got != -1 {
		t.Fatalf("empty sketch estimate %v, want -1", got)
	}
	if got := empty.EstimateDist(0, 1); got != -1 {
		t.Fatalf("empty weighted sketch estimate %v, want -1", got)
	}
}
