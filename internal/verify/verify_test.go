package verify

import (
	"math"
	"testing"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/kronecker"
)

// pathGraph returns 0-1-2-...-n-1 as an undirected weighted list.
func pathGraph(n int) *graph.EdgeList {
	el := &graph.EdgeList{NumVertices: n, Weighted: true}
	for i := 0; i < n-1; i++ {
		el.Edges = append(el.Edges, graph.Edge{Src: graph.VID(i), Dst: graph.VID(i + 1), W: 0.5})
	}
	return el
}

// triangleWithTail: 0-1-2-0 triangle plus 2-3 tail, undirected.
func triangleWithTail() *graph.EdgeList {
	return &graph.EdgeList{
		NumVertices: 4,
		Weighted:    true,
		Edges: []graph.Edge{
			{Src: 0, Dst: 1, W: 1}, {Src: 1, Dst: 2, W: 1},
			{Src: 2, Dst: 0, W: 1}, {Src: 2, Dst: 3, W: 1},
		},
	}
}

func TestBFSPath(t *testing.T) {
	p := Prepare(pathGraph(5))
	res := BFS(p, 0)
	for v := 0; v < 5; v++ {
		if res.Depth[v] != int64(v) {
			t.Errorf("depth[%d] = %d, want %d", v, res.Depth[v], v)
		}
	}
	if res.Parent[0] != 0 {
		t.Error("root parent wrong")
	}
}

func TestBFSDisconnected(t *testing.T) {
	el := pathGraph(4)
	el.NumVertices = 6 // 4,5 isolated
	p := Prepare(el)
	res := BFS(p, 0)
	for _, v := range []int{4, 5} {
		if res.Parent[v] != engines.NoParent || res.Depth[v] != -1 {
			t.Errorf("isolated vertex %d reached", v)
		}
	}
}

func TestSSSPPath(t *testing.T) {
	p := Prepare(pathGraph(5))
	res := SSSP(p, 0)
	for v := 0; v < 5; v++ {
		want := 0.5 * float64(v)
		if math.Abs(res.Dist[v]-want) > 1e-12 {
			t.Errorf("dist[%d] = %v, want %v", v, res.Dist[v], want)
		}
	}
}

func TestSSSPPrefersLightPath(t *testing.T) {
	// 0->1 weight 1.0 direct; 0->2->1 weights 0.3+0.3.
	el := &graph.EdgeList{
		NumVertices: 3,
		Weighted:    true,
		Directed:    true,
		Edges: []graph.Edge{
			{Src: 0, Dst: 1, W: 1.0},
			{Src: 0, Dst: 2, W: 0.3},
			{Src: 2, Dst: 1, W: 0.3},
		},
	}
	p := Prepare(el)
	res := SSSP(p, 0)
	if math.Abs(res.Dist[1]-0.6) > 1e-6 {
		t.Errorf("dist[1] = %v, want 0.6", res.Dist[1])
	}
}

func TestPageRankUniformOnCycle(t *testing.T) {
	// Directed cycle: stationary distribution is uniform.
	n := 8
	el := &graph.EdgeList{NumVertices: n, Directed: true}
	for i := 0; i < n; i++ {
		el.Edges = append(el.Edges, graph.Edge{Src: graph.VID(i), Dst: graph.VID((i + 1) % n)})
	}
	p := Prepare(el)
	res := PageRank(p, engines.PROpts{})
	for v := 0; v < n; v++ {
		if math.Abs(res.Rank[v]-1.0/float64(n)) > 1e-6 {
			t.Errorf("rank[%d] = %v, want %v", v, res.Rank[v], 1.0/float64(n))
		}
	}
}

func TestPageRankSumsToOneWithDangling(t *testing.T) {
	// Star: 1..4 -> 0, vertex 0 dangling.
	el := &graph.EdgeList{NumVertices: 5, Directed: true}
	for i := 1; i < 5; i++ {
		el.Edges = append(el.Edges, graph.Edge{Src: graph.VID(i), Dst: 0})
	}
	p := Prepare(el)
	res := PageRank(p, engines.PROpts{})
	var sum float64
	for _, r := range res.Rank {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ranks sum to %v", sum)
	}
	if res.Rank[0] <= res.Rank[1] {
		t.Error("hub not ranked above leaves")
	}
}

func TestCDLPTwoCliques(t *testing.T) {
	// Two triangles joined by one edge: labels converge to the two
	// clique minima.
	el := &graph.EdgeList{
		NumVertices: 6,
		Edges: []graph.Edge{
			{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0},
			{Src: 3, Dst: 4}, {Src: 4, Dst: 5}, {Src: 5, Dst: 3},
			{Src: 2, Dst: 3},
		},
	}
	p := Prepare(el)
	res := CDLP(p, 10)
	if res.Label[0] != res.Label[1] || res.Label[1] != res.Label[2] {
		t.Errorf("first clique labels differ: %v", res.Label[:3])
	}
	if res.Label[3] != res.Label[4] || res.Label[4] != res.Label[5] {
		t.Errorf("second clique labels differ: %v", res.Label[3:])
	}
}

func TestLCCTriangle(t *testing.T) {
	p := Prepare(triangleWithTail())
	res := LCC(p)
	// Vertices 0,1 have 2 neighbors, both connected: coeff 1.
	for _, v := range []int{0, 1} {
		if math.Abs(res.Coeff[v]-1) > 1e-12 {
			t.Errorf("coeff[%d] = %v, want 1", v, res.Coeff[v])
		}
	}
	// Vertex 2 has neighbors {0,1,3}; only pair (0,1) is joined
	// (both directions): 2 ordered pairs / 6 = 1/3.
	if math.Abs(res.Coeff[2]-1.0/3) > 1e-12 {
		t.Errorf("coeff[2] = %v, want 1/3", res.Coeff[2])
	}
	// Degree-1 vertex: zero.
	if res.Coeff[3] != 0 {
		t.Errorf("coeff[3] = %v, want 0", res.Coeff[3])
	}
}

func TestWCCComponents(t *testing.T) {
	el := pathGraph(3)
	el.NumVertices = 6
	el.Edges = append(el.Edges, graph.Edge{Src: 4, Dst: 5, W: 0.5})
	p := Prepare(el)
	res := WCC(p)
	want := []graph.VID{0, 0, 0, 3, 4, 4}
	for v, w := range want {
		if res.Component[v] != w {
			t.Errorf("component[%d] = %d, want %d", v, res.Component[v], w)
		}
	}
}

func TestWCCIgnoresDirection(t *testing.T) {
	el := &graph.EdgeList{
		NumVertices: 3,
		Directed:    true,
		Edges:       []graph.Edge{{Src: 1, Dst: 0}, {Src: 1, Dst: 2}},
	}
	p := Prepare(el)
	res := WCC(p)
	if res.Component[0] != 0 || res.Component[1] != 0 || res.Component[2] != 0 {
		t.Errorf("weak components = %v, want all 0", res.Component)
	}
}

func TestValidateBFSAcceptsReference(t *testing.T) {
	p := Prepare(kroneckerList(8, 11))
	ref := BFS(p, firstNonIsolated(p))
	if err := ValidateBFS(p, ref, ref); err != nil {
		t.Errorf("reference rejected: %v", err)
	}
}

func TestValidateBFSRejectsCorruption(t *testing.T) {
	p := Prepare(pathGraph(5))
	ref := BFS(p, 0)

	bad := BFS(p, 0)
	bad.Depth[3] = 7
	if err := ValidateBFS(p, bad, ref); err == nil {
		t.Error("depth corruption accepted")
	}

	bad = BFS(p, 0)
	bad.Parent[2] = 0 // 0->2 edge does not exist on a path
	if err := ValidateBFS(p, bad, ref); err == nil {
		t.Error("phantom tree edge accepted")
	}

	bad = BFS(p, 0)
	bad.Parent[4] = engines.NoParent
	bad.Depth[4] = -1
	if err := ValidateBFS(p, bad, ref); err == nil {
		t.Error("missing vertex accepted")
	}
}

func TestValidateSSSPRejectsCorruption(t *testing.T) {
	p := Prepare(pathGraph(5))
	ref := SSSP(p, 0)
	if err := ValidateSSSP(p, ref, ref); err != nil {
		t.Fatalf("reference rejected: %v", err)
	}
	bad := SSSP(p, 0)
	bad.Dist[4] = 100
	if err := ValidateSSSP(p, bad, ref); err == nil {
		t.Error("inflated distance accepted")
	}
	bad = SSSP(p, 0)
	bad.Dist[4] = math.Inf(1)
	if err := ValidateSSSP(p, bad, ref); err == nil {
		t.Error("false unreachability accepted")
	}
}

func TestValidatePageRankRejectsDenormalized(t *testing.T) {
	ref := &engines.PRResult{Rank: []float64{0.5, 0.5}}
	if err := ValidatePageRank(ref, ref, 1e-6); err != nil {
		t.Fatalf("reference rejected: %v", err)
	}
	bad := &engines.PRResult{Rank: []float64{0.9, 0.5}}
	if err := ValidatePageRank(bad, ref, 1e-6); err == nil {
		t.Error("denormalized ranks accepted")
	}
	neg := &engines.PRResult{Rank: []float64{1.5, -0.5}}
	if err := ValidatePageRank(neg, ref, 1e6); err == nil {
		t.Error("negative rank accepted")
	}
}

func TestValidateExactAlgorithms(t *testing.T) {
	p := Prepare(triangleWithTail())
	cd := CDLP(p, 5)
	if err := ValidateCDLP(cd, cd); err != nil {
		t.Errorf("cdlp self-validate: %v", err)
	}
	badCD := CDLP(p, 5)
	badCD.Label[0] = 99
	if err := ValidateCDLP(badCD, cd); err == nil {
		t.Error("cdlp corruption accepted")
	}

	lcc := LCC(p)
	if err := ValidateLCC(lcc, lcc); err != nil {
		t.Errorf("lcc self-validate: %v", err)
	}
	wcc := WCC(p)
	if err := ValidateWCC(wcc, wcc); err != nil {
		t.Errorf("wcc self-validate: %v", err)
	}
	badW := WCC(p)
	badW.Component[1] = 2
	if err := ValidateWCC(badW, wcc); err == nil {
		t.Error("wcc corruption accepted")
	}
}

func kroneckerList(scale int, seed uint64) *graph.EdgeList {
	return kronecker.Generate(kronecker.Params{Scale: scale, Seed: seed})
}

func firstNonIsolated(p *Prepared) graph.VID {
	for v := 0; v < p.Out.NumVertices; v++ {
		if p.Out.Degree(graph.VID(v)) > 0 {
			return graph.VID(v)
		}
	}
	return 0
}

func TestPreparedDirectedHasDistinctTranspose(t *testing.T) {
	el := &graph.EdgeList{
		NumVertices: 3,
		Directed:    true,
		Edges:       []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}},
	}
	p := Prepare(el)
	if p.In == p.Out {
		t.Fatal("directed graph shares In and Out")
	}
	if p.In.Degree(1) != 1 || p.In.Degree(0) != 0 {
		t.Error("transpose degrees wrong")
	}
}
