// Command epg-power reproduces the paper's power and energy study:
// Table III (time, average power, energy, sleep baseline, increase
// over sleep, per BFS root) and Fig. 9 (CPU and RAM power box plots),
// using the RAPL-analogue energy model.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hpcl-repro/epg"
)

func main() {
	dataset := flag.String("dataset", "kron-16", "dataset (the paper uses kron-22)")
	threads := flag.Int("threads", 32, "virtual thread count")
	roots := flag.Int("roots", 32, "BFS roots")
	seed := flag.Uint64("seed", 1, "seed")
	flag.Parse()

	s := epg.NewSuite(epg.Options{Seed: *seed})
	g, err := s.Dataset(*dataset)
	if err != nil {
		fatal(err)
	}
	results, err := s.Run(epg.Spec{
		Dataset:      *dataset,
		Algorithm:    epg.BFS,
		Threads:      *threads,
		Roots:        *roots,
		Seed:         *seed,
		MeasurePower: true,
	}, g)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("machine: %s\n", s.MachineName())
	fmt.Printf("sleep baseline (10 s sleep): %.2f W\n\n", s.MeasureSleepBaseline(10))
	s.RenderEnergyTable(os.Stdout, results)
	fmt.Println()
	s.RenderPowerFigure(os.Stdout, results)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "epg-power: %v\n", err)
	os.Exit(1)
}
