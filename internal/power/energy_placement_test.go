package power

import (
	"math"
	"testing"

	"github.com/hpcl-repro/epg/internal/simmachine"
)

// placementEnergy mirrors the placementSeq workload from
// simmachine/placement_test.go — a page-aligned seeding sweep followed
// by a misaligned re-read at half the grain, so every policy at >1
// socket has remote reads to charge — and returns the RAPL reading
// plus the total bytes the trace charged.
func placementEnergy(sched simmachine.Sched, sockets int, place bool, penalty float64) (Reading, float64) {
	m := simmachine.New(simmachine.Haswell72(), 8)
	if sockets > 0 {
		m.SetSockets(sockets)
	}
	m.SetPlacement(place)
	if penalty > 0 {
		m.SetRemotePenalty(penalty)
	}
	r := NewRAPL(m, DefaultConstants())
	r.Start()
	per := simmachine.Cost{Cycles: 3, Bytes: 24}
	m.ChargeUniform(8*simmachine.PlacementPageItems, simmachine.PlacementPageItems, sched, per)
	m.ChargeUniform(8*simmachine.PlacementPageItems, simmachine.PlacementPageItems/2, sched, per)
	var bytes float64
	for _, reg := range m.Trace() {
		bytes += reg.Cost.Bytes
	}
	return r.End(), bytes
}

// ramDynamic isolates the DRAM-plane dynamic energy from a reading.
// In the model it is exactly BandwidthWatts × bytes / 1e9 — the region
// seconds cancel — which is what makes it the right probe for byte
// accounting: every charged byte appears in it exactly once, scaled by
// one constant.
func ramDynamic(rd Reading) float64 {
	return rd.RAMJoules - DefaultConstants().RAMIdleWatts*rd.Seconds
}

// TestEnergyPlacementSingleCharge is the energy analogue of
// simmachine's TestPlacementNeverDoubleCharges: under first-touch
// placement each remote byte may pay the remote multiplier AT MOST
// once before it reaches the power integral. With factor 3, the
// DRAM-plane dynamic joules under every policy are bounded by
// factor × the serial no-penalty baseline; stacking the steal
// simulation's migration surcharge on top of the page-map surcharge
// would break the bound.
func TestEnergyPlacementSingleCharge(t *testing.T) {
	const factor = 3.0
	serialRd, serialBytes := placementEnergy(simmachine.Static, 1, false, 0)
	serialDyn := ramDynamic(serialRd)
	if serialDyn <= 0 {
		t.Fatalf("serial baseline has no DRAM dynamic energy: %v J", serialDyn)
	}
	for _, sched := range []simmachine.Sched{simmachine.Static, simmachine.Dynamic, simmachine.Steal, simmachine.NUMA} {
		rd, bytes := placementEnergy(sched, 4, true, factor)
		dyn := ramDynamic(rd)
		if dyn > serialDyn*factor*(1+1e-12) {
			t.Errorf("%v: DRAM dynamic %v J exceeds serial %v J x factor %v — remote bytes double-charged into joules",
				sched, dyn, serialDyn, factor)
		}
		// The joules must integrate the SAME bytes the trace charged:
		// dyn = BandwidthWatts × bytes/1e9 within float tolerance, so
		// the power path cannot re-apply its own remote surcharge.
		want := DefaultConstants().BandwidthWatts * bytes / 1e9
		if math.Abs(dyn-want) > 1e-9*want {
			t.Errorf("%v: DRAM dynamic %v J != BandwidthWatts x traced bytes %v J — power path re-scales bytes",
				sched, dyn, want)
		}
	}
	// And at unit factor the surcharge vanishes: every policy's
	// DRAM-plane dynamic energy collapses to the serial baseline,
	// proving base bytes are conserved (nothing lost, nothing doubled).
	for _, sched := range []simmachine.Sched{simmachine.Static, simmachine.Dynamic, simmachine.Steal, simmachine.NUMA} {
		rd, bytes := placementEnergy(sched, 4, true, 1)
		if bytes != serialBytes {
			t.Errorf("%v: unit-factor bytes %v != serial %v", sched, bytes, serialBytes)
		}
		if dyn := ramDynamic(rd); math.Abs(dyn-serialDyn) > 1e-9*serialDyn {
			t.Errorf("%v: unit-factor DRAM dynamic %v J != serial %v J", sched, dyn, serialDyn)
		}
	}
}
