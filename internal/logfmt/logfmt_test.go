package logfmt

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/hpcl-repro/epg/internal/core"
	"github.com/hpcl-repro/epg/internal/engines"
)

func sample(engine string) core.Result {
	return core.Result{
		Engine:          engine,
		Dataset:         "kron-16",
		Algorithm:       engines.BFS,
		Threads:         32,
		Trial:           3,
		Root:            17,
		FileReadSec:     2.65211,
		ConstructionSec: 3.26018,
		AlgorithmSec:    0.149445,
		Iterations:      12,
		EdgesExamined:   123456,
	}
}

func TestEmitParseRoundTripAllEngines(t *testing.T) {
	for _, engine := range []string{"Graph500", "GAP", "GraphBIG", "GraphMat", "PowerGraph"} {
		t.Run(engine, func(t *testing.T) {
			in := sample(engine)
			var buf bytes.Buffer
			if err := Emit(&buf, in); err != nil {
				t.Fatal(err)
			}
			identity := core.Result{
				Engine: engine, Dataset: in.Dataset, Algorithm: in.Algorithm,
				Threads: in.Threads, Trial: in.Trial, Root: in.Root,
			}
			got, err := Parse(bytes.NewReader(buf.Bytes()), identity)
			if err != nil {
				t.Fatalf("parse: %v\nlog was:\n%s", err, buf.String())
			}
			if math.Abs(got.AlgorithmSec-in.AlgorithmSec) > 1e-5 {
				t.Errorf("algorithm time %v, want %v", got.AlgorithmSec, in.AlgorithmSec)
			}
			switch engine {
			case "Graph500", "GAP":
				if math.Abs(got.ConstructionSec-in.ConstructionSec) > 1e-4 {
					t.Errorf("construction %v, want %v", got.ConstructionSec, in.ConstructionSec)
				}
				if !got.HasConstruction {
					t.Error("construction flag lost")
				}
			case "GraphMat":
				if math.Abs(got.FileReadSec-in.FileReadSec) > 1e-4 {
					t.Errorf("file read %v, want %v", got.FileReadSec, in.FileReadSec)
				}
				if math.Abs(got.ConstructionSec-in.ConstructionSec) > 1e-4 {
					t.Errorf("construction %v, want %v", got.ConstructionSec, in.ConstructionSec)
				}
			}
			if engine != "Graph500" && got.Iterations != in.Iterations {
				t.Errorf("iterations %d, want %d", got.Iterations, in.Iterations)
			}
		})
	}
}

func TestGraphMatLogMatchesPaperShape(t *testing.T) {
	// The paper quotes GraphMat's log verbatim; ensure our emission
	// carries the same landmarks.
	var buf bytes.Buffer
	if err := Emit(&buf, sample("GraphMat")); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Finished file read of", "load graph:", "initialize engine:", "run algorithm 2", "print output:"} {
		if !strings.Contains(out, want) {
			t.Errorf("GraphMat log missing %q:\n%s", want, out)
		}
	}
}

func TestEmitUnknownEngine(t *testing.T) {
	if err := Emit(&bytes.Buffer{}, core.Result{Engine: "Ligra"}); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestParseRejectsEmptyLog(t *testing.T) {
	_, err := Parse(strings.NewReader("nothing relevant\n"), core.Result{Engine: "GAP"})
	if err == nil {
		t.Error("empty log accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	in := []core.Result{
		sample("GAP"),
		{
			Engine: "PowerGraph", Dataset: "dota-league", Algorithm: engines.SSSP,
			Threads: 16, Trial: 1, Root: 9, AlgorithmSec: 1.5, WallSec: 0.002,
			CPUJoules: 70.5, RAMJoules: 10.25, AvgCPUWatts: 47, AvgRAMWatts: 6.8,
		},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("rows = %d, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i].Engine != in[i].Engine || got[i].Dataset != in[i].Dataset ||
			got[i].Algorithm != in[i].Algorithm || got[i].Threads != in[i].Threads {
			t.Errorf("row %d identity mismatch: %+v vs %+v", i, got[i], in[i])
		}
		if math.Abs(got[i].AlgorithmSec-in[i].AlgorithmSec) > 1e-9 {
			t.Errorf("row %d time mismatch", i)
		}
		if math.Abs(got[i].CPUJoules-in[i].CPUJoules) > 1e-6 {
			t.Errorf("row %d energy mismatch", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b,c\n")); err == nil {
		t.Error("short row accepted")
	}
	if _, err := ReadCSV(strings.NewReader(CSVHeader + "\nGAP,k,BFS,x,0,0,0,0,1,0,0,0,0,0,0,0\n")); err == nil {
		t.Error("bad threads accepted")
	}
}

func TestReadCSVSkipsHeaderAndBlank(t *testing.T) {
	csv := CSVHeader + "\n\nGAP,k,BFS,2,0,0,0,0,1.5,0,0,0,0,0,0,0\n"
	got, err := ReadCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].AlgorithmSec != 1.5 {
		t.Errorf("got %+v", got)
	}
}
