package graph

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

func TestUvarintRoundTripBoundaries(t *testing.T) {
	cases := []uint64{
		0, 1, 0x7f, 0x80, 0x3fff, 0x4000, 0x1fffff, 0x200000,
		math.MaxUint32 - 1, math.MaxUint32, uint64(math.MaxUint32) + 1,
		math.MaxUint64 >> 1, math.MaxUint64,
	}
	for _, x := range cases {
		buf := make([]byte, 10)
		n := putUvarint(buf, x)
		if n != uvarintLen(x) {
			t.Errorf("putUvarint(%d) wrote %d bytes, uvarintLen says %d", x, n, uvarintLen(x))
		}
		got, m := uvarint(buf[:n])
		if got != x || m != n {
			t.Errorf("uvarint(putUvarint(%d)) = %d, %d; want %d, %d", x, got, m, x, n)
		}
		// Byte-compatible with the standard library encoding.
		std := make([]byte, binary.MaxVarintLen64)
		sn := binary.PutUvarint(std, x)
		if !bytes.Equal(std[:sn], buf[:n]) {
			t.Errorf("putUvarint(%d) = %x, binary.PutUvarint = %x", x, buf[:n], std[:sn])
		}
	}
}

func TestUvarintMalformed(t *testing.T) {
	if v, n := uvarint(nil); v != 0 || n != 0 {
		t.Errorf("uvarint(nil) = %d, %d; want 0, 0", v, n)
	}
	// Truncated: continuation bit set on the last byte.
	if v, n := uvarint([]byte{0x80, 0x80}); v != 0 || n != 0 {
		t.Errorf("uvarint(truncated) = %d, %d; want 0, 0", v, n)
	}
	// Overflow: 11 continuation groups.
	over := bytes.Repeat([]byte{0x80}, 10)
	over = append(over, 0x01)
	if v, n := uvarint(over); v != 0 || n != -1 {
		t.Errorf("uvarint(overflow) = %d, %d; want 0, -1", v, n)
	}
	// 10th byte carrying more than the top bit overflows uint64.
	big := bytes.Repeat([]byte{0xff}, 9)
	big = append(big, 0x02)
	if v, n := uvarint(big); v != 0 || n != -1 {
		t.Errorf("uvarint(10th byte > 1) = %d, %d; want 0, -1", v, n)
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	for _, x := range []int64{0, -1, 1, -2, 2, math.MinInt32, math.MaxInt32, math.MinInt64, math.MaxInt64} {
		if got := unzigzag(zigzag(x)); got != x {
			t.Errorf("unzigzag(zigzag(%d)) = %d", x, got)
		}
	}
	// Small magnitudes must stay small (the point of the fold).
	for want, x := range []int64{0, -1, 1, -2, 2} {
		if got := zigzag(x); got != uint64(want) {
			t.Errorf("zigzag(%d) = %d, want %d", x, got, want)
		}
	}
}

// compressedEqualsRaw asserts every decode path on cc reproduces c.
func compressedEqualsRaw(t *testing.T, c *CSR, cc *CompressedCSR) {
	t.Helper()
	if err := cc.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if cc.NumVertices != c.NumVertices {
		t.Fatalf("NumVertices = %d, want %d", cc.NumVertices, c.NumVertices)
	}
	var buf []VID
	for v := 0; v < c.NumVertices; v++ {
		want := c.Neighbors(VID(v))
		if got := cc.Degree(VID(v)); got != int64(len(want)) {
			t.Fatalf("Degree(%d) = %d, want %d", v, got, len(want))
		}
		buf = cc.DecodeNeighbors(VID(v), buf)
		if len(buf) != len(want) {
			t.Fatalf("vertex %d: decoded %d neighbors, want %d", v, len(buf), len(want))
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("vertex %d neighbor %d: decoded %d, want %d", v, i, buf[i], want[i])
			}
		}
		d := cc.Decoder(VID(v))
		for i := range want {
			u, ok := d.Next()
			if !ok || u != want[i] {
				t.Fatalf("vertex %d Next #%d = %d, %v; want %d, true", v, i, u, ok, want[i])
			}
		}
		if _, ok := d.Next(); ok {
			t.Fatalf("vertex %d: Next past end returned ok", v)
		}
		if int64(d.BytesRead()) != cc.EncodedBytes(VID(v)) {
			t.Fatalf("vertex %d: BytesRead %d, stream %d bytes", v, d.BytesRead(), cc.EncodedBytes(VID(v)))
		}
	}
}

func TestCompressCSRSmall(t *testing.T) {
	// Exercises empty lists, a single neighbor below the source
	// (negative first delta), duplicate neighbors (gap 0), and a hub.
	el := &EdgeList{
		NumVertices: 8,
		Edges: []Edge{
			{5, 0, 0}, {5, 0, 0}, // duplicates kept without Dedup
			{1, 7, 0}, {1, 0, 0}, {1, 3, 0},
			{6, 6, 0}, // self-loop kept without DropSelfLoops
			{0, 1, 0}, {0, 2, 0}, {0, 3, 0}, {0, 4, 0}, {0, 5, 0}, {0, 6, 0}, {0, 7, 0},
		},
		Directed: true,
	}
	c := BuildCSR(el, BuildOptions{Sort: true})
	compressedEqualsRaw(t, c, CompressCSR(c, 0))
}

func TestCompressCSRRandom(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		el := randomEdgeList(seed, 200, 3000, false)
		c := BuildCSR(el, BuildOptions{Symmetrize: true, DropSelfLoops: true, Sort: true})
		compressedEqualsRaw(t, c, CompressCSR(c, 0))
	}
}

func TestCompressCSRDeterministicAcrossWorkers(t *testing.T) {
	// Above the serial cutoff so the parallel path actually runs.
	el := randomEdgeList(7, 1024, 3*compressSerialCutoff, false)
	c := BuildCSR(el, BuildOptions{Symmetrize: true, Sort: true})
	ref := CompressCSR(c, 1)
	for _, w := range []int{2, 3, 4, 8} {
		got := CompressCSR(c, w)
		if !bytes.Equal(ref.Data, got.Data) {
			t.Fatalf("workers=%d: byte layout differs from workers=1", w)
		}
		for i := range ref.Offsets {
			if ref.Offsets[i] != got.Offsets[i] {
				t.Fatalf("workers=%d: offsets[%d] = %d, want %d", w, i, got.Offsets[i], ref.Offsets[i])
			}
		}
	}
}

func TestCompressCSRPanicsOnUnsorted(t *testing.T) {
	c := &CSR{NumVertices: 2, Offsets: []int64{0, 2, 2}, Adj: []VID{1, 0}}
	defer func() {
		if recover() == nil {
			t.Fatal("CompressCSR accepted unsorted adjacency")
		}
	}()
	CompressCSR(c, 1)
}

func TestCompressedCSRValidateRejectsCorruption(t *testing.T) {
	el := randomEdgeList(3, 64, 400, false)
	c := BuildCSR(el, BuildOptions{Symmetrize: true, Sort: true})
	cc := CompressCSR(c, 1)
	if err := cc.Validate(); err != nil {
		t.Fatalf("valid structure rejected: %v", err)
	}
	bad := &CompressedCSR{NumVertices: cc.NumVertices, Offsets: cc.Offsets, Data: cc.Data[:len(cc.Data)-1]}
	if err := bad.Validate(); err == nil {
		t.Error("truncated data accepted")
	}
}

func TestDecodeNeighborsReusesBuffer(t *testing.T) {
	el := randomEdgeList(11, 32, 256, false)
	c := BuildCSR(el, BuildOptions{Symmetrize: true, Sort: true})
	cc := CompressCSR(c, 1)
	buf := make([]VID, 0, c.NumVertices)
	allocs := testing.AllocsPerRun(100, func() {
		for v := 0; v < c.NumVertices; v++ {
			buf = cc.DecodeNeighbors(VID(v), buf)
		}
	})
	if allocs != 0 {
		t.Errorf("DecodeNeighbors allocated %.1f times per sweep, want 0", allocs)
	}
}
