package graphmat

import (
	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// Cost constants: SpMV bookkeeping (row headers, column indices,
// semiring dispatch) per scanned nonzero, plus dense vector sweeps.
var (
	costRowHeader = simmachine.Cost{Cycles: 4, Bytes: 8}
	costScanNZ    = simmachine.Cost{Cycles: 11, Bytes: 12}
	costProcessNZ = simmachine.Cost{Cycles: 8, Bytes: 8}
	costVecEntry  = simmachine.Cost{Cycles: 4, Bytes: 10}
	costBuildEdge = simmachine.Cost{Cycles: 14, Bytes: 30}
)

// Engine is the GraphMat analogue.
type Engine struct{}

// New returns the engine.
func New() *Engine { return &Engine{} }

// Name implements engines.Engine.
func (e *Engine) Name() string { return "GraphMat" }

// SeparateConstruction implements engines.Engine: matrix construction
// is a distinct phase (and the paper's GraphMat log excerpt times it
// separately from the file read).
func (e *Engine) SeparateConstruction() bool { return true }

// Has implements engines.Engine: GraphMat's Graphalytics port covers
// all six kernels.
func (e *Engine) Has(alg engines.Algorithm) bool {
	switch alg {
	case engines.BFS, engines.SSSP, engines.PageRank,
		engines.CDLP, engines.LCC, engines.WCC:
		return true
	}
	return false
}

// dcsr stores only rows that have nonzeros.
type dcsr struct {
	rows []graph.VID // vertices with >=1 stored edge
	ptr  []int64     // len(rows)+1
	cols []graph.VID
	vals []float32 // nil if unweighted
}

// nnz returns the stored nonzero count.
func (d *dcsr) nnz() int64 { return int64(len(d.cols)) }

// fromCSR compresses a CSR into DCSR form.
func fromCSR(c *graph.CSR) *dcsr {
	d := &dcsr{}
	d.ptr = append(d.ptr, 0)
	for v := 0; v < c.NumVertices; v++ {
		lo, hi := c.Offsets[v], c.Offsets[v+1]
		if lo == hi {
			continue
		}
		d.rows = append(d.rows, graph.VID(v))
		d.cols = append(d.cols, c.Adj[lo:hi]...)
		if c.Weights != nil {
			d.vals = append(d.vals, c.Weights[lo:hi]...)
		}
		d.ptr = append(d.ptr, int64(len(d.cols)))
	}
	return d
}

// Instance is a loaded GraphMat matrix.
type Instance struct {
	m  *simmachine.Machine
	el *graph.EdgeList

	n        int
	directed bool
	weighted bool
	// inMat gathers along in-edges (the SpMV direction); outMat is
	// used for out-degrees, scatter-direction kernels, and LCC.
	inMat  *dcsr
	outMat *dcsr
	outDeg []int32
	outCSR *graph.CSR // sorted; retained for LCC edge queries
}

// Load implements engines.Engine.
func (e *Engine) Load(el *graph.EdgeList, m *simmachine.Machine) (engines.Instance, error) {
	if err := el.Validate(); err != nil {
		return nil, err
	}
	return &Instance{m: m, el: el}, nil
}

// BuildStructure implements engines.Instance: build the forward and
// transposed compressed matrices (GraphMat's partitioned DCSC build).
func (inst *Instance) BuildStructure() {
	el := inst.el
	out := graph.BuildCSR(el, graph.BuildOptions{
		Symmetrize:    !el.Directed,
		DropSelfLoops: true,
		Dedup:         true,
		Sort:          true,
	})
	var in *graph.CSR
	if el.Directed {
		in = graph.Transpose(out, 0)
		in.SortAdjacency()
	} else {
		in = out
	}
	inst.n = out.NumVertices
	inst.directed = el.Directed
	inst.weighted = el.Weighted
	inst.outCSR = out
	inst.outMat = fromCSR(out)
	if el.Directed {
		inst.inMat = fromCSR(in)
	} else {
		inst.inMat = inst.outMat
	}
	inst.outDeg = make([]int32, inst.n)
	for v := 0; v < inst.n; v++ {
		inst.outDeg[v] = int32(out.Degree(graph.VID(v)))
	}
	// Charge: two full passes (forward + transpose compression).
	passes := 2.0
	if !el.Directed {
		passes = 1.5
	}
	inst.m.ParallelFor(len(el.Edges), 4096, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
		w.Charge(costBuildEdge.Scale(passes * float64(hi-lo)))
	})
}

func (inst *Instance) ensureBuilt() {
	if inst.outMat == nil {
		inst.BuildStructure()
	}
}
