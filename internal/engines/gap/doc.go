// Package gap implements a Go analogue of the GAP Benchmark Suite
// (Beamer, Asanović, Patterson), the best-performing system in the
// paper's study.
//
// Architectural character preserved from the original:
//
//   - CSR storage with both out- and in-adjacency (the in-CSR enables
//     pull-direction iteration);
//   - a separately-timed graph construction phase (Fig. 2/3 report
//     GAP's construction separately);
//   - direction-optimizing BFS with the published α=15, β=18
//     switching heuristics (the paper notes it uses these defaults
//     untuned);
//   - delta-stepping SSSP with a configurable Δ — chaotic CAS-racing
//     relaxation by default, or a synchronous bucket-barrier variant
//     (Engine.SyncSSSP) whose parents, relaxation counts, and modeled
//     durations are schedule-independent;
//   - pull-based PageRank in float64 with the homogenized L1 stopping
//     criterion;
//   - Shiloach-Vishkin style connected components (the suite's CC);
//   - OpenMP-style dynamic scheduling with small grains.
//
// Known fidelity gaps: the real suite is C++ with OpenMP; here the
// kernels run on the shared Go runtime (internal/parallel) and all
// timing is charged to internal/simmachine's Haswell model rather
// than measured. GAP's NUMA-aware first-touch placement and its
// sliding-queue frontier are approximated by flat arrays plus the
// shared atomic frontier queue, and the synchronous SSSP mode pays a
// serial merge per bucket pass that the real suite does not have. The
// suite's other kernels (BC, TC) exist only as the TriangleCount
// extension.
package gap
