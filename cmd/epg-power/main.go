// Command epg-power reproduces the paper's power and energy study:
// Table III (time, average power, energy, energy-delay product, sleep
// baseline, increase over sleep, per BFS root) and Fig. 9 (CPU and RAM
// power box plots), using the RAPL-analogue energy model. With
// -freq-sweep it additionally runs every modeled DVFS operating point
// and tabulates joules and EDP per state — the modern question the
// paper's fixed-governor table cannot answer.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hpcl-repro/epg"
)

func main() {
	dataset := flag.String("dataset", "kron-16", "dataset (the paper uses kron-22; kron-16 keeps laptop runtimes — absolute joules are NOT comparable to Table III)")
	threads := flag.Int("threads", 32, "virtual thread count")
	roots := flag.Int("roots", 32, "BFS roots")
	seed := flag.Uint64("seed", 1, "seed")
	freq := flag.String("freq", "", "modeled DVFS operating point: turbo (default), balanced, or powersave")
	freqSweep := flag.Bool("freq-sweep", false, "run all three frequency states and tabulate joules + EDP per state")
	flag.Parse()

	s := epg.NewSuite(epg.Options{Seed: *seed})
	g, err := s.Dataset(*dataset)
	if err != nil {
		fatal(err)
	}
	spec := epg.Spec{
		Dataset:      *dataset,
		Algorithm:    epg.BFS,
		Threads:      *threads,
		Roots:        *roots,
		Seed:         *seed,
		MeasurePower: true,
		FreqState:    *freq,
	}
	results, err := s.Run(spec, g)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("machine: %s\n", s.MachineName())
	fmt.Printf("sleep baseline (10 s sleep): %.2f W\n\n", s.MeasureSleepBaseline(10))
	s.RenderEnergyTable(os.Stdout, results)
	fmt.Println()
	s.RenderPowerFigure(os.Stdout, results)

	if !*freqSweep {
		return
	}
	fmt.Printf("\nDVFS sweep (means over %d roots):\n", *roots)
	fmt.Printf("%-10s %12s %12s %14s\n", "freq", "time (s)", "energy (J)", "EDP (J*s)")
	for _, state := range []string{epg.FreqTurbo, epg.FreqBalanced, epg.FreqPowersave} {
		sw := spec
		sw.FreqState = state
		rs, err := s.Run(sw, g)
		if err != nil {
			fatal(err)
		}
		var sec, joules float64
		for _, r := range rs {
			sec += r.AlgorithmSec
			joules += r.CPUJoules + r.RAMJoules
		}
		n := float64(len(rs))
		fmt.Printf("%-10s %12.5g %12.5g %14.5g\n", state, sec/n, joules/n, (joules/n)*(sec/n))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "epg-power: %v\n", err)
	os.Exit(1)
}
