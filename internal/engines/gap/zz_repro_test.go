package gap

import (
	"testing"

	"github.com/hpcl-repro/epg/internal/graph"
)

// Repro: edge inserted in batch 1 and deleted in batch 2, with one
// IncrementalWCC over both batches. Net graph change is zero, but the
// stale entry in wccAdds must not merge the components.
func TestReproStaleAddWCC(t *testing.T) {
	el := &graph.EdgeList{
		NumVertices: 4,
		Edges: []graph.Edge{
			{Src: 0, Dst: 1},
			{Src: 2, Dst: 3},
		},
	}
	inst := load(t, New(), el, 2)
	if _, err := inst.IncrementalWCC(); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Mutate(graph.Batch{{Op: graph.MutInsert, Src: 1, Dst: 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Mutate(graph.Batch{{Op: graph.MutDelete, Src: 1, Dst: 2}}); err != nil {
		t.Fatal(err)
	}
	wcc, err := inst.IncrementalWCC()
	if err != nil {
		t.Fatal(err)
	}
	post := elFromCSR(inst.OutCSR(), false)
	labelsEqual(t, wcc, freshWCC(t, post, 2), "stale-add")
}
