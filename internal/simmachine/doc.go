// Package simmachine models the execution of parallel graph kernels on
// a configurable multicore machine.
//
// This repository reproduces a study that ran on a 2-socket, 36-core,
// 72-thread Intel Haswell server. The present environment cannot
// exhibit 72-way parallelism, so engines execute their algorithms for
// real (results are validated against references) while every parallel
// region also charges its work — cycles, DRAM bytes, atomic operations
// — to a deterministic machine model that computes the region's
// duration for an arbitrary virtual thread count. The model captures
// the mechanisms the paper's scalability analysis rests on:
//
//   - scheduling policy: OpenMP-style static (round-robin chunks),
//     dynamic (greedy least-loaded assignment), work-stealing
//     (per-lane deques with seeded randomized victim selection — a
//     deterministic simulation of the Cilk/TBB discipline; see
//     stealLanes), and two-level NUMA stealing (socket-aware victim
//     order with remote-steal and remote-chunk-access penalties; see
//     stealLanesTopo), so load imbalance from skewed degree
//     distributions appears under static scheduling and each policy's
//     remedy — and its locality price — is modeled;
//   - grain resolution: Machine.Grain resolves each region's grain
//     under the fixed (engine-chosen) or adaptive
//     (frontier-proportional, parallel.AdaptiveGrain of the virtual
//     thread count) policy — Spec.Grain;
//   - page placement: an opt-in first-touch model (SetPlacement,
//     Spec.Placement = "firsttouch") records the socket that first
//     touches each page of the region index space and charges the
//     remote-access multiplier when later chunks — under any policy,
//     statically-assigned ones included — read pages placed on
//     another socket; see placement.go;
//   - frequency scaling: single-thread turbo down to all-core base;
//   - a memory-bandwidth roofline with per-socket limits, so
//     bandwidth-bound kernels stop scaling once sockets saturate;
//   - NUMA: a latency penalty once the second socket is in use;
//   - SMT: hardware threads 37–72 add only fractional throughput;
//   - synchronization: fork + barrier overhead per region and an
//     atomic-contention term that grows with active threads.
//
// The model is deterministic: region durations depend only on the
// charged work, the chunk order, and the policy's per-region seed —
// never on the real goroutine schedule or worker count. A trace of
// regions is retained for the power model.
//
// Known fidelity gaps: the model is calibrated from public Haswell-EP
// figures and typical libgomp magnitudes, not measured on the paper's
// machine; cache effects below the DRAM roofline (L2/L3 locality,
// false sharing) are folded into the engines' per-operation byte
// charges; and the steal simulation orders lanes by accumulated load
// rather than simulating preemption, so steal timing is an
// approximation of a real racing scheduler.
package simmachine
