package powergraph

import (
	"math/bits"

	"github.com/hpcl-repro/epg/internal/graph"
)

// Replica accumulators. PowerGraph's gather phase does not write to a
// shared vertex value: each shard accumulates into its local replica
// of the vertex, and the ghost-synchronization exchange combines the
// replicas at the master. This file reproduces that layout: every
// (vertex, shard) replica pair owns one slot in a flat array, indexed
// by a per-vertex prefix offset plus the shard's rank within the
// vertex's replica mask. Gather writes are shard-local (no atomics),
// and the combine folds a vertex's slots in ascending shard order —
// so gather results, including floating-point sums, are bit-identical
// across runs and real worker counts.

// buildSlots computes the prefix offsets once the replica masks are
// final. totalRep (the classic replication-volume metric) equals
// slotOff[n].
func (inst *Instance) buildSlots() {
	inst.slotOff = make([]int64, inst.n+1)
	for v := 0; v < inst.n; v++ {
		inst.slotOff[v+1] = inst.slotOff[v] + int64(bits.OnesCount64(inst.replicas[v]))
	}
}

// slot returns the accumulator index of vertex v's replica on shard s.
// s must be set in v's replica mask.
func (inst *Instance) slot(v graph.VID, s int) int64 {
	mask := inst.replicas[v]
	return inst.slotOff[v] + int64(bits.OnesCount64(mask&(1<<uint(s)-1)))
}

// slotRange returns the half-open flat index range of v's replica
// slots; folding it in ascending order is the deterministic combine.
func (inst *Instance) slotRange(v graph.VID) (lo, hi int64) {
	return inst.slotOff[v], inst.slotOff[v+1]
}
