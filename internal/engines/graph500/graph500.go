package graph500

import (
	"sync/atomic"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/parallel"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// Cost constants: the reference's per-edge loop is lean but touches
// 64-bit parents and a visited bitmap, and CASes every unvisited
// target.
var (
	// The reference's inner loop is a tight bitmap test per edge.
	costEdge      = simmachine.Cost{Cycles: 5, Bytes: 9}
	costClaim     = simmachine.Cost{Atomics: 1, Bytes: 8}
	costBuildEdge = simmachine.Cost{Cycles: 6, Bytes: 20}
	// Compressed variant: the raw 4 B/edge neighbor read is replaced
	// by the actual compressed bytes, charged separately along with
	// Model.DecodeCyclesPerByte per byte.
	costEdgeC = simmachine.Cost{Cycles: 5, Bytes: 5}
	// costCompressEdge is the Kernel-1 surcharge of the delta+varint
	// encode pass.
	costCompressEdge = simmachine.Cost{Cycles: 8, Bytes: 10}
)

// Engine is the Graph500 reference analogue.
type Engine struct {
	// Compress switches Kernel 2's neighbor scan to the delta+varint
	// compressed adjacency (Spec.Compress). Parents, depths, and edge
	// counts are identical to the raw run; only the modeled costs move.
	Compress bool
}

// New returns the engine.
func New() *Engine { return &Engine{} }

// SetCompress implements engines.CompressSetter.
func (e *Engine) SetCompress(on bool) { e.Compress = on }

// Name implements engines.Engine.
func (e *Engine) Name() string { return "Graph500" }

// SeparateConstruction implements engines.Engine: Kernel 1 is timed
// separately from the search kernel.
func (e *Engine) SeparateConstruction() bool { return true }

// Has implements engines.Engine: the Graph500 is BFS-only.
func (e *Engine) Has(alg engines.Algorithm) bool { return alg == engines.BFS }

// Instance is a loaded Graph500 graph.
type Instance struct {
	eng *Engine
	m   *simmachine.Machine
	el  *graph.EdgeList
	csr *graph.CSR
	// ccsr is the compressed sibling of csr, built only under
	// Engine.Compress; nil selects the raw scan.
	ccsr *graph.CompressedCSR
}

// Load implements engines.Engine.
func (e *Engine) Load(el *graph.EdgeList, m *simmachine.Machine) (engines.Instance, error) {
	if err := el.Validate(); err != nil {
		return nil, err
	}
	return &Instance{eng: e, m: m, el: el}, nil
}

// BuildStructure implements engines.Instance (Kernel 1).
func (inst *Instance) BuildStructure() {
	inst.m.ParallelFor(len(inst.el.Edges), 4096, simmachine.Static, func(lo, hi int, w *simmachine.W) {
		w.Charge(costBuildEdge.Scale(2 * float64(hi-lo)))
	})
	inst.csr = graph.BuildCSR(inst.el, graph.BuildOptions{
		Symmetrize:    !inst.el.Directed,
		DropSelfLoops: true,
		Dedup:         true,
		Sort:          true,
	})
	if inst.eng.Compress {
		inst.m.ParallelFor(int(inst.csr.NumEdges()), 4096, simmachine.Static, func(lo, hi int, w *simmachine.W) {
			w.Charge(costCompressEdge.Scale(float64(hi - lo)))
		})
		inst.ccsr = graph.CompressCSR(inst.csr, 0)
	}
}

func (inst *Instance) ensureBuilt() {
	if inst.csr == nil {
		inst.BuildStructure()
	}
}

// BFS implements engines.Instance (Kernel 2).
func (inst *Instance) BFS(root graph.VID) (*engines.BFSResult, error) {
	inst.ensureBuilt()
	n := inst.csr.NumVertices
	res := &engines.BFSResult{
		Root:   root,
		Parent: make([]int64, n),
		Depth:  make([]int64, n),
	}
	for i := range res.Parent {
		res.Parent[i] = engines.NoParent
		res.Depth[i] = -1
	}
	res.Parent[root] = int64(root)
	res.Depth[root] = 0

	queue := parallel.NewChunkQueue[parallel.Claim]()
	frontier := []graph.VID{root}
	level := int64(0)
	var examined int64
	// The reference uses static scheduling: chunk the frontier
	// round-robin across threads regardless of degree skew. The 128
	// base is the GrainFixed value; adaptive resolves per level.
	const grain = 128
	for len(frontier) > 0 {
		g := inst.m.Grain(len(frontier), grain, 1)
		queue.Reset(parallel.NumChunks(len(frontier), g))
		exa := parallel.NewCounter(inst.m.Workers())
		cpb := inst.m.Model().DecodeCyclesPerByte
		inst.m.ParallelForChunks(len(frontier), g, simmachine.Static, func(lo, hi, chunk, worker int, w *simmachine.W) {
			var local []parallel.Claim
			var buf []graph.VID
			var edges, claims, decBytes int64
			for _, v := range frontier[lo:hi] {
				adj := inst.csr.Neighbors(v)
				if inst.ccsr != nil {
					buf = inst.ccsr.DecodeNeighbors(v, buf)
					adj = buf
					decBytes += inst.ccsr.EncodedBytes(v)
				}
				for _, u := range adj {
					edges++
					// The reference CASes every sighting of a vertex
					// not finalized before this level; that set — and
					// so the charge — is schedule-independent.
					if d := atomic.LoadInt64(&res.Depth[u]); d != -1 && d != level+1 {
						continue
					}
					claims++
					if parallel.LowerMinInt64(&res.Parent[u], int64(v), engines.NoParent) {
						atomic.StoreInt64(&res.Depth[u], level+1)
						local = append(local, parallel.Claim{V: u, By: v})
					}
				}
			}
			queue.Put(chunk, local)
			exa.Add(worker, edges)
			if inst.ccsr != nil {
				w.Charge(costEdgeC.Scale(float64(edges)))
				w.Cycles(cpb * float64(decBytes))
				w.Bytes(float64(decBytes))
			} else {
				w.Charge(costEdge.Scale(float64(edges)))
			}
			w.Charge(costClaim.Scale(float64(claims)))
			w.Cycles(float64(hi-lo) * 6) // dequeue + amortized chunk flush
		})
		examined += exa.Sum()
		// Canonical frontier without sorting: tentative claims drain in
		// chunk order, filtered to the final write-min parents, so both
		// membership and order are schedule-independent.
		frontier = parallel.DrainChunkQueue(queue, frontier[:0], func(c parallel.Claim) (graph.VID, bool) {
			return c.V, res.Parent[c.V] == int64(c.By)
		})
		level++
	}
	res.EdgesExamined = examined
	return res, nil
}

// SSSP implements engines.Instance; not part of the benchmark.
func (inst *Instance) SSSP(graph.VID) (*engines.SSSPResult, error) {
	return nil, engines.ErrUnsupported
}

// PageRank implements engines.Instance; not part of the benchmark.
func (inst *Instance) PageRank(engines.PROpts) (*engines.PRResult, error) {
	return nil, engines.ErrUnsupported
}

// CDLP implements engines.Instance; not part of the benchmark.
func (inst *Instance) CDLP(int) (*engines.CDLPResult, error) {
	return nil, engines.ErrUnsupported
}

// LCC implements engines.Instance; not part of the benchmark.
func (inst *Instance) LCC() (*engines.LCCResult, error) {
	return nil, engines.ErrUnsupported
}

// WCC implements engines.Instance; not part of the benchmark.
func (inst *Instance) WCC() (*engines.WCCResult, error) {
	return nil, engines.ErrUnsupported
}
