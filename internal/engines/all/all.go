// Package all wires the five engine implementations into a registry.
// It exists apart from package engines so the interface package does
// not depend on its implementations.
package all

import (
	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/engines/gap"
	"github.com/hpcl-repro/epg/internal/engines/graph500"
	"github.com/hpcl-repro/epg/internal/engines/graphbig"
	"github.com/hpcl-repro/epg/internal/engines/graphmat"
	"github.com/hpcl-repro/epg/internal/engines/powergraph"
)

// Names of the five systems, in the paper's presentation order.
const (
	Graph500   = "Graph500"
	GAP        = "GAP"
	GraphBIG   = "GraphBIG"
	GraphMat   = "GraphMat"
	PowerGraph = "PowerGraph"
)

// Names lists every engine in presentation order.
var Names = []string{Graph500, GAP, GraphBIG, GraphMat, PowerGraph}

// Registry returns a registry holding all five engines.
func Registry() *engines.Registry {
	r := engines.NewRegistry()
	r.Register(Graph500, func() engines.Engine { return graph500.New() })
	r.Register(GAP, func() engines.Engine { return gap.New() })
	r.Register(GraphBIG, func() engines.Engine { return graphbig.New() })
	r.Register(GraphMat, func() engines.Engine { return graphmat.New() })
	r.Register(PowerGraph, func() engines.Engine { return powergraph.New() })
	return r
}

// New returns the named engine from a fresh registry.
func New(name string) (engines.Engine, error) {
	return Registry().New(name)
}
