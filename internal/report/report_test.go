package report

import (
	"bytes"
	"strings"
	"testing"

	"github.com/hpcl-repro/epg/internal/core"
	"github.com/hpcl-repro/epg/internal/engines"
)

func sampleResults() []core.Result {
	var out []core.Result
	for trial := 0; trial < 4; trial++ {
		out = append(out,
			core.Result{Engine: "GAP", Algorithm: engines.BFS, Dataset: "kron-16", Trial: trial,
				AlgorithmSec: 0.01 + float64(trial)*0.001, ConstructionSec: 1.1, HasConstruction: true,
				AvgCPUWatts: 72, AvgRAMWatts: 15, CPUJoules: 1.1, RAMJoules: 0.2},
			core.Result{Engine: "GraphBIG", Algorithm: engines.BFS, Dataset: "kron-16", Trial: trial,
				AlgorithmSec: 1.5 + float64(trial)*0.1,
				AvgCPUWatts:  78, AvgRAMWatts: 17, CPUJoules: 110, RAMJoules: 20},
			core.Result{Engine: "GraphMat", Algorithm: engines.BFS, Dataset: "kron-16", Trial: trial,
				AlgorithmSec: 1.4, ConstructionSec: 3.2, HasConstruction: true,
				AvgCPUWatts: 70, AvgRAMWatts: 12, CPUJoules: 100, RAMJoules: 17},
		)
	}
	return out
}

func TestTableAlignment(t *testing.T) {
	var sb strings.Builder
	Table(&sb, "T", []string{"a", "longheader"}, [][]string{{"x", "1"}, {"yy", "22"}})
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "a ") {
		t.Errorf("header misaligned: %q", lines[1])
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := map[float64]string{
		0:      "N/A",
		0.0163: "0.0163",
		2.65:   "2.65",
		1073.7: "1073.7",
	}
	for in, want := range cases {
		if got := FormatSeconds(in); got != want {
			t.Errorf("FormatSeconds(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestBoxPlotRendersAllSeries(t *testing.T) {
	var sb strings.Builder
	BoxPlot(&sb, "BFS Time", map[string][]float64{
		"GAP":      {0.01, 0.02, 0.015},
		"GraphMat": {1.4, 1.5, 1.45},
	}, true)
	out := sb.String()
	for _, want := range []string{"GAP", "GraphMat", "#", "log10"} {
		if !strings.Contains(out, want) {
			t.Errorf("box plot missing %q:\n%s", want, out)
		}
	}
}

func TestBoxPlotLogFallsBackOnNonPositive(t *testing.T) {
	var sb strings.Builder
	BoxPlot(&sb, "t", map[string][]float64{"X": {0, 1}}, true)
	if !strings.Contains(sb.String(), "linear") {
		t.Error("log scale kept with zero values")
	}
}

func TestBoxPlotEmpty(t *testing.T) {
	var sb strings.Builder
	BoxPlot(&sb, "t", nil, false)
	if !strings.Contains(sb.String(), "no data") {
		t.Error("empty series not handled")
	}
}

func TestConstructionFigureFiltersEngines(t *testing.T) {
	var sb strings.Builder
	ConstructionFigure(&sb, "Fig 2b", sampleResults())
	out := sb.String()
	if strings.Contains(out, "GraphBIG") {
		t.Error("GraphBIG must be omitted from construction panels")
	}
	for _, want := range []string{"GAP", "GraphMat"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s", want)
		}
	}
}

func TestEnergyTableShape(t *testing.T) {
	var sb strings.Builder
	EnergyTable(&sb, sampleResults(), 24.7)
	out := sb.String()
	for _, want := range []string{
		"Table III", "Time (s)", "Average Power per Root",
		"Energy per Root", "Sleeping Energy", "Increase over Sleep",
		"GAP", "GraphBIG", "GraphMat",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("energy table missing %q:\n%s", want, out)
		}
	}
}

func TestScalingFigure(t *testing.T) {
	var sb strings.Builder
	err := ScalingFigure(&sb, "Fig 5/6", map[string]map[int]float64{
		"GAP":      {1: 1.0, 2: 0.55, 4: 0.3},
		"Graph500": {1: 1.2, 2: 1.3, 4: 0.8},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "efficiency") {
		t.Error("missing efficiency column")
	}
	// Graph500's 2-thread entry must show efficiency < 0.5 (slower
	// at 2 threads than 1, the Fig. 6 anomaly shape).
	if !strings.Contains(out, "0.462") {
		t.Errorf("expected 2-thread efficiency 0.462 in:\n%s", out)
	}
}

func TestScalingFigureMissingBaseline(t *testing.T) {
	err := ScalingFigure(&strings.Builder{}, "x", map[string]map[int]float64{"GAP": {2: 1}})
	if err == nil {
		t.Error("missing baseline accepted")
	}
}

func TestRealWorldFigure(t *testing.T) {
	rs := []core.Result{
		{Engine: "GAP", Dataset: "dota-league", Algorithm: engines.BFS, AlgorithmSec: 0.1},
		{Engine: "GAP", Dataset: "cit-Patents", Algorithm: engines.BFS, AlgorithmSec: 0.2},
		{Engine: "PowerGraph", Dataset: "dota-league", Algorithm: engines.SSSP, AlgorithmSec: 3},
	}
	var sb strings.Builder
	RealWorldFigure(&sb, rs)
	out := sb.String()
	for _, want := range []string{"dota-league", "cit-Patents", "GAP", "PowerGraph"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestPowerFigure(t *testing.T) {
	var sb strings.Builder
	PowerFigure(&sb, sampleResults(), 15.5, 9.2)
	out := sb.String()
	if !strings.Contains(out, "Fig. 9a") || !strings.Contains(out, "Fig. 9b") {
		t.Error("missing panels")
	}
	if !strings.Contains(out, "sleep baseline: 15.5 W") {
		t.Error("missing CPU sleep baseline")
	}
}

func TestIterationsFigure(t *testing.T) {
	rs := []core.Result{
		{Engine: "GAP", Iterations: 20},
		{Engine: "GraphMat", Iterations: 140},
	}
	var sb strings.Builder
	IterationsFigure(&sb, "Fig 4b", rs)
	out := sb.String()
	if !strings.Contains(out, "GAP") || !strings.Contains(out, "GraphMat") {
		t.Error("missing engines")
	}
	if !strings.Contains(out, "140") {
		t.Error("missing iteration count")
	}
}

func TestEngineOrdering(t *testing.T) {
	keys := sortedKeys(map[string]int{"Zeta": 1, "GAP": 1, "PowerGraph": 1, "Graph500": 1})
	want := []string{"Graph500", "GAP", "PowerGraph", "Zeta"}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("order = %v, want %v", keys, want)
		}
	}
}

func TestSchedStudyCSV(t *testing.T) {
	rows := []SchedStudyRow{
		{Kernel: "BFS", Sched: "dynamic", Grain: "fixed", Placement: "none", Freq: "turbo", Compress: "off", Threads: 8, Sockets: 1, Nodes: 1, Partition: "none", Workers: 4,
			ModeledSec: 0.25, Cycles: 1e9, Bytes: 2.5e8, Atomics: 1000,
			CPUJoules: 12.5, RAMJoules: 2.375, TotalJoules: 14.875, EDPJouleSec: 3.71875, WallSec: 0.5},
		{Kernel: "PR", Sched: "numa", Grain: "adaptive", Placement: "firsttouch", Freq: "powersave", Compress: "on", Threads: 72, Sockets: 2, Nodes: 4, Partition: "2d", Workers: 4,
			ModeledSec: 1.5, Cycles: 1234567890123, Bytes: 8, NetBytes: 6.25e7, Atomics: 0.5,
			CPUJoules: 0.125, RAMJoules: 0.0625, TotalJoules: 0.1875, EDPJouleSec: 0.28125},
	}
	var buf bytes.Buffer
	if err := WriteSchedStudyCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines, want 3", len(lines))
	}
	if lines[0] != SchedStudyCSVHeader {
		t.Errorf("header %q", lines[0])
	}
	if lines[1] != "BFS,dynamic,fixed,none,turbo,off,8,1,1,none,4,0.25,1e+09,2.5e+08,0,1000,12.5,2.375,14.875,3.71875,0.5" {
		t.Errorf("row %q", lines[1])
	}
	if lines[2] != "PR,numa,adaptive,firsttouch,powersave,on,72,2,4,2d,4,1.5,1.234567890123e+12,8,6.25e+07,0.5,0.125,0.0625,0.1875,0.28125,0" {
		t.Errorf("row %q", lines[2])
	}
	var tbl bytes.Buffer
	SchedStudyTable(&tbl, rows)
	if !strings.Contains(tbl.String(), "numa") {
		t.Error("table missing policy column")
	}
}
