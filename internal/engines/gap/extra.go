package gap

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// The paper's future-work section singles out triangle counting and
// betweenness centrality as "widely implemented but not supported by
// either Graphalytics nor easy-parallel-graph-*". The GAP Benchmark
// Suite does ship both (its TC and BC kernels), so this file extends
// the GAP engine with them, closing that gap for the reproduction.

var (
	costTCCheck = simmachine.Cost{Cycles: 4, Bytes: 8}
	costBCEdge  = simmachine.Cost{Cycles: 8, Bytes: 14}
)

// TriangleCount implements the suite's TC kernel: each vertex
// intersects its sorted adjacency with those of its higher-numbered
// neighbors, counting each triangle exactly once (u < v < w). The
// graph must be undirected (symmetrized), as in the real suite.
func (inst *Instance) TriangleCount() (int64, error) {
	inst.ensureBuilt()
	if inst.el.Directed {
		return 0, fmt.Errorf("gap: triangle counting requires an undirected graph")
	}
	var total int64
	inst.m.ParallelFor(inst.n, 64, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
		var local, checks int64
		for v := lo; v < hi; v++ {
			adjV := higher(inst.out.Neighbors(graph.VID(v)), graph.VID(v))
			for _, u := range adjV {
				adjU := higher(inst.out.Neighbors(u), u)
				// |{w : w ∈ adj(v), w ∈ adj(u), w > u}| with both
				// lists sorted ascending.
				i, j := 0, 0
				for i < len(adjV) && j < len(adjU) {
					checks++
					switch {
					case adjV[i] < adjU[j]:
						i++
					case adjV[i] > adjU[j]:
						j++
					default:
						if adjV[i] > u {
							local++
						}
						i++
						j++
					}
				}
			}
		}
		atomic.AddInt64(&total, local)
		w.Charge(costTCCheck.Scale(float64(checks)))
	})
	return total, nil
}

// higher returns the suffix of the sorted adjacency strictly greater
// than v.
func higher(adj []graph.VID, v graph.VID) []graph.VID {
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return adj[lo:]
}

// BetweennessCentrality implements the suite's BC kernel: Brandes'
// algorithm from the given source vertices (the real suite samples a
// handful of sources rather than running all-pairs). Scores are not
// normalized, matching GAP. Each source contributes one forward
// level-synchronous sweep counting shortest paths and one backward
// dependency accumulation.
func (inst *Instance) BetweennessCentrality(sources []graph.VID) ([]float64, error) {
	inst.ensureBuilt()
	if len(sources) == 0 {
		return nil, fmt.Errorf("gap: betweenness centrality needs at least one source")
	}
	n := inst.n
	bc := make([]float64, n)
	sigma := make([]float64, n)
	depth := make([]int64, n)
	delta := make([]uint64, n) // float64 bits, for atomic accumulation

	for _, s := range sources {
		if int(s) >= n {
			return nil, fmt.Errorf("gap: source %d out of range", s)
		}
		for i := 0; i < n; i++ {
			sigma[i] = 0
			depth[i] = -1
			delta[i] = 0 // bits of +0.0
		}
		sigma[s] = 1
		depth[s] = 0

		// Forward: level-synchronous shortest-path counting. The
		// frontier at each level is exact, so sigma accumulation
		// over in-level edges is race-free per target when done in
		// the pull direction.
		levels := [][]graph.VID{{s}}
		for {
			cur := levels[len(levels)-1]
			lvl := int64(len(levels) - 1)
			var mu sync.Mutex
			var next []graph.VID
			inst.m.ParallelFor(len(cur), 64, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
				var local []graph.VID
				var edges int64
				for _, v := range cur[lo:hi] {
					for _, u := range inst.out.Neighbors(v) {
						edges++
						d := atomic.LoadInt64(&depth[u])
						if d == -1 {
							if atomic.CompareAndSwapInt64(&depth[u], -1, lvl+1) {
								local = append(local, u)
							}
						}
					}
				}
				if len(local) > 0 {
					mu.Lock()
					next = append(next, local...)
					mu.Unlock()
				}
				w.Charge(costBCEdge.Scale(float64(edges)))
			})
			if len(next) == 0 {
				break
			}
			// Sigma accumulation in the pull direction over the new
			// level: each vertex sums its predecessors' counts.
			inst.m.ParallelFor(len(next), 256, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
				var edges int64
				for _, v := range next[lo:hi] {
					var sum float64
					for _, u := range inst.in.Neighbors(v) {
						edges++
						if depth[u] == lvl {
							sum += sigma[u]
						}
					}
					sigma[v] = sum
				}
				w.Charge(costBCEdge.Scale(float64(edges)))
			})
			levels = append(levels, next)
		}

		// Backward: dependency accumulation level by level.
		for l := len(levels) - 1; l > 0; l-- {
			cur := levels[l]
			inst.m.ParallelFor(len(cur), 256, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
				var edges int64
				for _, v := range cur[lo:hi] {
					coef := (1 + math.Float64frombits(atomic.LoadUint64(&delta[v]))) / sigma[v]
					for _, u := range inst.in.Neighbors(v) {
						edges++
						if depth[u] == int64(l-1) {
							// Predecessor sets of frontier vertices
							// overlap, so accumulate atomically.
							atomicAddFloat64(&delta[u], sigma[u]*coef)
						}
					}
				}
				w.Charge(costBCEdge.Scale(float64(edges)))
			})
		}
		for v := 0; v < n; v++ {
			if graph.VID(v) != s && depth[v] != -1 {
				bc[v] += math.Float64frombits(delta[v])
			}
		}
	}
	return bc, nil
}
