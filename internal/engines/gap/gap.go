package gap

import (
	"fmt"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// Tunables exposed by the real suite.
const (
	// DefaultAlpha and DefaultBeta are the direction-optimizing BFS
	// switching parameters; the paper uses the defaults.
	DefaultAlpha = 15
	DefaultBeta  = 18
	// DefaultDelta is the delta-stepping bucket width for weights
	// uniform in (0,1].
	DefaultDelta = 0.25
)

// Cost constants (per operation) charged to the machine model. GAP is
// the leanest implementation in the study: tight loops over plain
// arrays with float64 scores.
var (
	costTopDownEdge  = simmachine.Cost{Cycles: 6, Bytes: 10}
	costBottomUpEdge = simmachine.Cost{Cycles: 4, Bytes: 8}
	costClaim        = simmachine.Cost{Atomics: 1}
	costRelax        = simmachine.Cost{Cycles: 9, Bytes: 14}
	costBucketOp     = simmachine.Cost{Cycles: 6, Bytes: 8}
	costPREdge       = simmachine.Cost{Cycles: 3, Bytes: 12}
	costPRVertex     = simmachine.Cost{Cycles: 6, Bytes: 24}
	costCCEdge       = simmachine.Cost{Cycles: 4, Bytes: 10}
	costBuildEdge    = simmachine.Cost{Cycles: 5, Bytes: 18}
	// Compressed-adjacency variants of the traversal edge costs: the
	// raw 4 B/edge neighbor-ID read is stripped out, because under
	// Spec.Compress the kernels charge the actual compressed bytes
	// consumed (plus Model.DecodeCyclesPerByte per byte) instead.
	costTopDownEdgeC  = simmachine.Cost{Cycles: 6, Bytes: 6}
	costBottomUpEdgeC = simmachine.Cost{Cycles: 4, Bytes: 4}
	costPREdgeC       = simmachine.Cost{Cycles: 3, Bytes: 8}
	// costCompressEdge is the Kernel-1 surcharge of the delta+varint
	// encode pass: re-read each sorted neighbor, compute the gap, emit
	// ~1-2 bytes.
	costCompressEdge = simmachine.Cost{Cycles: 8, Bytes: 10}
	// Frontier-machinery costs: the sliding queue's flush (per kept
	// vertex), bitmap word sweeps (clear/scan, per 64-bit word), and
	// bitmap inserts at the direction switch (per frontier vertex).
	costQueueDrain   = simmachine.Cost{Cycles: 3, Bytes: 8}
	costBitmapWord   = simmachine.Cost{Cycles: 1, Bytes: 8}
	costBitmapInsert = simmachine.Cost{Cycles: 2, Bytes: 8}
)

// Engine is the GAP Benchmark Suite analogue.
type Engine struct {
	Alpha int
	Beta  int
	Delta float64
	// SyncSSSP selects the synchronous bucket-barrier delta-stepping
	// variant: each relaxation pass gathers candidate updates against
	// a distance snapshot and applies them in chunk order, so parents,
	// relaxation counts, bucket composition, and modeled durations are
	// schedule-independent. Off by default — the real suite's
	// CAS-racing relaxation is part of its character.
	SyncSSSP bool
	// Compress builds delta+varint compressed adjacency alongside the
	// raw CSR and routes the BFS and PageRank inner loops through
	// on-the-fly decode (Spec.Compress). Outputs are identical to the
	// raw run; modeled costs switch to compressed bytes plus
	// Model.DecodeCyclesPerByte. SSSP and WCC keep the raw CSR (the
	// weight stream is not compressed).
	Compress bool
}

// SetSyncSSSP implements engines.SyncSSSPSetter.
func (e *Engine) SetSyncSSSP(on bool) { e.SyncSSSP = on }

// SetCompress implements engines.CompressSetter.
func (e *Engine) SetCompress(on bool) { e.Compress = on }

// New returns the engine with the paper's default parameterization.
func New() *Engine {
	return &Engine{Alpha: DefaultAlpha, Beta: DefaultBeta, Delta: DefaultDelta}
}

// Name implements engines.Engine.
func (e *Engine) Name() string { return "GAP" }

// SeparateConstruction implements engines.Engine: GAP builds its CSR
// in a distinct, timed phase.
func (e *Engine) SeparateConstruction() bool { return true }

// Has implements engines.Engine. The suite provides BFS, SSSP, PR and
// CC (reported as WCC here); it has no CDLP or LCC reference.
func (e *Engine) Has(alg engines.Algorithm) bool {
	switch alg {
	case engines.BFS, engines.SSSP, engines.PageRank, engines.WCC:
		return true
	}
	return false
}

// Instance is a loaded GAP graph.
type Instance struct {
	eng *Engine
	m   *simmachine.Machine
	el  *graph.EdgeList

	out *graph.CSR
	in  *graph.CSR
	// Compressed siblings of out/in, built only when eng.Compress;
	// nil selects the raw decode-free paths.
	cout *graph.CompressedCSR
	cin  *graph.CompressedCSR
	n    int
	// total directed edges, used by the direction-optimizing
	// heuristic.
	mEdges int64
	// cancel, when non-nil, is polled at frontier/bucket/iteration
	// granularity by the long-running kernels (engines.CancelSetter);
	// a non-nil return abandons the run with that error.
	cancel func() error
	// stream holds the mutation overlay (dirty sets and cached
	// incremental baselines); nil until the first Streamer call.
	stream *streamState
	// prRec, when non-nil, makes PageRank snapshot its per-iteration
	// trajectory into it — armed only by recordedPageRank, so plain
	// runs never pay the O(iters·n) memory.
	prRec *prTrajectory
}

// SetCancel implements engines.CancelSetter: check is polled between
// parallel regions (once per BFS level, delta-stepping pass, or
// PR/WCC iteration). Passing nil removes the hook.
func (inst *Instance) SetCancel(check func() error) { inst.cancel = check }

// checkCancel polls the cancellation hook, wrapping any error with the
// kernel name for the caller's structured logs.
func (inst *Instance) checkCancel(kernel string) error {
	if inst.cancel == nil {
		return nil
	}
	if err := inst.cancel(); err != nil {
		return fmt.Errorf("gap: %s canceled: %w", kernel, err)
	}
	return nil
}

// Load implements engines.Engine. It only captures the edge list; the
// CSR is built in BuildStructure (the separately-timed phase).
func (e *Engine) Load(el *graph.EdgeList, m *simmachine.Machine) (engines.Instance, error) {
	if err := el.Validate(); err != nil {
		return nil, err
	}
	return &Instance{eng: e, m: m, el: el}, nil
}

// BuildStructure implements engines.Instance: Kernel-1-style CSR
// construction, charged as two passes over the edge list.
func (inst *Instance) BuildStructure() {
	el := inst.el
	inst.m.ParallelFor(len(el.Edges), 4096, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
		w.Charge(costBuildEdge.Scale(2 * float64(hi-lo))) // count + scatter
	})
	inst.out = graph.BuildCSR(el, graph.BuildOptions{
		Symmetrize:    !el.Directed,
		DropSelfLoops: true,
		Dedup:         true,
		Sort:          true,
	})
	if el.Directed {
		inst.m.ParallelFor(int(inst.out.NumEdges()), 4096, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
			w.Charge(costBuildEdge.Scale(float64(hi - lo)))
		})
		inst.in = graph.Transpose(inst.out, 0)
		inst.in.SortAdjacency()
	} else {
		inst.in = inst.out
	}
	if inst.eng.Compress {
		inst.m.ParallelFor(int(inst.out.NumEdges()), 4096, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
			w.Charge(costCompressEdge.Scale(float64(hi - lo)))
		})
		inst.cout = graph.CompressCSR(inst.out, 0)
		if el.Directed {
			inst.m.ParallelFor(int(inst.in.NumEdges()), 4096, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
				w.Charge(costCompressEdge.Scale(float64(hi - lo)))
			})
			inst.cin = graph.CompressCSR(inst.in, 0)
		} else {
			inst.cin = inst.cout
		}
	}
	inst.n = inst.out.NumVertices
	inst.mEdges = inst.out.NumEdges()
}

func (inst *Instance) built() bool { return inst.out != nil }

// ensureBuilt guards algorithm entry points: the harness always calls
// BuildStructure, but library users might not.
func (inst *Instance) ensureBuilt() {
	if !inst.built() {
		inst.BuildStructure()
	}
}

// CDLP implements engines.Instance; GAP has no CDLP reference.
func (inst *Instance) CDLP(maxIter int) (*engines.CDLPResult, error) {
	return nil, engines.ErrUnsupported
}

// LCC implements engines.Instance; GAP has no LCC reference (the
// suite's triangle count is a different kernel).
func (inst *Instance) LCC() (*engines.LCCResult, error) {
	return nil, engines.ErrUnsupported
}

// Machine returns the simmachine this instance executes and charges
// on, for callers (benchmarks, scheduling studies) that need to read
// its modeled clock or force a scheduling policy.
func (inst *Instance) Machine() *simmachine.Machine { return inst.m }
