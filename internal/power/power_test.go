package power

import (
	"math"
	"strings"
	"testing"

	"github.com/hpcl-repro/epg/internal/simmachine"
)

func machine(threads int) *simmachine.Machine {
	return simmachine.New(simmachine.Haswell72(), threads)
}

func TestSleepBaselineMatchesPaper(t *testing.T) {
	c := DefaultConstants()
	// Table III implies ~24.7 W idle (e.g. 0.4046 J / 0.01636 s).
	if w := c.SleepWatts(); math.Abs(w-24.7) > 0.2 {
		t.Errorf("sleep watts = %v, want ~24.7", w)
	}
	m := machine(32)
	rd := MeasureSleep(m, c, 10)
	if math.Abs(rd.Seconds-10) > 1e-9 {
		t.Errorf("sleep window = %v s", rd.Seconds)
	}
	if got := rd.AvgWatts(); math.Abs(got-c.SleepWatts()) > 1e-9 {
		t.Errorf("sleep power = %v, want %v", got, c.SleepWatts())
	}
}

func TestBusyDrawsMoreThanIdle(t *testing.T) {
	c := DefaultConstants()
	m := machine(32)
	r := NewRAPL(m, c)
	r.Start()
	m.ParallelFor(3200, 1, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
		w.Cycles(1e7)
		w.Bytes(1e5)
	})
	rd := r.End()
	if rd.Seconds <= 0 {
		t.Fatal("no elapsed time")
	}
	if rd.AvgWatts() <= c.SleepWatts() {
		t.Errorf("busy power %v not above idle %v", rd.AvgWatts(), c.SleepWatts())
	}
	if rd.AvgCPUWatts() <= c.CPUIdleWatts {
		t.Error("cpu plane not above idle")
	}
	if rd.AvgRAMWatts() <= c.RAMIdleWatts {
		t.Error("ram plane not above idle")
	}
}

func TestPowerInPlausibleBand(t *testing.T) {
	// A 32-thread compute+atomic-heavy BFS-like load should land in
	// the paper's observed 60–110 W package band.
	c := DefaultConstants()
	m := machine(32)
	r := NewRAPL(m, c)
	r.Start()
	m.ParallelFor(32*64, 1, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
		w.Cycles(2e6)
		w.Atomics(5e3) // ~1 atomic per 400 cycles, BFS-claim territory
		w.Bytes(1e6)
	})
	rd := r.End()
	if w := rd.AvgCPUWatts(); w < 55 || w > 115 {
		t.Errorf("cpu power %v W outside plausible Haswell band", w)
	}
	if w := rd.AvgRAMWatts(); w < 9 || w > 25 {
		t.Errorf("ram power %v W outside plausible band", w)
	}
}

func TestMoreThreadsMorePower(t *testing.T) {
	c := DefaultConstants()
	measure := func(threads int) float64 {
		m := machine(threads)
		r := NewRAPL(m, c)
		r.Start()
		m.ParallelFor(threads, 1, simmachine.Static, func(lo, hi int, w *simmachine.W) {
			w.Cycles(1e8)
		})
		return r.End().AvgCPUWatts()
	}
	p1, p32 := measure(1), measure(32)
	if p32 <= p1 {
		t.Errorf("32-thread power %v not above 1-thread %v", p32, p1)
	}
}

func TestEnergyIsPowerTimesTime(t *testing.T) {
	c := DefaultConstants()
	m := machine(4)
	r := NewRAPL(m, c)
	r.Start()
	m.Sleep(2)
	rd := r.End()
	want := c.SleepWatts() * 2
	if math.Abs(rd.TotalJoules()-want) > 1e-9 {
		t.Errorf("energy = %v, want %v", rd.TotalJoules(), want)
	}
}

func TestWindowsAreDisjoint(t *testing.T) {
	c := DefaultConstants()
	m := machine(2)
	r := NewRAPL(m, c)

	r.Start()
	m.Serial(func(w *simmachine.W) { w.Cycles(3.6e9) })
	first := r.End()

	r.Start()
	m.Serial(func(w *simmachine.W) { w.Cycles(7.2e9) })
	second := r.End()

	if math.Abs(second.Seconds-2*first.Seconds) > 1e-9 {
		t.Errorf("windows overlap: %v vs %v", first.Seconds, second.Seconds)
	}
}

func TestEndWithoutStart(t *testing.T) {
	r := NewRAPL(machine(1), DefaultConstants())
	if rd := r.End(); rd.Seconds != 0 || rd.TotalJoules() != 0 {
		t.Errorf("unstarted End() = %+v", rd)
	}
}

func TestZeroWindow(t *testing.T) {
	r := NewRAPL(machine(1), DefaultConstants())
	r.Start()
	rd := r.End()
	if rd.AvgWatts() != 0 {
		t.Errorf("zero window avg = %v", rd.AvgWatts())
	}
}

func TestReadingPrint(t *testing.T) {
	var sb strings.Builder
	Reading{Seconds: 1, CPUJoules: 70, RAMJoules: 10}.Print(&sb)
	out := sb.String()
	for _, want := range []string{"PACKAGE_ENERGY", "DRAM_ENERGY", "ELAPSED", "AVG_POWER", "80.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("print output missing %q:\n%s", want, out)
		}
	}
}

func TestAtomicsRaisePower(t *testing.T) {
	c := DefaultConstants()
	run := func(atomics float64) float64 {
		m := machine(16)
		r := NewRAPL(m, c)
		r.Start()
		m.ParallelFor(16, 1, simmachine.Static, func(lo, hi int, w *simmachine.W) {
			w.Cycles(1e7)
			w.Atomics(atomics)
		})
		return r.End().AvgCPUWatts()
	}
	if lo, hi := run(0), run(1e5); hi <= lo {
		t.Errorf("atomic-heavy power %v not above atomic-free %v", hi, lo)
	}
}

func TestMemoryTrafficRaisesRAMPower(t *testing.T) {
	c := DefaultConstants()
	run := func(bytes float64) float64 {
		m := machine(16)
		r := NewRAPL(m, c)
		r.Start()
		m.ParallelFor(16, 1, simmachine.Static, func(lo, hi int, w *simmachine.W) {
			w.Cycles(1e7)
			w.Bytes(bytes)
		})
		return r.End().AvgRAMWatts()
	}
	if lo, hi := run(0), run(1e8); hi <= lo {
		t.Errorf("traffic-heavy RAM power %v not above idle %v", hi, lo)
	}
}
