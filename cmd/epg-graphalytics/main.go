// Command epg-graphalytics runs the Graphalytics-methodology
// comparator: one run per (platform, algorithm, dataset) cell with
// each platform's own (inconsistent) time accounting, reproducing
// Tables I and II and the per-platform HTML report of Fig. 7.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/hpcl-repro/epg"
)

func main() {
	datasetsFlag := flag.String("datasets", "cit-Patents,dota-league", "comma-separated datasets (Table I uses the real-world pair; pass kron-22 for Table II)")
	threads := flag.Int("threads", 32, "virtual thread count")
	divisor := flag.Int("divisor", 64, "real-world dataset scale divisor (1 = full size)")
	seed := flag.Uint64("seed", 1, "seed")
	htmlDir := flag.String("html", "", "write one HTML page per platform into this directory (Fig. 7)")
	flag.Parse()

	s := epg.NewSuite(epg.Options{RealWorldDivisor: *divisor, Seed: *seed})
	var all []epg.GraphalyticsCell
	for _, name := range strings.Split(*datasetsFlag, ",") {
		name = strings.TrimSpace(name)
		g, err := s.Dataset(name)
		if err != nil {
			fatal(err)
		}
		cells, err := s.Graphalytics(g, *threads)
		if err != nil {
			fatal(err)
		}
		all = append(all, cells...)
	}

	title := fmt.Sprintf("Graphalytics sample run times (seconds), %d threads, one run per experiment", *threads)
	epg.RenderGraphalyticsTable(os.Stdout, title, all)

	if *htmlDir != "" {
		for _, platform := range []string{"GraphBIG", "PowerGraph", "GraphMat"} {
			path := filepath.Join(*htmlDir, "graphalytics-"+strings.ToLower(platform)+".html")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := epg.RenderGraphalyticsHTML(f, platform, all); err != nil {
				f.Close()
				fatal(err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "epg-graphalytics: %v\n", err)
	os.Exit(1)
}
