package server

import (
	"encoding/json"
	"net/http"
	"strconv"

	"github.com/hpcl-repro/epg/internal/graph"
)

// Handler returns the daemon's HTTP API:
//
//	GET  /query?op=bfs&src=3&dst=9[&k=2][&deadline_ms=50]
//	GET  /metrics
//	GET  /healthz
//	POST /refresh
//
// Status mapping: 200 served (including degraded answers — check the
// "degraded" field), 400 invalid query, 429 shed by admission
// (Retry-After: 1), 500 recovered panic or engine error, 504 deadline
// budget exhausted.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/refresh", s.handleRefresh)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"err": "GET only"})
		return
	}
	q, err := parseQueryParams(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"err": err.Error()})
		return
	}
	resp := s.Submit(r.Context(), q)
	code := http.StatusOK
	switch resp.Status {
	case StatusShed:
		w.Header().Set("Retry-After", "1")
		code = http.StatusTooManyRequests
	case StatusDeadline:
		code = http.StatusGatewayTimeout
	case StatusPanic:
		code = http.StatusInternalServerError
	case StatusError:
		// Validation errors are the client's; engine errors ours.
		if s.closed.Load() {
			code = http.StatusServiceUnavailable
		} else if resp.ModeledSec == 0 {
			code = http.StatusBadRequest
		} else {
			code = http.StatusInternalServerError
		}
	}
	writeJSON(w, code, resp)
}

func parseQueryParams(r *http.Request) (Query, error) {
	v := r.URL.Query()
	q := Query{Op: Op(v.Get("op"))}
	parse := func(key string) (graph.VID, error) {
		u, err := strconv.ParseUint(v.Get(key), 10, 32)
		return graph.VID(u), err
	}
	var err error
	if v.Get("src") != "" {
		if q.Source, err = parse("src"); err != nil {
			return q, err
		}
	}
	if v.Get("dst") != "" {
		if q.Target, err = parse("dst"); err != nil {
			return q, err
		}
	}
	if ks := v.Get("k"); ks != "" {
		if q.K, err = strconv.Atoi(ks); err != nil {
			return q, err
		}
	}
	if ds := v.Get("deadline_ms"); ds != "" {
		ms, err := strconv.ParseFloat(ds, 64)
		if err != nil {
			return q, err
		}
		q.DeadlineSec = ms / 1e3
	}
	return q, nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.Metrics()
	writeJSON(w, http.StatusOK, struct {
		MetricsSnapshot
		QueueDepth    int `json:"queue_depth"`
		MaxQueueDepth int `json:"max_queue_depth"`
	}{snap, s.QueueDepth(), s.MaxQueueDepth()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"dataset":  s.cfg.Dataset,
		"vertices": s.NumVertices(),
		"weighted": s.Weighted(),
	})
}

func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"err": "POST only"})
		return
	}
	if err := s.Refresh(r.Context()); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"err": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
