package power

import (
	"math"
	"strings"
	"testing"

	"github.com/hpcl-repro/epg/internal/simmachine"
)

func TestFreqStateLookup(t *testing.T) {
	def, err := FreqStateByName("")
	if err != nil || def.Name != "turbo" {
		t.Fatalf("empty name = %+v, %v; want turbo", def, err)
	}
	for _, f := range FreqStates() {
		got, err := FreqStateByName(f.Name)
		if err != nil || got != f {
			t.Errorf("FreqStateByName(%q) = %+v, %v", f.Name, got, err)
		}
	}
	if _, err := FreqStateByName("overclocked"); err == nil {
		t.Error("unknown state accepted")
	}
}

// TestFreqTurboIsIdentity: the default operating point must reproduce
// the historical calibration bit for bit — every artifact regenerated
// before the frequency axis existed depends on it.
func TestFreqTurboIsIdentity(t *testing.T) {
	turbo, _ := FreqStateByName("turbo")
	if m := turbo.ScaleModel(simmachine.Haswell72()); m != simmachine.Haswell72() {
		t.Errorf("turbo scaled the model: %+v", m)
	}
	if c := turbo.ScaleConstants(DefaultConstants()); c != DefaultConstants() {
		t.Errorf("turbo scaled the constants: %+v", c)
	}
}

// TestFreqStatesOrderedAndCoupled: states are listed fastest first,
// clocks drop monotonically, and the power scalings follow
// voltage–frequency coupling (LanePower = Clock³, CyclePower = Clock²
// within float tolerance) — the physical constraint that makes the
// modeled trade-off honest.
func TestFreqStatesOrderedAndCoupled(t *testing.T) {
	states := FreqStates()
	for i, f := range states {
		if f.Clock <= 0 || f.Clock > 1 {
			t.Errorf("%s: clock %v outside (0, 1]", f.Name, f.Clock)
		}
		if i > 0 && f.Clock >= states[i-1].Clock {
			t.Errorf("%s: clock %v not below %s's %v", f.Name, f.Clock, states[i-1].Name, states[i-1].Clock)
		}
		if math.Abs(f.LanePower-f.Clock*f.Clock*f.Clock) > 1e-12 {
			t.Errorf("%s: LanePower %v != Clock³ %v", f.Name, f.LanePower, f.Clock*f.Clock*f.Clock)
		}
		if math.Abs(f.CyclePower-f.Clock*f.Clock) > 1e-12 {
			t.Errorf("%s: CyclePower %v != Clock² %v", f.Name, f.CyclePower, f.Clock*f.Clock)
		}
	}
}

// runBusy charges a mixed compute+memory region on a machine at the
// given operating point and returns (modeled seconds, reading).
func runBusy(f FreqState) (float64, Reading) {
	m := simmachine.New(f.ScaleModel(simmachine.Haswell72()), 16)
	r := NewRAPL(m, f.ScaleConstants(DefaultConstants()))
	r.Start()
	m.ParallelFor(16, 1, simmachine.Static, func(lo, hi int, w *simmachine.W) {
		w.Cycles(1e8)
		w.Atomics(1e4)
		w.Bytes(1e6)
	})
	m.Serial(func(w *simmachine.W) { w.Cycles(3.6e8) })
	return m.Elapsed(), r.End()
}

// TestFreqScalingTrade: lower operating points must stretch
// compute-bound modeled time and lower average CPU power, leave the
// DRAM-plane energy untouched (same bytes, unchanged BandwidthWatts),
// and reduce CPU *dynamic* energy (per-event energy ∝ V² ≈ Clock²).
// Total CPU joules may rise — the unscaled idle draw accrues over the
// stretched runtime, which is exactly the race-to-idle effect the
// study's EDP column weighs; EDP must stay finite and positive.
func TestFreqScalingTrade(t *testing.T) {
	states := FreqStates()
	prevSec, prevWatts := 0.0, math.Inf(1)
	base, _ := FreqStateByName("")
	_, baseRd := runBusy(base)
	for _, f := range states {
		sec, rd := runBusy(f)
		if sec <= 0 || rd.EDP() <= 0 {
			t.Fatalf("%s: degenerate run: %v s, EDP %v", f.Name, sec, rd.EDP())
		}
		if sec < prevSec {
			t.Errorf("%s: modeled %v s faster than the higher state's %v s", f.Name, sec, prevSec)
		}
		if w := rd.AvgCPUWatts(); w >= prevWatts {
			t.Errorf("%s: avg cpu %v W not below the higher state's %v W", f.Name, w, prevWatts)
		}
		ramDyn := rd.RAMJoules - DefaultConstants().RAMIdleWatts*rd.Seconds
		baseRAMDyn := baseRd.RAMJoules - DefaultConstants().RAMIdleWatts*baseRd.Seconds
		if math.Abs(ramDyn-baseRAMDyn) > 1e-9*math.Abs(baseRAMDyn) {
			t.Errorf("%s: DRAM dynamic energy %v J drifted from turbo's %v J — same bytes must cost the same",
				f.Name, ramDyn, baseRAMDyn)
		}
		cpuDyn := rd.CPUJoules - DefaultConstants().CPUIdleWatts*rd.Seconds
		baseCPUDyn := baseRd.CPUJoules - DefaultConstants().CPUIdleWatts*baseRd.Seconds
		if f.Name != "turbo" && cpuDyn >= baseCPUDyn {
			t.Errorf("%s: cpu dynamic energy %v J not below turbo's %v J", f.Name, cpuDyn, baseCPUDyn)
		}
		prevSec, prevWatts = sec, rd.AvgCPUWatts()
	}
}

// TestFreqPerturbationMovesJoules: a one-constant perturbation of the
// power calibration (LaneWatts 1.55 → 1.56) must move the measured
// joules of a busy trace — the property the scheduling-study drift
// gate relies on to catch silent power-model changes (the CSV stores
// joules at full round-trip precision).
func TestFreqPerturbationMovesJoules(t *testing.T) {
	m := simmachine.New(simmachine.Haswell72(), 16)
	m.ParallelFor(16, 1, simmachine.Static, func(lo, hi int, w *simmachine.W) {
		w.Cycles(1e8)
	})
	base := DefaultConstants().MeasureTrace(m.Trace())
	perturbed := DefaultConstants()
	perturbed.LaneWatts = 1.56
	got := perturbed.MeasureTrace(m.Trace())
	if math.Float64bits(got.CPUJoules) == math.Float64bits(base.CPUJoules) {
		t.Errorf("LaneWatts 1.55→1.56 left cpu joules unchanged at %v", base.CPUJoules)
	}
}

// TestRAPLEndAcrossResetPanics is the regression test for the
// window/Reset hazard: End() used to slice the trace with a cursor
// captured before Reset truncated it — an out-of-range slice when the
// new trace is shorter, or a silently wrong reading when enough new
// regions had accumulated. Both cases must now fail loudly.
func TestRAPLEndAcrossResetPanics(t *testing.T) {
	m := machine(2)
	c := DefaultConstants()
	burn := func() { m.Serial(func(w *simmachine.W) { w.Cycles(1e6) }) }

	burn() // startIdx > 0, so post-Reset traces can silently re-cover it
	r := NewRAPL(m, c)
	r.Start()
	burn()
	m.Reset()
	burn()
	burn() // trace long enough that the stale slice would be in range

	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("End() across Machine.Reset did not panic")
		}
		if msg, ok := rec.(string); !ok || !strings.Contains(msg, "Reset") {
			t.Errorf("panic %v does not name the Reset hazard", rec)
		}
	}()
	r.End()
}

// TestRAPLStartRequiresTracing: with trace retention off the window
// would integrate nothing and report zero joules over positive
// seconds; Start must refuse.
func TestRAPLStartRequiresTracing(t *testing.T) {
	m := machine(1)
	m.SetTracing(false)
	defer func() {
		if recover() == nil {
			t.Fatal("Start() with tracing disabled did not panic")
		}
	}()
	NewRAPL(m, DefaultConstants()).Start()
}

// TestReadingEdgeCases: degenerate windows must degrade to zeros, not
// NaNs or infinities — Seconds <= 0 (including the negative seconds a
// corrupted window could produce), the empty window, and End() without
// Start() (covered again here alongside its sibling cases).
func TestReadingEdgeCases(t *testing.T) {
	for _, rd := range []Reading{
		{},
		{Seconds: 0, CPUJoules: 5, RAMJoules: 5},
		{Seconds: -1, CPUJoules: 5, RAMJoules: 5},
	} {
		if w := rd.AvgWatts(); w != 0 {
			t.Errorf("AvgWatts(%+v) = %v, want 0", rd, w)
		}
		if w := rd.AvgCPUWatts(); w != 0 {
			t.Errorf("AvgCPUWatts(%+v) = %v, want 0", rd, w)
		}
		if w := rd.AvgRAMWatts(); w != 0 {
			t.Errorf("AvgRAMWatts(%+v) = %v, want 0", rd, w)
		}
		if e := rd.EDP(); e != 0 {
			t.Errorf("EDP(%+v) = %v, want 0", rd, e)
		}
	}
	if rd := NewRAPL(machine(1), DefaultConstants()).End(); rd != (Reading{}) {
		t.Errorf("End() without Start() = %+v, want zero reading", rd)
	}
	if rd := (Constants{}).MeasureTrace(nil); rd != (Reading{}) {
		t.Errorf("MeasureTrace(nil) = %+v, want zero reading", rd)
	}
}
