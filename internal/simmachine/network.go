package simmachine

import "math/bits"

// Modeled distributed-memory cluster. SetCluster groups the machine's
// virtual lanes into `nodes` cluster nodes (lane l belongs to node
// l/ceil(threads/nodes), mirroring the socket grouping of the steal
// topology) and declares who owns each item of a region's index space:
// an explicit per-item owner table (the 2D vertex-cut partition) or,
// when the table is nil or does not cover the region, contiguous
// blocked 1D ranges.
//
// Per region, every chunk whose items are owned by a node other than
// the executing lane's is charged inter-node traffic in two terms,
// exactly parallel to how placement.go charges cross-socket reads:
//
//   - bytes: the remote-owned share of the chunk's DRAM bytes is
//     multiplied by Model.NetBytesFactor − 1 and added to the executing
//     lane AFTER lane assignment, so it widens the bandwidth roofline
//     without perturbing which lane ran which chunk;
//   - latency: messages batch per superstep — all traffic between one
//     ordered (sender, owner) node pair in one region coalesces into a
//     single flush — and the region pays Model.NetLatencyCycles per
//     distinct communicating pair, serialized after the barrier.
//
// Determinism contract: node membership, item ownership, and both
// charges are pure functions of (costs, threads, nodes, owner table,
// n, grain) plus the same execLane assignment the placement model
// uses. Real workers, GOMAXPROCS, and wall-clock never enter. With
// nodes <= 1 the model is inert and the machine's trace is
// byte-identical to the unsharded one — the Nodes=1 conformance wall
// pins that.
//
// Approximations, by design: ForEachThread, Serial, and ChargeSerial
// regions are uncharged (per-thread local state and serial drains are
// node-local by construction), and owner tables apply only to regions
// whose index space length equals the table's — other index spaces
// (edge-indexed sweeps, replica slots) fall back to blocked 1D, the
// same congruent-views treatment placement.go applies to pages.

// SetCluster configures the virtual cluster: the node count and an
// optional per-item owner table for vertex-indexed regions (nil means
// blocked 1D ownership everywhere). Counts below 2 disable the model.
func (m *Machine) SetCluster(nodes int, owner []int16) {
	if nodes < 1 {
		nodes = 1
	}
	m.nodes = nodes
	m.nodeOwner = owner
}

// Nodes returns the virtual cluster node count (1 = single box).
func (m *Machine) Nodes() int { return m.nodes }

// clusterActive reports whether the network model charges anything.
func (m *Machine) clusterActive() bool { return m.nodes > 1 }

// netBytesFactor resolves the inter-node traffic multiplier (models
// predating the network fields charge no surcharge).
func (m *Machine) netBytesFactor() float64 {
	if m.model.NetBytesFactor >= 1 {
		return m.model.NetBytesFactor
	}
	return 1
}

// chargeNetwork walks the region's chunks in ascending index order,
// resolves each chunk's item ownership against the cluster partition,
// and accumulates the two network terms into the lanes (bytes) and the
// machine's pending scratch (batch latency + message bytes), which
// commitLanes consumes when it prices the region.
func (m *Machine) chargeNetwork(costs, lanes []Cost, execLane []int, n, grain int) {
	t := m.threads
	nodes := m.nodes
	per := (t + nodes - 1) / nodes // lanes per node, last node may be short
	factor := m.netBytesFactor()
	owner := m.nodeOwner
	if len(owner) != n {
		owner = nil // index space doesn't match the table: blocked 1D
	}

	cnt := make([]int, nodes)      // items of the current chunk per owner node
	pairs := make([]uint64, nodes) // pairs[s] = owner-node mask messaged by sender s
	var netBytes float64
	for c := range costs {
		lo := c * grain
		hi := lo + grain
		if hi > n {
			hi = n
		}
		items := hi - lo
		if items <= 0 {
			continue
		}
		l := c % t // Static: the residue-class owner
		if execLane != nil {
			l = execLane[c]
		}
		execNode := l / per

		for b := range cnt {
			cnt[b] = 0
		}
		if owner != nil {
			for i := lo; i < hi; i++ {
				cnt[owner[i]]++
			}
		} else {
			for b := 0; b < nodes; b++ {
				blo := b * n / nodes
				bhi := (b + 1) * n / nodes
				if blo < lo {
					blo = lo
				}
				if bhi > hi {
					bhi = hi
				}
				if bhi > blo {
					cnt[b] = bhi - blo
				}
			}
		}

		bytes := costs[c].Bytes
		if bytes <= 0 {
			continue
		}
		for b := 0; b < nodes; b++ {
			if b == execNode || cnt[b] == 0 {
				continue
			}
			share := bytes * float64(cnt[b]) / float64(items)
			netBytes += share
			if factor > 1 {
				lanes[l].Bytes += share * (factor - 1)
			}
			pairs[execNode] |= 1 << uint(b)
		}
	}

	batches := 0
	for _, mask := range pairs {
		batches += bits.OnesCount64(mask)
	}
	m.pendingNetBytes = netBytes
	m.pendingNetSeconds = float64(batches) * m.model.NetLatencyCycles / m.model.TurboHz
}
