package graph

import (
	"fmt"
	"sort"
)

// MutOp is a mutation verb.
type MutOp uint8

const (
	// MutInsert adds an edge. Inserting an edge that is already
	// present lowers its weight when the new weight is smaller
	// (matching the builder's min-weight dedup rule) and is otherwise
	// a no-op, counted in Stats.DupInserts.
	MutInsert MutOp = iota
	// MutDelete removes an edge. Deleting an absent edge is a no-op,
	// counted in Stats.MissingDeletes.
	MutDelete
)

// Mutation is one edge insert or delete. W is ignored for deletes and
// for unweighted graphs. Self-loop mutations are dropped (counted in
// Stats.SelfLoops), mirroring the builder's DropSelfLoops.
type Mutation struct {
	Op       MutOp
	Src, Dst VID
	W        float32
}

// Batch is an ordered sequence of mutations applied atomically.
type Batch []Mutation

// Validate checks every mutation against the vertex count and, for
// weighted graphs, the (0,1] weight domain that EdgeList.Validate
// enforces. The vertex set is fixed: mutations cannot grow it.
func (b Batch) Validate(numVertices int, weighted bool) error {
	n := VID(numVertices)
	for i, mu := range b {
		if mu.Op != MutInsert && mu.Op != MutDelete {
			return fmt.Errorf("graph: mutation %d has unknown op %d", i, mu.Op)
		}
		if mu.Src >= n || mu.Dst >= n {
			return fmt.Errorf("graph: mutation %d (%d->%d) out of range [0,%d)", i, mu.Src, mu.Dst, n)
		}
		if weighted && mu.Op == MutInsert && (mu.W <= 0 || mu.W > 1) {
			return fmt.Errorf("graph: mutation %d weight %v outside (0,1]", i, mu.W)
		}
	}
	return nil
}

// MutStats counts what a batch replay did, op by op.
type MutStats struct {
	Inserted       int // inserts of absent edges
	Deleted        int // deletes of present edges
	DupInserts     int // inserts of already-present edges
	MissingDeletes int // deletes of absent edges
	SelfLoops      int // self-loop mutations dropped
}

// ApplyResult reports the net effect of a batch on the adjacency
// structure, in the vocabulary the incremental maintainers need. The
// three row sets are nested (DegChanged ⊆ StructRows ⊆ DirtyRows) but
// distinct: a delete+insert pair on the same row preserves its degree
// while changing membership, and a weight-lowering duplicate insert
// changes stored bytes without changing membership.
type ApplyResult struct {
	Stats MutStats
	// DirtyRows lists rows whose stored bytes changed in any way
	// (membership or weight), ascending.
	DirtyRows []VID
	// StructRows lists rows whose neighbor-set membership changed,
	// ascending.
	StructRows []VID
	// DegChanged lists rows whose degree changed, ascending.
	DegChanged []VID
	// AddedEdges / RemovedEdges are the net directed adjacency entries
	// added and removed, sorted by (Src, Dst). For undirected graphs
	// each logical edge contributes both orientations.
	AddedEdges   []Edge
	RemovedEdges []Edge
	// EdgesTouched is the merge work over dirty rows (old length plus
	// new length); CopiedEdges is the bulk-copy work over clean rows.
	// Both are deterministic functions of the batch and the graph, so
	// callers can charge modeled cost from them.
	EdgesTouched int64
	CopiedEdges  int64
}

// MutableCSR wraps a sorted, deduplicated CSR with batched edge
// mutation. Apply never modifies the wrapped arrays: it rebuilds into
// fresh storage and swaps, so readers holding the previous CSR()
// snapshot stay coherent — the epoch-rebuild discipline the serving
// daemon's generation-counted swap relies on.
//
// The logical graph is the normalized simple graph the harness builds:
// self-loop-free, deduplicated, sorted adjacency; undirected graphs
// hold both orientations of every edge with equal (minimum) weight.
// Apply preserves exactly that normal form: the result is byte-equal
// to BuildCSR over the post-batch edge list with Symmetrize (when
// undirected), DropSelfLoops, Dedup, and Sort.
type MutableCSR struct {
	csr      *CSR
	directed bool
	weighted bool
}

// NewMutableCSR wraps csr, which must be sorted (SortAdjacency) and
// free of duplicate neighbors — the normal form the harness and the
// engines build. The MutableCSR takes ownership of csr's evolution but
// never mutates the arrays it was given.
func NewMutableCSR(csr *CSR, directed bool) *MutableCSR {
	return &MutableCSR{csr: csr, directed: directed, weighted: csr.Weights != nil}
}

// CSR returns the current epoch's structure. The caller must not
// modify it; it remains valid (frozen) after subsequent Applies.
func (m *MutableCSR) CSR() *CSR { return m.csr }

// NumVertices returns the fixed vertex count.
func (m *MutableCSR) NumVertices() int { return m.csr.NumVertices }

// pairState tracks one directed (src,dst) pair across a batch replay:
// its presence and weight before the batch and currently.
type pairState struct {
	origPresent bool
	present     bool
	origW       float32
	w           float32
}

// rowDelta is the net change to one adjacency row, every slice sorted
// ascending by neighbor.
type rowDelta struct {
	adds  []Edge    // net-new entries (Src = row)
	dels  []VID     // net-removed neighbors
	delsW []float32 // original weights parallel to dels
	wch   []VID     // surviving neighbors whose weight changed
	wchW  []float32 // new weights parallel to wch
}

// Apply replays the batch in order against the current epoch and
// rebuilds the touched rows into a fresh CSR. It is atomic: on any
// validation error the structure is untouched. The replay, the delta
// extraction, and the rebuild are all serial and ordered, so the
// result — structure and ApplyResult alike — is a pure function of
// (previous epoch, batch), independent of run and worker count.
func (m *MutableCSR) Apply(batch Batch) (*ApplyResult, error) {
	c := m.csr
	if err := batch.Validate(c.NumVertices, m.weighted); err != nil {
		return nil, err
	}

	res := &ApplyResult{}
	state := make(map[uint64]*pairState)
	lookup := func(u, v VID) *pairState {
		k := uint64(u)<<32 | uint64(v)
		if p, ok := state[k]; ok {
			return p
		}
		p := &pairState{}
		adj := c.Neighbors(u)
		i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
		if i < len(adj) && adj[i] == v {
			p.origPresent = true
			if m.weighted {
				p.origW = c.Weights[c.Offsets[u]+int64(i)]
			}
		}
		p.present, p.w = p.origPresent, p.origW
		state[k] = p
		return p
	}

	// Replay to final outcomes. Undirected graphs apply both
	// orientations; stats count logical ops once.
	for _, mu := range batch {
		if mu.Src == mu.Dst {
			res.Stats.SelfLoops++
			continue
		}
		p := lookup(mu.Src, mu.Dst)
		switch mu.Op {
		case MutInsert:
			if p.present {
				res.Stats.DupInserts++
				if m.weighted && mu.W < p.w {
					p.w = mu.W
					if !m.directed {
						lookup(mu.Dst, mu.Src).w = mu.W
					}
				}
			} else {
				res.Stats.Inserted++
				p.present, p.w = true, mu.W
				if !m.directed {
					q := lookup(mu.Dst, mu.Src)
					q.present, q.w = true, mu.W
				}
			}
		case MutDelete:
			if !p.present {
				res.Stats.MissingDeletes++
			} else {
				res.Stats.Deleted++
				p.present = false
				if !m.directed {
					lookup(mu.Dst, mu.Src).present = false
				}
			}
		}
	}

	// Extract net deltas in deterministic (src,dst) order. The uint64
	// key sorts exactly that way.
	keys := make([]uint64, 0, len(state))
	for k, p := range state {
		if p.present != p.origPresent || (m.weighted && p.present && p.w != p.origW) {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if len(keys) == 0 {
		return res, nil
	}

	deltas := make(map[VID]*rowDelta)
	var dirty []VID
	for _, k := range keys {
		u, v := VID(k>>32), VID(k&0xffffffff)
		p := state[k]
		d := deltas[u]
		if d == nil {
			d = &rowDelta{}
			deltas[u] = d
			dirty = append(dirty, u)
		}
		switch {
		case p.present && !p.origPresent:
			d.adds = append(d.adds, Edge{Src: u, Dst: v, W: p.w})
			res.AddedEdges = append(res.AddedEdges, Edge{Src: u, Dst: v, W: p.w})
		case !p.present && p.origPresent:
			d.dels = append(d.dels, v)
			d.delsW = append(d.delsW, p.origW)
			res.RemovedEdges = append(res.RemovedEdges, Edge{Src: u, Dst: v, W: p.origW})
		default: // weight change on a surviving edge
			d.wch = append(d.wch, v)
			d.wchW = append(d.wchW, p.w)
		}
	}
	// dirty was appended in sorted-key order, so it is ascending, and
	// each rowDelta's slices are ascending by neighbor too.

	// New offsets: serial prefix sum over adjusted degrees.
	n := c.NumVertices
	nc := &CSR{
		NumVertices: n,
		Offsets:     make([]int64, n+1),
	}
	for v := 0; v < n; v++ {
		deg := c.Offsets[v+1] - c.Offsets[v]
		if d, ok := deltas[VID(v)]; ok {
			deg += int64(len(d.adds) - len(d.dels))
		}
		nc.Offsets[v+1] = nc.Offsets[v] + deg
	}
	total := nc.Offsets[n]
	nc.Adj = make([]VID, total)
	if m.weighted {
		nc.Weights = make([]float32, total)
	}

	// Rebuild: clean rows bulk-copy, dirty rows three-pointer merge of
	// the sorted old row against sorted adds/dels/weight-changes.
	for v := 0; v < n; v++ {
		oldLo, oldHi := c.Offsets[v], c.Offsets[v+1]
		p := nc.Offsets[v]
		d, ok := deltas[VID(v)]
		if !ok {
			copy(nc.Adj[p:], c.Adj[oldLo:oldHi])
			if m.weighted {
				copy(nc.Weights[p:], c.Weights[oldLo:oldHi])
			}
			res.CopiedEdges += oldHi - oldLo
			continue
		}
		res.EdgesTouched += (oldHi - oldLo) + (nc.Offsets[v+1] - nc.Offsets[v])
		res.DirtyRows = append(res.DirtyRows, VID(v))
		if len(d.adds) > 0 || len(d.dels) > 0 {
			res.StructRows = append(res.StructRows, VID(v))
			if len(d.adds) != len(d.dels) {
				res.DegChanged = append(res.DegChanged, VID(v))
			}
		}
		ai, di, wi := 0, 0, 0
		for i := oldLo; i < oldHi; i++ {
			u := c.Adj[i]
			// Emit pending adds that precede this old neighbor. An
			// add can never equal a surviving old neighbor (adds are
			// net-absent-before), so strict order suffices.
			for ai < len(d.adds) && d.adds[ai].Dst < u {
				nc.Adj[p] = d.adds[ai].Dst
				if m.weighted {
					nc.Weights[p] = d.adds[ai].W
				}
				p++
				ai++
			}
			if di < len(d.dels) && d.dels[di] == u {
				di++
				continue
			}
			nc.Adj[p] = u
			if m.weighted {
				w := c.Weights[i]
				if wi < len(d.wch) && d.wch[wi] == u {
					w = d.wchW[wi]
					wi++
				}
				nc.Weights[p] = w
			}
			p++
		}
		for ai < len(d.adds) {
			nc.Adj[p] = d.adds[ai].Dst
			if m.weighted {
				nc.Weights[p] = d.adds[ai].W
			}
			p++
			ai++
		}
		if p != nc.Offsets[v+1] {
			return nil, fmt.Errorf("graph: row %d merge wrote %d entries, want %d (corrupt overlay state)", v, p-nc.Offsets[v], nc.Offsets[v+1]-nc.Offsets[v])
		}
	}

	m.csr = nc
	return res, nil
}

// Reversed returns the batch with every mutation's endpoints swapped —
// the batch to apply to an in-adjacency (transpose) structure so it
// tracks the same logical updates as the out-adjacency.
func (b Batch) Reversed() Batch {
	r := make(Batch, len(b))
	for i, mu := range b {
		r[i] = Mutation{Op: mu.Op, Src: mu.Dst, Dst: mu.Src, W: mu.W}
	}
	return r
}
