package parallel

// GrainPolicy selects how a machine resolves region grains. The fixed
// policy keeps each engine's hand-picked per-region grain; the
// adaptive policy derives the grain from the live region size and the
// consumer count, so the chunk count tracks the number of lanes
// instead of the number of items.
//
// The distinction matters most for frontier-driven kernels: a BFS
// level over a few hundred vertices at a fixed grain of 64 yields a
// handful of chunks — nothing for 32 threads to steal, so every steal
// policy degenerates to static on exactly the regions where load is
// most skewed. The adaptive policy targets AdaptiveChunksPerLane
// chunks per consumer whatever the frontier size, keeping the steal
// (and two-level NUMA) disciplines live at high thread counts.
type GrainPolicy int

const (
	// GrainFixed resolves every region to its engine-chosen grain.
	GrainFixed GrainPolicy = iota
	// GrainAdaptive resolves region grains with AdaptiveGrain: chunk
	// count proportional to the consumer count, not the item count.
	GrainAdaptive
)

// AdaptiveChunksPerLane is the chunk-count target per consumer lane of
// the adaptive grain policy. Eight chunks per lane gives thieves a
// meaningful window (a victim's deque holds several steals' worth)
// while keeping per-chunk scheduling overhead amortized; it matches
// the granularity-control guidance of the Cilk/PBBS lineage
// ("Theoretically Efficient Parallel Graph Algorithms" uses the same
// order of magnitude for its granularity constants).
const AdaptiveChunksPerLane = 8

// AdaptiveGrain returns the frontier-proportional grain for a region
// of n items consumed by `consumers` lanes: the smallest grain, in
// multiples of `align`, that yields at most
// consumers*AdaptiveChunksPerLane chunks. It is a pure function of its
// arguments — callers that pass the *virtual* lane count (never the
// real worker count) keep chunk partitions, and with them outputs and
// modeled durations, schedule-independent.
//
// align carries the caller's in-region aliasing constraint: regions
// that clear bitmap word ranges chunk-locally (Bitmap.ClearRange) need
// 64-aligned chunk boundaries, so they pass 64; regions without shared
// words pass 1. Alignment never rounds the chunk count up, only the
// grain, so the at-most-target-chunks contract holds for any align.
func AdaptiveGrain(n, consumers, align int) int {
	if align < 1 {
		align = 1
	}
	if n <= 0 {
		return align
	}
	if consumers < 1 {
		consumers = 1
	}
	target := consumers * AdaptiveChunksPerLane
	g := (n + target - 1) / target
	return (g + align - 1) / align * align
}
