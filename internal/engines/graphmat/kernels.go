package graphmat

import (
	"math"
	"sync/atomic"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/parallel"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// spmvRows sweeps the compressed rows of mat in parallel, invoking
// body for each row with the real worker ID (for contention-free
// counters). Row-header costs are charged for every stored row each
// sweep — the SpMV character that makes GraphMat's per-iteration cost
// proportional to the stored matrix, not the active frontier. Each row
// writes only row-owned state, so the sweeps are deterministic.
func (inst *Instance) spmvRows(mat *dcsr, body func(ri, worker int, w *simmachine.W)) {
	g := inst.m.Grain(len(mat.rows), 256, 1)
	inst.m.ParallelForChunks(len(mat.rows), g, simmachine.Dynamic, func(lo, hi, chunk, worker int, w *simmachine.W) {
		for ri := lo; ri < hi; ri++ {
			body(ri, worker, w)
		}
		w.Charge(costRowHeader.Scale(float64(hi - lo)))
	})
}

// denseSweep charges one pass over a length-n dense vector.
func (inst *Instance) denseSweep(mult float64) {
	g := inst.m.Grain(inst.n, 8192, 1)
	inst.m.ParallelFor(inst.n, g, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
		w.Charge(costVecEntry.Scale(mult * float64(hi-lo)))
	})
}

// BFS implements engines.Instance: repeated Boolean-semiring SpMV.
// Each level sweeps all unvisited rows and reduces over all their
// in-edges (no early exit — the semiring REDUCE visits every
// message), which is why GraphMat's BFS is orders of magnitude
// slower than direction-optimized traversal on small graphs.
func (inst *Instance) BFS(root graph.VID) (*engines.BFSResult, error) {
	inst.ensureBuilt()
	n := inst.n
	res := &engines.BFSResult{
		Root:   root,
		Parent: make([]int64, n),
		Depth:  make([]int64, n),
	}
	for i := range res.Parent {
		res.Parent[i] = engines.NoParent
		res.Depth[i] = -1
	}
	res.Parent[root] = int64(root)
	res.Depth[root] = 0

	// Frontier sparse vector as a dense mask: one bit per vertex
	// (parallel.Bitmap) instead of the byte-per-vertex []bool the
	// port used before — 8x less mask traffic per sweep, same
	// semantics (the equivalence wall in graphmat_test.go holds the
	// bitmap kernels to a serial []bool reference).
	active := parallel.NewBitmap(n)
	nextActive := parallel.NewBitmap(n)
	active.Set(int(root))
	var examined int64

	workers := inst.m.Workers()
	for level := int64(0); ; level++ {
		exa := parallel.NewCounter(workers)
		fnd := parallel.NewCounter(workers)
		inst.spmvRows(inst.inMat, func(ri, worker int, w *simmachine.W) {
			v := inst.inMat.rows[ri]
			lo, hi := inst.inMat.ptr[ri], inst.inMat.ptr[ri+1]
			scanned := hi - lo
			// GraphMat 1.0 evaluates the semiring over every
			// stored nonzero each sweep; the full scan is charged
			// whether or not this row can still change.
			exa.Add(worker, scanned)
			w.Charge(costScanNZ.Scale(float64(scanned)))
			if res.Parent[v] != engines.NoParent {
				return
			}
			var parent int64 = engines.NoParent
			for i := lo; i < hi; i++ {
				u := inst.inMat.cols[i]
				if active.Test(int(u)) {
					// REDUCE keeps the smallest parent id; the
					// sweep continues (semiring reduce).
					if parent == engines.NoParent || int64(u) < parent {
						parent = int64(u)
					}
				}
			}
			if parent != engines.NoParent {
				res.Parent[v] = parent
				res.Depth[v] = level + 1
				nextActive.Set(int(v))
				fnd.Add(worker, 1)
				w.Charge(costProcessNZ)
			}
		})
		examined += exa.Sum()
		// APPLY plus the sparse-vector rebuild and mask updates
		// GraphMat performs between SpMV calls.
		inst.denseSweep(3)
		if fnd.Sum() == 0 {
			break
		}
		active, nextActive = nextActive, active
		nextActive.Clear()
	}
	res.EdgesExamined = examined
	return res, nil
}

// SSSP implements engines.Instance: min-plus semiring SpMV iterated
// until no distance changes. Distances are float32 (GraphMat's single
// precision vertex properties).
func (inst *Instance) SSSP(root graph.VID) (*engines.SSSPResult, error) {
	inst.ensureBuilt()
	if !inst.weighted {
		return nil, engines.ErrUnsupported
	}
	n := inst.n
	res := &engines.SSSPResult{
		Root:   root,
		Dist:   make([]float64, n),
		Parent: make([]int64, n),
	}
	// Synchronous min-plus semantics: each sweep reads the previous
	// iteration's vector (cur) and writes the next (nxt).
	cur := make([]float32, n)
	nxt := make([]float32, n)
	inf := float32(math.Inf(1))
	for i := range cur {
		cur[i] = inf
		res.Parent[i] = engines.NoParent
	}
	cur[root] = 0
	res.Parent[root] = int64(root)

	// Same bit-per-vertex masks as BFS (see the comment there).
	active := parallel.NewBitmap(n)
	nextActive := parallel.NewBitmap(n)
	active.Set(int(root))
	relax := parallel.NewCounter(inst.m.Workers())

	for {
		copy(nxt, cur)
		chg := parallel.NewCounter(inst.m.Workers())
		inst.spmvRows(inst.inMat, func(ri, worker int, w *simmachine.W) {
			v := inst.inMat.rows[ri]
			lo, hi := inst.inMat.ptr[ri], inst.inMat.ptr[ri+1]
			best := cur[v]
			var bestParent int64 = -2 // sentinel: unchanged
			var processed int64
			for i := lo; i < hi; i++ {
				u := inst.inMat.cols[i]
				if !active.Test(int(u)) {
					continue
				}
				processed++
				if nd := cur[u] + inst.inMat.vals[i]; nd < best {
					best = nd
					bestParent = int64(u)
				}
			}
			scanned := hi - lo
			relax.Add(worker, processed)
			w.Charge(costScanNZ.Scale(float64(scanned)))
			w.Charge(costProcessNZ.Scale(float64(processed)))
			if bestParent != -2 {
				nxt[v] = best
				res.Parent[v] = bestParent
				nextActive.Set(int(v))
				chg.Add(worker, 1)
			}
		})
		inst.denseSweep(2) // copy + apply
		if chg.Sum() == 0 {
			break
		}
		cur, nxt = nxt, cur
		active, nextActive = nextActive, active
		nextActive.Clear()
	}
	for v := 0; v < n; v++ {
		res.Dist[v] = float64(cur[v])
	}
	res.Relaxations = relax.Sum()
	return res, nil
}

// PageRank implements engines.Instance. GraphMat's semantics from the
// paper: float32 ranks, iterating until no vertex's rank changes at
// all (∞-norm exactly zero) — there is no computation of the L1
// difference, so the homogenized ε plays no role here.
func (inst *Instance) PageRank(opts engines.PROpts) (*engines.PRResult, error) {
	inst.ensureBuilt()
	opts = opts.Normalize()
	n := inst.n
	if n == 0 {
		return &engines.PRResult{}, nil
	}
	rank := make([]float32, n)
	next := make([]float32, n)
	contrib := make([]float32, n)
	inv := float32(1.0 / float64(n))
	for i := range rank {
		rank[i] = inv
	}
	res := &engines.PRResult{}
	// GraphMat iterates beyond where L1-stopping engines halt; give
	// it headroom above the homogenized cap, as the paper observed.
	maxIter := opts.MaxIter * 2
	gRed := inst.m.Grain(n, 4096, 1)
	gNorm := inst.m.Grain(n, 8192, 1)
	for iter := 1; iter <= maxIter; iter++ {
		dr := parallel.NewReducer[float64](parallel.NumChunks(n, gRed))
		inst.m.ParallelForChunks(n, gRed, simmachine.Dynamic, func(lo, hi, chunk, worker int, w *simmachine.W) {
			local := 0.0
			for v := lo; v < hi; v++ {
				if inst.outDeg[v] == 0 {
					local += float64(rank[v])
					contrib[v] = 0
					continue
				}
				contrib[v] = rank[v] / float32(inst.outDeg[v])
			}
			*dr.At(chunk) = local
			w.Charge(costVecEntry.Scale(float64(hi - lo)))
		})
		dangling := parallel.SumFloat64(dr)
		base := float32((1-opts.Damping)/float64(n) + opts.Damping*dangling/float64(n))

		for i := range next {
			next[i] = base
		}
		var changed int64
		inst.spmvRows(inst.inMat, func(ri, worker int, w *simmachine.W) {
			v := inst.inMat.rows[ri]
			lo, hi := inst.inMat.ptr[ri], inst.inMat.ptr[ri+1]
			var sum float32
			for i := lo; i < hi; i++ {
				sum += contrib[inst.inMat.cols[i]]
			}
			nz := hi - lo
			w.Charge(costScanNZ.Scale(float64(nz)))
			w.Charge(costProcessNZ.Scale(float64(nz)))
			next[v] = base + float32(opts.Damping)*sum
		})
		// "No vertex changes rank": the paper notes GraphMat's stop
		// is effectively an ∞-norm below machine epsilon. Single
		// precision sustains sub-epsilon limit cycles forever, so
		// the faithful terminating form is ‖Δ‖∞ < ε₃₂·‖rank‖∞ with
		// ε₃₂ = 2⁻²³ ≈ 1.19e-7 — far stricter than the L1 criterion
		// of the other systems, hence the extra iterations in Fig. 4.
		var maxDeltaBits, maxRankBits uint64
		inst.m.ParallelFor(n, gNorm, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
			var localDelta, localRank float32
			for v := lo; v < hi; v++ {
				d := next[v] - rank[v]
				if d < 0 {
					d = -d
				}
				if d > localDelta {
					localDelta = d
				}
				r := next[v]
				if r < 0 {
					r = -r
				}
				if r > localRank {
					localRank = r
				}
			}
			atomicMaxFloat64(&maxDeltaBits, float64(localDelta))
			atomicMaxFloat64(&maxRankBits, float64(localRank))
			w.Charge(costVecEntry.Scale(float64(hi - lo)))
		})
		maxDelta := math.Float64frombits(atomic.LoadUint64(&maxDeltaBits))
		maxRank := math.Float64frombits(atomic.LoadUint64(&maxRankBits))
		if maxDelta > 1.1920929e-7*maxRank {
			changed = 1
		}

		rank, next = next, rank
		res.Iterations = iter
		if changed == 0 {
			break
		}
	}
	res.Rank = make([]float64, n)
	for v := 0; v < n; v++ {
		res.Rank[v] = float64(rank[v])
	}
	return res, nil
}

// atomicMaxFloat64 raises the non-negative float64 stored in bits to
// v if v is larger. Non-negative float64 bit patterns order like the
// values themselves, so a plain integer compare suffices.
func atomicMaxFloat64(bits *uint64, v float64) {
	nv := math.Float64bits(v)
	for {
		old := atomic.LoadUint64(bits)
		if old >= nv {
			return
		}
		if atomic.CompareAndSwapUint64(bits, old, nv) {
			return
		}
	}
}
