package graph_test

// External test package: the ratio check generates its input with the
// kronecker package, which imports graph.

import (
	"testing"

	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/kronecker"
)

// TestCompressionRatioKron16 pins the headline acceptance number: on
// kron-16 (the paper's mid-size Kronecker input) delta+varint encoding
// must shrink the adjacency bytes at least 2x versus the raw 4 B/edge
// CSR. `make compress-ratio` runs this test verbosely as the CI smoke
// step that prints both sizes.
func TestCompressionRatioKron16(t *testing.T) {
	if testing.Short() {
		t.Skip("kron-16 generation in -short mode")
	}
	el := kronecker.Generate(kronecker.Params{Scale: 16, Seed: 42})
	c := graph.BuildCSR(el, graph.BuildOptions{
		Symmetrize: true, DropSelfLoops: true, Dedup: true, Sort: true,
	})
	cc := graph.CompressCSR(c, 0)

	raw := 4 * c.NumEdges()
	comp := cc.TotalBytes()
	ratio := float64(raw) / float64(comp)
	t.Logf("kron-16: raw adjacency %d bytes, compressed %d bytes, ratio %.2fx",
		raw, comp, ratio)
	if ratio < 2 {
		t.Fatalf("compression ratio %.2fx < 2x on kron-16 (raw %d B, compressed %d B)",
			ratio, raw, comp)
	}
}
