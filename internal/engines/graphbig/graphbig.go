package graphbig

import (
	"math"
	"sync/atomic"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/parallel"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// Cost constants: property-graph traversal pays pointer chasing and
// per-vertex lock traffic on every step.
var (
	costLoadEdge  = simmachine.Cost{Cycles: 34, Bytes: 48}
	costBFSEdge   = simmachine.Cost{Cycles: 30, Bytes: 38, Atomics: 1}
	costVisit     = simmachine.Cost{Cycles: 12, Bytes: 20, Atomics: 3}
	costSSSPEdge  = simmachine.Cost{Cycles: 34, Bytes: 44, Atomics: 1}
	costPREdge    = simmachine.Cost{Cycles: 18, Bytes: 24, Atomics: 1}
	costPRVertex  = simmachine.Cost{Cycles: 12, Bytes: 28}
	costCDLPEdge  = simmachine.Cost{Cycles: 30, Bytes: 30}
	costLCCCheck  = simmachine.Cost{Cycles: 14, Bytes: 18}
	costWCCEdge   = simmachine.Cost{Cycles: 12, Bytes: 22}
	costPropTouch = simmachine.Cost{Cycles: 6, Bytes: 12}
)

// Engine is the GraphBIG analogue.
type Engine struct {
	// SyncSSSP selects the synchronous round-barrier relaxation
	// variant: each Bellman-Ford round gathers candidate updates
	// against a distance snapshot and applies them in chunk order, so
	// parents, relaxation counts, frontier composition, and modeled
	// durations are schedule-independent. Off by default — System G's
	// chaotic parallel relaxation is part of its character.
	SyncSSSP bool
}

// New returns the engine.
func New() *Engine { return &Engine{} }

// SetSyncSSSP implements engines.SyncSSSPSetter.
func (e *Engine) SetSyncSSSP(on bool) { e.SyncSSSP = on }

// Name implements engines.Engine.
func (e *Engine) Name() string { return "GraphBIG" }

// SeparateConstruction implements engines.Engine: GraphBIG reads the
// file and builds the graph simultaneously.
func (e *Engine) SeparateConstruction() bool { return false }

// Has implements engines.Engine.
func (e *Engine) Has(alg engines.Algorithm) bool {
	switch alg {
	case engines.BFS, engines.SSSP, engines.PageRank,
		engines.CDLP, engines.LCC, engines.WCC:
		return true
	}
	return false
}

// vertexProp is the per-vertex property object: adjacency plus the
// mutable algorithm properties System G attaches to vertices.
type vertexProp struct {
	out []graph.VID
	in  []graph.VID // nil when the graph is undirected (out is symmetric)
	w   []float32   // parallel to out; nil if unweighted
}

// Instance is a loaded GraphBIG property graph.
type Instance struct {
	eng      *Engine
	m        *simmachine.Machine
	vertices []vertexProp
	directed bool
	weighted bool
	n        int
}

// Load implements engines.Engine: reading and construction are one
// phase, charged here.
func (e *Engine) Load(el *graph.EdgeList, m *simmachine.Machine) (engines.Instance, error) {
	if err := el.Validate(); err != nil {
		return nil, err
	}
	// Homogenized simple graph, then re-materialized as per-vertex
	// property objects.
	csr := graph.BuildCSR(el, graph.BuildOptions{
		Symmetrize:    !el.Directed,
		DropSelfLoops: true,
		Dedup:         true,
		Sort:          true,
	})
	n := csr.NumVertices
	inst := &Instance{eng: e, m: m, directed: el.Directed, weighted: el.Weighted, n: n}
	inst.vertices = make([]vertexProp, n)
	for v := 0; v < n; v++ {
		inst.vertices[v].out = csr.Neighbors(graph.VID(v))
		if el.Weighted {
			inst.vertices[v].w = csr.NeighborWeights(graph.VID(v))
		}
	}
	if el.Directed {
		tr := graph.Transpose(csr, 0)
		tr.SortAdjacency()
		for v := 0; v < n; v++ {
			inst.vertices[v].in = tr.Neighbors(graph.VID(v))
		}
	}
	// Charge the combined read+build pass.
	m.FileRead(int64(len(el.Edges))*16, true)
	m.ParallelFor(len(el.Edges), 2048, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
		w.Charge(costLoadEdge.Scale(float64(hi - lo)))
	})
	return inst, nil
}

// BuildStructure implements engines.Instance: a no-op, construction
// happened during Load.
func (inst *Instance) BuildStructure() {}

// inNeighbors returns the in-adjacency (equal to out for undirected).
func (inst *Instance) inNeighbors(v graph.VID) []graph.VID {
	if !inst.directed {
		return inst.vertices[v].out
	}
	return inst.vertices[v].in
}

// BFS implements engines.Instance: plain level-synchronous traversal
// with per-vertex visited atomics.
func (inst *Instance) BFS(root graph.VID) (*engines.BFSResult, error) {
	n := inst.n
	res := &engines.BFSResult{
		Root:   root,
		Parent: make([]int64, n),
		Depth:  make([]int64, n),
	}
	for i := range res.Parent {
		res.Parent[i] = engines.NoParent
		res.Depth[i] = -1
	}
	res.Parent[root] = int64(root)
	res.Depth[root] = 0

	queue := parallel.NewChunkQueue[parallel.Claim]()
	frontier := []graph.VID{root}
	level := int64(0)
	var examined int64
	const grain = 32 // GrainFixed base; adaptive resolves per level
	for len(frontier) > 0 {
		g := inst.m.Grain(len(frontier), grain, 1)
		queue.Reset(parallel.NumChunks(len(frontier), g))
		exa := parallel.NewCounter(inst.m.Workers())
		inst.m.ParallelForChunks(len(frontier), g, simmachine.Dynamic, func(lo, hi, chunk, worker int, w *simmachine.W) {
			var local []parallel.Claim
			var edges, visits int64
			for _, v := range frontier[lo:hi] {
				for _, u := range inst.vertices[v].out {
					edges++
					// Property-lock acquisitions hit every sighting of
					// a vertex not finalized before this level — a set
					// fixed by earlier levels, so the charge is
					// schedule-independent.
					if d := atomic.LoadInt64(&res.Depth[u]); d != -1 && d != level+1 {
						continue
					}
					visits++
					if parallel.LowerMinInt64(&res.Parent[u], int64(v), engines.NoParent) {
						atomic.StoreInt64(&res.Depth[u], level+1)
						local = append(local, parallel.Claim{V: u, By: v})
					}
				}
			}
			queue.Put(chunk, local)
			exa.Add(worker, edges)
			w.Charge(costBFSEdge.Scale(float64(edges)))
			w.Charge(costVisit.Scale(float64(visits)))
			w.Cycles(float64(hi-lo) * 4) // frontier queue traffic
		})
		examined += exa.Sum()
		// Sort-free canonical frontier: drain tentative claims in chunk
		// order, keeping only the final write-min winners.
		frontier = parallel.DrainChunkQueue(queue, frontier[:0], func(c parallel.Claim) (graph.VID, bool) {
			return c.V, res.Parent[c.V] == int64(c.By)
		})
		level++
	}
	res.EdgesExamined = examined
	return res, nil
}

// SSSP implements engines.Instance: frontier-driven Bellman-Ford
// relaxation (System G's "chaotic" parallel relaxation) with CAS-min
// distances.
func (inst *Instance) SSSP(root graph.VID) (*engines.SSSPResult, error) {
	if !inst.weighted {
		return nil, engines.ErrUnsupported
	}
	if inst.eng.SyncSSSP {
		return inst.ssspSync(root)
	}
	n := inst.n
	res := &engines.SSSPResult{
		Root:   root,
		Dist:   make([]float64, n),
		Parent: make([]int64, n),
	}
	dist := make([]uint64, n)
	inf := math.Float64bits(math.Inf(1))
	for i := range dist {
		dist[i] = inf
		res.Parent[i] = engines.NoParent
	}
	dist[root] = math.Float64bits(0)
	res.Parent[root] = int64(root)

	queue := parallel.NewQueue[graph.VID](n)
	active := []graph.VID{root}
	inActive := make([]int32, n)
	relax := parallel.NewCounter(inst.m.Workers())
	for len(active) > 0 {
		queue.Reset()
		inst.m.ParallelForChunks(len(active), inst.m.Grain(len(active), 32, 1), simmachine.Dynamic, func(lo, hi, chunk, worker int, w *simmachine.W) {
			var local []graph.VID
			var edges int64
			for _, v := range active[lo:hi] {
				atomic.StoreInt32(&inActive[v], 0)
				dv := math.Float64frombits(atomic.LoadUint64(&dist[v]))
				vp := &inst.vertices[v]
				for i, u := range vp.out {
					edges++
					nd := dv + float64(vp.w[i])
					if parallel.WriteMinFloat64Bits(&dist[u], nd) {
						atomic.StoreInt64(&res.Parent[u], int64(v))
						// The inActive guard bounds the queue: each
						// vertex enters the next frontier once per pass.
						if atomic.CompareAndSwapInt32(&inActive[u], 0, 1) {
							local = append(local, u)
						}
					}
				}
			}
			queue.PushBatch(local)
			relax.Add(worker, edges)
			w.Charge(costSSSPEdge.Scale(float64(edges)))
			w.Charge(costPropTouch.Scale(float64(hi - lo)))
		})
		// Chaotic relaxation: the active-set composition is
		// schedule-dependent by design (System G's character); the
		// fixed-point distances are not.
		active = append(active[:0], queue.Slice()...)
	}
	for v := 0; v < n; v++ {
		res.Dist[v] = math.Float64frombits(dist[v])
	}
	res.Relaxations = relax.Sum()
	return res, nil
}
