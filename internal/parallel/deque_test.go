package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDequeOwnerLIFO(t *testing.T) {
	d := NewDeque(8)
	for i := int64(0); i < 5; i++ {
		if !d.PushBottom(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if d.Len() != 5 {
		t.Fatalf("len = %d, want 5", d.Len())
	}
	for want := int64(4); want >= 0; want-- {
		v, ok := d.PopBottom()
		if !ok || v != want {
			t.Fatalf("pop = (%d, %v), want (%d, true)", v, ok, want)
		}
	}
	if _, ok := d.PopBottom(); ok {
		t.Fatal("pop on empty deque succeeded")
	}
}

func TestDequeStealFIFO(t *testing.T) {
	d := NewDeque(8)
	for i := int64(0); i < 4; i++ {
		d.PushBottom(i)
	}
	for want := int64(0); want < 4; want++ {
		v, ok := d.Steal()
		if !ok || v != want {
			t.Fatalf("steal = (%d, %v), want (%d, true)", v, ok, want)
		}
	}
	if _, ok := d.Steal(); ok {
		t.Fatal("steal on empty deque succeeded")
	}
}

func TestDequeFullPushRejected(t *testing.T) {
	d := NewDeque(4)
	for i := int64(0); i < 4; i++ {
		if !d.PushBottom(i) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if d.PushBottom(99) {
		t.Fatal("push beyond capacity accepted")
	}
	d.Steal()
	if !d.PushBottom(99) {
		t.Fatal("push after steal freed a slot failed")
	}
}

// TestDequeOwnerVsThieves hammers one owner popping against many
// thieves stealing: every pushed value must be taken exactly once.
// Run under -race this is the deque's memory-model wall.
func TestDequeOwnerVsThieves(t *testing.T) {
	const items = 20000
	const thieves = 4
	d := NewDeque(items)
	taken := make([]int32, items)
	var total atomic.Int64

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v, ok := d.Steal(); ok {
					atomic.AddInt32(&taken[v], 1)
					total.Add(1)
					continue
				}
				select {
				case <-stop:
					return
				default:
					runtime.Gosched()
				}
			}
		}()
	}
	// Owner: interleave pushes and pops.
	for i := 0; i < items; i++ {
		for !d.PushBottom(int64(i)) {
			runtime.Gosched()
		}
		if i%3 == 0 {
			if v, ok := d.PopBottom(); ok {
				atomic.AddInt32(&taken[v], 1)
				total.Add(1)
			}
		}
	}
	for {
		v, ok := d.PopBottom()
		if !ok {
			if total.Load() == items {
				break
			}
			runtime.Gosched()
			continue
		}
		atomic.AddInt32(&taken[v], 1)
		total.Add(1)
	}
	close(stop)
	wg.Wait()
	for i, c := range taken {
		if c != 1 {
			t.Fatalf("item %d taken %d times", i, c)
		}
	}
}

// TestStealSchedDoesNotLeakGoroutines is the pool leak wall run
// against the work-stealing scheduler: oversubscribed Steal regions on
// a small pool must not strand worker goroutines.
func TestStealSchedDoesNotLeakGoroutines(t *testing.T) {
	p := NewPool(4)
	before := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		seen := make([]int32, 4096)
		For(p, 16, 4096, 16, Steal, func(lo, hi, chunk, worker int) {
			for j := lo; j < hi; j++ {
				atomic.AddInt32(&seen[j], 1)
			}
		})
		for j, c := range seen {
			if c != 1 {
				t.Fatalf("region %d: index %d ran %d times", i, j, c)
			}
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+8 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d under Steal: pool leaks workers",
		before, runtime.NumGoroutine())
}

// TestStealSeedStable pins the per-region seed derivation: the real
// steal schedule must be reproducible for a given region shape.
func TestStealSeedStable(t *testing.T) {
	if StealSeed(100, 4) != StealSeed(100, 4) {
		t.Fatal("stealSeed is not a pure function")
	}
	if StealSeed(100, 4) == StealSeed(100, 8) {
		t.Fatal("stealSeed ignores the worker count")
	}
	if StealSeed(100, 4) == StealSeed(101, 4) {
		t.Fatal("stealSeed ignores the chunk count")
	}
}
