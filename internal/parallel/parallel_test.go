package parallel

import (
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunExecutesAllWorkers(t *testing.T) {
	p := NewPool(8)
	for _, workers := range []int{1, 2, 3, 8, 17} {
		seen := make([]int32, workers)
		p.Run(workers, func(w int) {
			atomic.AddInt32(&seen[w], 1)
		})
		for w, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: worker %d ran %d times", workers, w, c)
			}
		}
	}
}

func TestRunReusesWorkers(t *testing.T) {
	p := NewPool(4)
	// Warm the pool, then issue many regions; the idle set should
	// absorb the workers between regions (observable only as "does not
	// explode"; correctness is what we assert).
	for i := 0; i < 200; i++ {
		var n atomic.Int64
		p.Run(4, func(w int) { n.Add(1) })
		if n.Load() != 4 {
			t.Fatalf("region %d ran %d workers", i, n.Load())
		}
	}
}

func TestForCoversAllIndices(t *testing.T) {
	p := NewPool(8)
	for _, sched := range []Sched{Static, Dynamic, Steal, NUMA} {
		for _, workers := range []int{1, 3, 8} {
			seen := make([]int32, 1000)
			For(p, workers, 1000, 16, sched, func(lo, hi, chunk, worker int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("sched=%v workers=%d: index %d ran %d times", sched, workers, i, c)
				}
			}
		}
	}
}

func TestForChunkIndicesStable(t *testing.T) {
	p := NewPool(8)
	// Chunk c must always cover [c*grain, min(n,(c+1)*grain)) whatever
	// the schedule or worker count.
	n, grain := 997, 13
	for _, workers := range []int{1, 2, 7} {
		for _, sched := range []Sched{Static, Dynamic, Steal, NUMA} {
			For(p, workers, n, grain, sched, func(lo, hi, chunk, worker int) {
				if lo != chunk*grain {
					t.Errorf("chunk %d starts at %d, want %d", chunk, lo, chunk*grain)
				}
				want := lo + grain
				if want > n {
					want = n
				}
				if hi != want {
					t.Errorf("chunk %d ends at %d, want %d", chunk, hi, want)
				}
			})
		}
	}
}

func TestForZeroAndTiny(t *testing.T) {
	p := NewPool(2)
	ran := false
	For(p, 4, 0, 16, Dynamic, func(lo, hi, chunk, worker int) { ran = true })
	if ran {
		t.Error("body ran for n=0")
	}
	count := 0
	For(p, 8, 1, 1024, Static, func(lo, hi, chunk, worker int) { count++ })
	if count != 1 {
		t.Errorf("n=1 ran %d chunks", count)
	}
}

func TestReducerDeterministicFloatSum(t *testing.T) {
	p := NewPool(8)
	n, grain := 5000, 32
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Sqrt(float64(i) + 0.1)
	}
	run := func(workers int, sched Sched) float64 {
		r := NewReducer[float64](NumChunks(n, grain))
		For(p, workers, n, grain, sched, func(lo, hi, chunk, worker int) {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += vals[i]
			}
			*r.At(chunk) += s
		})
		return SumFloat64(r)
	}
	want := run(1, Static)
	for _, workers := range []int{1, 2, 4, 9} {
		for _, sched := range []Sched{Static, Dynamic, Steal, NUMA} {
			if got := run(workers, sched); got != want {
				t.Fatalf("workers=%d sched=%v: sum %x differs from %x",
					workers, sched, math.Float64bits(got), math.Float64bits(want))
			}
		}
	}
}

func TestCounterSums(t *testing.T) {
	p := NewPool(8)
	c := NewCounter(4)
	For(p, 4, 1000, 8, Dynamic, func(lo, hi, chunk, worker int) {
		c.Add(worker, int64(hi-lo))
	})
	if got := c.Sum(); got != 1000 {
		t.Errorf("counter sum = %d, want 1000", got)
	}
}

func TestWriteMinInt64(t *testing.T) {
	const empty = int64(-1)
	p := NewPool(8)
	slot := empty
	firsts := NewCounter(8)
	For(p, 8, 1000, 1, Dynamic, func(lo, hi, chunk, worker int) {
		if WriteMinInt64(&slot, int64(lo+5), empty) {
			firsts.Add(worker, 1)
		}
	})
	if slot != 5 {
		t.Errorf("min = %d, want 5", slot)
	}
	if got := firsts.Sum(); got != 1 {
		t.Errorf("%d callers observed first-write, want exactly 1", got)
	}
}

func TestWriteMinFloat64Bits(t *testing.T) {
	p := NewPool(8)
	bits := math.Float64bits(math.Inf(1))
	For(p, 8, 512, 1, Dynamic, func(lo, hi, chunk, worker int) {
		WriteMinFloat64Bits(&bits, float64(lo)+0.5)
	})
	if got := math.Float64frombits(bits); got != 0.5 {
		t.Errorf("min = %v, want 0.5", got)
	}
}

func TestQueueCollectsAll(t *testing.T) {
	p := NewPool(8)
	q := NewQueue[int32](10000)
	For(p, 8, 10000, 64, Dynamic, func(lo, hi, chunk, worker int) {
		local := make([]int32, 0, hi-lo)
		for i := lo; i < hi; i++ {
			local = append(local, int32(i))
		}
		q.PushBatch(local)
	})
	if q.Len() != 10000 {
		t.Fatalf("queue holds %d items, want 10000", q.Len())
	}
	s := SortedQueueSlice(q)
	for i, v := range s {
		if v != int32(i) {
			t.Fatalf("sorted[%d] = %d", i, v)
		}
	}
	q.Reset()
	if q.Len() != 0 {
		t.Error("reset did not empty the queue")
	}
	q.Push(7)
	if q.Len() != 1 || q.Slice()[0] != 7 {
		t.Error("push after reset failed")
	}
}

func TestOversubscribedRunsDoNotLeakGoroutines(t *testing.T) {
	// Workers beyond the idle capacity must exit after their task, not
	// block forever on an unreferenced channel.
	p := NewPool(4)
	before := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		var n atomic.Int64
		p.Run(16, func(w int) { n.Add(1) })
		if n.Load() != 16 {
			t.Fatalf("region %d ran %d workers", i, n.Load())
		}
	}
	// Let exiting workers unwind.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+8 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d: pool leaks non-parked workers",
		before, runtime.NumGoroutine())
}

func TestDefaultPoolShared(t *testing.T) {
	if Default() != Default() {
		t.Error("Default returned distinct pools")
	}
	var n atomic.Int64
	Default().Run(3, func(w int) { n.Add(1) })
	if n.Load() != 3 {
		t.Errorf("default pool ran %d workers", n.Load())
	}
}

func BenchmarkForOverhead(b *testing.B) {
	p := NewPool(8)
	sink := make([]float64, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		For(p, 4, 1024, 64, Dynamic, func(lo, hi, chunk, worker int) {
			for j := lo; j < hi; j++ {
				sink[j] += 1
			}
		})
	}
}
