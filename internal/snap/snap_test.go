package snap

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/xrand"
)

func TestReadBasic(t *testing.T) {
	const in = `# comment line
# Nodes: 4 Edges: 3
0	1
1	2
0 3
`
	res, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	el := res.Graph
	if el.NumVertices != 4 {
		t.Errorf("vertices = %d, want 4", el.NumVertices)
	}
	if len(el.Edges) != 3 {
		t.Errorf("edges = %d, want 3", len(el.Edges))
	}
	if el.Weighted {
		t.Error("unweighted file read as weighted")
	}
}

func TestReadWeighted(t *testing.T) {
	const in = "0 1 0.5\n1 2 0.25\n"
	res, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Graph.Weighted {
		t.Fatal("weighted file read as unweighted")
	}
	if res.Graph.Edges[0].W != 0.5 {
		t.Errorf("weight = %v, want 0.5", res.Graph.Edges[0].W)
	}
}

func TestReadDensifiesSparseIDs(t *testing.T) {
	const in = "100 900\n900 42\n"
	res, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumVertices != 3 {
		t.Errorf("vertices = %d, want 3", res.Graph.NumVertices)
	}
	// Mapping preserved.
	want := map[graph.VID]int64{0: 100, 1: 900, 2: 42}
	for dense, orig := range want {
		if res.OrigID[dense] != orig {
			t.Errorf("OrigID[%d] = %d, want %d", dense, res.OrigID[dense], orig)
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"one field":            "5\n",
		"bad src":              "x 1\n",
		"bad dst":              "1 x\n",
		"bad weight":           "1 2 zap\n",
		"negative":             "-1 2\n",
		"inconsistent weights": "0 1 0.5\n1 2\n",
		"too many fields":      "1 2 3 4\n",
		"empty":                "# nothing\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: error expected", name)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	el := &graph.EdgeList{
		NumVertices: 5,
		Edges:       []graph.Edge{{Src: 0, Dst: 1, W: 0.5}, {Src: 1, Dst: 2, W: 0.25}, {Src: 4, Dst: 0, W: 1}},
		Weighted:    true,
		Directed:    true,
	}
	var buf bytes.Buffer
	if err := Write(&buf, el, "test"); err != nil {
		t.Fatal(err)
	}
	res, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Graph
	if len(got.Edges) != len(el.Edges) {
		t.Fatalf("edges = %d, want %d", len(got.Edges), len(el.Edges))
	}
	for i := range el.Edges {
		// IDs appear in first-seen order: 0,1,2,4 -> 0,1,2,3
		if got.Edges[i].W != el.Edges[i].W {
			t.Errorf("edge %d weight %v, want %v", i, got.Edges[i].W, el.Edges[i].W)
		}
	}
	if got.NumVertices != 4 { // vertex 3 has no edges, so it vanishes
		t.Errorf("round-trip vertices = %d, want 4", got.NumVertices)
	}
}

func TestGraph500RoundTrip(t *testing.T) {
	r := xrand.New(3)
	el := &graph.EdgeList{NumVertices: 100}
	for i := 0; i < 500; i++ {
		el.Edges = append(el.Edges, graph.Edge{Src: graph.VID(r.Intn(100)), Dst: graph.VID(r.Intn(100))})
	}
	var buf bytes.Buffer
	if err := WriteFormat(&buf, el, FormatGraph500, "t"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGraph500(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices != el.NumVertices || len(got.Edges) != len(el.Edges) {
		t.Fatalf("sizes differ: %d/%d vs %d/%d", got.NumVertices, len(got.Edges), el.NumVertices, len(el.Edges))
	}
	for i := range el.Edges {
		if got.Edges[i].Src != el.Edges[i].Src || got.Edges[i].Dst != el.Edges[i].Dst {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestReadGraph500Garbage(t *testing.T) {
	if _, err := ReadGraph500(strings.NewReader("not binary")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestGraphMatFormat(t *testing.T) {
	el := &graph.EdgeList{
		NumVertices: 3,
		Edges:       []graph.Edge{{Src: 0, Dst: 1, W: 0.5}},
		Weighted:    true,
	}
	var buf bytes.Buffer
	if err := WriteFormat(&buf, el, FormatGraphMat, "t"); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "MatrixMarket") {
		t.Error("missing MatrixMarket header")
	}
	if !strings.Contains(s, "1 2 0.5") {
		t.Errorf("expected 1-indexed edge, got:\n%s", s)
	}
}

func TestAdjacencyFormat(t *testing.T) {
	el := &graph.EdgeList{
		NumVertices: 3,
		Edges:       []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 2}},
	}
	var buf bytes.Buffer
	if err := WriteFormat(&buf, el, FormatAdjacency, "t"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "AdjacencyGraph" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "3" || lines[2] != "3" {
		t.Errorf("counts = %q %q", lines[1], lines[2])
	}
}

func TestWriteFormatUnknown(t *testing.T) {
	el := &graph.EdgeList{NumVertices: 1, Edges: []graph.Edge{{Src: 0, Dst: 0}}}
	if err := WriteFormat(&bytes.Buffer{}, el, "bogus", "t"); err == nil {
		t.Error("unknown format accepted")
	}
}

// Property: any weighted random edge list survives a SNAP round trip
// with the same edge multiset (modulo ID densification order, which is
// first-seen and deterministic).
func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		el := &graph.EdgeList{NumVertices: 20, Weighted: true}
		for i := 0; i < 50; i++ {
			el.Edges = append(el.Edges, graph.Edge{
				Src: graph.VID(r.Intn(20)),
				Dst: graph.VID(r.Intn(20)),
				W:   float32(int(r.Float32()*100)+1) / 128, // exactly representable
			})
		}
		var buf bytes.Buffer
		if err := Write(&buf, el, "prop"); err != nil {
			return false
		}
		res, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(res.Graph.Edges) != len(el.Edges) {
			return false
		}
		for i := range el.Edges {
			// Densified IDs must map back to the written ones.
			g := res.Graph.Edges[i]
			if res.OrigID[g.Src] != int64(el.Edges[i].Src) ||
				res.OrigID[g.Dst] != int64(el.Edges[i].Dst) ||
				g.W != el.Edges[i].W {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRead(b *testing.B) {
	r := xrand.New(1)
	el := &graph.EdgeList{NumVertices: 1000}
	for i := 0; i < 50000; i++ {
		el.Edges = append(el.Edges, graph.Edge{Src: graph.VID(r.Intn(1000)), Dst: graph.VID(r.Intn(1000))})
	}
	var buf bytes.Buffer
	Write(&buf, el, "bench")
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
