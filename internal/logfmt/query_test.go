package logfmt

import (
	"strings"
	"testing"
)

func TestQueryRecordRoundTrip(t *testing.T) {
	for _, rec := range []QueryRecord{
		{Seq: 1, Op: "bfs", Src: 3, Dst: 9, Status: "ok", ModeledUS: 12.345678901234567, Depth: 2},
		{Seq: 42, Op: "sssp", Src: 0, Dst: 4294967295, Status: "deadline", Degraded: true, ModeledUS: 0.1},
		{Seq: 7, Op: "pr", Status: "shed", Depth: 8},
		{Seq: 0, Op: "khop", Status: "panic", ModeledUS: 1e-9},
	} {
		var b strings.Builder
		if err := EmitQuery(&b, rec); err != nil {
			t.Fatal(err)
		}
		line := b.String()
		if !strings.HasSuffix(line, "\n") {
			t.Fatalf("record not newline-terminated: %q", line)
		}
		got, err := ParseQuery(line)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if got != rec {
			t.Errorf("round trip mutated record:\n  in:  %+v\n  out: %+v", rec, got)
		}
	}
}

func TestParseQueryErrors(t *testing.T) {
	for name, line := range map[string]string{
		"empty":         "",
		"wrong prefix":  "run seq=1",
		"bare field":    "query seq",
		"bad seq":       "query seq=abc",
		"bad src":       "query src=-1",
		"bad degraded":  "query degraded=maybe",
		"unknown field": "query wallclock_us=9",
	} {
		if _, err := ParseQuery(line); err == nil {
			t.Errorf("%s: ParseQuery(%q) accepted", name, line)
		}
	}
}
