package server

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/harness"
	"github.com/hpcl-repro/epg/internal/logfmt"
)

func testEdgeList(t *testing.T) *graph.EdgeList {
	t.Helper()
	el, err := harness.ResolveDataset("kron-9", harness.DatasetOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return el
}

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := NewFromEdgeList(testEdgeList(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestServerAnswersMatchDirectComputation(t *testing.T) {
	s := startServer(t, Config{Executors: 1})
	b, err := NewBench(testEdgeList(t), 8, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, q := range []Query{
		{Op: OpBFS, Source: 0, Target: 9},
		{Op: OpSSSP, Source: 0, Target: 9},
		{Op: OpPR, Source: 3},
		{Op: OpWCC, Source: 0, Target: 9},
		{Op: OpKHop, Source: 0, K: 2},
	} {
		got := s.Submit(ctx, q)
		if got.Status != StatusOK {
			t.Fatalf("%s: status %q err %q", q.Op, got.Status, got.Err)
		}
		want := b.Run(q, 0, false)
		if got.Value != want.Value {
			t.Errorf("%s: served %v, direct %v", q.Op, got.Value, want.Value)
		}
	}
}

func TestServerValidatesQueries(t *testing.T) {
	s := startServer(t, Config{Executors: 1})
	ctx := context.Background()
	n := s.NumVertices()
	for name, q := range map[string]Query{
		"unknown op":       {Op: "pagerank"},
		"source too large": {Op: OpBFS, Source: graph.VID(n), Target: 0},
		"target too large": {Op: OpBFS, Source: 0, Target: graph.VID(n)},
		"negative k":       {Op: OpKHop, Source: 0, K: -1},
		"panic disabled":   {Op: OpPanic},
	} {
		if resp := s.Submit(ctx, q); resp.Status != StatusError {
			t.Errorf("%s: status %q, want error", name, resp.Status)
		}
	}
	if got := s.Metrics().Rejected; got != 5 {
		t.Errorf("rejected counter %d, want 5", got)
	}
	// Rejected queries never count as offered.
	if got := s.Metrics().Offered; got != 0 {
		t.Errorf("offered counter %d, want 0", got)
	}
}

// TestServerPanicIsolation proves a panicking query produces a
// structured response and a counter bump — and the daemon keeps
// serving afterwards.
func TestServerPanicIsolation(t *testing.T) {
	s := startServer(t, Config{Executors: 1, FaultInjection: true})
	ctx := context.Background()
	resp := s.Submit(ctx, Query{Op: OpPanic})
	if resp.Status != StatusPanic {
		t.Fatalf("status %q, want panic", resp.Status)
	}
	if !strings.Contains(resp.Err, "injected fault") {
		t.Fatalf("panic response lost the panic value: %q", resp.Err)
	}
	if got := s.Metrics().Panics; got != 1 {
		t.Fatalf("panic counter %d, want 1", got)
	}
	// The executor that recovered must still serve real queries.
	after := s.Submit(ctx, Query{Op: OpBFS, Source: 0, Target: 1})
	if after.Status != StatusOK {
		t.Fatalf("query after panic: status %q err %q", after.Status, after.Err)
	}
}

func TestServerDeadline(t *testing.T) {
	s := startServer(t, Config{Executors: 1})
	ctx := context.Background()
	full := s.Submit(ctx, Query{Op: OpBFS, Source: 0, Target: 1})
	if full.Status != StatusOK {
		t.Fatalf("full: %+v", full)
	}
	resp := s.Submit(ctx, Query{Op: OpBFS, Source: 0, Target: 1,
		DeadlineSec: full.ModeledSec / 1e3})
	if resp.Status != StatusDeadline {
		t.Fatalf("status %q, want deadline", resp.Status)
	}
	if s.Metrics().DeadlineExceeded != 1 {
		t.Fatalf("deadline counter %d, want 1", s.Metrics().DeadlineExceeded)
	}
}

func TestServerContextCancellation(t *testing.T) {
	s := startServer(t, Config{Executors: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the executor's hook fires at the first level
	resp := s.Submit(ctx, Query{Op: OpBFS, Source: 0, Target: 1})
	if resp.Status != StatusDeadline {
		t.Fatalf("status %q, want deadline (canceled)", resp.Status)
	}
}

// TestServerQueueBoundUnderFlood floods a tiny queue and proves the
// exact accounting identity and the depth bound from the live
// counters — the daemon-side version of the sim's Conservation.
func TestServerQueueBoundUnderFlood(t *testing.T) {
	const clients, perClient = 16, 25
	s := startServer(t, Config{
		Executors: 1,
		Admit:     AdmitConfig{QueueCap: 2, DegradeWatermark: 1},
	})
	ctx := context.Background()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				src := graph.VID((c*perClient + i) % s.NumVertices())
				s.Submit(ctx, Query{Op: OpBFS, Source: src, Target: 0})
			}
		}(c)
	}
	wg.Wait()
	m := s.Metrics()
	offered := int64(clients * perClient)
	if m.Offered != offered {
		t.Fatalf("offered %d, want %d", m.Offered, offered)
	}
	if m.Admitted+m.ShedQueueFull+m.ShedThrottled != offered {
		t.Fatalf("admitted %d + shed %d+%d != offered %d",
			m.Admitted, m.ShedQueueFull, m.ShedThrottled, offered)
	}
	if m.Completed+m.DeadlineExceeded+m.Errors+m.Panics != m.Admitted {
		t.Fatalf("outcomes %d+%d+%d+%d != admitted %d",
			m.Completed, m.DeadlineExceeded, m.Errors, m.Panics, m.Admitted)
	}
	if got := s.MaxQueueDepth(); got > 2 {
		t.Fatalf("max queue depth %d exceeded cap 2", got)
	}
}

// gateWriter blocks every Write until the gate channel is closed —
// used to wedge the lone executor inside its post-query log call so a
// flood meets a queue that deterministically cannot drain.
type gateWriter struct{ gate chan struct{} }

func (w *gateWriter) Write(p []byte) (int, error) { <-w.gate; return len(p), nil }

// TestServerShedsWhenWedged proves the shed path on the live daemon
// with exact counts: the executor is wedged mid-serve (blocked log
// write), so 8 concurrent submissions against a cap-2 queue must
// admit exactly 2 and shed exactly 6 — no scheduler timing involved,
// because admission decisions are made while the executor provably
// cannot dequeue.
func TestServerShedsWhenWedged(t *testing.T) {
	gate := make(chan struct{})
	s, err := NewFromEdgeList(testEdgeList(t), Config{
		Executors: 1,
		Admit:     AdmitConfig{QueueCap: 2, DegradeWatermark: 2},
		QueryLog:  &gateWriter{gate: gate},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Submit(ctx, Query{Op: OpBFS, Source: 9, Target: 0})
	}()
	// depth is incremented at admission and released at dequeue, so
	// Admitted==1 && depth==0 can only mean the executor has picked the
	// query up — and it cannot finish, the gate blocks its log write.
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().Admitted != 1 || s.QueueDepth() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("executor never picked up the wedge query")
		}
		time.Sleep(10 * time.Microsecond)
	}
	const flooders = 8
	for c := 0; c < flooders; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			s.Submit(ctx, Query{Op: OpBFS, Source: graph.VID(c), Target: 0})
		}(c)
	}
	// Admission counters move before any (possibly gate-blocked) log
	// write, so waiting on them observes every decision.
	for {
		m := s.Metrics()
		if m.Offered == 1+flooders && m.Admitted+m.ShedQueueFull == 1+flooders {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flood decisions never completed: %+v", s.Metrics())
		}
		time.Sleep(10 * time.Microsecond)
	}
	close(gate)
	wg.Wait()
	m := s.Metrics()
	if m.Admitted != 3 || m.ShedQueueFull != flooders-2 {
		t.Errorf("wedged cap-2 queue: admitted %d shed %d, want 3 and %d",
			m.Admitted, m.ShedQueueFull, flooders-2)
	}
	if got := s.MaxQueueDepth(); got != 2 {
		t.Errorf("max queue depth %d, want exactly 2", got)
	}
}

func TestServerRefresh(t *testing.T) {
	s := startServer(t, Config{Executors: 1})
	ctx := context.Background()
	before := s.Submit(ctx, Query{Op: OpPR, Source: 3})
	if err := s.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	after := s.Submit(ctx, Query{Op: OpPR, Source: 3})
	if before.Value != after.Value {
		t.Errorf("refresh changed a deterministic vector: %v -> %v", before.Value, after.Value)
	}
	// Refreshes hold a queue slot but are not queries: the outcome
	// identity must survive them.
	m := s.Metrics()
	if m.Admitted != 2 || m.Completed != 2 {
		t.Errorf("refresh leaked into query counters: %+v", m)
	}
}

func TestServerQueryLog(t *testing.T) {
	var buf bytes.Buffer
	el := testEdgeList(t)
	s, err := NewFromEdgeList(el, Config{Executors: 1, QueryLog: &buf,
		Admit: AdmitConfig{QueueCap: 4}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Submit(context.Background(), Query{Op: OpBFS, Source: 0, Target: 5})
	s.Submit(context.Background(), Query{Op: OpPR, Source: 1})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("query log has %d lines, want 2:\n%s", len(lines), buf.String())
	}
	rec, err := logfmt.ParseQuery(lines[0])
	if err != nil {
		t.Fatal(err)
	}
	if rec.Op != "bfs" || rec.Status != "ok" || rec.ModeledUS <= 0 {
		t.Errorf("bad first record: %+v", rec)
	}
}

// TestServerSoak is the race-enabled soak: concurrent clients mixing
// every op with injected panics, tight deadlines, and client
// cancellations against multiple executors. Run under -race in CI
// (serving job); the assertions are the conservation identity and
// zero lost responses.
func TestServerSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	s := startServer(t, Config{
		Executors:      2,
		FaultInjection: true,
		Admit:          AdmitConfig{QueueCap: 8, DegradeWatermark: 2},
	})
	const clients, perClient = 8, 30
	var wg sync.WaitGroup
	var responses sync.Map
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				q := Query{Source: graph.VID((c + i) % s.NumVertices()),
					Target: graph.VID(i % s.NumVertices())}
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				switch i % 6 {
				case 0:
					q.Op = OpBFS
				case 1:
					q.Op = OpSSSP
				case 2:
					q.Op = OpPR
				case 3:
					q.Op = OpPanic
				case 4:
					q.Op = OpBFS
					q.DeadlineSec = 1e-9 // guaranteed truncation
				default:
					q.Op = OpKHop
					q.K = 2
					if i%2 == 0 {
						ctx, cancel = context.WithTimeout(ctx, time.Microsecond)
					}
				}
				resp := s.Submit(ctx, q)
				cancel()
				if resp.Status == "" {
					t.Error("empty response status")
				}
				responses.Store([2]int{c, i}, resp.Status)
			}
		}(c)
	}
	wg.Wait()
	count := 0
	responses.Range(func(_, _ any) bool { count++; return true })
	if count != clients*perClient {
		t.Fatalf("%d responses for %d requests", count, clients*perClient)
	}
	m := s.Metrics()
	if m.Panics == 0 {
		t.Error("soak injected panics but counter is zero")
	}
	if m.Admitted+m.ShedQueueFull+m.ShedThrottled != m.Offered {
		t.Fatalf("conservation violated: %+v", m)
	}
	if got := s.MaxQueueDepth(); got > 8 {
		t.Fatalf("queue depth %d exceeded cap 8", got)
	}
	// The daemon survived: a final query still completes.
	final := s.Submit(context.Background(), Query{Op: OpBFS, Source: 0, Target: 1})
	if final.Status != StatusOK {
		t.Fatalf("post-soak query: %+v", final)
	}
}
