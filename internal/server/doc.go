// Package server implements epgd, a resident-graph query daemon over
// the reproduction's engines: the dataset is loaded and homogenized
// once, PageRank and WCC vectors are precomputed (and refreshable),
// and point queries — BFS hop distance, SSSP weighted distance,
// PR/WCC lookups, k-hop neighborhood size — are served from memory on
// the modeled worker pool.
//
// The serving layer is built around three robustness mechanisms, in
// the order a request meets them:
//
//	          ┌────────────────────────────────────────────────┐
//	request → │ admission                                      │
//	          │   queue full (depth = cap) ──────────→ 429 shed │
//	          │   token bucket empty ────────────────→ 429 shed │
//	          │   depth ≥ watermark & degradable op ─→ admit*   │
//	          │   otherwise ─────────────────────────→ admit    │
//	          └───────────────┬────────────────────────────────┘
//	                  bounded FIFO queue
//	          ┌───────────────┴────────────────────────────────┐
//	          │ executor (one engine instance per worker)      │
//	          │   admit* → landmark-sketch answer, degraded:true│
//	          │   deadline hook polled per level/pass/iteration │
//	          │     budget exhausted ────────────────→ 504     │
//	          │   panic → recovered, counted ────────→ 500     │
//	          └────────────────────────────────────────────────┘
//
// Admission is a token bucket in front of a bounded FIFO queue: when
// the queue is at capacity the request is shed immediately (the queue
// never grows without bound), and a drained bucket sheds before the
// queue is touched. Between the degrade watermark and the cap,
// distance queries are still admitted but answered from a precomputed
// landmark-distance sketch — an upper bound computed in microseconds
// instead of a full traversal — and tagged degraded:true, so overload
// degrades answer precision before it degrades availability.
//
// Deadlines are cooperative: the executor installs a cancellation
// hook (engines.CancelSetter) that the kernels poll at coarse,
// schedule-independent points — once per BFS level, delta-stepping
// relaxation pass, or PR/WCC iteration — so a runaway query is
// abandoned at the next frontier with the machine left at the modeled
// time it actually consumed. Panics inside a query (including inside
// parallel regions, which internal/parallel forwards to the
// submitting goroutine) are recovered per query, counted, and
// reported as structured 500s; the daemon never dies with a request.
//
// Determinism: query budgets and reported service times are modeled
// seconds on the executor's simmachine, so the load-generator study
// (Simulate, WriteServeStudy) is a virtual-time discrete-event
// simulation whose every output column is a pure function of the
// seed — byte-identical across runs, GOMAXPROCS, and host load, and
// therefore gateable by exact comparison (make servefig-check).
package server
