package simmachine

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func testModel() Model { return Haswell72() }

func TestEffHzMonotoneNonIncreasing(t *testing.T) {
	m := testModel()
	prev := math.Inf(1)
	for th := 1; th <= m.MaxThreads(); th++ {
		hz := m.effHz(th)
		if hz <= 0 {
			t.Fatalf("effHz(%d) = %v", th, hz)
		}
		if hz > prev+1e-9 {
			t.Fatalf("effHz increased at %d threads: %v > %v", th, hz, prev)
		}
		prev = hz
	}
}

func TestEffHzEndpoints(t *testing.T) {
	m := testModel()
	if got := m.effHz(1); got != m.TurboHz {
		t.Errorf("effHz(1) = %v, want turbo %v", got, m.TurboHz)
	}
	if got := m.effHz(36); math.Abs(got-m.BaseHz) > 1e-3 {
		t.Errorf("effHz(36) = %v, want base %v", got, m.BaseHz)
	}
	// At 72 threads each lane runs slower than base but aggregate
	// throughput (t * effHz) must exceed the 36-thread aggregate.
	agg36 := 36 * m.effHz(36)
	agg72 := 72 * m.effHz(72)
	if agg72 <= agg36 {
		t.Errorf("SMT yields no aggregate gain: %v vs %v", agg72, agg36)
	}
	if agg72 > agg36*(1+m.SMTYield)+1 {
		t.Errorf("SMT gain exceeds yield bound: %v vs %v", agg72, agg36*(1+m.SMTYield))
	}
}

func TestBandwidthSaturates(t *testing.T) {
	m := testModel()
	if bw := m.bandwidth(1); bw != m.ThreadBW {
		t.Errorf("bandwidth(1) = %v", bw)
	}
	oneSocket := m.bandwidth(18)
	if oneSocket != m.SocketBW {
		t.Errorf("bandwidth(18) = %v, want socket cap %v", oneSocket, m.SocketBW)
	}
	if bw := m.bandwidth(72); bw != 2*m.SocketBW {
		t.Errorf("bandwidth(72) = %v, want 2 sockets %v", bw, 2*m.SocketBW)
	}
}

func TestSerialChargesTime(t *testing.T) {
	m := New(testModel(), 8)
	m.Serial(func(w *W) { w.Cycles(3.6e9) }) // one turbo-second of work
	if got := m.Elapsed(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("elapsed = %v, want 1.0", got)
	}
}

func TestSerialMemoryBound(t *testing.T) {
	m := New(testModel(), 1)
	m.Serial(func(w *W) { w.Bytes(11.5e9) }) // one thread-BW-second
	if got := m.Elapsed(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("elapsed = %v, want 1.0", got)
	}
	if !m.Trace()[0].MemBound {
		t.Error("region not marked memory-bound")
	}
}

func TestParallelForExecutesAllIndices(t *testing.T) {
	m := New(testModel(), 4)
	var n int64
	seen := make([]int32, 1000)
	m.ParallelFor(1000, 16, Dynamic, func(lo, hi int, w *W) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
			atomic.AddInt64(&n, 1)
		}
		w.Cycles(float64(hi - lo))
	})
	if n != 1000 {
		t.Fatalf("executed %d iterations, want 1000", n)
	}
	for i, s := range seen {
		if s != 1 {
			t.Fatalf("index %d executed %d times", i, s)
		}
	}
}

func TestParallelForSpeedupUniformWork(t *testing.T) {
	// Uniform compute-bound chunks: modeled time should drop close
	// to linearly up to the physical core count.
	elapsedFor := func(threads int) float64 {
		m := New(testModel(), threads)
		m.ParallelFor(36*100, 1, Dynamic, func(lo, hi int, w *W) {
			w.Cycles(1e6)
		})
		return m.Elapsed()
	}
	t1 := elapsedFor(1)
	t8 := elapsedFor(8)
	speedup := t1 / t8
	if speedup < 6 || speedup > 8.01 {
		t.Errorf("8-thread speedup = %.2f, want near-linear in (6, 8]", speedup)
	}
	t72 := elapsedFor(72)
	if t72 >= t8 {
		t.Errorf("72 threads (%v) not faster than 8 (%v)", t72, t8)
	}
}

func TestStaticImbalanceSlowerThanDynamic(t *testing.T) {
	// One heavy chunk among many light ones: dynamic scheduling
	// absorbs it; static round-robin forces one lane to carry the
	// heavy chunk plus its share of light ones.
	run := func(s Sched) float64 {
		m := New(testModel(), 4)
		m.ParallelFor(64, 1, s, func(lo, hi int, w *W) {
			if lo == 0 {
				w.Cycles(1e8)
			} else {
				w.Cycles(1e5)
			}
		})
		return m.Elapsed()
	}
	if ds, ss := run(Dynamic), run(Static); ss < ds {
		t.Errorf("static (%v) unexpectedly faster than dynamic (%v)", ss, ds)
	}
}

func TestDynamicBeatsStaticOnSkew(t *testing.T) {
	// Pathological alternating skew: static round-robin piles all
	// heavy chunks on even lanes.
	run := func(s Sched) float64 {
		m := New(testModel(), 2)
		m.ParallelFor(100, 1, s, func(lo, hi int, w *W) {
			if lo%2 == 0 {
				w.Cycles(1e7)
			} else {
				w.Cycles(1e3)
			}
		})
		return m.Elapsed()
	}
	ds, ss := run(Dynamic), run(Static)
	if ss <= ds*1.5 {
		t.Errorf("expected static (%v) ≫ dynamic (%v) on alternating skew", ss, ds)
	}
}

func TestMemoryRoofline(t *testing.T) {
	// A purely bandwidth-bound region should stop improving once
	// the socket bandwidth saturates.
	run := func(threads int) float64 {
		m := New(testModel(), threads)
		m.ParallelFor(threads, 1, Static, func(lo, hi int, w *W) {
			w.Bytes(1e9 / float64(threads))
		})
		return m.Elapsed()
	}
	t18 := run(18)
	t36 := run(36)
	// Two sockets double bandwidth but NUMA adds penalty: expect
	// 36t between 0.5x and 1.0x of 18t time.
	if t36 >= t18 {
		t.Errorf("36 threads (%v) slower than 18 (%v) for bandwidth-bound work", t36, t18)
	}
	if t36 < t18*0.5 {
		t.Errorf("36 threads (%v) better than 2x of 18 (%v): NUMA penalty missing", t36, t18)
	}
}

func TestAtomicContentionGrowsWithThreads(t *testing.T) {
	// Same total atomics, spread across more lanes: per-op cost
	// rises with contention, so total CPU-seconds rise.
	regionSeconds := func(threads int) float64 {
		m := New(testModel(), threads)
		m.ParallelFor(threads, 1, Static, func(lo, hi int, w *W) {
			w.Atomics(1e6 / float64(threads))
		})
		return m.Elapsed() * float64(threads) // aggregate lane-seconds
	}
	if a1, a8 := regionSeconds(1), regionSeconds(8); a8 <= a1 {
		t.Errorf("aggregate atomic cost did not grow: 1t=%v 8t=%v", a1, a8)
	}
}

func TestBarrierCostAppears(t *testing.T) {
	m := New(testModel(), 16)
	for i := 0; i < 100; i++ {
		m.ParallelFor(16, 1, Static, func(lo, hi int, w *W) { w.Cycles(1) })
	}
	// 100 regions of negligible work should cost roughly 100
	// barrier+fork overheads.
	min := 100 * testModel().ForkSeconds
	if m.Elapsed() < min {
		t.Errorf("elapsed %v below pure overhead bound %v", m.Elapsed(), min)
	}
}

func TestForEachThreadLaneAssignment(t *testing.T) {
	m := New(testModel(), 6)
	var count int64
	m.ForEachThread(func(tid int, w *W) {
		if tid < 0 || tid >= 6 {
			t.Errorf("tid %d out of range", tid)
		}
		atomic.AddInt64(&count, 1)
		w.Cycles(100)
	})
	if count != 6 {
		t.Errorf("ran %d bodies, want 6", count)
	}
	tr := m.Trace()
	if len(tr) != 1 || tr[0].ActiveLanes != 6 {
		t.Errorf("trace = %+v", tr)
	}
}

func TestFileRead(t *testing.T) {
	m := New(testModel(), 32)
	m.FileRead(480e6, false) // exactly one DiskBW-second
	if got := m.Elapsed(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("file read elapsed = %v, want 1.0", got)
	}
	if !m.Trace()[0].IO {
		t.Error("region not marked IO")
	}
	m.Reset()
	m.FileRead(480e6, true)
	if m.Elapsed() <= 1.0 {
		t.Error("parsing added no time")
	}
}

func TestSleepAndReset(t *testing.T) {
	m := New(testModel(), 2)
	m.Sleep(10)
	if m.Elapsed() != 10 {
		t.Errorf("elapsed = %v", m.Elapsed())
	}
	if r := m.Trace()[0]; r.ActiveLanes != 0 {
		t.Errorf("sleep region %+v", r)
	}
	m.Reset()
	if m.Elapsed() != 0 || len(m.Trace()) != 0 {
		t.Error("reset incomplete")
	}
}

// TestResetBumpsGeneration: Reset discards the trace, so any cursor
// captured before it indexes a dead generation. The generation counter
// is what lets trace consumers (power.RAPL windows) detect that and
// fail loudly instead of slicing a truncated — or silently regrown —
// trace.
func TestResetBumpsGeneration(t *testing.T) {
	m := New(testModel(), 2)
	g0 := m.Generation()
	m.Serial(func(w *W) { w.Cycles(1e6) })
	if m.Generation() != g0 {
		t.Error("recording regions changed the generation")
	}
	m.Reset()
	if m.Generation() != g0+1 {
		t.Errorf("generation after Reset = %d, want %d", m.Generation(), g0+1)
	}
	m.Reset()
	if m.Generation() != g0+2 {
		t.Errorf("generation after second Reset = %d, want %d", m.Generation(), g0+2)
	}
	if !m.Tracing() {
		t.Error("new machine not tracing by default")
	}
}

func TestMarkWindows(t *testing.T) {
	m := New(testModel(), 2)
	m.Serial(func(w *W) { w.Cycles(1e6) })
	i0, t0 := m.Mark()
	m.Serial(func(w *W) { w.Cycles(1e6) })
	i1, t1 := m.Mark()
	if i1 != i0+1 {
		t.Errorf("window regions = %d", i1-i0)
	}
	if t1 <= t0 {
		t.Error("window duration not positive")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() float64 {
		m := New(testModel(), 5)
		m.ParallelFor(997, 7, Dynamic, func(lo, hi int, w *W) {
			w.Cycles(float64((hi - lo) * (lo + 13)))
			w.Bytes(float64(hi-lo) * 64)
			w.Atomics(float64(lo % 3))
		})
		return m.Elapsed()
	}
	a := run()
	for i := 0; i < 10; i++ {
		if b := run(); b != a {
			t.Fatalf("modeled time nondeterministic: %v vs %v", a, b)
		}
	}
}

// Property: modeled parallel time is bounded below by the greedy lower
// bounds max(chunkMax, total/threads) (up to overheads) and above by
// serial time + overheads, for arbitrary chunk costs.
func TestSchedulingBoundsProperty(t *testing.T) {
	model := testModel()
	f := func(seed uint64, threadsRaw uint8) bool {
		threads := int(threadsRaw)%16 + 1
		costs := make([]float64, 50)
		s := seed
		var total, maxc float64
		for i := range costs {
			s = s*6364136223846793005 + 1442695040888963407
			costs[i] = float64(s%1000+1) * 1e4
			total += costs[i]
			if costs[i] > maxc {
				maxc = costs[i]
			}
		}
		m := New(model, threads)
		m.ParallelFor(len(costs), 1, Dynamic, func(lo, hi int, w *W) {
			w.Cycles(costs[lo])
		})
		hz := model.effHz(threads)
		lower := math.Max(maxc/hz, total/(float64(threads)*hz))
		upper := total/model.effHz(1) + model.barrier(threads) + 1e-6
		got := m.Elapsed()
		return got >= lower-1e-12 && got <= upper+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: modeled time is monotone in work: doubling every chunk's
// cycles cannot reduce elapsed time.
func TestMonotoneInWorkProperty(t *testing.T) {
	f := func(seed uint64) bool {
		base := float64(seed%1000+1) * 1e3
		run := func(mult float64) float64 {
			m := New(testModel(), 4)
			m.ParallelFor(32, 1, Dynamic, func(lo, hi int, w *W) {
				w.Cycles(base * mult * float64(lo+1))
			})
			return m.Elapsed()
		}
		return run(2) >= run(1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkParallelForOverhead(b *testing.B) {
	m := New(testModel(), 8)
	m.SetTracing(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.ParallelFor(1024, 64, Dynamic, func(lo, hi int, w *W) {
			w.Cycles(float64(hi - lo))
		})
	}
}
