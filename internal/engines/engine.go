// Package engines defines the common interface that the five graph
// processing systems implement, together with normalized result types.
//
// Each engine package (graph500, gap, graphbig, graphmat, powergraph)
// reproduces the architectural character of the corresponding system
// from the paper: its storage layout, parallelization strategy,
// algorithmic variants, and floating-point precision. The shared
// interface is what the paper's framework relies on: homogeneous
// inputs, homogeneous stopping criteria, and separately measurable
// execution phases.
package engines

import (
	"fmt"
	"math"
	"sort"

	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// Algorithm names one of the study's kernels.
type Algorithm string

// The three primary algorithms plus the three Graphalytics extras.
const (
	BFS      Algorithm = "BFS"
	SSSP     Algorithm = "SSSP"
	PageRank Algorithm = "PR"
	CDLP     Algorithm = "CDLP"
	LCC      Algorithm = "LCC"
	WCC      Algorithm = "WCC"
)

// AllAlgorithms lists every kernel in report order.
var AllAlgorithms = []Algorithm{BFS, CDLP, LCC, PageRank, SSSP, WCC}

// NoParent marks unreachable vertices in BFS/SSSP parent arrays.
const NoParent = int64(-1)

// BFSResult is a parent tree. Parent[v] == NoParent means v was not
// reached; Parent[root] == root. Depth carries BFS levels.
type BFSResult struct {
	Root   graph.VID
	Parent []int64
	Depth  []int64 // -1 for unreached
	// EdgesExamined is the engine's own count of edge inspections,
	// the basis for TEPS reporting.
	EdgesExamined int64
}

// SSSPResult holds tentative distances; unreachable vertices have
// +Inf. Engines that compute in float32 widen to float64.
type SSSPResult struct {
	Root   graph.VID
	Dist   []float64
	Parent []int64
	// Relaxations counts edge relaxation attempts.
	Relaxations int64
}

// PROpts holds the homogenized PageRank configuration from the paper:
// damping 0.85 and the L1-norm stopping criterion with epsilon 6e-8
// (approximately float32 machine epsilon). Engines whose original
// semantics differ (GraphMat's run-until-no-change) keep those
// semantics, exactly as the paper describes.
type PROpts struct {
	Damping float64
	Epsilon float64
	MaxIter int
}

// DefaultPROpts mirrors the paper's homogenized configuration.
func DefaultPROpts() PROpts {
	return PROpts{Damping: 0.85, Epsilon: 6e-8, MaxIter: 300}
}

func (o PROpts) withDefaults() PROpts {
	d := DefaultPROpts()
	if o.Damping == 0 {
		o.Damping = d.Damping
	}
	if o.Epsilon == 0 {
		o.Epsilon = d.Epsilon
	}
	if o.MaxIter == 0 {
		o.MaxIter = d.MaxIter
	}
	return o
}

// Normalize fills zero fields with defaults.
func (o PROpts) Normalize() PROpts { return o.withDefaults() }

// PRResult holds final scores (sum ≈ 1) and the iteration count the
// paper compares in Fig. 4.
type PRResult struct {
	Rank       []float64
	Iterations int
}

// CDLPResult holds per-vertex community labels after synchronous
// label propagation with minimum-label tie-breaking.
type CDLPResult struct {
	Label      []graph.VID
	Iterations int
}

// LCCResult holds per-vertex local clustering coefficients.
type LCCResult struct {
	Coeff []float64
}

// WCCResult holds per-vertex component IDs, canonicalized to the
// minimum vertex ID in each component.
type WCCResult struct {
	Component []graph.VID
}

// Instance is a loaded graph inside one engine, bound to a machine.
// Run methods may be called repeatedly (e.g., 32 roots); instances are
// not safe for concurrent use.
type Instance interface {
	// BuildStructure performs the separately-timed data structure
	// construction phase. Engines that construct while reading
	// (GraphBIG, PowerGraph) perform the work in Load and make this
	// a no-op; callers can detect that via Engine.SeparateConstruction.
	BuildStructure()

	BFS(root graph.VID) (*BFSResult, error)
	SSSP(root graph.VID) (*SSSPResult, error)
	PageRank(opts PROpts) (*PRResult, error)
	CDLP(maxIter int) (*CDLPResult, error)
	LCC() (*LCCResult, error)
	WCC() (*WCCResult, error)
}

// Engine is one of the five systems under study.
type Engine interface {
	Name() string
	// Has reports whether the engine provides a reference
	// implementation of alg (PowerGraph famously lacks BFS).
	Has(alg Algorithm) bool
	// SeparateConstruction reports whether graph construction is a
	// distinct, separately-timed phase.
	SeparateConstruction() bool
	// Load ingests the in-RAM edge list. For engines without a
	// separate construction phase this includes building the
	// structure (charged to the machine).
	Load(el *graph.EdgeList, m *simmachine.Machine) (Instance, error)
}

// SyncSSSPSetter is implemented by engines whose SSSP has an optional
// synchronous mode (GAP's bucket-barrier delta-stepping, GraphBIG's
// round-barrier relaxation). The synchronous mode makes parents,
// relaxation counts, and modeled durations schedule-independent; the
// default preserves the real systems' racy character. The harness
// enables it from Spec.SyncSSSP. Instances read the flag live, so it
// may be toggled before or after Load — it takes effect at the next
// SSSP call.
type SyncSSSPSetter interface {
	SetSyncSSSP(on bool)
}

// CancelSetter is implemented by engine *instances* whose long-running
// kernels support cooperative cancellation. The serving daemon
// (internal/server) installs a check before each query and clears it
// after; the kernel calls the check at coarse, schedule-independent
// points — once per BFS level, once per delta-stepping relaxation
// pass, once per PageRank/WCC iteration — never inside a parallel
// region, so a nil result charges nothing and changes no modeled
// duration. When the check returns a non-nil error the kernel abandons
// the run and returns that error (wrapped), leaving the machine at the
// modeled time it had reached: the caller observes exactly the cost of
// the work performed before the cancellation point.
type CancelSetter interface {
	// SetCancel installs check as the cancellation hook; nil removes
	// it. The hook must be cheap and must not call back into the
	// instance or its machine's parallel regions.
	SetCancel(check func() error)
}

// CompressSetter is implemented by engines that can traverse a
// delta+varint byte-compressed adjacency (graph.CompressedCSR) in
// their BFS/PageRank inner loops — GAP and Graph500 in this
// reproduction. The harness enables it from Spec.Compress before
// Load, since the compressed structure is built during graph
// construction. Outputs must be identical to the uncompressed run;
// only the modeled decode/bandwidth costs move.
type CompressSetter interface {
	SetCompress(on bool)
}

// ErrUnsupported is returned by instances for algorithms the engine
// does not provide.
var ErrUnsupported = fmt.Errorf("engines: algorithm not provided by this engine")

// Registry maps engine names to constructors, in the paper's order.
type Registry struct {
	names    []string
	builders map[string]func() Engine
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{builders: make(map[string]func() Engine)}
}

// Register adds a constructor; duplicate names panic (programmer
// error at init time).
func (r *Registry) Register(name string, f func() Engine) {
	if _, dup := r.builders[name]; dup {
		panic("engines: duplicate registration of " + name)
	}
	r.names = append(r.names, name)
	r.builders[name] = f
}

// Names returns registered engine names in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// New builds the named engine.
func (r *Registry) New(name string) (Engine, error) {
	f, ok := r.builders[name]
	if !ok {
		known := make([]string, len(r.names))
		copy(known, r.names)
		sort.Strings(known)
		return nil, fmt.Errorf("engines: unknown engine %q (have %v)", name, known)
	}
	return f(), nil
}

// RunAlgorithm dispatches alg on inst with homogenized defaults,
// returning an opaque result for logging and a size metric
// (iterations for PR, reached vertices for traversals) used in logs.
func RunAlgorithm(inst Instance, alg Algorithm, root graph.VID) (any, error) {
	switch alg {
	case BFS:
		return inst.BFS(root)
	case SSSP:
		return inst.SSSP(root)
	case PageRank:
		return inst.PageRank(DefaultPROpts())
	case CDLP:
		return inst.CDLP(DefaultCDLPIterations)
	case LCC:
		return inst.LCC()
	case WCC:
		return inst.WCC()
	default:
		return nil, fmt.Errorf("engines: unknown algorithm %q", alg)
	}
}

// DefaultCDLPIterations matches the Graphalytics default for
// community detection by label propagation.
const DefaultCDLPIterations = 10

// InfDist is the distance assigned to unreachable vertices.
var InfDist = math.Inf(1)
