package datasets

import (
	"testing"

	"github.com/hpcl-repro/epg/internal/graph"
)

func TestGenerateByName(t *testing.T) {
	for _, name := range []Name{DotaLeague, CitPatents} {
		el, err := Generate(name, Config{ScaleDivisor: 64, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := el.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", name, err)
		}
	}
	if _, err := Generate("nope", Config{}); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestDotaLeagueShape(t *testing.T) {
	el := GenerateDotaLeague(Config{ScaleDivisor: 32, Seed: 7})
	if !el.Weighted {
		t.Error("dota-league must be weighted")
	}
	s := Describe("dota", el)
	// Density character: far denser than typical graphs. The full
	// graph has avg out-degree ~824; at divisor d the model keeps
	// avg degree ~824/d, which must still exceed ~10 at divisor 32.
	if s.AvgOutDegree < 10 {
		t.Errorf("avg out-degree %.1f too sparse for dota analogue", s.AvgOutDegree)
	}
	for i, e := range el.Edges {
		if e.W <= 0 || e.W > 1 {
			t.Fatalf("edge %d weight %v outside (0,1]", i, e.W)
		}
	}
}

func TestDotaLeagueCommunityStructure(t *testing.T) {
	// With 90% intra-community wiring, clustering must be visible:
	// measure the fraction of edges inside the source's community
	// by rebuilding the assignment with the same seed logic is
	// internal, so instead check a weaker, observable property:
	// the graph's edges concentrate on far fewer distinct pairs
	// than uniform wiring would produce.
	el := GenerateDotaLeague(Config{ScaleDivisor: 64, Seed: 7})
	n := el.NumVertices
	distinct := make(map[uint64]struct{}, len(el.Edges))
	for _, e := range el.Edges {
		distinct[uint64(e.Src)*uint64(n)+uint64(e.Dst)] = struct{}{}
	}
	frac := float64(len(distinct)) / float64(len(el.Edges))
	// Uniform random wiring over n^2 pairs with m << n^2 would give
	// frac ≈ 1. Community concentration should produce repeats.
	if frac > 0.999 {
		t.Errorf("distinct-pair fraction %.4f shows no community concentration", frac)
	}
}

func TestCitPatentsShape(t *testing.T) {
	el := GenerateCitPatents(Config{ScaleDivisor: 64, Seed: 3})
	if el.Weighted {
		t.Error("cit-Patents must be unweighted")
	}
	if !el.Directed {
		t.Error("cit-Patents must be directed")
	}
	s := Describe("patents", el)
	if s.AvgOutDegree < 1 || s.AvgOutDegree > 12 {
		t.Errorf("avg out-degree %.1f outside citation-like range", s.AvgOutDegree)
	}
}

func TestCitPatentsIsDAG(t *testing.T) {
	el := GenerateCitPatents(Config{ScaleDivisor: 128, Seed: 5})
	for i, e := range el.Edges {
		if e.Dst >= e.Src {
			t.Fatalf("edge %d: %d cites non-earlier %d", i, e.Src, e.Dst)
		}
	}
}

func TestCitPatentsInDegreeSkew(t *testing.T) {
	el := GenerateCitPatents(Config{ScaleDivisor: 64, Seed: 5})
	indeg := make([]int, el.NumVertices)
	for _, e := range el.Edges {
		indeg[e.Dst]++
	}
	max := 0
	for _, d := range indeg {
		if d > max {
			max = d
		}
	}
	avg := float64(len(el.Edges)) / float64(el.NumVertices)
	if float64(max) < 10*avg {
		t.Errorf("max in-degree %d only %.1fx average; preferential attachment not visible", max, float64(max)/avg)
	}
}

func TestDeterminism(t *testing.T) {
	a := GenerateDotaLeague(Config{ScaleDivisor: 64, Seed: 9, Workers: 1})
	b := GenerateDotaLeague(Config{ScaleDivisor: 64, Seed: 9, Workers: 4})
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("edge counts differ across workers")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs across worker counts", i)
		}
	}
	c := GenerateCitPatents(Config{ScaleDivisor: 64, Seed: 9})
	d := GenerateCitPatents(Config{ScaleDivisor: 64, Seed: 9})
	for i := range c.Edges {
		if c.Edges[i] != d.Edges[i] {
			t.Fatalf("cit-Patents edge %d nondeterministic", i)
		}
	}
}

func TestFullSizeParametersPreserved(t *testing.T) {
	// Don't generate the full graphs (too large for unit tests);
	// verify the published constants used by divisor-1 math.
	if DotaEdges/DotaVertices < 800 {
		t.Error("Dota average degree constant drifted")
	}
	if PatentsEdges/PatentsVertices != 4 {
		t.Error("Patents average degree constant drifted")
	}
}

func TestBuildableIntoCSR(t *testing.T) {
	el := GenerateCitPatents(Config{ScaleDivisor: 128, Seed: 2})
	csr := graph.BuildCSR(el, graph.BuildOptions{Sort: true})
	if err := csr.Validate(); err != nil {
		t.Fatalf("CSR from cit-Patents invalid: %v", err)
	}
}

func BenchmarkGenerateDota(b *testing.B) {
	for i := 0; i < b.N; i++ {
		GenerateDotaLeague(Config{ScaleDivisor: 32, Seed: 1})
	}
}

func BenchmarkGeneratePatents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		GenerateCitPatents(Config{ScaleDivisor: 32, Seed: 1})
	}
}
