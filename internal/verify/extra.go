package verify

import (
	"github.com/hpcl-repro/epg/internal/graph"
)

// TriangleCount returns the number of unordered triangles in the
// homogenized graph (each counted once). Reference for the GAP
// engine's TC extension.
func TriangleCount(p *Prepared) int64 {
	var total int64
	n := p.Out.NumVertices
	for v := 0; v < n; v++ {
		adj := p.Out.Neighbors(graph.VID(v))
		for i := 0; i < len(adj); i++ {
			u := adj[i]
			if u <= graph.VID(v) {
				continue
			}
			for j := i + 1; j < len(adj); j++ {
				w := adj[j]
				if w <= u {
					continue
				}
				if p.Out.HasEdge(u, w) {
					total++
				}
			}
		}
	}
	return total
}

// BetweennessCentrality runs serial Brandes from the given sources,
// unnormalized, matching the GAP kernel's semantics.
func BetweennessCentrality(p *Prepared, sources []graph.VID) []float64 {
	n := p.Out.NumVertices
	bc := make([]float64, n)
	for _, s := range sources {
		sigma := make([]float64, n)
		dist := make([]int64, n)
		delta := make([]float64, n)
		for i := range dist {
			dist[i] = -1
		}
		sigma[s] = 1
		dist[s] = 0
		var order []graph.VID
		queue := []graph.VID{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, u := range p.Out.Neighbors(v) {
				if dist[u] == -1 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
				if dist[u] == dist[v]+1 {
					sigma[u] += sigma[v]
				}
			}
		}
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			for _, u := range p.Out.Neighbors(v) {
				if dist[u] == dist[v]+1 {
					delta[v] += sigma[v] / sigma[u] * (1 + delta[u])
				}
			}
			if v != s {
				bc[v] += delta[v]
			}
		}
	}
	return bc
}
