package report

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// SchedStudyRow is one cell of the scheduling-study table (the
// ROADMAP's "modeled time vs. policy across thread counts" figure):
// one kernel run under one scheduling policy, grain policy, placement
// model, and adjacency representation (raw CSR or delta+varint
// compressed) at one virtual thread count and socket count, with
// the modeled seconds the figure plots, the aggregate charged work
// (cycles/bytes/atomics summed over the run's regions — the raw
// quantities the cost model prices, which the CI drift gate diffs at
// full precision), and the wall-clock seconds this host happened to
// take (0 when not measured). Comparing the dynamic column against
// steal across the thread axis quantifies where the shared-counter
// policy serializes and stealing recovers; comparing steal against
// numa across the socket axis quantifies where flat stealing pays
// cross-socket penalties that two-level stealing avoids; and the
// grain × placement columns show where those locality effects reach
// *traversal* kernels — fixed grains leave BFS levels with too few
// chunks to steal at high thread counts, and without the first-touch
// placement model statically-assigned chunks never pay for
// remotely-placed data at all.
type SchedStudyRow struct {
	Kernel     string
	Sched      string
	Grain      string // "fixed" or "adaptive"
	Placement  string // "none" or "firsttouch"
	Freq       string // DVFS operating point ("turbo", "balanced", "powersave")
	Compress   string // adjacency representation: "off" (raw CSR) or "on" (delta+varint)
	Threads    int
	Sockets    int
	Nodes      int    // virtual cluster node count (1 = single box)
	Partition  string // cluster partition scheme ("none", "1d", "2d")
	Workers    int
	ModeledSec float64
	// Aggregate charged work over the whole run. Penalty charges
	// (remote steals, remote first-touch reads, dynamic claim atomics)
	// land here, so these columns drift whenever the cost accounting
	// does — even when duration rounding or an off-critical-path lane
	// hides the change from ModeledSec.
	Cycles  float64
	Bytes   float64
	Atomics float64
	// NetBytes is the modeled inter-node message traffic of the run
	// (zero on single-box rows). It is NOT part of Bytes: the byte
	// column keeps its historical meaning (DRAM traffic including the
	// network surcharge), while this column isolates what actually
	// crossed the modeled wire — the quantity the cluster rows rank
	// partitions by.
	NetBytes float64
	// Modeled energy over the run: the power model integrated over the
	// same region trace that produced ModeledSec (power.MeasureTrace).
	// Joules are pure functions of the trace and the (frequency-scaled)
	// calibration constants — bit-deterministic and host-independent —
	// so the CI drift gate pins the whole power model: any constant or
	// regionPower change drifts these columns. EDPJouleSec is
	// TotalJoules × ModeledSec, the energy-delay product the study
	// ranks operating points by.
	CPUJoules   float64
	RAMJoules   float64
	TotalJoules float64
	EDPJouleSec float64
	WallSec     float64
}

// SchedStudyCSVHeader is the column layout of WriteSchedStudyCSV.
const SchedStudyCSVHeader = "kernel,sched,grain,placement,freq,compress,threads,sockets,nodes,partition,workers,modeled_s,cycles,bytes,net_bytes,atomics,cpu_joules,ram_joules,total_joules,edp_js,wall_s"

// csvFloat renders v at the shortest precision that round-trips
// float64 exactly: readable for humans, bit-faithful for the CI
// drift gate's byte comparison.
func csvFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteSchedStudyCSV writes the scheduling-study table as CSV for
// external plotting, one row per (kernel, policy, grain, placement,
// frequency state, compress setting, thread count, socket count).
func WriteSchedStudyCSV(w io.Writer, rows []SchedStudyRow) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, SchedStudyCSVHeader)
	for _, r := range rows {
		fmt.Fprintf(bw, "%s,%s,%s,%s,%s,%s,%d,%d,%d,%s,%d,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s\n",
			r.Kernel, r.Sched, r.Grain, r.Placement, r.Freq, r.Compress, r.Threads, r.Sockets,
			r.Nodes, r.Partition, r.Workers,
			csvFloat(r.ModeledSec), csvFloat(r.Cycles), csvFloat(r.Bytes), csvFloat(r.NetBytes), csvFloat(r.Atomics),
			csvFloat(r.CPUJoules), csvFloat(r.RAMJoules), csvFloat(r.TotalJoules), csvFloat(r.EDPJouleSec),
			csvFloat(r.WallSec))
	}
	return bw.Flush()
}

// SchedStudyTable renders the same rows as an aligned text table, the
// quick-look companion to the CSV (charged-work columns omitted; they
// exist for the drift gate and external plotting).
func SchedStudyTable(w io.Writer, rows []SchedStudyRow) {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Kernel, r.Sched, r.Grain, r.Placement, r.Freq, r.Compress, fmt.Sprint(r.Threads), fmt.Sprint(r.Sockets),
			fmt.Sprint(r.Nodes), r.Partition,
			FormatSeconds(r.ModeledSec), fmt.Sprintf("%.4g", r.TotalJoules), fmt.Sprintf("%.4g", r.EDPJouleSec),
			FormatSeconds(r.WallSec),
		})
	}
	Table(w, "Scheduling study: modeled seconds, joules, and EDP by policy, grain, placement, freq, compress, threads, sockets, and nodes",
		[]string{"kernel", "sched", "grain", "placement", "freq", "compress", "threads", "sockets", "nodes", "partition", "modeled_s", "joules", "edp_js", "wall_s"}, out)
}
