package graphmat

import (
	"testing"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/kronecker"
	"github.com/hpcl-repro/epg/internal/simmachine"
	"github.com/hpcl-repro/epg/internal/verify"
)

func machine(threads int) *simmachine.Machine {
	return simmachine.New(simmachine.Haswell72(), threads)
}

func loadBuilt(t *testing.T, el *graph.EdgeList) *Instance {
	t.Helper()
	inst, err := New().Load(el, machine(4))
	if err != nil {
		t.Fatal(err)
	}
	inst.BuildStructure()
	return inst.(*Instance)
}

func TestMetadata(t *testing.T) {
	e := New()
	if e.Name() != "GraphMat" {
		t.Errorf("name = %q", e.Name())
	}
	if !e.SeparateConstruction() {
		t.Error("matrix construction is a separate phase")
	}
}

func TestDCSRSkipsEmptyRows(t *testing.T) {
	// Star graph 0->1,2,3 directed: the in-matrix has rows for
	// 1, 2, 3 only; the out-matrix only row 0.
	el := &graph.EdgeList{
		NumVertices: 8, // 4..7 isolated
		Directed:    true,
		Edges:       []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}},
	}
	inst := loadBuilt(t, el)
	if got := len(inst.inMat.rows); got != 3 {
		t.Errorf("in-matrix rows = %d, want 3", got)
	}
	if got := len(inst.outMat.rows); got != 1 {
		t.Errorf("out-matrix rows = %d, want 1", got)
	}
	if inst.inMat.nnz() != 3 || inst.outMat.nnz() != 3 {
		t.Errorf("nnz = %d/%d, want 3/3", inst.inMat.nnz(), inst.outMat.nnz())
	}
}

func TestUndirectedSharesMatrix(t *testing.T) {
	el := kronecker.Generate(kronecker.Params{Scale: 6, Seed: 1})
	inst := loadBuilt(t, el)
	if inst.inMat != inst.outMat {
		t.Error("undirected graph should share the symmetric matrix")
	}
}

func TestBFSChargesFullSweeps(t *testing.T) {
	// The SpMV formulation examines every stored nonzero each
	// level: EdgesExamined must be levels * nnz, far above the
	// graph's edge count.
	el := kronecker.Generate(kronecker.Params{Scale: 9, Seed: 5})
	p := verify.Prepare(el)
	inst := loadBuilt(t, el)
	var root graph.VID
	for v := 0; v < p.Out.NumVertices; v++ {
		if p.Out.Degree(graph.VID(v)) > 1 {
			root = graph.VID(v)
			break
		}
	}
	res, err := inst.BFS(root)
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgesExamined < 2*inst.inMat.nnz() {
		t.Errorf("examined %d, want at least 2 full sweeps of %d nnz", res.EdgesExamined, inst.inMat.nnz())
	}
	if err := verify.ValidateBFS(p, res, verify.BFS(p, root)); err != nil {
		t.Error(err)
	}
}

func TestPageRankRunsUntilNoChange(t *testing.T) {
	el := kronecker.Generate(kronecker.Params{Scale: 9, Seed: 3})
	p := verify.Prepare(el)
	ref := verify.PageRank(p, engines.PROpts{})
	inst := loadBuilt(t, el)
	res, err := inst.PageRank(engines.PROpts{})
	if err != nil {
		t.Fatal(err)
	}
	// At least as many iterations as the L1-stopped reference: the
	// ∞-norm rule is stricter (strictly more on larger graphs; see
	// the conformance suite's cross-engine iteration test).
	if res.Iterations < ref.Iterations {
		t.Errorf("GraphMat iterations %d below reference %d", res.Iterations, ref.Iterations)
	}
	if err := verify.ValidatePageRank(res, ref, 5e-3); err != nil {
		t.Error(err)
	}
}

func TestHasInRow(t *testing.T) {
	el := &graph.EdgeList{
		NumVertices: 6,
		Directed:    true,
		Edges:       []graph.Edge{{Src: 0, Dst: 2}, {Src: 1, Dst: 4}},
	}
	inst := loadBuilt(t, el)
	for _, v := range []graph.VID{2, 4} {
		if !hasInRow(inst.inMat, v) {
			t.Errorf("vertex %d should have an in-row", v)
		}
	}
	for _, v := range []graph.VID{0, 1, 3, 5} {
		if hasInRow(inst.inMat, v) {
			t.Errorf("vertex %d should not have an in-row", v)
		}
	}
}

func TestSSSPFloat32Distances(t *testing.T) {
	el := kronecker.Generate(kronecker.Params{Scale: 9, Seed: 11})
	p := verify.Prepare(el)
	inst := loadBuilt(t, el)
	var root graph.VID
	for v := 0; v < p.Out.NumVertices; v++ {
		if p.Out.Degree(graph.VID(v)) > 1 {
			root = graph.VID(v)
			break
		}
	}
	got, err := inst.SSSP(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.ValidateSSSP(p, got, verify.SSSP(p, root)); err != nil {
		t.Error(err)
	}
}

func TestConstructionSlowestAmongSeparatePhaseEngines(t *testing.T) {
	// Fig. 2's construction panel: GraphMat's build takes longer
	// than GAP's on the same graph (DCSR compression passes).
	el := kronecker.Generate(kronecker.Params{Scale: 12, Seed: 9})
	mGM := machine(32)
	instGM, _ := New().Load(el, mGM)
	instGM.BuildStructure()
	gmTime := mGM.Elapsed()
	if gmTime <= 0 {
		t.Fatal("no construction time charged")
	}
	// Compare against GAP-equivalent build charge: two passes of
	// cost {5,18} per edge vs GraphMat's 1.5 passes of {14,30}.
	// GraphMat must be slower.
	mRef := machine(32)
	mRef.ParallelFor(len(el.Edges), 4096, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
		w.Charge(simmachine.Cost{Cycles: 5, Bytes: 18}.Scale(2 * float64(hi-lo)))
	})
	if gmTime <= mRef.Elapsed() {
		t.Errorf("GraphMat construction (%v) not slower than GAP-like build (%v)", gmTime, mRef.Elapsed())
	}
}
