package logfmt

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// QueryRecord is one served query in the epgd daemon's structured log:
// a single key=value line per query, the serving-path analogue of the
// per-run engine logs this package normalizes.
type QueryRecord struct {
	Seq      int64
	Op       string
	Src      uint32
	Dst      uint32
	Status   string // ok | shed | deadline | panic | error
	Degraded bool
	// ModeledUS is the modeled service time in microseconds (0 for
	// queries shed at admission, which never reach an executor).
	ModeledUS float64
	// Depth is the admission queue depth observed at arrival.
	Depth int
}

// EmitQuery writes r as one line. Values round-trip through
// ParseQuery exactly: the float uses the shortest representation.
func EmitQuery(w io.Writer, r QueryRecord) error {
	_, err := fmt.Fprintf(w, "query seq=%d op=%s src=%d dst=%d status=%s degraded=%t modeled_us=%s depth=%d\n",
		r.Seq, r.Op, r.Src, r.Dst, r.Status, r.Degraded,
		strconv.FormatFloat(r.ModeledUS, 'g', -1, 64), r.Depth)
	return err
}

// ParseQuery parses one EmitQuery line.
func ParseQuery(line string) (QueryRecord, error) {
	var r QueryRecord
	line = strings.TrimSpace(line)
	fields := strings.Fields(line)
	if len(fields) == 0 || fields[0] != "query" {
		return r, fmt.Errorf("logfmt: not a query record: %q", line)
	}
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return r, fmt.Errorf("logfmt: bad field %q in query record", f)
		}
		var err error
		switch k {
		case "seq":
			r.Seq, err = strconv.ParseInt(v, 10, 64)
		case "op":
			r.Op = v
		case "src":
			var u uint64
			u, err = strconv.ParseUint(v, 10, 32)
			r.Src = uint32(u)
		case "dst":
			var u uint64
			u, err = strconv.ParseUint(v, 10, 32)
			r.Dst = uint32(u)
		case "status":
			r.Status = v
		case "degraded":
			r.Degraded, err = strconv.ParseBool(v)
		case "modeled_us":
			r.ModeledUS, err = strconv.ParseFloat(v, 64)
		case "depth":
			r.Depth, err = strconv.Atoi(v)
		default:
			return r, fmt.Errorf("logfmt: unknown query field %q", k)
		}
		if err != nil {
			return r, fmt.Errorf("logfmt: bad %s value %q: %v", k, v, err)
		}
	}
	return r, nil
}
