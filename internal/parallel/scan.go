package parallel

// scanSerialCutoff is the length below which ScanInt64 runs serially:
// the two-pass parallel scan reads and writes every element twice, so
// short arrays are faster (and allocate nothing) on one goroutine.
const scanSerialCutoff = 1 << 14

// ScanInt64 replaces xs with its exclusive prefix sum in place
// (xs[i] becomes the sum of the original xs[0:i]) and returns the
// total, using up to `workers` workers from the pool. The result is a
// pure function of the input: the array is split into one contiguous
// block per worker, block sums are combined serially in block order,
// and each block is rewritten independently — integer addition is
// associative, so the block boundaries cannot change the output.
//
// This is the merge step of the atomic-free CSR builder (per-worker
// degree histograms become offsets) and of Bitmap.ToSlice (per-chunk
// set-bit counts become write cursors).
func ScanInt64(p *Pool, workers int, xs []int64) int64 {
	n := len(xs)
	if workers > n/scanSerialCutoff {
		workers = n / scanSerialCutoff
	}
	if workers <= 1 || p == nil {
		var run int64
		for i := range xs {
			v := xs[i]
			xs[i] = run
			run += v
		}
		return run
	}

	// Block boundaries: ceil division keeps every block non-empty for
	// workers <= n.
	block := (n + workers - 1) / workers
	sums := make([]int64, workers)
	p.Run(workers, func(w int) {
		lo, hi := blockRange(n, block, w)
		var s int64
		for i := lo; i < hi; i++ {
			s += xs[i]
		}
		sums[w] = s
	})
	var total int64
	for w := range sums {
		s := sums[w]
		sums[w] = total
		total += s
	}
	p.Run(workers, func(w int) {
		lo, hi := blockRange(n, block, w)
		run := sums[w]
		for i := lo; i < hi; i++ {
			v := xs[i]
			xs[i] = run
			run += v
		}
	})
	return total
}

// blockRange returns worker w's half-open block of [0, n).
func blockRange(n, block, w int) (lo, hi int) {
	lo = w * block
	hi = lo + block
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}
