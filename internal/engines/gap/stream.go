package gap

import (
	"fmt"
	"math"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/parallel"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// Streaming-mutation cost constants. The maintenance rates reuse the
// kernels' per-item magnitudes (a recomputed pull row costs what the
// kernel charges a pull row), so incremental-vs-recompute comparisons
// in the stream study measure work saved, not a different price list.
var (
	// Batch replay: one op is a hash probe plus a binary search in the
	// current row.
	costMutOp = simmachine.Cost{Cycles: 40, Bytes: 32}
	// Row rebuild: merging one entry of a dirty row vs bulk-copying
	// one entry of a clean row.
	costMutRowEdge  = simmachine.Cost{Cycles: 6, Bytes: 20}
	costMutCopyEdge = simmachine.Cost{Cycles: 1, Bytes: 8}
	// PR patching: recomputing one contrib/dangling vertex and one L1
	// vertex, at the kernel's own rates (3cy/16B and 4cy/16B).
	costPRContrib = simmachine.Cost{Cycles: 3, Bytes: 16}
	costPRL1      = simmachine.Cost{Cycles: 4, Bytes: 16}
	// WCC repair: classifying one vertex against the affected-label
	// set, one DSU union over an inserted edge, and the final
	// label-resolution pass per vertex.
	costCCSVertex = simmachine.Cost{Cycles: 4, Bytes: 16}
	costCCUnion   = simmachine.Cost{Cycles: 20, Bytes: 24}
	costCCRelabel = simmachine.Cost{Cycles: 2, Bytes: 16}
)

// SupportsMutations implements engines.MutationSupporter: GAP
// instances implement engines.Streamer.
func (e *Engine) SupportsMutations() bool { return true }

// streamState is the mutation overlay: dirty sets accumulated across
// Mutate calls plus the cached baselines the incremental maintainers
// patch against. Allocated lazily — plain static runs never pay for
// it.
type streamState struct {
	// prTraj is the recorded per-iteration PageRank trajectory of the
	// last (in)cremental run; degDirty / inDirty are the rows whose
	// out-degree / in-membership changed since it was recorded.
	prTraj   *prTrajectory
	degDirty map[graph.VID]struct{}
	inDirty  map[graph.VID]struct{}
	// wccLab is the component labeling of the last IncrementalWCC;
	// wccAdds / wccDels are the net edge changes since.
	wccLab  []graph.VID
	wccAdds []graph.Edge
	wccDels []graph.Edge
}

func (inst *Instance) streamState() *streamState {
	if inst.stream == nil {
		inst.stream = &streamState{
			degDirty: make(map[graph.VID]struct{}),
			inDirty:  make(map[graph.VID]struct{}),
		}
	}
	return inst.stream
}

// OutCSR returns the current-epoch out-adjacency. Callers traversing
// the structure directly (the serving daemon's k-hop path) re-fetch it
// after mutations; previous epochs stay frozen.
func (inst *Instance) OutCSR() *graph.CSR {
	inst.ensureBuilt()
	return inst.out
}

// Mutate implements engines.Streamer: it applies the batch to the out-
// (and, for directed graphs, in-) adjacency through the epoch-rebuild
// overlay, recompresses when the compressed siblings are live, and
// accumulates the dirty sets the incremental maintainers consume. The
// replay is charged serially per op; the row rebuild is charged as a
// uniform parallel merge over touched entries.
func (inst *Instance) Mutate(batch graph.Batch) (*engines.MutationReport, error) {
	inst.ensureBuilt()
	st := inst.streamState()
	directed := inst.in != inst.out

	mo := graph.NewMutableCSR(inst.out, directed)
	res, err := mo.Apply(batch)
	if err != nil {
		return nil, err
	}
	edgesTouched, copied := res.EdgesTouched, res.CopiedEdges
	var resIn *graph.ApplyResult
	var mi *graph.MutableCSR
	if directed {
		mi = graph.NewMutableCSR(inst.in, true)
		resIn, err = mi.Apply(batch.Reversed())
		if err != nil {
			// The reversed batch validates identically to the forward
			// one, so this is unreachable; guard anyway rather than
			// tear the pair.
			return nil, fmt.Errorf("gap: in-adjacency apply diverged: %w", err)
		}
		edgesTouched += resIn.EdgesTouched
		copied += resIn.CopiedEdges
	}

	// Both applies succeeded: swap epochs.
	inst.out = mo.CSR()
	if directed {
		inst.in = mi.CSR()
	} else {
		inst.in = inst.out
	}
	inst.mEdges = inst.out.NumEdges()

	inst.m.ChargeSerial(costMutOp.Scale(float64(len(batch))))
	inst.m.ChargeUniform(int(edgesTouched), 4096, simmachine.Dynamic, costMutRowEdge)
	inst.m.ChargeUniform(int(copied), 4096, simmachine.Dynamic, costMutCopyEdge)

	if inst.eng.Compress {
		// The compressed siblings are rebuilt whole; mutation-aware
		// re-encoding of dirty rows only is a named follow-up.
		inst.m.ChargeUniform(int(inst.out.NumEdges()), 4096, simmachine.Dynamic, costCompressEdge)
		inst.cout = graph.CompressCSR(inst.out, 0)
		if directed {
			inst.m.ChargeUniform(int(inst.in.NumEdges()), 4096, simmachine.Dynamic, costCompressEdge)
			inst.cin = graph.CompressCSR(inst.in, 0)
		} else {
			inst.cin = inst.cout
		}
	}

	// Accumulate dirty state. Contrib depends on out-degree only;
	// pull rows on in-membership; WCC on the net edge changes.
	for _, v := range res.DegChanged {
		st.degDirty[v] = struct{}{}
	}
	inStruct := res.StructRows
	if directed {
		inStruct = resIn.StructRows
	}
	for _, v := range inStruct {
		st.inDirty[v] = struct{}{}
	}
	st.wccAdds = append(st.wccAdds, res.AddedEdges...)
	st.wccDels = append(st.wccDels, res.RemovedEdges...)

	return &engines.MutationReport{
		Stats:        res.Stats,
		DirtyRows:    len(res.DirtyRows),
		EdgesTouched: edgesTouched,
	}, nil
}

// prIter is one recorded PageRank iteration: the rank vector after the
// swap plus every intermediate the kernel folds — per-chunk dangling
// and L1 partials and their chunk-ordered sums — so a replay can patch
// any subset of chunks and still reproduce the fold bit for bit.
type prIter struct {
	rank      []float64
	dangParts []float64
	dangling  float64
	base      float64
	l1Parts   []float64
	l1        float64
}

// prTrajectory is the memoized trajectory of one PageRank run.
type prTrajectory struct {
	opts       engines.PROpts
	dangChunks int
	l1Chunks   int
	iters      []prIter
}

// record snapshots one iteration from inside the kernel (pr.go calls
// it when recording is armed). It copies; the kernel reuses its
// buffers.
func (t *prTrajectory) record(rank []float64, dr, lr *parallel.Reducer[float64], dangChunks, l1Chunks int, dangling, base, l1 float64) {
	it := prIter{
		rank:      append([]float64(nil), rank...),
		dangParts: make([]float64, dangChunks),
		l1Parts:   make([]float64, l1Chunks),
		dangling:  dangling,
		base:      base,
		l1:        l1,
	}
	for c := 0; c < dangChunks; c++ {
		it.dangParts[c] = *dr.At(c)
	}
	for c := 0; c < l1Chunks; c++ {
		it.l1Parts[c] = *lr.At(c)
	}
	t.dangChunks, t.l1Chunks = dangChunks, l1Chunks
	t.iters = append(t.iters, it)
}

// recordedPageRank runs the full kernel with trajectory recording
// armed and installs the result as the new baseline. Recording only
// copies state the kernel already computed, so the modeled cost is
// exactly the full run's.
func (inst *Instance) recordedPageRank(opts engines.PROpts) (*engines.PRResult, error) {
	st := inst.streamState()
	traj := &prTrajectory{opts: opts}
	inst.prRec = traj
	res, err := inst.PageRank(opts)
	inst.prRec = nil
	if err != nil {
		return nil, err
	}
	st.prTraj = traj
	st.degDirty = make(map[graph.VID]struct{})
	st.inDirty = make(map[graph.VID]struct{})
	return res, nil
}

// IncrementalPageRank implements engines.Streamer. It re-converges
// from the recorded trajectory of the previous run with sweeps
// restricted to the dirty frontier: per iteration it recomputes only
// the dangling-partial chunks, pull rows, and L1 chunks whose inputs
// changed, splicing cached partials everywhere else and folding in
// chunk order — so every dangling sum, base value, rank entry, L1
// norm, and convergence decision is bit-equal to a cold PageRank on
// the post-batch graph. The patched trajectory becomes the new
// baseline. Without a baseline (first call, or changed opts/grain
// geometry) it runs the recording full kernel.
func (inst *Instance) IncrementalPageRank(opts engines.PROpts) (*engines.PRResult, error) {
	inst.ensureBuilt()
	opts = opts.Normalize()
	n := inst.n
	if n == 0 {
		return &engines.PRResult{}, nil
	}
	st := inst.streamState()
	gContrib := inst.m.Grain(n, 2048, 1)
	gPull := inst.m.Grain(n, 1024, 1)
	gL1 := inst.m.Grain(n, 4096, 1)
	dangChunks := parallel.NumChunks(n, gContrib)
	l1Chunks := parallel.NumChunks(n, gL1)

	traj := st.prTraj
	if traj == nil || traj.opts != opts || traj.dangChunks != dangChunks || traj.l1Chunks != l1Chunks || len(traj.iters) == 0 {
		return inst.recordedPageRank(opts)
	}
	if len(st.degDirty) == 0 && len(st.inDirty) == 0 {
		// No structural drift since the baseline: the cached run IS
		// the post-batch run.
		last := traj.iters[len(traj.iters)-1]
		return &engines.PRResult{
			Rank:       append([]float64(nil), last.rank...),
			Iterations: len(traj.iters),
		}, nil
	}

	if err := inst.checkCancel("IncrementalPageRank"); err != nil {
		return nil, err
	}

	inv := 1.0 / float64(n)
	outDeg := inst.out.OutDegrees() // post-batch degrees

	// degDirtyList: vertices whose contrib can differ from cache even
	// with an unchanged rank. inRows: rows whose in-neighborhood
	// membership changed, recomputed every iteration.
	degDirtyList := make([]graph.VID, 0, len(st.degDirty))
	for v := range st.degDirty {
		degDirtyList = append(degDirtyList, v)
	}
	inRows := make([]graph.VID, 0, len(st.inDirty))
	for v := range st.inDirty {
		inRows = append(inRows, v)
	}

	// prev is the replay's rank_{t-1}, maintained bit-equal to the
	// cold post-batch run's by induction (both runs start uniform).
	prev := make([]float64, n)
	for i := range prev {
		prev[i] = inv
	}
	// changed lists the vertices where prev differs from the cached
	// rank_{t-1}; empty at t=1.
	var changed []graph.VID

	newTraj := &prTrajectory{opts: opts, dangChunks: dangChunks, l1Chunks: l1Chunks}
	rowMark := make([]bool, n)
	chunkMark := make([]bool, dangChunks)
	l1Mark := make([]bool, l1Chunks)

	serialSum := func(v graph.VID, base float64) float64 {
		// Bitwise the kernel's per-vertex pull: contrib computed on
		// demand from prev, zero for dangling in-neighbors, summed in
		// sorted adjacency order.
		sum := 0.0
		for _, u := range inst.in.Neighbors(v) {
			c := 0.0
			if d := outDeg[u]; d != 0 {
				c = prev[u] / float64(d)
			}
			sum += c
		}
		return base + opts.Damping*sum
	}

	iterations := 0
	beyondCache := false
	for t := 1; t <= opts.MaxIter; t++ {
		if beyondCache || t > len(traj.iters) {
			beyondCache = true
			// Past the recorded horizon: no cache to patch against.
			// Emulate the kernel's full iteration serially with the
			// same chunk partials and fold order, at full kernel
			// rates.
			cur, it := inst.prFullIterEmulated(prev, outDeg, opts, inv, gContrib, gPull, gL1, dangChunks, l1Chunks)
			newTraj.iters = append(newTraj.iters, it)
			prev = cur
			iterations = t
			if it.l1 < opts.Epsilon {
				break
			}
			continue
		}
		ci := &traj.iters[t-1]

		// Dangling partials: chunks containing a changed-rank or
		// degree-dirty vertex recompute; the rest splice the cached
		// partial. Fold in chunk order.
		for _, v := range changed {
			chunkMark[int(v)/gContrib] = true
		}
		for _, v := range degDirtyList {
			chunkMark[int(v)/gContrib] = true
		}
		dangling := 0.0
		var dangVerts int
		it := prIter{dangParts: make([]float64, dangChunks)}
		for c := 0; c < dangChunks; c++ {
			p := ci.dangParts[c]
			if chunkMark[c] {
				chunkMark[c] = false
				lo := c * gContrib
				hi := lo + gContrib
				if hi > n {
					hi = n
				}
				p = 0
				for v := lo; v < hi; v++ {
					if outDeg[v] == 0 {
						p += prev[v]
					}
				}
				dangVerts += hi - lo
			}
			it.dangParts[c] = p
			dangling += p
		}
		base := (1-opts.Damping)*inv + opts.Damping*dangling*inv
		it.dangling, it.base = dangling, base
		inst.m.ChargeUniform(dangVerts, gContrib, simmachine.Dynamic, costPRContrib)

		var cur []float64
		var newChanged []graph.VID
		if dangling != ci.dangling {
			// The base moved: every rank entry can differ. Full pull
			// sweep at kernel rates.
			cur = make([]float64, n)
			for v := 0; v < n; v++ {
				cur[v] = serialSum(graph.VID(v), base)
				if cur[v] != ci.rank[v] {
					newChanged = append(newChanged, graph.VID(v))
				}
			}
			inst.m.ChargeUniform(n, gPull, simmachine.Dynamic, costPRVertex)
			inst.m.ChargeUniform(int(inst.in.NumEdges()), 4096, simmachine.Dynamic, costPREdge)
		} else {
			// Restricted sweep: rows with changed in-membership plus
			// post-graph out-neighbors of any contrib-dirty vertex.
			rows := make([]graph.VID, 0, len(inRows))
			mark := func(v graph.VID) {
				if !rowMark[v] {
					rowMark[v] = true
					rows = append(rows, v)
				}
			}
			for _, v := range inRows {
				mark(v)
			}
			for _, u := range changed {
				for _, v := range inst.out.Neighbors(u) {
					mark(v)
				}
			}
			for _, u := range degDirtyList {
				for _, v := range inst.out.Neighbors(u) {
					mark(v)
				}
			}
			cur = append([]float64(nil), ci.rank...)
			var pullEdges int64
			for _, v := range rows {
				rowMark[v] = false
				cur[v] = serialSum(v, base)
				pullEdges += inst.in.Degree(v)
				if cur[v] != ci.rank[v] {
					newChanged = append(newChanged, v)
				}
			}
			inst.m.ChargeUniform(len(rows), gPull, simmachine.Dynamic, costPRVertex)
			inst.m.ChargeUniform(int(pullEdges), 4096, simmachine.Dynamic, costPREdge)
		}
		it.rank = cur

		// L1 partials: chunks containing a vertex whose prev or cur
		// differs from cache recompute; fold in chunk order.
		for _, v := range changed {
			l1Mark[int(v)/gL1] = true
		}
		for _, v := range newChanged {
			l1Mark[int(v)/gL1] = true
		}
		l1 := 0.0
		var l1Verts int
		it.l1Parts = make([]float64, l1Chunks)
		for c := 0; c < l1Chunks; c++ {
			p := ci.l1Parts[c]
			if l1Mark[c] {
				l1Mark[c] = false
				lo := c * gL1
				hi := lo + gL1
				if hi > n {
					hi = n
				}
				p = 0
				for v := lo; v < hi; v++ {
					p += math.Abs(cur[v] - prev[v])
				}
				l1Verts += hi - lo
			}
			it.l1Parts[c] = p
			l1 += p
		}
		it.l1 = l1
		inst.m.ChargeUniform(l1Verts, gL1, simmachine.Dynamic, costPRL1)

		newTraj.iters = append(newTraj.iters, it)
		prev = cur
		changed = newChanged
		iterations = t
		if l1 < opts.Epsilon {
			break
		}
	}

	st.prTraj = newTraj
	st.degDirty = make(map[graph.VID]struct{})
	st.inDirty = make(map[graph.VID]struct{})
	return &engines.PRResult{
		Rank:       append([]float64(nil), prev...),
		Iterations: iterations,
	}, nil
}

// prFullIterEmulated computes one full PageRank iteration serially
// with the kernel's exact arithmetic: per-chunk dangling partials
// folded in chunk order, per-vertex pulls in sorted adjacency order,
// per-chunk L1 partials folded in chunk order. Charged at full kernel
// rates — an iteration past the recorded horizon saves nothing.
func (inst *Instance) prFullIterEmulated(prev []float64, outDeg []int64, opts engines.PROpts, inv float64, gContrib, gPull, gL1, dangChunks, l1Chunks int) ([]float64, prIter) {
	n := inst.n
	it := prIter{
		dangParts: make([]float64, dangChunks),
		l1Parts:   make([]float64, l1Chunks),
	}
	dangling := 0.0
	for c := 0; c < dangChunks; c++ {
		lo := c * gContrib
		hi := lo + gContrib
		if hi > n {
			hi = n
		}
		p := 0.0
		for v := lo; v < hi; v++ {
			if outDeg[v] == 0 {
				p += prev[v]
			}
		}
		it.dangParts[c] = p
		dangling += p
	}
	base := (1-opts.Damping)*inv + opts.Damping*dangling*inv
	it.dangling, it.base = dangling, base
	inst.m.ChargeUniform(n, gContrib, simmachine.Dynamic, costPRContrib)

	cur := make([]float64, n)
	for v := 0; v < n; v++ {
		sum := 0.0
		for _, u := range inst.in.Neighbors(graph.VID(v)) {
			c := 0.0
			if d := outDeg[u]; d != 0 {
				c = prev[u] / float64(d)
			}
			sum += c
		}
		cur[v] = base + opts.Damping*sum
	}
	inst.m.ChargeUniform(n, gPull, simmachine.Dynamic, costPRVertex)
	inst.m.ChargeUniform(int(inst.in.NumEdges()), 4096, simmachine.Dynamic, costPREdge)

	l1 := 0.0
	for c := 0; c < l1Chunks; c++ {
		lo := c * gL1
		hi := lo + gL1
		if hi > n {
			hi = n
		}
		p := 0.0
		for v := lo; v < hi; v++ {
			p += math.Abs(cur[v] - prev[v])
		}
		it.l1Parts[c] = p
		l1 += p
	}
	it.l1 = l1
	inst.m.ChargeUniform(n, gL1, simmachine.Dynamic, costPRL1)

	it.rank = cur
	return cur, it
}

// IncrementalWCC implements engines.Streamer. Inserts union component
// labels through a min-rooted DSU; deletes recompute the affected
// components — the full baseline components of every removed edge's
// endpoints — by serial BFS over the post-batch adjacency restricted
// to that set, from ascending roots (so each piece is labeled by its
// minimum vertex, the kernel's canonical form). No baseline edge
// crosses the affected set's boundary (components are closed), and
// inserted edges that do are handled by the DSU pass, so the result is
// exactly the kernel's labeling of the post-batch graph. The output
// becomes the new baseline.
func (inst *Instance) IncrementalWCC() (*engines.WCCResult, error) {
	inst.ensureBuilt()
	st := inst.streamState()
	if st.wccLab == nil {
		res, err := inst.WCC()
		if err != nil {
			return nil, err
		}
		st.wccLab = append([]graph.VID(nil), res.Component...)
		st.wccAdds, st.wccDels = nil, nil
		return res, nil
	}
	n := inst.n
	if len(st.wccAdds) == 0 && len(st.wccDels) == 0 {
		return &engines.WCCResult{Component: append([]graph.VID(nil), st.wccLab...)}, nil
	}
	if err := inst.checkCancel("IncrementalWCC"); err != nil {
		return nil, err
	}

	lab := st.wccLab
	newlab := append([]graph.VID(nil), lab...)
	directed := inst.in != inst.out

	if len(st.wccDels) > 0 {
		// Affected components: baseline labels of every removed
		// edge's endpoints; S is their full vertex set.
		affected := make(map[graph.VID]struct{})
		for _, e := range st.wccDels {
			affected[lab[e.Src]] = struct{}{}
			affected[lab[e.Dst]] = struct{}{}
		}
		inS := make([]bool, n)
		var S []graph.VID
		for v := 0; v < n; v++ {
			if _, ok := affected[lab[v]]; ok {
				inS[v] = true
				S = append(S, graph.VID(v))
			}
		}
		inst.m.ChargeUniform(n, 2048, simmachine.Dynamic, costCCRelabel)

		// Serial BFS over post-batch adjacency restricted to S, roots
		// ascending: the first unvisited vertex of each piece is its
		// minimum, so labels come out canonical.
		visited := make([]bool, n)
		var bfsEdges int64
		q := make([]graph.VID, 0, 64)
		for _, root := range S {
			if visited[root] {
				continue
			}
			visited[root] = true
			newlab[root] = root
			q = append(q[:0], root)
			for head := 0; head < len(q); head++ {
				v := q[head]
				for _, u := range inst.out.Neighbors(v) {
					bfsEdges++
					if inS[u] && !visited[u] {
						visited[u] = true
						newlab[u] = root
						q = append(q, u)
					}
				}
				if directed {
					for _, u := range inst.in.Neighbors(v) {
						bfsEdges++
						if inS[u] && !visited[u] {
							visited[u] = true
							newlab[u] = root
							q = append(q, u)
						}
					}
				}
			}
		}
		inst.m.ChargeSerial(costCCSVertex.Scale(float64(len(S))))
		inst.m.ChargeSerial(costCCEdge.Scale(float64(bfsEdges)))
	}

	// Union over inserted edges: a min-rooted DSU on component labels,
	// so merged components keep the global minimum as representative.
	parent := make(map[graph.VID]graph.VID)
	find := func(x graph.VID) graph.VID {
		root := x
		for {
			p, ok := parent[root]
			if !ok {
				break
			}
			root = p
		}
		for x != root {
			p := parent[x]
			parent[x] = root
			x = p
		}
		return root
	}
	for _, e := range st.wccAdds {
		a, b := find(newlab[e.Src]), find(newlab[e.Dst])
		if a == b {
			continue
		}
		if a < b {
			parent[b] = a
		} else {
			parent[a] = b
		}
	}
	inst.m.ChargeSerial(costCCUnion.Scale(float64(len(st.wccAdds))))

	comp := make([]graph.VID, n)
	for v := 0; v < n; v++ {
		comp[v] = find(newlab[v])
	}
	inst.m.ChargeUniform(n, 2048, simmachine.Dynamic, costCCRelabel)

	st.wccLab = append(st.wccLab[:0], comp...)
	st.wccAdds, st.wccDels = nil, nil
	return &engines.WCCResult{Component: comp}, nil
}
