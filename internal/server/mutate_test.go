package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/hpcl-repro/epg/internal/graph"
)

// postJSON posts a JSON body and decodes the response.
func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

// testBatch deletes one present edge and inserts two absent ones.
func testBatch(t *testing.T, s *Server) graph.Batch {
	t.Helper()
	c := s.csr
	var v0 graph.VID
	for int(v0) < c.NumVertices && c.Degree(v0) == 0 {
		v0++
	}
	if int(v0) == c.NumVertices {
		t.Fatal("empty graph")
	}
	n := graph.VID(c.NumVertices)
	pick := func(start graph.VID) graph.VID {
		for u := start; ; u = (u + 1) % n {
			if u != v0 && !c.HasEdge(v0, u) {
				return u
			}
		}
	}
	a := pick(v0 + 1)
	b := pick(a + 1)
	return graph.Batch{
		{Op: graph.MutDelete, Src: v0, Dst: c.Neighbors(v0)[0]},
		{Op: graph.MutInsert, Src: v0, Dst: a, W: 0.5},
		{Op: graph.MutInsert, Src: v0, Dst: b, W: 0.25},
	}
}

// After a mutate, every query kind must answer exactly as a server
// freshly built on the post-batch graph would.
func TestMutateAnswersMatchFreshServer(t *testing.T) {
	s := startServer(t, Config{Executors: 2})
	batch := testBatch(t, s)
	ctx := context.Background()
	rep, err := s.Mutate(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Deleted != 1 || rep.Stats.Inserted != 2 {
		t.Fatalf("batch stats %+v", rep.Stats)
	}
	if s.SketchGeneration() != 2 {
		t.Fatalf("sketch generation %d after mutate, want 2", s.SketchGeneration())
	}

	// Reference: a server started directly on the post-batch edge list.
	shadow := graph.NewMutableCSR(s.csr, s.el.Directed)
	if _, err := shadow.Apply(batch); err != nil {
		t.Fatal(err)
	}
	post := shadow.CSR()
	postEL := &graph.EdgeList{NumVertices: post.NumVertices, Weighted: post.Weights != nil, Directed: s.el.Directed}
	for v := 0; v < post.NumVertices; v++ {
		ws := post.NeighborWeights(graph.VID(v))
		for i, u := range post.Neighbors(graph.VID(v)) {
			if !s.el.Directed && u < graph.VID(v) {
				continue
			}
			e := graph.Edge{Src: graph.VID(v), Dst: u}
			if ws != nil {
				e.W = ws[i]
			}
			postEL.Edges = append(postEL.Edges, e)
		}
	}
	ref, err := NewFromEdgeList(postEL, Config{Executors: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	for _, q := range []Query{
		{Op: OpPR, Source: 3},
		{Op: OpPR, Source: 0},
		{Op: OpWCC, Source: 0, Target: 9},
		{Op: OpBFS, Source: 0, Target: 9},
		{Op: OpSSSP, Source: 0, Target: 9},
		{Op: OpKHop, Source: 0, K: 2},
	} {
		got := s.Submit(ctx, q)
		want := ref.Submit(ctx, q)
		if got.Status != StatusOK || want.Status != StatusOK {
			t.Fatalf("%s: status %q / %q", q.Op, got.Status, want.Status)
		}
		if got.Value != want.Value {
			t.Errorf("%s src=%d dst=%d: mutated server answers %v, fresh server %v",
				q.Op, q.Source, q.Target, got.Value, want.Value)
		}
	}
}

// Queries racing a live mutate are never dropped: every response is a
// legitimate outcome (no errors), and the server stays consistent.
func TestMutateDoesNotDropConcurrentQueries(t *testing.T) {
	s := startServer(t, Config{Executors: 2, Admit: AdmitConfig{QueueCap: 256}})
	batch := testBatch(t, s)
	ctx := context.Background()
	const queries = 60
	var wg sync.WaitGroup
	errs := make(chan string, queries)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Mutate(ctx, batch); err != nil {
			errs <- "mutate: " + err.Error()
		}
	}()
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := Query{Op: OpPR, Source: graph.VID(i % s.NumVertices())}
			if i%3 == 0 {
				q = Query{Op: OpBFS, Source: graph.VID(i % s.NumVertices()), Target: 1}
			}
			resp := s.Submit(ctx, q)
			if resp.Status != StatusOK {
				errs <- string(q.Op) + ": " + string(resp.Status) + " " + resp.Err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	m := s.Metrics()
	if got := m.Completed + m.DeadlineExceeded + m.Errors + m.Panics; got != m.Admitted {
		t.Errorf("outcome identity broken: %d outcomes, %d admitted", got, m.Admitted)
	}
}

// The HTTP mutate endpoint: applies a batch, reports stats, bumps the
// sketch generation; malformed bodies and batches are the client's 400.
func TestHTTPMutate(t *testing.T) {
	s, ts := startHTTP(t, Config{Executors: 1})
	var ops []map[string]any
	for _, mu := range testBatch(t, s) {
		kind := "insert"
		if mu.Op == graph.MutDelete {
			kind = "delete"
		}
		ops = append(ops, map[string]any{
			"op": kind, "src": int(mu.Src), "dst": int(mu.Dst), "w": mu.W,
		})
	}
	var out struct {
		Status    string `json:"status"`
		Inserted  int    `json:"inserted"`
		Deleted   int    `json:"deleted"`
		SketchGen uint64 `json:"sketch_gen"`
	}
	if code := postJSON(t, ts.URL+"/v1/mutate", map[string]any{"ops": ops}, &out); code != 200 {
		t.Fatalf("mutate: HTTP %d", code)
	}
	if out.Status != "ok" || out.Inserted != 2 || out.Deleted != 1 || out.SketchGen != 2 {
		t.Fatalf("mutate response %+v", out)
	}

	var e apiError
	if code := postJSON(t, ts.URL+"/v1/mutate", map[string]any{"ops": []map[string]any{
		{"op": "teleport", "src": 0, "dst": 1},
	}}, &e); code != 400 || e.Code != codeInvalidQuery {
		t.Fatalf("unknown op kind: HTTP %d code %q", code, e.Code)
	}
	if code := postJSON(t, ts.URL+"/v1/mutate", map[string]any{"ops": []map[string]any{
		{"op": "insert", "src": 0, "dst": 99999999},
	}}, &e); code != 400 || e.Code != codeInvalidQuery {
		t.Fatalf("out-of-range mutation: HTTP %d code %q", code, e.Code)
	}
	resp, err := http.Post(ts.URL+"/v1/mutate", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad body: HTTP %d", resp.StatusCode)
	}
}

// A mutate arriving while the bounded queue is full is shed like any
// other maintenance: 429 with agreeing Retry-After header and body.
func TestHTTPMutateShed(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	openGate := func() { once.Do(func() { close(gate) }) }
	s, err := NewFromEdgeList(testEdgeList(t), Config{
		Executors: 1,
		Admit:     AdmitConfig{QueueCap: 1, DegradeWatermark: 1},
		QueryLog:  &gateWriter{gate: gate},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	defer openGate()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	wedged := make(chan struct{})
	go func() {
		defer close(wedged)
		if resp, err := http.Get(ts.URL + "/query?op=bfs&src=0&dst=1"); err == nil {
			resp.Body.Close()
		}
	}()
	waitUntil(t, func() bool { return s.Metrics().Admitted == 1 && s.QueueDepth() == 0 })
	fill := make(chan struct{})
	go func() {
		defer close(fill)
		if resp, err := http.Get(ts.URL + "/query?op=bfs&src=2&dst=1"); err == nil {
			resp.Body.Close()
		}
	}()
	waitUntil(t, func() bool { return s.Metrics().Admitted == 2 })

	b, _ := json.Marshal(map[string]any{"ops": []map[string]any{{"op": "insert", "src": 0, "dst": 1, "w": 0.5}}})
	resp, err := http.Post(ts.URL+"/v1/mutate", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 429 {
		t.Fatalf("mutate on full queue: HTTP %d, want 429", resp.StatusCode)
	}
	var e apiError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != codeShed || e.RetryAfterMS != shedRetryAfterMS {
		t.Errorf("shed body %+v", e)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	openGate()
	<-wedged
	<-fill
}

// The incremental swap must not re-pay structure construction: the
// modeled cost of a small mutate (apply + incremental PR/WCC + swap)
// stays strictly below a fresh executor's build + full recompute.
func TestMutateCheaperThanFullRecompute(t *testing.T) {
	s := startServer(t, Config{Executors: 1})
	e := s.execs[0]
	batch := testBatch(t, s)
	before := e.m.Elapsed()
	if _, err := s.Mutate(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	incCost := e.m.Elapsed() - before

	// The displaced alternative: what startup paid to build structures
	// and compute vectors from scratch (construction included).
	ref, err := newExecutor(99, s.el, s.csr, s.cfg.Threads, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.computeVectors(); err != nil {
		t.Fatal(err)
	}
	fullCost := ref.m.Elapsed()
	if incCost >= fullCost {
		t.Fatalf("incremental mutate swap (%v) not cheaper than build+recompute (%v)", incCost, fullCost)
	}
}

// A refresh with no pending mutations swaps cached vectors: it must
// not re-run the full kernels (the old behavior double-charged a full
// PR+WCC on every refresh), only the sketch rebuild remains unmodeled.
func TestRefreshDoesNotRecomputeWithoutMutations(t *testing.T) {
	s := startServer(t, Config{Executors: 1})
	e := s.execs[0]
	before := e.m.Elapsed()
	if err := s.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	if after := e.m.Elapsed(); after != before {
		t.Fatalf("no-op refresh moved the executor's modeled clock: %v -> %v", before, after)
	}
	if s.SketchGeneration() != 2 {
		t.Fatalf("refresh did not bump sketch generation: %d", s.SketchGeneration())
	}
}

// Closed servers reject mutates with the typed error.
func TestMutateClosed(t *testing.T) {
	s := startServer(t, Config{Executors: 1})
	s.Close()
	if _, err := s.Mutate(context.Background(), graph.Batch{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("mutate after close: %v", err)
	}
}
