package server

import "sync/atomic"

// Metrics are the daemon's cumulative counters. All fields are atomic;
// Snapshot returns a consistent-enough copy for reporting (individual
// loads — serving metrics, not an invariant ledger; the exact
// offered = admitted + shed identity is asserted where admission is
// serialized, in the admitter and the virtual-time simulation).
type Metrics struct {
	Offered          atomic.Int64
	Admitted         atomic.Int64
	ShedQueueFull    atomic.Int64
	ShedThrottled    atomic.Int64
	Rejected         atomic.Int64 // invalid queries (400s)
	Degraded         atomic.Int64
	DeadlineExceeded atomic.Int64
	Panics           atomic.Int64
	Errors           atomic.Int64
	Completed        atomic.Int64
}

// MetricsSnapshot is the plain-struct view served by /metrics.
type MetricsSnapshot struct {
	Offered          int64 `json:"offered"`
	Admitted         int64 `json:"admitted"`
	ShedQueueFull    int64 `json:"shed_queue_full"`
	ShedThrottled    int64 `json:"shed_throttled"`
	Rejected         int64 `json:"rejected"`
	Degraded         int64 `json:"degraded"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	Panics           int64 `json:"panics"`
	Errors           int64 `json:"errors"`
	Completed        int64 `json:"completed"`
}

// Snapshot copies the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Offered:          m.Offered.Load(),
		Admitted:         m.Admitted.Load(),
		ShedQueueFull:    m.ShedQueueFull.Load(),
		ShedThrottled:    m.ShedThrottled.Load(),
		Rejected:         m.Rejected.Load(),
		Degraded:         m.Degraded.Load(),
		DeadlineExceeded: m.DeadlineExceeded.Load(),
		Panics:           m.Panics.Load(),
		Errors:           m.Errors.Load(),
		Completed:        m.Completed.Load(),
	}
}
