// Package graph500 implements a Go analogue of the Graph500 OpenMP
// reference implementation (version ~2.1.4, the one the paper forks).
//
// Architectural character preserved from the original:
//
//   - it is a BFS-only benchmark (Benchmark 1 "Search": Kernel 1
//     builds a CSR from an unsorted edge list, Kernel 2 runs BFS);
//   - the graph is constructed once and all roots run back-to-back
//     with no file I/O in between (the paper notes this makes the
//     Graph500 the most sensitive to CPU noise);
//   - plain level-synchronous top-down BFS — no direction
//     optimization — claiming children through CAS on an int64
//     parent array (the reference stores 64-bit parents, paying more
//     memory traffic than GAP's 32-bit structures);
//   - OpenMP schedule(static)-style round-robin chunking, which on
//     skewed Kronecker frontiers produces the load imbalance visible
//     in the paper's efficiency plot (Fig. 6).
//
// Known fidelity gaps: the reference's MPI variants and its
// validation kernel (Benchmark 1's five-point check) are not
// reproduced — output validity is checked against internal/verify
// instead. The reference generates its own Kronecker input in place;
// here generation lives in internal/kronecker and the edge list
// arrives homogenized like every other engine's. Timing and TEPS come
// from the simmachine model, not wall clock.
package graph500
