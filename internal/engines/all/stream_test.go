// Streaming conformance walls: the mutation phase (Spec.Mutations)
// must be a pure function of the spec. The harness already enforces
// the core invariant in-run — every incrementally maintained PR/WCC
// result is compared bitwise against a full recompute on the
// post-batch graph and any divergence is an error, not a warning —
// so these walls drive that machinery across the knob matrix
// (compressed adjacency on/off) and worker counts, and pin the
// engine-capability contract: an engine either serves the stream
// conformantly or drops the knob with a warning, never silently.
package all

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/hpcl-repro/epg/internal/core"
	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/harness"
)

// streamWallSpec is the pinned stream geometry of the walls: three
// batches of 48 ops, 40% deletes — big enough to dirty real chunk
// sets, small enough to keep the recompute references cheap.
func streamWallSpec(alg engines.Algorithm, workers int, compress bool) core.Spec {
	return core.Spec{
		Dataset:   "kron-10",
		Algorithm: alg,
		Engines:   []string{GAP},
		Threads:   8,
		Workers:   workers,
		Roots:     2,
		Seed:      5,
		Compress:  compress,
		Mutations: &core.MutationSchedule{Batches: 3, BatchSize: 48, DeleteFrac: 0.4, Seed: 13},
	}
}

func runStreamRows(t *testing.T, spec core.Spec) []core.Result {
	t.Helper()
	el, err := harness.ResolveDataset(spec.Dataset, harness.DatasetOptions{Seed: spec.Seed})
	if err != nil {
		t.Fatal(err)
	}
	results, err := harness.NewRunner(Registry()).Run(spec, el)
	if err != nil {
		t.Fatal(err)
	}
	var stream []core.Result
	for _, r := range results {
		if r.Batch > 0 {
			stream = append(stream, r)
		}
	}
	return stream
}

// TestStreamConformanceAcrossWorkersAndCompress: for PR and WCC, with
// the raw and the compressed adjacency, the stream phase completes
// with its in-run bitwise conformance check (incremental == full
// recompute per batch) and produces rows identical across worker
// counts in everything but wall-clock — the determinism-wall pattern
// extended to the mutation phase.
func TestStreamConformanceAcrossWorkersAndCompress(t *testing.T) {
	for _, alg := range []engines.Algorithm{engines.PageRank, engines.WCC} {
		for _, compress := range []bool{false, true} {
			name := string(alg)
			if compress {
				name += "/compress"
			}
			t.Run(name, func(t *testing.T) {
				base := runStreamRows(t, streamWallSpec(alg, 1, compress))
				if len(base) != 3 {
					t.Fatalf("stream rows: got %d, want 3", len(base))
				}
				for i, r := range base {
					if r.Batch != i+1 {
						t.Errorf("row %d has batch index %d", i, r.Batch)
					}
					if r.MutateSec <= 0 || r.MaintainSec <= 0 || r.RecomputeSec <= 0 {
						t.Errorf("batch %d: non-positive modeled stream costs: %+v", r.Batch, r)
					}
				}
				for _, workers := range []int{2, 4} {
					got := runStreamRows(t, streamWallSpec(alg, workers, compress))
					if len(got) != len(base) {
						t.Fatalf("workers=%d: %d stream rows, want %d", workers, len(got), len(base))
					}
					for i := range base {
						a, b := base[i], got[i]
						a.WallSec, b.WallSec = 0, 0
						if !reflect.DeepEqual(a, b) {
							t.Errorf("workers=%d batch %d diverged from workers=1:\n  base: %+v\n  got:  %+v",
								workers, a.Batch, a, b)
						}
					}
				}
			})
		}
	}
}

// TestStreamCapabilityContractAllEngines: every registered engine that
// runs PageRank either serves the mutation phase (stream rows present,
// costs positive, in-run conformance passed) or drops the knob with a
// structured warning naming the engine — the Configure/Applied
// contract, walled so a new engine cannot silently half-support
// streaming.
func TestStreamCapabilityContractAllEngines(t *testing.T) {
	el, err := harness.ResolveDataset("kron-10", harness.DatasetOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Names {
		eng, err := Registry().New(name)
		if err != nil {
			t.Fatal(err)
		}
		if !eng.Has(engines.PageRank) {
			continue
		}
		t.Run(name, func(t *testing.T) {
			spec := streamWallSpec(engines.PageRank, 2, false)
			spec.Engines = []string{name}
			spec.Compress = false
			runner := harness.NewRunner(Registry())
			var warnings bytes.Buffer
			runner.Warnings = &warnings
			results, err := runner.Run(spec, el)
			if err != nil {
				t.Fatal(err)
			}
			var stream int
			for _, r := range results {
				if r.Batch > 0 {
					stream++
				}
			}
			dropped := strings.Contains(warnings.String(), "knob=mutations") &&
				strings.Contains(warnings.String(), "engine="+name)
			switch {
			case stream == spec.Mutations.Batches && !dropped:
				// Conformant streamer (the harness verified bit-equality).
			case stream == 0 && dropped:
				// Honest knob drop.
			default:
				t.Errorf("engine %s: %d stream rows, dropped=%t — neither conformant service nor an honest drop (warnings: %q)",
					name, stream, dropped, warnings.String())
			}
		})
	}
}
