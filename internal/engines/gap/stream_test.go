package gap

import (
	"sort"
	"testing"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/xrand"
)

// elFromCSR reconstructs the edge list a current-epoch CSR represents:
// the exact input from which a cold BuildStructure reproduces the same
// normalized structure. Undirected rows hold both orientations with
// equal weights, so one canonical (u < v) orientation suffices.
func elFromCSR(c *graph.CSR, directed bool) *graph.EdgeList {
	el := &graph.EdgeList{NumVertices: c.NumVertices, Weighted: c.Weights != nil, Directed: directed}
	for v := 0; v < c.NumVertices; v++ {
		adj := c.Neighbors(graph.VID(v))
		ws := c.NeighborWeights(graph.VID(v))
		for i, u := range adj {
			if !directed && u < graph.VID(v) {
				continue
			}
			e := graph.Edge{Src: graph.VID(v), Dst: u}
			if ws != nil {
				e.W = ws[i]
			}
			el.Edges = append(el.Edges, e)
		}
	}
	return el
}

// sampleEdge picks a uniformly random stored adjacency entry.
func sampleEdge(c *graph.CSR, r *xrand.RNG) (graph.VID, graph.VID, bool) {
	if c.NumEdges() == 0 {
		return 0, 0, false
	}
	idx := int64(r.Intn(int(c.NumEdges())))
	v := sort.Search(c.NumVertices, func(v int) bool { return c.Offsets[v+1] > idx })
	return graph.VID(v), c.Adj[idx], true
}

// streamBatch builds a deterministic mixed batch against the current
// epoch: deletes sample stored edges, inserts draw random pairs.
func streamBatch(c *graph.CSR, r *xrand.RNG, ops int, deleteFrac float64) graph.Batch {
	n := c.NumVertices
	b := make(graph.Batch, 0, ops)
	for i := 0; i < ops; i++ {
		if r.Float64() < deleteFrac {
			if u, v, ok := sampleEdge(c, r); ok {
				b = append(b, graph.Mutation{Op: graph.MutDelete, Src: u, Dst: v})
				continue
			}
		}
		b = append(b, graph.Mutation{
			Op:  graph.MutInsert,
			Src: graph.VID(r.Intn(n)),
			Dst: graph.VID(r.Intn(n)),
			W:   float32(1 - r.Float64()),
		})
	}
	return b
}

func ranksEqual(t *testing.T, got, want *engines.PRResult, ctx string) {
	t.Helper()
	if got.Iterations != want.Iterations {
		t.Fatalf("%s: iterations %d, full recompute %d", ctx, got.Iterations, want.Iterations)
	}
	if len(got.Rank) != len(want.Rank) {
		t.Fatalf("%s: rank length %d vs %d", ctx, len(got.Rank), len(want.Rank))
	}
	for v := range want.Rank {
		if got.Rank[v] != want.Rank[v] {
			t.Fatalf("%s: rank[%d] = %x, full recompute %x", ctx, v, got.Rank[v], want.Rank[v])
		}
	}
}

func labelsEqual(t *testing.T, got, want *engines.WCCResult, ctx string) {
	t.Helper()
	if len(got.Component) != len(want.Component) {
		t.Fatalf("%s: component length %d vs %d", ctx, len(got.Component), len(want.Component))
	}
	for v := range want.Component {
		if got.Component[v] != want.Component[v] {
			t.Fatalf("%s: component[%d] = %d, full recompute %d", ctx, v, got.Component[v], want.Component[v])
		}
	}
}

// freshPR runs a cold full PageRank on the post-batch graph.
func freshPR(t *testing.T, el *graph.EdgeList, threads int) *engines.PRResult {
	t.Helper()
	inst := load(t, New(), el, threads)
	res, err := inst.PageRank(engines.DefaultPROpts())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func freshWCC(t *testing.T, el *graph.EdgeList, threads int) *engines.WCCResult {
	t.Helper()
	inst := load(t, New(), el, threads)
	res, err := inst.WCC()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The tentpole wall: across a stream of mixed batches, incremental
// PageRank must stay bit-equal (ranks and iteration counts) to a cold
// full recompute on the post-batch graph, at every worker count.
func TestIncrementalPageRankBitEqualFullRecompute(t *testing.T) {
	for _, directed := range []bool{false, true} {
		for seed := uint64(1); seed <= 3; seed++ {
			el := kron(7, seed)
			el.Directed = directed
			var prevRanks []float64
			for _, threads := range []int{2, 8} {
				inst := load(t, New(), el, threads)
				if _, err := inst.IncrementalPageRank(engines.DefaultPROpts()); err != nil {
					t.Fatal(err)
				}
				r := xrand.New(seed ^ 0xabcd)
				var finalRanks []float64
				for batch := 0; batch < 4; batch++ {
					b := streamBatch(inst.OutCSR(), r, 40, 0.4)
					if _, err := inst.Mutate(b); err != nil {
						t.Fatal(err)
					}
					inc, err := inst.IncrementalPageRank(engines.DefaultPROpts())
					if err != nil {
						t.Fatal(err)
					}
					want := freshPR(t, elFromCSR(inst.OutCSR(), directed), 8)
					ranksEqual(t, inc, want, "directed="+bstr(directed))
					finalRanks = inc.Rank
				}
				if prevRanks != nil {
					for v := range prevRanks {
						if prevRanks[v] != finalRanks[v] {
							t.Fatalf("threads=%d diverges from previous worker count at %d", threads, v)
						}
					}
				}
				prevRanks = finalRanks
			}
		}
	}
}

func bstr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// A baseline that converges instantly (regular ring: uniform ranks are
// the fixed point) followed by a hub insertion forces the patched
// replay past the recorded horizon, exercising the full-emulation
// iterations.
func TestIncrementalPageRankBeyondCachedHorizon(t *testing.T) {
	n := 64
	el := &graph.EdgeList{NumVertices: n}
	for v := 0; v < n; v++ {
		el.Edges = append(el.Edges, graph.Edge{Src: graph.VID(v), Dst: graph.VID((v + 1) % n)})
	}
	inst := load(t, New(), el, 4)
	base, err := inst.IncrementalPageRank(engines.DefaultPROpts())
	if err != nil {
		t.Fatal(err)
	}
	if base.Iterations > 2 {
		t.Fatalf("ring baseline took %d iterations; expected near-instant convergence", base.Iterations)
	}
	var b graph.Batch
	for v := 1; v < n; v += 2 {
		b = append(b, graph.Mutation{Op: graph.MutInsert, Src: 0, Dst: graph.VID(v)})
	}
	if _, err := inst.Mutate(b); err != nil {
		t.Fatal(err)
	}
	inc, err := inst.IncrementalPageRank(engines.DefaultPROpts())
	if err != nil {
		t.Fatal(err)
	}
	want := freshPR(t, elFromCSR(inst.OutCSR(), false), 8)
	if inc.Iterations <= base.Iterations {
		t.Fatalf("hub insertion converged in %d iterations (baseline %d); test no longer reaches past the horizon", inc.Iterations, base.Iterations)
	}
	ranksEqual(t, inc, want, "beyond-horizon")
}

// Deleting a vertex's entire out-row changes the dangling mass, which
// moves the base term and forces the full-sweep fallback inside the
// patched replay — still bit-equal.
func TestIncrementalPageRankDanglingShift(t *testing.T) {
	el := kron(7, 9)
	el.Directed = true
	inst := load(t, New(), el, 4)
	if _, err := inst.IncrementalPageRank(engines.DefaultPROpts()); err != nil {
		t.Fatal(err)
	}
	// Empty the out-row of the highest-degree vertex.
	out := inst.OutCSR()
	var hub graph.VID
	for v := 0; v < out.NumVertices; v++ {
		if out.Degree(graph.VID(v)) > out.Degree(hub) {
			hub = graph.VID(v)
		}
	}
	if out.Degree(hub) == 0 {
		t.Skip("degenerate graph")
	}
	var b graph.Batch
	for _, u := range out.Neighbors(hub) {
		b = append(b, graph.Mutation{Op: graph.MutDelete, Src: hub, Dst: u})
	}
	if _, err := inst.Mutate(b); err != nil {
		t.Fatal(err)
	}
	inc, err := inst.IncrementalPageRank(engines.DefaultPROpts())
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.OutCSR().Degree(hub); got != 0 {
		t.Fatalf("hub still has out-degree %d", got)
	}
	want := freshPR(t, elFromCSR(inst.OutCSR(), true), 8)
	ranksEqual(t, inc, want, "dangling-shift")
}

// Incremental WCC: unions on inserts, affected-component recompute on
// deletes, integer-exact against the kernel's canonical min-vertex
// labels across mixed streams, shapes, and worker counts.
func TestIncrementalWCCBitEqualFullRecompute(t *testing.T) {
	for _, directed := range []bool{false, true} {
		for seed := uint64(1); seed <= 3; seed++ {
			// Sparse graphs keep multiple components alive so splits
			// and merges actually occur.
			el := randomSparseEL(seed, 96, 70, directed)
			for _, threads := range []int{2, 8} {
				inst := load(t, New(), el, threads)
				if _, err := inst.IncrementalWCC(); err != nil {
					t.Fatal(err)
				}
				r := xrand.New(seed ^ 0x77)
				for batch := 0; batch < 5; batch++ {
					b := streamBatch(inst.OutCSR(), r, 20, 0.5)
					if _, err := inst.Mutate(b); err != nil {
						t.Fatal(err)
					}
					inc, err := inst.IncrementalWCC()
					if err != nil {
						t.Fatal(err)
					}
					want := freshWCC(t, elFromCSR(inst.OutCSR(), directed), 8)
					labelsEqual(t, inc, want, "directed="+bstr(directed))
				}
			}
		}
	}
}

func randomSparseEL(seed uint64, n, m int, directed bool) *graph.EdgeList {
	r := xrand.New(seed)
	el := &graph.EdgeList{NumVertices: n, Directed: directed}
	for i := 0; i < m; i++ {
		el.Edges = append(el.Edges, graph.Edge{Src: graph.VID(r.Intn(n)), Dst: graph.VID(r.Intn(n))})
	}
	return el
}

// Both maintainers share the overlay but consume their own dirty
// state: interleaving PR and WCC refreshes across batches must not
// starve or corrupt either.
func TestIncrementalMaintainersInterleaved(t *testing.T) {
	el := kron(7, 4)
	inst := load(t, New(), el, 4)
	if _, err := inst.IncrementalPageRank(engines.DefaultPROpts()); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.IncrementalWCC(); err != nil {
		t.Fatal(err)
	}
	r := xrand.New(0xdead)
	// Batch 1: only PR refreshes.
	if _, err := inst.Mutate(streamBatch(inst.OutCSR(), r, 30, 0.3)); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.IncrementalPageRank(engines.DefaultPROpts()); err != nil {
		t.Fatal(err)
	}
	// Batch 2: both refresh; WCC must account for batch 1 + 2.
	if _, err := inst.Mutate(streamBatch(inst.OutCSR(), r, 30, 0.3)); err != nil {
		t.Fatal(err)
	}
	pr, err := inst.IncrementalPageRank(engines.DefaultPROpts())
	if err != nil {
		t.Fatal(err)
	}
	wcc, err := inst.IncrementalWCC()
	if err != nil {
		t.Fatal(err)
	}
	post := elFromCSR(inst.OutCSR(), false)
	ranksEqual(t, pr, freshPR(t, post, 8), "interleaved")
	labelsEqual(t, wcc, freshWCC(t, post, 8), "interleaved")
}

// With no mutations since the baseline, the incremental calls return
// the cached results and charge nothing — the modeled clock must not
// move.
func TestIncrementalNoMutationIsFree(t *testing.T) {
	el := kron(7, 2)
	inst := load(t, New(), el, 4)
	base, err := inst.IncrementalPageRank(engines.DefaultPROpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.IncrementalWCC(); err != nil {
		t.Fatal(err)
	}
	before := inst.Machine().Elapsed()
	again, err := inst.IncrementalPageRank(engines.DefaultPROpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.IncrementalWCC(); err != nil {
		t.Fatal(err)
	}
	if after := inst.Machine().Elapsed(); after != before {
		t.Fatalf("no-op incremental refresh moved the modeled clock: %v -> %v", before, after)
	}
	ranksEqual(t, again, base, "cached")
}

// Small batches must cost less than a full recompute on the modeled
// clock — the whole point of the incremental path.
func TestIncrementalCheaperThanRecompute(t *testing.T) {
	el := kron(9, 6)
	inst := load(t, New(), el, 8)
	if _, err := inst.IncrementalPageRank(engines.DefaultPROpts()); err != nil {
		t.Fatal(err)
	}
	r := xrand.New(5)
	b := streamBatch(inst.OutCSR(), r, 8, 0.5)
	t0 := inst.Machine().Elapsed()
	if _, err := inst.Mutate(b); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.IncrementalPageRank(engines.DefaultPROpts()); err != nil {
		t.Fatal(err)
	}
	incCost := inst.Machine().Elapsed() - t0

	// The alternative the incremental path displaces is a full rebuild:
	// Kernel-1 construction on the post-batch graph plus a cold
	// PageRank.
	m2 := machine(8)
	ri, err := New().Load(elFromCSR(inst.OutCSR(), false), m2)
	if err != nil {
		t.Fatal(err)
	}
	ref := ri.(*Instance)
	ref.BuildStructure()
	if _, err := ref.PageRank(engines.DefaultPROpts()); err != nil {
		t.Fatal(err)
	}
	fullCost := m2.Elapsed()
	if incCost >= fullCost {
		t.Fatalf("incremental maintenance (%v) not cheaper than full recompute (%v) for an 8-op batch", incCost, fullCost)
	}
}

// Mutate must reject malformed batches without touching the structure.
func TestMutateRejectsInvalid(t *testing.T) {
	el := kron(6, 1)
	inst := load(t, New(), el, 2)
	before := inst.OutCSR()
	if _, err := inst.Mutate(graph.Batch{{Op: graph.MutInsert, Src: 0, Dst: graph.VID(inst.n + 5)}}); err == nil {
		t.Fatal("out-of-range mutation accepted")
	}
	if inst.OutCSR() != before {
		t.Fatal("failed Mutate swapped the epoch")
	}
}
