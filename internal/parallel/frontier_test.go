package parallel

import (
	"math/rand"
	"slices"
	"strings"
	"testing"
)

// chunkItems derives a pseudorandom item set for chunk c — a pure
// function of the chunk index, mimicking a deterministic frontier
// producer (write-min claims make per-chunk sets schedule-independent).
func chunkItems(c int) []uint32 {
	r := rand.New(rand.NewSource(int64(c)*2654435761 + 1))
	n := r.Intn(40)
	items := make([]uint32, n)
	for i := range items {
		items[i] = uint32(c*1000 + r.Intn(1000))
	}
	return items
}

// TestChunkQueueMatchesSortedQueue is the frontier-equivalence wall:
// on random per-chunk item sets pushed concurrently under every
// scheduling policy and several worker counts, the ChunkQueue's
// chunk-ordered concatenation must (a) be identical across all
// schedules — the sort-free canonical form — and (b) hold exactly the
// same multiset the atomic Queue collected, i.e. dropping the sort
// loses nothing but the O(n log n).
func TestChunkQueueMatchesSortedQueue(t *testing.T) {
	p := NewPool(8)
	const n, grain = 3000, 16
	nchunks := NumChunks(n, grain)

	var want []uint32 // chunk-ordered reference, built serially
	for c := 0; c < nchunks; c++ {
		want = append(want, chunkItems(c)...)
	}
	wantSorted := slices.Clone(want)
	slices.Sort(wantSorted)

	cq := NewChunkQueue[uint32]()
	for _, sched := range []Sched{Static, Dynamic, Steal, NUMA} {
		for _, workers := range []int{1, 2, 4, 9} {
			cq.Reset(nchunks)
			q := NewQueue[uint32](len(want))
			For(p, workers, n, grain, sched, func(lo, hi, chunk, worker int) {
				items := chunkItems(chunk)
				q.PushBatch(items)
				cq.Put(chunk, items)
			})
			if got := cq.Slice(); !slices.Equal(got, want) {
				t.Fatalf("sched=%v workers=%d: chunk-ordered concat differs from serial reference", sched, workers)
			}
			if got := slices.Clone(SortedQueueSlice(q)); !slices.Equal(got, wantSorted) {
				t.Fatalf("sched=%v workers=%d: Queue multiset differs from ChunkQueue multiset", sched, workers)
			}
			if cq.Len() != len(want) {
				t.Fatalf("Len = %d, want %d", cq.Len(), len(want))
			}
		}
	}
}

// TestChunkQueueDrainFiltersAndMaps exercises the claim-drain idiom:
// tentative claims are dropped unless the final write-min value
// matches, and the kept order is chunk order.
func TestChunkQueueDrainFiltersAndMaps(t *testing.T) {
	q := NewChunkQueue[Claim]()
	q.Reset(2)
	q.Put(0, []Claim{{V: 7, By: 3}, {V: 9, By: 1}})
	q.Put(1, []Claim{{V: 7, By: 2}, {V: 5, By: 4}})
	parent := map[uint32]int64{7: 2, 9: 1, 5: 4}
	got := DrainChunkQueue(q, nil, func(c Claim) (uint32, bool) {
		return c.V, parent[c.V] == int64(c.By)
	})
	// Claim {7,3} lost the min race and must be dropped; the rest keep
	// chunk-then-push order.
	want := []uint32{9, 7, 5}
	if !slices.Equal(got, want) {
		t.Fatalf("drain = %v, want %v", got, want)
	}
}

func TestChunkQueueResetReusesCapacity(t *testing.T) {
	q := NewChunkQueue[int]()
	q.Reset(4)
	q.Put(2, []int{1, 2})
	q.Reset(3)
	if q.Len() != 0 {
		t.Fatalf("reset kept %d items", q.Len())
	}
	q.Put(0, []int{9})
	if got := q.Slice(); !slices.Equal(got, []int{9}) {
		t.Fatalf("slice after reset = %v", got)
	}
}

func TestQueueOverflowPanicsNameSizes(t *testing.T) {
	check := func(name string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: overflow did not panic", name)
			}
			msg, ok := r.(string)
			if !ok || !strings.Contains(msg, "capacity 2") {
				t.Fatalf("%s: panic %v does not name the queue capacity", name, r)
			}
		}()
		f()
	}
	check("Push", func() {
		q := NewQueue[int](2)
		q.Push(1)
		q.Push(2)
		q.Push(3)
	})
	check("PushBatch", func() {
		q := NewQueue[int](2)
		q.PushBatch([]int{1, 2, 3})
	})
}

func TestLowerMinInt64(t *testing.T) {
	const empty = int64(-1)
	p := NewPool(8)
	slot := empty
	lowerings := NewCounter(8)
	For(p, 8, 1000, 1, Dynamic, func(lo, hi, chunk, worker int) {
		if LowerMinInt64(&slot, int64(lo+5), empty) {
			lowerings.Add(worker, 1)
		}
	})
	if slot != 5 {
		t.Errorf("min = %d, want 5", slot)
	}
	// At least the global-minimum writer must observe a lowering; more
	// may (that is the point of the filtered drain).
	if got := lowerings.Sum(); got < 1 || got > 1000 {
		t.Errorf("lowerings = %d, want within [1, 1000]", got)
	}
	if LowerMinInt64(&slot, 9, empty) {
		t.Error("raising the value reported a lowering")
	}
}

func TestScanInt64MatchesSerial(t *testing.T) {
	p := NewPool(8)
	r := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 17, scanSerialCutoff - 1, scanSerialCutoff * 3, 100003} {
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(r.Intn(9))
		}
		want := make([]int64, n)
		var run int64
		for i := range xs {
			want[i] = run
			run += xs[i]
		}
		for _, workers := range []int{1, 2, 4, 7} {
			got := slices.Clone(xs)
			total := ScanInt64(p, workers, got)
			if total != run {
				t.Fatalf("n=%d workers=%d: total %d, want %d", n, workers, total, run)
			}
			if !slices.Equal(got, want) {
				t.Fatalf("n=%d workers=%d: scan differs from serial", n, workers)
			}
		}
	}
}

// TestBitmapRace hammers Set/Test from all workers under every policy
// (the -race wall for the bitmap frontier) and then checks the
// collected membership.
func TestBitmapRace(t *testing.T) {
	p := NewPool(8)
	const n = 10000
	for _, sched := range []Sched{Static, Dynamic, Steal, NUMA} {
		b := NewBitmap(n)
		For(p, 8, n, 64, sched, func(lo, hi, chunk, worker int) {
			for i := lo; i < hi; i++ {
				if i%3 == 0 {
					b.Set(i)
				}
				// Cross-chunk tests race with sets on purpose.
				_ = b.Test((i * 7) % n)
			}
			// Concurrent re-set of a shared vertex: idempotent.
			b.Set(0)
		})
		for i := 0; i < n; i++ {
			want := i%3 == 0 || i == 0
			if b.Test(i) != want {
				t.Fatalf("sched=%v: bit %d = %v, want %v", sched, i, b.Test(i), want)
			}
		}
		if got, want := b.Count(), n/3+1; got != want {
			t.Fatalf("sched=%v: count %d, want %d", sched, got, want)
		}
	}
}

func TestBitmapToSliceAscending(t *testing.T) {
	p := NewPool(8)
	const n = 70000 // several ToSlice chunks
	b := NewBitmap(n)
	var want []uint32
	r := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		if r.Intn(4) == 0 {
			b.Set(i)
			want = append(want, uint32(i))
		}
	}
	for _, workers := range []int{1, 2, 4} {
		got := b.ToSlice(NewPool(8), workers, nil)
		if !slices.Equal(got, want) {
			t.Fatalf("workers=%d: ToSlice differs from ascending reference (%d vs %d items)",
				workers, len(got), len(want))
		}
	}
	// Appending to a non-empty dst preserves the prefix.
	pre := []uint32{42}
	got := b.ToSlice(p, 4, pre)
	if got[0] != 42 || !slices.Equal(got[1:], want) {
		t.Fatal("ToSlice clobbered the dst prefix")
	}
}

func TestBitmapClearRange(t *testing.T) {
	const n = 300
	b := NewBitmap(n)
	for i := 0; i < n; i++ {
		b.Set(i)
	}
	b.ClearRange(10, 75)   // crosses a word boundary with partial ends
	b.ClearRange(130, 140) // within one word
	b.ClearRange(192, 300) // aligned start, slice end
	for i := 0; i < n; i++ {
		want := !(i >= 10 && i < 75 || i >= 130 && i < 140 || i >= 192)
		if b.Test(i) != want {
			t.Fatalf("bit %d = %v, want %v", i, b.Test(i), want)
		}
	}
	b.Clear()
	if b.Count() != 0 {
		t.Fatal("Clear left bits set")
	}
}
