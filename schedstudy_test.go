// Scheduling-study artifact: the ROADMAP's "modeled time vs. policy
// across thread counts" figure, extended with the locality dimension.
// Gated behind EPG_WRITE_SCHEDFIG=1 (it is a measurement, not a
// correctness check); run via `make benchfig`, which writes
// FIG_sched_study.csv. The dynamic column grows with the thread count
// as the greedy shared-counter assignment loses to lane contention;
// the steal column tracks static until imbalance appears, then
// recovers it — the same story the paper tells about OpenMP
// schedule(dynamic) vs. Cilk-style runtimes. The sockets axis applies
// the locality model: at sockets > 1 flat stealing (steal) pays
// remote-steal and remote-chunk-access penalties for every
// cross-socket steal, while two-level stealing (numa) keeps most
// steals on-socket — the gap between the two columns at equal sockets
// is the modeled win of locality-aware victim ordering.
package epg_test

import (
	"os"
	"testing"
	"time"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/engines/gap"
	"github.com/hpcl-repro/epg/internal/report"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// schedStudyThreads is the virtual-thread axis (the paper's Fig. 5/6
// x-axis, plus the 72-thread full machine).
var schedStudyThreads = []int{1, 2, 4, 8, 16, 32, 64, 72}

// schedStudySockets is the locality axis. Policies without a steal
// path (static, dynamic) charge no locality penalties, so only their
// sockets=1 rows are emitted.
var schedStudySockets = []int{1, 2, 4}

var schedStudyPolicies = []struct {
	name    string
	sched   simmachine.Sched
	sockets []int
}{
	{"static", simmachine.Static, []int{1}},
	{"dynamic", simmachine.Dynamic, []int{1}},
	{"steal", simmachine.Steal, schedStudySockets},
	{"numa", simmachine.NUMA, schedStudySockets},
}

func TestWriteSchedStudy(t *testing.T) {
	if os.Getenv("EPG_WRITE_SCHEDFIG") == "" {
		t.Skip("set EPG_WRITE_SCHEDFIG=1 to rewrite FIG_sched_study.csv")
	}
	el, err := harnessDataset(kronName())
	if err != nil {
		t.Fatal(err)
	}
	roots := tuneRootsFor(el, 1)
	root := roots[0]

	var rows []report.SchedStudyRow
	for _, kernel := range []string{"BFS", "PR"} {
		for _, pol := range schedStudyPolicies {
			for _, sockets := range pol.sockets {
				for _, threads := range schedStudyThreads {
					m := simmachine.New(simmachine.Haswell72(), threads)
					m.SetSchedOverride(pol.sched)
					if sockets > 1 {
						m.SetSockets(sockets)
					}
					m.SetTracing(false)
					instAny, err := gap.New().Load(el, m)
					if err != nil {
						t.Fatal(err)
					}
					inst := instAny.(*gap.Instance)
					inst.BuildStructure()
					m.Reset()
					run := func() error {
						if kernel == "BFS" {
							_, err := inst.BFS(root)
							return err
						}
						_, err := inst.PageRank(engines.DefaultPROpts())
						return err
					}
					start := time.Now()
					if err := run(); err != nil {
						t.Fatal(err)
					}
					rows = append(rows, report.SchedStudyRow{
						Kernel:     kernel,
						Sched:      pol.name,
						Threads:    threads,
						Sockets:    sockets,
						Workers:    m.Workers(),
						ModeledSec: m.Elapsed(),
						WallSec:    time.Since(start).Seconds(),
					})
				}
			}
		}
	}

	f, err := os.Create("FIG_sched_study.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := report.WriteSchedStudyCSV(f, rows); err != nil {
		t.Fatal(err)
	}
	var tbl testWriter = func(p []byte) (int, error) {
		t.Logf("%s", p)
		return len(p), nil
	}
	report.SchedStudyTable(tbl, rows)
	t.Logf("wrote FIG_sched_study.csv (%d rows, dataset %s)", len(rows), kronName())
}

// testWriter adapts t.Logf to io.Writer for the quick-look table.
type testWriter func(p []byte) (int, error)

func (w testWriter) Write(p []byte) (int, error) { return w(p) }
