// Package datasets synthesizes offline analogues of the two real-world
// graphs used in the paper: Dota-League (Game Trace Archive, as
// packaged by Graphalytics) and cit-Patents (SNAP / NBER).
//
// The real files cannot be downloaded in this environment, so each
// generator reproduces the published shape statistics that drive the
// paper's observations:
//
//   - Dota-League: 61,670 vertices, 50,870,313 edges, weighted,
//     average out-degree ~824, unusually dense with heavy community
//     structure (players repeatedly matched with and against similar
//     opponents). Density is what makes PowerGraph's vertex-cut pay
//     off for SSSP in Fig. 8.
//   - cit-Patents: 3,774,768 vertices, 16,518,948 edges, directed,
//     unweighted citation network; time-ordered (patents cite only
//     earlier patents), sparse (avg out-degree ~4.4), wide and
//     shallow. Being unweighted makes SSSP "N/A" in Table I.
//
// Both generators take a ScaleDivisor so tests and default benchmarks
// run a proportionally smaller graph with the same density character;
// divisor 1 reproduces the full published sizes.
package datasets

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/xrand"
)

// Published sizes of the real datasets.
const (
	DotaVertices    = 61670
	DotaEdges       = 50870313
	PatentsVertices = 3774768
	PatentsEdges    = 16518948
)

// Name identifies a built-in dataset.
type Name string

const (
	DotaLeague Name = "dota-league"
	CitPatents Name = "cit-Patents"
)

// Config controls synthetic dataset generation.
type Config struct {
	// ScaleDivisor shrinks both vertex and edge counts by this
	// factor, preserving average degree. 0 or 1 means full size.
	ScaleDivisor int
	Seed         uint64
	Workers      int
}

func (c Config) divisor() int {
	if c.ScaleDivisor <= 1 {
		return 1
	}
	return c.ScaleDivisor
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Generate builds the named dataset.
func Generate(name Name, cfg Config) (*graph.EdgeList, error) {
	switch name {
	case DotaLeague:
		return GenerateDotaLeague(cfg), nil
	case CitPatents:
		return GenerateCitPatents(cfg), nil
	default:
		return nil, fmt.Errorf("datasets: unknown dataset %q", name)
	}
}

// GenerateDotaLeague synthesizes the dense weighted match-interaction
// graph. Model: vertices are players partitioned into skill
// communities; each synthetic "match" samples a community
// neighbourhood (90% intra-community) and links players with uniform
// (0,1] interaction weights. This yields the published density
// (avg out-degree ~824 at full size) and strong clustering without
// storing any real trace data.
func GenerateDotaLeague(cfg Config) *graph.EdgeList {
	div := cfg.divisor()
	n := DotaVertices / div
	if n < 64 {
		n = 64
	}
	m := DotaEdges / (div * div)
	// Preserve the published average degree (~824) as long as the
	// vertex count allows it; degree cannot exceed n-1 sensibly.
	avgDeg := DotaEdges / DotaVertices // ~824
	if maxM := n * avgDeg / div; m > maxM {
		m = maxM
	}
	if m < n {
		m = 4 * n
	}
	const communities = 64

	el := &graph.EdgeList{
		NumVertices: n,
		Edges:       make([]graph.Edge, m),
		Weighted:    true,
		Directed:    true,
	}
	commOf := make([]uint16, n)
	rc := xrand.New(cfg.Seed ^ 0xd07a)
	for i := range commOf {
		commOf[i] = uint16(rc.Intn(communities))
	}
	// Per-community member lists for intra-community sampling.
	members := make([][]graph.VID, communities)
	for v, c := range commOf {
		members[c] = append(members[c], graph.VID(v))
	}
	for c := range members {
		if len(members[c]) == 0 { // tiny graphs may leave a community empty
			members[c] = append(members[c], graph.VID(c%n))
		}
	}

	parallelEdges(m, cfg.workers(), func(i int, r *xrand.RNG) {
		src := graph.VID(r.Intn(n))
		var dst graph.VID
		if r.Float64() < 0.90 {
			list := members[commOf[src]]
			dst = list[r.Intn(len(list))]
		} else {
			dst = graph.VID(r.Intn(n))
		}
		w := r.Float32()
		if w == 0 {
			w = 0.5
		}
		el.Edges[i] = graph.Edge{Src: src, Dst: dst, W: w}
	}, cfg.Seed^0x00d07a1ea90e)
	return el
}

// GenerateCitPatents synthesizes the citation network. Model: patents
// are issued in time order; patent v cites earlier patents with
// preferential attachment (probability proportional to citations
// received plus one), which reproduces the real network's power-law
// in-degree, DAG structure, and sparsity. Unweighted and directed.
func GenerateCitPatents(cfg Config) *graph.EdgeList {
	div := cfg.divisor()
	n := PatentsVertices / div
	if n < 128 {
		n = 128
	}
	m := PatentsEdges / div
	avg := m / n // ~4.4 citations per patent
	if avg < 1 {
		avg = 2
		m = n * avg
	}

	el := &graph.EdgeList{
		NumVertices: n,
		Weighted:    false,
		Directed:    true,
	}
	edges := make([]graph.Edge, 0, m)

	// Preferential attachment via the repeated-endpoint trick: keep
	// a pool of previously cited targets; with probability p pick
	// from the pool (∝ in-degree), otherwise uniform over earlier
	// patents. Serial but cheap (one pass).
	r := xrand.New(cfg.Seed ^ 0xc17a7e)
	pool := make([]graph.VID, 0, m)
	const pPref = 0.65
	for v := 1; v < n; v++ {
		// Cites ~Poisson(avg) earlier patents; geometric-ish draw
		// keeps it integer and fast.
		k := 1 + r.Intn(2*avg)
		if len(edges)+k > m {
			k = m - len(edges)
		}
		for j := 0; j < k; j++ {
			var dst graph.VID
			if len(pool) > 0 && r.Float64() < pPref {
				dst = pool[r.Intn(len(pool))]
			} else {
				dst = graph.VID(r.Intn(v))
			}
			if int(dst) >= v { // cite strictly earlier patents
				dst = graph.VID(v - 1)
			}
			edges = append(edges, graph.Edge{Src: graph.VID(v), Dst: dst})
			pool = append(pool, dst)
		}
		if len(edges) >= m {
			break
		}
	}
	el.Edges = edges
	return el
}

// Stats summarizes a dataset for reports and README tables.
type Stats struct {
	Name         string
	NumVertices  int
	NumEdges     int
	AvgOutDegree float64
	Weighted     bool
	Directed     bool
}

// Describe computes summary statistics of an edge list.
func Describe(name string, el *graph.EdgeList) Stats {
	return Stats{
		Name:         name,
		NumVertices:  el.NumVertices,
		NumEdges:     len(el.Edges),
		AvgOutDegree: float64(len(el.Edges)) / float64(el.NumVertices),
		Weighted:     el.Weighted,
		Directed:     el.Directed,
	}
}

// parallelEdges fills indices [0, m) concurrently; each index derives
// its RNG from the seed and index so results are schedule-independent.
func parallelEdges(m, workers int, body func(i int, r *xrand.RNG), seed uint64) {
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= m {
			break
		}
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				body(i, xrand.New(seed^xrand.Mix64(uint64(i))))
			}
		}(lo, hi)
	}
	wg.Wait()
}
