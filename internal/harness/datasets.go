package harness

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/hpcl-repro/epg/internal/datasets"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/kronecker"
)

// DatasetOptions parameterizes dataset resolution.
type DatasetOptions struct {
	// Seed for synthetic generation.
	Seed uint64
	// RealWorldDivisor shrinks the synthetic Dota-League and
	// cit-Patents analogues (1 = published full size).
	RealWorldDivisor int
	// EdgeFactor overrides the Kronecker edge factor (default 16).
	EdgeFactor int
}

// ResolveDataset materializes a named dataset:
//
//   - "kron-<scale>": Graph500 Kronecker graph of that scale;
//   - "dota-league": the dense weighted Dota-League analogue;
//   - "cit-Patents": the sparse citation-network analogue.
func ResolveDataset(name string, opt DatasetOptions) (*graph.EdgeList, error) {
	switch {
	case strings.HasPrefix(name, "kron-"):
		scale, err := strconv.Atoi(strings.TrimPrefix(name, "kron-"))
		if err != nil || scale < 1 {
			return nil, fmt.Errorf("harness: bad kronecker dataset %q", name)
		}
		return kronecker.Generate(kronecker.Params{
			Scale:      scale,
			EdgeFactor: opt.EdgeFactor,
			Seed:       opt.Seed,
		}), nil
	case name == string(datasets.DotaLeague):
		return datasets.GenerateDotaLeague(datasets.Config{
			ScaleDivisor: opt.RealWorldDivisor,
			Seed:         opt.Seed,
		}), nil
	case name == string(datasets.CitPatents):
		return datasets.GenerateCitPatents(datasets.Config{
			ScaleDivisor: opt.RealWorldDivisor,
			Seed:         opt.Seed,
		}), nil
	default:
		return nil, fmt.Errorf("harness: unknown dataset %q (want kron-<scale>, %s, or %s)",
			name, datasets.DotaLeague, datasets.CitPatents)
	}
}
