package parallel

import (
	"runtime"

	"github.com/hpcl-repro/epg/internal/xrand"
)

// Topology describes the socket layout the work-stealing scheduler
// places workers and chunks onto: `Sockets` groups of
// ceil(workers/Sockets) consecutive worker IDs. Chunk affinity follows
// the static owner — chunk c belongs to worker c % workers, and
// therefore to that worker's socket — so a topology-aware thief that
// prefers same-socket victims also prefers chunks whose data its
// socket already touched during the prefill.
//
// The zero Topology means "unspecified" and resolves to
// DefaultTopology where a concrete layout is needed. Nothing
// observable depends on the real topology: outputs key off chunk
// indices and modeled durations off the simmachine's own virtual
// topology (Spec.Sockets), so the real layout only shifts wall-clock
// time.
type Topology struct {
	// Sockets is the socket count; values below 1 (including the
	// zero Topology) resolve to DefaultTopology.
	Sockets int
	// Nodes is the virtual cluster node count (simmachine.SetCluster):
	// values above 1 group ceil(workers/Nodes) consecutive worker IDs
	// per node and add a third, outermost victim-preference level —
	// a thief empties its own node's sockets before crossing to a
	// remote node. Values below 2 mean a single node (no outer level,
	// behavior unchanged).
	Nodes int
}

// DefaultTopology guesses a socket layout from GOMAXPROCS: one socket
// per 16 hardware threads, capped at 4. Laptops and CI containers get
// a single socket (two-level stealing degenerates to flat stealing);
// large hosts get the cross-socket victim ordering.
func DefaultTopology() Topology {
	s := (runtime.GOMAXPROCS(0) + 15) / 16
	if s < 1 {
		s = 1
	}
	if s > 4 {
		s = 4
	}
	return Topology{Sockets: s}
}

// resolve clamps the topology to a concrete socket count in
// [1, workers], applying the GOMAXPROCS default when unspecified.
func (t Topology) resolve(workers int) int {
	s := t.Sockets
	if s < 1 {
		s = DefaultTopology().Sockets
	}
	if s > workers {
		s = workers
	}
	return s
}

// resolveNodes clamps the node count to [1, workers]; the zero value
// (and any count below 1) means a single node.
func (t Topology) resolveNodes(workers int) int {
	nd := t.Nodes
	if nd < 1 {
		nd = 1
	}
	if nd > workers {
		nd = workers
	}
	return nd
}

// workersPerSocket returns the size of each consecutive worker block
// for the given total, for a resolved socket count s.
func workersPerSocket(workers, s int) int {
	return (workers + s - 1) / s
}

// socketOf returns the socket of the given worker under this topology
// when `workers` workers participate. forStealTopo inlines the same
// worker/per arithmetic after resolving the topology once — keep the
// two in sync.
func (t Topology) socketOf(worker, workers int) int {
	s := t.resolve(workers)
	return worker / workersPerSocket(workers, s)
}

// forStealTopo executes the chunks under two-level (socket-aware) work
// stealing. The deque prefill is identical to forSteal — worker w owns
// chunks w, w+workers, ... — but an idle worker empties its own socket
// first: randomized probes over same-socket victims, then a
// deterministic same-socket sweep, and only when the whole socket is
// dry does it probe and sweep remote sockets. With one socket every
// victim is local and the discipline is exactly forSteal's.
//
// Termination mirrors forSteal: nothing is pushed after the prefill,
// so when the final deterministic sweep (which covers every other
// deque, local and remote) comes up empty, every chunk has been
// claimed and the idle worker may exit.
func forStealTopo(p *Pool, workers, nchunks int, topo Topology, runChunk func(c, worker int)) {
	sockets := topo.resolve(workers)
	if nodes := topo.resolveNodes(workers); nodes > 1 {
		forStealNodes(p, workers, nchunks, sockets, nodes, runChunk)
		return
	}
	if sockets <= 1 {
		forSteal(p, workers, nchunks, runChunk)
		return
	}
	per := workersPerSocket(workers, sockets)
	deques := prefillDeques(workers, nchunks)
	seed := StealSeed(nchunks, workers)
	p.Run(workers, func(worker int) {
		rng := xrand.New(seed ^ xrand.Mix64(uint64(worker)+1))
		own := deques[worker]
		mySocket := worker / per
		for {
			if c, ok := own.PopBottom(); ok {
				runChunk(int(c), worker)
				continue
			}
			// Level 1: same-socket victims — randomized probes, then a
			// deterministic sweep, so the thief crosses the
			// interconnect only once its whole socket is dry (deques
			// only shrink after the prefill, so an empty local sweep
			// stays empty).
			stole := false
			for tries := 0; tries < workers; tries++ {
				v := int(rng.Uint64() % uint64(workers))
				if v == worker || v/per != mySocket {
					continue
				}
				if c, ok := deques[v].Steal(); ok {
					runChunk(int(c), worker)
					stole = true
					break
				}
			}
			if !stole {
				for off := 1; off < workers; off++ {
					v := (worker + off) % workers
					if v/per != mySocket {
						continue
					}
					if c, ok := deques[v].Steal(); ok {
						runChunk(int(c), worker)
						stole = true
						break
					}
				}
			}
			if stole {
				continue
			}
			// Level 2: remote sockets, randomized.
			for tries := 0; tries < workers; tries++ {
				v := int(rng.Uint64() % uint64(workers))
				if v == worker || v/per == mySocket {
					continue
				}
				if c, ok := deques[v].Steal(); ok {
					runChunk(int(c), worker)
					stole = true
					break
				}
			}
			if stole {
				continue
			}
			// Deterministic remote sweep: the local sweep above saw
			// every same-socket deque empty, so remote deques all
			// empty too means every chunk is claimed.
			found := false
			for off := 1; off < workers; off++ {
				v := (worker + off) % workers
				if v/per == mySocket {
					continue
				}
				if c, ok := deques[v].Steal(); ok {
					runChunk(int(c), worker)
					found = true
					break
				}
			}
			if !found {
				return
			}
		}
	})
}

// forStealNodes executes the chunks under three-level (node- and
// socket-aware) work stealing: worker blocks group into sockets and,
// one level up, into cluster nodes. An idle worker works outward —
// same node and socket, then same node other sockets, then remote
// nodes — with randomized probes followed by a deterministic sweep at
// each level, forStealTopo's discipline with one more ring.
//
// Termination mirrors forStealTopo: nothing is pushed after the
// prefill, so once the three deterministic sweeps (which together
// cover every other deque) all come up empty in one pass, every chunk
// has been claimed and the idle worker may exit.
func forStealNodes(p *Pool, workers, nchunks, sockets, nodes int, runChunk func(c, worker int)) {
	perSock := workersPerSocket(workers, sockets)
	perNode := (workers + nodes - 1) / nodes
	deques := prefillDeques(workers, nchunks)
	seed := StealSeed(nchunks, workers)
	p.Run(workers, func(worker int) {
		rng := xrand.New(seed ^ xrand.Mix64(uint64(worker)+1))
		own := deques[worker]
		mySock, myNode := worker/perSock, worker/perNode
		// level is the interconnect distance to victim v: 0 shares the
		// thief's socket, 1 its node, 2 is across the network.
		level := func(v int) int {
			switch {
			case v/perNode != myNode:
				return 2
			case v/perSock != mySock:
				return 1
			}
			return 0
		}
		steal := func(lvl int, probe bool) bool {
			if probe {
				for tries := 0; tries < workers; tries++ {
					v := int(rng.Uint64() % uint64(workers))
					if v == worker || level(v) != lvl {
						continue
					}
					if c, ok := deques[v].Steal(); ok {
						runChunk(int(c), worker)
						return true
					}
				}
				return false
			}
			for off := 1; off < workers; off++ {
				v := (worker + off) % workers
				if level(v) != lvl {
					continue
				}
				if c, ok := deques[v].Steal(); ok {
					runChunk(int(c), worker)
					return true
				}
			}
			return false
		}
		for {
			if c, ok := own.PopBottom(); ok {
				runChunk(int(c), worker)
				continue
			}
			stole := false
			for lvl := 0; lvl < 3 && !stole; lvl++ {
				stole = steal(lvl, true) || steal(lvl, false)
			}
			if !stole {
				return
			}
		}
	})
}

// prefillDeques builds the per-worker Chase–Lev deques with the static
// chunk assignment (worker w owns w, w+workers, ...), pushed in
// descending order so owners pop ascending.
func prefillDeques(workers, nchunks int) []*Deque {
	deques := make([]*Deque, workers)
	per := (nchunks + workers - 1) / workers
	for w := range deques {
		deques[w] = NewDeque(per)
	}
	for w := 0; w < workers; w++ {
		last := w + ((nchunks-1-w)/workers)*workers
		for c := last; c >= 0; c -= workers {
			if !deques[w].PushBottom(int64(c)) {
				panic("parallel: steal deque prefill overflow")
			}
		}
	}
	return deques
}
