// Package parallel is the shared parallel-primitives runtime that all
// five engine analogues execute on: a reusable worker pool, a chunked
// ParallelFor with the simmachine's four scheduling policies,
// deterministic reducers, per-worker counters, write-min atomics, a
// parallel prefix sum, and three frontier representations.
//
// # Scheduling policies
//
// For assigns chunk indices to real workers under one of four
// policies, mirroring simmachine.Sched so engines use one policy for
// both real execution and virtual-lane cost accounting:
//
//   - Static: chunk c runs on worker c % workers (OpenMP
//     schedule(static, grain)). Zero coordination, maximal imbalance
//     on skewed chunk costs.
//   - Dynamic: workers take the next unclaimed chunk off one shared
//     atomic counter (OpenMP schedule(dynamic, grain)). Balanced, but
//     every chunk claim contends on the same cache line, which
//     serializes at high worker counts.
//   - Steal: each worker owns a Chase–Lev deque prefilled with its
//     static share; owners pop locally (no contention at all while
//     work remains) and idle workers steal from victims chosen by a
//     per-region seeded RNG. This is the Cilk/TBB discipline that
//     work-stealing runtimes use to make graph kernels scale.
//   - NUMA: Steal with two-level victim selection over a socket
//     Topology (consecutive worker blocks): idle workers probe and
//     sweep same-socket victims before touching a remote socket, so
//     chunks tend to stay on the socket of their static owner. With
//     one socket it is exactly Steal. ForTopo takes the topology
//     explicitly; For uses the GOMAXPROCS-derived DefaultTopology.
//
// # Grain policy
//
// Regions name a grain; AdaptiveGrain offers the frontier-
// proportional alternative (GrainPolicy, Spec.Grain = "adaptive"):
// the smallest align-multiple grain yielding at most
// consumers×AdaptiveChunksPerLane chunks. Fixed grains leave small
// frontier regions with fewer chunks than lanes — nothing to steal
// exactly where degree skew bites — while the adaptive policy keeps
// about eight chunks per lane at any region size. It is a pure
// function of (n, consumers, align); callers pass the *virtual* lane
// count so chunk partitions stay schedule-independent.
//
// # Frontier representations
//
// Graph kernels pick among three frontier structures, in increasing
// order of structure (and decreasing coordination):
//
//   - Queue — a single atomic bag filled with one fetch-and-add per
//     batch. Membership is schedule-independent when the pushed set
//     is; order is racy. Used only where a bag is the point: GraphBIG's
//     chaotic SSSP relaxation (System G's contended frontier is part
//     of its modeled character).
//   - ChunkQueue — per-chunk local buffers concatenated in chunk index
//     order, the real GAP suite's sliding-queue discipline. Since
//     chunk indices are stable, the concatenation is canonical without
//     sorting. BFS top-down in GAP/Graph500/GraphBIG collects
//     tentative write-min claims here (LowerMinInt64 + Claim) and
//     drains the winners; GAP's delta-stepping buckets and both
//     synchronous SSSP modes collect bucket updates and relaxation
//     candidates the same way. This replaced the per-level
//     SortedQueueSlice canonicalization — no kernel sorts a frontier
//     anymore.
//   - Bitmap — dense membership with atomic (idempotent, commutative)
//     set, atomic test, and a parallel two-pass ToSlice built on
//     ScanInt64. GAP's bottom-up BFS keeps its frontier here,
//     converting queue↔bitmap at the direction switch exactly as the
//     real sliding queue does; PowerGraph's supersteps use it for
//     their active-vertex sets.
//
// ScanInt64, the parallel exclusive prefix sum, is also the merge step
// of the atomic-free CSR builder (internal/graph.BuildCSR): per-worker
// degree histograms become row offsets with zero per-edge atomics.
//
// # Determinism contract
//
// Everything in this package separates *real execution schedule*
// (which goroutine runs which chunk, decided by the OS and, under
// Steal, by steal races) from *logical schedule* (how chunk indices
// map to results). Kernel outputs and simmachine cost accounting key
// off chunk indices only, so results and modeled durations are
// identical across runs and across real worker counts under every
// policy. Floating-point reductions use per-chunk slots folded in
// chunk order (Reducer); racy helpers whose results are
// order-independent (WriteMinInt64, Counter sums, Queue membership,
// Bitmap sets) are safe because min, integer addition, and bitwise OR
// are commutative. The ChunkQueue claim protocol extends this to
// frontier *order*: every LowerMinInt64 lowering pushes a tentative
// Claim, and the drain keeps exactly the claim matching the final
// minimum — so the winner's chunk, and with it the concatenated
// order, is a pure function of the input.
//
// # Fidelity notes
//
// The pool models nothing: it is the real execution substrate. What
// it cannot reproduce is hardware concurrency beyond GOMAXPROCS —
// worker counts above the core count are legal (goroutines are
// multiplexed) and exercised by the determinism tests, but wall-clock
// speedup saturates at the host's parallelism. Modeled scaling comes
// from internal/simmachine instead.
package parallel
