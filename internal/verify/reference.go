package verify

import (
	"container/heap"
	"math"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
)

// Prepared bundles the homogenized structures shared by references
// and validators.
type Prepared struct {
	El  *graph.EdgeList
	Out *graph.CSR
	In  *graph.CSR // equals Out for undirected inputs
}

// Prepare homogenizes an edge list the way every engine does: drop
// self-loops, deduplicate, sort, and symmetrize undirected inputs.
func Prepare(el *graph.EdgeList) *Prepared {
	out := graph.BuildCSR(el, graph.BuildOptions{
		Symmetrize:    !el.Directed,
		DropSelfLoops: true,
		Dedup:         true,
		Sort:          true,
	})
	in := out
	if el.Directed {
		in = graph.Transpose(out, 0)
		in.SortAdjacency()
	}
	return &Prepared{El: el, Out: out, In: in}
}

// BFS computes the reference parent tree and level array.
func BFS(p *Prepared, root graph.VID) *engines.BFSResult {
	n := p.Out.NumVertices
	res := &engines.BFSResult{
		Root:   root,
		Parent: make([]int64, n),
		Depth:  make([]int64, n),
	}
	for i := range res.Parent {
		res.Parent[i] = engines.NoParent
		res.Depth[i] = -1
	}
	res.Parent[root] = int64(root)
	res.Depth[root] = 0
	queue := []graph.VID{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range p.Out.Neighbors(v) {
			res.EdgesExamined++
			if res.Parent[u] == engines.NoParent {
				res.Parent[u] = int64(v)
				res.Depth[u] = res.Depth[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return res
}

type distItem struct {
	v graph.VID
	d float64
}

type distHeap []distItem

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// SSSP computes reference shortest-path distances with Dijkstra.
func SSSP(p *Prepared, root graph.VID) *engines.SSSPResult {
	n := p.Out.NumVertices
	res := &engines.SSSPResult{
		Root:   root,
		Dist:   make([]float64, n),
		Parent: make([]int64, n),
	}
	for i := range res.Dist {
		res.Dist[i] = math.Inf(1)
		res.Parent[i] = engines.NoParent
	}
	res.Dist[root] = 0
	res.Parent[root] = int64(root)
	h := &distHeap{{root, 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(distItem)
		if it.d > res.Dist[it.v] {
			continue
		}
		adj := p.Out.Neighbors(it.v)
		w := p.Out.NeighborWeights(it.v)
		for i, u := range adj {
			res.Relaxations++
			nd := it.d + float64(w[i])
			if nd < res.Dist[u] {
				res.Dist[u] = nd
				res.Parent[u] = int64(it.v)
				heap.Push(h, distItem{u, nd})
			}
		}
	}
	return res
}

// PageRank computes the reference float64 scores with the paper's
// homogenized L1 stopping criterion.
func PageRank(p *Prepared, opts engines.PROpts) *engines.PRResult {
	opts = opts.Normalize()
	n := p.Out.NumVertices
	rank := make([]float64, n)
	next := make([]float64, n)
	inv := 1.0 / float64(n)
	for i := range rank {
		rank[i] = inv
	}
	outDeg := p.Out.OutDegrees()
	res := &engines.PRResult{}
	for iter := 1; iter <= opts.MaxIter; iter++ {
		var dangling float64
		for v := 0; v < n; v++ {
			if outDeg[v] == 0 {
				dangling += rank[v]
			}
		}
		base := (1-opts.Damping)*inv + opts.Damping*dangling*inv
		for i := range next {
			next[i] = base
		}
		for v := 0; v < n; v++ {
			if outDeg[v] == 0 {
				continue
			}
			share := opts.Damping * rank[v] / float64(outDeg[v])
			for _, u := range p.Out.Neighbors(graph.VID(v)) {
				next[u] += share
			}
		}
		var l1 float64
		for i := range rank {
			l1 += math.Abs(next[i] - rank[i])
		}
		rank, next = next, rank
		res.Iterations = iter
		if l1 < opts.Epsilon {
			break
		}
	}
	res.Rank = rank
	return res
}

// CDLP runs synchronous label propagation for maxIter iterations.
func CDLP(p *Prepared, maxIter int) *engines.CDLPResult {
	n := p.Out.NumVertices
	label := make([]graph.VID, n)
	next := make([]graph.VID, n)
	for i := range label {
		label[i] = graph.VID(i)
	}
	counts := make(map[graph.VID]int)
	res := &engines.CDLPResult{}
	for iter := 1; iter <= maxIter; iter++ {
		changed := false
		for v := 0; v < n; v++ {
			clear(counts)
			for _, u := range p.Out.Neighbors(graph.VID(v)) {
				counts[label[u]]++
			}
			if p.In != p.Out {
				for _, u := range p.In.Neighbors(graph.VID(v)) {
					counts[label[u]]++
				}
			}
			next[v] = bestLabel(counts, label[v])
			if next[v] != label[v] {
				changed = true
			}
		}
		label, next = next, label
		res.Iterations = iter
		if !changed {
			break
		}
	}
	res.Label = label
	return res
}

// bestLabel returns the most frequent label, ties broken toward the
// smallest; isolated vertices keep their own label.
func bestLabel(counts map[graph.VID]int, own graph.VID) graph.VID {
	if len(counts) == 0 {
		return own
	}
	best := graph.VID(0)
	bestN := -1
	for l, c := range counts {
		if c > bestN || (c == bestN && l < best) {
			best, bestN = l, c
		}
	}
	return best
}

// LCC computes local clustering coefficients under the LDBC
// definition (see package comment).
func LCC(p *Prepared) *engines.LCCResult {
	n := p.Out.NumVertices
	coeff := make([]float64, n)
	for v := 0; v < n; v++ {
		nbrs := neighborhood(p, graph.VID(v))
		d := len(nbrs)
		if d < 2 {
			continue
		}
		links := 0
		for _, u := range nbrs {
			for _, w := range nbrs {
				if u != w && p.Out.HasEdge(u, w) {
					links++
				}
			}
		}
		coeff[v] = float64(links) / float64(d*(d-1))
	}
	return &engines.LCCResult{Coeff: coeff}
}

// neighborhood returns the sorted distinct in∪out neighbors of v,
// excluding v itself.
func neighborhood(p *Prepared, v graph.VID) []graph.VID {
	out := p.Out.Neighbors(v)
	if p.In == p.Out {
		return dropSelf(out, v) // already sorted and deduped
	}
	in := p.In.Neighbors(v)
	merged := make([]graph.VID, 0, len(out)+len(in))
	i, j := 0, 0
	for i < len(out) || j < len(in) {
		var next graph.VID
		switch {
		case i >= len(out):
			next = in[j]
			j++
		case j >= len(in):
			next = out[i]
			i++
		case out[i] < in[j]:
			next = out[i]
			i++
		case in[j] < out[i]:
			next = in[j]
			j++
		default:
			next = out[i]
			i++
			j++
		}
		if next == v {
			continue
		}
		if len(merged) == 0 || merged[len(merged)-1] != next {
			merged = append(merged, next)
		}
	}
	return merged
}

func dropSelf(sorted []graph.VID, v graph.VID) []graph.VID {
	out := make([]graph.VID, 0, len(sorted))
	for _, u := range sorted {
		if u != v {
			out = append(out, u)
		}
	}
	return out
}

// WCC computes weakly connected components with union-find and
// canonicalizes IDs to the minimum member.
func WCC(p *Prepared) *engines.WCCResult {
	n := p.Out.NumVertices
	parent := make([]graph.VID, n)
	for i := range parent {
		parent[i] = graph.VID(i)
	}
	var find func(v graph.VID) graph.VID
	find = func(v graph.VID) graph.VID {
		for parent[v] != v {
			parent[v] = parent[parent[v]] // path halving
			v = parent[v]
		}
		return v
	}
	union := func(a, b graph.VID) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra < rb { // union by min keeps canonical form cheap
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	for v := 0; v < n; v++ {
		for _, u := range p.Out.Neighbors(graph.VID(v)) {
			union(graph.VID(v), u)
		}
	}
	comp := make([]graph.VID, n)
	for v := range comp {
		comp[v] = find(graph.VID(v))
	}
	return &engines.WCCResult{Component: comp}
}
