// Determinism tests: the parallel runtime's contract is that kernel
// outputs and simmachine region durations depend only on the Spec —
// never on the goroutine schedule or the real worker count. Each case
// runs the same kernel twice at the same worker count and once per
// extra worker count, comparing outputs bitwise and modeled durations
// exactly.
//
// Scope: BFS and PageRank are fully deterministic in every engine
// (write-min claims, chunk-ordered/bitmap frontiers, chunk-ordered
// reductions), as
// are GraphMat's and PowerGraph's synchronous SSSP. GAP's
// delta-stepping and GraphBIG's relaxation default to their chaotic
// character (schedule-dependent work traces, as in the real systems)
// — for the defaults only the fixed-point distances are bit-compared
// — but their synchronous modes (Spec.SyncSSSP) join the full wall:
// parents, relaxation counts, and durations included. The
// work-stealing scheduler (Spec.Sched = "steal") is walled across all
// six kernels: bit-identical outputs and modeled durations at every
// worker count.
package all

import (
	"math"
	"os"
	"slices"
	"testing"

	"github.com/hpcl-repro/epg/internal/core"
	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/harness"
	"github.com/hpcl-repro/epg/internal/kronecker"
	"github.com/hpcl-repro/epg/internal/parallel"
	"github.com/hpcl-repro/epg/internal/power"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// workerCounts exercises serial, oversubscribed, and (on multicore
// hosts) genuinely parallel execution. Counts above GOMAXPROCS are
// legal: goroutines are multiplexed.
var workerCounts = []int{1, 2, 4}

// kernelRun is one engine execution with its observables. The joules
// are the power model integrated over the run's region trace
// (power.MeasureTrace with the default calibration): a pure function
// of the modeled schedule, so the determinism walls pin them exactly
// like durations.
type kernelRun struct {
	durations []float64 // per-region modeled seconds, in order
	elapsed   float64
	cpuJoules float64
	ramJoules float64
	out       any
}

// runOpts tweaks a kernel run beyond the worker count.
type runOpts struct {
	syncSSSP  bool             // enable the synchronous SSSP modes
	sched     simmachine.Sched // machine-wide policy override
	override  bool             // apply sched
	sockets   int              // virtual sockets for the locality model (0 = default)
	adaptive  bool             // frontier-proportional grain policy
	placement bool             // first-touch page-placement model
	compress  bool             // delta+varint compressed adjacency (GAP, Graph500)
	nodes     int              // virtual cluster nodes (0/1 = single box)
	partition string           // cluster partition scheme ("1d" or "2d"), with nodes > 1
}

func runKernel(t *testing.T, name string, alg engines.Algorithm, el *graph.EdgeList, root graph.VID, workers int) kernelRun {
	t.Helper()
	return runKernelOpts(t, name, alg, el, root, workers, runOpts{})
}

func runKernelOpts(t *testing.T, name string, alg engines.Algorithm, el *graph.EdgeList, root graph.VID, workers int, opts runOpts) kernelRun {
	t.Helper()
	eng, err := Registry().New(name)
	if err != nil {
		t.Fatal(err)
	}
	if opts.syncSSSP {
		if s, ok := eng.(engines.SyncSSSPSetter); ok {
			s.SetSyncSSSP(true)
		}
	}
	if opts.compress {
		if s, ok := eng.(engines.CompressSetter); ok {
			s.SetCompress(true)
		}
	}
	m := simmachine.New(simmachine.Haswell72(), 8)
	m.SetWorkers(workers)
	if opts.override {
		m.SetSchedOverride(opts.sched)
	}
	if opts.sockets > 0 {
		m.SetSockets(opts.sockets)
	}
	if opts.adaptive {
		m.SetGrainPolicy(parallel.GrainAdaptive)
	}
	if opts.placement {
		m.SetPlacement(true)
	}
	if opts.nodes > 1 {
		var owner []int16
		if opts.partition == core.Partition2D {
			owner = clusterOwner(el, opts.nodes)
		}
		m.SetCluster(opts.nodes, owner)
	}
	inst, err := eng.Load(el, m)
	if err != nil {
		t.Fatalf("%s load: %v", name, err)
	}
	inst.BuildStructure()
	m.Reset()
	out, err := engines.RunAlgorithm(inst, alg, root)
	if err != nil {
		t.Fatalf("%s %s: %v", name, alg, err)
	}
	durations := make([]float64, 0, len(m.Trace()))
	for _, r := range m.Trace() {
		durations = append(durations, r.Seconds)
	}
	rd := power.DefaultConstants().MeasureTrace(m.Trace())
	return kernelRun{
		durations: durations, elapsed: m.Elapsed(),
		cpuJoules: rd.CPUJoules, ramJoules: rd.RAMJoules, out: out,
	}
}

func sameDurations(t *testing.T, label string, a, b kernelRun) {
	t.Helper()
	if a.elapsed != b.elapsed {
		t.Errorf("%s: modeled elapsed differs: %v vs %v", label, a.elapsed, b.elapsed)
	}
	if math.Float64bits(a.cpuJoules) != math.Float64bits(b.cpuJoules) ||
		math.Float64bits(a.ramJoules) != math.Float64bits(b.ramJoules) {
		t.Errorf("%s: modeled joules differ: (%v cpu, %v ram) vs (%v cpu, %v ram)",
			label, a.cpuJoules, a.ramJoules, b.cpuJoules, b.ramJoules)
	}
	if len(a.durations) != len(b.durations) {
		t.Errorf("%s: region count differs: %d vs %d", label, len(a.durations), len(b.durations))
		return
	}
	for i := range a.durations {
		if a.durations[i] != b.durations[i] {
			t.Errorf("%s: region %d duration %v vs %v", label, i, a.durations[i], b.durations[i])
			return
		}
	}
}

func sameInt64s(t *testing.T, label string, a, b []int64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("%s: index %d: %d vs %d", label, i, a[i], b[i])
			return
		}
	}
}

func sameFloat64sBitwise(t *testing.T, label string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Errorf("%s: index %d: %x vs %x", label, i, math.Float64bits(a[i]), math.Float64bits(b[i]))
			return
		}
	}
}

func determinismGraph() (*graph.EdgeList, graph.VID) {
	el := kronecker.Generate(kronecker.Params{Scale: 10, Seed: 42})
	return el, 2 // any reachable root works; keep it fixed
}

func TestBFSDeterministicAcrossRunsAndWorkers(t *testing.T) {
	el, root := determinismGraph()
	for _, name := range []string{Graph500, GAP, GraphBIG, GraphMat} {
		t.Run(name, func(t *testing.T) {
			base := runKernel(t, name, engines.BFS, el, root, workerCounts[0])
			ref := base.out.(*engines.BFSResult)
			for _, workers := range workerCounts {
				for rep := 0; rep < 2; rep++ {
					got := runKernel(t, name, engines.BFS, el, root, workers)
					res := got.out.(*engines.BFSResult)
					sameInt64s(t, "parent", ref.Parent, res.Parent)
					sameInt64s(t, "depth", ref.Depth, res.Depth)
					if ref.EdgesExamined != res.EdgesExamined {
						t.Errorf("edges examined %d vs %d", ref.EdgesExamined, res.EdgesExamined)
					}
					sameDurations(t, "bfs", base, got)
				}
			}
		})
	}
}

func TestPageRankDeterministicAcrossRunsAndWorkers(t *testing.T) {
	el, _ := determinismGraph()
	for _, name := range []string{GAP, GraphBIG, GraphMat, PowerGraph} {
		t.Run(name, func(t *testing.T) {
			base := runKernel(t, name, engines.PageRank, el, 0, workerCounts[0])
			ref := base.out.(*engines.PRResult)
			for _, workers := range workerCounts {
				got := runKernel(t, name, engines.PageRank, el, 0, workers)
				res := got.out.(*engines.PRResult)
				if ref.Iterations != res.Iterations {
					t.Errorf("iterations %d vs %d", ref.Iterations, res.Iterations)
				}
				sameFloat64sBitwise(t, "rank", ref.Rank, res.Rank)
				sameDurations(t, "pr", base, got)
			}
		})
	}
}

func TestSSSPDeterministicAcrossRunsAndWorkers(t *testing.T) {
	el, root := determinismGraph()
	// Synchronous engines: everything is deterministic, durations
	// included. Chaotic engines (GAP delta-stepping, GraphBIG): the
	// fixed-point distances are deterministic, the work trace is not.
	sync := map[string]bool{GraphMat: true, PowerGraph: true}
	for _, name := range []string{GAP, GraphBIG, GraphMat, PowerGraph} {
		t.Run(name, func(t *testing.T) {
			base := runKernel(t, name, engines.SSSP, el, root, workerCounts[0])
			ref := base.out.(*engines.SSSPResult)
			for _, workers := range workerCounts {
				got := runKernel(t, name, engines.SSSP, el, root, workers)
				res := got.out.(*engines.SSSPResult)
				sameFloat64sBitwise(t, "dist", ref.Dist, res.Dist)
				if sync[name] {
					sameInt64s(t, "parent", ref.Parent, res.Parent)
					if ref.Relaxations != res.Relaxations {
						t.Errorf("relaxations %d vs %d", ref.Relaxations, res.Relaxations)
					}
					sameDurations(t, "sssp", base, got)
				}
			}
		})
	}
}

// TestSpecDurationsDeterministic runs the same harness Spec end to end
// twice and across worker counts: every per-trial modeled measurement
// must be identical (the paper's figures are functions of the Spec,
// not of the host's scheduler).
func TestSpecDurationsDeterministic(t *testing.T) {
	el := kronecker.Generate(kronecker.Params{Scale: 9, Seed: 7})
	r := harness.NewRunner(Registry())
	for _, alg := range []engines.Algorithm{engines.BFS, engines.PageRank} {
		spec := func(workers int) ([]float64, []float64) {
			s, err := r.Run(coreSpec(alg, workers), el)
			if err != nil {
				t.Fatal(err)
			}
			algSec := make([]float64, len(s))
			consSec := make([]float64, len(s))
			for i, res := range s {
				algSec[i] = res.AlgorithmSec
				consSec[i] = res.ConstructionSec
			}
			return algSec, consSec
		}
		baseAlg, baseCons := spec(1)
		for _, workers := range []int{1, 2, 4} {
			for rep := 0; rep < 2; rep++ {
				gotAlg, gotCons := spec(workers)
				sameFloat64sBitwise(t, string(alg)+" algorithm seconds", baseAlg, gotAlg)
				sameFloat64sBitwise(t, string(alg)+" construction seconds", baseCons, gotCons)
			}
		}
	}
}

func coreSpec(alg engines.Algorithm, workers int) core.Spec {
	return core.Spec{
		Dataset:   "determinism",
		Algorithm: alg,
		Threads:   8,
		Workers:   workers,
		Roots:     3,
		Seed:      5,
	}
}

func sameVIDs(t *testing.T, label string, a, b []graph.VID) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("%s: index %d: %d vs %d", label, i, a[i], b[i])
			return
		}
	}
}

// sameOutputs bit-compares two kernel outputs of the same type.
func sameOutputs(t *testing.T, label string, ref, got any) {
	t.Helper()
	switch r := ref.(type) {
	case *engines.BFSResult:
		g := got.(*engines.BFSResult)
		sameInt64s(t, label+" parent", r.Parent, g.Parent)
		sameInt64s(t, label+" depth", r.Depth, g.Depth)
		if r.EdgesExamined != g.EdgesExamined {
			t.Errorf("%s: edges examined %d vs %d", label, r.EdgesExamined, g.EdgesExamined)
		}
	case *engines.SSSPResult:
		g := got.(*engines.SSSPResult)
		sameFloat64sBitwise(t, label+" dist", r.Dist, g.Dist)
		sameInt64s(t, label+" parent", r.Parent, g.Parent)
		if r.Relaxations != g.Relaxations {
			t.Errorf("%s: relaxations %d vs %d", label, r.Relaxations, g.Relaxations)
		}
	case *engines.PRResult:
		g := got.(*engines.PRResult)
		sameFloat64sBitwise(t, label+" rank", r.Rank, g.Rank)
		if r.Iterations != g.Iterations {
			t.Errorf("%s: iterations %d vs %d", label, r.Iterations, g.Iterations)
		}
	case *engines.CDLPResult:
		g := got.(*engines.CDLPResult)
		sameVIDs(t, label+" label", r.Label, g.Label)
		if r.Iterations != g.Iterations {
			t.Errorf("%s: iterations %d vs %d", label, r.Iterations, g.Iterations)
		}
	case *engines.LCCResult:
		g := got.(*engines.LCCResult)
		sameFloat64sBitwise(t, label+" coeff", r.Coeff, g.Coeff)
	case *engines.WCCResult:
		g := got.(*engines.WCCResult)
		sameVIDs(t, label+" component", r.Component, g.Component)
	default:
		t.Fatalf("%s: unknown result type %T", label, ref)
	}
}

// TestSyncSSSPJoinsDeterminismWall is the ROADMAP follow-up: with the
// synchronous modes enabled, GAP's delta-stepping and GraphBIG's
// relaxation are fully deterministic — distances, parents, relaxation
// counts, AND modeled durations — across runs and worker counts.
func TestSyncSSSPJoinsDeterminismWall(t *testing.T) {
	el, root := determinismGraph()
	opts := runOpts{syncSSSP: true}
	for _, name := range []string{GAP, GraphBIG} {
		t.Run(name, func(t *testing.T) {
			base := runKernelOpts(t, name, engines.SSSP, el, root, workerCounts[0], opts)
			for _, workers := range workerCounts {
				for rep := 0; rep < 2; rep++ {
					got := runKernelOpts(t, name, engines.SSSP, el, root, workers, opts)
					sameOutputs(t, "sync sssp", base.out, got.out)
					sameDurations(t, "sync sssp", base, got)
				}
			}
		})
	}
}

// TestSchedStealDeterministicAllKernels is the work-stealing wall:
// under the Steal policy override (with synchronous SSSP, so every
// engine qualifies) all six kernels produce bit-identical outputs and
// modeled durations at 1/2/4 workers for every engine that implements
// them.
func TestSchedStealDeterministicAllKernels(t *testing.T) {
	el, root := determinismGraph()
	opts := runOpts{syncSSSP: true, sched: simmachine.Steal, override: true}
	for _, alg := range engines.AllAlgorithms {
		t.Run(string(alg), func(t *testing.T) {
			for _, name := range Names {
				eng, err := Registry().New(name)
				if err != nil {
					t.Fatal(err)
				}
				if !eng.Has(alg) {
					continue
				}
				t.Run(name, func(t *testing.T) {
					base := runKernelOpts(t, name, alg, el, root, workerCounts[0], opts)
					for _, workers := range workerCounts {
						got := runKernelOpts(t, name, alg, el, root, workers, opts)
						sameOutputs(t, "steal", base.out, got.out)
						sameDurations(t, "steal", base, got)
					}
				})
			}
		})
	}
}

// TestSpecSchedKnobEndToEnd drives the harness with the new Spec
// knobs: per-trial modeled measurements under Sched="steal" +
// SyncSSSP must be identical across worker counts, and an unknown
// policy must be rejected.
func TestSpecSchedKnobEndToEnd(t *testing.T) {
	el := kronecker.Generate(kronecker.Params{Scale: 9, Seed: 7})
	r := harness.NewRunner(Registry())
	run := func(workers int) []float64 {
		spec := coreSpec(engines.SSSP, workers)
		spec.Sched = core.SchedSteal
		spec.SyncSSSP = true
		rs, err := r.Run(spec, el)
		if err != nil {
			t.Fatal(err)
		}
		secs := make([]float64, len(rs))
		for i, res := range rs {
			secs[i] = res.AlgorithmSec
		}
		return secs
	}
	base := run(1)
	for _, workers := range []int{2, 4} {
		sameFloat64sBitwise(t, "steal spec seconds", base, run(workers))
	}

	bad := coreSpec(engines.BFS, 1)
	bad.Sched = "fifo"
	if _, err := r.Run(bad, el); err == nil {
		t.Error("unknown scheduling policy accepted")
	}
}

// TestSchedNUMADeterministicAllKernels is the two-level work-stealing
// wall: under the NUMA policy override (with synchronous SSSP, so
// every engine qualifies) all six kernels produce bit-identical
// outputs and modeled durations across runs and worker counts at
// every socket count — and the *outputs* are additionally identical
// across socket counts, since the locality model may only move
// modeled time, never results.
func TestSchedNUMADeterministicAllKernels(t *testing.T) {
	el, root := determinismGraph()
	for _, alg := range engines.AllAlgorithms {
		t.Run(string(alg), func(t *testing.T) {
			for _, name := range Names {
				eng, err := Registry().New(name)
				if err != nil {
					t.Fatal(err)
				}
				if !eng.Has(alg) {
					continue
				}
				t.Run(name, func(t *testing.T) {
					var acrossSockets any
					for _, sockets := range []int{1, 2, 4} {
						opts := runOpts{syncSSSP: true, sched: simmachine.NUMA, override: true, sockets: sockets}
						base := runKernelOpts(t, name, alg, el, root, workerCounts[0], opts)
						if acrossSockets == nil {
							acrossSockets = base.out
						} else {
							sameOutputs(t, "numa outputs across sockets", acrossSockets, base.out)
						}
						for _, workers := range workerCounts {
							got := runKernelOpts(t, name, alg, el, root, workers, opts)
							sameOutputs(t, "numa", base.out, got.out)
							sameDurations(t, "numa", base, got)
						}
					}
				})
			}
		})
	}
}

// TestNUMASocketsOneMatchesSteal: with one virtual socket the NUMA
// policy must be byte-identical to plain Steal — outputs AND modeled
// durations — for every kernel and engine. This pins the contract
// that the locality model is a strict extension: it only diverges
// when Spec.Sockets asks for more than one socket.
func TestNUMASocketsOneMatchesSteal(t *testing.T) {
	el, root := determinismGraph()
	for _, alg := range engines.AllAlgorithms {
		t.Run(string(alg), func(t *testing.T) {
			for _, name := range Names {
				eng, err := Registry().New(name)
				if err != nil {
					t.Fatal(err)
				}
				if !eng.Has(alg) {
					continue
				}
				t.Run(name, func(t *testing.T) {
					steal := runKernelOpts(t, name, alg, el, root, 2,
						runOpts{syncSSSP: true, sched: simmachine.Steal, override: true})
					numa := runKernelOpts(t, name, alg, el, root, 2,
						runOpts{syncSSSP: true, sched: simmachine.NUMA, override: true, sockets: 1})
					sameOutputs(t, "numa vs steal", steal.out, numa.out)
					sameDurations(t, "numa vs steal", steal, numa)
				})
			}
		})
	}
}

// TestSpecNUMAKnobEndToEnd drives the harness with the locality
// knobs: per-trial modeled measurements under Sched="numa" must be
// identical across worker counts at every socket count; Spec.Sockets
// must reach the steal simulation (sockets=4 changes at least one
// trial's modeled seconds relative to sockets=1 — the cross-socket
// penalty is live end-to-end); and malformed specs are rejected.
// (The RemotePenalty *byte* multiplier only moves durations on
// memory-bound regions, which these small-graph kernels are not; its
// effect is pinned at the machine layer by
// simmachine.TestSetRemotePenaltyOverridesModel, and here we assert
// the knob keeps worker-independence and changes nothing at
// sockets=1.)
func TestSpecNUMAKnobEndToEnd(t *testing.T) {
	el := kronecker.Generate(kronecker.Params{Scale: 9, Seed: 7})
	r := harness.NewRunner(Registry())
	run := func(workers, sockets int, remotePenalty float64) []float64 {
		spec := coreSpec(engines.SSSP, workers)
		spec.Sched = core.SchedNUMA
		spec.SyncSSSP = true
		spec.Sockets = sockets
		spec.RemotePenalty = remotePenalty
		rs, err := r.Run(spec, el)
		if err != nil {
			t.Fatal(err)
		}
		secs := make([]float64, len(rs))
		for i, res := range rs {
			secs[i] = res.AlgorithmSec
		}
		return secs
	}
	perSocket := map[int][]float64{}
	for _, sockets := range []int{1, 2, 4} {
		base := run(1, sockets, 0)
		perSocket[sockets] = base
		for _, workers := range []int{2, 4} {
			sameFloat64sBitwise(t, "numa spec seconds", base, run(workers, sockets, 0))
		}
	}
	// Spec.Sockets must actually reach the simulation: at 4 sockets
	// some steals cross and their CAS penalties shift modeled time.
	if slices.Equal(perSocket[1], perSocket[4]) {
		t.Error("sockets=4 modeled seconds identical to sockets=1: Spec.Sockets not reaching the steal simulation")
	}
	// The penalty knob must stay worker-independent, and with one
	// socket there is nothing remote for it to scale.
	stiff := run(1, 4, 3)
	sameFloat64sBitwise(t, "stiff penalty seconds", stiff, run(4, 4, 3))
	sameFloat64sBitwise(t, "penalty at one socket", perSocket[1], run(1, 1, 3))

	bad := coreSpec(engines.BFS, 1)
	bad.Sockets = -1
	if _, err := r.Run(bad, el); err == nil {
		t.Error("negative socket count accepted")
	}
	bad = coreSpec(engines.BFS, 1)
	bad.RemotePenalty = 0.5
	if _, err := r.Run(bad, el); err == nil {
		t.Error("sub-unity remote penalty accepted")
	}
}

// TestBigNUMASweep is the long locality sweep, gated like the kron-18
// conformance wall (a measurement-grade run, not a tier-1 gate): a
// larger graph, more worker counts, repeated runs. Run via
// `make numa-sweep`.
func TestBigNUMASweep(t *testing.T) {
	if os.Getenv("EPG_NUMA_SWEEP") == "" {
		t.Skip("set EPG_NUMA_SWEEP=1 (make numa-sweep) to run the long NUMA determinism sweep")
	}
	el := kronecker.Generate(kronecker.Params{Scale: 12, Seed: 42})
	root := graph.VID(2)
	for _, alg := range engines.AllAlgorithms {
		for _, name := range Names {
			eng, err := Registry().New(name)
			if err != nil {
				t.Fatal(err)
			}
			if !eng.Has(alg) {
				continue
			}
			if alg == engines.LCC {
				// Quadratic in hub degree at this scale; covered by
				// the tier-1 wall on the smaller graph.
				continue
			}
			t.Run(string(alg)+"/"+name, func(t *testing.T) {
				for _, sockets := range []int{1, 2, 4} {
					opts := runOpts{syncSSSP: true, sched: simmachine.NUMA, override: true, sockets: sockets}
					base := runKernelOpts(t, name, alg, el, root, 1, opts)
					for _, workers := range []int{1, 2, 4, 8} {
						for rep := 0; rep < 2; rep++ {
							got := runKernelOpts(t, name, alg, el, root, workers, opts)
							sameOutputs(t, "big numa", base.out, got.out)
							sameDurations(t, "big numa", base, got)
						}
					}
				}
			})
		}
	}
}
