// Command epgd is the resident-graph query daemon: it loads one
// dataset, precomputes the PageRank and WCC vectors, and serves point
// queries over HTTP with admission control, modeled deadlines,
// graceful overload degradation, and live streaming mutations with
// incremental vector maintenance (see internal/server).
//
//	epgd -dataset kron-14 -addr :8090 -queue-cap 64 -qps 0
//
//	GET  /v1/query?op=bfs&src=3&dst=9[&deadline_ms=50]
//	GET  /v1/metrics
//	GET  /v1/healthz
//	POST /v1/refresh
//	POST /v1/mutate    {"ops":[{"op":"insert","src":1,"dst":2,"w":0.5}]}
//
// The unversioned paths are aliases for pre-v1 clients; every non-200
// carries a structured {"code","message","retry_after_ms"} body.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"github.com/hpcl-repro/epg/internal/server"
)

func main() {
	fs := flag.NewFlagSet("epgd", flag.ExitOnError)
	addr := fs.String("addr", ":8090", "listen address")
	dataset := fs.String("dataset", "kron-14", "resident dataset (kron-<scale>, dota-league, cit-Patents)")
	seed := fs.Uint64("seed", 1, "dataset generation seed")
	executors := fs.Int("executors", 2, "engine instances serving in parallel")
	threads := fs.Int("threads", 8, "modeled thread count per executor")
	queueCap := fs.Int("queue-cap", 64, "bounded admission queue capacity (full queue sheds with 429)")
	watermark := fs.Int("watermark", 0, "queue depth at which degradable queries switch to sketch answers (default cap/2)")
	qps := fs.Float64("qps", 0, "token-bucket admission rate in queries/sec (0 disables throttling)")
	burst := fs.Float64("burst", 8, "token-bucket burst size")
	deadlineMS := fs.Float64("deadline-ms", 0, "default modeled service budget in ms (0 = none; per-query deadline_ms overrides)")
	landmarks := fs.Int("landmarks", 8, "landmark count for the degradation sketch")
	compress := fs.Bool("compress", false, "serve from the delta+varint compressed adjacency")
	faults := fs.Bool("fault-injection", false, "permit op=panic queries (soak testing the panic isolation path)")
	logQueries := fs.Bool("log-queries", false, "emit one structured line per query to stderr")
	fs.Parse(os.Args[1:])

	cfg := server.Config{
		Dataset:   *dataset,
		Seed:      *seed,
		Executors: *executors,
		Threads:   *threads,
		Admit: server.AdmitConfig{
			QueueCap:         *queueCap,
			DegradeWatermark: *watermark,
			QPS:              *qps,
			Burst:            *burst,
		},
		DefaultDeadlineSec: *deadlineMS / 1e3,
		Landmarks:          *landmarks,
		Compress:           *compress,
		FaultInjection:     *faults,
	}
	if *logQueries {
		cfg.QueryLog = os.Stderr
	}
	s, err := server.New(cfg)
	if err != nil {
		fatal(err)
	}
	defer s.Close()
	fmt.Fprintf(os.Stderr, "epgd: serving %s (%d vertices, weighted=%t) on %s\n",
		*dataset, s.NumVertices(), s.Weighted(), *addr)
	if err := http.ListenAndServe(*addr, s.Handler()); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "epgd: %v\n", err)
	os.Exit(1)
}
