package server

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"github.com/hpcl-repro/epg/internal/graph"
)

// StudyConfig parameterizes the serving study: one calibration pass
// plus a sweep of offered-load multipliers over the fixed admission
// configuration. Everything downstream of the dataset and seed is
// modeled, so the emitted table is bit-deterministic.
type StudyConfig struct {
	Dataset    string
	Seed       uint64
	Servers    int
	Threads    int
	Landmarks  int
	QueueCap   int
	Watermark  int
	NumQueries int
	Probes     int
	// BucketX sets the token bucket rate as a multiple of calibrated
	// capacity; Burst is absolute. DeadlineX sets the per-query
	// modeled budget as a multiple of the calibrated mean service
	// time.
	BucketX   float64
	Burst     float64
	DeadlineX float64
	// Multipliers is the offered-load axis, as multiples of calibrated
	// capacity: below 1 the system keeps up, above 1 the queue and the
	// shedding/degradation machinery carry the story.
	Multipliers []float64
}

// DefaultStudyConfig pins the committed FIG_serving_study.csv: the
// dataset scale, admission geometry, and load axis the drift gate
// regenerates. Changing anything here changes the artifact.
func DefaultStudyConfig() StudyConfig {
	return StudyConfig{
		Dataset:     "kron-10",
		Seed:        7,
		Servers:     2,
		Threads:     8,
		Landmarks:   8,
		QueueCap:    8,
		Watermark:   4,
		NumQueries:  400,
		Probes:      32,
		BucketX:     3,
		Burst:       8,
		DeadlineX:   1.5,
		Multipliers: []float64{0.5, 0.9, 1.5, 3, 6},
	}
}

// StudyRow is one offered-load point of the serving study.
type StudyRow struct {
	Dataset    string
	Servers    int
	QueueCap   int
	Watermark  int
	Compress   string  // adjacency representation: "off" (raw CSR) or "on" (delta+varint)
	OfferedX   float64 // offered load as a multiple of capacity
	OfferedQPS float64
	BucketQPS  float64
	DeadlineUS float64
	Stats      SimStats
}

// GenerateStudy sweeps the compress axis: for each adjacency
// representation it calibrates capacity on its own bench (the decode
// cost moves service times, so capacity, bucket rate, and deadline all
// recalibrate with it) and then sweeps the offered-load multipliers
// through Simulate. The compress=on half exercises the decode-aware
// cost model under load — previously the serving figure silently
// ignored the knob.
func GenerateStudy(el *graph.EdgeList, cfg StudyConfig) ([]StudyRow, error) {
	var rows []StudyRow
	for _, compress := range []bool{false, true} {
		b, err := NewBench(el, cfg.Threads, cfg.Landmarks, compress)
		if err != nil {
			return nil, err
		}
		capacity := CalibrateCapacity(b, cfg.Servers, cfg.Probes, cfg.Seed)
		if capacity <= 0 {
			return nil, fmt.Errorf("server: capacity calibration produced %v", capacity)
		}
		meanService := float64(cfg.Servers) / capacity
		deadline := cfg.DeadlineX * meanService
		label := "off"
		if compress {
			label = "on"
		}

		for _, mult := range cfg.Multipliers {
			sim := SimConfig{
				Servers: cfg.Servers,
				Admit: AdmitConfig{
					QueueCap:         cfg.QueueCap,
					DegradeWatermark: cfg.Watermark,
					QPS:              cfg.BucketX * capacity,
					Burst:            cfg.Burst,
				},
				DeadlineSec: deadline,
				OfferedQPS:  mult * capacity,
				NumQueries:  cfg.NumQueries,
				Seed:        cfg.Seed,
			}
			st, err := Simulate(b, sim)
			if err != nil {
				return nil, fmt.Errorf("server: study point compress=%s x%v: %w", label, mult, err)
			}
			rows = append(rows, StudyRow{
				Dataset:    cfg.Dataset,
				Servers:    cfg.Servers,
				QueueCap:   cfg.QueueCap,
				Watermark:  cfg.Watermark,
				Compress:   label,
				OfferedX:   mult,
				OfferedQPS: mult * capacity,
				BucketQPS:  cfg.BucketX * capacity,
				DeadlineUS: deadline * 1e6,
				Stats:      st,
			})
		}
	}
	return rows, nil
}

// StudyCSVHeader names the serving-study columns.
const StudyCSVHeader = "dataset,servers,queue_cap,watermark,compress,offered_x,offered_qps,bucket_qps,deadline_us," +
	"queries,admitted,shed_queue_full,shed_throttled,completed,degraded,deadline_exceeded,errors," +
	"max_depth,p50_us,p99_us,mean_us"

// g formats a float with the shortest exact representation, the
// byte-stability idiom the drift gates compare with.
func g(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteStudyCSV emits the table.
func WriteStudyCSV(w io.Writer, rows []StudyRow) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, StudyCSVHeader)
	for _, r := range rows {
		st := r.Stats
		fmt.Fprintf(bw, "%s,%d,%d,%d,%s,%s,%s,%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s,%s,%s\n",
			r.Dataset, r.Servers, r.QueueCap, r.Watermark, r.Compress,
			g(r.OfferedX), g(r.OfferedQPS), g(r.BucketQPS), g(r.DeadlineUS),
			st.Offered, st.Admitted, st.ShedQueueFull, st.ShedThrottled,
			st.Completed, st.Degraded, st.DeadlineExceeded, st.Errors,
			st.MaxDepth, g(st.P50US), g(st.P99US), g(st.MeanUS))
	}
	return bw.Flush()
}
