package gap

import (
	"math"
	"sync/atomic"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/parallel"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// ssspCand is one candidate relaxation discovered during a gather
// pass: "set dist[u] = nd with parent p".
type ssspCand struct {
	u  graph.VID
	p  graph.VID
	nd float64
}

// ssspSync is the synchronous bucket-barrier variant of delta-stepping
// (Engine.SyncSSSP). The bucket structure is identical to the chaotic
// version; what changes is the inner relaxation pass, which becomes a
// gather/apply pair:
//
//   - gather: chunks of the current bucket relax their light edges
//     against a *snapshot* of the distance array (no writes happen
//     during the pass), collecting candidate updates per chunk;
//   - apply: candidates are merged serially in chunk order — first
//     strict improvement wins — updating distances, parents, and
//     bucket membership.
//
// Because the candidate sets are a pure function of the pass-start
// distances and the apply order is fixed, every observable — parents,
// relaxation counts, bucket composition, and the modeled durations of
// both the parallel gather and the serial merge — is independent of
// the real goroutine schedule and worker count. This is the mode the
// determinism wall runs. The price is the serial merge (a real
// bucket-barrier, charged at single-thread speed), which the chaotic
// default does not pay.
func (inst *Instance) ssspSync(root graph.VID) (*engines.SSSPResult, error) {
	n := inst.n
	delta := inst.eng.Delta
	if delta <= 0 {
		delta = DefaultDelta
	}

	res := &engines.SSSPResult{
		Root:   root,
		Dist:   make([]float64, n),
		Parent: make([]int64, n),
	}
	dist := res.Dist // plain float64: sync mode never writes concurrently
	for i := range dist {
		dist[i] = math.Inf(1)
		res.Parent[i] = engines.NoParent
	}
	dist[root] = 0
	res.Parent[root] = int64(root)

	var relaxed int64
	buckets := [][]graph.VID{{root}}
	// queued dedupes same-pass re-adds; stamped with the pass number.
	queued := make([]int32, n)
	pass := int32(0)

	bucketOf := func(d float64) int { return int(d / delta) }
	put := func(bkts [][]graph.VID, idx int, v graph.VID) [][]graph.VID {
		for len(bkts) <= idx {
			bkts = append(bkts, nil)
		}
		bkts[idx] = append(bkts[idx], v)
		return bkts
	}

	// gather collects candidate relaxations of frontier's light
	// (heavy=false) or heavy (heavy=true) edges against the current
	// distance snapshot into the chunk-ordered queue (the serial apply
	// consumes it in chunk order — the same canonical order the old
	// per-chunk slice-of-slices gave, through the shared primitive).
	cands := parallel.NewChunkQueue[ssspCand]()
	gather := func(frontier []graph.VID, bi int, heavy bool) {
		g := inst.m.Grain(len(frontier), 32, 1)
		cands.Reset(parallel.NumChunks(len(frontier), g))
		inst.m.ParallelForChunks(len(frontier), g, simmachine.Dynamic, func(lo, hi, chunk, worker int, w *simmachine.W) {
			var local []ssspCand
			var edges int64
			for _, v := range frontier[lo:hi] {
				dv := dist[v]
				// Skip only entries settled into a LATER bucket. An
				// entry whose distance sits in an earlier bucket (a
				// heavy relaxation that landed at or below bi and was
				// requeued to bi+1) must still relax its light edges
				// here, or that work would be dropped forever.
				if !heavy && bucketOf(dv) > bi {
					continue
				}
				adj := inst.out.Neighbors(v)
				ws := inst.out.NeighborWeights(v)
				for i, u := range adj {
					wt := float64(ws[i])
					if (wt > delta) != heavy {
						continue
					}
					edges++
					nd := dv + wt
					if nd < dist[u] {
						local = append(local, ssspCand{u: u, p: v, nd: nd})
					}
				}
			}
			cands.Put(chunk, local)
			// Commutative sum of a deterministic edge set: the total
			// is schedule-independent even though the adds race.
			atomic.AddInt64(&relaxed, edges)
			w.Charge(costRelax.Scale(float64(edges)))
			w.Charge(costBucketOp.Scale(float64(len(local))))
		})
	}

	for bi := 0; bi < len(buckets); bi++ {
		current := buckets[bi]
		buckets[bi] = nil
		var heavyFrontier []graph.VID
		for len(current) > 0 {
			// Same bucket-granularity cancellation point as the chaotic
			// variant; the check itself charges nothing, so modeled
			// durations are untouched when no deadline fires.
			if err := inst.checkCancel("SSSP"); err != nil {
				return nil, err
			}
			heavyFrontier = append(heavyFrontier, current...)
			pass++
			gather(current, bi, false)
			// Serial apply in chunk order: the bucket barrier.
			var reAdd []graph.VID
			inst.m.Serial(func(w *simmachine.W) {
				var wins int
				ops := cands.Len()
				for _, c := range cands.Slice() {
					if c.nd >= dist[c.u] {
						continue // a chunk-earlier candidate won
					}
					dist[c.u] = c.nd
					res.Parent[c.u] = int64(c.p)
					wins++
					// b < bi is only reachable from an entry whose
					// distance already sat below the bucket; keep
					// settling it here — bucket b has passed.
					if b := bucketOf(c.nd); b <= bi {
						if queued[c.u] != pass {
							queued[c.u] = pass
							reAdd = append(reAdd, c.u)
						}
					} else {
						buckets = put(buckets, b, c.u)
					}
				}
				w.Charge(costClaim.Scale(float64(wins)))
				w.Charge(costBucketOp.Scale(float64(ops)))
			})
			current = reAdd
		}
		// One synchronous pass over the settled bucket's heavy edges.
		if len(heavyFrontier) > 0 {
			pass++
			gather(heavyFrontier, bi, true)
			inst.m.Serial(func(w *simmachine.W) {
				var wins int
				ops := cands.Len()
				for _, c := range cands.Slice() {
					if c.nd >= dist[c.u] {
						continue
					}
					dist[c.u] = c.nd
					res.Parent[c.u] = int64(c.p)
					wins++
					if b := bucketOf(c.nd); b > bi {
						buckets = put(buckets, b, c.u)
					} else {
						// Float rounding landed in the current bucket
						// range; reprocess next bucket, as the chaotic
						// variant does.
						buckets = put(buckets, bi+1, c.u)
					}
				}
				w.Charge(costClaim.Scale(float64(wins)))
				w.Charge(costBucketOp.Scale(float64(ops)))
			})
		}
	}

	res.Relaxations = relaxed
	return res, nil
}
