// Package powergraph implements a Go analogue of PowerGraph (Gonzalez
// et al., OSDI'12), the study's one distributed-memory system, run on
// a single node as in the paper.
//
// Architectural character preserved from the original:
//
//   - edges are partitioned across shards by a greedy vertex-cut
//     placement (the "efficient edge-cut partitioning scheme" the
//     paper credits for PowerGraph's Dota-League SSSP win); vertices
//     spanning shards are replicated, and every superstep pays a
//     ghost-synchronization cost proportional to the replica count;
//   - computation follows the Gather-Apply-Scatter model: per-shard
//     gather sweeps, a synchronization exchange, a vertex-parallel
//     apply, and scatter-driven activation;
//   - the framework carries substantial per-edge and per-superstep
//     overhead (engine dispatch, edge iterators, replica
//     bookkeeping), which dominates on small graphs — the paper's
//     explanation for PowerGraph's poor showing at scale 22;
//   - the toolkit provides no BFS reference implementation, so BFS
//     returns ErrUnsupported (Fig. 8's BFS panel omits PowerGraph);
//   - the graph is ingested and partitioned while reading (no
//     separately-timed construction phase).
//
// Known fidelity gaps: the real system's async engine (chandy-misra
// locking, per-vertex schedulers) is not reproduced — every kernel
// here runs the synchronous engine, which is also what makes its GAS
// kernels bit-deterministic (replica accumulator slots combined in
// shard order). Network serialization between machines is collapsed
// into the modeled ghost-sync cost; there is no RPC. Shard count
// follows the virtual thread count, not a cluster size. All timing is
// simmachine-modeled.
package powergraph
