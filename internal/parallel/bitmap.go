package parallel

import (
	"math/bits"
	"sync/atomic"
)

// Bitmap is a dense frontier: one bit per vertex, set with an atomic
// OR (idempotent and commutative, so concurrent discovery of the same
// vertex is schedule-independent by construction) and tested with an
// atomic load. It is the bottom-up frontier representation of the real
// GAP suite's direction-optimizing BFS and the active-set
// representation of PowerGraph's supersteps: membership costs one bit
// instead of one queue slot, and converting to a vertex slice
// (ToSlice) yields ascending order — canonical without sorting.
//
// Set and Test may race freely. Everything else (Clear, Count,
// ToSlice) observes or replaces the whole bitmap and must only be
// called between regions. ClearRange may run inside a region provided
// concurrent callers own disjoint 64-aligned ranges (chunk grains that
// are multiples of 64 guarantee this).
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap returns an empty bitmap over [0, n).
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the domain size n.
func (b *Bitmap) Len() int { return b.n }

// Set marks i. Safe for concurrent use.
func (b *Bitmap) Set(i int) {
	atomic.OrUint64(&b.words[i>>6], 1<<(uint(i)&63))
}

// Test reports whether i is marked. Safe for concurrent use.
func (b *Bitmap) Test(i int) bool {
	return atomic.LoadUint64(&b.words[i>>6])&(1<<(uint(i)&63)) != 0
}

// Clear unmarks everything. Call only between regions.
func (b *Bitmap) Clear() {
	clear(b.words)
}

// ClearRange unmarks [lo, hi). Interior words are cleared with plain
// stores; boundary words that the range only partially covers are
// masked atomically, so concurrent ClearRange/Set calls on disjoint
// index ranges are race-free even when they share a boundary word.
func (b *Bitmap) ClearRange(lo, hi int) {
	if lo >= hi {
		return
	}
	loWord, hiWord := lo>>6, (hi-1)>>6
	loBit, hiBit := uint(lo)&63, uint(hi-1)&63
	if loWord == hiWord {
		mask := (^uint64(0) << loBit) & (^uint64(0) >> (63 - hiBit))
		atomic.AndUint64(&b.words[loWord], ^mask)
		return
	}
	first := loWord
	if loBit != 0 {
		atomic.AndUint64(&b.words[loWord], ^(^uint64(0) << loBit))
		first++
	}
	last := hiWord
	if hiBit != 63 {
		atomic.AndUint64(&b.words[hiWord], ^(^uint64(0) >> (63 - hiBit)))
		last--
	}
	for w := first; w <= last; w++ {
		b.words[w] = 0
	}
}

// Count returns the number of marked indices. Call only between
// regions.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// bitmapWordGrain is the per-chunk word count of the parallel ToSlice:
// 256 words = 16k bits per chunk keeps the two passes worth their
// scheduling overhead while leaving enough chunks to balance.
const bitmapWordGrain = 256

// ToSlice appends every marked index, in ascending order, to dst and
// returns the extended slice, running both passes (per-chunk popcount,
// then scatter at ScanInt64-derived cursors) on the pool. The output
// is a pure function of the bitmap contents — this is the sort-free
// queue<->bitmap conversion of a direction switch. Call only between
// regions.
func (b *Bitmap) ToSlice(p *Pool, workers int, dst []uint32) []uint32 {
	nw := len(b.words)
	nchunks := NumChunks(nw, bitmapWordGrain)
	if workers > nchunks {
		workers = nchunks
	}
	if workers <= 1 || p == nil {
		return b.appendSerial(dst)
	}
	counts := make([]int64, nchunks)
	For(p, workers, nw, bitmapWordGrain, Static, func(lo, hi, chunk, worker int) {
		var c int64
		for w := lo; w < hi; w++ {
			c += int64(bits.OnesCount64(b.words[w]))
		}
		counts[chunk] = c
	})
	total := ScanInt64(nil, 1, counts) // nchunks is small: serial scan
	base := len(dst)
	dst = append(dst, make([]uint32, total)...)
	out := dst[base:]
	For(p, workers, nw, bitmapWordGrain, Static, func(lo, hi, chunk, worker int) {
		pos := counts[chunk]
		for wi := lo; wi < hi; wi++ {
			w := b.words[wi]
			for w != 0 {
				bit := bits.TrailingZeros64(w)
				out[pos] = uint32(wi<<6 + bit)
				pos++
				w &= w - 1
			}
		}
	})
	return dst
}

func (b *Bitmap) appendSerial(dst []uint32) []uint32 {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			dst = append(dst, uint32(wi<<6+bit))
			w &= w - 1
		}
	}
	return dst
}
