package server

import (
	"fmt"
	"sync"
)

// decision is an admission outcome.
type decision int

const (
	admitOK decision = iota
	admitDegraded
	shedQueueFull
	shedThrottled
)

// tokenBucket is a standard rate limiter over an explicit clock: the
// caller supplies `now` in seconds, so the same bucket runs on wall
// time in the live daemon and on virtual time in the deterministic
// load simulation.
type tokenBucket struct {
	qps    float64 // refill rate; <= 0 disables throttling
	burst  float64
	tokens float64
	last   float64
}

func newTokenBucket(qps, burst float64) tokenBucket {
	if burst < 1 {
		burst = 1
	}
	return tokenBucket{qps: qps, burst: burst, tokens: burst}
}

// allow consumes one token if available. now must be monotonically
// non-decreasing across calls.
func (b *tokenBucket) allow(now float64) bool {
	if b.qps <= 0 {
		return true
	}
	if now > b.last {
		b.tokens += (now - b.last) * b.qps
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// AdmitConfig parameterizes the admission controller.
type AdmitConfig struct {
	// QueueCap bounds the FIFO queue; a request arriving at depth ==
	// QueueCap is shed immediately. Must be >= 1.
	QueueCap int
	// DegradeWatermark is the queue depth at or above which degradable
	// queries are answered from the sketch. 0 disables degradation;
	// values above QueueCap never trigger.
	DegradeWatermark int
	// QPS and Burst parameterize the token bucket; QPS <= 0 disables
	// throttling.
	QPS, Burst float64
}

func (c AdmitConfig) validate() error {
	if c.QueueCap < 1 {
		return fmt.Errorf("server: queue capacity %d < 1", c.QueueCap)
	}
	if c.DegradeWatermark < 0 {
		return fmt.Errorf("server: negative degrade watermark %d", c.DegradeWatermark)
	}
	return nil
}

// admitter serializes admission decisions: queue-full check, token
// bucket, degrade watermark, and the depth ledger, under one mutex so
// offered == admitted + shed holds exactly and depth can never pass
// QueueCap. Depth counts admitted-but-not-yet-started queries (the
// queue proper), not queries in service.
type admitter struct {
	mu       sync.Mutex
	cfg      AdmitConfig
	bucket   tokenBucket
	depth    int
	maxDepth int
}

func newAdmitter(cfg AdmitConfig) *admitter {
	return &admitter{cfg: cfg, bucket: newTokenBucket(cfg.QPS, cfg.Burst)}
}

// tryAdmit decides one arrival at time `now`. On admission the depth
// ledger is incremented; the dequeuing executor must call release.
// Shedding order is deliberate: a full queue sheds before a token is
// consumed, so bucket state is not drained by requests that could
// never be queued.
func (a *admitter) tryAdmit(now float64, degradable bool) decision {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.depth >= a.cfg.QueueCap {
		return shedQueueFull
	}
	if !a.bucket.allow(now) {
		return shedThrottled
	}
	d := admitOK
	if degradable && a.cfg.DegradeWatermark > 0 && a.depth >= a.cfg.DegradeWatermark {
		d = admitDegraded
	}
	a.depth++
	if a.depth > a.maxDepth {
		a.maxDepth = a.depth
	}
	return d
}

// tryReserve claims a queue slot without consulting the token bucket
// — for internal work (vector refresh) that must respect the queue
// bound but is not client traffic. Caller must release as usual.
func (a *admitter) tryReserve() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.depth >= a.cfg.QueueCap {
		return false
	}
	a.depth++
	if a.depth > a.maxDepth {
		a.maxDepth = a.depth
	}
	return true
}

// release records one query leaving the queue for service.
func (a *admitter) release() {
	a.mu.Lock()
	if a.depth <= 0 {
		a.mu.Unlock()
		panic("server: admitter release without admit")
	}
	a.depth--
	a.mu.Unlock()
}

// Depth returns the current queue depth.
func (a *admitter) Depth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.depth
}

// MaxDepth returns the high-water mark, for the queue-bound proofs.
func (a *admitter) MaxDepth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.maxDepth
}
