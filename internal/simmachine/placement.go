package simmachine

import "github.com/hpcl-repro/epg/internal/parallel"

// Page-placement (first-touch) locality model.
//
// The steal simulation's penalties (stealLanesTopo) cover *migrated*
// work only: a chunk pays remote-access costs when a thief on another
// socket takes it. Statically-assigned chunks never paid anything,
// even when the data they read was produced — first touched — by a
// lane on a different socket in an earlier region. Real NUMA machines
// charge exactly that: under Linux's default first-touch policy a page
// belongs to the socket whose core faulted it in, for the lifetime of
// the allocation, and every later access from the other socket crosses
// the interconnect whatever the scheduler did this region.
//
// The model: the machine records a socket owner per
// PlacementPageItems-sized page of the region index space, set by the
// first chunk that touches the page (in ascending chunk order — a
// deterministic stand-in for the first-touch race) and kept across
// regions (and across Machine.Reset: pages stay placed for the life of
// the allocation). When a later chunk executes on a lane whose socket
// differs from a page's owner, the share of the chunk's DRAM bytes
// falling on that page is charged the remote-access multiplier
// (Model.RemoteBytesFactor / Spec.RemotePenalty), under all four
// policies — static and dynamic assignments now pay for reading
// remotely-placed data exactly like steal victims' chunks do.
//
// The index space is the region's [0, n): vertex-indexed regions over
// the same graph share pages, edge-indexed regions share the prefix,
// and frontier-indexed regions model the frontier buffers themselves.
// This treats the engine's resident arrays as congruent views — an
// approximation (no aliasing between distinct same-length arrays is
// modeled), but one that errs uniformly across policies, which is what
// the scheduling study compares.
//
// Determinism: ownership evolves purely from (region sequence, chunk
// costs, policy, threads, sockets) — the same inputs the lane
// assignment uses — so modeled durations stay bit-identical across
// runs and real worker counts. The placement charge is applied after
// lane assignment and never feeds back into lane loads: enabling the
// model with a remote factor of 1 reproduces the no-placement trace
// byte for byte, and the assignment of chunks to lanes is identical
// either way (the conservation wall in placement_test.go pins both).
//
// With placement active the steal simulation's own remote-chunk BYTES
// multiplier is disabled (commitRegion passes factor 1): the page map
// supersedes its home-is-static-owner approximation of where data
// lives, so a stolen chunk pays the remote multiplier exactly once —
// through this model, identically to a statically-assigned chunk
// reading the same pages. The remote steal CAS latency
// (Model.RemoteStealCycles) remains charged by the simulation; it
// prices the steal operation, not the data.
//
// The model is opt-in (Spec.Placement = "firsttouch") and inert with
// one socket: every lane lives on socket 0, so every page is local.

// PlacementPageItems is the first-touch granularity in region items.
// 1024 items ≈ one or a few 4 KiB pages for the 4–24 byte-per-item
// arrays the engines sweep; coarser than any fixed grain in use, so a
// page's owner is decided by whole early chunks, not item stragglers.
const PlacementPageItems = 1024

// SetPlacement enables (or disables) the first-touch page-placement
// model. Enabling it mid-run keeps previously recorded ownership;
// disabling stops both recording and charging.
func (m *Machine) SetPlacement(on bool) { m.placeOn = on }

// PlacementEnabled reports whether the first-touch model is on.
func (m *Machine) PlacementEnabled() bool { return m.placeOn }

// placementActive reports whether placement charges are reachable:
// the model is on and more than one socket exists (with one socket
// every touch is local).
func (m *Machine) placementActive() bool { return m.placeOn && m.sockets > 1 }

// touchRange records first-touch ownership for the pages overlapping
// [lo, hi) executed by a lane on socket sk, and returns the extra DRAM
// bytes the chunk pays for its remotely-owned share: bytes ×
// remoteShare × (factor − 1). Pages touched for the first time are
// claimed by sk and charged nothing.
func (m *Machine) touchRange(lo, hi, sk int, bytes, factor float64) float64 {
	if hi <= lo {
		return 0
	}
	lastPage := (hi - 1) / PlacementPageItems
	for len(m.pageOwner) <= lastPage {
		m.pageOwner = append(m.pageOwner, -1)
	}
	remote := 0
	for p := lo / PlacementPageItems; p <= lastPage; p++ {
		plo := p * PlacementPageItems
		phi := plo + PlacementPageItems
		if plo < lo {
			plo = lo
		}
		if phi > hi {
			phi = hi
		}
		switch owner := m.pageOwner[p]; {
		case owner < 0:
			m.pageOwner[p] = int16(sk)
		case int(owner) != sk:
			remote += phi - plo
		}
	}
	if remote == 0 || factor <= 1 {
		return 0
	}
	return bytes * float64(remote) / float64(hi-lo) * (factor - 1)
}

// SetGrainPolicy selects how Grain resolves region grains (the
// Spec.Grain knob). The default GrainFixed keeps every engine's
// hand-picked grain, byte-identical to the historical behavior.
func (m *Machine) SetGrainPolicy(p parallel.GrainPolicy) { m.grainPolicy = p }

// GrainPolicy returns the machine's grain policy.
func (m *Machine) GrainPolicy() parallel.GrainPolicy { return m.grainPolicy }

// Grain resolves the grain of a region of n items: the engine's fixed
// base under GrainFixed, or the frontier-proportional
// parallel.AdaptiveGrain of the *virtual* thread count under
// GrainAdaptive — a pure function of (n, threads, align), so chunk
// partitions never depend on real workers. align carries the region's
// chunk-boundary constraint (64 for regions that clear bitmap word
// ranges in-region, else 1); see parallel.AdaptiveGrain.
func (m *Machine) Grain(n, base, align int) int {
	if m.grainPolicy == parallel.GrainAdaptive {
		return parallel.AdaptiveGrain(n, m.threads, align)
	}
	return base
}
