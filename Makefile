# Lightweight CI for the epg reproduction. `make test` is the tier-1
# gate; `make race` is the concurrency wall over the parallel runtime,
# the graph builders, and every engine kernel; `make bench` regenerates
# the paper's tables and figures once; `make baseline` rewrites
# BENCH_baseline.json; `make benchfig` rewrites the scheduling-study
# CSV (FIG_sched_study.csv).

GO ?= go

.PHONY: all build test race race-full bench baseline benchfig speedup-floor big-conformance vet

all: test race

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./internal/parallel/... ./internal/graph/... ./internal/engines/...

race-full:
	$(GO) test -race ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

baseline:
	EPG_WRITE_BASELINE=1 $(GO) test -run TestWriteBenchBaseline -v .

benchfig:
	EPG_WRITE_SCHEDFIG=1 $(GO) test -run TestWriteSchedStudy -v .

speedup-floor:
	EPG_SPEEDUP_FLOOR=1 $(GO) test -run TestSpeedupFloor -v .

big-conformance:
	EPG_BIG_CONFORMANCE=1 $(GO) test -run TestBigConformance -v -timeout 60m ./internal/engines/all/

vet:
	$(GO) vet ./...
