// Command epgd-loadgen generates the serving study: a deterministic
// virtual-time load sweep over the epgd admission pipeline. It
// calibrates the bench's capacity, then pushes Poisson query streams
// at multiples of it through the queue / token bucket / deadline /
// degradation machinery, and emits one CSV row per offered-load
// point. The output is a pure function of (dataset, seed, config) —
// bit-identical across runs and GOMAXPROCS — which is what lets CI
// diff it against the committed FIG_serving_study.csv.
//
//	epgd-loadgen -out FIG_serving_study.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/hpcl-repro/epg/internal/harness"
	"github.com/hpcl-repro/epg/internal/server"
)

func main() {
	def := server.DefaultStudyConfig()
	fs := flag.NewFlagSet("epgd-loadgen", flag.ExitOnError)
	out := fs.String("out", "", "output CSV (default stdout)")
	dataset := fs.String("dataset", def.Dataset, "dataset")
	seed := fs.Uint64("seed", def.Seed, "seed for the dataset and the arrival streams")
	servers := fs.Int("servers", def.Servers, "virtual executors")
	threads := fs.Int("threads", def.Threads, "modeled threads per executor")
	queueCap := fs.Int("queue-cap", def.QueueCap, "bounded queue capacity")
	watermark := fs.Int("watermark", def.Watermark, "degradation watermark")
	queries := fs.Int("queries", def.NumQueries, "offered queries per load point")
	multipliers := fs.String("multipliers", joinFloats(def.Multipliers),
		"comma-separated offered-load multipliers of calibrated capacity")
	fs.Parse(os.Args[1:])

	cfg := def
	cfg.Dataset = *dataset
	cfg.Seed = *seed
	cfg.Servers = *servers
	cfg.Threads = *threads
	cfg.QueueCap = *queueCap
	cfg.Watermark = *watermark
	cfg.NumQueries = *queries
	var err error
	if cfg.Multipliers, err = parseFloats(*multipliers); err != nil {
		fatal(err)
	}

	el, err := harness.ResolveDataset(cfg.Dataset, harness.DatasetOptions{Seed: cfg.Seed})
	if err != nil {
		fatal(err)
	}
	rows, err := server.GenerateStudy(el, cfg)
	if err != nil {
		fatal(err)
	}
	for _, r := range rows {
		if err := r.Stats.Conservation(); err != nil {
			fatal(err)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := server.WriteStudyCSV(w, rows); err != nil {
		fatal(err)
	}
}

func joinFloats(vals []float64) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad multiplier %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "epgd-loadgen: %v\n", err)
	os.Exit(1)
}
