package gap

import (
	"testing"

	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/simmachine"
	"github.com/hpcl-repro/epg/internal/verify"
)

func tuneRoots(el *graph.EdgeList, n int) []graph.VID {
	p := verify.Prepare(el)
	var roots []graph.VID
	for v := 0; v < p.Out.NumVertices && len(roots) < n; v++ {
		if p.Out.Degree(graph.VID(v)) > 1 {
			roots = append(roots, graph.VID(v))
		}
	}
	return roots
}

func TestTuneDeltaPicksACandidate(t *testing.T) {
	el := kron(10, 3)
	roots := tuneRoots(el, 2)
	best, sweep, err := TuneDelta(el, simmachine.Haswell72(), 8, roots, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 5 {
		t.Fatalf("sweep has %d entries, want 5 defaults", len(sweep))
	}
	found := false
	minSec := -1.0
	for _, r := range sweep {
		if r.Seconds <= 0 {
			t.Errorf("candidate %v has no time", r.Delta)
		}
		if r.Delta == best {
			found = true
		}
		if minSec < 0 || r.Seconds < minSec {
			minSec = r.Seconds
		}
	}
	if !found {
		t.Errorf("best delta %v not in sweep", best)
	}
	// The winner must actually be the minimum.
	for _, r := range sweep {
		if r.Delta == best && r.Seconds > minSec {
			t.Errorf("best delta %v is not the fastest candidate", best)
		}
	}
}

func TestTuneDeltaDeterministic(t *testing.T) {
	el := kron(9, 7)
	roots := tuneRoots(el, 1)
	cands := []float64{0.125, 0.5}
	a, _, err := TuneDelta(el, simmachine.Haswell72(), 4, roots, cands)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := TuneDelta(el, simmachine.Haswell72(), 4, roots, cands)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("tuning nondeterministic: %v vs %v", a, b)
	}
}

func TestTuneAlphaBeta(t *testing.T) {
	el := kron(10, 5)
	roots := tuneRoots(el, 2)
	alpha, beta, sweep, err := TuneAlphaBeta(el, simmachine.Haswell72(), 8, roots,
		[]int{15, 60}, []int{18})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 2 {
		t.Fatalf("sweep entries = %d, want 2", len(sweep))
	}
	if beta != 18 {
		t.Errorf("beta = %d", beta)
	}
	if alpha != 15 && alpha != 60 {
		t.Errorf("alpha = %d not among candidates", alpha)
	}
}

func TestTuneNeedsRoots(t *testing.T) {
	el := kron(6, 1)
	if _, _, err := TuneDelta(el, simmachine.Haswell72(), 2, nil, nil); err == nil {
		t.Error("no roots accepted")
	}
	if _, _, _, err := TuneAlphaBeta(el, simmachine.Haswell72(), 2, nil, nil, nil); err == nil {
		t.Error("no roots accepted")
	}
}
