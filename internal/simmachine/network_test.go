package simmachine

import "testing"

// netSeq charges a fixed two-region sequence under the cluster model
// and returns the modeled elapsed, total charged cost, and summed
// Region.NetBytes. The second region's half-grain chunks split every
// node block, so with more than one node there is always remote-owned
// traffic to charge under any policy.
func netSeq(sched Sched, threads, nodes, workers int, owner []int16) (float64, Cost, float64) {
	m := New(testModel(), threads)
	m.SetWorkers(workers)
	if nodes > 0 {
		m.SetCluster(nodes, owner)
	}
	per := Cost{Cycles: 3, Bytes: 24}
	const n = 1 << 12
	m.ChargeUniform(n, n/8, sched, per)
	m.ChargeUniform(n, n/16, sched, per)
	var total Cost
	var net float64
	for _, r := range m.Trace() {
		total.Add(r.Cost)
		net += r.NetBytes
	}
	return m.Elapsed(), total, net
}

// TestClusterInertAtOneNode: with one node (or the knob untouched) the
// network model must not exist — elapsed, charged cost, and NetBytes
// all byte-identical to a machine that never heard of clusters. This
// is the unit-level half of the Nodes=1 conformance wall.
func TestClusterInertAtOneNode(t *testing.T) {
	for _, sched := range []Sched{Static, Dynamic, Steal, NUMA} {
		offSec, offCost, offNet := netSeq(sched, 8, 0, 1, nil)
		oneSec, oneCost, oneNet := netSeq(sched, 8, 1, 1, nil)
		if offSec != oneSec || offCost != oneCost || offNet != oneNet {
			t.Errorf("%v: nodes=1 differs from cluster-off: %v/%v vs %v/%v", sched, oneSec, oneCost, offSec, offCost)
		}
		if offNet != 0 {
			t.Errorf("%v: cluster-off charged NetBytes %v", sched, offNet)
		}
	}
}

// TestClusterChargesRemoteTraffic: with 4 nodes the misaligned second
// region must record inter-node bytes and stretch the modeled time
// beyond the single-box run, under every policy.
func TestClusterChargesRemoteTraffic(t *testing.T) {
	for _, sched := range []Sched{Static, Dynamic, Steal, NUMA} {
		offSec, _, _ := netSeq(sched, 8, 1, 1, nil)
		onSec, _, onNet := netSeq(sched, 8, 4, 1, nil)
		if onNet <= 0 {
			t.Errorf("%v: 4-node run recorded no NetBytes", sched)
		}
		if onSec <= offSec {
			t.Errorf("%v: 4-node elapsed %v not above single-box %v", sched, onSec, offSec)
		}
	}
}

// TestClusterDurationsIndependentOfWorkers: modeled durations and
// NetBytes are pure functions of the spec — the real worker count must
// never leak in.
func TestClusterDurationsIndependentOfWorkers(t *testing.T) {
	for _, sched := range []Sched{Static, Dynamic, Steal, NUMA} {
		refSec, refCost, refNet := netSeq(sched, 8, 4, 1, nil)
		for _, workers := range []int{2, 3, 8} {
			sec, cost, net := netSeq(sched, 8, 4, workers, nil)
			if sec != refSec || cost != refCost || net != refNet {
				t.Errorf("%v workers=%d: (%v,%v,%v) != workers=1 (%v,%v,%v)",
					sched, workers, sec, cost, net, refSec, refCost, refNet)
			}
		}
	}
}

// TestClusterOwnerTableRoutesTraffic: an owner table that homes every
// item on node 0 must charge nothing for chunks executed by node-0
// lanes and everything for the rest — and a table whose length doesn't
// match the region must fall back to blocked 1D.
func TestClusterOwnerTableRoutesTraffic(t *testing.T) {
	const n = 1 << 12
	allZero := make([]int16, n)
	m := New(testModel(), 8)
	m.SetWorkers(1)
	m.SetCluster(4, allZero)
	per := Cost{Cycles: 3, Bytes: 24}
	m.ChargeUniform(n, n/8, Static, per)
	// Static, 8 chunks, 8 lanes: chunk c runs on lane c, node c/2.
	// Chunks 0,1 run on node 0 (owner of everything) — the other six
	// chunks ship all their bytes.
	want := 6.0 * float64(n) / 8 * per.Bytes
	got := m.Trace()[0].NetBytes
	if got != want {
		t.Errorf("all-zero owner table: NetBytes %v, want %v", got, want)
	}

	// Mismatched table length: blocked 1D fallback must match nil.
	_, _, netNil := netSeq(Static, 8, 4, 1, nil)
	short := make([]int16, 7)
	_, _, netShort := netSeq(Static, 8, 4, 1, short)
	if netNil != netShort {
		t.Errorf("mismatched owner table: NetBytes %v, want blocked-1D %v", netShort, netNil)
	}
}

// TestClusterBatchLatencyPerPair: the flush latency term scales with
// the number of communicating node pairs, not the message count — a
// region with the same pairs but twice the chunks pays the same
// latency.
func TestClusterBatchLatencyPerPair(t *testing.T) {
	model := testModel()
	elapsed := func(grain int) (float64, float64) {
		m := New(model, 8)
		m.SetWorkers(1)
		m.SetCluster(2, nil)
		const n = 1 << 10
		m.ChargeUniform(n, grain, Static, Cost{Cycles: 1e3, Bytes: 4})
		return m.Elapsed(), m.Trace()[0].NetBytes
	}
	// At 8 static lanes over 2 nodes, grains 64 and 32 place the same
	// 512 remote-owned items on the same lanes — only the message count
	// differs (8 vs 16 remote chunks). The communicating pairs stay
	// {0->1, 1->0} either way, so per-lane cycles, byte surcharges, AND
	// the per-pair flush latency are all identical: elapsed must match
	// exactly. A latency term scaling with messages would double here.
	aSec, aNet := elapsed(64)
	bSec, bNet := elapsed(32)
	if aNet != bNet || aNet <= 0 {
		t.Fatalf("remote bytes differ across grains: %v vs %v", aNet, bNet)
	}
	if aSec != bSec {
		t.Errorf("latency scaled with message count: grain 64 -> %v, grain 32 -> %v", aSec, bSec)
	}
}
