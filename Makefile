# Lightweight CI for the epg reproduction. `make test` is the tier-1
# gate; `make race` is the concurrency wall over the parallel runtime,
# the graph builders, and every engine kernel; `make fuzz` runs the
# property-fuzz targets for FUZZTIME each; `make bench` regenerates
# the paper's tables and figures once; `make baseline` rewrites
# BENCH_baseline.json; `make benchfig` rewrites the scheduling-study
# CSV (FIG_sched_study.csv, policy x grain x placement x freq x
# compress x threads x sockets, with modeled joules and
# energy-delay-product columns from the RAPL-analogue power model);
# `make benchfig-ci` rewrites its pinned-scale, modeled-only sibling
# FIG_sched_study_ci.csv; `make benchfig-check` is the
# bench-regression gate that fails when the regenerated modeled study
# -- times, cost counters, or joules -- drifts from the committed
# artifact; `make compress-ratio` prints kron-16 raw vs delta+varint
# adjacency bytes and enforces the 2x floor; `make servefig` rewrites
# the epgd serving study (FIG_serving_study.csv, the admission/
# degradation load sweep); `make servefig-check` is the serving drift
# gate that fails when the regenerated study drifts from the committed
# artifact; `make streamfig` rewrites the streaming-mutation study
# (FIG_stream_study.csv, incremental PR/WCC maintenance vs. full
# recompute across batch size x delete fraction); `make
# streamfig-check` is the streaming drift gate over that artifact.

GO ?= go
FUZZTIME ?= 20s
# Dataset scale for the scheduling-study figure. 17 gives GAP's
# PageRank regions enough chunks (32 at the 4096 grain) that the steal
# policies actually steal at the 16- and 32-thread points — the regime
# where the locality columns separate. (The CI drift artifact is
# pinned to kron-12 in code, independent of this knob.)
SCHEDFIG_SCALE ?= 17

.PHONY: all build test race race-full fuzz bench baseline benchfig benchfig-ci benchfig-check compress-ratio servefig servefig-check streamfig streamfig-check serve-soak speedup-floor big-conformance numa-sweep vet fmt-check

all: test race

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./internal/parallel/... ./internal/graph/... ./internal/engines/...

race-full:
	$(GO) test -race ./...

fuzz:
	$(GO) test -fuzz '^FuzzScanInt64$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/parallel/
	$(GO) test -fuzz '^FuzzBitmapToSlice$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/parallel/
	$(GO) test -fuzz '^FuzzChunkQueueDrain$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/parallel/
	$(GO) test -fuzz '^FuzzVarintRoundTrip$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/graph/
	$(GO) test -fuzz '^FuzzCompressedCSREquivalence$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/graph/
	$(GO) test -fuzz '^FuzzRead$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/snap/
	$(GO) test -fuzz '^FuzzMutationEquivalence$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/graph/

# Smoke step: print raw vs delta+varint adjacency bytes on kron-16 and
# fail below the 2x floor.
compress-ratio:
	$(GO) test -run 'TestCompressionRatioKron16$$' -v ./internal/graph/

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

baseline:
	EPG_WRITE_BASELINE=1 $(GO) test -run TestWriteBenchBaseline -v .

benchfig:
	EPG_WRITE_SCHEDFIG=1 EPG_BENCH_SCALE=$(SCHEDFIG_SCALE) $(GO) test -run 'TestWriteSchedStudy$$' -v -timeout 30m .

benchfig-ci:
	EPG_WRITE_SCHEDFIG_CI=1 $(GO) test -run TestWriteSchedStudyCI -v -timeout 30m .

benchfig-check:
	EPG_SCHEDFIG_CHECK=1 $(GO) test -run TestSchedStudyCIDrift -v -timeout 30m .

servefig:
	EPG_WRITE_SERVEFIG=1 $(GO) test -run 'TestWriteServeStudy$$' -v .

servefig-check:
	EPG_SERVEFIG_CHECK=1 $(GO) test -run TestServeStudyDrift -v .

streamfig:
	EPG_WRITE_STREAMFIG=1 $(GO) test -run 'TestWriteStreamStudy$$' -v -timeout 30m .

streamfig-check:
	EPG_STREAMFIG_CHECK=1 $(GO) test -run TestStreamStudyDrift -v -timeout 30m .

# Race-enabled soak over the live daemon: concurrent clients x panic
# injection x deadlines x cancellation against the bounded queue.
serve-soak:
	$(GO) test -race -count=2 ./internal/server/ ./internal/logfmt/

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

speedup-floor:
	EPG_SPEEDUP_FLOOR=1 $(GO) test -run TestSpeedupFloor -v .

big-conformance:
	EPG_BIG_CONFORMANCE=1 $(GO) test -run TestBigConformance -v -timeout 60m ./internal/engines/all/

numa-sweep:
	EPG_NUMA_SWEEP=1 $(GO) test -run TestBigNUMASweep -v -timeout 60m ./internal/engines/all/

vet:
	$(GO) vet ./...
