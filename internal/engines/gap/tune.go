package gap

import (
	"fmt"

	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// The paper's future work: "Advances in parallel SSSP and BFS contain
// parameterizations (Δ for SSSP and α and β for BFS) which affect
// performance depending on graph structure. ... We plan to add some
// level of heuristic parameter tuning." This file implements that
// tuning loop for the GAP engine: candidate parameterizations are
// evaluated on sample roots against the machine model and the best
// modeled time wins.

// TuneResult reports one candidate's measurement.
type TuneResult struct {
	Delta   float64 // SSSP candidates
	Alpha   int     // BFS candidates
	Beta    int
	Seconds float64 // mean modeled seconds over the sample roots
}

// TuneDelta evaluates delta-stepping bucket widths on the given graph
// and roots, returning the best value and the full sweep. The
// engine's machine model supplies timing, so the search is
// deterministic.
func TuneDelta(el *graph.EdgeList, model simmachine.Model, threads int, roots []graph.VID, candidates []float64) (best float64, sweep []TuneResult, err error) {
	if len(candidates) == 0 {
		candidates = []float64{0.0625, 0.125, 0.25, 0.5, 1.0}
	}
	if len(roots) == 0 {
		return 0, nil, fmt.Errorf("gap: tuning needs at least one root")
	}
	bestTime := -1.0
	for _, delta := range candidates {
		e := New()
		e.Delta = delta
		m := simmachine.New(model, threads)
		m.SetTracing(false)
		inst, lerr := e.Load(el, m)
		if lerr != nil {
			return 0, nil, lerr
		}
		inst.BuildStructure()
		start := m.Elapsed()
		for _, r := range roots {
			if _, rerr := inst.SSSP(r); rerr != nil {
				return 0, nil, rerr
			}
		}
		mean := (m.Elapsed() - start) / float64(len(roots))
		sweep = append(sweep, TuneResult{Delta: delta, Seconds: mean})
		if bestTime < 0 || mean < bestTime {
			bestTime, best = mean, delta
		}
	}
	return best, sweep, nil
}

// TuneAlphaBeta evaluates direction-optimizing BFS switch parameters,
// including the paper's untuned defaults (α=15, β=18), and returns
// the best pair.
func TuneAlphaBeta(el *graph.EdgeList, model simmachine.Model, threads int, roots []graph.VID, alphas, betas []int) (bestAlpha, bestBeta int, sweep []TuneResult, err error) {
	if len(alphas) == 0 {
		alphas = []int{5, 15, 30, 60}
	}
	if len(betas) == 0 {
		betas = []int{6, 18, 36}
	}
	if len(roots) == 0 {
		return 0, 0, nil, fmt.Errorf("gap: tuning needs at least one root")
	}
	bestTime := -1.0
	for _, a := range alphas {
		for _, b := range betas {
			e := New()
			e.Alpha, e.Beta = a, b
			m := simmachine.New(model, threads)
			m.SetTracing(false)
			inst, lerr := e.Load(el, m)
			if lerr != nil {
				return 0, 0, nil, lerr
			}
			inst.BuildStructure()
			start := m.Elapsed()
			for _, r := range roots {
				if _, rerr := inst.BFS(r); rerr != nil {
					return 0, 0, nil, rerr
				}
			}
			mean := (m.Elapsed() - start) / float64(len(roots))
			sweep = append(sweep, TuneResult{Alpha: a, Beta: b, Seconds: mean})
			if bestTime < 0 || mean < bestTime {
				bestTime, bestAlpha, bestBeta = mean, a, b
			}
		}
	}
	return bestAlpha, bestBeta, sweep, nil
}
