package harness

import (
	"fmt"
	"io"
	"time"

	"github.com/hpcl-repro/epg/internal/core"
	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/logfmt"
	"github.com/hpcl-repro/epg/internal/parallel"
	"github.com/hpcl-repro/epg/internal/power"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// BytesPerTextEdge estimates the on-disk size of one SNAP text edge
// (two decimal IDs, separators, optional weight).
const BytesPerTextEdge = 16

// Runner executes specs against a set of engines.
type Runner struct {
	Registry *engines.Registry
	Model    simmachine.Model
	Power    power.Constants
	// Warnings, when non-nil, receives structured one-line warnings
	// about spec knobs an engine could not honor (logfmt key=value
	// style). Nil discards them — but a dropped knob means the result
	// row does not measure what the spec asked for, so study drivers
	// should wire this to stderr or a log.
	Warnings io.Writer
}

// NewRunner returns a runner over the given registry with the paper's
// machine calibration.
func NewRunner(reg *engines.Registry) *Runner {
	return &Runner{
		Registry: reg,
		Model:    simmachine.Haswell72(),
		Power:    power.DefaultConstants(),
	}
}

// engineNames resolves the spec's engine list, defaulting to every
// registered engine that supports the algorithm.
func (r *Runner) engineNames(spec core.Spec) ([]string, error) {
	names := spec.Engines
	if len(names) == 0 {
		names = r.Registry.Names()
	}
	var out []string
	for _, name := range names {
		eng, err := r.Registry.New(name)
		if err != nil {
			return nil, err
		}
		if eng.Has(spec.Algorithm) {
			out = append(out, name)
		} else if len(spec.Engines) > 0 {
			// Explicitly requested but unsupported: surface it.
			return nil, fmt.Errorf("harness: %s does not implement %s", name, spec.Algorithm)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("harness: no engine supports %s", spec.Algorithm)
	}
	return out, nil
}

// Run executes the spec on the provided in-memory edge list and
// returns one result per (engine, root).
func (r *Runner) Run(spec core.Spec, el *graph.EdgeList) ([]core.Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	names, err := r.engineNames(spec)
	if err != nil {
		return nil, err
	}
	// Roots are selected once, on the homogenized graph, and shared
	// by every engine — the paper uses the same 32 roots across
	// systems (and reuses BFS roots for SSSP).
	csr := graph.BuildCSR(el, graph.BuildOptions{
		Symmetrize:    !el.Directed,
		DropSelfLoops: true,
		Dedup:         true,
	})
	roots := core.SelectRoots(csr, spec.NumRoots(), spec.Seed)
	if len(roots) == 0 {
		return nil, fmt.Errorf("harness: graph has no roots with degree > 1")
	}
	// The 2D cluster partition is computed once on the homogenized
	// graph and shared by every engine, like the roots: the owner table
	// describes where data lives, not how an engine processes it.
	var owner []int16
	if spec.Nodes > 1 && spec.Partition == core.Partition2D {
		owner = graph.GreedyVertexCut(csr, spec.Nodes, nil).Owners()
	}

	var results []core.Result
	for _, name := range names {
		rs, err := r.runEngine(spec, el, name, roots, owner)
		if err != nil {
			return nil, fmt.Errorf("harness: %s: %w", name, err)
		}
		results = append(results, rs...)
	}
	return results, nil
}

// specMachine builds a simmachine configured by the spec's execution
// knobs on the given (already frequency-scaled) model. The stream
// phase uses it a second time to cost the displaced full recompute on
// an identically-configured fresh machine.
func specMachine(spec core.Spec, model simmachine.Model, owner []int16) *simmachine.Machine {
	m := simmachine.New(model, spec.Threads)
	if spec.Workers > 0 {
		m.SetWorkers(spec.Workers)
	}
	switch spec.Sched {
	case core.SchedStatic:
		m.SetSchedOverride(simmachine.Static)
	case core.SchedDynamic:
		m.SetSchedOverride(simmachine.Dynamic)
	case core.SchedSteal:
		m.SetSchedOverride(simmachine.Steal)
	case core.SchedNUMA:
		m.SetSchedOverride(simmachine.NUMA)
	}
	if spec.Sockets > 0 {
		m.SetSockets(spec.Sockets)
	}
	if spec.RemotePenalty > 0 {
		m.SetRemotePenalty(spec.RemotePenalty)
	}
	if spec.Grain == core.GrainAdaptive {
		m.SetGrainPolicy(parallel.GrainAdaptive)
	}
	if spec.Placement == core.PlacementFirstTouch {
		m.SetPlacement(true)
	}
	if spec.Nodes > 1 {
		m.SetCluster(spec.Nodes, owner)
	}
	return m
}

// runEngine executes all roots of one engine. owner is the per-vertex
// cluster owner table (nil for 1D/blocked or single-box specs).
func (r *Runner) runEngine(spec core.Spec, el *graph.EdgeList, name string, roots []graph.VID, owner []int16) ([]core.Result, error) {
	eng, err := r.Registry.New(name)
	if err != nil {
		return nil, err
	}
	// One Configure call wires every optional capability the spec asks
	// for (Compress must land before Load: the compressed adjacency is
	// built during the construction phase). Dropped knobs are surfaced,
	// not silent — a spec that asked for the synchronous variant, the
	// compressed layout, or a streaming phase and got the default would
	// mislabel its results.
	applied := engines.Configure(eng, engines.Options{
		SyncSSSP:  spec.SyncSSSP,
		Compress:  spec.Compress,
		Mutations: spec.Mutations != nil,
	})
	if spec.SyncSSSP && !applied.SyncSSSP {
		logfmt.EmitKnobWarning(r.Warnings, name, "sync-sssp")
	}
	if spec.Compress && !applied.Compress {
		logfmt.EmitKnobWarning(r.Warnings, name, "compress")
	}
	if spec.Mutations != nil && !applied.Mutations {
		logfmt.EmitKnobWarning(r.Warnings, name, "mutations")
	}
	// The DVFS operating point scales the machine model (core clocks)
	// and the power calibration (CPU-plane dynamic constants) as a
	// pair: modeled seconds and joules move together, the way a real
	// governor change shifts both sides of the energy-delay trade.
	model, pconsts := r.Model, r.Power
	freq, err := power.FreqStateByName(spec.FreqState)
	if err != nil {
		return nil, err
	}
	model = freq.ScaleModel(model)
	pconsts = freq.ScaleConstants(pconsts)
	m := specMachine(spec, model, owner)

	var fileReadSec, constructionSec float64
	if eng.SeparateConstruction() {
		// Model the file read distinctly, then time construction.
		m.FileRead(int64(len(el.Edges))*BytesPerTextEdge, true)
		fileReadSec = m.Elapsed()
	}
	loadStart := m.Elapsed()
	inst, err := eng.Load(el, m)
	if err != nil {
		return nil, err
	}
	if eng.SeparateConstruction() {
		buildStart := m.Elapsed()
		inst.BuildStructure()
		constructionSec = m.Elapsed() - buildStart
	} else {
		// Combined read+build happened inside Load.
		fileReadSec = m.Elapsed() - loadStart
	}

	perTrial := func(trial int) (core.Result, error) {
		res := core.Result{
			Engine:          name,
			Dataset:         spec.Dataset,
			Algorithm:       spec.Algorithm,
			Threads:         spec.Threads,
			Trial:           trial,
			Root:            roots[trial%len(roots)],
			FileReadSec:     fileReadSec,
			ConstructionSec: constructionSec,
			HasConstruction: eng.SeparateConstruction(),
		}
		var meter *power.RAPL
		if spec.MeasurePower {
			meter = power.NewRAPL(m, pconsts)
			meter.Start()
		}
		i0, t0 := m.Mark()
		wall0 := time.Now()
		out, err := engines.RunAlgorithm(inst, spec.Algorithm, res.Root)
		if err != nil {
			return res, err
		}
		res.WallSec = time.Since(wall0).Seconds()
		i1, t1 := m.Mark()
		res.AlgorithmSec = t1 - t0
		if m.Tracing() {
			for _, reg := range m.Trace()[i0:i1] {
				res.NetBytes += reg.NetBytes
			}
		}
		if meter != nil {
			rd := meter.End()
			res.CPUJoules = rd.CPUJoules
			res.RAMJoules = rd.RAMJoules
			res.AvgCPUWatts = rd.AvgCPUWatts()
			res.AvgRAMWatts = rd.AvgRAMWatts()
		}
		switch v := out.(type) {
		case *engines.BFSResult:
			res.EdgesExamined = v.EdgesExamined
		case *engines.SSSPResult:
			res.EdgesExamined = v.Relaxations
		case *engines.PRResult:
			res.Iterations = v.Iterations
		case *engines.CDLPResult:
			res.Iterations = v.Iterations
		}
		return res, nil
	}

	// Trial count is spec.NumRoots() for every kernel, root-dependent
	// or not. The paper runs 32 repetitions per (system, algorithm,
	// dataset) across the board: for BFS/SSSP the repetitions are the
	// 32 distinct roots, while for root-independent kernels (LCC, WCC,
	// PageRank) the same count serves as plain variance repetitions.
	// No special case is needed — an earlier branch here re-assigned
	// the identical value for LCC/WCC and was deleted as dead code.
	trials := spec.NumRoots()
	results := make([]core.Result, 0, trials)
	for trial := 0; trial < trials; trial++ {
		res, err := perTrial(trial)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	// Streaming phase: batched mutations with incremental maintenance,
	// conformance-checked against full recomputes. Engines without the
	// Streamer hook were warned about above and simply skip the phase.
	if spec.Mutations != nil {
		if st, ok := inst.(engines.Streamer); ok {
			srs, err := r.runStream(spec, el, name, st, m, model, owner)
			if err != nil {
				return nil, err
			}
			results = append(results, srs...)
		}
	}
	return results, nil
}

// SweepPoint is one (engine, threads) aggregate of a scaling sweep.
type SweepPoint struct {
	Engine  string
	Threads int
	// Seconds per trial (modeled algorithm time).
	Seconds []float64
}

// Sweep measures the algorithm across thread counts for Figs. 5/6.
// Trials defaults to 4, matching the paper ("because of timing
// considerations, only four trials were run").
func (r *Runner) Sweep(spec core.Spec, el *graph.EdgeList, threadCounts []int, trials int) ([]SweepPoint, error) {
	if trials <= 0 {
		trials = 4
	}
	var out []SweepPoint
	for _, tc := range threadCounts {
		s := spec
		s.Threads = tc
		s.Roots = trials
		rs, err := r.Run(s, el)
		if err != nil {
			return nil, err
		}
		byEngine := map[string][]float64{}
		for _, res := range rs {
			byEngine[res.Engine] = append(byEngine[res.Engine], res.AlgorithmSec)
		}
		for eng, secs := range byEngine {
			out = append(out, SweepPoint{Engine: eng, Threads: tc, Seconds: secs})
		}
	}
	return out, nil
}
