package graph

import (
	"sort"
	"testing"
)

// referenceSortAdjacency is the pre-refactor sort.Slice implementation,
// kept as the oracle for the concrete-sorter rewrite.
func referenceSortAdjacency(c *CSR) {
	for v := 0; v < c.NumVertices; v++ {
		lo, hi := c.Offsets[v], c.Offsets[v+1]
		if hi-lo < 2 {
			continue
		}
		adj := c.Adj[lo:hi]
		if c.Weights == nil {
			sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
			continue
		}
		w := c.Weights[lo:hi]
		idx := make([]int, len(adj))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(i, j int) bool { return adj[idx[i]] < adj[idx[j]] })
		na := make([]VID, len(adj))
		nw := make([]float32, len(w))
		for i, k := range idx {
			na[i], nw[i] = adj[k], w[k]
		}
		copy(adj, na)
		copy(w, nw)
	}
}

func cloneCSR(c *CSR) *CSR {
	out := &CSR{
		NumVertices: c.NumVertices,
		Offsets:     append([]int64(nil), c.Offsets...),
		Adj:         append([]VID(nil), c.Adj...),
	}
	if c.Weights != nil {
		out.Weights = append([]float32(nil), c.Weights...)
	}
	return out
}

func TestSortAdjacencyMatchesReferenceUnweighted(t *testing.T) {
	// Without weights the sorted layout is fully determined, so the
	// rewrite must reproduce the old implementation byte for byte.
	for seed := uint64(1); seed <= 5; seed++ {
		el := randomEdgeList(seed, 128, 2000, false)
		a := BuildCSR(el, BuildOptions{Symmetrize: true})
		b := cloneCSR(a)
		referenceSortAdjacency(a)
		b.SortAdjacency()
		for i := range a.Adj {
			if a.Adj[i] != b.Adj[i] {
				t.Fatalf("seed %d: adj[%d] = %d, reference has %d", seed, i, b.Adj[i], a.Adj[i])
			}
		}
	}
}

func TestSortAdjacencyWeightedInvariants(t *testing.T) {
	// With weights the neighbor order must match the reference exactly;
	// duplicate-neighbor weight order is tie-broken by weight (the old
	// closure sort left it unspecified), so compare the per-vertex
	// (neighbor, weight) pair multiset instead of raw weight layout,
	// and pin that the downstream min-weight dedup is unaffected.
	for seed := uint64(1); seed <= 5; seed++ {
		el := randomEdgeList(seed, 64, 1500, true)
		a := BuildCSR(el, BuildOptions{Symmetrize: true})
		b := cloneCSR(a)
		referenceSortAdjacency(a)
		b.SortAdjacency()
		for i := range a.Adj {
			if a.Adj[i] != b.Adj[i] {
				t.Fatalf("seed %d: adj[%d] = %d, reference has %d", seed, i, b.Adj[i], a.Adj[i])
			}
		}
		for v := 0; v < a.NumVertices; v++ {
			lo, hi := a.Offsets[v], a.Offsets[v+1]
			wa := append([]float32(nil), a.Weights[lo:hi]...)
			wb := append([]float32(nil), b.Weights[lo:hi]...)
			sa := adjWeightSorter{adj: append([]VID(nil), a.Adj[lo:hi]...), w: wa}
			sb := adjWeightSorter{adj: append([]VID(nil), b.Adj[lo:hi]...), w: wb}
			sort.Sort(&sa)
			sort.Sort(&sb)
			for i := range wa {
				if wa[i] != wb[i] {
					t.Fatalf("seed %d vertex %d: weight multiset differs", seed, v)
				}
			}
		}
		da, db := dedupCSR(a), dedupCSR(b)
		for i := range da.Adj {
			if da.Adj[i] != db.Adj[i] || da.Weights[i] != db.Weights[i] {
				t.Fatalf("seed %d: dedup output differs at %d", seed, i)
			}
		}
	}
}

func sortBenchCSR(weighted bool) *CSR {
	el := randomEdgeList(99, 4096, 1<<17, weighted)
	return BuildCSR(el, BuildOptions{Symmetrize: true})
}

func BenchmarkSortAdjacencyUnweighted(b *testing.B) {
	base := sortBenchCSR(false)
	scratch := cloneCSR(base)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch.Adj, base.Adj)
		scratch.SortAdjacency()
	}
}

func BenchmarkSortAdjacencyWeighted(b *testing.B) {
	base := sortBenchCSR(true)
	scratch := cloneCSR(base)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch.Adj, base.Adj)
		copy(scratch.Weights, base.Weights)
		scratch.SortAdjacency()
	}
}

func BenchmarkSortAdjacencyWeightedReference(b *testing.B) {
	base := sortBenchCSR(true)
	scratch := cloneCSR(base)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch.Adj, base.Adj)
		copy(scratch.Weights, base.Weights)
		referenceSortAdjacency(scratch)
	}
}
