// compare-engines reproduces the paper's Figs. 2-4 in miniature: BFS,
// SSSP, and PageRank box plots on one Kronecker graph, including the
// construction-time panels and the PageRank iteration-count
// comparison that exposes the stopping-criterion problem (GraphMat
// runs until no vertex changes rank).
//
//	go run ./examples/compare-engines [-scale N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/hpcl-repro/epg"
)

func main() {
	scale := flag.Int("scale", 13, "Kronecker scale (the paper uses 22)")
	threads := flag.Int("threads", 32, "virtual threads")
	roots := flag.Int("roots", 8, "roots per algorithm (the paper uses 32)")
	flag.Parse()

	suite := epg.NewSuite()
	name := fmt.Sprintf("kron-%d", *scale)
	g, err := suite.Dataset(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Kronecker scale %d: %d vertices, %d edges, %d threads\n\n",
		*scale, g.NumVertices(), g.NumEdges(), *threads)

	// Fig. 2: BFS.
	bfs, err := suite.Run(epg.Spec{Algorithm: epg.BFS, Threads: *threads, Roots: *roots}, g)
	if err != nil {
		log.Fatal(err)
	}
	epg.RenderTimeFigure(os.Stdout, "Fig. 2a: BFS Time", bfs)
	epg.RenderConstructionFigure(os.Stdout, "Fig. 2b: BFS Data Structure Construction", bfs)
	fmt.Println()

	// Fig. 3: SSSP (PowerGraph joins, Graph500 drops out).
	sssp, err := suite.Run(epg.Spec{Algorithm: epg.SSSP, Threads: *threads, Roots: *roots}, g)
	if err != nil {
		log.Fatal(err)
	}
	epg.RenderTimeFigure(os.Stdout, "Fig. 3a: SSSP Time", sssp)
	epg.RenderConstructionFigure(os.Stdout, "Fig. 3b: SSSP Data Structure Construction", sssp)
	fmt.Println()

	// Fig. 4: PageRank time and iterations.
	pr, err := suite.Run(epg.Spec{Algorithm: epg.PageRank, Threads: *threads, Roots: 4}, g)
	if err != nil {
		log.Fatal(err)
	}
	epg.RenderTimeFigure(os.Stdout, "Fig. 4a: PageRank Time", pr)
	epg.RenderIterationsFigure(os.Stdout, "Fig. 4b: PageRank Iterations", pr)
	fmt.Println("\nNote: GraphMat iterates until no vertex's rank changes (the")
	fmt.Println("paper's Fig. 4 observation); the others stop at L1 < 6e-8.")
}
