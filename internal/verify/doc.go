// Package verify provides serial reference implementations of the six
// study kernels and validators used to check every engine's output.
// It models no system from the paper — it is the ground truth the
// five analogues are held to, the role the Graphalytics validation
// suite plays in the original study.
//
// All engines and references operate on the same homogenized graph: a
// simple graph (self-loops dropped, duplicate edges removed, sorted
// adjacency), symmetrized when the input is undirected — mirroring the
// dataset homogenization phase of the paper. Reference semantics:
//
//   - BFS: out-edge traversal; levels (depths) are unique, so engine
//     depth arrays must match the reference exactly even when parent
//     choices differ.
//   - SSSP: Dijkstra over float32 weights accumulated in float64.
//   - PageRank: damping 0.85, uniform teleport, dangling mass
//     redistributed uniformly, L1 stopping criterion.
//   - CDLP: synchronous label propagation; a vertex adopts the most
//     frequent label among its in- and out-neighbors, breaking ties
//     toward the smallest label (LDBC Graphalytics semantics).
//   - LCC: N(v) = distinct in∪out neighbors; coefficient is the
//     fraction of ordered neighbor pairs (u,w) joined by an edge.
//   - WCC: weak connectivity; component IDs canonicalized to the
//     minimum member vertex ID.
//
// Known fidelity gaps: the references are deliberately serial and
// unoptimized (Dijkstra with a binary heap, LCC by hash-set
// membership), so they bound test-graph sizes — the kron-18 sweep
// behind EPG_BIG_CONFORMANCE skips LCC because the reference is
// quadratic in hub degree. Validators accept any valid parent tree
// for BFS/SSSP rather than requiring the engine's exact tie-breaks.
package verify
