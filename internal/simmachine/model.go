package simmachine

// Model holds the cost constants of the simulated machine.
type Model struct {
	Name string

	// Topology.
	CoresPerSocket int
	Sockets        int
	SMTWays        int // hardware threads per core

	// Core clocks in Hz: TurboHz applies to a single busy core,
	// BaseHz when all physical cores are busy. Intermediate thread
	// counts interpolate linearly.
	TurboHz float64
	BaseHz  float64

	// SMTYield is the extra throughput a second hardware thread on
	// a busy core contributes (0.3 means core runs 1.3x).
	SMTYield float64

	// Memory system. ThreadBW is the streaming bandwidth one thread
	// can extract; SocketBW caps a whole socket. NUMAPenalty
	// multiplies effective bytes once both sockets are active.
	ThreadBW    float64
	SocketBW    float64
	NUMAPenalty float64

	// Synchronization. ForkSeconds is charged per parallel region;
	// BarrierSeconds per region end, scaled by log2(threads).
	// AtomicCycles is the uncontended cost of an atomic RMW;
	// AtomicContention adds cycles per additional active thread.
	ForkSeconds      float64
	BarrierSeconds   float64
	AtomicCycles     float64
	AtomicContention float64

	// DiskBW models sequential file read for I/O phases (bytes/s);
	// ParseCyclesPerByte is charged per byte for text parsing.
	DiskBW             float64
	ParseCyclesPerByte float64

	// Locality model of the steal simulation (stealLanesTopo),
	// charged only when the machine is given more than one virtual
	// socket (Spec.Sockets). RemoteBytesFactor multiplies a chunk's
	// DRAM bytes when a lane executes it off its home socket — the
	// stolen chunk's data sits in the victim socket's memory and
	// every access crosses the interconnect. RemoteStealCycles is the
	// extra latency of the steal CAS itself when thief and victim are
	// on different sockets (cross-socket cache-line transfer).
	RemoteBytesFactor float64
	RemoteStealCycles float64

	// DecodeCyclesPerByte is the compute cost of on-the-fly varint
	// adjacency decoding (Spec.Compress): kernels charge it per
	// compressed byte actually consumed, on top of routing those
	// compressed bytes (instead of the raw 4 B/edge) into the
	// bandwidth and locality terms. Denominated in cycles, so DVFS
	// states stretch it automatically with the clock.
	DecodeCyclesPerByte float64

	// Modeled cluster interconnect (network.go), charged only when the
	// machine is given more than one virtual node (Spec.Nodes).
	// NetBytesFactor multiplies the share of a chunk's DRAM bytes whose
	// items are owned by a different node than the executing lane's —
	// the superstep's inter-node messages traverse a network an order
	// of magnitude slower than local DRAM, modeled (like the QPI-era
	// RemoteBytesFactor, one level up the hierarchy) as extra effective
	// bytes through the bandwidth roofline. NetLatencyCycles is the
	// per-superstep flush latency of one batched message stream between
	// an ordered node pair: messages within a superstep coalesce into
	// one batch per communicating pair, so the latency term scales with
	// the pair count, never with the message count.
	NetBytesFactor   float64
	NetLatencyCycles float64
}

// MaxThreads returns the machine's hardware thread count.
func (m *Model) MaxThreads() int {
	return m.CoresPerSocket * m.Sockets * m.SMTWays
}

// Haswell72 models the paper's experimental platform: two Xeon
// E5-2699 v3 (18 cores, 36 threads each), 256 GB DDR4. Clock and
// bandwidth figures are public Haswell-EP numbers; synchronization
// constants are typical OpenMP magnitudes (GCC 4.8 libgomp era).
func Haswell72() Model {
	return Model{
		Name:           "2x Intel Xeon E5-2699 v3 (Haswell-EP), 256 GB DDR4",
		CoresPerSocket: 18,
		Sockets:        2,
		SMTWays:        2,
		TurboHz:        3.6e9,
		BaseHz:         2.8e9,
		SMTYield:       0.28,
		ThreadBW:       11.5e9,
		SocketBW:       61e9,
		NUMAPenalty:    1.18,
		ForkSeconds:    2.2e-6,
		BarrierSeconds: 0.9e-6,
		AtomicCycles:   20,
		// Most graph-kernel CASes land on distinct cache lines, so
		// contention grows mildly with thread count.
		AtomicContention:   1.2,
		DiskBW:             480e6,
		ParseCyclesPerByte: 9,
		// QPI-era locality: remote DRAM streams at roughly 60% of
		// local bandwidth (1.7x effective bytes) and a cross-socket
		// CAS pays on the order of a hundred extra cycles for the
		// line transfer.
		RemoteBytesFactor: 1.7,
		RemoteStealCycles: 120,
		// Branchy byte-at-a-time varint decode retires a couple of
		// cycles per byte on Haswell — cheap enough that compression
		// wins once a kernel is bandwidth-bound, visible enough that
		// compute-bound regions pay for it.
		DecodeCyclesPerByte: 2,
		// Cluster-era interconnect (FDR InfiniBand / 40GbE against
		// ~60 GB/s local DRAM): remote data streams roughly 10x
		// slower than local, and one batched message flush costs a
		// few microseconds of round-trip — ~10k cycles at turbo.
		NetBytesFactor:   10,
		NetLatencyCycles: 10000,
	}
}

// effHz returns the per-lane effective clock for t active threads,
// folding in frequency scaling and the SMT yield discount.
func (m *Model) effHz(t int) float64 {
	if t < 1 {
		t = 1
	}
	cores := m.CoresPerSocket * m.Sockets
	busyCores := t
	if busyCores > cores {
		busyCores = cores
	}
	// Linear droop from turbo at 1 core to base at all cores.
	frac := 0.0
	if cores > 1 {
		frac = float64(busyCores-1) / float64(cores-1)
	}
	hz := m.TurboHz - (m.TurboHz-m.BaseHz)*frac
	if t <= cores {
		return hz
	}
	// SMT territory: t lanes share `cores` physical cores; each
	// core runs its sibling pair at (1+yield) aggregate.
	pairs := t - cores // cores running two hardware threads
	aggregate := float64(cores-pairs) + float64(pairs)*(1+m.SMTYield)
	return hz * aggregate / float64(t)
}

// bandwidth returns the achievable DRAM bandwidth for t threads.
func (m *Model) bandwidth(t int) float64 {
	if t < 1 {
		t = 1
	}
	socketsInUse := 1
	if t > m.CoresPerSocket {
		socketsInUse = m.Sockets
	}
	bw := float64(t) * m.ThreadBW
	cap := float64(socketsInUse) * m.SocketBW
	if bw > cap {
		return cap
	}
	return bw
}

// numaFactor returns the effective-bytes multiplier for t threads.
func (m *Model) numaFactor(t int) float64 {
	if t > m.CoresPerSocket {
		return m.NUMAPenalty
	}
	return 1
}

// barrier returns the synchronization cost of ending a region with t
// threads.
func (m *Model) barrier(t int) float64 {
	if t <= 1 {
		return 0
	}
	levels := 0
	for v := t - 1; v > 0; v >>= 1 {
		levels++
	}
	return m.ForkSeconds + m.BarrierSeconds*float64(levels)
}
