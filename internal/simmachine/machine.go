package simmachine

import (
	"runtime"

	"github.com/hpcl-repro/epg/internal/parallel"
)

// Cost is abstract work charged by an engine: scalar cycles executed,
// bytes moved to or from DRAM (i.e., traffic expected to miss cache),
// and atomic read-modify-write operations (charged separately because
// their cost grows with contention).
type Cost struct {
	Cycles  float64
	Bytes   float64
	Atomics float64
}

// Add accumulates d into c.
func (c *Cost) Add(d Cost) {
	c.Cycles += d.Cycles
	c.Bytes += d.Bytes
	c.Atomics += d.Atomics
}

// Scale returns c with every component multiplied by k.
func (c Cost) Scale(k float64) Cost {
	return Cost{Cycles: c.Cycles * k, Bytes: c.Bytes * k, Atomics: c.Atomics * k}
}

// Sched selects the scheduling policy of a parallel region.
type Sched int

const (
	// Static assigns chunks to lanes round-robin, like OpenMP
	// schedule(static, grain). Skewed chunk costs produce load
	// imbalance.
	Static Sched = iota
	// Dynamic assigns each chunk (in index order) to the currently
	// least-loaded lane, modeling OpenMP schedule(dynamic, grain).
	Dynamic
	// Steal assigns chunks by a deterministic simulation of a
	// work-stealing runtime: each lane starts with its static share
	// and idle lanes steal from seeded-RNG victims, paying one atomic
	// per successful steal. The assignment depends only on the chunk
	// costs, the virtual thread count, and the per-region seed — never
	// on real workers — so modeled durations stay bit-identical at any
	// worker count. See stealLanes.
	Steal
	// NUMA is Steal with two-level (socket-aware) victim selection
	// over the machine's virtual socket topology (SetSockets): idle
	// lanes steal within their own socket before crossing to a remote
	// one, and the locality penalties (Model.RemoteBytesFactor,
	// Model.RemoteStealCycles) are charged per cross-socket steal.
	// With one socket (the default) it is byte-identical to Steal.
	// See stealLanesTopo.
	NUMA
)

// Region is one entry of the machine's activity trace: a parallel or
// serial section with its modeled duration and aggregate work. The
// power model integrates over these.
type Region struct {
	Seconds     float64 // modeled duration
	Lanes       int     // virtual threads configured
	ActiveLanes int     // lanes that received work
	Utilization float64 // mean busy fraction across lanes, in [0,1]
	Cost        Cost    // aggregate charged work
	MemBound    bool    // true if duration was set by the bandwidth roofline
	IO          bool    // true for file I/O regions
	NetBytes    float64 // inter-node message bytes (cluster model, network.go)
}

// W accumulates the work of one chunk. It is handed to region bodies
// and must not be retained after the body returns.
type W struct {
	c Cost
}

// Charge adds an explicit cost.
func (w *W) Charge(c Cost) { w.c.Add(c) }

// Cycles charges n scalar cycles.
func (w *W) Cycles(n float64) { w.c.Cycles += n }

// Bytes charges n bytes of DRAM traffic.
func (w *W) Bytes(n float64) { w.c.Bytes += n }

// Atomics charges n atomic RMW operations.
func (w *W) Atomics(n float64) { w.c.Atomics += n }

// Machine executes parallel regions for real while accounting modeled
// time for a configured virtual thread count. It is not safe for
// concurrent use by multiple goroutines; regions themselves run their
// bodies concurrently internally.
type Machine struct {
	model   Model
	threads int
	// real concurrency bound for executing bodies
	workers int
	pool    *parallel.Pool

	elapsed float64
	trace   []Region
	tracing bool
	// generation counts Reset calls. Trace indices from Mark are only
	// meaningful within one generation; windowed consumers (power.RAPL)
	// compare generations to detect a Reset inside an open window
	// instead of slicing the truncated trace out of range — or worse,
	// silently integrating the wrong regions.
	generation uint64

	// Scheduling-policy override: when forced, every parallel region
	// runs under forceSched regardless of the engine's per-region
	// choice (Spec.Sched plumbs through here).
	forceSched Sched
	forced     bool

	// Virtual socket topology for the steal simulation's locality
	// model (Spec.Sockets plumbs through here). sockets defaults to 1
	// — no locality penalties, so Steal keeps its historical numbers
	// and NUMA coincides with it. socketsSet records an explicit
	// SetSockets call: only then is the same count forced onto the
	// real execution topology (otherwise the real side uses the
	// GOMAXPROCS-derived parallel.DefaultTopology, which nothing
	// observable depends on). remotePenalty overrides
	// Model.RemoteBytesFactor when > 0 (Spec.RemotePenalty).
	sockets       int
	socketsSet    bool
	remotePenalty float64

	// Grain policy (Spec.Grain): how Machine.Grain resolves region
	// grains. GrainFixed (the zero value) keeps engine-chosen grains.
	grainPolicy parallel.GrainPolicy

	// First-touch page-placement model (Spec.Placement): when placeOn,
	// pageOwner records the socket that first touched each
	// PlacementPageItems-sized page of the region index space, and
	// chunks reading remotely-owned pages are charged the remote-access
	// multiplier under every policy. See placement.go.
	placeOn   bool
	pageOwner []int16

	// Modeled cluster (Spec.Nodes/Spec.Partition): when nodes > 1,
	// lanes are grouped into virtual cluster nodes, chunks whose index
	// ranges are owned by a different node than the executing lane's
	// are charged inter-node message traffic, and each region pays a
	// batched flush latency per communicating node pair. nodeOwner is
	// the per-item owner table of the region index space (the 2D
	// vertex-cut partition); nil means blocked 1D ownership. See
	// network.go.
	nodes     int
	nodeOwner []int16
	// Scratch carried from chargeNetwork to commitLanes within one
	// commitRegion call (consumed and zeroed there).
	pendingNetSeconds float64
	pendingNetBytes   float64
}

// New returns a machine with the given model and virtual thread count.
// Thread counts beyond the model's hardware limit are allowed (the
// paper's 72-thread runs equal the limit) but see Model.MaxThreads.
// Region bodies execute on the shared parallel.Default pool with
// min(threads, GOMAXPROCS) real workers; SetWorkers overrides that.
func New(model Model, threads int) *Machine {
	if threads < 1 {
		threads = 1
	}
	w := runtime.GOMAXPROCS(0)
	if threads < w {
		w = threads
	}
	return &Machine{
		model: model, threads: threads, workers: w,
		pool: parallel.Default(), tracing: true, sockets: 1, nodes: 1,
	}
}

// Threads returns the virtual thread count.
func (m *Machine) Threads() int { return m.threads }

// Workers returns the real worker count used to execute region bodies.
func (m *Machine) Workers() int { return m.workers }

// SetWorkers overrides the real worker count (default
// min(threads, GOMAXPROCS)). Counts above GOMAXPROCS are legal —
// goroutines are multiplexed — and must not change results or modeled
// durations; the determinism tests rely on that.
func (m *Machine) SetWorkers(k int) {
	if k < 1 {
		k = 1
	}
	m.workers = k
}

// Model returns the machine's cost model.
func (m *Machine) Model() Model { return m.model }

// Pool returns the worker pool region bodies execute on, for kernels
// that drive parallel primitives directly (Bitmap.ToSlice, BuildCSR)
// and charge the modeled cost separately via ChargeSerial or
// ChargeUniform.
func (m *Machine) Pool() *parallel.Pool { return m.pool }

// SetSchedOverride forces every subsequent parallel region onto
// policy s, overriding the engine's per-region choice. This is the
// Spec.Sched knob: it changes both the real chunk assignment and the
// virtual-lane cost accounting, uniformly across engines.
func (m *Machine) SetSchedOverride(s Sched) {
	m.forceSched, m.forced = s, true
}

// ClearSchedOverride restores each region's own policy.
func (m *Machine) ClearSchedOverride() { m.forced = false }

// SetSockets sets the virtual socket count of the steal simulation's
// locality model (and of the real two-level steal topology). The
// default is 1: no locality penalties, NUMA ≡ Steal. Counts above the
// thread count are clamped by the simulation.
func (m *Machine) SetSockets(s int) {
	if s < 1 {
		s = 1
	}
	m.sockets = s
	m.socketsSet = true
}

// Sockets returns the virtual socket count.
func (m *Machine) Sockets() int { return m.sockets }

// SetRemotePenalty overrides Model.RemoteBytesFactor — the multiplier
// on a chunk's DRAM bytes when a lane executes it off its home socket.
// Values below 1 (including 0) restore the model default.
func (m *Machine) SetRemotePenalty(f float64) { m.remotePenalty = f }

// remoteBytesFactor resolves the effective remote-access multiplier:
// the SetRemotePenalty override, else the model constant, else 1 (for
// models predating the locality fields — no penalty).
func (m *Machine) remoteBytesFactor() float64 {
	if m.remotePenalty >= 1 {
		return m.remotePenalty
	}
	if m.model.RemoteBytesFactor >= 1 {
		return m.model.RemoteBytesFactor
	}
	return 1
}

// realTopo returns the socket topology handed to the real executor:
// the explicit Spec.Sockets count when set, otherwise the zero
// Topology (parallel resolves it to its GOMAXPROCS-derived default).
// The virtual node count rides along so node-aware stealing prefers
// same-node victims; nothing observable depends on it.
func (m *Machine) realTopo() parallel.Topology {
	topo := parallel.Topology{Nodes: m.nodes}
	if m.socketsSet {
		topo.Sockets = m.sockets
	}
	return topo
}

// effSched resolves a region's policy against the machine override.
func (m *Machine) effSched(s Sched) Sched {
	if m.forced {
		return m.forceSched
	}
	return s
}

// Elapsed returns the modeled time in seconds since creation or the
// last Reset.
func (m *Machine) Elapsed() float64 { return m.elapsed }

// Reset zeroes the clock and trace and advances the trace generation
// (invalidating any Mark cursors taken before the call). First-touch
// page ownership survives: pages stay placed for the allocation's
// lifetime.
func (m *Machine) Reset() {
	m.elapsed = 0
	m.trace = m.trace[:0]
	m.generation++
}

// Generation returns the trace generation, incremented by every Reset.
// Cursors from Mark are valid only while the generation is unchanged.
func (m *Machine) Generation() uint64 { return m.generation }

// Tracing reports whether trace retention is enabled. Consumers that
// integrate over the trace (power.RAPL) require it.
func (m *Machine) Tracing() bool { return m.tracing }

// Trace returns the recorded regions. The slice is owned by the
// machine; callers must not modify it.
func (m *Machine) Trace() []Region { return m.trace }

// SetTracing enables or disables trace retention (the clock always
// runs). Long sweeps can disable tracing to bound memory.
func (m *Machine) SetTracing(on bool) { m.tracing = on }

// Mark returns an opaque cursor into the trace, for windowed power
// measurements.
func (m *Machine) Mark() (traceIndex int, elapsed float64) {
	return len(m.trace), m.elapsed
}

func (m *Machine) record(r Region) {
	m.elapsed += r.Seconds
	if m.tracing {
		m.trace = append(m.trace, r)
	}
}

// Serial runs body on one lane and charges its work at single-thread
// speed (turbo clock, single-thread bandwidth).
func (m *Machine) Serial(body func(w *W)) {
	var w W
	body(&w)
	c := w.c
	tComp := c.Cycles/m.model.TurboHz + c.Atomics*m.model.AtomicCycles/m.model.TurboHz
	tMem := c.Bytes / m.model.ThreadBW
	seconds := tComp
	memBound := false
	if tMem > seconds {
		seconds, memBound = tMem, true
	}
	m.record(Region{
		Seconds: seconds, Lanes: 1, ActiveLanes: 1, Utilization: 1,
		Cost: c, MemBound: memBound,
	})
}

// FileRead models reading (and parsing, when parse is true) n bytes
// from storage as a serial region.
func (m *Machine) FileRead(n int64, parse bool) {
	c := Cost{Bytes: float64(n)}
	seconds := float64(n) / m.model.DiskBW
	if parse {
		p := float64(n) * m.model.ParseCyclesPerByte / m.model.TurboHz
		seconds += p
		c.Cycles += float64(n) * m.model.ParseCyclesPerByte
	}
	m.record(Region{
		Seconds: seconds, Lanes: 1, ActiveLanes: 1, Utilization: 1,
		Cost: c, IO: true,
	})
}

// Sleep advances the modeled clock with no work, recording an idle
// region. The power model's sleep baseline integrates over this.
func (m *Machine) Sleep(seconds float64) {
	m.record(Region{Seconds: seconds, Lanes: 0, ActiveLanes: 0})
}

// execSched maps the accounting policy onto the runtime's execution
// policy: the real schedule mirrors the modeled one (static chunks are
// strided round-robin, dynamic chunks come off a shared counter, steal
// chunks move between per-worker deques), but nothing observable
// depends on the real assignment.
func execSched(s Sched) parallel.Sched {
	switch s {
	case Static:
		return parallel.Static
	case Steal:
		return parallel.Steal
	case NUMA:
		return parallel.NUMA
	default:
		return parallel.Dynamic
	}
}

// ParallelFor executes body over [0, n) in chunks of the given grain,
// runs the chunks concurrently on the worker pool, and charges the
// region to the virtual machine under the chosen scheduling policy.
// Chunk boundaries and cost accounting are independent of the real
// execution schedule.
func (m *Machine) ParallelFor(n, grain int, sched Sched, body func(lo, hi int, w *W)) {
	m.ParallelForChunks(n, grain, sched, func(lo, hi, chunk, worker int, w *W) {
		body(lo, hi, w)
	})
}

// ParallelForChunks is ParallelFor with the chunk index and real
// worker ID exposed. The chunk index is stable across runs and worker
// counts — key deterministic reductions (parallel.Reducer slots) off
// it. The worker ID is only stable within one region — use it solely
// for contention-free scratch (parallel.Counter cells).
func (m *Machine) ParallelForChunks(n, grain int, sched Sched, body func(lo, hi, chunk, worker int, w *W)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	sched = m.effSched(sched)
	costs := make([]Cost, parallel.NumChunks(n, grain))
	parallel.ForTopo(m.pool, m.workers, n, grain, execSched(sched), m.realTopo(), func(lo, hi, chunk, worker int) {
		var w W
		body(lo, hi, chunk, worker, &w)
		costs[chunk] = w.c
	})
	m.commitRegion(costs, sched, n, grain)
}

// ChargeSerial records a serial region of exactly cost c without
// executing anything: the accounting half of work whose real execution
// happened outside a region (a frontier drain, a queue concatenation).
// Pairing real work done through internal/parallel with an explicit
// deterministic charge keeps modeled durations bit-identical across
// workers and policies — the charge is a pure function of c.
func (m *Machine) ChargeSerial(c Cost) {
	m.Serial(func(w *W) { w.Charge(c) })
}

// ChargeUniform records a parallel region of n items in chunks of the
// given grain, each item costing `per`, without executing a body. It
// models uniform sweeps (bitmap scans, frontier-to-bitmap conversions)
// whose real execution ran through internal/parallel primitives; the
// virtual lanes are loaded by the same policy rules as
// ParallelForChunks, so the modeled duration is a pure function of
// (n, grain, sched, per).
func (m *Machine) ChargeUniform(n, grain int, sched Sched, per Cost) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	costs := make([]Cost, parallel.NumChunks(n, grain))
	for c := range costs {
		lo := c * grain
		hi := lo + grain
		if hi > n {
			hi = n
		}
		costs[c] = per.Scale(float64(hi - lo))
	}
	m.commitRegion(costs, m.effSched(sched), n, grain)
}

// ForEachThread runs one body per virtual thread, passing the thread
// ID in [0, Threads()). It models OpenMP parallel regions where each
// thread owns local state (e.g., per-thread frontier queues). Bodies
// execute concurrently on the worker pool; each body's cost is charged
// to its own lane.
func (m *Machine) ForEachThread(body func(tid int, w *W)) {
	t := m.threads
	costs := make([]Cost, t)
	parallel.For(m.pool, m.workers, t, 1, parallel.Dynamic, func(lo, hi, chunk, worker int) {
		var w W
		body(lo, &w)
		costs[lo] = w.c
	})
	// One chunk per lane: identity schedule either way.
	m.commitLanes(costs)
}

// commitRegion schedules chunk costs onto virtual lanes, applies the
// first-touch placement charge when the model is active, and records
// the region. n and grain describe the region's index space (chunk c
// covers [c*grain, min(n, (c+1)*grain))); the placement model keys
// page ownership off it.
func (m *Machine) commitRegion(costs []Cost, sched Sched, n, grain int) {
	t := m.threads
	lanes := make([]Cost, t)
	// The placement and network models both need to know which lane ran
	// each chunk; Static's residue-class assignment is implicit, the
	// other policies record it.
	needExec := m.placementActive() || m.clusterActive()
	var execLane []int
	switch sched {
	case Static:
		for i, c := range costs {
			lanes[i%t].Add(c)
		}
	case Dynamic:
		// Greedy least-loaded in chunk order. Track lane "load" in
		// cycles-equivalents (atomics folded at uncontended cost).
		// Every chunk claim is one fetch-and-add on the shared counter,
		// charged to the claiming lane: with more than one lane the
		// counter line bounces, and commitLanes prices each atomic at
		// AtomicCycles plus contention scaling with the active lane
		// count — the serialization the scheduling study quantifies
		// (work stealing pays this only per successful steal).
		loads := make([]float64, t)
		if needExec {
			execLane = make([]int, len(costs))
		}
		for i, c := range costs {
			best := 0
			for l := 1; l < t; l++ {
				if loads[l] < loads[best] {
					best = l
				}
			}
			if t > 1 {
				c.Atomics++
			}
			lanes[best].Add(c)
			loads[best] += laneLoad(c, &m.model)
			if execLane != nil {
				execLane[i] = best
			}
		}
	case Steal, NUMA:
		// With the placement model active, where a chunk's bytes live
		// is decided by the page-ownership map, not by the steal
		// simulation's home-is-static-owner assumption — so the
		// migration bytes multiplier is disabled (factor 1) and ALL
		// byte-locality charging flows through chargePlacement,
		// uniformly with the static and dynamic policies (a stolen
		// chunk must not pay twice for the same remote bytes). The
		// remote CAS latency stays: it prices the steal operation
		// itself, not the data.
		remoteBytes := m.remoteBytesFactor()
		if m.placementActive() {
			remoteBytes = 1
		}
		lanes, execLane = stealLanesTopo(costs, t, m.sockets, remoteBytes,
			m.model.RemoteStealCycles, sched == NUMA, needExec, &m.model)
	}
	if m.placementActive() {
		m.chargePlacement(costs, lanes, execLane, n, grain)
	}
	if m.clusterActive() {
		m.chargeNetwork(costs, lanes, execLane, n, grain)
	}
	m.commitLanes(lanes)
}

// chargePlacement walks the region's chunks in ascending index order —
// the model's deterministic first-touch resolution — recording page
// ownership and adding the remote-read surcharge to each executing
// lane. The surcharge is bytes-only and is applied after lane
// assignment, so it moves the memory roofline without perturbing which
// lane ran which chunk.
func (m *Machine) chargePlacement(costs, lanes []Cost, execLane []int, n, grain int) {
	t := m.threads
	sockets := m.sockets
	if sockets > t {
		sockets = t
	}
	per := (t + sockets - 1) / sockets
	factor := m.remoteBytesFactor()
	for c := range costs {
		lo := c * grain
		hi := lo + grain
		if hi > n {
			hi = n
		}
		l := c % t // Static: the residue-class owner
		if execLane != nil {
			l = execLane[c]
		}
		if extra := m.touchRange(lo, hi, l/per, costs[c].Bytes, factor); extra > 0 {
			lanes[l].Bytes += extra
		}
	}
}

// commitLanes converts per-lane costs into a region duration.
func (m *Machine) commitLanes(lanes []Cost) {
	t := m.threads
	model := &m.model

	// Consume the cluster scratch unconditionally so a stale value can
	// never leak into a later region.
	netSeconds, netBytes := m.pendingNetSeconds, m.pendingNetBytes
	m.pendingNetSeconds, m.pendingNetBytes = 0, 0

	active := 0
	var total Cost
	for _, c := range lanes {
		if c.Cycles != 0 || c.Bytes != 0 || c.Atomics != 0 {
			active++
		}
		total.Add(c)
	}
	if active == 0 {
		return
	}

	hz := model.effHz(t)
	atomicCost := model.AtomicCycles + model.AtomicContention*float64(min(active, t)-1)

	var maxLane, sumLane float64
	for _, c := range lanes {
		sec := (c.Cycles + c.Atomics*atomicCost) / hz
		sumLane += sec
		if sec > maxLane {
			maxLane = sec
		}
	}

	tMem := total.Bytes * model.numaFactor(t) / model.bandwidth(t)
	seconds := maxLane
	memBound := false
	if tMem > seconds {
		seconds, memBound = tMem, true
	}
	seconds += model.barrier(t)
	// The per-superstep network flush serializes after the barrier:
	// every node's batched messages must land before the next region
	// observes their effects.
	seconds += netSeconds

	util := 1.0
	if seconds > 0 {
		util = sumLane / (float64(t) * seconds)
		if util > 1 {
			util = 1
		}
	}
	m.record(Region{
		Seconds: seconds, Lanes: t, ActiveLanes: active,
		Utilization: util, Cost: total, MemBound: memBound,
		NetBytes: netBytes,
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
