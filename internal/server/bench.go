package server

import (
	"github.com/hpcl-repro/epg/internal/graph"
)

// Bench is the goroutine-free serving core — one executor plus the
// precomputed vectors and sketch — used by the deterministic
// virtual-time load simulation and the loadgen study. Run calls are
// serialized by construction (single caller), so modeled service
// times are pure functions of query content.
type Bench struct {
	exec     *executor
	vec      vectors
	sketch   *Sketch
	weighted bool
	n        int
	// cache memoizes responses by (query, degraded, budget). Beyond
	// speed, it pins bit-determinism for repeated simulations on one
	// bench: the machine's elapsed accumulator grows monotonically, so
	// re-running the same kernel later yields the same modeled duration
	// only up to float rounding — the first run's bits are canonical.
	cache map[benchKey]Response
}

type benchKey struct {
	q        Query
	degraded bool
	budget   float64
}

// NewBench builds the serving core without starting any goroutines.
func NewBench(el *graph.EdgeList, threads, landmarks int, compress bool) (*Bench, error) {
	csr := graph.BuildCSR(el, graph.BuildOptions{
		Symmetrize:    !el.Directed,
		DropSelfLoops: true,
		Dedup:         true,
		Sort:          true,
	})
	e, err := newExecutor(0, el, csr, threads, compress)
	if err != nil {
		return nil, err
	}
	vec, err := e.computeVectors()
	if err != nil {
		return nil, err
	}
	return &Bench{
		exec:     e,
		vec:      vec,
		sketch:   BuildSketch(csr, landmarks),
		weighted: el.Weighted,
		n:        csr.NumVertices,
		cache:    make(map[benchKey]Response),
	}, nil
}

// NumVertices reports the query ID space.
func (b *Bench) NumVertices() int { return b.n }

// Weighted reports whether SSSP queries are servable.
func (b *Bench) Weighted() bool { return b.weighted }

// Run serves one query directly on the bench executor, memoized.
func (b *Bench) Run(q Query, budget float64, degraded bool) Response {
	key := benchKey{q: q, degraded: degraded, budget: budget}
	if resp, ok := b.cache[key]; ok {
		return resp
	}
	resp := b.exec.run(nil, q, budget, degraded, b.vec, b.sketch)
	b.cache[key] = resp
	return resp
}
