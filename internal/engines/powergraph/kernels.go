package powergraph

import (
	"math"
	"sync/atomic"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/parallel"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// SSSP implements engines.Instance as a synchronous GAS vertex
// program: gather takes the min over in-edges from active sources into
// each shard's replica slot, the ghost-sync combine folds the replicas
// in shard order, apply commits the improvement, scatter re-activates
// improved vertices. Distances are read from the previous superstep
// only, so supersteps — and with them distances, parents (min-source
// tie-break), and every charged cost — are schedule-independent.
func (inst *Instance) SSSP(root graph.VID) (*engines.SSSPResult, error) {
	if !inst.weighted {
		return nil, engines.ErrUnsupported
	}
	n := inst.n
	res := &engines.SSSPResult{
		Root:   root,
		Dist:   make([]float64, n),
		Parent: make([]int64, n),
	}
	dist := res.Dist
	inf := math.Inf(1)
	for i := range dist {
		dist[i] = inf
		res.Parent[i] = engines.NoParent
	}
	dist[root] = 0
	res.Parent[root] = int64(root)

	accD := make([]float64, inst.totalRep)
	accP := make([]int64, inst.totalRep)
	for i := range accD {
		accD[i] = inf
	}

	// Active sets are bitmaps (parallel.Bitmap), the dense frontier
	// representation: the gather sweep tests one bit per edge source
	// and the apply phase re-arms its own chunk's word range in-region
	// (apply grains are multiples of 64 — the fixed 2048 base and the
	// 64-aligned adaptive resolution alike — so chunks never share a
	// word), and superstep activation costs no per-vertex bool traffic
	// and no extra clearing pass.
	active := parallel.NewBitmap(n)
	next := parallel.NewBitmap(n)
	active.Set(int(root))
	var relaxations int64

	for {
		relaxations += inst.gatherSweep(active, func(s int, e shardEdge) {
			nd := dist[e.src] + float64(e.w)
			i := inst.slot(e.dst, s)
			if nd < accD[i] || (nd == accD[i] && int64(e.src) < accP[i]) {
				accD[i] = nd
				accP[i] = int64(e.src)
			}
		})
		// Ghost sync + apply + scatter: combine each vertex's replica
		// accumulators in shard order, commit improvements, activate.
		// align 64: each chunk re-arms its own word range of `next`.
		anyc := parallel.NewCounter(inst.m.Workers())
		inst.m.ParallelForChunks(n, inst.m.Grain(n, 2048, 64), simmachine.Dynamic, func(lo, hi, chunk, worker int, w *simmachine.W) {
			next.ClearRange(lo, hi)
			var applied, reps int64
			for v := lo; v < hi; v++ {
				best := inf
				var bp int64
				slo, shi := inst.slotRange(graph.VID(v))
				reps += shi - slo
				for i := slo; i < shi; i++ {
					if accD[i] < best || (accD[i] == best && accP[i] < bp) {
						best, bp = accD[i], accP[i]
					}
					accD[i] = inf
				}
				if best < dist[v] {
					dist[v] = best
					res.Parent[v] = bp
					next.Set(v)
					applied++
				}
			}
			anyc.Add(worker, applied)
			w.Charge(costSyncReplica.Scale(float64(reps)))
			w.Charge(costApplyVertex.Scale(float64(applied)))
			w.Cycles(float64(hi-lo) * 1)
		})
		if anyc.Sum() == 0 {
			break
		}
		active, next = next, active
	}
	res.Relaxations = relaxations
	return res, nil
}

// PageRank implements engines.Instance: sum-gather over in-edges into
// shard-local replica accumulators, ghost-sync combine in shard order
// (bit-deterministic float64 sums), apply with the homogenized float64
// L1 stopping criterion (the paper modified each system to use it
// where possible).
func (inst *Instance) PageRank(opts engines.PROpts) (*engines.PRResult, error) {
	opts = opts.Normalize()
	n := inst.n
	if n == 0 {
		return &engines.PRResult{}, nil
	}
	inv := 1.0 / float64(n)
	rank := make([]float64, n)
	for i := range rank {
		rank[i] = inv
	}
	outDeg := inst.out.OutDegrees()
	contrib := make([]float64, n)
	acc := make([]float64, inst.totalRep)

	res := &engines.PRResult{}
	gContrib := inst.m.Grain(n, 4096, 1)
	gApply := inst.m.Grain(n, 2048, 1)
	for iter := 1; iter <= opts.MaxIter; iter++ {
		dr := parallel.NewReducer[float64](parallel.NumChunks(n, gContrib))
		inst.m.ParallelForChunks(n, gContrib, simmachine.Dynamic, func(lo, hi, chunk, worker int, w *simmachine.W) {
			local := 0.0
			for v := lo; v < hi; v++ {
				if outDeg[v] == 0 {
					local += rank[v]
					contrib[v] = 0
					continue
				}
				contrib[v] = rank[v] / float64(outDeg[v])
			}
			*dr.At(chunk) = local
			w.Cycles(float64(hi-lo) * 4)
			w.Bytes(float64(hi-lo) * 24)
		})
		dangling := parallel.SumFloat64(dr)
		base := (1-opts.Damping)*inv + opts.Damping*dangling*inv

		inst.gatherSweep(nil, func(s int, e shardEdge) {
			acc[inst.slot(e.dst, s)] += contrib[e.src]
		})

		// Ghost sync + apply: fold replica partial sums in shard
		// order, then commit the new rank and the L1 delta.
		lr := parallel.NewReducer[float64](parallel.NumChunks(n, gApply))
		inst.m.ParallelForChunks(n, gApply, simmachine.Dynamic, func(lo, hi, chunk, worker int, w *simmachine.W) {
			local := 0.0
			var reps int64
			for v := lo; v < hi; v++ {
				sum := 0.0
				slo, shi := inst.slotRange(graph.VID(v))
				reps += shi - slo
				for i := slo; i < shi; i++ {
					sum += acc[i]
					acc[i] = 0
				}
				nv := base + opts.Damping*sum
				local += math.Abs(nv - rank[v])
				rank[v] = nv
			}
			*lr.At(chunk) = local
			w.Charge(costSyncReplica.Scale(float64(reps)))
			w.Charge(costApplyVertex.Scale(float64(hi - lo)))
		})
		l1 := parallel.SumFloat64(lr)
		res.Iterations = iter
		if l1 < opts.Epsilon {
			break
		}
	}
	res.Rank = rank
	return res, nil
}

// CDLP implements engines.Instance: the gather phase accumulates a
// label histogram per vertex (shipping per-edge label messages), the
// apply phase picks the most frequent label with min tie-break.
// Directed graphs gather from both directions (LDBC semantics); the
// adjacency retained at load supplies the reverse edges.
func (inst *Instance) CDLP(maxIter int) (*engines.CDLPResult, error) {
	n := inst.n
	label := make([]graph.VID, n)
	next := make([]graph.VID, n)
	for i := range label {
		label[i] = graph.VID(i)
	}
	res := &engines.CDLPResult{}
	for iter := 1; iter <= maxIter; iter++ {
		var changed int64
		inst.m.ParallelFor(n, 512, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
			counts := make(map[graph.VID]int)
			var edges, localChanged int64
			for v := lo; v < hi; v++ {
				clear(counts)
				for _, u := range inst.out.Neighbors(graph.VID(v)) {
					counts[label[u]]++
				}
				edges += inst.out.Degree(graph.VID(v))
				if inst.directed {
					for _, u := range inst.in.Neighbors(graph.VID(v)) {
						counts[label[u]]++
					}
					edges += inst.in.Degree(graph.VID(v))
				}
				nl := pickLabel(counts, label[v])
				next[v] = nl
				if nl != label[v] {
					localChanged++
				}
			}
			atomic.AddInt64(&changed, localChanged)
			w.Charge(costGatherEdge.Scale(float64(edges) * 0.6))
			w.Charge(costApplyVertex.Scale(float64(hi - lo)))
		})
		inst.syncGhosts()
		label, next = next, label
		res.Iterations = iter
		if changed == 0 {
			break
		}
	}
	res.Label = label
	return res, nil
}

func pickLabel(counts map[graph.VID]int, own graph.VID) graph.VID {
	if len(counts) == 0 {
		return own
	}
	best := graph.VID(0)
	bestN := -1
	for l, c := range counts {
		if c > bestN || (c == bestN && l < best) {
			best, bestN = l, c
		}
	}
	return best
}

// LCC implements engines.Instance: neighborhood intersection with
// GAS-grade per-check cost.
func (inst *Instance) LCC() (*engines.LCCResult, error) {
	n := inst.n
	coeff := make([]float64, n)
	inst.m.ParallelFor(n, 64, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
		var checks int64
		for v := lo; v < hi; v++ {
			nbrs := inst.neighborhood(graph.VID(v))
			d := len(nbrs)
			if d < 2 {
				continue
			}
			links := 0
			for _, u := range nbrs {
				adj := inst.out.Neighbors(u)
				i, j := 0, 0
				for i < len(adj) && j < len(nbrs) {
					checks++
					switch {
					case adj[i] < nbrs[j]:
						i++
					case adj[i] > nbrs[j]:
						j++
					default:
						links++
						i++
						j++
					}
				}
			}
			coeff[v] = float64(links) / float64(d*(d-1))
		}
		w.Charge(costLCCCheck.Scale(float64(checks)))
		w.Charge(costApplyVertex.Scale(float64(hi - lo)))
	})
	return &engines.LCCResult{Coeff: coeff}, nil
}

func (inst *Instance) neighborhood(v graph.VID) []graph.VID {
	out := inst.out.Neighbors(v)
	if !inst.directed {
		return out
	}
	in := inst.in.Neighbors(v)
	merged := make([]graph.VID, 0, len(out)+len(in))
	i, j := 0, 0
	for i < len(out) || j < len(in) {
		var nxt graph.VID
		switch {
		case i >= len(out):
			nxt = in[j]
			j++
		case j >= len(in):
			nxt = out[i]
			i++
		case out[i] < in[j]:
			nxt = out[i]
			i++
		case in[j] < out[i]:
			nxt = in[j]
			j++
		default:
			nxt = out[i]
			i++
			j++
		}
		if nxt == v {
			continue
		}
		if len(merged) == 0 || merged[len(merged)-1] != nxt {
			merged = append(merged, nxt)
		}
	}
	return merged
}

// WCC implements engines.Instance: min-label GAS supersteps over both
// edge directions until quiescent, with the min flowing through
// shard-local replica slots and the ghost-sync combine (labels are
// read from the previous superstep only — synchronous and
// deterministic).
func (inst *Instance) WCC() (*engines.WCCResult, error) {
	n := inst.n
	comp := make([]uint32, n)
	for i := range comp {
		comp[i] = uint32(i)
	}
	const noLabel = ^uint32(0)
	accC := make([]uint32, inst.totalRep)
	for i := range accC {
		accC[i] = noLabel
	}
	for {
		// Full gather each superstep: min must flow across an edge
		// whenever either endpoint changed, so the sweep processes
		// every local edge (PowerGraph's dense-gather mode). Weak
		// connectivity: propagate min both ways.
		inst.gatherSweep(nil, func(s int, e shardEdge) {
			if c := comp[e.src]; c < accC[inst.slot(e.dst, s)] {
				accC[inst.slot(e.dst, s)] = c
			}
			if c := comp[e.dst]; c < accC[inst.slot(e.src, s)] {
				accC[inst.slot(e.src, s)] = c
			}
		})
		anyc := parallel.NewCounter(inst.m.Workers())
		inst.m.ParallelForChunks(n, inst.m.Grain(n, 2048, 1), simmachine.Dynamic, func(lo, hi, chunk, worker int, w *simmachine.W) {
			var applied, reps int64
			for v := lo; v < hi; v++ {
				best := noLabel
				slo, shi := inst.slotRange(graph.VID(v))
				reps += shi - slo
				for i := slo; i < shi; i++ {
					if accC[i] < best {
						best = accC[i]
					}
					accC[i] = noLabel
				}
				if best < comp[v] {
					comp[v] = best
					applied++
				}
			}
			anyc.Add(worker, applied)
			w.Charge(costSyncReplica.Scale(float64(reps)))
			w.Charge(costApplyVertex.Scale(float64(applied)))
		})
		if anyc.Sum() == 0 {
			break
		}
	}
	res := &engines.WCCResult{Component: make([]graph.VID, n)}
	for v := 0; v < n; v++ {
		res.Component[v] = graph.VID(comp[v])
	}
	return res, nil
}
