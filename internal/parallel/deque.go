package parallel

import "sync/atomic"

// Deque is a fixed-capacity Chase–Lev work-stealing deque of int64
// values (chunk indices, in this package's usage). One goroutine — the
// owner — pushes and pops at the bottom; any number of thieves steal
// from the top concurrently. The algorithm follows Chase & Lev,
// "Dynamic Circular Work-Stealing Deque" (SPAA'05), in the fence
// placement of Lê et al. (PPoPP'13); Go's sync/atomic operations are
// sequentially consistent, which subsumes every fence that formulation
// needs.
//
// The buffer never grows: capacity is fixed at construction and
// PushBottom reports failure when full. The scheduler prefills each
// worker's deque with its chunk assignment before the region starts,
// which bounds occupancy at ceil(nchunks/workers), so growth is never
// needed on the hot path.
type Deque struct {
	top atomic.Int64
	// top and bottom live on separate cache lines: thieves hammer top
	// with CAS while the owner updates bottom on every pop.
	_      [56]byte
	bottom atomic.Int64
	_      [56]byte
	mask   int64
	buf    []int64
}

// NewDeque returns a deque holding at most capacity items (rounded up
// to a power of two internally).
func NewDeque(capacity int) *Deque {
	size := int64(1)
	for size < int64(capacity) {
		size <<= 1
	}
	return &Deque{mask: size - 1, buf: make([]int64, size)}
}

// Len reports the number of items currently enqueued. It is a racy
// snapshot, only meaningful as a heuristic.
func (d *Deque) Len() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// PushBottom appends v at the owner end. Owner-only. It returns false
// when the deque is full (the caller must drain before pushing more).
func (d *Deque) PushBottom(v int64) bool {
	b := d.bottom.Load()
	t := d.top.Load()
	if b-t >= int64(len(d.buf)) {
		return false
	}
	atomic.StoreInt64(&d.buf[b&d.mask], v)
	d.bottom.Store(b + 1)
	return true
}

// PopBottom removes and returns the most recently pushed item.
// Owner-only. The second result is false when the deque is empty or
// the last item was lost to a concurrent thief.
func (d *Deque) PopBottom() (int64, bool) {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore the canonical empty state.
		d.bottom.Store(t)
		return 0, false
	}
	v := atomic.LoadInt64(&d.buf[b&d.mask])
	if b > t {
		return v, true
	}
	// Single item left: race the thieves for it via top.
	won := d.top.CompareAndSwap(t, t+1)
	d.bottom.Store(t + 1)
	if !won {
		return 0, false
	}
	return v, true
}

// Steal removes and returns the oldest item. Safe to call from any
// goroutine. It returns false when the deque is observed empty; on a
// lost race with the owner or another thief it retries internally, so
// false really means "no work here right now".
func (d *Deque) Steal() (int64, bool) {
	for {
		t := d.top.Load()
		b := d.bottom.Load()
		if t >= b {
			return 0, false
		}
		v := atomic.LoadInt64(&d.buf[t&d.mask])
		if d.top.CompareAndSwap(t, t+1) {
			return v, true
		}
		// Lost to the owner or another thief; reobserve.
	}
}
