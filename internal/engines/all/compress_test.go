// Compressed-adjacency walls: under Spec.Compress the GAP and
// Graph500 BFS/PageRank inner loops decode delta+varint neighbor
// streams on the fly. The contract has three sides, mirroring the
// adaptive-grain wall:
//
//  1. Conformance — outputs are bit-identical to the uncompressed run
//     for every kernel of every engine (compression may only move
//     modeled costs, never results).
//  2. Determinism — outputs AND modeled durations (joules included)
//     are bit-identical across runs and real worker counts under
//     every scheduling policy.
//  3. Liveness — for the kernels that actually decode (GAP BFS/PR,
//     Graph500 BFS) the modeled duration trace must differ from the
//     raw-CSR run: equal traces would mean the knob never reached the
//     inner loops.
package all

import (
	"slices"
	"testing"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/harness"
	"github.com/hpcl-repro/epg/internal/kronecker"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// compressPolicies is the scheduling axis of the compressed wall: all
// four policies, with the locality model live on the numa leg.
var compressPolicies = []struct {
	name    string
	sched   simmachine.Sched
	sockets int
}{
	{"static", simmachine.Static, 0},
	{"dynamic", simmachine.Dynamic, 0},
	{"steal", simmachine.Steal, 0},
	{"numa", simmachine.NUMA, 2},
}

// TestCompressDeterministicAllKernels is the six-kernel wall under
// Compress=on × {static, dynamic, steal, numa}: outputs bit-identical
// to the uncompressed run AND across runs/worker counts, modeled
// durations bit-identical across runs/worker counts, for every engine
// that implements each kernel.
func TestCompressDeterministicAllKernels(t *testing.T) {
	el, root := determinismGraph()
	for _, pol := range compressPolicies {
		t.Run(pol.name, func(t *testing.T) {
			opts := runOpts{
				syncSSSP: true, sched: pol.sched, override: true,
				sockets: pol.sockets, compress: true,
			}
			raw := opts
			raw.compress = false
			for _, alg := range engines.AllAlgorithms {
				t.Run(string(alg), func(t *testing.T) {
					for _, name := range Names {
						eng, err := Registry().New(name)
						if err != nil {
							t.Fatal(err)
						}
						if !eng.Has(alg) {
							continue
						}
						t.Run(name, func(t *testing.T) {
							base := runKernelOpts(t, name, alg, el, root, 1, opts)
							// Conformance: identical results to raw CSR.
							uncompressed := runKernelOpts(t, name, alg, el, root, 1, raw)
							sameOutputs(t, "compress vs raw", uncompressed.out, base.out)
							// Determinism: identical everything across
							// runs and worker counts.
							for _, workers := range []int{1, 4} {
								got := runKernelOpts(t, name, alg, el, root, workers, opts)
								sameOutputs(t, "compress", base.out, got.out)
								sameDurations(t, "compress", base, got)
							}
						})
					}
				})
			}
		})
	}
}

// TestCompressChangesModeledCosts pins knob liveness per decoding
// kernel: the compressed run's modeled trace must differ from the raw
// run's for GAP BFS, GAP PageRank, and Graph500 BFS (decode cycles and
// compressed bytes replace the raw 4 B/edge stream), while engines
// without a compressed path (e.g. GraphMat PageRank) must be
// byte-identical — the knob may not leak into them.
func TestCompressChangesModeledCosts(t *testing.T) {
	el, root := determinismGraph()
	decoding := []struct {
		name string
		alg  engines.Algorithm
	}{
		{GAP, engines.BFS},
		{GAP, engines.PageRank},
		{Graph500, engines.BFS},
	}
	for _, c := range decoding {
		t.Run(c.name+"/"+string(c.alg), func(t *testing.T) {
			raw := runKernelOpts(t, c.name, c.alg, el, root, 1, runOpts{})
			comp := runKernelOpts(t, c.name, c.alg, el, root, 1, runOpts{compress: true})
			sameOutputs(t, "compress vs raw outputs", raw.out, comp.out)
			if raw.elapsed == comp.elapsed && slices.Equal(raw.durations, comp.durations) {
				t.Error("compressed duration trace byte-identical to raw: Compress not reaching the inner loop")
			}
		})
	}
	// Engines that ignore the knob must be bitwise unaffected.
	raw := runKernelOpts(t, GraphMat, engines.PageRank, el, root, 1, runOpts{})
	comp := runKernelOpts(t, GraphMat, engines.PageRank, el, root, 1, runOpts{compress: true})
	sameOutputs(t, "graphmat outputs", raw.out, comp.out)
	sameDurations(t, "graphmat durations", raw, comp)
}

// TestSpecCompressKnobEndToEnd drives the harness with Spec.Compress:
// per-trial modeled measurements must be identical across worker
// counts, the knob must move modeled time relative to the raw run for
// a decoding kernel, and the construction phase must absorb the encode
// pass (GAP's Kernel-1 analogue grows).
func TestSpecCompressKnobEndToEnd(t *testing.T) {
	el := kronecker.Generate(kronecker.Params{Scale: 9, Seed: 7})
	r := harness.NewRunner(Registry())
	run := func(workers int, compress bool) (alg, cons []float64) {
		spec := coreSpec(engines.BFS, workers)
		spec.Engines = []string{GAP, Graph500}
		spec.Compress = compress
		rs, err := r.Run(spec, el)
		if err != nil {
			t.Fatal(err)
		}
		alg = make([]float64, len(rs))
		cons = make([]float64, len(rs))
		for i, res := range rs {
			alg[i] = res.AlgorithmSec
			cons[i] = res.ConstructionSec
		}
		return alg, cons
	}
	baseAlg, baseCons := run(1, true)
	for _, workers := range []int{2, 4} {
		gotAlg, gotCons := run(workers, true)
		sameFloat64sBitwise(t, "compress spec algorithm seconds", baseAlg, gotAlg)
		sameFloat64sBitwise(t, "compress spec construction seconds", baseCons, gotCons)
	}
	rawAlg, rawCons := run(1, false)
	if slices.Equal(baseAlg, rawAlg) {
		t.Error("Compress=true modeled algorithm seconds identical to raw: knob not reaching the engines")
	}
	if slices.Equal(baseCons, rawCons) {
		t.Error("Compress=true construction seconds identical to raw: encode pass not charged")
	}
}
