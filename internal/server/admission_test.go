package server

import (
	"sync"
	"testing"
)

func TestTokenBucketRefill(t *testing.T) {
	b := newTokenBucket(10, 2) // 10 qps, burst 2
	if !b.allow(0) || !b.allow(0) {
		t.Fatal("burst tokens not available")
	}
	if b.allow(0) {
		t.Fatal("third token at t=0 should be throttled")
	}
	if b.allow(0.05) {
		t.Fatal("0.5 tokens refilled, not a whole one")
	}
	if !b.allow(0.15) {
		t.Fatal("after 0.15s at 10 qps a token should exist")
	}
	// Refill caps at burst: a long idle period grants burst, not more.
	for i := 0; i < 2; i++ {
		if !b.allow(100) {
			t.Fatalf("token %d of burst after idle missing", i)
		}
	}
	if b.allow(100) {
		t.Fatal("idle refill exceeded burst")
	}
}

func TestTokenBucketDisabled(t *testing.T) {
	b := newTokenBucket(0, 1)
	for i := 0; i < 1000; i++ {
		if !b.allow(0) {
			t.Fatal("qps<=0 must disable throttling")
		}
	}
}

func TestAdmitterQueueBound(t *testing.T) {
	a := newAdmitter(AdmitConfig{QueueCap: 3, DegradeWatermark: 2})
	for i := 0; i < 3; i++ {
		if d := a.tryAdmit(0, false); d != admitOK {
			t.Fatalf("admit %d: got %v", i, d)
		}
	}
	if d := a.tryAdmit(0, false); d != shedQueueFull {
		t.Fatalf("admit at cap: got %v, want shedQueueFull", d)
	}
	if a.Depth() != 3 || a.MaxDepth() != 3 {
		t.Fatalf("depth %d max %d, want 3/3", a.Depth(), a.MaxDepth())
	}
	a.release()
	if d := a.tryAdmit(0, true); d != admitDegraded {
		t.Fatalf("depth 2 >= watermark 2 degradable: got %v, want admitDegraded", d)
	}
	if a.Depth() != 3 {
		t.Fatalf("depth %d after readmit, want 3", a.Depth())
	}
}

func TestAdmitterWatermarkOnlyDegradesDegradable(t *testing.T) {
	a := newAdmitter(AdmitConfig{QueueCap: 4, DegradeWatermark: 1})
	a.tryAdmit(0, false)
	if d := a.tryAdmit(0, false); d != admitOK {
		t.Fatalf("non-degradable op above watermark: got %v, want admitOK", d)
	}
	if d := a.tryAdmit(0, true); d != admitDegraded {
		t.Fatalf("degradable op above watermark: got %v, want admitDegraded", d)
	}
}

func TestAdmitterThrottleBeforeQueueHasRoom(t *testing.T) {
	a := newAdmitter(AdmitConfig{QueueCap: 10, QPS: 1, Burst: 1})
	if d := a.tryAdmit(0, false); d != admitOK {
		t.Fatalf("first: %v", d)
	}
	if d := a.tryAdmit(0, false); d != shedThrottled {
		t.Fatalf("bucket empty: got %v, want shedThrottled", d)
	}
	// Throttled arrivals must not consume queue depth.
	if a.Depth() != 1 {
		t.Fatalf("depth %d after throttle, want 1", a.Depth())
	}
}

func TestAdmitterReserveRespectsCap(t *testing.T) {
	a := newAdmitter(AdmitConfig{QueueCap: 1})
	if !a.tryReserve() {
		t.Fatal("reserve into empty queue failed")
	}
	if a.tryReserve() {
		t.Fatal("reserve past cap succeeded")
	}
	a.release()
	if !a.tryReserve() {
		t.Fatal("reserve after release failed")
	}
}

// TestAdmitterConcurrentLedger hammers the admitter from many
// goroutines and asserts the exact-accounting invariant and the depth
// bound — the live-server version of the sim's Conservation check.
// Run under -race in the serving soak CI step.
func TestAdmitterConcurrentLedger(t *testing.T) {
	const cap = 7
	a := newAdmitter(AdmitConfig{QueueCap: cap})
	var wg sync.WaitGroup
	var mu sync.Mutex
	admitted, shed := 0, 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			localAdmit, localShed := 0, 0
			held := 0
			for i := 0; i < 1000; i++ {
				switch a.tryAdmit(0, false) {
				case admitOK:
					localAdmit++
					// Hold a slot every few admits so the queue
					// actually fills and other goroutines see sheds.
					if i%3 == g%3 && held < 1 {
						held++
					} else {
						a.release()
					}
				case shedQueueFull:
					localShed++
				}
			}
			for ; held > 0; held-- {
				a.release()
			}
			mu.Lock()
			admitted += localAdmit
			shed += localShed
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	if admitted+shed != 8*1000 {
		t.Fatalf("admitted %d + shed %d != offered %d", admitted, shed, 8*1000)
	}
	if a.Depth() != 0 {
		t.Fatalf("final depth %d, want 0", a.Depth())
	}
	if a.MaxDepth() > cap {
		t.Fatalf("max depth %d exceeded cap %d", a.MaxDepth(), cap)
	}
}
