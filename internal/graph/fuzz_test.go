// Fuzz targets for the delta+varint adjacency codec: the varint layer
// against encoding/binary as oracle, and whole-graph compression
// against CSR.Neighbors under every scheduling policy and several
// worker counts. The seed corpus runs in plain `go test` (and so under
// `make race`); CI also runs each target with a bounded -fuzztime on a
// GOMAXPROCS matrix.
package graph

import (
	"bytes"
	"encoding/binary"
	"math"
	"sync/atomic"
	"testing"

	"github.com/hpcl-repro/epg/internal/parallel"
)

// fuzzSchedules maps a fuzz byte onto a policy; NUMA appears twice so
// a random byte exercises the two-level path as often as the rest.
var fuzzSchedules = []parallel.Sched{
	parallel.Static, parallel.Dynamic, parallel.Steal, parallel.NUMA, parallel.NUMA,
}

// FuzzVarintRoundTrip checks the codec's three layers on adversarial
// values: every 4-byte group of data becomes a gap in a synthetic
// sorted adjacency row, so boundary deltas (0, 1, the 0x7f/0x80 and
// 0x3fff/0x4000 word boundaries, MaxUint32-scale jumps) and list
// shapes (empty, single, hub-degree) all reach the full
// encode→decode→compare path; the raw bytes are also decoded as a
// hostile stream to pin the no-panic contract.
func FuzzVarintRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint32(0))
	f.Add([]byte{0, 0, 0, 0}, uint32(1)) // gap 0: duplicate neighbor
	f.Add([]byte{1, 0, 0, 0, 0x7f, 0, 0, 0, 0x80, 0, 0, 0}, uint32(0x7f))
	f.Add([]byte{0xff, 0x3f, 0, 0, 0, 0x40, 0, 0}, uint32(0x4000))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, uint32(0)) // MaxUint32-scale gap
	f.Add(bytes.Repeat([]byte{0xff}, 64), uint32(math.MaxUint32))
	f.Fuzz(func(t *testing.T, data []byte, first uint32) {
		// Layer 1: each group's value round-trips and matches the
		// standard library's byte layout.
		var gaps []uint32
		for i := 0; i+4 <= len(data) && len(gaps) < 256; i += 4 {
			gaps = append(gaps, binary.LittleEndian.Uint32(data[i:]))
		}
		buf := make([]byte, 10)
		std := make([]byte, binary.MaxVarintLen64)
		for _, g := range gaps {
			for _, x := range []uint64{uint64(g), zigzag(int64(g)), zigzag(-int64(g))} {
				n := putUvarint(buf, x)
				if n != uvarintLen(x) {
					t.Fatalf("putUvarint(%d) wrote %d bytes, uvarintLen says %d", x, n, uvarintLen(x))
				}
				v, m := uvarint(buf[:n])
				if v != x || m != n {
					t.Fatalf("uvarint(putUvarint(%d)) = %d, %d", x, v, m)
				}
				if sn := binary.PutUvarint(std, x); !bytes.Equal(std[:sn], buf[:n]) {
					t.Fatalf("encoding of %d diverges from binary.PutUvarint", x)
				}
			}
			if g2 := unzigzag(zigzag(-int64(g))); g2 != -int64(g) {
				t.Fatalf("zigzag round trip of %d = %d", -int64(g), g2)
			}
		}

		// Layer 2: a synthetic one-vertex CSR whose row starts at
		// `first` and walks the fuzzed gaps (saturating at MaxUint32 so
		// the list stays sorted). CompressCSR doesn't range-check
		// neighbors, so MaxUint32-scale IDs exercise the widest deltas.
		adj := make([]VID, 0, len(gaps)+1)
		cur := uint64(first)
		adj = append(adj, VID(cur))
		for _, g := range gaps {
			cur += uint64(g)
			if cur > math.MaxUint32 {
				cur = math.MaxUint32
			}
			adj = append(adj, VID(cur))
		}
		if len(data) == 0 {
			adj = adj[:0] // empty-list shape
		}
		c := &CSR{NumVertices: 1, Offsets: []int64{0, int64(len(adj))}, Adj: adj}
		cc := CompressCSR(c, 1)
		got := cc.DecodeNeighbors(0, nil)
		if len(got) != len(adj) {
			t.Fatalf("decoded %d neighbors, want %d", len(got), len(adj))
		}
		for i := range adj {
			if got[i] != adj[i] {
				t.Fatalf("neighbor %d: decoded %d, want %d", i, got[i], adj[i])
			}
		}
		d := cc.Decoder(0)
		for range adj {
			d.Next()
		}
		if int64(d.BytesRead()) != cc.TotalBytes() {
			t.Fatalf("BytesRead %d after full decode, stream is %d bytes", d.BytesRead(), cc.TotalBytes())
		}

		// Layer 3: hostile bytes. uvarint must never panic, read out of
		// range, or claim more bytes than exist.
		v, n := uvarint(data)
		if n > len(data) || n > 10 || n < -1 {
			t.Fatalf("uvarint on hostile input returned n=%d (len %d)", n, len(data))
		}
		if n > 0 && uvarintLen(v) > n {
			t.Fatalf("decoded %d from %d bytes but canonical encoding needs %d", v, n, uvarintLen(v))
		}
	})
}

// FuzzCompressedCSREquivalence asserts decode(encode(adj)) ≡
// CSR.Neighbors on randomized graphs: the compressed layout is
// byte-identical at every worker count, Validate accepts it, and a
// parallel decode sweep under a fuzz-chosen scheduling policy (all
// four reachable) reproduces every raw adjacency list exactly.
func FuzzCompressedCSREquivalence(f *testing.F) {
	f.Add(uint64(1), uint16(5), uint16(0), uint8(0), uint8(0), uint8(0))    // edgeless
	f.Add(uint64(2), uint16(64), uint16(300), uint8(3), uint8(1), uint8(1)) // undirected, dedup
	f.Add(uint64(3), uint16(500), uint16(4000), uint8(7), uint8(2), uint8(2))
	f.Add(uint64(0xbeef), uint16(2), uint16(4000), uint8(4), uint8(3), uint8(0)) // hub-degree rows
	p := parallel.NewPool(8)
	f.Fuzz(func(t *testing.T, seed uint64, nSeed, mSeed uint16, workers, schedSeed, optSeed uint8) {
		n := int(nSeed)%512 + 1
		m := int(mSeed) % 4096
		el := randomEdgeList(seed, n, m, optSeed&4 != 0)
		c := BuildCSR(el, BuildOptions{
			Symmetrize:    optSeed&1 != 0,
			Dedup:         optSeed&2 != 0,
			DropSelfLoops: true,
			Sort:          true,
		})

		// Deterministic layout: any worker count, same bytes.
		cc := CompressCSR(c, 1)
		if alt := CompressCSR(c, int(workers)%8+1); !bytes.Equal(cc.Data, alt.Data) {
			t.Fatalf("workers=%d produces a different byte layout", int(workers)%8+1)
		}
		if err := cc.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}

		// Parallel decode sweep under the fuzz-chosen policy.
		w := int(workers)%8 + 1
		sched := fuzzSchedules[int(schedSeed)%len(fuzzSchedules)]
		var bad int64 = -1
		parallel.For(p, w, n, 16, sched, func(lo, hi, chunk, worker int) {
			var buf []VID
			for v := lo; v < hi; v++ {
				buf = cc.DecodeNeighbors(VID(v), buf)
				want := c.Neighbors(VID(v))
				if len(buf) != len(want) {
					atomic.StoreInt64(&bad, int64(v))
					return
				}
				for i := range want {
					if buf[i] != want[i] {
						atomic.StoreInt64(&bad, int64(v))
						return
					}
				}
			}
		})
		if v := atomic.LoadInt64(&bad); v >= 0 {
			t.Fatalf("sched=%v workers=%d: vertex %d decodes differently from CSR.Neighbors", sched, w, v)
		}
	})
}
