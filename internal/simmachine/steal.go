package simmachine

import (
	"github.com/hpcl-repro/epg/internal/parallel"
	"github.com/hpcl-repro/epg/internal/xrand"
)

// laneLoad converts a chunk cost into the scalar "cycles-equivalent"
// load the schedulers order lanes by (atomics folded at uncontended
// cost, bytes at a nominal 4 B/cycle).
func laneLoad(c Cost, model *Model) float64 {
	return c.Cycles + c.Atomics*model.AtomicCycles + c.Bytes/4
}

// stealLanes deterministically simulates a work-stealing execution of
// the chunk costs over t virtual lanes and returns the per-lane cost
// assignment.
//
// The simulation mirrors the real runtime's discipline
// (parallel.Steal): lane l starts owning chunks l, l+t, l+2t, ... and
// consumes its own share in ascending index order; when its queue is
// empty it steals the highest-index remaining chunk from a victim
// chosen by a seeded RNG (falling back to a deterministic scan so
// progress never depends on RNG luck), paying one atomic RMW per
// successful steal. Lanes act in order of accumulated load — the
// least-loaded lane is the one whose "clock" is furthest behind, i.e.
// the first to go idle — which makes this a discrete-event
// approximation of the steal race.
//
// Everything here is a pure function of (costs, t, model): the RNG
// seed derives from the region shape only, so modeled durations are
// bit-identical across runs and real worker counts. That is the
// property the determinism wall asserts for SchedSteal.
func stealLanes(costs []Cost, t int, model *Model) []Cost {
	lanes := make([]Cost, t)
	if len(costs) == 0 {
		return lanes
	}
	if t == 1 {
		for _, c := range costs {
			lanes[0].Add(c)
		}
		return lanes
	}
	// Per-lane queues in ascending chunk order; owners take from the
	// front, thieves from the back (the real deque's two ends).
	queues := make([][]int, t)
	for c := range costs {
		queues[c%t] = append(queues[c%t], c)
	}
	head := make([]int, t)
	tail := make([]int, t)
	for l := range queues {
		tail[l] = len(queues[l])
	}

	r := xrand.New(parallel.StealSeed(len(costs), t))
	loads := make([]float64, t)
	remaining := len(costs)
	for remaining > 0 {
		// The lane that has accrued the least load acts next
		// (ties break toward the lowest lane index).
		l := 0
		for k := 1; k < t; k++ {
			if loads[k] < loads[l] {
				l = k
			}
		}
		if head[l] < tail[l] {
			c := queues[l][head[l]]
			head[l]++
			lanes[l].Add(costs[c])
			loads[l] += laneLoad(costs[c], model)
			remaining--
			continue
		}
		// Own queue empty: steal. Random probes first, then a
		// deterministic scan (remaining > 0 guarantees a victim).
		victim := -1
		for tries := 0; tries < t; tries++ {
			v := int(r.Uint64() % uint64(t))
			loads[l] += model.AtomicCycles // failed/attempted probe
			if v != l && head[v] < tail[v] {
				victim = v
				break
			}
		}
		if victim < 0 {
			for off := 1; off < t; off++ {
				v := (l + off) % t
				if head[v] < tail[v] {
					victim = v
					break
				}
			}
		}
		tail[victim]--
		c := queues[victim][tail[victim]]
		lanes[l].Add(costs[c])
		lanes[l].Add(Cost{Atomics: 1}) // the claiming CAS
		loads[l] += laneLoad(costs[c], model) + model.AtomicCycles
		remaining--
	}
	return lanes
}
