package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"github.com/hpcl-repro/epg/internal/graph"
)

// Handler returns the daemon's HTTP API, versioned under /v1:
//
//	GET  /v1/query?op=bfs&src=3&dst=9[&k=2][&deadline_ms=50]
//	GET  /v1/metrics
//	GET  /v1/healthz
//	POST /v1/refresh
//	POST /v1/mutate      {"ops":[{"op":"insert","src":1,"dst":2,"w":0.5}, ...]}
//
// The unversioned paths (/query, /metrics, /healthz, /refresh,
// /mutate) are aliases for compatibility with pre-v1 clients.
//
// Status mapping: 200 served (including degraded answers — check the
// "degraded" field); every non-200 carries a structured error body
// {"code","message","retry_after_ms"}: 400 invalid_query, 405
// method_not_allowed, 429 shed (Retry-After header and retry_after_ms
// agree), 500 panic or engine_error, 503 closed, 504 deadline.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	routes := map[string]http.HandlerFunc{
		"/query":   s.handleQuery,
		"/metrics": s.handleMetrics,
		"/healthz": s.handleHealthz,
		"/refresh": s.handleRefresh,
		"/mutate":  s.handleMutate,
	}
	for path, h := range routes {
		mux.HandleFunc("/v1"+path, h)
		mux.HandleFunc(path, h) // legacy alias
	}
	return mux
}

// API error codes (the "code" field of non-200 bodies).
const (
	codeInvalidQuery     = "invalid_query"
	codeShed             = "shed"
	codeDeadline         = "deadline"
	codePanic            = "panic"
	codeEngineError      = "engine_error"
	codeClosed           = "closed"
	codeMethodNotAllowed = "method_not_allowed"
)

// shedRetryAfterMS is the backoff hint on 429 responses; the
// Retry-After header is the same value in (integer) seconds.
const shedRetryAfterMS = 1000

// apiError is the structured body of every non-200 response.
type apiError struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMS int    `json:"retry_after_ms,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeError emits a non-200 with the structured error body; sheds
// also carry the Retry-After header, agreeing with the body's hint.
func writeError(w http.ResponseWriter, httpCode int, code, message string) {
	e := apiError{Code: code, Message: message}
	if code == codeShed {
		e.RetryAfterMS = shedRetryAfterMS
		w.Header().Set("Retry-After", strconv.Itoa(shedRetryAfterMS/1000))
	}
	writeJSON(w, httpCode, e)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "GET only")
		return
	}
	q, err := parseQueryParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidQuery, err.Error())
		return
	}
	resp := s.Submit(r.Context(), q)
	switch resp.Status {
	case StatusShed:
		writeError(w, http.StatusTooManyRequests, codeShed, resp.Err)
	case StatusDeadline:
		writeError(w, http.StatusGatewayTimeout, codeDeadline, resp.Err)
	case StatusPanic:
		writeError(w, http.StatusInternalServerError, codePanic, resp.Err)
	case StatusError:
		// Validation errors are the client's; engine errors ours.
		if s.closed.Load() {
			writeError(w, http.StatusServiceUnavailable, codeClosed, resp.Err)
		} else if resp.ModeledSec == 0 {
			writeError(w, http.StatusBadRequest, codeInvalidQuery, resp.Err)
		} else {
			writeError(w, http.StatusInternalServerError, codeEngineError, resp.Err)
		}
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}

func parseQueryParams(r *http.Request) (Query, error) {
	v := r.URL.Query()
	q := Query{Op: Op(v.Get("op"))}
	parse := func(key string) (graph.VID, error) {
		u, err := strconv.ParseUint(v.Get(key), 10, 32)
		return graph.VID(u), err
	}
	var err error
	if v.Get("src") != "" {
		if q.Source, err = parse("src"); err != nil {
			return q, err
		}
	}
	if v.Get("dst") != "" {
		if q.Target, err = parse("dst"); err != nil {
			return q, err
		}
	}
	if ks := v.Get("k"); ks != "" {
		if q.K, err = strconv.Atoi(ks); err != nil {
			return q, err
		}
	}
	if ds := v.Get("deadline_ms"); ds != "" {
		ms, err := strconv.ParseFloat(ds, 64)
		if err != nil {
			return q, err
		}
		q.DeadlineSec = ms / 1e3
	}
	return q, nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.Metrics()
	writeJSON(w, http.StatusOK, struct {
		MetricsSnapshot
		QueueDepth    int `json:"queue_depth"`
		MaxQueueDepth int `json:"max_queue_depth"`
	}{snap, s.QueueDepth(), s.MaxQueueDepth()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"dataset":  s.cfg.Dataset,
		"vertices": s.NumVertices(),
		"weighted": s.Weighted(),
	})
}

// maintenanceError maps Refresh/Mutate errors onto the API error
// vocabulary.
func maintenanceError(w http.ResponseWriter, err error, clientSide bool) {
	switch {
	case errors.Is(err, ErrOverloaded):
		writeError(w, http.StatusTooManyRequests, codeShed, err.Error())
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, codeClosed, err.Error())
	case clientSide:
		writeError(w, http.StatusBadRequest, codeInvalidQuery, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, codeEngineError, err.Error())
	}
}

func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "POST only")
		return
	}
	if err := s.Refresh(r.Context()); err != nil {
		maintenanceError(w, err, false)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"sketch_gen": s.SketchGeneration(),
	})
}

// mutateOp is one wire-format mutation.
type mutateOp struct {
	Op  string  `json:"op"` // "insert" or "delete"
	Src uint32  `json:"src"`
	Dst uint32  `json:"dst"`
	W   float32 `json:"w,omitempty"`
}

// mutateRequest is the POST /v1/mutate body.
type mutateRequest struct {
	Ops []mutateOp `json:"ops"`
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "POST only")
		return
	}
	var req mutateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidQuery, "bad mutate body: "+err.Error())
		return
	}
	batch := make(graph.Batch, 0, len(req.Ops))
	for i, op := range req.Ops {
		mu := graph.Mutation{Src: graph.VID(op.Src), Dst: graph.VID(op.Dst), W: op.W}
		switch op.Op {
		case "insert":
			mu.Op = graph.MutInsert
		case "delete":
			mu.Op = graph.MutDelete
		default:
			writeError(w, http.StatusBadRequest, codeInvalidQuery,
				"op "+strconv.Itoa(i)+": unknown kind "+strconv.Quote(op.Op))
			return
		}
		batch = append(batch, mu)
	}
	rep, err := s.Mutate(r.Context(), batch)
	if err != nil {
		maintenanceError(w, err, errors.Is(err, ErrInvalidBatch))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":          "ok",
		"inserted":        rep.Stats.Inserted,
		"deleted":         rep.Stats.Deleted,
		"dup_inserts":     rep.Stats.DupInserts,
		"missing_deletes": rep.Stats.MissingDeletes,
		"self_loops":      rep.Stats.SelfLoops,
		"dirty_rows":      rep.DirtyRows,
		"edges_touched":   rep.EdgesTouched,
		"sketch_gen":      s.SketchGeneration(),
	})
}
