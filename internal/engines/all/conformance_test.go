// Conformance tests: every engine's every supported algorithm is
// validated against the serial references on a range of graph shapes.
package all

import (
	"errors"
	"fmt"
	"math"
	"os"
	"testing"

	"github.com/hpcl-repro/epg/internal/datasets"
	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/kronecker"
	"github.com/hpcl-repro/epg/internal/simmachine"
	"github.com/hpcl-repro/epg/internal/verify"
	"github.com/hpcl-repro/epg/internal/xrand"
)

type testGraph struct {
	name string
	el   *graph.EdgeList
}

func testGraphs(t testing.TB) []testGraph {
	t.Helper()
	return []testGraph{
		{"kron10", kronecker.Generate(kronecker.Params{Scale: 10, Seed: 42})},
		{"kron8", kronecker.Generate(kronecker.Params{Scale: 8, Seed: 7})},
		{"dota-small", datasets.GenerateDotaLeague(datasets.Config{ScaleDivisor: 256, Seed: 3})},
		{"patents-small", datasets.GenerateCitPatents(datasets.Config{ScaleDivisor: 2048, Seed: 3})},
		{"path", pathGraph(64)},
		{"two-components", twoComponents()},
	}
}

func pathGraph(n int) *graph.EdgeList {
	el := &graph.EdgeList{NumVertices: n, Weighted: true}
	for i := 0; i < n-1; i++ {
		el.Edges = append(el.Edges, graph.Edge{Src: graph.VID(i), Dst: graph.VID(i + 1), W: 0.25})
	}
	return el
}

func twoComponents() *graph.EdgeList {
	el := &graph.EdgeList{NumVertices: 12, Weighted: true}
	for i := 0; i < 5; i++ {
		el.Edges = append(el.Edges, graph.Edge{Src: graph.VID(i), Dst: graph.VID(i + 1), W: 0.5})
	}
	for i := 6; i < 11; i++ {
		el.Edges = append(el.Edges, graph.Edge{Src: graph.VID(i), Dst: graph.VID(i + 1), W: 0.5})
	}
	// Triangle inside the second component for LCC coverage.
	el.Edges = append(el.Edges, graph.Edge{Src: 6, Dst: 8, W: 0.5})
	return el
}

func newMachine() *simmachine.Machine {
	return simmachine.New(simmachine.Haswell72(), 8)
}

// loadAll returns one prepared instance per engine for the graph.
func loadAll(t *testing.T, el *graph.EdgeList) map[string]engines.Instance {
	t.Helper()
	return loadAllWith(t, el, nil, false)
}

func roots(p *verify.Prepared, count int) []graph.VID {
	var rs []graph.VID
	for v := 0; v < p.Out.NumVertices && len(rs) < count; v++ {
		if p.Out.Degree(graph.VID(v)) > 1 {
			rs = append(rs, graph.VID(v))
		}
	}
	return rs
}

func TestRegistryHasFiveEngines(t *testing.T) {
	reg := Registry()
	if got := len(reg.Names()); got != 5 {
		t.Fatalf("registry has %d engines, want 5", got)
	}
	if _, err := reg.New("Ligra"); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestCapabilitiesMatchPaper(t *testing.T) {
	reg := Registry()
	want := map[string]map[engines.Algorithm]bool{
		Graph500:   {engines.BFS: true},
		GAP:        {engines.BFS: true, engines.SSSP: true, engines.PageRank: true, engines.WCC: true},
		GraphBIG:   {engines.BFS: true, engines.SSSP: true, engines.PageRank: true, engines.CDLP: true, engines.LCC: true, engines.WCC: true},
		GraphMat:   {engines.BFS: true, engines.SSSP: true, engines.PageRank: true, engines.CDLP: true, engines.LCC: true, engines.WCC: true},
		PowerGraph: {engines.SSSP: true, engines.PageRank: true, engines.CDLP: true, engines.LCC: true, engines.WCC: true},
	}
	for name, caps := range want {
		eng, err := reg.New(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range engines.AllAlgorithms {
			if got := eng.Has(alg); got != caps[alg] {
				t.Errorf("%s.Has(%s) = %v, want %v", name, alg, got, caps[alg])
			}
		}
	}
	// Construction phases per the paper: GraphBIG and PowerGraph
	// build while reading.
	sep := map[string]bool{Graph500: true, GAP: true, GraphMat: true, GraphBIG: false, PowerGraph: false}
	for name, want := range sep {
		eng, _ := reg.New(name)
		if got := eng.SeparateConstruction(); got != want {
			t.Errorf("%s.SeparateConstruction() = %v, want %v", name, got, want)
		}
	}
}

func TestBFSConformance(t *testing.T) {
	for _, tg := range testGraphs(t) {
		t.Run(tg.name, func(t *testing.T) {
			p := verify.Prepare(tg.el)
			insts := loadAll(t, tg.el)
			for _, root := range roots(p, 3) {
				ref := verify.BFS(p, root)
				for name, inst := range insts {
					got, err := inst.BFS(root)
					if errors.Is(err, engines.ErrUnsupported) {
						continue
					}
					if err != nil {
						t.Fatalf("%s BFS: %v", name, err)
					}
					if err := verify.ValidateBFS(p, got, ref); err != nil {
						t.Errorf("%s root %d: %v", name, root, err)
					}
				}
			}
		})
	}
}

func TestSSSPConformance(t *testing.T) {
	for _, tg := range testGraphs(t) {
		if !tg.el.Weighted {
			continue
		}
		t.Run(tg.name, func(t *testing.T) {
			p := verify.Prepare(tg.el)
			insts := loadAll(t, tg.el)
			for _, root := range roots(p, 2) {
				ref := verify.SSSP(p, root)
				for name, inst := range insts {
					got, err := inst.SSSP(root)
					if errors.Is(err, engines.ErrUnsupported) {
						continue
					}
					if err != nil {
						t.Fatalf("%s SSSP: %v", name, err)
					}
					if err := verify.ValidateSSSP(p, got, ref); err != nil {
						t.Errorf("%s root %d: %v", name, root, err)
					}
				}
			}
		})
	}
}

func TestSSSPUnsupportedOnUnweighted(t *testing.T) {
	// cit-Patents is unweighted: SSSP must be N/A (Table I).
	el := datasets.GenerateCitPatents(datasets.Config{ScaleDivisor: 4096, Seed: 1})
	insts := loadAll(t, el)
	for name, inst := range insts {
		if name == Graph500 {
			continue // BFS-only anyway
		}
		if _, err := inst.SSSP(0); !errors.Is(err, engines.ErrUnsupported) {
			t.Errorf("%s SSSP on unweighted graph: err = %v, want ErrUnsupported", name, err)
		}
	}
}

func TestPageRankConformance(t *testing.T) {
	tolerances := map[string]float64{
		GAP:        1e-6,
		PowerGraph: 1e-6,
		GraphBIG:   5e-3, // float32 properties
		GraphMat:   5e-3, // float32 properties
	}
	for _, tg := range testGraphs(t) {
		t.Run(tg.name, func(t *testing.T) {
			p := verify.Prepare(tg.el)
			ref := verify.PageRank(p, engines.PROpts{})
			insts := loadAll(t, tg.el)
			for name, inst := range insts {
				got, err := inst.PageRank(engines.PROpts{})
				if errors.Is(err, engines.ErrUnsupported) {
					continue
				}
				if err != nil {
					t.Fatalf("%s PR: %v", name, err)
				}
				if err := verify.ValidatePageRank(got, ref, tolerances[name]); err != nil {
					t.Errorf("%s: %v", name, err)
				}
				if got.Iterations < 1 {
					t.Errorf("%s: no iterations recorded", name)
				}
			}
		})
	}
}

func TestGraphMatRunsMoreIterations(t *testing.T) {
	// The paper's Fig. 4 observation: GraphMat's run-until-no-change
	// rule yields the most iterations. The ordering is a large-graph
	// property (at tiny scales the global L1 budget is the stricter
	// criterion), so this uses the largest quick-test scale.
	el := kronecker.Generate(kronecker.Params{Scale: 13, Seed: 42})
	insts := loadAll(t, el)
	iters := map[string]int{}
	for name, inst := range insts {
		res, err := inst.PageRank(engines.PROpts{})
		if errors.Is(err, engines.ErrUnsupported) {
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		iters[name] = res.Iterations
	}
	// Compare against the float64 L1-stopped engines, whose counts
	// are stable. GraphBIG's float32 L1 wanders near the 6e-8
	// threshold and can overshoot everyone at small scales, so it is
	// excluded from the strict ordering (the paper's full ordering is
	// a scale-22 observation; see EXPERIMENTS.md).
	for _, other := range []string{GAP, PowerGraph} {
		if iters[GraphMat] < iters[other] {
			t.Errorf("GraphMat iterations (%d) below %s (%d)", iters[GraphMat], other, iters[other])
		}
	}
}

func TestCDLPConformance(t *testing.T) {
	for _, tg := range testGraphs(t) {
		t.Run(tg.name, func(t *testing.T) {
			p := verify.Prepare(tg.el)
			ref := verify.CDLP(p, engines.DefaultCDLPIterations)
			insts := loadAll(t, tg.el)
			for name, inst := range insts {
				got, err := inst.CDLP(engines.DefaultCDLPIterations)
				if errors.Is(err, engines.ErrUnsupported) {
					continue
				}
				if err != nil {
					t.Fatalf("%s CDLP: %v", name, err)
				}
				if err := verify.ValidateCDLP(got, ref); err != nil {
					t.Errorf("%s: %v", name, err)
				}
			}
		})
	}
}

func TestLCCConformance(t *testing.T) {
	for _, tg := range testGraphs(t) {
		t.Run(tg.name, func(t *testing.T) {
			p := verify.Prepare(tg.el)
			ref := verify.LCC(p)
			insts := loadAll(t, tg.el)
			for name, inst := range insts {
				got, err := inst.LCC()
				if errors.Is(err, engines.ErrUnsupported) {
					continue
				}
				if err != nil {
					t.Fatalf("%s LCC: %v", name, err)
				}
				if err := verify.ValidateLCC(got, ref); err != nil {
					t.Errorf("%s: %v", name, err)
				}
			}
		})
	}
}

func TestWCCConformance(t *testing.T) {
	for _, tg := range testGraphs(t) {
		t.Run(tg.name, func(t *testing.T) {
			p := verify.Prepare(tg.el)
			ref := verify.WCC(p)
			insts := loadAll(t, tg.el)
			for name, inst := range insts {
				got, err := inst.WCC()
				if errors.Is(err, engines.ErrUnsupported) {
					continue
				}
				if err != nil {
					t.Fatalf("%s WCC: %v", name, err)
				}
				if err := verify.ValidateWCC(got, ref); err != nil {
					t.Errorf("%s: %v", name, err)
				}
			}
		})
	}
}

// --- Randomized cross-engine conformance -----------------------------
//
// Beyond the fixed shapes above, every pair of engines must agree on
// seeded random and Kronecker graphs for all six kernels: BFS parent
// trees valid with equal depth arrays, SSSP distances within
// tolerance, PageRank ranks within an L1 budget set by the weaker
// engine's precision, and exact agreement for the deterministic
// CDLP/LCC/WCC semantics.

// randomGraph generates a seeded uniform random multigraph (self loops
// and duplicates included: homogenization must absorb them).
func randomGraph(seed uint64, n int, directed bool) *graph.EdgeList {
	r := xrand.New(seed)
	el := &graph.EdgeList{NumVertices: n, Directed: directed, Weighted: true}
	m := 4 * n
	for i := 0; i < m; i++ {
		el.Edges = append(el.Edges, graph.Edge{
			Src: graph.VID(r.Intn(n)),
			Dst: graph.VID(r.Intn(n)),
			W:   float32(r.Float64()*0.99) + 0.01,
		})
	}
	return el
}

// prTolerance is the pairwise PageRank L1 budget: float64 engines
// agree to 1e-6; any pair involving a float32 engine gets the
// precision-floor budget the package-level tolerances use.
func prTolerance(a, b string) float64 {
	f32 := map[string]bool{GraphBIG: true, GraphMat: true}
	if f32[a] || f32[b] {
		return 1e-2
	}
	return 1e-6
}

func conformanceGraphs() []testGraph {
	var gs []testGraph
	for seed := uint64(1); seed <= 3; seed++ {
		gs = append(gs,
			testGraph{fmt.Sprintf("rand-undirected-%d", seed), randomGraph(seed, 400, false)},
			testGraph{fmt.Sprintf("rand-directed-%d", seed), randomGraph(seed+100, 400, true)},
			testGraph{fmt.Sprintf("kron-%d", seed), kronecker.Generate(kronecker.Params{Scale: 9, Seed: seed})},
		)
	}
	return gs
}

func TestRandomizedCrossEngineConformance(t *testing.T) {
	for _, tg := range conformanceGraphs() {
		t.Run(tg.name, func(t *testing.T) {
			p := verify.Prepare(tg.el)
			insts := loadAll(t, tg.el)
			rs := roots(p, 2)
			if len(rs) == 0 {
				t.Fatal("no usable roots")
			}

			// BFS: validate each engine against the reference, then
			// require identical depth arrays across every engine pair
			// (levels are unique even when parent choices are not).
			for _, root := range rs {
				ref := verify.BFS(p, root)
				got := map[string]*engines.BFSResult{}
				for name, inst := range insts {
					res, err := inst.BFS(root)
					if errors.Is(err, engines.ErrUnsupported) {
						continue
					}
					if err != nil {
						t.Fatalf("%s BFS: %v", name, err)
					}
					if err := verify.ValidateBFS(p, res, ref); err != nil {
						t.Errorf("%s root %d: %v", name, root, err)
					}
					got[name] = res
				}
				forEachPair(got, func(a, b string, ra, rb *engines.BFSResult) {
					for v := range ra.Depth {
						if ra.Depth[v] != rb.Depth[v] {
							t.Errorf("BFS root %d: %s and %s disagree on depth of %d (%d vs %d)",
								root, a, b, v, ra.Depth[v], rb.Depth[v])
							return
						}
					}
				})
			}

			// SSSP: pairwise distances within the validator tolerance.
			for _, root := range rs[:1] {
				ref := verify.SSSP(p, root)
				got := map[string]*engines.SSSPResult{}
				for name, inst := range insts {
					res, err := inst.SSSP(root)
					if errors.Is(err, engines.ErrUnsupported) {
						continue
					}
					if err != nil {
						t.Fatalf("%s SSSP: %v", name, err)
					}
					if err := verify.ValidateSSSP(p, res, ref); err != nil {
						t.Errorf("%s root %d: %v", name, root, err)
					}
					got[name] = res
				}
				forEachPair(got, func(a, b string, ra, rb *engines.SSSPResult) {
					for v := range ra.Dist {
						da, db := ra.Dist[v], rb.Dist[v]
						if math.IsInf(da, 1) != math.IsInf(db, 1) {
							t.Errorf("SSSP root %d: %s and %s disagree on reachability of %d", root, a, b, v)
							return
						}
						if !math.IsInf(da, 1) && math.Abs(da-db) > 2*verify.SSSPTolerance*(1+math.Abs(da)) {
							t.Errorf("SSSP root %d: %s and %s disagree at %d (%v vs %v)", root, a, b, v, da, db)
							return
						}
					}
				})
			}

			// PageRank: pairwise L1 within the weaker precision.
			{
				got := map[string]*engines.PRResult{}
				for name, inst := range insts {
					res, err := inst.PageRank(engines.PROpts{})
					if errors.Is(err, engines.ErrUnsupported) {
						continue
					}
					if err != nil {
						t.Fatalf("%s PR: %v", name, err)
					}
					got[name] = res
				}
				forEachPair(got, func(a, b string, ra, rb *engines.PRResult) {
					l1 := 0.0
					for v := range ra.Rank {
						l1 += math.Abs(ra.Rank[v] - rb.Rank[v])
					}
					if tol := prTolerance(a, b); l1 > tol {
						t.Errorf("PR: %s vs %s L1 = %v exceeds %v", a, b, l1, tol)
					}
				})
			}

			// CDLP / WCC: exact pairwise agreement; LCC within epsilon.
			{
				got := map[string]*engines.CDLPResult{}
				for name, inst := range insts {
					res, err := inst.CDLP(engines.DefaultCDLPIterations)
					if errors.Is(err, engines.ErrUnsupported) {
						continue
					}
					if err != nil {
						t.Fatalf("%s CDLP: %v", name, err)
					}
					got[name] = res
				}
				forEachPair(got, func(a, b string, ra, rb *engines.CDLPResult) {
					for v := range ra.Label {
						if ra.Label[v] != rb.Label[v] {
							t.Errorf("CDLP: %s and %s disagree at %d", a, b, v)
							return
						}
					}
				})
			}
			{
				got := map[string]*engines.LCCResult{}
				for name, inst := range insts {
					res, err := inst.LCC()
					if errors.Is(err, engines.ErrUnsupported) {
						continue
					}
					if err != nil {
						t.Fatalf("%s LCC: %v", name, err)
					}
					got[name] = res
				}
				forEachPair(got, func(a, b string, ra, rb *engines.LCCResult) {
					for v := range ra.Coeff {
						if math.Abs(ra.Coeff[v]-rb.Coeff[v]) > 1e-9 {
							t.Errorf("LCC: %s and %s disagree at %d (%v vs %v)", a, b, v, ra.Coeff[v], rb.Coeff[v])
							return
						}
					}
				})
			}
			{
				got := map[string]*engines.WCCResult{}
				for name, inst := range insts {
					res, err := inst.WCC()
					if errors.Is(err, engines.ErrUnsupported) {
						continue
					}
					if err != nil {
						t.Fatalf("%s WCC: %v", name, err)
					}
					got[name] = res
				}
				forEachPair(got, func(a, b string, ra, rb *engines.WCCResult) {
					for v := range ra.Component {
						if ra.Component[v] != rb.Component[v] {
							t.Errorf("WCC: %s and %s disagree at %d", a, b, v)
							return
						}
					}
				})
			}
		})
	}
}

// forEachPair invokes f once per unordered engine pair, in the
// registry's presentation order for reproducible failure messages.
func forEachPair[R any](got map[string]R, f func(a, b string, ra, rb R)) {
	for i, a := range Names {
		ra, ok := got[a]
		if !ok {
			continue
		}
		for _, b := range Names[i+1:] {
			rb, ok := got[b]
			if !ok {
				continue
			}
			f(a, b, ra, rb)
		}
	}
}

// loadAllWith is loadAll with a machine configurator applied before
// Load (scheduling overrides, worker counts).
func loadAllWith(t *testing.T, el *graph.EdgeList, configure func(*simmachine.Machine), syncSSSP bool) map[string]engines.Instance {
	t.Helper()
	out := make(map[string]engines.Instance)
	reg := Registry()
	for _, name := range Names {
		eng, err := reg.New(name)
		if err != nil {
			t.Fatalf("new %s: %v", name, err)
		}
		if syncSSSP {
			if s, ok := eng.(engines.SyncSSSPSetter); ok {
				s.SetSyncSSSP(true)
			}
		}
		m := newMachine()
		if configure != nil {
			configure(m)
		}
		inst, err := eng.Load(el, m)
		if err != nil {
			t.Fatalf("%s load: %v", name, err)
		}
		inst.BuildStructure()
		out[name] = inst
	}
	return out
}

// conformAllKernels validates every engine's every supported kernel
// against the serial references on one graph.
func conformAllKernels(t *testing.T, el *graph.EdgeList, insts map[string]engines.Instance, nroots int, skipLCC bool) {
	t.Helper()
	p := verify.Prepare(el)
	rs := roots(p, nroots)
	if len(rs) == 0 {
		t.Fatal("no usable roots")
	}
	for _, root := range rs {
		ref := verify.BFS(p, root)
		for name, inst := range insts {
			got, err := inst.BFS(root)
			if errors.Is(err, engines.ErrUnsupported) {
				continue
			}
			if err != nil {
				t.Fatalf("%s BFS: %v", name, err)
			}
			if err := verify.ValidateBFS(p, got, ref); err != nil {
				t.Errorf("%s BFS root %d: %v", name, root, err)
			}
		}
	}
	if el.Weighted {
		for _, root := range rs[:1] {
			ref := verify.SSSP(p, root)
			for name, inst := range insts {
				got, err := inst.SSSP(root)
				if errors.Is(err, engines.ErrUnsupported) {
					continue
				}
				if err != nil {
					t.Fatalf("%s SSSP: %v", name, err)
				}
				if err := verify.ValidateSSSP(p, got, ref); err != nil {
					t.Errorf("%s SSSP root %d: %v", name, root, err)
				}
			}
		}
	}
	{
		refPR := verify.PageRank(p, engines.PROpts{})
		tolerances := map[string]float64{
			GAP: 1e-6, PowerGraph: 1e-6, GraphBIG: 5e-3, GraphMat: 5e-3,
		}
		for name, inst := range insts {
			got, err := inst.PageRank(engines.PROpts{})
			if errors.Is(err, engines.ErrUnsupported) {
				continue
			}
			if err != nil {
				t.Fatalf("%s PR: %v", name, err)
			}
			if err := verify.ValidatePageRank(got, refPR, tolerances[name]); err != nil {
				t.Errorf("%s PR: %v", name, err)
			}
		}
	}
	{
		refCDLP := verify.CDLP(p, engines.DefaultCDLPIterations)
		for name, inst := range insts {
			got, err := inst.CDLP(engines.DefaultCDLPIterations)
			if errors.Is(err, engines.ErrUnsupported) {
				continue
			}
			if err != nil {
				t.Fatalf("%s CDLP: %v", name, err)
			}
			if err := verify.ValidateCDLP(got, refCDLP); err != nil {
				t.Errorf("%s CDLP: %v", name, err)
			}
		}
	}
	if !skipLCC {
		refLCC := verify.LCC(p)
		for name, inst := range insts {
			got, err := inst.LCC()
			if errors.Is(err, engines.ErrUnsupported) {
				continue
			}
			if err != nil {
				t.Fatalf("%s LCC: %v", name, err)
			}
			if err := verify.ValidateLCC(got, refLCC); err != nil {
				t.Errorf("%s LCC: %v", name, err)
			}
		}
	}
	{
		refWCC := verify.WCC(p)
		for name, inst := range insts {
			got, err := inst.WCC()
			if errors.Is(err, engines.ErrUnsupported) {
				continue
			}
			if err != nil {
				t.Fatalf("%s WCC: %v", name, err)
			}
			if err := verify.ValidateWCC(got, refWCC); err != nil {
				t.Errorf("%s WCC: %v", name, err)
			}
		}
	}
}

// TestStealPolicyConformance runs every engine's every kernel under
// the work-stealing scheduler override (and the synchronous SSSP
// modes) and validates against the serial references: the new policy
// must not change what any kernel computes.
func TestStealPolicyConformance(t *testing.T) {
	el := kronecker.Generate(kronecker.Params{Scale: 10, Seed: 42})
	insts := loadAllWith(t, el, func(m *simmachine.Machine) {
		m.SetSchedOverride(simmachine.Steal)
		m.SetWorkers(4)
	}, true)
	conformAllKernels(t, el, insts, 2, false)
}

// TestBigConformance is the ROADMAP's scaled-up conformance wall: the
// full kernel sweep on kron-18 (≈260k vertices, ≈4M directed edges),
// too slow for every `go test` run, gated behind EPG_BIG_CONFORMANCE=1
// (`make big-conformance`). LCC is skipped: the serial reference is
// quadratic in hub degree, which is intractable at Kronecker scale 18.
func TestBigConformance(t *testing.T) {
	if os.Getenv("EPG_BIG_CONFORMANCE") == "" {
		t.Skip("set EPG_BIG_CONFORMANCE=1 to run the kron-18 conformance sweep")
	}
	el := kronecker.Generate(kronecker.Params{Scale: 18, Seed: 1})
	for _, cfg := range []struct {
		name  string
		sched simmachine.Sched
	}{
		{"dynamic", simmachine.Dynamic},
		{"steal", simmachine.Steal},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			insts := loadAllWith(t, el, func(m *simmachine.Machine) {
				m.SetSchedOverride(cfg.sched)
				m.SetWorkers(4)
			}, true)
			conformAllKernels(t, el, insts, 1, true)
		})
	}
}

// Model-time sanity: on the same graph at 32 virtual threads, GAP's
// BFS must beat GraphBIG's and GraphMat's by a widening margin (the
// paper's Table III shows ~85x at scale 22; the gap grows with scale,
// so the bound here is scaled to the small test graph).
func TestBFSRelativeSpeedShape(t *testing.T) {
	el := kronecker.Generate(kronecker.Params{Scale: 14, Seed: 11})
	p := verify.Prepare(el)
	root := roots(p, 1)[0]
	times := map[string]float64{}
	reg := Registry()
	for _, name := range []string{GAP, Graph500, GraphBIG, GraphMat} {
		eng, _ := reg.New(name)
		m := simmachine.New(simmachine.Haswell72(), 32)
		inst, err := eng.Load(el, m)
		if err != nil {
			t.Fatal(err)
		}
		inst.BuildStructure()
		start := m.Elapsed()
		if _, err := inst.BFS(root); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		times[name] = m.Elapsed() - start
	}
	if times[GAP] <= 0 {
		t.Fatal("no modeled time accrued")
	}
	for _, slow := range []string{GraphBIG, GraphMat} {
		if ratio := times[slow] / times[GAP]; ratio < 3 {
			t.Errorf("%s/GAP BFS ratio = %.1f, want >= 3 at scale 14", slow, ratio)
		}
	}
	// Graph500 sits between GAP and the frameworks.
	if ratio := times[Graph500] / times[GAP]; ratio > 10 || ratio < 0.5 {
		t.Errorf("Graph500/GAP ratio = %.2f, want in [0.5, 10]", ratio)
	}
	fmt.Printf("BFS modeled times at 32 threads (scale 14): GAP=%.4gs G500=%.4gs GraphBIG=%.4gs GraphMat=%.4gs\n",
		times[GAP], times[Graph500], times[GraphBIG], times[GraphMat])
}
