package engines_test

import (
	"errors"
	"testing"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
)

// fakeKnobs records setter invocations; which interfaces it exposes is
// controlled by embedding it in the narrower fakes below.
type fakeKnobs struct {
	syncCalls     []bool
	compressCalls []bool
	cancelCalls   []func() error
}

func (f *fakeKnobs) SetSyncSSSP(on bool)          { f.syncCalls = append(f.syncCalls, on) }
func (f *fakeKnobs) SetCompress(on bool)          { f.compressCalls = append(f.compressCalls, on) }
func (f *fakeKnobs) SetCancel(check func() error) { f.cancelCalls = append(f.cancelCalls, check) }

type fakeSupporter struct{ supports bool }

func (f fakeSupporter) SupportsMutations() bool { return f.supports }

type fakeStreamer struct{}

func (fakeStreamer) Mutate(graph.Batch) (*engines.MutationReport, error) { return nil, nil }
func (fakeStreamer) IncrementalPageRank(engines.PROpts) (*engines.PRResult, error) {
	return nil, nil
}
func (fakeStreamer) IncrementalWCC() (*engines.WCCResult, error) { return nil, nil }

func TestConfigureZeroOptionsTouchesNothing(t *testing.T) {
	f := &fakeKnobs{}
	ap := engines.Configure(f, engines.Options{})
	if ap != (engines.Applied{}) {
		t.Fatalf("zero options reported %+v", ap)
	}
	if len(f.syncCalls)+len(f.compressCalls)+len(f.cancelCalls) != 0 {
		t.Fatal("zero options invoked a setter")
	}
}

func TestConfigureSettersAppliedWhenSupported(t *testing.T) {
	f := &fakeKnobs{}
	ap := engines.Configure(f, engines.Options{SyncSSSP: true, Compress: true})
	if !ap.SyncSSSP || !ap.Compress {
		t.Fatalf("supported knobs not reported applied: %+v", ap)
	}
	if len(f.syncCalls) != 1 || !f.syncCalls[0] {
		t.Fatalf("SetSyncSSSP calls = %v", f.syncCalls)
	}
	if len(f.compressCalls) != 1 || !f.compressCalls[0] {
		t.Fatalf("SetCompress calls = %v", f.compressCalls)
	}
	if ap.Cancel || ap.Mutations {
		t.Fatalf("unrequested knobs reported applied: %+v", ap)
	}
}

func TestConfigureUnsupportedTargetReportsDropped(t *testing.T) {
	ap := engines.Configure(struct{}{}, engines.Options{
		SyncSSSP: true, Compress: true, Cancel: func() error { return nil }, Mutations: true,
	})
	if ap != (engines.Applied{}) {
		t.Fatalf("bare struct reported support: %+v", ap)
	}
}

func TestConfigureCancelInstallAndClear(t *testing.T) {
	f := &fakeKnobs{}
	sentinel := errors.New("stop")
	check := func() error { return sentinel }

	ap := engines.Configure(f, engines.Options{Cancel: check})
	if !ap.Cancel {
		t.Fatal("cancel install not reported")
	}
	if len(f.cancelCalls) != 1 || f.cancelCalls[0] == nil || !errors.Is(f.cancelCalls[0](), sentinel) {
		t.Fatalf("installed hook wrong: %v", f.cancelCalls)
	}

	// ClearCancel wins even when a hook is also supplied.
	ap = engines.Configure(f, engines.Options{Cancel: check, ClearCancel: true})
	if !ap.Cancel {
		t.Fatal("cancel clear not reported")
	}
	if len(f.cancelCalls) != 2 || f.cancelCalls[1] != nil {
		t.Fatalf("clear did not install nil: %v", f.cancelCalls)
	}
}

func TestConfigureMutationsProbe(t *testing.T) {
	cases := []struct {
		name   string
		target any
		want   bool
	}{
		{"streamer instance", fakeStreamer{}, true},
		{"supporting engine", fakeSupporter{supports: true}, true},
		{"non-supporting engine", fakeSupporter{supports: false}, false},
		{"plain target", struct{}{}, false},
	}
	for _, c := range cases {
		ap := engines.Configure(c.target, engines.Options{Mutations: true})
		if ap.Mutations != c.want {
			t.Errorf("%s: Mutations = %v, want %v", c.name, ap.Mutations, c.want)
		}
	}
}

func TestConfigureProbeHasNoSideEffects(t *testing.T) {
	f := &fakeKnobs{}
	engines.Configure(f, engines.Options{Mutations: true})
	if len(f.syncCalls)+len(f.compressCalls)+len(f.cancelCalls) != 0 {
		t.Fatal("mutation probe invoked a setter")
	}
}
