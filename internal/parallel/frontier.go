package parallel

import (
	"cmp"
	"slices"
	"sync/atomic"
)

// Queue is an atomic frontier queue: a bounded bag that many workers
// push into concurrently with one fetch-and-add per batch, replacing
// the mutex-guarded append the engines used before. Membership is
// schedule-independent whenever the *set* of pushed items is (e.g.
// first-claim BFS discovery); the order of items is not — callers that
// need a canonical order sort the slice (SortedQueueSlice) before
// using it to derive chunk boundaries or outputs.
type Queue[T any] struct {
	buf []T
	n   atomic.Int64
}

// NewQueue returns a queue that can hold up to capacity items between
// resets. Pushing beyond capacity panics (frontiers are bounded by the
// vertex count, which callers know).
func NewQueue[T any](capacity int) *Queue[T] {
	return &Queue[T]{buf: make([]T, capacity)}
}

// Push appends one item.
func (q *Queue[T]) Push(v T) {
	i := q.n.Add(1) - 1
	q.buf[i] = v
}

// PushBatch appends items with a single reservation — the fast path
// for per-chunk local buffers.
func (q *Queue[T]) PushBatch(items []T) {
	if len(items) == 0 {
		return
	}
	end := q.n.Add(int64(len(items)))
	copy(q.buf[end-int64(len(items)):end], items)
}

// Len returns the current item count. Call only between regions.
func (q *Queue[T]) Len() int { return int(q.n.Load()) }

// Slice returns the pushed items in arrival order (racy order; see
// type comment). The slice aliases the queue's buffer and is
// invalidated by Reset.
func (q *Queue[T]) Slice() []T { return q.buf[:q.n.Load()] }

// Reset empties the queue, retaining capacity.
func (q *Queue[T]) Reset() { q.n.Store(0) }

// SortedQueueSlice sorts the queue's contents in place and returns
// them: the canonical, schedule-independent form of a frontier whose
// membership is deterministic.
func SortedQueueSlice[T cmp.Ordered](q *Queue[T]) []T {
	s := q.Slice()
	slices.Sort(s)
	return s
}
