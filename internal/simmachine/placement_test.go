package simmachine

import "testing"

// placementSeq charges a fixed two-region sequence — a seeding sweep
// whose chunk partition matches the page size, then a misaligned
// re-read at half the grain — and returns the modeled elapsed plus the
// total charged cost. The second region's chunks straddle pages first
// touched by other lanes, so with more than one socket the first-touch
// model has remote reads to charge under ANY policy, steals or not.
func placementSeq(sched Sched, threads, sockets, workers int, place bool, penalty float64) (float64, Cost) {
	m := New(testModel(), threads)
	m.SetWorkers(workers)
	if sockets > 0 {
		m.SetSockets(sockets)
	}
	m.SetPlacement(place)
	if penalty > 0 {
		m.SetRemotePenalty(penalty)
	}
	per := Cost{Cycles: 3, Bytes: 24}
	m.ChargeUniform(8*PlacementPageItems, PlacementPageItems, sched, per)
	m.ChargeUniform(8*PlacementPageItems, PlacementPageItems/2, sched, per)
	var total Cost
	for _, r := range m.Trace() {
		total.Add(r.Cost)
	}
	return m.Elapsed(), total
}

// TestPlacementConservedAcrossPolicies: with the remote multiplier
// forced to 1, the placement model must be charge-neutral — total
// charged bytes identical across all four policies (and equal to the
// placement-off totals), because the surcharge is
// bytes × remoteShare × (factor − 1). This pins that the model only
// ever ADDS the remote surcharge: base chunk bytes are conserved, no
// double-charging, no lost pages.
func TestPlacementConservedAcrossPolicies(t *testing.T) {
	_, off := placementSeq(Static, 8, 4, 1, false, 1)
	for _, sched := range []Sched{Static, Dynamic, Steal, NUMA} {
		_, got := placementSeq(sched, 8, 4, 1, true, 1)
		if got.Bytes != off.Bytes {
			t.Errorf("%v: bytes %v != placement-off %v at unit factor", sched, got.Bytes, off.Bytes)
		}
	}
}

// TestPlacementMonotoneInSockets: under the static policy (no steals
// at all — the gap this model closes), the charged bytes of the fixed
// misaligned-read sequence never decrease as the socket count grows:
// more sockets means more page owners a misaligned chunk can collide
// with.
func TestPlacementMonotoneInSockets(t *testing.T) {
	prev := -1.0
	for _, sockets := range []int{1, 2, 4, 8} {
		_, total := placementSeq(Static, 8, sockets, 1, true, 0)
		if prev >= 0 && total.Bytes < prev {
			t.Errorf("sockets=%d: bytes %v below sockets-smaller %v — not monotone", sockets, total.Bytes, prev)
		}
		prev = total.Bytes
	}
	// And the model must actually bite: static at 4 sockets charges
	// strictly more than at 1 (where everything is local).
	_, one := placementSeq(Static, 8, 1, 1, true, 0)
	_, four := placementSeq(Static, 8, 4, 1, true, 0)
	if four.Bytes <= one.Bytes {
		t.Errorf("static remote reads uncharged: 4 sockets %v <= 1 socket %v", four.Bytes, one.Bytes)
	}
}

// TestPlacementInertAtOneSocketAndOff: the model is a strict
// extension — at one socket (or disabled) the trace is byte-identical
// to the historical accounting for every policy.
func TestPlacementInertAtOneSocketAndOff(t *testing.T) {
	for _, sched := range []Sched{Static, Dynamic, Steal, NUMA} {
		offSec, offCost := placementSeq(sched, 8, 1, 1, false, 0)
		onSec, onCost := placementSeq(sched, 8, 1, 1, true, 0)
		if offSec != onSec || offCost != onCost {
			t.Errorf("%v: placement at one socket not inert: %v/%+v vs %v/%+v",
				sched, onSec, onCost, offSec, offCost)
		}
	}
}

// TestPlacementDurationsIndependentOfWorkers: the placement charge is
// a pure function of the modeled schedule, so modeled durations and
// charged costs stay bit-identical at any real worker count.
func TestPlacementDurationsIndependentOfWorkers(t *testing.T) {
	for _, sched := range []Sched{Static, Dynamic, Steal, NUMA} {
		baseSec, baseCost := placementSeq(sched, 8, 4, 1, true, 0)
		for _, workers := range []int{2, 4, 16} {
			for rep := 0; rep < 2; rep++ {
				sec, cost := placementSeq(sched, 8, 4, workers, true, 0)
				if sec != baseSec || cost != baseCost {
					t.Fatalf("%v workers=%d: %v/%+v != %v/%+v", sched, workers, sec, cost, baseSec, baseCost)
				}
			}
		}
	}
}

// TestPlacementFirstTouchSticky: a static region re-run at the SAME
// grain touches every page from the socket that first touched it, so
// repeating it charges nothing extra — first-touch placement rewards
// schedule-stable access, which is exactly why statically-scheduled
// OpenMP codes lay data out with first-touch init loops. Ownership
// also survives Machine.Reset (pages stay placed for the life of the
// allocation).
func TestPlacementFirstTouchSticky(t *testing.T) {
	run := func(place bool) (float64, Cost) {
		m := New(testModel(), 8)
		m.SetSockets(4)
		m.SetPlacement(place)
		per := Cost{Cycles: 3, Bytes: 24}
		m.ChargeUniform(8*PlacementPageItems, PlacementPageItems, Static, per)
		m.Reset()
		m.ChargeUniform(8*PlacementPageItems, PlacementPageItems, Static, per)
		var total Cost
		for _, r := range m.Trace() {
			total.Add(r.Cost)
		}
		return m.Elapsed(), total
	}
	offSec, offCost := run(false)
	onSec, onCost := run(true)
	if offSec != onSec || offCost != onCost {
		t.Errorf("same-partition re-run charged a placement penalty: %v/%+v vs %v/%+v",
			onSec, onCost, offSec, offCost)
	}
}

// TestPlacementStiffPenaltyCharges: the Spec.RemotePenalty override
// reaches the placement surcharge — a stiffer factor charges more
// bytes on the same misaligned static sequence.
func TestPlacementStiffPenaltyCharges(t *testing.T) {
	_, def := placementSeq(Static, 8, 4, 1, true, 0)
	_, stiff := placementSeq(Static, 8, 4, 1, true, 3)
	if stiff.Bytes <= def.Bytes {
		t.Errorf("remote penalty 3 (%v bytes) not above default (%v bytes)", stiff.Bytes, def.Bytes)
	}
}

// TestPlacementNeverDoubleCharges: with the placement model active, a
// chunk's bytes pay the remote multiplier AT MOST once — the steal
// simulation's own migration-bytes penalty is superseded by the page
// map, not stacked on it. Total charged bytes under any policy are
// therefore bounded by serial bytes × factor, even on a sequence
// engineered so every steal crosses sockets AND reads remotely-owned
// pages (which under double-charging would exceed the bound).
func TestPlacementNeverDoubleCharges(t *testing.T) {
	const factor = 3.0
	_, serial := placementSeq(Static, 8, 1, 1, false, 0) // base bytes, no penalties
	for _, sched := range []Sched{Static, Dynamic, Steal, NUMA} {
		_, got := placementSeq(sched, 8, 4, 1, true, factor)
		if got.Bytes > serial.Bytes*factor {
			t.Errorf("%v: charged bytes %v exceed serial %v x factor %v — remote bytes double-charged",
				sched, got.Bytes, serial.Bytes, factor)
		}
	}
}
