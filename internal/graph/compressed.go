package graph

import (
	"fmt"
	"runtime"

	"github.com/hpcl-repro/epg/internal/parallel"
)

// Varint codec. Little-endian base-128 groups, low bits first, high
// bit of each byte marking continuation — the classic LEB128 layout
// (byte-compatible with encoding/binary's Uvarint, which the fuzz wall
// uses as the oracle). Deltas between sorted uint32 neighbors fit in
// at most 5 bytes; the first-neighbor delta is signed (a neighbor may
// precede its source), so it is zigzag-folded before encoding.

// uvarintLen returns the encoded size of x in bytes.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// putUvarint encodes x at dst[0:] and returns the bytes written. The
// caller must have reserved uvarintLen(x) bytes.
func putUvarint(dst []byte, x uint64) int {
	i := 0
	for x >= 0x80 {
		dst[i] = byte(x) | 0x80
		x >>= 7
		i++
	}
	dst[i] = byte(x)
	return i + 1
}

// uvarint decodes a varint at data[0:] and returns the value and the
// bytes consumed. It returns (0, 0) on truncated input and (0, -1) on
// a value that overflows 64 bits — malformed streams never panic or
// read out of range, which the decode-robustness fuzz target relies
// on.
func uvarint(data []byte) (uint64, int) {
	var x uint64
	var s uint
	for i, b := range data {
		if i == 9 && b > 1 {
			return 0, -1 // 10th byte may only carry the top bit
		}
		if b < 0x80 {
			if i > 9 {
				return 0, -1
			}
			return x | uint64(b)<<s, i + 1
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, 0
}

// zigzag folds a signed delta into an unsigned value with small
// magnitudes staying small: 0,-1,1,-2,2 → 0,1,2,3,4.
func zigzag(x int64) uint64 { return uint64(x<<1) ^ uint64(x>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// CompressedCSR is a delta + varint byte-compressed adjacency
// structure (the Ligra+/GBBS encoding): vertex v's neighbor stream
// occupies Data[Offsets[v]:Offsets[v+1]] and holds, for degree d > 0,
//
//	varint(d)
//	varint(zigzag(adj[0] - v))        first neighbor, delta from source
//	varint(adj[i] - adj[i-1]) ...     remaining gaps (sorted ⇒ ≥ 0)
//
// Zero-degree vertices have empty streams. The encoding requires each
// adjacency list sorted ascending (SortAdjacency); duplicate neighbors
// are legal (gap 0). Weights are never compressed — weighted kernels
// read the raw CSR.
type CompressedCSR struct {
	NumVertices int
	Offsets     []int64 // byte offsets into Data, len NumVertices+1
	Data        []byte
}

// TotalBytes returns the size of the encoded adjacency in bytes, the
// numerator of the compression ratio (raw CSR adjacency is 4 bytes per
// directed edge).
func (c *CompressedCSR) TotalBytes() int64 { return int64(len(c.Data)) }

// EncodedBytes returns the byte length of v's neighbor stream.
func (c *CompressedCSR) EncodedBytes(v VID) int64 {
	return c.Offsets[v+1] - c.Offsets[v]
}

// Degree decodes v's degree (the stream's head varint).
func (c *CompressedCSR) Degree(v VID) int64 {
	s := c.Data[c.Offsets[v]:c.Offsets[v+1]]
	if len(s) == 0 {
		return 0
	}
	d, _ := uvarint(s)
	return int64(d)
}

// NeighborDecoder streams one vertex's neighbors out of the
// compressed adjacency without allocating. It is a value type: obtain
// one with Decoder, iterate with Next, and read BytesRead for the
// compressed bytes consumed so far — kernels that break early (bottom-
// up BFS) charge exactly the decoded prefix.
type NeighborDecoder struct {
	data []byte // the vertex's stream
	pos  int    // bytes consumed
	rem  int64  // neighbors remaining
	prev int64  // last decoded neighbor (source-relative before first)
	deg  int64
}

// Decoder positions a decoder at the head of v's stream and consumes
// the degree varint.
func (c *CompressedCSR) Decoder(v VID) NeighborDecoder {
	d := NeighborDecoder{data: c.Data[c.Offsets[v]:c.Offsets[v+1]], prev: int64(v)}
	if len(d.data) == 0 {
		return d
	}
	deg, n := uvarint(d.data)
	d.pos = n
	d.deg = int64(deg)
	d.rem = int64(deg)
	return d
}

// Degree returns the decoded degree of the stream.
func (d *NeighborDecoder) Degree() int64 { return d.deg }

// BytesRead returns the compressed bytes consumed so far, including
// the degree varint.
func (d *NeighborDecoder) BytesRead() int { return d.pos }

// Next returns the next neighbor, or ok=false when the stream is
// exhausted.
func (d *NeighborDecoder) Next() (VID, bool) {
	if d.rem <= 0 {
		return 0, false
	}
	// Inline varint decode: streams are produced by CompressCSR, so
	// they are well-formed and 5 bytes bound every group.
	var x uint64
	var s uint
	i := d.pos
	for {
		b := d.data[i]
		i++
		if b < 0x80 {
			x |= uint64(b) << s
			break
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	first := d.rem == d.deg
	d.pos = i
	d.rem--
	if first {
		d.prev += unzigzag(x)
	} else {
		d.prev += int64(x)
	}
	return VID(d.prev), true
}

// DecodeNeighbors decodes v's full neighbor list into buf (reused when
// capacity suffices) and returns the decoded slice. Pass a scratch
// buffer sized to the maximum degree for allocation-free decoding.
func (c *CompressedCSR) DecodeNeighbors(v VID, buf []VID) []VID {
	out := buf[:0]
	d := c.Decoder(v)
	for u, ok := d.Next(); ok; u, ok = d.Next() {
		out = append(out, u)
	}
	return out
}

// Validate checks the structural invariants of the compressed
// adjacency: monotone offsets covering Data, and every stream
// well-formed (degree varint followed by exactly degree in-range
// deltas, no trailing bytes).
func (c *CompressedCSR) Validate() error {
	if c.NumVertices < 0 {
		return fmt.Errorf("graph: negative vertex count")
	}
	if len(c.Offsets) != c.NumVertices+1 {
		return fmt.Errorf("graph: offsets length %d, want %d", len(c.Offsets), c.NumVertices+1)
	}
	if c.Offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", c.Offsets[0])
	}
	if c.Offsets[c.NumVertices] != int64(len(c.Data)) {
		return fmt.Errorf("graph: offsets end %d, data length %d", c.Offsets[c.NumVertices], len(c.Data))
	}
	n := int64(c.NumVertices)
	for v := 0; v < c.NumVertices; v++ {
		if c.Offsets[v] > c.Offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at %d", v)
		}
		d := c.Decoder(VID(v))
		for u, ok := d.Next(); ok; u, ok = d.Next() {
			if int64(u) >= n {
				return fmt.Errorf("graph: vertex %d decodes neighbor %d out of range", v, u)
			}
		}
		if int64(d.BytesRead()) != c.EncodedBytes(VID(v)) {
			return fmt.Errorf("graph: vertex %d stream has %d trailing bytes",
				v, c.EncodedBytes(VID(v))-int64(d.BytesRead()))
		}
	}
	return nil
}

// compressSerialCutoff mirrors buildSerialCutoff: below this many
// adjacency entries the two passes run on one worker.
const compressSerialCutoff = 1 << 12

// CompressCSR encodes a sorted CSR's adjacency into a CompressedCSR
// using the builder's atomic-free two-pass discipline: pass one
// computes every vertex's encoded byte size in parallel (sizes land in
// the offsets array, one writer per vertex — no shared state), the
// sizes become byte offsets through a parallel exclusive prefix sum
// (parallel.ScanInt64), and pass two encodes each vertex into its
// reserved range of one shared byte buffer. No per-edge atomics, and
// the output layout is a pure function of the input CSR — identical
// at any worker count.
//
// The adjacency must be sorted ascending per vertex (BuildOptions.Sort
// or SortAdjacency); CompressCSR panics on an unsorted list rather
// than silently emitting a stream whose unsigned gaps cannot represent
// the inversion.
func CompressCSR(c *CSR, workers int) *CompressedCSR {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if len(c.Adj) < compressSerialCutoff {
		workers = 1
	}
	n := c.NumVertices
	pool := parallel.Default()

	// Pass 1: per-vertex encoded sizes. Each vertex's size depends only
	// on its own adjacency row, so chunked vertex ranges are writer-
	// disjoint by construction.
	offsets := make([]int64, n+1)
	parallel.For(pool, workers, n, 2048, parallel.Static, func(lo, hi, chunk, worker int) {
		for v := lo; v < hi; v++ {
			adj := c.Adj[c.Offsets[v]:c.Offsets[v+1]]
			if len(adj) == 0 {
				continue
			}
			size := uvarintLen(uint64(len(adj))) +
				uvarintLen(zigzag(int64(adj[0])-int64(v)))
			for i := 1; i < len(adj); i++ {
				if adj[i] < adj[i-1] {
					panic(fmt.Sprintf("graph: CompressCSR requires sorted adjacency (vertex %d has %d after %d)",
						v, adj[i], adj[i-1]))
				}
				size += uvarintLen(uint64(adj[i] - adj[i-1]))
			}
			offsets[v] = int64(size)
		}
	})
	total := parallel.ScanInt64(pool, workers, offsets)

	cc := &CompressedCSR{
		NumVertices: n,
		Offsets:     offsets,
		Data:        make([]byte, total),
	}

	// Pass 2: range-reserved encode. Vertex v owns exactly
	// Data[offsets[v]:offsets[v+1]]; no other worker can touch it.
	parallel.For(pool, workers, n, 2048, parallel.Static, func(lo, hi, chunk, worker int) {
		for v := lo; v < hi; v++ {
			adj := c.Adj[c.Offsets[v]:c.Offsets[v+1]]
			if len(adj) == 0 {
				continue
			}
			dst := cc.Data[offsets[v]:offsets[v+1]]
			p := putUvarint(dst, uint64(len(adj)))
			p += putUvarint(dst[p:], zigzag(int64(adj[0])-int64(v)))
			for i := 1; i < len(adj); i++ {
				p += putUvarint(dst[p:], uint64(adj[i]-adj[i-1]))
			}
		}
	})
	return cc
}
