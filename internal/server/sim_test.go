package server

import (
	"testing"

	"github.com/hpcl-repro/epg/internal/harness"
)

func testBench(t *testing.T) *Bench {
	t.Helper()
	el, err := harness.ResolveDataset("kron-9", harness.DatasetOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBench(el, 8, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func simConfig(offeredX float64, capacity float64) SimConfig {
	return SimConfig{
		Servers: 2,
		Admit: AdmitConfig{
			QueueCap:         8,
			DegradeWatermark: 4,
			QPS:              3 * capacity,
			Burst:            8,
		},
		DeadlineSec: 3 / capacity, // a few mean service times
		OfferedQPS:  offeredX * capacity,
		NumQueries:  300,
		Seed:        11,
	}
}

func TestSimulateDeterministic(t *testing.T) {
	b := testBench(t)
	capacity := CalibrateCapacity(b, 2, 16, 11)
	if capacity <= 0 {
		t.Fatalf("capacity %v", capacity)
	}
	cfg := simConfig(2, capacity)
	st1, err := Simulate(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := Simulate(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 {
		t.Fatalf("same seed diverged:\n  %+v\n  %+v", st1, st2)
	}
	// A different seed must actually change the run (the stream is
	// seed-driven, not degenerate).
	cfg.Seed = 12
	st3, err := Simulate(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st1 == st3 {
		t.Fatal("different seed produced identical stats")
	}
}

// TestSimulateOverloadBehavior is the overload-provability check: the
// exact conservation identity, the queue bound, and each degradation
// mechanism firing where the load axis says it must.
func TestSimulateOverloadBehavior(t *testing.T) {
	b := testBench(t)
	capacity := CalibrateCapacity(b, 2, 16, 11)

	under, err := Simulate(b, simConfig(0.5, capacity))
	if err != nil {
		t.Fatal(err)
	}
	if under.ShedQueueFull != 0 {
		t.Errorf("under capacity shed %d queue-full queries", under.ShedQueueFull)
	}
	if under.Admitted != under.Offered {
		t.Errorf("under capacity admitted %d of %d", under.Admitted, under.Offered)
	}

	over, err := Simulate(b, simConfig(5, capacity))
	if err != nil {
		t.Fatal(err)
	}
	// Conservation is asserted inside Simulate; re-assert visibly.
	if err := over.Conservation(); err != nil {
		t.Fatal(err)
	}
	if over.ShedQueueFull == 0 {
		t.Error("5x overload shed nothing on queue-full")
	}
	if over.Degraded == 0 {
		t.Error("5x overload degraded nothing despite watermark")
	}
	if over.MaxDepth > 8 {
		t.Errorf("queue depth %d exceeded cap 8", over.MaxDepth)
	}
	if over.MaxDepth < 8 {
		t.Errorf("5x overload never filled the queue (max depth %d)", over.MaxDepth)
	}
}

// TestSimulateBucketProtectsQueue makes the token bucket the binding
// constraint: rate at half capacity with a roomy queue. Arrivals above
// the bucket rate are throttled, so the queue never fills — the
// complementary regime to queue-full shedding.
func TestSimulateBucketProtectsQueue(t *testing.T) {
	b := testBench(t)
	capacity := CalibrateCapacity(b, 2, 16, 11)
	st, err := Simulate(b, SimConfig{
		Servers: 2,
		Admit: AdmitConfig{
			QueueCap: 64,
			QPS:      0.5 * capacity,
			Burst:    4,
		},
		DeadlineSec: 3 / capacity,
		OfferedQPS:  2 * capacity,
		NumQueries:  300,
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.ShedThrottled == 0 {
		t.Error("offered 2x capacity against a 0.5x bucket never throttled")
	}
	if st.ShedQueueFull != 0 {
		t.Errorf("bucket at half capacity still queue-full shed %d", st.ShedQueueFull)
	}
	if st.MaxDepth > 4 {
		t.Errorf("throttled-to-half-capacity queue reached depth %d", st.MaxDepth)
	}
}

func TestSimulateRejectsBadConfig(t *testing.T) {
	b := testBench(t)
	if _, err := Simulate(b, SimConfig{Servers: 1, Admit: AdmitConfig{QueueCap: 0},
		OfferedQPS: 1, NumQueries: 1}); err == nil {
		t.Error("queue cap 0 accepted")
	}
	if _, err := Simulate(b, SimConfig{Servers: 1, Admit: AdmitConfig{QueueCap: 1},
		OfferedQPS: 0, NumQueries: 1}); err == nil {
		t.Error("zero offered qps accepted")
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(vals, 50); p != 5 {
		t.Errorf("p50 = %v, want 5", p)
	}
	if p := percentile(vals, 99); p != 10 {
		t.Errorf("p99 = %v, want 10", p)
	}
	if p := percentile(nil, 50); p != 0 {
		t.Errorf("empty percentile = %v, want 0", p)
	}
	if p := percentile([]float64{42}, 99); p != 42 {
		t.Errorf("singleton p99 = %v, want 42", p)
	}
}

// TestDeadlineTruncatesService proves the budget actually cuts
// kernels short: with a tiny budget every traversal is abandoned at
// its first cancellation point, and the modeled time charged is below
// the full run's.
func TestDeadlineTruncatesService(t *testing.T) {
	b := testBench(t)
	q := Query{Op: OpBFS, Source: 0, Target: 1}
	full := b.Run(q, 0, false)
	if full.Status != StatusOK {
		t.Fatalf("full run: %+v", full)
	}
	tiny := b.Run(q, full.ModeledSec/1e3, false)
	if tiny.Status != StatusDeadline {
		t.Fatalf("tiny budget status %q, want deadline", tiny.Status)
	}
	if tiny.ModeledSec >= full.ModeledSec {
		t.Fatalf("truncated run (%v) not cheaper than full run (%v)",
			tiny.ModeledSec, full.ModeledSec)
	}
}
