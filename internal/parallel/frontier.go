package parallel

import (
	"cmp"
	"fmt"
	"slices"
	"sync/atomic"
)

// This file holds the frontier representations the engines choose
// between. Three are provided, in increasing order of structure:
//
//   - Queue: a single atomic bag. Membership is schedule-independent
//     whenever the pushed set is; order is racy. The representation of
//     choice for chaotic kernels that only need a bag (GraphBIG's
//     asynchronous relaxation).
//   - ChunkQueue: per-chunk local buffers concatenated in chunk order.
//     Membership AND order are schedule-independent whenever the
//     per-chunk item sequences are, so deterministic kernels get a
//     canonical frontier without sorting.
//   - Bitmap (bitmap.go): dense membership with atomic set/test and a
//     parallel ToSlice. The representation for bottom-up traversal and
//     dense active sets.

// Queue is an atomic frontier queue: a bounded bag that many workers
// push into concurrently with one fetch-and-add per batch, replacing
// the mutex-guarded append the engines used before. Membership is
// schedule-independent whenever the *set* of pushed items is (e.g.
// first-claim BFS discovery); the order of items is not — callers that
// need a canonical order either sort the slice (SortedQueueSlice) or,
// on a hot path, use a ChunkQueue instead.
type Queue[T any] struct {
	buf []T
	n   atomic.Int64
}

// NewQueue returns a queue that can hold up to capacity items between
// resets. Pushing beyond capacity panics (frontiers are bounded by the
// vertex count, which callers know).
func NewQueue[T any](capacity int) *Queue[T] {
	return &Queue[T]{buf: make([]T, capacity)}
}

// Push appends one item. It panics if the queue is full.
func (q *Queue[T]) Push(v T) {
	i := q.n.Add(1) - 1
	if int(i) >= len(q.buf) {
		panic(fmt.Sprintf("parallel: Queue overflow: capacity %d, pushing 1 item at position %d", len(q.buf), i))
	}
	q.buf[i] = v
}

// PushBatch appends items with a single reservation — the fast path
// for per-chunk local buffers. It panics if the batch does not fit.
func (q *Queue[T]) PushBatch(items []T) {
	if len(items) == 0 {
		return
	}
	end := q.n.Add(int64(len(items)))
	if int(end) > len(q.buf) {
		panic(fmt.Sprintf("parallel: Queue overflow: capacity %d, pushing %d items at position %d",
			len(q.buf), len(items), end-int64(len(items))))
	}
	copy(q.buf[end-int64(len(items)):end], items)
}

// Len returns the current item count. Call only between regions: a
// concurrent Push makes the count immediately stale.
func (q *Queue[T]) Len() int { return int(q.n.Load()) }

// Slice returns the pushed items in arrival order (racy order; see
// type comment). The slice aliases the queue's buffer and is
// invalidated by Reset. Call only between regions.
func (q *Queue[T]) Slice() []T { return q.buf[:q.n.Load()] }

// Reset empties the queue, retaining capacity.
func (q *Queue[T]) Reset() { q.n.Store(0) }

// SortedQueueSlice sorts the queue's contents in place and returns
// them: the canonical, schedule-independent form of a frontier whose
// membership is deterministic. No kernel hot path uses this anymore —
// the deterministic frontiers are ChunkQueue and Bitmap, which are
// canonical by construction — but it remains the simplest way to
// canonicalize a Queue in tests and one-off tools.
func SortedQueueSlice[T cmp.Ordered](q *Queue[T]) []T {
	s := q.Slice()
	slices.Sort(s)
	return s
}

// ChunkQueue collects one local buffer per chunk of a parallel region
// and concatenates them in chunk index order. Because chunk indices
// are stable across runs and worker counts (see For), the concatenated
// sequence is schedule-independent whenever each chunk's buffer is —
// no sort needed to canonicalize. This is the sliding-queue idiom of
// the real GAP suite (per-thread buffers flushed into a shared queue),
// made deterministic by fixing the flush order.
//
// Usage per region: Reset(NumChunks(n, grain)), then each chunk body
// builds its own slice and hands it over with Put(chunk, items)
// exactly once. Len, Slice, AppendTo and DrainChunkQueue observe the
// collected items and must only be called between regions (Put and the
// observers must never overlap).
type ChunkQueue[T any] struct {
	bufs [][]T
	out  []T
}

// NewChunkQueue returns an empty chunk queue. Reset sizes it.
func NewChunkQueue[T any]() *ChunkQueue[T] { return &ChunkQueue[T]{} }

// Reset prepares the queue for a region with nchunks chunks,
// discarding previously collected buffers (capacity is retained).
func (q *ChunkQueue[T]) Reset(nchunks int) {
	if cap(q.bufs) < nchunks {
		q.bufs = make([][]T, nchunks)
		return
	}
	q.bufs = q.bufs[:nchunks]
	for i := range q.bufs {
		q.bufs[i] = nil
	}
}

// Put stores chunk c's items. Each chunk must call Put at most once
// per Reset, and the queue takes ownership of items until the next
// Reset. Distinct chunks write distinct slots, so Put needs no
// synchronization.
func (q *ChunkQueue[T]) Put(c int, items []T) { q.bufs[c] = items }

// Len returns the total collected item count. Call only between
// regions (never concurrently with Put).
func (q *ChunkQueue[T]) Len() int {
	n := 0
	for _, b := range q.bufs {
		n += len(b)
	}
	return n
}

// Slice returns all items in chunk order. The slice aliases an
// internal buffer that is reused by the next Slice call — copy it (or
// use AppendTo) if it must outlive this region. Call only between
// regions.
func (q *ChunkQueue[T]) Slice() []T {
	q.out = q.AppendTo(q.out[:0])
	return q.out
}

// AppendTo appends all items in chunk order to dst and returns the
// extended slice. Call only between regions.
func (q *ChunkQueue[T]) AppendTo(dst []T) []T {
	for _, b := range q.bufs {
		dst = append(dst, b...)
	}
	return dst
}

// DrainChunkQueue maps f over the collected items in chunk order,
// appending every kept result to dst. It is the filtered concatenation
// used by the BFS kernels: tentative claims are pushed during the
// region and the losers are dropped here, once the final write-min
// values are known. Call only between regions.
func DrainChunkQueue[T, U any](q *ChunkQueue[T], dst []U, f func(T) (U, bool)) []U {
	for _, b := range q.bufs {
		for _, it := range b {
			if u, ok := f(it); ok {
				dst = append(dst, u)
			}
		}
	}
	return dst
}

// Claim records a tentative BFS discovery: frontier vertex By lowered
// the write-min parent slot of V. Every call that lowers the slot
// pushes a claim (LowerMinInt64), so the chunk holding the final
// minimum always holds a matching claim; draining with the filter
// "parent[V] == By" keeps exactly that one, making both the membership
// and the order of the next frontier schedule-independent.
type Claim struct {
	V, By uint32
}
