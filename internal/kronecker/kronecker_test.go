package kronecker

import (
	"testing"
	"testing/quick"

	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/xrand"
)

func TestSizes(t *testing.T) {
	p := Params{Scale: 10, Seed: 1}
	el := Generate(p)
	if el.NumVertices != 1024 {
		t.Errorf("vertices = %d, want 1024", el.NumVertices)
	}
	if len(el.Edges) != 16*1024 {
		t.Errorf("edges = %d, want %d", len(el.Edges), 16*1024)
	}
	if !el.Weighted {
		t.Error("Kronecker graphs must be weighted")
	}
	if err := el.Validate(); err != nil {
		t.Fatalf("invalid edge list: %v", err)
	}
}

func TestCustomEdgeFactor(t *testing.T) {
	el := Generate(Params{Scale: 8, EdgeFactor: 4, Seed: 1})
	if len(el.Edges) != 4*256 {
		t.Errorf("edges = %d, want %d", len(el.Edges), 4*256)
	}
}

func TestDeterminismAcrossWorkers(t *testing.T) {
	a := Generate(Params{Scale: 10, Seed: 42, Workers: 1})
	b := Generate(Params{Scale: 10, Seed: 42, Workers: 7})
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("edge counts differ")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a.Edges[i], b.Edges[i])
		}
	}
}

func TestSeedsProduceDifferentGraphs(t *testing.T) {
	a := Generate(Params{Scale: 8, Seed: 1})
	b := Generate(Params{Scale: 8, Seed: 2})
	same := 0
	for i := range a.Edges {
		if a.Edges[i].Src == b.Edges[i].Src && a.Edges[i].Dst == b.Edges[i].Dst {
			same++
		}
	}
	if same == len(a.Edges) {
		t.Error("different seeds produced identical graphs")
	}
}

func TestWeightsInRange(t *testing.T) {
	el := Generate(Params{Scale: 9, Seed: 3})
	for i, e := range el.Edges {
		if e.W <= 0 || e.W > 1 {
			t.Fatalf("edge %d weight %v outside (0,1]", i, e.W)
		}
	}
}

// The RMAT skew should concentrate degree mass: with A=0.57 the top 1%
// of vertices by degree should hold well over 5% of all edges
// (in practice ~30%+). This catches accidentally-uniform sampling.
func TestDegreeSkew(t *testing.T) {
	el := Generate(Params{Scale: 12, Seed: 5})
	csr := graph.BuildCSR(el, graph.BuildOptions{Symmetrize: true, DropSelfLoops: true})
	deg := csr.OutDegrees()
	// Partial selection: find the degree sum of the top 1%.
	topK := len(deg) / 100
	// Simple selection via histogram of sorted copy.
	sorted := make([]int64, len(deg))
	copy(sorted, deg)
	// insertion into max-heap is overkill; sort is fine at this size
	sortInt64s(sorted)
	var top, total int64
	for _, d := range sorted {
		total += d
	}
	for i := len(sorted) - topK; i < len(sorted); i++ {
		top += sorted[i]
	}
	if frac := float64(top) / float64(total); frac < 0.05 {
		t.Errorf("top 1%% of vertices hold only %.1f%% of edges; degree distribution not skewed", frac*100)
	}
}

func sortInt64s(x []int64) {
	// small local quicksort to avoid importing sort for int64
	var qs func(lo, hi int)
	qs = func(lo, hi int) {
		if lo >= hi {
			return
		}
		p := x[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for x[i] < p {
				i++
			}
			for x[j] > p {
				j--
			}
			if i <= j {
				x[i], x[j] = x[j], x[i]
				i++
				j--
			}
		}
		qs(lo, j)
		qs(i, hi)
	}
	qs(0, len(x)-1)
}

// Property: all generated endpoints are in range for random seeds.
func TestEndpointsInRangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		el := Generate(Params{Scale: 6, Seed: seed})
		n := graph.VID(el.NumVertices)
		for _, e := range el.Edges {
			if e.Src >= n || e.Dst >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the vertex permutation is a bijection.
func TestPermutationBijective(t *testing.T) {
	f := func(seed uint64) bool {
		perm := vertexPermutation(256, seed)
		seen := make([]bool, 256)
		for _, v := range perm {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSampleEdgeBits(t *testing.T) {
	// At scale 1 only vertices 0 and 1 exist.
	r := xrand.New(9)
	for i := 0; i < 100; i++ {
		s, d := sampleEdge(1, r)
		if s > 1 || d > 1 {
			t.Fatalf("scale-1 sample out of range: %d, %d", s, d)
		}
	}
}

func TestScalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for scale 0")
		}
	}()
	Generate(Params{Scale: 0})
}

func BenchmarkGenerateScale16(b *testing.B) {
	p := Params{Scale: 16, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate(p)
	}
}
