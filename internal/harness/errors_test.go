package harness

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"github.com/hpcl-repro/epg/internal/core"
	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// failingEngine is a registry stub whose Load always fails, standing in
// for a real engine hitting an ingest error (bad mmap, exhausted
// memory) so the harness's wrapping of Load errors is testable without
// constructing a graph bad enough to break a real engine.
type failingEngine struct{}

func (failingEngine) Name() string                   { return "Failing" }
func (failingEngine) Has(alg engines.Algorithm) bool { return true }
func (failingEngine) SeparateConstruction() bool     { return false }
func (failingEngine) Load(el *graph.EdgeList, m *simmachine.Machine) (engines.Instance, error) {
	return nil, fmt.Errorf("failing: ingest exploded")
}

// TestRunErrorPaths drives Runner.Run down each of its error returns
// and asserts the failure surfaces as a wrapped, descriptive error —
// not a zero-result success and not a panic.
func TestRunErrorPaths(t *testing.T) {
	goodEL, err := ResolveDataset("kron-9", DatasetOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// No vertex exceeds degree 1 after homogenization: a single
	// undirected edge. SelectRoots requires degree > 1, so root
	// selection must fail loudly rather than running zero trials.
	rootlessEL := &graph.EdgeList{
		NumVertices: 2,
		Edges:       []graph.Edge{{Src: 0, Dst: 1}},
	}
	failReg := engines.NewRegistry()
	failReg.Register("Failing", func() engines.Engine { return failingEngine{} })

	cases := []struct {
		name    string
		runner  *Runner
		spec    core.Spec
		el      *graph.EdgeList
		wantSub string
	}{
		{
			name:    "invalid freq state",
			runner:  testRunner(),
			spec:    func() core.Spec { s := testSpec(engines.BFS, 1); s.FreqState = "warp9"; return s }(),
			el:      goodEL,
			wantSub: "unknown frequency state",
		},
		{
			name:   "explicit engine lacks algorithm",
			runner: testRunner(),
			spec: func() core.Spec {
				s := testSpec(engines.BFS, 1)
				s.Engines = []string{"PowerGraph"} // famously lacks BFS
				return s
			}(),
			el:      goodEL,
			wantSub: "does not implement BFS",
		},
		{
			name:    "unknown engine name",
			runner:  testRunner(),
			spec:    func() core.Spec { s := testSpec(engines.BFS, 1); s.Engines = []string{"Pregel"}; return s }(),
			el:      goodEL,
			wantSub: "unknown engine",
		},
		{
			name:    "graph with no eligible roots",
			runner:  testRunner(),
			spec:    testSpec(engines.BFS, 1),
			el:      rootlessEL,
			wantSub: "no roots with degree > 1",
		},
		{
			name:    "engine load failure is wrapped",
			runner:  NewRunner(failReg),
			spec:    testSpec(engines.BFS, 1),
			el:      goodEL,
			wantSub: "harness: Failing: failing: ingest exploded",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			results, err := tc.runner.Run(tc.spec, tc.el)
			if err == nil {
				t.Fatalf("Run succeeded with %d results, want error containing %q",
					len(results), tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

// TestKnobDropWarnings asserts the harness announces — rather than
// silently ignores — spec knobs an engine has no setter for, and stays
// quiet for engines that honor them.
func TestKnobDropWarnings(t *testing.T) {
	el, err := ResolveDataset("kron-9", DatasetOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}

	run := func(engine string, compress, syncSSSP bool) string {
		t.Helper()
		r := testRunner()
		var warns bytes.Buffer
		r.Warnings = &warns
		spec := testSpec(engines.BFS, 1)
		spec.Engines = []string{engine}
		spec.Compress = compress
		spec.SyncSSSP = syncSSSP
		if _, err := r.Run(spec, el); err != nil {
			t.Fatalf("%s run failed: %v", engine, err)
		}
		return warns.String()
	}

	// GraphMat has no compressed-adjacency path: Compress must warn.
	got := run("GraphMat", true, false)
	if !strings.Contains(got, "event=knob-drop") ||
		!strings.Contains(got, "engine=GraphMat") ||
		!strings.Contains(got, "knob=compress") {
		t.Errorf("GraphMat+Compress warning missing or malformed: %q", got)
	}

	// GAP implements both setters: no warning for either knob.
	if got := run("GAP", true, true); got != "" {
		t.Errorf("GAP honored knobs but warned: %q", got)
	}

	// GraphMat also lacks a synchronous SSSP switch; assert the knob
	// name distinguishes which request was dropped.
	if got := run("GraphMat", false, true); !strings.Contains(got, "knob=sync-sssp") {
		t.Errorf("GraphMat+SyncSSSP warning missing: %q", got)
	}

	// A nil Warnings writer must stay the default and not crash.
	r := testRunner()
	spec := testSpec(engines.BFS, 1)
	spec.Engines = []string{"GraphMat"}
	spec.Compress = true
	if _, err := r.Run(spec, el); err != nil {
		t.Fatalf("nil-Warnings run failed: %v", err)
	}
}
