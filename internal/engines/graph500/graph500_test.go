package graph500

import (
	"errors"
	"testing"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/kronecker"
	"github.com/hpcl-repro/epg/internal/simmachine"
	"github.com/hpcl-repro/epg/internal/verify"
)

func machine(threads int) *simmachine.Machine {
	return simmachine.New(simmachine.Haswell72(), threads)
}

func TestMetadata(t *testing.T) {
	e := New()
	if e.Name() != "Graph500" {
		t.Errorf("name = %q", e.Name())
	}
	if !e.SeparateConstruction() {
		t.Error("Kernel 1 must be a separate phase")
	}
	if !e.Has(engines.BFS) {
		t.Error("must have BFS")
	}
	for _, alg := range []engines.Algorithm{engines.SSSP, engines.PageRank, engines.CDLP, engines.LCC, engines.WCC} {
		if e.Has(alg) {
			t.Errorf("Graph500 should not provide %s", alg)
		}
	}
}

func TestOnlyBFSRuns(t *testing.T) {
	el := kronecker.Generate(kronecker.Params{Scale: 8, Seed: 1})
	inst, err := New().Load(el, machine(2))
	if err != nil {
		t.Fatal(err)
	}
	inst.BuildStructure()
	if _, err := inst.SSSP(0); !errors.Is(err, engines.ErrUnsupported) {
		t.Error("SSSP should be unsupported")
	}
	if _, err := inst.PageRank(engines.PROpts{}); !errors.Is(err, engines.ErrUnsupported) {
		t.Error("PageRank should be unsupported")
	}
	if _, err := inst.CDLP(1); !errors.Is(err, engines.ErrUnsupported) {
		t.Error("CDLP should be unsupported")
	}
	if _, err := inst.LCC(); !errors.Is(err, engines.ErrUnsupported) {
		t.Error("LCC should be unsupported")
	}
	if _, err := inst.WCC(); !errors.Is(err, engines.ErrUnsupported) {
		t.Error("WCC should be unsupported")
	}
}

func TestBFSValidAcrossRoots(t *testing.T) {
	// The Graph500 protocol: one construction, many roots
	// back-to-back. Validate each against the reference.
	el := kronecker.Generate(kronecker.Params{Scale: 10, Seed: 6})
	p := verify.Prepare(el)
	inst, err := New().Load(el, machine(4))
	if err != nil {
		t.Fatal(err)
	}
	inst.BuildStructure()
	count := 0
	for v := 0; v < p.Out.NumVertices && count < 8; v++ {
		if p.Out.Degree(graph.VID(v)) <= 1 {
			continue
		}
		count++
		root := graph.VID(v)
		got, err := inst.BFS(root)
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.ValidateBFS(p, got, verify.BFS(p, root)); err != nil {
			t.Errorf("root %d: %v", root, err)
		}
		if got.EdgesExamined == 0 {
			t.Errorf("root %d: no edges examined", root)
		}
	}
	if count == 0 {
		t.Fatal("no usable roots found")
	}
}

func TestBFSWithoutExplicitBuild(t *testing.T) {
	el := kronecker.Generate(kronecker.Params{Scale: 8, Seed: 2})
	inst, err := New().Load(el, machine(2))
	if err != nil {
		t.Fatal(err)
	}
	// BFS must lazily construct.
	if _, err := inst.BFS(0); err != nil {
		t.Fatal(err)
	}
}

func TestStaticSchedulingCharged(t *testing.T) {
	// The modeled time at 2 threads should be visibly worse than
	// perfect halving on a skewed graph (static imbalance plus
	// atomics), which is the mechanism behind the paper's Fig. 6
	// efficiency dip for the Graph500.
	el := kronecker.Generate(kronecker.Params{Scale: 12, Seed: 3})
	run := func(threads int) float64 {
		m := machine(threads)
		inst, err := New().Load(el, m)
		if err != nil {
			t.Fatal(err)
		}
		inst.BuildStructure()
		start := m.Elapsed()
		if _, err := inst.BFS(1); err != nil {
			t.Fatal(err)
		}
		return m.Elapsed() - start
	}
	t1, t2 := run(1), run(2)
	eff := t1 / (2 * t2)
	if eff > 1.0 {
		t.Errorf("2-thread efficiency %.2f above ideal", eff)
	}
	if eff < 0.2 {
		t.Errorf("2-thread efficiency %.2f implausibly poor", eff)
	}
}
