// Streaming-study artifact: FIG_stream_study.csv tabulates incremental
// PR/WCC maintenance against full recomputation across the batch
// geometry (batch size x delete fraction), the figure the streaming
// subsystem exists to produce. Each row is one mutation batch applied
// through the GAP engine's Streamer hook: the incremental side pays
// the modeled cost of patching the resident structures plus
// re-converging from the previous vector; the recompute side pays a
// rebuild plus a cold kernel run on the post-batch graph, costed on an
// identically-configured fresh machine. The harness conformance-walls
// the two bit-equal per batch, so the speedup column compares equally
// correct answers. Everything downstream of (dataset, seed, schedule)
// is modeled, wall-clock-free, and worker-count-independent, so the
// CSV is bit-identical across runs and hosts and an exact-match diff
// is a valid CI gate.
//
// `make streamfig` (EPG_WRITE_STREAMFIG=1) rewrites the artifact after
// an intentional change; `make streamfig-check` (EPG_STREAMFIG_CHECK=1,
// the stream-study-drift CI job) regenerates the rows and fails on any
// byte difference — drift in the mutation replay, the incremental
// maintainers, the trajectory memoization, or the cost model all
// surface as a failing diff tied to the commit that caused them.
package epg_test

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"github.com/hpcl-repro/epg/internal/core"
	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/engines/all"
	"github.com/hpcl-repro/epg/internal/harness"
	"github.com/hpcl-repro/epg/internal/report"
)

const streamStudyFile = "FIG_stream_study.csv"

// The pinned study geometry: kron-12 (the CI drift scale the sched
// study also uses), four batches per configuration, batch sizes
// spanning two orders of magnitude, and delete fractions from
// insert-only to half-and-half.
var (
	streamStudyBatchSizes  = []int{16, 64, 256}
	streamStudyDeleteFracs = []float64{0, 0.25, 0.5}
	streamStudyAlgs        = []engines.Algorithm{engines.PageRank, engines.WCC}
)

// streamStudyRows regenerates the study with the pinned configuration.
func streamStudyRows(t *testing.T) []report.StreamStudyRow {
	t.Helper()
	runner := harness.NewRunner(all.Registry())
	el, err := harness.ResolveDataset("kron-12", harness.DatasetOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var rows []report.StreamStudyRow
	for _, alg := range streamStudyAlgs {
		for _, bs := range streamStudyBatchSizes {
			for _, df := range streamStudyDeleteFracs {
				spec := core.Spec{
					Dataset:   "kron-12",
					Algorithm: alg,
					Engines:   []string{"GAP"},
					Threads:   8,
					Roots:     1,
					Seed:      7,
					Mutations: &core.MutationSchedule{
						Batches:    4,
						BatchSize:  bs,
						DeleteFrac: df,
						Seed:       7,
					},
				}
				results, err := runner.Run(spec, el)
				if err != nil {
					t.Fatalf("%s bs=%d df=%g: %v", alg, bs, df, err)
				}
				for _, r := range results {
					if r.Batch == 0 {
						continue // baseline trial, not a stream row
					}
					inc := r.MutateSec + r.MaintainSec
					if inc <= 0 || r.RecomputeSec <= 0 {
						t.Fatalf("%s bs=%d df=%g batch %d: non-positive modeled cost (inc=%g recompute=%g)",
							alg, bs, df, r.Batch, inc, r.RecomputeSec)
					}
					rows = append(rows, report.StreamStudyRow{
						Dataset:      r.Dataset,
						Alg:          string(r.Algorithm),
						BatchSize:    bs,
						DeleteFrac:   df,
						Batch:        r.Batch,
						Iterations:   r.Iterations,
						MutateSec:    r.MutateSec,
						MaintainSec:  r.MaintainSec,
						RecomputeSec: r.RecomputeSec,
						Speedup:      r.RecomputeSec / inc,
					})
				}
			}
		}
	}
	return rows
}

// TestWriteStreamStudy rewrites FIG_stream_study.csv (gated: it is an
// artifact writer, not a check; run via `make streamfig` after an
// intentional streaming-path change).
func TestWriteStreamStudy(t *testing.T) {
	if os.Getenv("EPG_WRITE_STREAMFIG") == "" {
		t.Skip("set EPG_WRITE_STREAMFIG=1 (make streamfig) to rewrite FIG_stream_study.csv")
	}
	rows := streamStudyRows(t)
	f, err := os.Create(streamStudyFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := report.WriteStreamStudyCSV(f, rows); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d batch rows)", streamStudyFile, len(rows))
}

// TestStreamStudyDrift is the streaming drift gate (`make
// streamfig-check`): the regenerated study must match the committed
// artifact byte for byte. Any mismatch means a commit moved the
// streaming path's observable behavior — batch generation, mutation
// replay costs, incremental convergence, or the recompute reference —
// without regenerating the artifact.
func TestStreamStudyDrift(t *testing.T) {
	if os.Getenv("EPG_STREAMFIG_CHECK") == "" {
		t.Skip("set EPG_STREAMFIG_CHECK=1 (make streamfig-check) to run the stream-study drift gate")
	}
	committed, err := os.ReadFile(streamStudyFile)
	if err != nil {
		t.Fatalf("no committed %s (run `make streamfig` and commit it): %v", streamStudyFile, err)
	}
	rows := streamStudyRows(t)
	var regenerated bytes.Buffer
	if err := report.WriteStreamStudyCSV(&regenerated, rows); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(regenerated.Bytes(), committed) {
		t.Logf("%s matches the regenerated study exactly (%d batch rows)", streamStudyFile, len(rows))
		return
	}
	got := strings.Split(strings.TrimRight(regenerated.String(), "\n"), "\n")
	want := strings.Split(strings.TrimRight(string(committed), "\n"), "\n")
	if len(got) != len(want) {
		t.Errorf("row count drifted: regenerated %d lines, committed %d", len(got), len(want))
	}
	shown := 0
	for i := 0; i < len(got) && i < len(want) && shown < 5; i++ {
		if got[i] != want[i] {
			t.Errorf("line %d drifted:\n  committed:   %s\n  regenerated: %s", i+1, want[i], got[i])
			shown++
		}
	}
	t.Fatalf("%s drifted from the regenerated streaming study: a change moved the streaming "+
		"path's behavior; if intentional, run `make streamfig` and commit the new artifact",
		streamStudyFile)
}
