package harness

import (
	"bytes"
	"strings"
	"testing"

	"github.com/hpcl-repro/epg/internal/core"
	"github.com/hpcl-repro/epg/internal/engines"
)

func streamSpec(alg engines.Algorithm) core.Spec {
	s := testSpec(alg, 2)
	s.Engines = []string{"GAP"}
	s.Mutations = &core.MutationSchedule{Batches: 3, BatchSize: 32, DeleteFrac: 0.4, Seed: 11}
	return s
}

// The stream phase appends one result row per batch, with the modeled
// phase breakdown filled in; the in-run conformance wall (incremental
// bit-equal to full recompute) has already passed if Run returns nil.
func TestRunStreamProducesPerBatchResults(t *testing.T) {
	for _, alg := range []engines.Algorithm{engines.PageRank, engines.WCC} {
		r := testRunner()
		spec := streamSpec(alg)
		el, err := ResolveDataset(spec.Dataset, DatasetOptions{Seed: spec.Seed})
		if err != nil {
			t.Fatal(err)
		}
		results, err := r.Run(spec, el)
		if err != nil {
			t.Fatal(err)
		}
		baseline, stream := 0, 0
		for _, res := range results {
			if res.Batch == 0 {
				baseline++
				continue
			}
			stream++
			if res.MutateSec <= 0 {
				t.Errorf("%s batch %d: no mutate time", alg, res.Batch)
			}
			if res.MaintainSec <= 0 || res.AlgorithmSec != res.MaintainSec {
				t.Errorf("%s batch %d: maintain %g, algorithm %g", alg, res.Batch, res.MaintainSec, res.AlgorithmSec)
			}
			if res.RecomputeSec <= 0 {
				t.Errorf("%s batch %d: no recompute time", alg, res.Batch)
			}
			if alg == engines.PageRank && res.Iterations <= 0 {
				t.Errorf("pr batch %d: no iterations", res.Batch)
			}
		}
		if baseline != 2 || stream != 3 {
			t.Fatalf("%s: %d baseline + %d stream rows, want 2 + 3", alg, baseline, stream)
		}
	}
}

// The same schedule must yield bit-identical stream rows across runs
// and worker counts — determinism is the whole contract.
func TestRunStreamDeterministic(t *testing.T) {
	spec := streamSpec(engines.PageRank)
	el, err := ResolveDataset(spec.Dataset, DatasetOptions{Seed: spec.Seed})
	if err != nil {
		t.Fatal(err)
	}
	var prev []core.Result
	for _, workers := range []int{1, 4} {
		s := spec
		s.Workers = workers
		results, err := testRunner().Run(s, el)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			if len(results) != len(prev) {
				t.Fatalf("row count %d vs %d", len(results), len(prev))
			}
			for i := range prev {
				if results[i] != prev[i] {
					// WallSec is real time; mask it before comparing.
					a, b := results[i], prev[i]
					a.WallSec, b.WallSec = 0, 0
					if a != b {
						t.Fatalf("workers=%d row %d differs: %+v vs %+v", workers, i, a, b)
					}
				}
			}
		}
		prev = results
	}
}

// Engines without the Streamer hook warn and skip the phase instead of
// failing the run.
func TestRunStreamKnobDropWarning(t *testing.T) {
	spec := streamSpec(engines.PageRank)
	spec.Engines = []string{"GraphMat"}
	el, err := ResolveDataset(spec.Dataset, DatasetOptions{Seed: spec.Seed})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r := testRunner()
	r.Warnings = &buf
	results, err := r.Run(spec, el)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if res.Batch != 0 {
			t.Fatalf("GraphMat produced a stream row: %+v", res)
		}
	}
	w := buf.String()
	if !strings.Contains(w, "knob=mutations") || !strings.Contains(w, "engine=GraphMat") {
		t.Fatalf("missing mutations knob-drop warning, got %q", w)
	}
}

// Spec validation gates the streaming phase to the algorithms with an
// incremental maintainer.
func TestMutationScheduleValidation(t *testing.T) {
	base := streamSpec(engines.PageRank)
	cases := []struct {
		name string
		mod  func(*core.Spec)
		ok   bool
	}{
		{"valid", func(*core.Spec) {}, true},
		{"wcc", func(s *core.Spec) { s.Algorithm = engines.WCC }, true},
		{"bfs", func(s *core.Spec) { s.Algorithm = engines.BFS }, false},
		{"zero batches", func(s *core.Spec) { s.Mutations.Batches = 0 }, false},
		{"zero batch size", func(s *core.Spec) { s.Mutations.BatchSize = 0 }, false},
		{"bad delete frac", func(s *core.Spec) { s.Mutations.DeleteFrac = 1.5 }, false},
		{"negative delete frac", func(s *core.Spec) { s.Mutations.DeleteFrac = -0.1 }, false},
	}
	for _, c := range cases {
		s := base
		ms := *base.Mutations
		s.Mutations = &ms
		c.mod(&s)
		err := s.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}
