// Tier-2 wall-clock speedup floor: the ROADMAP follow-up to the
// 1-core baseline. Modeled time is identical at every worker count by
// construction (the determinism walls enforce it); this test asserts
// that the *real* runtime actually scales on multicore hosts — the
// point of the sort-free frontiers and the atomic-free builder.
package epg_test

import (
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// speedupFloorRatio is the asserted floor: 4-worker wall time must be
// at most this fraction of 1-worker wall time (≥1.67x speedup) for
// the modeled BFS and PageRank kernels under the steal policy.
const speedupFloorRatio = 0.6

// measureKernel returns the best-of-reps wall seconds of one kernel
// run at the given worker count under the work-stealing policy.
// Best-of (not mean) keeps the measurement robust against CI noise.
func measureKernel(t *testing.T, workers int, kernel string) float64 {
	t.Helper()
	el := speedupGraph(t)
	inst, root := speedupInstance(t, el, workers)
	inst.Machine().SetSchedOverride(simmachine.Steal)
	run := func() error {
		switch kernel {
		case "BFS":
			_, err := inst.BFS(root)
			return err
		default:
			_, err := inst.PageRank(engines.DefaultPROpts())
			return err
		}
	}
	if err := run(); err != nil { // warm-up
		t.Fatal(err)
	}
	best := 0.0
	for i := 0; i < 3; i++ {
		start := time.Now()
		if err := run(); err != nil {
			t.Fatal(err)
		}
		if s := time.Since(start).Seconds(); i == 0 || s < best {
			best = s
		}
	}
	return best
}

// TestSpeedupFloor asserts that 4 workers beat 1 worker by the floor
// ratio on the kron-16 modeled BFS and PageRank kernels under steal.
// It is tier-2 — a wall-clock measurement, inherently noisy on shared
// runners — so it only arms behind EPG_SPEEDUP_FLOOR=1 (its own CI
// step, `make speedup-floor`), keeping the tier-1 `go test ./...`
// gate deterministic. Also skipped on hosts without 4 CPUs (the
// committed BENCH_baseline.json may come from such a host; the floor
// only means something where the hardware can deliver it).
func TestSpeedupFloor(t *testing.T) {
	if os.Getenv("EPG_SPEEDUP_FLOOR") == "" {
		t.Skip("tier-2 wall-clock assertion: set EPG_SPEEDUP_FLOOR=1 (make speedup-floor) to run")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("speedup floor needs >= 4 CPUs, host has %d", runtime.NumCPU())
	}
	for _, kernel := range []string{"BFS", "PR"} {
		t.Run(kernel, func(t *testing.T) {
			t1 := measureKernel(t, 1, kernel)
			t4 := measureKernel(t, 4, kernel)
			t.Logf("%s: 1w=%.4fs 4w=%.4fs speedup=%.2fx", kernel, t1, t4, t1/t4)
			if t4 > t1*speedupFloorRatio {
				t.Errorf("%s at 4 workers took %.4fs, want <= %.4fs (%.2gx of the 1-worker %.4fs)",
					kernel, t4, t1*speedupFloorRatio, speedupFloorRatio, t1)
			}
		})
	}
}
