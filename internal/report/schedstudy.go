package report

import (
	"bufio"
	"fmt"
	"io"
)

// SchedStudyRow is one cell of the scheduling-study table (the
// ROADMAP's "modeled time vs. policy across thread counts" figure):
// one kernel run under one scheduling policy at one virtual thread
// count and socket count, with the modeled seconds the figure plots
// and the wall-clock seconds this host happened to take (0 when not
// measured). Comparing the dynamic column against steal across the
// thread axis quantifies where the shared-counter policy serializes
// and stealing recovers; comparing steal against numa across the
// socket axis quantifies where flat stealing pays cross-socket
// penalties that two-level stealing avoids.
type SchedStudyRow struct {
	Kernel     string
	Sched      string
	Threads    int
	Sockets    int
	Workers    int
	ModeledSec float64
	WallSec    float64
}

// SchedStudyCSVHeader is the column layout of WriteSchedStudyCSV.
const SchedStudyCSVHeader = "kernel,sched,threads,sockets,workers,modeled_s,wall_s"

// WriteSchedStudyCSV writes the scheduling-study table as CSV for
// external plotting, one row per (kernel, policy, thread count,
// socket count).
func WriteSchedStudyCSV(w io.Writer, rows []SchedStudyRow) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, SchedStudyCSVHeader)
	for _, r := range rows {
		fmt.Fprintf(bw, "%s,%s,%d,%d,%d,%.9g,%.9g\n",
			r.Kernel, r.Sched, r.Threads, r.Sockets, r.Workers, r.ModeledSec, r.WallSec)
	}
	return bw.Flush()
}

// SchedStudyTable renders the same rows as an aligned text table, the
// quick-look companion to the CSV.
func SchedStudyTable(w io.Writer, rows []SchedStudyRow) {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Kernel, r.Sched, fmt.Sprint(r.Threads), fmt.Sprint(r.Sockets),
			FormatSeconds(r.ModeledSec), FormatSeconds(r.WallSec),
		})
	}
	Table(w, "Scheduling study: modeled seconds by policy, thread count, and sockets",
		[]string{"kernel", "sched", "threads", "sockets", "modeled_s", "wall_s"}, out)
}
