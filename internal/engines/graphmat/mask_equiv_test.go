package graphmat

import (
	"math"
	"testing"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/kronecker"
)

// This file is the before/after wall for backing the SpMV frontier
// masks with parallel.Bitmap: the reference implementations below
// reproduce the kernels' previous []bool-mask semantics serially, and
// the bitmap-backed kernels must match them bit for bit on randomized
// graphs — the representation change must be unobservable.

// refMaskBFS is the pre-bitmap BFS: Boolean-semiring SpMV with
// byte-per-vertex masks, run serially.
func refMaskBFS(inst *Instance, root graph.VID) *engines.BFSResult {
	n := inst.n
	res := &engines.BFSResult{Root: root, Parent: make([]int64, n), Depth: make([]int64, n)}
	for i := range res.Parent {
		res.Parent[i] = engines.NoParent
		res.Depth[i] = -1
	}
	res.Parent[root] = int64(root)
	res.Depth[root] = 0
	active := make([]bool, n)
	nextActive := make([]bool, n)
	active[root] = true
	var examined int64
	for level := int64(0); ; level++ {
		found := 0
		for ri := range inst.inMat.rows {
			v := inst.inMat.rows[ri]
			lo, hi := inst.inMat.ptr[ri], inst.inMat.ptr[ri+1]
			examined += hi - lo
			if res.Parent[v] != engines.NoParent {
				continue
			}
			var parent int64 = engines.NoParent
			for i := lo; i < hi; i++ {
				u := inst.inMat.cols[i]
				if active[u] && (parent == engines.NoParent || int64(u) < parent) {
					parent = int64(u)
				}
			}
			if parent != engines.NoParent {
				res.Parent[v] = parent
				res.Depth[v] = level + 1
				nextActive[v] = true
				found++
			}
		}
		if found == 0 {
			break
		}
		active, nextActive = nextActive, active
		clear(nextActive)
	}
	res.EdgesExamined = examined
	return res
}

// refMaskSSSP is the pre-bitmap SSSP: synchronous min-plus SpMV with
// byte-per-vertex masks, run serially.
func refMaskSSSP(inst *Instance, root graph.VID) *engines.SSSPResult {
	n := inst.n
	res := &engines.SSSPResult{Root: root, Dist: make([]float64, n), Parent: make([]int64, n)}
	cur := make([]float32, n)
	nxt := make([]float32, n)
	inf := float32(math.Inf(1))
	for i := range cur {
		cur[i] = inf
		res.Parent[i] = engines.NoParent
	}
	cur[root] = 0
	res.Parent[root] = int64(root)
	active := make([]bool, n)
	nextActive := make([]bool, n)
	active[root] = true
	var relaxations int64
	for {
		copy(nxt, cur)
		changed := 0
		for ri := range inst.inMat.rows {
			v := inst.inMat.rows[ri]
			lo, hi := inst.inMat.ptr[ri], inst.inMat.ptr[ri+1]
			best := cur[v]
			var bestParent int64 = -2
			for i := lo; i < hi; i++ {
				u := inst.inMat.cols[i]
				if !active[u] {
					continue
				}
				relaxations++
				if nd := cur[u] + inst.inMat.vals[i]; nd < best {
					best = nd
					bestParent = int64(u)
				}
			}
			if bestParent != -2 {
				nxt[v] = best
				res.Parent[v] = bestParent
				nextActive[v] = true
				changed++
			}
		}
		if changed == 0 {
			break
		}
		cur, nxt = nxt, cur
		active, nextActive = nextActive, active
		clear(nextActive)
	}
	for v := 0; v < n; v++ {
		res.Dist[v] = float64(cur[v])
	}
	res.Relaxations = relaxations
	return res
}

func TestBitmapMaskBFSEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 7, 23, 99} {
		el := kronecker.Generate(kronecker.Params{Scale: 8, Seed: seed})
		inst := loadBuilt(t, el)
		want := refMaskBFS(inst, 2)
		got, err := inst.BFS(2)
		if err != nil {
			t.Fatal(err)
		}
		if got.EdgesExamined != want.EdgesExamined {
			t.Errorf("seed=%d: edges examined %d, []bool reference %d", seed, got.EdgesExamined, want.EdgesExamined)
		}
		for v := range want.Parent {
			if got.Parent[v] != want.Parent[v] || got.Depth[v] != want.Depth[v] {
				t.Fatalf("seed=%d: vertex %d: parent/depth (%d,%d), []bool reference (%d,%d)",
					seed, v, got.Parent[v], got.Depth[v], want.Parent[v], want.Depth[v])
			}
		}
	}
}

func TestBitmapMaskSSSPEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 7, 23, 99} {
		el := kronecker.Generate(kronecker.Params{Scale: 8, Seed: seed})
		inst := loadBuilt(t, el)
		want := refMaskSSSP(inst, 2)
		got, err := inst.SSSP(2)
		if err != nil {
			t.Fatal(err)
		}
		if got.Relaxations != want.Relaxations {
			t.Errorf("seed=%d: relaxations %d, []bool reference %d", seed, got.Relaxations, want.Relaxations)
		}
		for v := range want.Dist {
			if math.Float64bits(got.Dist[v]) != math.Float64bits(want.Dist[v]) || got.Parent[v] != want.Parent[v] {
				t.Fatalf("seed=%d: vertex %d: dist/parent (%v,%d), []bool reference (%v,%d)",
					seed, v, got.Dist[v], got.Parent[v], want.Dist[v], want.Parent[v])
			}
		}
	}
}
