package graph

import (
	"sort"
	"testing"

	"github.com/hpcl-repro/epg/internal/xrand"
)

// buildNormalized builds the normal form the harness hands engines:
// symmetrized (when undirected), self-loop-free, deduplicated, sorted.
func buildNormalized(el *EdgeList) *CSR {
	return BuildCSR(el, BuildOptions{
		Symmetrize:    !el.Directed,
		DropSelfLoops: true,
		Dedup:         true,
		Sort:          true,
	})
}

func csrEqual(a, b *CSR) bool {
	if a.NumVertices != b.NumVertices || len(a.Offsets) != len(b.Offsets) ||
		len(a.Adj) != len(b.Adj) || (a.Weights == nil) != (b.Weights == nil) {
		return false
	}
	for i := range a.Offsets {
		if a.Offsets[i] != b.Offsets[i] {
			return false
		}
	}
	for i := range a.Adj {
		if a.Adj[i] != b.Adj[i] {
			return false
		}
	}
	if a.Weights != nil {
		if len(a.Weights) != len(b.Weights) {
			return false
		}
		for i := range a.Weights {
			if a.Weights[i] != b.Weights[i] {
				return false
			}
		}
	}
	return true
}

// mutModel is the specification oracle: a map of logical edges replayed
// with the documented semantics (self-loops dropped, duplicate insert
// takes the minimum weight, delete of an absent edge is a no-op),
// rebuilt from scratch through BuildCSR after every batch.
type mutModel struct {
	n        int
	directed bool
	weighted bool
	edges    map[uint64]float32
}

func (m *mutModel) key(u, v VID) uint64 {
	if !m.directed && u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}

func newMutModelFromCSR(c *CSR, directed bool) *mutModel {
	m := &mutModel{n: c.NumVertices, directed: directed, weighted: c.Weights != nil, edges: make(map[uint64]float32)}
	for v := 0; v < c.NumVertices; v++ {
		adj := c.Neighbors(VID(v))
		ws := c.NeighborWeights(VID(v))
		for i, u := range adj {
			if !directed && u < VID(v) {
				continue // one canonical orientation suffices
			}
			var w float32
			if ws != nil {
				w = ws[i]
			}
			m.edges[m.key(VID(v), u)] = w
		}
	}
	return m
}

func (m *mutModel) apply(b Batch) {
	for _, mu := range b {
		if mu.Src == mu.Dst {
			continue
		}
		k := m.key(mu.Src, mu.Dst)
		w, ok := m.edges[k]
		switch mu.Op {
		case MutInsert:
			switch {
			case !ok:
				if m.weighted {
					m.edges[k] = mu.W
				} else {
					m.edges[k] = 0
				}
			case m.weighted && mu.W < w:
				m.edges[k] = mu.W
			}
		case MutDelete:
			if ok {
				delete(m.edges, k)
			}
		}
	}
}

func (m *mutModel) rebuild() *CSR {
	keys := make([]uint64, 0, len(m.edges))
	for k := range m.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	el := &EdgeList{NumVertices: m.n, Weighted: m.weighted, Directed: m.directed}
	for _, k := range keys {
		el.Edges = append(el.Edges, Edge{Src: VID(k >> 32), Dst: VID(k & 0xffffffff), W: m.edges[k]})
	}
	return buildNormalized(el)
}

func TestMutableCSREmptyBatch(t *testing.T) {
	el := randomEdgeList(1, 32, 128, false)
	c := buildNormalized(el)
	mc := NewMutableCSR(c, false)
	res, err := mc.Apply(nil)
	if err != nil {
		t.Fatalf("Apply(nil): %v", err)
	}
	if mc.CSR() != c {
		t.Fatalf("empty batch rebuilt the structure")
	}
	if res.Stats != (MutStats{}) || len(res.DirtyRows) != 0 {
		t.Fatalf("empty batch reported work: %+v", res)
	}
}

func TestMutableCSRDuplicateInsertUnweighted(t *testing.T) {
	el := &EdgeList{NumVertices: 4, Edges: []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}}
	c := buildNormalized(el)
	mc := NewMutableCSR(c, false)
	res, err := mc.Apply(Batch{{Op: MutInsert, Src: 0, Dst: 1}, {Op: MutInsert, Src: 1, Dst: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DupInserts != 2 || res.Stats.Inserted != 0 {
		t.Fatalf("stats = %+v, want 2 dup inserts", res.Stats)
	}
	if mc.CSR() != c {
		t.Fatalf("no-op duplicate inserts rebuilt the structure")
	}
}

func TestMutableCSRDuplicateInsertWeightedMinRule(t *testing.T) {
	el := &EdgeList{NumVertices: 4, Weighted: true, Edges: []Edge{{Src: 0, Dst: 1, W: 0.5}}}
	c := buildNormalized(el)
	mc := NewMutableCSR(c, false)

	// A higher weight is a pure no-op.
	if _, err := mc.Apply(Batch{{Op: MutInsert, Src: 0, Dst: 1, W: 0.9}}); err != nil {
		t.Fatal(err)
	}
	if mc.CSR() != c {
		t.Fatalf("higher-weight duplicate insert rebuilt the structure")
	}

	// A lower weight updates both orientations without touching
	// membership: dirty but not structural.
	res, err := mc.Apply(Batch{{Op: MutInsert, Src: 0, Dst: 1, W: 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DupInserts != 1 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	if got := len(res.DirtyRows); got != 2 {
		t.Fatalf("DirtyRows = %v, want rows 0 and 1", res.DirtyRows)
	}
	if len(res.StructRows) != 0 || len(res.DegChanged) != 0 {
		t.Fatalf("weight-only change reported structural rows: %+v", res)
	}
	if w := mc.CSR().NeighborWeights(0)[0]; w != 0.25 {
		t.Fatalf("weight after min-rule insert = %v, want 0.25", w)
	}
	if w := mc.CSR().NeighborWeights(1)[0]; w != 0.25 {
		t.Fatalf("mirror weight after min-rule insert = %v, want 0.25", w)
	}
}

func TestMutableCSRDeleteNonexistent(t *testing.T) {
	el := &EdgeList{NumVertices: 4, Edges: []Edge{{Src: 0, Dst: 1}}}
	c := buildNormalized(el)
	mc := NewMutableCSR(c, false)
	res, err := mc.Apply(Batch{{Op: MutDelete, Src: 2, Dst: 3}, {Op: MutDelete, Src: 0, Dst: 1}, {Op: MutDelete, Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// The second delete of (0,1) hits an already-removed edge.
	if res.Stats.MissingDeletes != 2 || res.Stats.Deleted != 1 {
		t.Fatalf("stats = %+v, want 1 delete + 2 missing", res.Stats)
	}
	if got := mc.CSR().NumEdges(); got != 0 {
		t.Fatalf("edges after delete = %d, want 0", got)
	}
}

func TestMutableCSRSelfLoopsDropped(t *testing.T) {
	el := &EdgeList{NumVertices: 4, Edges: []Edge{{Src: 0, Dst: 1}}}
	c := buildNormalized(el)
	mc := NewMutableCSR(c, false)
	res, err := mc.Apply(Batch{{Op: MutInsert, Src: 2, Dst: 2}, {Op: MutDelete, Src: 3, Dst: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SelfLoops != 2 {
		t.Fatalf("stats = %+v, want 2 self-loops", res.Stats)
	}
	if mc.CSR() != c {
		t.Fatalf("self-loop-only batch rebuilt the structure")
	}
}

// A delete+insert pair on the same row preserves its degree while
// changing membership — the case that makes DegChanged alone an
// insufficient dirtiness signal for the incremental maintainers.
func TestMutableCSRDegreePreservingMembershipChange(t *testing.T) {
	el := &EdgeList{NumVertices: 5, Directed: true, Edges: []Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}}}
	c := buildNormalized(el)
	mc := NewMutableCSR(c, true)
	res, err := mc.Apply(Batch{{Op: MutDelete, Src: 0, Dst: 1}, {Op: MutInsert, Src: 0, Dst: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StructRows) != 1 || res.StructRows[0] != 0 {
		t.Fatalf("StructRows = %v, want [0]", res.StructRows)
	}
	if len(res.DegChanged) != 0 {
		t.Fatalf("DegChanged = %v, want empty (degree preserved)", res.DegChanged)
	}
	if got := mc.CSR().Neighbors(0); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("row 0 = %v, want [2 3]", got)
	}
}

// Apply must be atomic: a validation error leaves the structure (and
// the wrapped pointer) untouched even when earlier mutations in the
// batch were valid.
func TestMutableCSRApplyAtomicOnError(t *testing.T) {
	el := &EdgeList{NumVertices: 4, Edges: []Edge{{Src: 0, Dst: 1}}}
	c := buildNormalized(el)
	mc := NewMutableCSR(c, false)
	_, err := mc.Apply(Batch{{Op: MutInsert, Src: 2, Dst: 3}, {Op: MutInsert, Src: 0, Dst: 99}})
	if err == nil {
		t.Fatalf("out-of-range mutation accepted")
	}
	if mc.CSR() != c {
		t.Fatalf("failed Apply replaced the structure")
	}
	if _, err := mc.Apply(Batch{{Op: MutOp(9), Src: 0, Dst: 1}}); err == nil {
		t.Fatalf("unknown op accepted")
	}
}

// Previous epochs stay frozen: readers holding the old CSR see it
// unchanged after Apply swaps in the rebuilt structure.
func TestMutableCSREpochFrozen(t *testing.T) {
	el := randomEdgeList(3, 64, 256, true)
	c := buildNormalized(el)
	mc := NewMutableCSR(c, false)
	adjBefore := append([]VID(nil), c.Adj...)
	offBefore := append([]int64(nil), c.Offsets...)
	// Delete an edge guaranteed present so the batch has a net effect.
	var v0 VID
	for c.Degree(v0) == 0 {
		v0++
	}
	u0 := c.Neighbors(v0)[0]
	if _, err := mc.Apply(Batch{{Op: MutDelete, Src: v0, Dst: u0}}); err != nil {
		t.Fatal(err)
	}
	if mc.CSR() == c {
		t.Fatalf("Apply with net changes did not swap epochs")
	}
	for i := range adjBefore {
		if c.Adj[i] != adjBefore[i] {
			t.Fatalf("old epoch adjacency mutated at %d", i)
		}
	}
	for i := range offBefore {
		if c.Offsets[i] != offBefore[i] {
			t.Fatalf("old epoch offsets mutated at %d", i)
		}
	}
}

// Random mutation streams across all four (directed × weighted)
// shapes: after every batch the MutableCSR must be byte-equal to a
// from-scratch BuildCSR over the model's post-batch edge set, and the
// reported row sets must nest (DegChanged ⊆ StructRows ⊆ DirtyRows).
func TestMutableCSRRandomStreamsMatchRebuild(t *testing.T) {
	for _, directed := range []bool{false, true} {
		for _, weighted := range []bool{false, true} {
			for seed := uint64(1); seed <= 8; seed++ {
				el := randomEdgeList(seed, 48, 192, weighted)
				el.Directed = directed
				c := buildNormalized(el)
				mc := NewMutableCSR(c, directed)
				model := newMutModelFromCSR(c, directed)
				r := xrand.New(seed ^ 0xfeed)
				for batchIdx := 0; batchIdx < 6; batchIdx++ {
					b := randomBatch(r, 48, 24, weighted)
					res, err := mc.Apply(b)
					if err != nil {
						t.Fatalf("directed=%v weighted=%v seed=%d batch=%d: %v", directed, weighted, seed, batchIdx, err)
					}
					model.apply(b)
					want := model.rebuild()
					if !csrEqual(mc.CSR(), want) {
						t.Fatalf("directed=%v weighted=%v seed=%d batch=%d: MutableCSR diverges from rebuild", directed, weighted, seed, batchIdx)
					}
					checkRowSets(t, res)
				}
			}
		}
	}
}

func randomBatch(r *xrand.RNG, n, ops int, weighted bool) Batch {
	b := make(Batch, 0, ops)
	for i := 0; i < ops; i++ {
		mu := Mutation{Src: VID(r.Intn(n)), Dst: VID(r.Intn(n))}
		if r.Intn(3) == 0 {
			mu.Op = MutDelete
		} else {
			mu.Op = MutInsert
			if weighted {
				mu.W = float32(r.Intn(100)+1) / 100
			}
		}
		b = append(b, mu)
	}
	return b
}

func checkRowSets(t *testing.T, res *ApplyResult) {
	t.Helper()
	inDirty := make(map[VID]bool, len(res.DirtyRows))
	for _, v := range res.DirtyRows {
		inDirty[v] = true
	}
	inStruct := make(map[VID]bool, len(res.StructRows))
	for _, v := range res.StructRows {
		if !inDirty[v] {
			t.Fatalf("StructRows %d not in DirtyRows", v)
		}
		inStruct[v] = true
	}
	for _, v := range res.DegChanged {
		if !inStruct[v] {
			t.Fatalf("DegChanged %d not in StructRows", v)
		}
	}
	for _, set := range [][]VID{res.DirtyRows, res.StructRows, res.DegChanged} {
		if !sort.SliceIsSorted(set, func(i, j int) bool { return set[i] < set[j] }) {
			t.Fatalf("row set not ascending: %v", set)
		}
	}
	for _, edges := range [][]Edge{res.AddedEdges, res.RemovedEdges} {
		if !sort.SliceIsSorted(edges, func(i, j int) bool {
			if edges[i].Src != edges[j].Src {
				return edges[i].Src < edges[j].Src
			}
			return edges[i].Dst < edges[j].Dst
		}) {
			t.Fatalf("net edge list not (src,dst)-sorted")
		}
	}
}

// FuzzMutationEquivalence is the mutation conformance wall: an
// arbitrary batch stream applied through MutableCSR must stay
// byte-equal to rebuilding the CSR from scratch over the logical edge
// set after every flush, on every (directed × weighted) shape.
func FuzzMutationEquivalence(f *testing.F) {
	f.Add(uint64(1), uint16(40), uint16(160), uint8(0), []byte{0, 1, 2, 50, 1, 2, 3, 0, 0xff, 0, 0, 0, 1, 1, 2, 0})
	f.Add(uint64(2), uint16(16), uint16(64), uint8(1), []byte{0, 5, 5, 10, 0, 5, 6, 10, 0, 5, 6, 5})
	f.Add(uint64(3), uint16(64), uint16(300), uint8(2), []byte{1, 0, 1, 0, 0, 0, 1, 99, 0xff, 9, 9, 9, 0, 1, 0, 30})
	f.Add(uint64(4), uint16(8), uint16(0), uint8(3), []byte{0, 1, 2, 77, 0, 2, 1, 33, 1, 1, 2, 0})
	f.Fuzz(func(t *testing.T, seed uint64, nSeed, mSeed uint16, shape uint8, ops []byte) {
		n := int(nSeed)%128 + 2
		m := int(mSeed) % 1024
		directed := shape&1 != 0
		weighted := shape&2 != 0
		el := randomEdgeList(seed, n, m, weighted)
		el.Directed = directed
		c := buildNormalized(el)
		mc := NewMutableCSR(c, directed)
		model := newMutModelFromCSR(c, directed)

		var batch Batch
		flush := func() {
			res, err := mc.Apply(batch)
			if err != nil {
				t.Fatalf("Apply: %v", err)
			}
			model.apply(batch)
			if !csrEqual(mc.CSR(), model.rebuild()) {
				t.Fatalf("stream diverges from rebuild-from-scratch (n=%d directed=%v weighted=%v, %d ops)", n, directed, weighted, len(batch))
			}
			checkRowSets(t, res)
			batch = batch[:0]
		}
		for i := 0; i+4 <= len(ops) && len(batch) < 512; i += 4 {
			if ops[i] == 0xff {
				flush()
				continue
			}
			mu := Mutation{Src: VID(int(ops[i+1]) % n), Dst: VID(int(ops[i+2]) % n)}
			if ops[i]&1 == 0 {
				mu.Op = MutInsert
				if weighted {
					mu.W = float32(int(ops[i+3])%100+1) / 100
				}
			} else {
				mu.Op = MutDelete
			}
			batch = append(batch, mu)
		}
		flush()
	})
}
