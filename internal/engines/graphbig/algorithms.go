package graphbig

import (
	"math"
	"sync/atomic"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/parallel"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// PageRank implements engines.Instance: edge-wise accumulation into
// float32 vertex properties — System G stores single-precision rank
// properties, so the paper's ε = 6e-8 stopping threshold sits at
// float32's precision floor and GraphBIG needs more iterations than
// the float64 engines to get under it. The accumulation gathers along
// in-edges (each vertex folds its own property in adjacency order), so
// the per-edge lock traffic System G pays is charged per edge while
// the float32 sums stay bit-identical across runs and worker counts.
func (inst *Instance) PageRank(opts engines.PROpts) (*engines.PRResult, error) {
	opts = opts.Normalize()
	n := inst.n
	if n == 0 {
		return &engines.PRResult{}, nil
	}
	inv := float32(1.0 / float64(n))
	rank := make([]float32, n)
	next := make([]float32, n)
	for i := range rank {
		rank[i] = inv
	}
	res := &engines.PRResult{}
	gRed := inst.m.Grain(n, 4096, 1)
	gGather := inst.m.Grain(n, 512, 1)
	for iter := 1; iter <= opts.MaxIter; iter++ {
		// Dangling mass (float64 reduction of float32 properties,
		// folded in chunk order for determinism).
		dr := parallel.NewReducer[float64](parallel.NumChunks(n, gRed))
		inst.m.ParallelForChunks(n, gRed, simmachine.Dynamic, func(lo, hi, chunk, worker int, w *simmachine.W) {
			local := 0.0
			for v := lo; v < hi; v++ {
				if len(inst.vertices[v].out) == 0 {
					local += float64(rank[v])
				}
			}
			*dr.At(chunk) = local
			w.Charge(costPRVertex.Scale(float64(hi-lo) * 0.25))
		})
		dangling := parallel.SumFloat64(dr)
		base := float32((1-opts.Damping)/float64(n) + opts.Damping*dangling/float64(n))

		// Gather phase: fold in-neighbor shares in float32, per-vertex
		// property updates under System G's per-edge lock cost.
		inst.m.ParallelFor(n, gGather, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
			var edges int64
			for v := lo; v < hi; v++ {
				var sum float32
				for _, u := range inst.inNeighbors(graph.VID(v)) {
					sum += rank[u] / float32(len(inst.vertices[u].out))
				}
				edges += int64(len(inst.inNeighbors(graph.VID(v))))
				next[v] = base + float32(opts.Damping)*sum
			}
			w.Charge(costPREdge.Scale(float64(edges)))
			w.Charge(costPRVertex.Scale(float64(hi - lo)))
		})

		// L1 over float32 properties, accumulated in float64.
		lr := parallel.NewReducer[float64](parallel.NumChunks(n, gRed))
		inst.m.ParallelForChunks(n, gRed, simmachine.Dynamic, func(lo, hi, chunk, worker int, w *simmachine.W) {
			local := 0.0
			for v := lo; v < hi; v++ {
				local += math.Abs(float64(next[v]) - float64(rank[v]))
			}
			*lr.At(chunk) = local
			w.Charge(costPRVertex.Scale(float64(hi-lo) * 0.5))
		})
		l1 := parallel.SumFloat64(lr)

		rank, next = next, rank
		res.Iterations = iter
		if l1 < opts.Epsilon {
			break
		}
	}
	res.Rank = make([]float64, n)
	for v := 0; v < n; v++ {
		res.Rank[v] = float64(rank[v])
	}
	return res, nil
}

// CDLP implements engines.Instance: synchronous label propagation
// with per-vertex histogram maps (System G's property-map style).
func (inst *Instance) CDLP(maxIter int) (*engines.CDLPResult, error) {
	n := inst.n
	label := make([]graph.VID, n)
	next := make([]graph.VID, n)
	for i := range label {
		label[i] = graph.VID(i)
	}
	res := &engines.CDLPResult{}
	for iter := 1; iter <= maxIter; iter++ {
		var changed int64
		inst.m.ParallelFor(n, 256, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
			counts := make(map[graph.VID]int)
			var edges, localChanged int64
			for v := lo; v < hi; v++ {
				clear(counts)
				for _, u := range inst.vertices[v].out {
					counts[label[u]]++
				}
				edges += int64(len(inst.vertices[v].out))
				if inst.directed {
					for _, u := range inst.vertices[v].in {
						counts[label[u]]++
					}
					edges += int64(len(inst.vertices[v].in))
				}
				nl := pickLabel(counts, label[v])
				next[v] = nl
				if nl != label[v] {
					localChanged++
				}
			}
			atomic.AddInt64(&changed, localChanged)
			w.Charge(costCDLPEdge.Scale(float64(edges)))
			w.Charge(costPropTouch.Scale(float64(hi - lo)))
		})
		label, next = next, label
		res.Iterations = iter
		if changed == 0 {
			break
		}
	}
	res.Label = label
	return res, nil
}

func pickLabel(counts map[graph.VID]int, own graph.VID) graph.VID {
	if len(counts) == 0 {
		return own
	}
	best := graph.VID(0)
	bestN := -1
	for l, c := range counts {
		if c > bestN || (c == bestN && l < best) {
			best, bestN = l, c
		}
	}
	return best
}

// LCC implements engines.Instance: per-vertex hash-set membership
// tests over the distinct in∪out neighborhood.
func (inst *Instance) LCC() (*engines.LCCResult, error) {
	n := inst.n
	coeff := make([]float64, n)
	inst.m.ParallelFor(n, 64, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
		set := make(map[graph.VID]struct{})
		var checks int64
		for v := lo; v < hi; v++ {
			nbrs := inst.neighborhood(graph.VID(v))
			d := len(nbrs)
			if d < 2 {
				continue
			}
			clear(set)
			for _, u := range nbrs {
				set[u] = struct{}{}
			}
			links := 0
			for _, u := range nbrs {
				for _, x := range inst.vertices[u].out {
					checks++
					if x == u || x == graph.VID(v) {
						continue
					}
					if _, ok := set[x]; ok {
						links++
					}
				}
			}
			coeff[v] = float64(links) / float64(d*(d-1))
		}
		w.Charge(costLCCCheck.Scale(float64(checks)))
		w.Charge(costPropTouch.Scale(float64(hi - lo)))
	})
	return &engines.LCCResult{Coeff: coeff}, nil
}

// neighborhood returns distinct in∪out neighbors of v excluding v
// (adjacency lists are sorted and deduplicated at load).
func (inst *Instance) neighborhood(v graph.VID) []graph.VID {
	out := inst.vertices[v].out
	if !inst.directed {
		return out // sorted, simple graph: v itself was dropped
	}
	in := inst.vertices[v].in
	merged := make([]graph.VID, 0, len(out)+len(in))
	i, j := 0, 0
	for i < len(out) || j < len(in) {
		var nxt graph.VID
		switch {
		case i >= len(out):
			nxt = in[j]
			j++
		case j >= len(in):
			nxt = out[i]
			i++
		case out[i] < in[j]:
			nxt = out[i]
			i++
		case in[j] < out[i]:
			nxt = in[j]
			j++
		default:
			nxt = out[i]
			i++
			j++
		}
		if nxt == v {
			continue
		}
		if len(merged) == 0 || merged[len(merged)-1] != nxt {
			merged = append(merged, nxt)
		}
	}
	return merged
}

// WCC implements engines.Instance: plain min-label propagation (no
// pointer jumping) until quiescent.
func (inst *Instance) WCC() (*engines.WCCResult, error) {
	n := inst.n
	comp := make([]uint32, n)
	for i := range comp {
		comp[i] = uint32(i)
	}
	for {
		var changed int64
		inst.m.ParallelFor(n, 1024, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
			var edges, localChanged int64
			for v := lo; v < hi; v++ {
				min := atomic.LoadUint32(&comp[v])
				for _, u := range inst.vertices[v].out {
					if c := atomic.LoadUint32(&comp[u]); c < min {
						min = c
					}
				}
				edges += int64(len(inst.vertices[v].out))
				if inst.directed {
					for _, u := range inst.vertices[v].in {
						if c := atomic.LoadUint32(&comp[u]); c < min {
							min = c
						}
					}
					edges += int64(len(inst.vertices[v].in))
				}
				if min < comp[v] {
					atomic.StoreUint32(&comp[v], min)
					localChanged++
				}
			}
			atomic.AddInt64(&changed, localChanged)
			w.Charge(costWCCEdge.Scale(float64(edges)))
		})
		if changed == 0 {
			break
		}
	}
	res := &engines.WCCResult{Component: make([]graph.VID, n)}
	for v := 0; v < n; v++ {
		res.Component[v] = graph.VID(comp[v])
	}
	return res, nil
}
