// Package graphmat implements a Go analogue of GraphMat (Sundaram et
// al., VLDB'15), Intel's "graph analytics as sparse matrix operations"
// engine.
//
// Architectural character preserved from the original:
//
//   - the graph is a doubly-compressed sparse row (DCSR) matrix:
//     only rows with nonzeros are stored, gathered along in-edges
//     (y = Aᵀx), and every kernel is a generalized SpMV over a
//     user-defined semiring (PROCESS_MESSAGE / REDUCE / APPLY);
//   - each iteration sweeps the compressed matrix — the sparse-matrix
//     bookkeeping per edge is what the paper calls "the overhead of
//     the sparse matrix operations", which pays off on dense graphs
//     (Dota-League) and hurts on small/sparse ones;
//   - vertex properties are float32 (single precision), and PageRank
//     iterates until NO vertex's rank changes — effectively an
//     ∞-norm-equals-zero stopping rule, the strictest in the study
//     (the paper's Fig. 4 shows GraphMat's iteration count highest);
//   - construction (matrix partitioning and compression) is a
//     separately-timed phase, the slowest of the systems in Fig. 2.
//
// Known fidelity gaps: the real GraphMat tiles the matrix into
// per-thread partitions with SIMD inner loops; here the DCSR sweep is
// scalar Go on the shared runtime and the partitioning cost is
// charged, not executed. MPI GraphMat (the distributed successor) is
// out of scope. The semiring dispatch is Go interface-free static
// code, so its modeled per-edge overhead carries the fidelity, not
// real indirection. All timing is simmachine-modeled.
package graphmat
