package graph

import (
	"runtime"

	"github.com/hpcl-repro/epg/internal/parallel"
)

// BuildOptions controls CSR construction.
type BuildOptions struct {
	// Workers is the number of construction goroutines; 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Symmetrize inserts the reverse of every edge, turning a
	// directed edge list into an undirected adjacency structure
	// (the Graph500 convention for Kronecker graphs).
	Symmetrize bool
	// DropSelfLoops removes u->u edges, as the Graph500 reference
	// does during Kernel 1.
	DropSelfLoops bool
	// Dedup removes duplicate (src,dst) pairs after sorting. For
	// weighted graphs the first-seen weight wins.
	Dedup bool
	// Sort sorts each adjacency list ascending.
	Sort bool
}

func (o *BuildOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// buildSerialCutoff is the edge count below which construction runs on
// one worker: the histogram/scan machinery only pays for itself on
// inputs large enough to amortize a barrier.
const buildSerialCutoff = 1 << 12

// BuildCSR constructs a CSR from an edge list using a two-pass
// parallel counting-sort with zero per-edge atomic operations: pass
// one accumulates one degree histogram per worker over its contiguous
// edge range; the histograms are merged and turned into row offsets by
// a parallel exclusive prefix sum (parallel.ScanInt64); pass two
// scatters edges into per-(worker,vertex) reserved sub-ranges, so
// every write lands in a slot no other worker can touch. The result
// is deterministic up to adjacency order (edges of a vertex appear
// grouped by worker rank, then input order); pass Sort for a canonical
// structure.
func BuildCSR(el *EdgeList, opt BuildOptions) *CSR {
	n := el.NumVertices
	w := opt.workers()
	if len(el.Edges) < buildSerialCutoff {
		w = 1
	}
	pool := parallel.Default()
	ne := len(el.Edges)
	block := 0
	if w > 0 {
		block = (ne + w - 1) / w
	}
	edgeRange := func(worker int) (int, int) {
		lo := worker * block
		hi := lo + block
		if lo > ne {
			lo = ne
		}
		if hi > ne {
			hi = ne
		}
		return lo, hi
	}

	// Pass 1: per-worker degree histograms — plain increments into
	// worker-private arrays, no shared state.
	hist := make([][]int32, w)
	pool.Run(w, func(worker int) {
		h := make([]int32, n)
		lo, hi := edgeRange(worker)
		for i := lo; i < hi; i++ {
			e := el.Edges[i]
			if opt.DropSelfLoops && e.Src == e.Dst {
				continue
			}
			h[e.Src]++
			if opt.Symmetrize {
				h[e.Dst]++
			}
		}
		hist[worker] = h
	})

	// Merge: offsets[v] temporarily holds deg(v); in the same sweep
	// each worker's histogram entry is replaced by that worker's
	// start offset *within* vertex v's adjacency row (the reserved
	// sub-range of pass 2).
	offsets := make([]int64, n+1)
	parallel.For(pool, w, n, 4096, parallel.Static, func(lo, hi, chunk, worker int) {
		for v := lo; v < hi; v++ {
			var run int32
			for k := 0; k < w; k++ {
				d := hist[k][v]
				hist[k][v] = run
				run += d
			}
			offsets[v] = int64(run)
		}
	})
	total := parallel.ScanInt64(pool, w, offsets)

	csr := &CSR{
		NumVertices: n,
		Offsets:     offsets,
		Adj:         make([]VID, total),
	}
	if el.Weighted {
		csr.Weights = make([]float32, total)
	}

	// Pass 2: scatter into reserved sub-ranges. Worker k's cursor for
	// vertex v starts at offsets[v] + hist[k][v] and only worker k
	// advances it — no atomics, no races.
	pool.Run(w, func(worker int) {
		rel := hist[worker]
		lo, hi := edgeRange(worker)
		for i := lo; i < hi; i++ {
			e := el.Edges[i]
			if opt.DropSelfLoops && e.Src == e.Dst {
				continue
			}
			p := offsets[e.Src] + int64(rel[e.Src])
			rel[e.Src]++
			csr.Adj[p] = e.Dst
			if el.Weighted {
				csr.Weights[p] = e.W
			}
			if opt.Symmetrize {
				q := offsets[e.Dst] + int64(rel[e.Dst])
				rel[e.Dst]++
				csr.Adj[q] = e.Src
				if el.Weighted {
					csr.Weights[q] = e.W
				}
			}
		}
	})

	if opt.Sort || opt.Dedup {
		csr.SortAdjacency()
	}
	if opt.Dedup {
		csr = dedupCSR(csr)
	}
	return csr
}

// dedupCSR removes duplicate neighbors from a sorted CSR. For
// weighted graphs the minimum weight among parallel edges is kept:
// a deterministic rule (independent of the order duplicates landed in
// the adjacency) that is also the right semantics for shortest paths.
func dedupCSR(c *CSR) *CSR {
	out := &CSR{
		NumVertices: c.NumVertices,
		Offsets:     make([]int64, c.NumVertices+1),
		Adj:         make([]VID, 0, len(c.Adj)),
	}
	if c.Weights != nil {
		out.Weights = make([]float32, 0, len(c.Weights))
	}
	for v := 0; v < c.NumVertices; v++ {
		lo, hi := c.Offsets[v], c.Offsets[v+1]
		var prev VID
		first := true
		for i := lo; i < hi; i++ {
			u := c.Adj[i]
			if !first && u == prev {
				if c.Weights != nil {
					if w := c.Weights[i]; w < out.Weights[len(out.Weights)-1] {
						out.Weights[len(out.Weights)-1] = w
					}
				}
				continue
			}
			out.Adj = append(out.Adj, u)
			if c.Weights != nil {
				out.Weights = append(out.Weights, c.Weights[i])
			}
			prev, first = u, false
		}
		out.Offsets[v+1] = int64(len(out.Adj))
	}
	return out
}

// Transpose returns the reverse-adjacency CSR (in-neighbors) using the
// same atomic-free histogram/scan/reserved-scatter scheme as BuildCSR,
// with workers owning contiguous source-vertex ranges. The transpose
// adjacency order is deterministic up to worker count; engines that
// depend on order (bottom-up BFS takes the first match) sort it.
func Transpose(c *CSR, workers int) *CSR {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := c.NumVertices
	if len(c.Adj) < buildSerialCutoff {
		workers = 1
	}
	pool := parallel.Default()
	block := (n + workers - 1) / workers
	rowRange := func(worker int) (int, int) {
		lo := worker * block
		hi := lo + block
		if lo > n {
			lo = n
		}
		if hi > n {
			hi = n
		}
		return lo, hi
	}

	hist := make([][]int32, workers)
	pool.Run(workers, func(worker int) {
		h := make([]int32, n)
		lo, hi := rowRange(worker)
		for i := c.Offsets[lo]; i < c.Offsets[hi]; i++ {
			h[c.Adj[i]]++
		}
		hist[worker] = h
	})

	offsets := make([]int64, n+1)
	parallel.For(pool, workers, n, 4096, parallel.Static, func(lo, hi, chunk, worker int) {
		for v := lo; v < hi; v++ {
			var run int32
			for k := 0; k < workers; k++ {
				d := hist[k][v]
				hist[k][v] = run
				run += d
			}
			offsets[v] = int64(run)
		}
	})
	parallel.ScanInt64(pool, workers, offsets)

	t := &CSR{
		NumVertices: n,
		Offsets:     offsets,
		Adj:         make([]VID, len(c.Adj)),
	}
	if c.Weights != nil {
		t.Weights = make([]float32, len(c.Weights))
	}
	pool.Run(workers, func(worker int) {
		rel := hist[worker]
		lo, hi := rowRange(worker)
		for v := lo; v < hi; v++ {
			for i := c.Offsets[v]; i < c.Offsets[v+1]; i++ {
				u := c.Adj[i]
				p := offsets[u] + int64(rel[u])
				rel[u]++
				t.Adj[p] = VID(v)
				if c.Weights != nil {
					t.Weights[p] = c.Weights[i]
				}
			}
		}
	})
	return t
}
