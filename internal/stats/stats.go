// Package stats provides the statistical summaries the paper's R
// scripts computed: five-number box-plot summaries, means and
// relative standard deviations, and the parallel speedup/efficiency
// series of Figs. 5 and 6.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// FiveNum is a box-plot summary.
type FiveNum struct {
	Min, Q1, Median, Q3, Max float64
	N                        int
}

// Summarize computes the five-number summary of xs. It panics on an
// empty input (callers always have at least one trial).
func Summarize(xs []float64) FiveNum {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return FiveNum{
		Min:    s[0],
		Q1:     quantile(s, 0.25),
		Median: quantile(s, 0.5),
		Q3:     quantile(s, 0.75),
		Max:    s[len(s)-1],
		N:      len(s),
	}
}

// quantile interpolates the q-quantile of sorted data (R type-7).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	h := q * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return sorted[lo]
	}
	// Overflow-safe interpolation: sorted[hi]-sorted[lo] can exceed
	// MaxFloat64 for extreme samples.
	f := h - float64(lo)
	return (1-f)*sorted[lo] + f*sorted[hi]
}

// IQR returns the interquartile range.
func (f FiveNum) IQR() float64 { return f.Q3 - f.Q1 }

// String renders the summary compactly.
func (f FiveNum) String() string {
	return fmt.Sprintf("min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g (n=%d)",
		f.Min, f.Q1, f.Median, f.Q3, f.Max, f.N)
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// RelStdDev returns the coefficient of variation (the paper compares
// the relative standard deviations of PageRank and SSSP runtimes).
func RelStdDev(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// ScalingPoint is one thread count in a strong-scaling series.
type ScalingPoint struct {
	Threads    int
	Seconds    float64
	Speedup    float64 // T1/Tn
	Efficiency float64 // T1/(n*Tn)
}

// Scaling derives speedup and efficiency from (threads, seconds)
// measurements, using the 1-thread entry as the baseline (Fig. 5 and
// Fig. 6). The input need not be sorted; the output is, by threads.
// An error is returned if no 1-thread baseline is present.
func Scaling(times map[int]float64) ([]ScalingPoint, error) {
	t1, ok := times[1]
	if !ok {
		return nil, fmt.Errorf("stats: scaling series needs a 1-thread baseline")
	}
	if t1 <= 0 {
		return nil, fmt.Errorf("stats: non-positive baseline time %v", t1)
	}
	pts := make([]ScalingPoint, 0, len(times))
	for n, tn := range times {
		if n < 1 || tn <= 0 {
			return nil, fmt.Errorf("stats: invalid scaling point (%d, %v)", n, tn)
		}
		pts = append(pts, ScalingPoint{
			Threads:    n,
			Seconds:    tn,
			Speedup:    t1 / tn,
			Efficiency: t1 / (float64(n) * tn),
		})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Threads < pts[j].Threads })
	return pts, nil
}
