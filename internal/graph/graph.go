package graph

import (
	"fmt"
	"sort"
)

// VID is a vertex identifier. 32 bits covers graphs up to scale 31,
// well beyond this study's scale 23, and halves memory traffic
// relative to int64 — the same choice the Graph500 reference makes.
type VID = uint32

// Edge is one directed edge with an optional weight. For unweighted
// graphs W is zero and ignored.
type Edge struct {
	Src, Dst VID
	W        float32
}

// EdgeList is the unstructured, unsorted edge list from which every
// engine constructs its own data structure. It mirrors the "edge list
// in RAM" that Graph500 Kernel 1 consumes.
type EdgeList struct {
	NumVertices int
	Edges       []Edge
	Weighted    bool
	// Directed reports whether edges are one-way. Kronecker graphs
	// are undirected (each edge yields both CSR directions);
	// cit-Patents is directed.
	Directed bool
}

// Validate checks internal consistency and returns a descriptive error
// for the first violation found.
func (el *EdgeList) Validate() error {
	if el.NumVertices <= 0 {
		return fmt.Errorf("graph: non-positive vertex count %d", el.NumVertices)
	}
	n := VID(el.NumVertices)
	for i, e := range el.Edges {
		if e.Src >= n || e.Dst >= n {
			return fmt.Errorf("graph: edge %d (%d->%d) out of range [0,%d)", i, e.Src, e.Dst, n)
		}
		if el.Weighted && (e.W <= 0 || e.W > 1) {
			return fmt.Errorf("graph: edge %d weight %v outside (0,1]", i, e.W)
		}
	}
	return nil
}

// CSR is a compressed sparse row adjacency structure. Row i's
// neighbors are Adj[Offsets[i]:Offsets[i+1]]; when the graph is
// weighted, Weights runs parallel to Adj.
//
// For undirected graphs each input edge appears in both directions.
// Self-loops are dropped at construction (as in the Graph500
// reference); duplicate edges are kept unless the builder is asked to
// deduplicate.
type CSR struct {
	NumVertices int
	Offsets     []int64 // len NumVertices+1
	Adj         []VID
	Weights     []float32 // nil when unweighted
}

// NumEdges returns the number of stored directed adjacency entries.
func (c *CSR) NumEdges() int64 { return int64(len(c.Adj)) }

// Degree returns the out-degree of v.
func (c *CSR) Degree(v VID) int64 {
	return c.Offsets[v+1] - c.Offsets[v]
}

// Neighbors returns the adjacency slice of v. The caller must not
// modify it.
func (c *CSR) Neighbors(v VID) []VID {
	return c.Adj[c.Offsets[v]:c.Offsets[v+1]]
}

// NeighborWeights returns the weight slice parallel to Neighbors(v).
// It returns nil for unweighted graphs.
func (c *CSR) NeighborWeights(v VID) []float32 {
	if c.Weights == nil {
		return nil
	}
	return c.Weights[c.Offsets[v]:c.Offsets[v+1]]
}

// Validate checks the structural invariants of the CSR.
func (c *CSR) Validate() error {
	if c.NumVertices < 0 {
		return fmt.Errorf("graph: negative vertex count")
	}
	if len(c.Offsets) != c.NumVertices+1 {
		return fmt.Errorf("graph: offsets length %d, want %d", len(c.Offsets), c.NumVertices+1)
	}
	if c.Offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", c.Offsets[0])
	}
	for i := 0; i < c.NumVertices; i++ {
		if c.Offsets[i] > c.Offsets[i+1] {
			return fmt.Errorf("graph: offsets not monotone at %d", i)
		}
	}
	if c.Offsets[c.NumVertices] != int64(len(c.Adj)) {
		return fmt.Errorf("graph: offsets end %d, adj length %d", c.Offsets[c.NumVertices], len(c.Adj))
	}
	if c.Weights != nil && len(c.Weights) != len(c.Adj) {
		return fmt.Errorf("graph: weights length %d, adj length %d", len(c.Weights), len(c.Adj))
	}
	n := VID(c.NumVertices)
	for i, v := range c.Adj {
		if v >= n {
			return fmt.Errorf("graph: adj[%d] = %d out of range", i, v)
		}
	}
	return nil
}

// vidSorter sorts a neighbor slice ascending through sort.Sort. A
// concrete type with pointer receivers keeps the hot builder path free
// of allocations: sort.Slice allocated a closure plus reflect swapper
// per vertex, while a hoisted *vidSorter boxes into sort.Interface
// once per SortAdjacency call.
type vidSorter []VID

func (s *vidSorter) Len() int           { return len(*s) }
func (s *vidSorter) Less(i, j int) bool { return (*s)[i] < (*s)[j] }
func (s *vidSorter) Swap(i, j int)      { (*s)[i], (*s)[j] = (*s)[j], (*s)[i] }

// adjWeightSorter sorts a neighbor slice and its parallel weight slice
// together, in place, ordered by (neighbor, weight). Ordering ties by
// weight keeps the layout a pure function of the pair multiset;
// dedupCSR's min-weight rule is indifferent to it.
type adjWeightSorter struct {
	adj []VID
	w   []float32
}

func (s *adjWeightSorter) Len() int { return len(s.adj) }
func (s *adjWeightSorter) Less(i, j int) bool {
	if s.adj[i] != s.adj[j] {
		return s.adj[i] < s.adj[j]
	}
	return s.w[i] < s.w[j]
}
func (s *adjWeightSorter) Swap(i, j int) {
	s.adj[i], s.adj[j] = s.adj[j], s.adj[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}

// SortAdjacency sorts each vertex's neighbor list ascending (weights
// permuted alongside, ties ordered by weight). Sorted adjacency
// improves locality, is required by the LCC intersection kernels, and
// is a precondition of CompressCSR's unsigned gap encoding. Both
// branches sort in place through concrete sort.Sort types — no
// per-vertex index, scratch, or closure allocations.
func (c *CSR) SortAdjacency() {
	var vs vidSorter
	var ps adjWeightSorter
	for v := 0; v < c.NumVertices; v++ {
		lo, hi := c.Offsets[v], c.Offsets[v+1]
		if hi-lo < 2 {
			continue
		}
		adj := c.Adj[lo:hi]
		if c.Weights == nil {
			vs = adj
			sort.Sort(&vs)
			continue
		}
		ps.adj, ps.w = adj, c.Weights[lo:hi]
		sort.Sort(&ps)
	}
}

// HasEdge reports whether u has v in its sorted adjacency list. The
// adjacency must have been sorted with SortAdjacency.
func (c *CSR) HasEdge(u, v VID) bool {
	adj := c.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// OutDegrees returns the out-degree of every vertex.
func (c *CSR) OutDegrees() []int64 {
	d := make([]int64, c.NumVertices)
	for v := 0; v < c.NumVertices; v++ {
		d[v] = c.Offsets[v+1] - c.Offsets[v]
	}
	return d
}
