package server

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/engines/gap"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// errDeadline is the cancellation cause when a query's modeled budget
// runs out; kernels return it wrapped (e.g. "gap: BFS canceled: ...").
var errDeadline = errors.New("server: deadline budget exhausted")

// Modeled costs of the serving-only paths. Traversal kernels charge
// through their engines; these cover the O(1) lookups and the k-hop
// walk, so every query kind has a nonzero modeled service time.
var (
	costVectorLookup = simmachine.Cost{Cycles: 200, Bytes: 64}
	costSketchProbe  = simmachine.Cost{Cycles: 40, Bytes: 16} // per landmark
	costKHopVertex   = simmachine.Cost{Cycles: 4, Bytes: 8}
	costKHopEdge     = simmachine.Cost{Cycles: 6, Bytes: 10}
)

// executor owns one engine instance bound to one simmachine and
// serves queries one at a time — the Machine is not concurrent-safe,
// so an executor is never shared between in-flight queries. The
// served engine is GAP with synchronous SSSP forced on: the chaotic
// default's modeled durations are schedule-dependent, and serving
// times must be a pure function of query content for the
// deterministic study (and for comparable live latencies).
type executor struct {
	id       int
	m        *simmachine.Machine
	inst     engines.Instance
	canceler engines.CancelSetter
	streamer engines.Streamer
	// csr is the adjacency the serving-only paths (k-hop) traverse.
	// It starts as the shared homogenized CSR and is rebound to the
	// instance's current epoch after each applied mutation batch.
	csr      *graph.CSR
	weighted bool
	// gen counts the server batch-log entries this executor's instance
	// has applied; executors sync lazily when they dequeue work.
	gen int
}

// newExecutor loads el into a fresh GAP instance on its own machine.
func newExecutor(id int, el *graph.EdgeList, csr *graph.CSR, threads int, compress bool) (*executor, error) {
	eng := gap.New()
	engines.Configure(eng, engines.Options{SyncSSSP: true, Compress: compress})
	m := simmachine.New(simmachine.Haswell72(), threads)
	inst, err := eng.Load(el, m)
	if err != nil {
		return nil, fmt.Errorf("server: executor %d load: %w", id, err)
	}
	inst.BuildStructure()
	canceler, ok := inst.(engines.CancelSetter)
	if !ok {
		return nil, fmt.Errorf("server: engine instance lacks cancellation support")
	}
	streamer, ok := inst.(engines.Streamer)
	if !ok {
		return nil, fmt.Errorf("server: engine instance lacks streaming-mutation support")
	}
	return &executor{
		id:       id,
		m:        m,
		inst:     inst,
		canceler: canceler,
		streamer: streamer,
		csr:      csr,
		weighted: el.Weighted,
	}, nil
}

// outCSR returns the instance's current adjacency epoch, for rebinding
// e.csr after mutations.
func (e *executor) outCSR() *graph.CSR {
	if gi, ok := e.inst.(*gap.Instance); ok {
		return gi.OutCSR()
	}
	return e.csr
}

// vectors are the precomputed, refreshable lookup answers.
type vectors struct {
	pr  []float64
	wcc []graph.VID
}

// computeVectors (re)derives the PR/WCC vectors on this executor's
// instance through the incremental maintainers: the first call records
// a full baseline, later calls re-converge only from the mutations
// applied since — bit-equal to a full recompute either way, but a
// refresh or mutate swap never re-pays structure construction.
// Startup/refresh/mutate work: charged to the machine like any kernel,
// but never part of a query's budget.
func (e *executor) computeVectors() (vectors, error) {
	pr, err := e.streamer.IncrementalPageRank(engines.DefaultPROpts())
	if err != nil {
		return vectors{}, fmt.Errorf("server: pagerank precompute: %w", err)
	}
	wcc, err := e.streamer.IncrementalWCC()
	if err != nil {
		return vectors{}, fmt.Errorf("server: wcc precompute: %w", err)
	}
	return vectors{pr: pr.Rank, wcc: wcc.Component}, nil
}

// run serves one query. degraded selects the sketch path for
// degradable ops; ctx (nil in the virtual-time simulation) adds live
// client-cancellation to the deadline hook. Panics anywhere below —
// engine kernels included; internal/parallel re-raises worker panics
// on this goroutine — are recovered into a StatusPanic response, so a
// poisoned query costs one response, not the daemon.
func (e *executor) run(ctx context.Context, q Query, budget float64, degraded bool, vec vectors, sketch *Sketch) (resp Response) {
	resp = Response{Op: q.Op, Source: q.Source, Target: q.Target, Status: StatusOK}
	_, start := e.m.Mark()
	defer func() {
		if r := recover(); r != nil {
			resp.Status = StatusPanic
			resp.Err = fmt.Sprintf("recovered panic: %v", r)
		}
		_, end := e.m.Mark()
		resp.ModeledSec = end - start
	}()

	deadline := func() error {
		if budget > 0 && e.m.Elapsed()-start > budget {
			return errDeadline
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		return nil
	}
	e.canceler.SetCancel(deadline)
	defer e.canceler.SetCancel(nil)

	if degraded && q.degradable(e.weighted) {
		e.m.Serial(func(w *simmachine.W) {
			w.Charge(costSketchProbe.Scale(float64(sketch.lookups() + 1)))
		})
		resp.Degraded = true
		switch q.Op {
		case OpBFS:
			resp.Value = sketch.EstimateHops(q.Source, q.Target)
		case OpSSSP:
			resp.Value = sketch.EstimateDist(q.Source, q.Target)
		}
		return resp
	}

	var err error
	switch q.Op {
	case OpBFS:
		var r *engines.BFSResult
		if r, err = e.inst.BFS(q.Source); err == nil {
			resp.Value = float64(r.Depth[q.Target])
		}
	case OpSSSP:
		var r *engines.SSSPResult
		if r, err = e.inst.SSSP(q.Source); err == nil {
			if d := r.Dist[q.Target]; math.IsInf(d, 1) {
				resp.Value = -1
			} else {
				resp.Value = d
			}
		}
	case OpPR:
		e.m.Serial(func(w *simmachine.W) { w.Charge(costVectorLookup) })
		resp.Value = vec.pr[q.Source]
	case OpWCC:
		e.m.Serial(func(w *simmachine.W) { w.Charge(costVectorLookup.Scale(2)) })
		if vec.wcc[q.Source] == vec.wcc[q.Target] {
			resp.Value = 1
		}
	case OpKHop:
		resp.Value, err = e.khop(q.Source, q.K, deadline)
	case OpPanic:
		panic("injected fault (op=panic)")
	default:
		err = fmt.Errorf("unknown op %q", q.Op)
	}
	if err != nil {
		if errors.Is(err, errDeadline) || errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded) {
			resp.Status = StatusDeadline
		} else {
			resp.Status = StatusError
		}
		resp.Err = err.Error()
	}
	return resp
}

// khop counts vertices within k hops of src with a serial truncated
// BFS on the homogenized CSR, charging per vertex and edge touched.
// The deadline hook is polled once per level, matching the engines'
// frontier granularity.
func (e *executor) khop(src graph.VID, k int, deadline func() error) (float64, error) {
	seen := make(map[graph.VID]bool, 64)
	seen[src] = true
	frontier := []graph.VID{src}
	count := 1
	for level := 0; level < k && len(frontier) > 0; level++ {
		if err := deadline(); err != nil {
			return 0, fmt.Errorf("khop canceled at level %d: %w", level, err)
		}
		var next []graph.VID
		var edges int
		for _, v := range frontier {
			for _, u := range e.csr.Neighbors(v) {
				edges++
				if !seen[u] {
					seen[u] = true
					next = append(next, u)
					count++
				}
			}
		}
		e.m.Serial(func(w *simmachine.W) {
			w.Charge(costKHopVertex.Scale(float64(len(frontier))))
			w.Charge(costKHopEdge.Scale(float64(edges)))
		})
		frontier = next
	}
	return float64(count), nil
}
