package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func startHTTP(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := startServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(10 * time.Microsecond)
	}
}

func TestHTTPQuery(t *testing.T) {
	s, ts := startHTTP(t, Config{Executors: 1})
	var r Response
	if code := getJSON(t, ts.URL+"/query?op=bfs&src=0&dst=9", &r); code != 200 {
		t.Fatalf("bfs query: HTTP %d", code)
	}
	if r.Status != StatusOK || r.ModeledSec <= 0 {
		t.Fatalf("bfs response: %+v", r)
	}
	if r.Value < 0 || int(r.Value) >= s.NumVertices() {
		t.Fatalf("bfs depth %v out of range", r.Value)
	}
}

func TestHTTPValidation(t *testing.T) {
	_, ts := startHTTP(t, Config{Executors: 1})
	for _, tc := range []struct {
		path string
		code int
	}{
		{"/query?op=bfs&src=0&dst=9", 200},
		{"/query?op=pr&src=1", 200},
		{"/query?op=khop&src=0&k=2", 200},
		{"/query?op=nope&src=0", 400},     // unknown op
		{"/query?op=bfs&src=banana", 400}, // unparsable src
		{"/query?op=bfs&src=999999", 400}, // out of range
		{"/query?op=khop&src=0&k=-3", 400},
		{"/query?op=panic", 400}, // fault injection off
		{"/query?op=bfs&src=0&dst=1&deadline_ms=bad", 400},
		{"/healthz", 200},
		{"/metrics", 200},
	} {
		if code := getJSON(t, ts.URL+tc.path, nil); code != tc.code {
			t.Errorf("%s: HTTP %d, want %d", tc.path, code, tc.code)
		}
	}
}

func TestHTTPDeadline504(t *testing.T) {
	_, ts := startHTTP(t, Config{Executors: 1})
	var e apiError
	code := getJSON(t, ts.URL+"/query?op=bfs&src=0&dst=1&deadline_ms=0.000001", &e)
	if code != 504 || e.Code != codeDeadline {
		t.Fatalf("tiny deadline: HTTP %d code %q, want 504 %q", code, e.Code, codeDeadline)
	}
	if e.Message == "" {
		t.Error("504 without message")
	}
}

func TestHTTPPanic500(t *testing.T) {
	_, ts := startHTTP(t, Config{Executors: 1, FaultInjection: true})
	var e apiError
	code := getJSON(t, ts.URL+"/query?op=panic", &e)
	if code != 500 || e.Code != codePanic {
		t.Fatalf("injected panic: HTTP %d code %q, want 500 %q", code, e.Code, codePanic)
	}
}

// Every endpoint answers identically on its /v1 path and its legacy
// alias, and non-200s carry the structured error body on both.
func TestHTTPV1Aliases(t *testing.T) {
	_, ts := startHTTP(t, Config{Executors: 1})
	for _, prefix := range []string{"", "/v1"} {
		if code := getJSON(t, ts.URL+prefix+"/query?op=pr&src=1", nil); code != 200 {
			t.Errorf("%s/query: HTTP %d", prefix, code)
		}
		if code := getJSON(t, ts.URL+prefix+"/healthz", nil); code != 200 {
			t.Errorf("%s/healthz: HTTP %d", prefix, code)
		}
		if code := getJSON(t, ts.URL+prefix+"/metrics", nil); code != 200 {
			t.Errorf("%s/metrics: HTTP %d", prefix, code)
		}
		var e apiError
		if code := getJSON(t, ts.URL+prefix+"/query?op=nope&src=0", &e); code != 400 || e.Code != codeInvalidQuery {
			t.Errorf("%s/query bad op: HTTP %d code %q, want 400 %q", prefix, code, e.Code, codeInvalidQuery)
		}
		if code := getJSON(t, ts.URL+prefix+"/refresh", &e); code != 405 || e.Code != codeMethodNotAllowed {
			t.Errorf("GET %s/refresh: HTTP %d code %q, want 405 %q", prefix, code, e.Code, codeMethodNotAllowed)
		}
		if code := getJSON(t, ts.URL+prefix+"/mutate", &e); code != 405 || e.Code != codeMethodNotAllowed {
			t.Errorf("GET %s/mutate: HTTP %d code %q, want 405 %q", prefix, code, e.Code, codeMethodNotAllowed)
		}
	}
}

// TestHTTPShed429 wedges the lone executor (gate-blocked query log)
// and then overflows the cap-1 queue over HTTP: the overflow request
// must come back 429 with a Retry-After header.
func TestHTTPShed429(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	openGate := func() { once.Do(func() { close(gate) }) }
	s, err := NewFromEdgeList(testEdgeList(t), Config{
		Executors: 1,
		Admit:     AdmitConfig{QueueCap: 1, DegradeWatermark: 1},
		QueryLog:  &gateWriter{gate: gate},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	defer openGate() // unwedge before Close on every exit path
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bgGet := func(path string) chan struct{} {
		done := make(chan struct{})
		go func() {
			defer close(done)
			if resp, err := http.Get(ts.URL + path); err == nil {
				resp.Body.Close()
			}
		}()
		return done
	}
	// Wedge query: admitted, dequeued (depth back to 0), held at the gate.
	wedged := bgGet("/query?op=bfs&src=0&dst=1")
	waitUntil(t, func() bool { return s.Metrics().Admitted == 1 && s.QueueDepth() == 0 })
	// Fill the cap-1 queue: admission bumps depth to 1 synchronously.
	fill := bgGet("/query?op=bfs&src=2&dst=1")
	waitUntil(t, func() bool { return s.Metrics().Admitted == 2 })

	// The overflow request sheds, but its response is written only
	// after logShed gets logMu — which the wedged executor holds — so
	// collect it in the background, wait on the counter (bumped before
	// logging), and only then open the gate.
	shedResp := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/query?op=bfs&src=3&dst=1")
		if err != nil {
			t.Error(err)
			shedResp <- nil
			return
		}
		shedResp <- resp
	}()
	waitUntil(t, func() bool { return s.Metrics().ShedQueueFull == 1 })
	openGate()
	resp := <-shedResp
	if resp == nil {
		t.FailNow()
	}
	defer resp.Body.Close()
	if resp.StatusCode != 429 {
		t.Fatalf("flooded query: HTTP %d, want 429", resp.StatusCode)
	}
	// The Retry-After header and the structured body's hint must agree
	// (header in whole seconds, body in milliseconds).
	var e apiError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != codeShed || e.RetryAfterMS != shedRetryAfterMS {
		t.Errorf("429 body %+v, want code %q retry_after_ms %d", e, codeShed, shedRetryAfterMS)
	}
	if ra := resp.Header.Get("Retry-After"); ra != strconv.Itoa(shedRetryAfterMS/1000) {
		t.Errorf("Retry-After header %q disagrees with body hint %dms", ra, shedRetryAfterMS)
	}
	<-wedged
	<-fill
	var m MetricsSnapshot
	if code := getJSON(t, ts.URL+"/metrics", &m); code != 200 {
		t.Fatalf("metrics: HTTP %d", code)
	}
	if m.ShedQueueFull != 1 {
		t.Errorf("shed counter %d, want 1", m.ShedQueueFull)
	}
}

func TestHTTPMetricsShape(t *testing.T) {
	_, ts := startHTTP(t, Config{Executors: 1})
	getJSON(t, ts.URL+"/query?op=bfs&src=0&dst=9", nil)
	var m struct {
		MetricsSnapshot
		QueueDepth    int `json:"queue_depth"`
		MaxQueueDepth int `json:"max_queue_depth"`
	}
	if code := getJSON(t, ts.URL+"/metrics", &m); code != 200 {
		t.Fatalf("metrics: HTTP %d", code)
	}
	if m.Offered != 1 || m.Completed != 1 {
		t.Errorf("metrics after one query: %+v", m)
	}
}

func TestHTTPRefresh(t *testing.T) {
	_, ts := startHTTP(t, Config{Executors: 1})
	resp, err := http.Post(ts.URL+"/refresh", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("refresh: HTTP %d", resp.StatusCode)
	}
	if code := getJSON(t, ts.URL+"/refresh", nil); code != 405 {
		t.Fatalf("GET /refresh: HTTP %d, want 405", code)
	}
}
