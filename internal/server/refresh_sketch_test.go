package server

import (
	"context"
	"sync"
	"testing"
	"time"
)

// resettableGate is a gateWriter whose gate can be re-armed between
// wedge cycles: a nil gate passes writes through, a live channel
// blocks them until closed.
type resettableGate struct {
	mu   sync.Mutex
	gate chan struct{}
}

func (w *resettableGate) Write(p []byte) (int, error) {
	w.mu.Lock()
	g := w.gate
	w.mu.Unlock()
	if g != nil {
		<-g
	}
	return len(p), nil
}

func (w *resettableGate) set(g chan struct{}) {
	w.mu.Lock()
	w.gate = g
	w.mu.Unlock()
}

// TestRefreshRebuildsDegradationSketch is the regression wall for the
// stale-sketch refresh bug: POST /refresh used to swap the
// precomputed vectors but keep the startup degradation sketch, so
// degraded BFS/SSSP answers after a refresh came from stale state.
// The test forces a degraded answer (wedge the lone executor, queue a
// filler so the probe is admitted at depth >= DegradeWatermark),
// refreshes, and asserts the sketch generation advanced, the snapshot
// hands out a different sketch object, and post-refresh degraded
// answers still match an independently built sketch.
func TestRefreshRebuildsDegradationSketch(t *testing.T) {
	w := &resettableGate{}
	s, err := NewFromEdgeList(testEdgeList(t), Config{
		Executors: 1,
		Admit:     AdmitConfig{QueueCap: 4, DegradeWatermark: 1},
		QueryLog:  w,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	const probeSrc, probeDst = 5, 11

	// degradedAnswer wedges the executor inside its log write, queues a
	// filler (admitted at depth 0: normal) and then the probe (admitted
	// at depth 1 >= watermark 1: degraded), unwedges, and returns the
	// probe's response. Admission decisions are made while the executor
	// provably cannot dequeue, so the degraded marking is deterministic.
	degradedAnswer := func() Response {
		gate := make(chan struct{})
		w.set(gate)
		base := s.Metrics().Admitted
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Submit(ctx, Query{Op: OpBFS, Source: 9, Target: 0})
		}()
		deadline := time.Now().Add(5 * time.Second)
		for s.Metrics().Admitted != base+1 || s.QueueDepth() != 0 {
			if time.Now().After(deadline) {
				t.Fatal("executor never picked up the wedge query")
			}
			time.Sleep(10 * time.Microsecond)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Submit(ctx, Query{Op: OpBFS, Source: 1, Target: 2})
		}()
		for s.QueueDepth() != 1 {
			if time.Now().After(deadline) {
				t.Fatal("filler query never queued")
			}
			time.Sleep(10 * time.Microsecond)
		}
		var probe Response
		wg.Add(1)
		go func() {
			defer wg.Done()
			probe = s.Submit(ctx, Query{Op: OpBFS, Source: probeSrc, Target: probeDst})
		}()
		for s.QueueDepth() != 2 {
			if time.Now().After(deadline) {
				t.Fatal("probe query never queued")
			}
			time.Sleep(10 * time.Microsecond)
		}
		close(gate)
		w.set(nil)
		wg.Wait()
		return probe
	}

	// An independently built sketch over the server's own CSR is the
	// ground truth both before and after refresh (the rebuild is
	// deterministic, so both generations must agree with it).
	want := BuildSketch(s.csr, s.cfg.Landmarks).EstimateHops(probeSrc, probeDst)

	before := degradedAnswer()
	if before.Status != StatusOK || !before.Degraded {
		t.Fatalf("pre-refresh probe not served degraded: %+v", before)
	}
	if before.Value != want {
		t.Fatalf("pre-refresh degraded answer %v, want sketch estimate %v", before.Value, want)
	}
	if gen := s.SketchGeneration(); gen != 1 {
		t.Fatalf("startup sketch generation %d, want 1", gen)
	}
	_, sk1 := s.snapshot()

	if err := s.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	if gen := s.SketchGeneration(); gen != 2 {
		t.Fatalf("post-refresh sketch generation %d, want 2 (sketch not rebuilt)", gen)
	}
	_, sk2 := s.snapshot()
	if sk1 == sk2 {
		t.Fatal("refresh kept serving the startup sketch object")
	}

	after := degradedAnswer()
	if after.Status != StatusOK || !after.Degraded {
		t.Fatalf("post-refresh probe not served degraded: %+v", after)
	}
	if after.Value != want {
		t.Fatalf("post-refresh degraded answer %v, want rebuilt-sketch estimate %v", after.Value, want)
	}
}
