package graph

import "math/bits"

// MaxVertexCutShards bounds the vertex-cut width: per-vertex replica
// sets are one 64-bit mask.
const MaxVertexCutShards = 64

// VertexCutStats summarizes a greedy vertex-cut partition of a CSR's
// directed adjacency: which shards replicate each vertex, how many
// edges each shard carries, and the aggregate replica count (the ghost
// synchronization volume of a PowerGraph-style engine).
type VertexCutStats struct {
	Shards   int
	Replicas []uint64 // per-vertex shard mask
	Loads    []int64  // edges placed per shard
	TotalRep int64    // sum of popcounts over Replicas
}

// GreedyVertexCut partitions the directed adjacency of c into at most
// MaxVertexCutShards shards with PowerGraph's greedy streaming
// heuristic: each edge goes to the least-loaded shard already holding
// one of its endpoints (or the globally least-loaded shard when
// neither endpoint is placed yet), replicating both endpoints there.
// Edges stream in canonical order — source vertex ascending, adjacency
// order within each source — so the cut is a pure function of (c,
// shards). assign, when non-nil, is called once per edge with the
// chosen shard; engines use it to materialize per-shard edge lists,
// while modeling-only callers (the cluster partitioner) pass nil and
// keep just the stats.
func GreedyVertexCut(c *CSR, shards int, assign func(src, dst VID, w float32, shard int)) *VertexCutStats {
	if shards > MaxVertexCutShards {
		shards = MaxVertexCutShards
	}
	if shards < 1 {
		shards = 1
	}
	st := &VertexCutStats{
		Shards:   shards,
		Replicas: make([]uint64, c.NumVertices),
		Loads:    make([]int64, shards),
	}
	place := func(src, dst VID, w float32) {
		cand := st.Replicas[src] | st.Replicas[dst]
		best := -1
		var bestLoad int64
		if cand != 0 {
			for mask := cand; mask != 0; mask &= mask - 1 {
				s := bits.TrailingZeros64(mask)
				if best == -1 || st.Loads[s] < bestLoad {
					best, bestLoad = s, st.Loads[s]
				}
			}
		} else {
			for s := 0; s < shards; s++ {
				if best == -1 || st.Loads[s] < bestLoad {
					best, bestLoad = s, st.Loads[s]
				}
			}
		}
		if assign != nil {
			assign(src, dst, w, best)
		}
		st.Loads[best]++
		st.Replicas[src] |= 1 << uint(best)
		st.Replicas[dst] |= 1 << uint(best)
	}
	for v := 0; v < c.NumVertices; v++ {
		adj := c.Neighbors(VID(v))
		ws := c.NeighborWeights(VID(v))
		for i, u := range adj {
			var w float32
			if ws != nil {
				w = ws[i]
			}
			place(VID(v), u, w)
		}
	}
	for _, mask := range st.Replicas {
		st.TotalRep += int64(bits.OnesCount64(mask))
	}
	return st
}

// ReplicationFactor returns the average number of shards holding each
// non-isolated vertex — the classic vertex-cut quality metric.
func (st *VertexCutStats) ReplicationFactor() float64 {
	present := 0
	for _, mask := range st.Replicas {
		if mask != 0 {
			present++
		}
	}
	if present == 0 {
		return 0
	}
	return float64(st.TotalRep) / float64(present)
}

// Owners derives a per-vertex home assignment from the cut: each
// replicated vertex lives on its lowest replica shard (the
// deterministic master), and isolated vertices fall back to the
// blocked 1D assignment so every vertex has exactly one home. This is
// the 2D ("vertex-cut") owner table the modeled cluster partitioner
// hands to simmachine.SetCluster.
func (st *VertexCutStats) Owners() []int16 {
	n := len(st.Replicas)
	owners := make([]int16, n)
	for v, mask := range st.Replicas {
		if mask != 0 {
			owners[v] = int16(bits.TrailingZeros64(mask))
		} else {
			owners[v] = int16(v * st.Shards / n)
		}
	}
	return owners
}
