package report

import (
	"bufio"
	"fmt"
	"io"
)

// StreamStudyRow is one cell of the streaming-mutation study: one
// mutation batch applied to one (algorithm, batch size, delete
// fraction) configuration, with the modeled cost of the incremental
// path — applying the batch to the resident structures (MutateSec)
// plus re-converging the result from the previous vector
// (MaintainSec) — against the displaced alternative, a rebuild plus
// cold recompute on the post-batch graph (RecomputeSec), measured on
// an identically-configured fresh machine. Speedup is
// RecomputeSec / (MutateSec + MaintainSec), the figure's y-axis: how
// many times cheaper maintaining the answer is than recomputing it,
// per batch geometry. Everything is modeled (wall-clock-free and
// host-independent), and the incremental result is conformance-walled
// bit-equal to the recompute inside the harness, so the table is
// bit-identical across runs, hosts, and worker counts — an
// exact-match diff is a valid CI gate.
type StreamStudyRow struct {
	Dataset      string
	Alg          string
	BatchSize    int
	DeleteFrac   float64
	Batch        int // 1-based batch index within the stream
	Iterations   int // incremental PR iterations (0 for WCC)
	MutateSec    float64
	MaintainSec  float64
	RecomputeSec float64
	Speedup      float64
}

// StreamStudyCSVHeader is the column layout of WriteStreamStudyCSV.
const StreamStudyCSVHeader = "dataset,alg,batch_size,delete_frac,batch,iterations,mutate_s,maintain_s,recompute_s,speedup"

// WriteStreamStudyCSV writes the streaming study as CSV for external
// plotting, one row per (algorithm, batch size, delete fraction,
// batch index).
func WriteStreamStudyCSV(w io.Writer, rows []StreamStudyRow) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, StreamStudyCSVHeader)
	for _, r := range rows {
		fmt.Fprintf(bw, "%s,%s,%d,%s,%d,%d,%s,%s,%s,%s\n",
			r.Dataset, r.Alg, r.BatchSize, csvFloat(r.DeleteFrac), r.Batch, r.Iterations,
			csvFloat(r.MutateSec), csvFloat(r.MaintainSec), csvFloat(r.RecomputeSec),
			csvFloat(r.Speedup))
	}
	return bw.Flush()
}

// StreamStudyTable renders the same rows as an aligned text table, the
// quick-look companion to the CSV.
func StreamStudyTable(w io.Writer, rows []StreamStudyRow) {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset, r.Alg, fmt.Sprint(r.BatchSize), fmt.Sprintf("%.2f", r.DeleteFrac),
			fmt.Sprint(r.Batch), FormatSeconds(r.MutateSec), FormatSeconds(r.MaintainSec),
			FormatSeconds(r.RecomputeSec), fmt.Sprintf("%.1fx", r.Speedup),
		})
	}
	Table(w, "Streaming mutations: incremental maintenance vs. full recompute by batch size and delete fraction",
		[]string{"dataset", "alg", "batch", "del_frac", "#", "mutate", "maintain", "recompute", "speedup"}, out)
}
