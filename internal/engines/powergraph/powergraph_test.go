package powergraph

import (
	"errors"
	"testing"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/kronecker"
	"github.com/hpcl-repro/epg/internal/simmachine"
	"github.com/hpcl-repro/epg/internal/verify"
)

func machine(threads int) *simmachine.Machine {
	return simmachine.New(simmachine.Haswell72(), threads)
}

func TestMetadata(t *testing.T) {
	e := New()
	if e.Name() != "PowerGraph" {
		t.Errorf("name = %q", e.Name())
	}
	if e.SeparateConstruction() {
		t.Error("PowerGraph ingests and partitions while reading")
	}
	if e.Has(engines.BFS) {
		t.Error("PowerGraph provides no BFS reference implementation")
	}
}

func TestBFSUnsupported(t *testing.T) {
	el := kronecker.Generate(kronecker.Params{Scale: 8, Seed: 1})
	inst, err := New().Load(el, machine(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.BFS(0); !errors.Is(err, engines.ErrUnsupported) {
		t.Errorf("BFS err = %v, want ErrUnsupported", err)
	}
}

func TestVertexCutProperties(t *testing.T) {
	el := kronecker.Generate(kronecker.Params{Scale: 10, Seed: 5})
	inst, err := New().Load(el, machine(8))
	if err != nil {
		t.Fatal(err)
	}
	pg := inst.(*Instance)
	// Every directed edge placed exactly once.
	var placed int64
	for _, shard := range pg.shards {
		placed += int64(len(shard))
	}
	if placed != pg.out.NumEdges() {
		t.Errorf("placed %d edges, graph has %d", placed, pg.out.NumEdges())
	}
	// Shard loads balanced within 2x of the mean (greedy cut).
	mean := float64(placed) / float64(len(pg.shards))
	for s, shard := range pg.shards {
		if float64(len(shard)) > 2*mean+64 {
			t.Errorf("shard %d holds %d edges, mean %.0f", s, len(shard), mean)
		}
	}
	// Replication factor: at least 1, and well below the shard
	// count (greedy placement reuses endpoints' shards).
	rf := pg.ReplicationFactor()
	if rf < 1 {
		t.Errorf("replication factor %v < 1", rf)
	}
	if rf > float64(len(pg.shards)) {
		t.Errorf("replication factor %v exceeds shard count %d", rf, len(pg.shards))
	}
}

func TestGreedyCutBeatsWorstCase(t *testing.T) {
	// On a star graph the hub must be replicated, but leaves
	// should not be: replication factor stays near 1.
	n := 512
	el := &graph.EdgeList{NumVertices: n, Directed: true}
	for i := 1; i < n; i++ {
		el.Edges = append(el.Edges, graph.Edge{Src: 0, Dst: graph.VID(i)})
	}
	inst, err := New().Load(el, machine(8))
	if err != nil {
		t.Fatal(err)
	}
	pg := inst.(*Instance)
	if rf := pg.ReplicationFactor(); rf > 1.2 {
		t.Errorf("star-graph replication factor %v, want near 1 (only the hub replicates)", rf)
	}
}

func TestGhostSyncCharged(t *testing.T) {
	el := kronecker.Generate(kronecker.Params{Scale: 9, Seed: 2})
	m := machine(8)
	inst, err := New().Load(el, m)
	if err != nil {
		t.Fatal(err)
	}
	pg := inst.(*Instance)
	before := m.Elapsed()
	pg.syncGhosts()
	if m.Elapsed() <= before {
		t.Error("ghost sync charged no time")
	}
}

func TestSSSPAndWCCCorrect(t *testing.T) {
	el := kronecker.Generate(kronecker.Params{Scale: 9, Seed: 7})
	p := verify.Prepare(el)
	inst, err := New().Load(el, machine(8))
	if err != nil {
		t.Fatal(err)
	}
	var root graph.VID
	for v := 0; v < p.Out.NumVertices; v++ {
		if p.Out.Degree(graph.VID(v)) > 1 {
			root = graph.VID(v)
			break
		}
	}
	sp, err := inst.SSSP(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.ValidateSSSP(p, sp, verify.SSSP(p, root)); err != nil {
		t.Error(err)
	}
	wc, err := inst.WCC()
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.ValidateWCC(wc, verify.WCC(p)); err != nil {
		t.Error(err)
	}
}

func TestShardCountCapped(t *testing.T) {
	el := kronecker.Generate(kronecker.Params{Scale: 6, Seed: 1})
	inst, err := New().Load(el, machine(128))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(inst.(*Instance).shards); got > maxShards {
		t.Errorf("shards = %d, cap is %d", got, maxShards)
	}
}

func TestFrameworkOverheadVisible(t *testing.T) {
	// The GAS machinery must make PowerGraph's SSSP markedly
	// slower (modeled) than GAP-grade relaxation on small graphs —
	// the paper's explanation for PowerGraph's scale-22 numbers.
	el := kronecker.Generate(kronecker.Params{Scale: 11, Seed: 4})
	m := machine(32)
	inst, err := New().Load(el, m)
	if err != nil {
		t.Fatal(err)
	}
	start := m.Elapsed()
	if _, err := inst.SSSP(1); err != nil {
		t.Fatal(err)
	}
	pgTime := m.Elapsed() - start
	// One GAP-grade relaxation sweep of the whole graph.
	mRef := machine(32)
	mRef.ParallelFor(int(inst.(*Instance).out.NumEdges()), 1024, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
		w.Charge(simmachine.Cost{Cycles: 9, Bytes: 14}.Scale(float64(hi - lo)))
	})
	if pgTime < 3*mRef.Elapsed() {
		t.Errorf("PowerGraph SSSP (%v) less than 3x a single lean sweep (%v): GAS overhead missing", pgTime, mRef.Elapsed())
	}
}
