package graph

import (
	"testing"
	"testing/quick"

	"github.com/hpcl-repro/epg/internal/xrand"
)

func smallEdgeList() *EdgeList {
	return &EdgeList{
		NumVertices: 5,
		Edges: []Edge{
			{0, 1, 0.5}, {0, 2, 0.25}, {1, 2, 1.0},
			{3, 4, 0.75}, {2, 3, 0.125}, {0, 0, 0.5}, // self-loop
		},
		Weighted: true,
		Directed: false,
	}
}

func TestEdgeListValidate(t *testing.T) {
	el := smallEdgeList()
	if err := el.Validate(); err != nil {
		t.Fatalf("valid edge list rejected: %v", err)
	}
	bad := &EdgeList{NumVertices: 2, Edges: []Edge{{0, 5, 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range edge accepted")
	}
	badW := &EdgeList{NumVertices: 2, Edges: []Edge{{0, 1, 2.5}}, Weighted: true}
	if err := badW.Validate(); err == nil {
		t.Error("out-of-range weight accepted")
	}
	if err := (&EdgeList{NumVertices: 0}).Validate(); err == nil {
		t.Error("zero-vertex list accepted")
	}
}

func TestBuildCSRDirected(t *testing.T) {
	el := smallEdgeList()
	c := BuildCSR(el, BuildOptions{DropSelfLoops: true, Sort: true})
	if err := c.Validate(); err != nil {
		t.Fatalf("CSR invalid: %v", err)
	}
	if got := c.NumEdges(); got != 5 { // 6 edges minus self-loop
		t.Errorf("edges = %d, want 5", got)
	}
	wantAdj := map[VID][]VID{0: {1, 2}, 1: {2}, 2: {3}, 3: {4}, 4: {}}
	for v, want := range wantAdj {
		got := c.Neighbors(v)
		if len(got) != len(want) {
			t.Fatalf("vertex %d neighbors %v, want %v", v, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("vertex %d neighbors %v, want %v", v, got, want)
			}
		}
	}
}

func TestBuildCSRSymmetrize(t *testing.T) {
	el := smallEdgeList()
	c := BuildCSR(el, BuildOptions{Symmetrize: true, DropSelfLoops: true, Sort: true})
	if err := c.Validate(); err != nil {
		t.Fatalf("CSR invalid: %v", err)
	}
	if got := c.NumEdges(); got != 10 {
		t.Errorf("edges = %d, want 10", got)
	}
	// Symmetry: u in adj(v) iff v in adj(u).
	for v := 0; v < c.NumVertices; v++ {
		for _, u := range c.Neighbors(VID(v)) {
			if !c.HasEdge(u, VID(v)) {
				t.Errorf("edge %d->%d present but reverse missing", v, u)
			}
		}
	}
}

func TestBuildCSRWeightsFollowEdges(t *testing.T) {
	el := &EdgeList{
		NumVertices: 3,
		Edges:       []Edge{{0, 1, 0.5}, {0, 2, 0.25}},
		Weighted:    true,
	}
	c := BuildCSR(el, BuildOptions{Sort: true})
	adj, w := c.Neighbors(0), c.NeighborWeights(0)
	for i := range adj {
		var want float32
		switch adj[i] {
		case 1:
			want = 0.5
		case 2:
			want = 0.25
		}
		if w[i] != want {
			t.Errorf("weight for 0->%d = %v, want %v", adj[i], w[i], want)
		}
	}
}

func TestBuildCSRDedup(t *testing.T) {
	el := &EdgeList{
		NumVertices: 3,
		Edges:       []Edge{{0, 1, 0}, {0, 1, 0}, {0, 2, 0}, {0, 1, 0}},
	}
	c := BuildCSR(el, BuildOptions{Dedup: true})
	if got := c.Degree(0); got != 2 {
		t.Errorf("deduped degree = %d, want 2", got)
	}
}

func TestTranspose(t *testing.T) {
	el := smallEdgeList()
	c := BuildCSR(el, BuildOptions{DropSelfLoops: true, Sort: true})
	tr := Transpose(c, 2)
	if err := tr.Validate(); err != nil {
		t.Fatalf("transpose invalid: %v", err)
	}
	if tr.NumEdges() != c.NumEdges() {
		t.Fatalf("transpose edges %d != %d", tr.NumEdges(), c.NumEdges())
	}
	tr.SortAdjacency()
	// v in adjT(u) iff u in adj(v)
	for v := 0; v < c.NumVertices; v++ {
		for _, u := range c.Neighbors(VID(v)) {
			if !tr.HasEdge(u, VID(v)) {
				t.Errorf("transpose missing %d->%d", u, v)
			}
		}
	}
	// Weight preservation under double transpose.
	trtr := Transpose(tr, 1)
	trtr.SortAdjacency()
	c2 := BuildCSR(el, BuildOptions{DropSelfLoops: true, Sort: true})
	if trtr.NumEdges() != c2.NumEdges() {
		t.Errorf("double transpose changed edge count")
	}
}

func TestCSRValidateCatchesCorruption(t *testing.T) {
	el := smallEdgeList()
	c := BuildCSR(el, BuildOptions{})
	c.Offsets[1] = -1
	if err := c.Validate(); err == nil {
		t.Error("non-monotone offsets accepted")
	}
	c = BuildCSR(el, BuildOptions{})
	c.Adj[0] = VID(c.NumVertices + 3)
	if err := c.Validate(); err == nil {
		t.Error("out-of-range adj accepted")
	}
}

func randomEdgeList(seed uint64, n, m int, weighted bool) *EdgeList {
	r := xrand.New(seed)
	el := &EdgeList{NumVertices: n, Weighted: weighted, Edges: make([]Edge, m)}
	for i := range el.Edges {
		e := Edge{Src: VID(r.Intn(n)), Dst: VID(r.Intn(n))}
		if weighted {
			e.W = r.Float32()/2 + 0.25
		}
		el.Edges[i] = e
	}
	return el
}

// Property: sum of CSR degrees equals stored edges, and the builder is
// deterministic across worker counts.
func TestBuildCSRDeterministicAcrossWorkers(t *testing.T) {
	f := func(seed uint64) bool {
		el := randomEdgeList(seed, 64, 512, true)
		a := BuildCSR(el, BuildOptions{Workers: 1, Symmetrize: true, Sort: true})
		b := BuildCSR(el, BuildOptions{Workers: 4, Symmetrize: true, Sort: true})
		if len(a.Adj) != len(b.Adj) {
			return false
		}
		for i := range a.Adj {
			if a.Adj[i] != b.Adj[i] || a.Weights[i] != b.Weights[i] {
				return false
			}
		}
		for v := 0; v <= 64; v++ {
			if a.Offsets[v] != b.Offsets[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: degree sum equals 2x edge count when symmetrized (minus
// dropped self-loops counted once each direction).
func TestDegreeSumProperty(t *testing.T) {
	f := func(seed uint64) bool {
		el := randomEdgeList(seed, 50, 300, false)
		c := BuildCSR(el, BuildOptions{Symmetrize: true})
		var sum int64
		for v := 0; v < c.NumVertices; v++ {
			sum += c.Degree(VID(v))
		}
		return sum == c.NumEdges() && sum == int64(2*len(el.Edges))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSortAdjacencyIsSorted(t *testing.T) {
	el := randomEdgeList(7, 40, 400, true)
	c := BuildCSR(el, BuildOptions{Symmetrize: true, Sort: true})
	for v := 0; v < c.NumVertices; v++ {
		adj := c.Neighbors(VID(v))
		for i := 1; i < len(adj); i++ {
			if adj[i-1] > adj[i] {
				t.Fatalf("vertex %d adjacency not sorted", v)
			}
		}
	}
}

func TestHasEdge(t *testing.T) {
	el := &EdgeList{NumVertices: 4, Edges: []Edge{{0, 2, 0}, {0, 3, 0}}}
	c := BuildCSR(el, BuildOptions{Sort: true})
	if !c.HasEdge(0, 2) || !c.HasEdge(0, 3) {
		t.Error("existing edges not found")
	}
	if c.HasEdge(0, 1) || c.HasEdge(2, 0) {
		t.Error("phantom edges found")
	}
}

func TestOutDegrees(t *testing.T) {
	el := smallEdgeList()
	c := BuildCSR(el, BuildOptions{DropSelfLoops: true})
	d := c.OutDegrees()
	want := []int64{2, 1, 1, 1, 0}
	for v, w := range want {
		if d[v] != w {
			t.Errorf("degree[%d] = %d, want %d", v, d[v], w)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	el := &EdgeList{NumVertices: 3}
	c := BuildCSR(el, BuildOptions{Sort: true})
	if err := c.Validate(); err != nil {
		t.Fatalf("empty CSR invalid: %v", err)
	}
	if c.NumEdges() != 0 {
		t.Error("empty graph has edges")
	}
	tr := Transpose(c, 1)
	if tr.NumEdges() != 0 {
		t.Error("empty transpose has edges")
	}
}

func BenchmarkBuildCSR(b *testing.B) {
	el := randomEdgeList(1, 1<<14, 1<<18, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildCSR(el, BuildOptions{Symmetrize: true})
	}
}
