// Package logfmt emits and parses per-engine log files.
//
// The paper's framework collects execution times "by parsing log
// files" (phase 4 of Fig. 1): every system logs differently, and the
// Bash/AWK parsers of the original normalize them into one CSV. This
// package reproduces that pipeline: Emit writes a run's log in the
// engine's native style — including the GraphMat bullet format quoted
// under Table I — and Parse recovers normalized records from any of
// them. The round trip is exercised by the harness and tests.
package logfmt

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/hpcl-repro/epg/internal/core"
	"github.com/hpcl-repro/epg/internal/engines"
)

// Emit writes r's log in the engine's native style. The writer is
// typically a file per (engine, dataset, algorithm, trial), as in the
// original framework.
func Emit(w io.Writer, r core.Result) error {
	var err error
	switch r.Engine {
	case "Graph500":
		_, err = fmt.Fprintf(w,
			"SCALE: from %s\nNBFS: 1\ngraph_generation: ignored\nconstruction_time: %.9f\nbfs_time[%d]: %.9f\nbfs_nedge[%d]: %d\n",
			r.Dataset, r.ConstructionSec, r.Trial, r.AlgorithmSec, r.Trial, r.EdgesExamined)
	case "GAP":
		_, err = fmt.Fprintf(w,
			"Build Time: %.5f\nTrial Time: %.5f\nEdges Examined: %d\nIterations: %d\n",
			r.ConstructionSec, r.AlgorithmSec, r.EdgesExamined, r.Iterations)
	case "GraphBIG":
		_, err = fmt.Fprintf(w,
			"== %s read+construct time: %.6f sec\n== %s compute time: %.6f sec\n== iteration count: %d\n",
			r.Dataset, r.FileReadSec, strings.ToLower(string(r.Algorithm)), r.AlgorithmSec, r.Iterations)
	case "GraphMat":
		// The bullet format the paper quotes below Table I.
		_, err = fmt.Fprintf(w,
			"Finished file read of %s. time: %.5f\nload graph: %.5f sec\ninitialize engine: 8.3e-05 sec\nrun algorithm 1 (count degree): 0.0 sec\nrun algorithm 2 (compute %s): %.6f sec\nprint output: 0.0 sec\nniterations: %d\n",
			r.Dataset, r.FileReadSec, r.FileReadSec+r.ConstructionSec,
			strings.ToLower(string(r.Algorithm)), r.AlgorithmSec, r.Iterations)
	case "PowerGraph":
		_, err = fmt.Fprintf(w,
			"INFO: loaded graph %s\nINFO: engine iterations: %d\nFinished Running engine in %.6f seconds.\n",
			r.Dataset, r.Iterations, r.AlgorithmSec)
	default:
		return fmt.Errorf("logfmt: no log format for engine %q", r.Engine)
	}
	return err
}

// Parse reads one engine log and fills the timing fields of a Result
// whose identity fields (Engine, Dataset, Algorithm, Threads, Trial,
// Root) the caller provides — exactly the information the original
// framework encodes in log file names.
func Parse(rd io.Reader, identity core.Result) (core.Result, error) {
	out := identity
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var loadGraph float64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		// Graph500.
		case strings.HasPrefix(line, "construction_time:"):
			out.ConstructionSec = parseTail(line, "construction_time:")
			out.HasConstruction = true
		case strings.HasPrefix(line, "bfs_time["):
			if i := strings.Index(line, "]:"); i >= 0 {
				out.AlgorithmSec = parseFloat(line[i+2:])
			}
		case strings.HasPrefix(line, "bfs_nedge["):
			if i := strings.Index(line, "]:"); i >= 0 {
				out.EdgesExamined = int64(parseFloat(line[i+2:]))
			}

		// GAP.
		case strings.HasPrefix(line, "Build Time:"):
			out.ConstructionSec = parseTail(line, "Build Time:")
			out.HasConstruction = true
		case strings.HasPrefix(line, "Trial Time:"):
			out.AlgorithmSec = parseTail(line, "Trial Time:")
		case strings.HasPrefix(line, "Edges Examined:"):
			out.EdgesExamined = int64(parseTail(line, "Edges Examined:"))
		case strings.HasPrefix(line, "Iterations:"):
			out.Iterations = int(parseTail(line, "Iterations:"))

		// GraphBIG.
		case strings.Contains(line, "read+construct time:"):
			out.FileReadSec = parseBefore(line, "sec", "time:")
		case strings.Contains(line, "compute time:"):
			out.AlgorithmSec = parseBefore(line, "sec", "time:")
		case strings.HasPrefix(line, "== iteration count:"):
			out.Iterations = int(parseTail(line, "== iteration count:"))

		// GraphMat.
		case strings.HasPrefix(line, "Finished file read"):
			if i := strings.Index(line, "time:"); i >= 0 {
				out.FileReadSec = parseFloat(line[i+5:])
			}
		case strings.HasPrefix(line, "load graph:"):
			loadGraph = parseBefore(line, "sec", "load graph:")
		case strings.HasPrefix(line, "run algorithm 2"):
			out.AlgorithmSec = parseBefore(line, "sec", "):")
		case strings.HasPrefix(line, "niterations:"):
			out.Iterations = int(parseTail(line, "niterations:"))

		// PowerGraph.
		case strings.HasPrefix(line, "Finished Running engine in"):
			out.AlgorithmSec = parseBefore(line, "seconds", "in")
		case strings.HasPrefix(line, "INFO: engine iterations:"):
			out.Iterations = int(parseTail(line, "INFO: engine iterations:"))
		}
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("logfmt: %v", err)
	}
	// GraphMat logs "load graph" as file read + construction.
	if loadGraph > 0 {
		out.ConstructionSec = loadGraph - out.FileReadSec
		out.HasConstruction = true
	}
	if out.AlgorithmSec == 0 {
		return out, fmt.Errorf("logfmt: no algorithm time found for %s", identity.Engine)
	}
	return out, nil
}

// parseTail parses the float following the given prefix.
func parseTail(line, prefix string) float64 {
	return parseFloat(strings.TrimPrefix(line, prefix))
}

// parseBefore extracts the float between the last occurrence of
// `after` and the token `unit`.
func parseBefore(line, unit, after string) float64 {
	s := line
	if i := strings.LastIndex(s, after); i >= 0 {
		s = s[i+len(after):]
	}
	if i := strings.Index(s, unit); i >= 0 {
		s = s[:i]
	}
	return parseFloat(s)
}

func parseFloat(s string) float64 {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0
	}
	return v
}

// CSVHeader is the normalized record header (phase 4's output format).
const CSVHeader = "engine,dataset,algorithm,threads,trial,root,file_read_s,construction_s,algorithm_s,wall_s,iterations,edges_examined,cpu_j,ram_j,cpu_w,ram_w"

// WriteCSV writes records in the normalized CSV layout.
func WriteCSV(w io.Writer, results []core.Result) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, CSVHeader)
	for _, r := range results {
		fmt.Fprintf(bw, "%s,%s,%s,%d,%d,%d,%.9g,%.9g,%.9g,%.9g,%d,%d,%.6g,%.6g,%.6g,%.6g\n",
			r.Engine, r.Dataset, r.Algorithm, r.Threads, r.Trial, r.Root,
			r.FileReadSec, r.ConstructionSec, r.AlgorithmSec, r.WallSec,
			r.Iterations, r.EdgesExamined,
			r.CPUJoules, r.RAMJoules, r.AvgCPUWatts, r.AvgRAMWatts)
	}
	return bw.Flush()
}

// ReadCSV parses the normalized CSV produced by WriteCSV.
func ReadCSV(rd io.Reader) ([]core.Result, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []core.Result
	first := true
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if first {
			first = false
			if line == CSVHeader {
				continue
			}
		}
		f := strings.Split(line, ",")
		if len(f) != 16 {
			return nil, fmt.Errorf("logfmt: csv line %d has %d fields, want 16", lineNo, len(f))
		}
		threads, err := strconv.Atoi(f[3])
		if err != nil {
			return nil, fmt.Errorf("logfmt: csv line %d: bad threads %q", lineNo, f[3])
		}
		trial, _ := strconv.Atoi(f[4])
		root, _ := strconv.ParseUint(f[5], 10, 32)
		iters, _ := strconv.Atoi(f[10])
		edges, _ := strconv.ParseInt(f[11], 10, 64)
		out = append(out, core.Result{
			Engine:          f[0],
			Dataset:         f[1],
			Algorithm:       engines.Algorithm(f[2]),
			Threads:         threads,
			Trial:           trial,
			Root:            uint32(root),
			FileReadSec:     parseFloat(f[6]),
			ConstructionSec: parseFloat(f[7]),
			AlgorithmSec:    parseFloat(f[8]),
			WallSec:         parseFloat(f[9]),
			Iterations:      iters,
			EdgesExamined:   edges,
			CPUJoules:       parseFloat(f[12]),
			RAMJoules:       parseFloat(f[13]),
			AvgCPUWatts:     parseFloat(f[14]),
			AvgRAMWatts:     parseFloat(f[15]),
		})
	}
	return out, sc.Err()
}
