// Randomized property tests for the frontier/scan primitives — the
// always-on companions of the fuzz targets in fuzz_test.go, shaped to
// hit the boundaries fuzzing finds slowly: empty and single-element
// scans, chunk-grain-aligned bitmap ranges, block-boundary scan
// lengths, and heavily oversubscribed regions whose goroutine
// interleavings are adversarial by construction. All of it runs under
// `make race`.
package parallel

import (
	"math"
	"slices"
	"testing"

	"github.com/hpcl-repro/epg/internal/xrand"
)

// serialScanOracle is the trivially-correct exclusive prefix sum.
func serialScanOracle(xs []int64) ([]int64, int64) {
	out := make([]int64, len(xs))
	var run int64
	for i, v := range xs {
		out[i] = run
		run += v
	}
	return out, run
}

// TestScanInt64BoundaryShapes checks ScanInt64 against the serial
// oracle on the shapes named by the primitives' contracts: empty,
// single, all-zero, and "maxed" inputs (extreme int64 values whose
// wrapping sums must still match the oracle), at lengths straddling
// the serial cutoff and the per-worker block boundaries.
func TestScanInt64BoundaryShapes(t *testing.T) {
	p := NewPool(8)
	lengths := []int{0, 1, 2, 3,
		scanSerialCutoff - 1, scanSerialCutoff, scanSerialCutoff + 1,
		2*scanSerialCutoff - 1, 2 * scanSerialCutoff, 2*scanSerialCutoff + 7,
		4*scanSerialCutoff + 13}
	fills := map[string]func(i int) int64{
		"zero":  func(i int) int64 { return 0 },
		"ones":  func(i int) int64 { return 1 },
		"ramp":  func(i int) int64 { return int64(i%911) - 400 },
		"maxed": func(i int) int64 { return [2]int64{math.MaxInt64, math.MinInt64 + 3}[i%2] },
		"rand":  func(i int) int64 { return int64(xrand.Mix64(uint64(i))) },
	}
	for name, fill := range fills {
		for _, n := range lengths {
			xs := make([]int64, n)
			for i := range xs {
				xs[i] = fill(i)
			}
			want, wantTotal := serialScanOracle(xs)
			for _, workers := range []int{1, 2, 3, 8} {
				got := slices.Clone(xs)
				total := ScanInt64(p, workers, got)
				if total != wantTotal {
					t.Fatalf("%s n=%d workers=%d: total %d, want %d", name, n, workers, total, wantTotal)
				}
				if !slices.Equal(got, want) {
					t.Fatalf("%s n=%d workers=%d: prefix sums differ from oracle", name, n, workers)
				}
			}
		}
	}
}

// TestBitmapMatchesMapOracle drives random Set/ClearRange rounds
// against a map-based set, checking ToSlice (both paths), Count, and
// Test after every round. Range endpoints mix word-aligned and
// unaligned values so the masked boundary words get hit.
func TestBitmapMatchesMapOracle(t *testing.T) {
	p := NewPool(8)
	r := xrand.New(0xb17a9)
	for round := 0; round < 30; round++ {
		n := int(r.Uint64()%5000) + 1
		b := NewBitmap(n)
		oracle := make(map[int]bool)
		idx := make([]int, r.Uint64()%2000)
		for i := range idx {
			idx[i] = int(r.Uint64() % uint64(n))
			oracle[idx[i]] = true
		}
		sched := fuzzSchedules[int(r.Uint64()%uint64(len(fuzzSchedules)))]
		workers := int(r.Uint64()%8) + 1
		For(p, workers, len(idx), 8, sched, func(lo, hi, chunk, worker int) {
			for i := lo; i < hi; i++ {
				b.Set(idx[i])
			}
		})
		checkBitmapOracle(t, b, oracle, p, workers)

		// A few clears per round: aligned, unaligned, and degenerate.
		for _, rng := range [][2]int{
			{int(r.Uint64() % uint64(n+1)), int(r.Uint64() % uint64(n+1))},
			{(n / 2) &^ 63, n},
			{n / 3, n / 3}, // empty range: no-op
		} {
			lo, hi := rng[0], rng[1]
			if lo > hi {
				lo, hi = hi, lo
			}
			b.ClearRange(lo, hi)
			for v := range oracle {
				if v >= lo && v < hi {
					delete(oracle, v)
				}
			}
			checkBitmapOracle(t, b, oracle, p, workers)
		}
	}
}

// TestChunkQueueAdversarialInterleavings oversubscribes a tiny pool
// (16 workers on 4 idle slots) so region bodies interleave as wildly
// as the host allows, across every policy and socket layout, and
// requires the chunk-ordered drain to stay equal to the serially built
// reference on every one of many rounds. With -race (make race) this
// doubles as the ChunkQueue/For memory-model wall.
func TestChunkQueueAdversarialInterleavings(t *testing.T) {
	p := NewPool(4)
	r := xrand.New(0xcadce5)
	cq := NewChunkQueue[uint32]()
	for round := 0; round < 40; round++ {
		seed := r.Uint64()
		n := int(r.Uint64() % 3000)
		grain := int(r.Uint64()%48) + 1
		sched := fuzzSchedules[int(r.Uint64()%uint64(len(fuzzSchedules)))]
		topo := Topology{Sockets: int(r.Uint64()%4) + 1}
		workers := int(r.Uint64()%16) + 1
		nchunks := NumChunks(n, grain)

		var want []uint32
		for c := 0; c < nchunks; c++ {
			want = append(want, fuzzChunkItems(seed, c)...)
		}

		cq.Reset(nchunks)
		ForTopo(p, workers, n, grain, sched, topo, func(lo, hi, chunk, worker int) {
			cq.Put(chunk, fuzzChunkItems(seed, chunk))
		})
		if got := cq.Slice(); !slices.Equal(got, want) {
			t.Fatalf("round=%d sched=%v workers=%d sockets=%d grain=%d: drain differs from reference",
				round, sched, workers, topo.Sockets, grain)
		}
	}
}
