package gap

import (
	"math"
	"sync/atomic"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/parallel"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// PageRank implements engines.Instance with the suite's pull-based
// formulation: each vertex gathers rank/degree contributions from its
// in-neighbors, so no atomics are needed in the hot loop. Scores are
// float64; the stopping criterion is the paper's homogenized L1 norm
// with ε = 6e-8. The dangling-mass and L1 reductions fold per-chunk
// partials in chunk order, so ranks and iteration counts are
// bit-identical across runs and worker counts.
func (inst *Instance) PageRank(opts engines.PROpts) (*engines.PRResult, error) {
	inst.ensureBuilt()
	opts = opts.Normalize()
	n := inst.n
	if n == 0 {
		return &engines.PRResult{Rank: nil}, nil
	}
	inv := 1.0 / float64(n)
	rank := make([]float64, n)
	next := make([]float64, n)
	contrib := make([]float64, n)
	for i := range rank {
		rank[i] = inv
	}
	outDeg := inst.out.OutDegrees()

	res := &engines.PRResult{}
	gContrib := inst.m.Grain(n, 2048, 1)
	gPull := inst.m.Grain(n, 1024, 1)
	gL1 := inst.m.Grain(n, 4096, 1)
	for iter := 1; iter <= opts.MaxIter; iter++ {
		if err := inst.checkCancel("PageRank"); err != nil {
			return nil, err
		}
		// Per-vertex contributions and the dangling sum.
		dr := parallel.NewReducer[float64](parallel.NumChunks(n, gContrib))
		inst.m.ParallelForChunks(n, gContrib, simmachine.Dynamic, func(lo, hi, chunk, worker int, w *simmachine.W) {
			var localDangling float64
			for v := lo; v < hi; v++ {
				if outDeg[v] == 0 {
					localDangling += rank[v]
					contrib[v] = 0
					continue
				}
				contrib[v] = rank[v] / float64(outDeg[v])
			}
			*dr.At(chunk) = localDangling
			w.Cycles(float64(hi-lo) * 3)
			w.Bytes(float64(hi-lo) * 16)
		})
		dangling := parallel.SumFloat64(dr)
		base := (1-opts.Damping)*inv + opts.Damping*dangling*inv

		// Pull phase.
		cpb := inst.m.Model().DecodeCyclesPerByte
		inst.m.ParallelFor(n, gPull, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
			var edges, decBytes int64
			for v := lo; v < hi; v++ {
				sum := 0.0
				if inst.cin != nil {
					d := inst.cin.Decoder(graph.VID(v))
					for u, ok := d.Next(); ok; u, ok = d.Next() {
						sum += contrib[u]
					}
					decBytes += int64(d.BytesRead())
				} else {
					for _, u := range inst.in.Neighbors(graph.VID(v)) {
						sum += contrib[u]
					}
				}
				edges += inst.in.Degree(graph.VID(v))
				next[v] = base + opts.Damping*sum
			}
			if inst.cin != nil {
				w.Charge(costPREdgeC.Scale(float64(edges)))
				w.Cycles(cpb * float64(decBytes))
				w.Bytes(float64(decBytes))
			} else {
				w.Charge(costPREdge.Scale(float64(edges)))
			}
			w.Charge(costPRVertex.Scale(float64(hi - lo)))
		})

		// L1 convergence test.
		lr := parallel.NewReducer[float64](parallel.NumChunks(n, gL1))
		inst.m.ParallelForChunks(n, gL1, simmachine.Dynamic, func(lo, hi, chunk, worker int, w *simmachine.W) {
			local := 0.0
			for v := lo; v < hi; v++ {
				local += math.Abs(next[v] - rank[v])
			}
			*lr.At(chunk) = local
			w.Cycles(float64(hi-lo) * 4)
			w.Bytes(float64(hi-lo) * 16)
		})
		l1 := parallel.SumFloat64(lr)

		rank, next = next, rank
		res.Iterations = iter
		if inst.prRec != nil {
			inst.prRec.record(rank, dr, lr,
				parallel.NumChunks(n, gContrib), parallel.NumChunks(n, gL1),
				dangling, base, l1)
		}
		if l1 < opts.Epsilon {
			break
		}
	}
	res.Rank = rank
	return res, nil
}

// atomicAddFloat64 adds delta to the float64 stored in bits.
func atomicAddFloat64(bits *uint64, delta float64) {
	for {
		old := atomic.LoadUint64(bits)
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if atomic.CompareAndSwapUint64(bits, old, nv) {
			return
		}
	}
}

// WCC implements engines.Instance with Shiloach-Vishkin-style label
// propagation (the suite's connected components kernel): every vertex
// repeatedly adopts the minimum label in its neighborhood, with a
// pointer-jumping compression pass, until a fixed point.
func (inst *Instance) WCC() (*engines.WCCResult, error) {
	inst.ensureBuilt()
	n := inst.n
	comp := make([]uint32, n)
	for i := range comp {
		comp[i] = uint32(i)
	}
	for {
		if err := inst.checkCancel("WCC"); err != nil {
			return nil, err
		}
		var changed int64
		inst.m.ParallelFor(n, 1024, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
			var edges, localChanged int64
			for v := lo; v < hi; v++ {
				min := atomic.LoadUint32(&comp[v])
				for _, u := range inst.out.Neighbors(graph.VID(v)) {
					if c := atomic.LoadUint32(&comp[u]); c < min {
						min = c
					}
				}
				if inst.in != inst.out {
					for _, u := range inst.in.Neighbors(graph.VID(v)) {
						if c := atomic.LoadUint32(&comp[u]); c < min {
							min = c
						}
					}
					edges += inst.in.Degree(graph.VID(v))
				}
				edges += inst.out.Degree(graph.VID(v))
				if min < comp[v] {
					atomic.StoreUint32(&comp[v], min)
					localChanged++
				}
			}
			atomic.AddInt64(&changed, localChanged)
			w.Charge(costCCEdge.Scale(float64(edges)))
			w.Cycles(float64(hi-lo) * 2)
		})
		// Pointer jumping: comp[v] = comp[comp[v]] until stable.
		inst.m.ParallelFor(n, 2048, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
			for v := lo; v < hi; v++ {
				for {
					c := atomic.LoadUint32(&comp[v])
					cc := atomic.LoadUint32(&comp[c])
					if cc >= c {
						break
					}
					atomic.StoreUint32(&comp[v], cc)
				}
			}
			w.Cycles(float64(hi-lo) * 6)
			w.Bytes(float64(hi-lo) * 12)
		})
		if changed == 0 {
			break
		}
	}
	res := &engines.WCCResult{Component: make([]graph.VID, n)}
	for v := 0; v < n; v++ {
		res.Component[v] = graph.VID(comp[v])
	}
	return res, nil
}
