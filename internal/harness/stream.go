package harness

import (
	"fmt"
	"sort"

	"github.com/hpcl-repro/epg/internal/core"
	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/simmachine"
	"github.com/hpcl-repro/epg/internal/xrand"
)

// maxInsertRetries bounds the rejection sampling that keeps generated
// inserts off the diagonal; a self-loop slipping through is harmless
// (the structures drop it) but wastes a batch slot.
const maxInsertRetries = 32

// streamShadow tracks the engine-independent ground truth of the
// mutation stream: a MutableCSR over the homogenized graph. Batches
// are generated against it (so every engine sees the identical
// stream) and the post-batch edge list reconstructed from it feeds the
// full-recompute reference.
type streamShadow struct {
	mut      *graph.MutableCSR
	directed bool
	weighted bool
}

func newStreamShadow(el *graph.EdgeList) *streamShadow {
	csr := graph.BuildCSR(el, graph.BuildOptions{
		Symmetrize:    !el.Directed,
		DropSelfLoops: true,
		Dedup:         true,
		Sort:          true,
	})
	return &streamShadow{
		mut:      graph.NewMutableCSR(csr, el.Directed),
		directed: el.Directed,
		weighted: el.Weighted,
	}
}

// batch generates one deterministic mutation batch against the current
// shadow state: each op is a delete of a uniformly sampled stored edge
// with probability deleteFrac, otherwise a uniform random non-self-loop
// insert. The RNG is seeded per batch (Mix64(seed, batch)), so the
// stream for batch k never depends on how earlier batches were
// consumed.
func (s *streamShadow) batch(ms *core.MutationSchedule, batchIdx int) graph.Batch {
	r := xrand.New(xrand.Mix64(ms.Seed) ^ xrand.Mix64(uint64(batchIdx)*0x9e3779b97f4a7c15))
	c := s.mut.CSR()
	n := c.NumVertices
	b := make(graph.Batch, 0, ms.BatchSize)
	for i := 0; i < ms.BatchSize; i++ {
		if r.Float64() < ms.DeleteFrac && c.NumEdges() > 0 {
			idx := int64(r.Intn(int(c.NumEdges())))
			u := sort.Search(n, func(v int) bool { return c.Offsets[v+1] > idx })
			b = append(b, graph.Mutation{Op: graph.MutDelete, Src: graph.VID(u), Dst: c.Adj[idx]})
			continue
		}
		m := graph.Mutation{Op: graph.MutInsert, W: float32(1 - r.Float64())}
		m.Src = graph.VID(r.Intn(n))
		m.Dst = graph.VID(r.Intn(n))
		for retry := 0; m.Src == m.Dst && retry < maxInsertRetries; retry++ {
			m.Dst = graph.VID(r.Intn(n))
		}
		b = append(b, m)
	}
	return b
}

// edgeList reconstructs the edge list the shadow's current epoch
// represents — the exact input from which a cold homogenize+build
// reproduces the same normalized structure.
func (s *streamShadow) edgeList() *graph.EdgeList {
	c := s.mut.CSR()
	el := &graph.EdgeList{NumVertices: c.NumVertices, Weighted: s.weighted, Directed: s.directed}
	for v := 0; v < c.NumVertices; v++ {
		adj := c.Neighbors(graph.VID(v))
		ws := c.NeighborWeights(graph.VID(v))
		for i, u := range adj {
			if !s.directed && u < graph.VID(v) {
				continue
			}
			e := graph.Edge{Src: graph.VID(v), Dst: u}
			if ws != nil {
				e.W = ws[i]
			}
			el.Edges = append(el.Edges, e)
		}
	}
	return el
}

// runStream executes the spec's mutation schedule against one engine's
// live instance: per batch, apply the mutations, re-converge the
// resident result incrementally, and wall the outcome bit-equal
// against a cold full recompute on the post-batch graph. The recompute
// runs on a fresh machine with the same spec knobs, so RecomputeSec is
// the honest displaced alternative (rebuild + cold kernel).
func (r *Runner) runStream(spec core.Spec, el *graph.EdgeList, name string, st engines.Streamer, m *simmachine.Machine, model simmachine.Model, owner []int16) ([]core.Result, error) {
	ms := spec.Mutations
	shadow := newStreamShadow(el)

	// Establish the incremental baseline outside the per-batch
	// accounting: the first incremental call on a fresh instance is a
	// (recorded) full run.
	if err := r.maintain(spec, st, nil); err != nil {
		return nil, fmt.Errorf("stream baseline: %w", err)
	}

	results := make([]core.Result, 0, ms.Batches)
	for batch := 1; batch <= ms.Batches; batch++ {
		b := shadow.batch(ms, batch)
		if _, err := shadow.mut.Apply(b); err != nil {
			return nil, fmt.Errorf("stream batch %d (shadow): %w", batch, err)
		}

		res := core.Result{
			Engine:    name,
			Dataset:   spec.Dataset,
			Algorithm: spec.Algorithm,
			Threads:   spec.Threads,
			Trial:     batch - 1,
			Batch:     batch,
		}
		t0 := m.Elapsed()
		rep, err := st.Mutate(b)
		if err != nil {
			return nil, fmt.Errorf("stream batch %d (mutate): %w", batch, err)
		}
		_ = rep
		res.MutateSec = m.Elapsed() - t0

		t1 := m.Elapsed()
		inc := &streamOutcome{}
		if err := r.maintain(spec, st, inc); err != nil {
			return nil, fmt.Errorf("stream batch %d (incremental): %w", batch, err)
		}
		res.MaintainSec = m.Elapsed() - t1
		res.AlgorithmSec = res.MaintainSec
		res.Iterations = inc.iterations

		// Full-recompute reference on an identically-configured fresh
		// machine; also the conformance oracle.
		ref := &streamOutcome{}
		refSec, err := r.recompute(spec, shadow.edgeList(), name, model, owner, ref)
		if err != nil {
			return nil, fmt.Errorf("stream batch %d (recompute): %w", batch, err)
		}
		res.RecomputeSec = refSec

		if err := inc.equal(ref); err != nil {
			return nil, fmt.Errorf("stream batch %d: incremental %s diverged from full recompute: %w",
				batch, spec.Algorithm, err)
		}
		results = append(results, res)
	}
	return results, nil
}

// streamOutcome captures the algorithm output in a comparable form.
type streamOutcome struct {
	rank       []float64
	iterations int
	component  []graph.VID
}

func (o *streamOutcome) equal(ref *streamOutcome) error {
	if o.iterations != ref.iterations {
		return fmt.Errorf("iterations %d vs %d", o.iterations, ref.iterations)
	}
	if len(o.rank) != len(ref.rank) || len(o.component) != len(ref.component) {
		return fmt.Errorf("output length %d/%d vs %d/%d", len(o.rank), len(o.component), len(ref.rank), len(ref.component))
	}
	for v := range ref.rank {
		if o.rank[v] != ref.rank[v] {
			return fmt.Errorf("rank[%d] = %x vs %x", v, o.rank[v], ref.rank[v])
		}
	}
	for v := range ref.component {
		if o.component[v] != ref.component[v] {
			return fmt.Errorf("component[%d] = %d vs %d", v, o.component[v], ref.component[v])
		}
	}
	return nil
}

// maintain runs the incremental kernel for the spec's algorithm,
// recording the outcome when out is non-nil.
func (r *Runner) maintain(spec core.Spec, st engines.Streamer, out *streamOutcome) error {
	switch spec.Algorithm {
	case engines.PageRank:
		res, err := st.IncrementalPageRank(engines.DefaultPROpts())
		if err != nil {
			return err
		}
		if out != nil {
			out.rank = res.Rank
			out.iterations = res.Iterations
		}
	case engines.WCC:
		res, err := st.IncrementalWCC()
		if err != nil {
			return err
		}
		if out != nil {
			out.component = res.Component
		}
	default:
		return fmt.Errorf("harness: no incremental maintainer for %s", spec.Algorithm)
	}
	return nil
}

// recompute costs and captures the displaced alternative: a cold
// rebuild plus full kernel run on the post-batch graph, on a fresh
// machine with the spec's knobs.
func (r *Runner) recompute(spec core.Spec, post *graph.EdgeList, name string, model simmachine.Model, owner []int16, out *streamOutcome) (float64, error) {
	eng, err := r.Registry.New(name)
	if err != nil {
		return 0, err
	}
	engines.Configure(eng, engines.Options{SyncSSSP: spec.SyncSSSP, Compress: spec.Compress})
	m := specMachine(spec, model, owner)
	inst, err := eng.Load(post, m)
	if err != nil {
		return 0, err
	}
	inst.BuildStructure()
	res, err := engines.RunAlgorithm(inst, spec.Algorithm, 0)
	if err != nil {
		return 0, err
	}
	switch v := res.(type) {
	case *engines.PRResult:
		out.rank = v.Rank
		out.iterations = v.Iterations
	case *engines.WCCResult:
		out.component = v.Component
	}
	return m.Elapsed(), nil
}
