// Quickstart: generate a Kronecker graph, run BFS on every engine
// that provides it, and print the paper-style box-plot panel plus the
// per-engine medians.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/hpcl-repro/epg"
)

func main() {
	suite := epg.NewSuite()

	// A scale-14 Kronecker graph: 16,384 vertices, ~262k edges —
	// the Graph500 generator at laptop scale. The paper's headline
	// runs use scale 22 on a 72-thread server; pass kron-22 here to
	// reproduce them (expect minutes of runtime).
	g, err := suite.Dataset("kron-14")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d vertices, %d edges (weighted=%v)\n\n",
		g.NumVertices(), g.NumEdges(), g.Weighted())

	results, err := suite.Run(epg.Spec{
		Algorithm: epg.BFS,
		Threads:   32, // virtual threads on the modeled Haswell node
		Roots:     8,  // the paper uses 32
	}, g)
	if err != nil {
		log.Fatal(err)
	}

	epg.RenderTimeFigure(os.Stdout, "BFS Time (modeled seconds, 32 threads)", results)
	fmt.Println()
	epg.RenderConstructionFigure(os.Stdout, "BFS Data Structure Construction", results)

	fmt.Println("\nPer-engine TEPS (traversed edges per second):")
	byEngine := map[string][]float64{}
	for _, r := range results {
		byEngine[r.Engine] = append(byEngine[r.Engine], r.TEPS())
	}
	for eng, teps := range byEngine {
		mean := 0.0
		for _, t := range teps {
			mean += t
		}
		fmt.Printf("  %-10s %.3g\n", eng, mean/float64(len(teps)))
	}
}
