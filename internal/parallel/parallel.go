package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/hpcl-repro/epg/internal/xrand"
)

// Sched selects how chunk indices are assigned to workers. The values
// mirror simmachine.Sched so engines can use one policy for both real
// execution and virtual-lane accounting.
type Sched int

const (
	// Static assigns chunk c to worker c % workers, OpenMP
	// schedule(static, grain) style.
	Static Sched = iota
	// Dynamic hands each worker the next unclaimed chunk off a shared
	// atomic counter, OpenMP schedule(dynamic, grain) style.
	Dynamic
	// Steal seeds each worker with a round-robin share of the chunks
	// in a private Chase–Lev deque; owners pop locally and idle
	// workers steal from randomized victims (Cilk/TBB style). The
	// shared-counter serialization of Dynamic disappears: the only
	// cross-worker traffic is the occasional steal CAS.
	Steal
	// NUMA is Steal with two-level (socket-aware) victim selection:
	// idle workers sweep same-socket victims before probing remote
	// sockets, so chunks tend to stay on the socket of their static
	// owner. The socket layout comes from the Topology handed to
	// ForTopo (For uses DefaultTopology); with one socket the
	// discipline is exactly Steal.
	NUMA
)

// task is one dispatch to a pooled worker goroutine.
type task struct {
	fn   func(worker int)
	id   int
	done *sync.WaitGroup
}

// pworker is a pooled goroutine parked on its own task channel.
type pworker struct {
	tasks chan task
}

func (w *pworker) loop(p *Pool) {
	for t := range w.tasks {
		t.fn(t.id)
		parked := p.park(w)
		t.done.Done()
		if !parked {
			// Idle set full: nobody holds a reference to this worker
			// anymore, so exit instead of blocking on the channel
			// forever (blocked goroutines are never collected).
			return
		}
	}
}

// Pool is a reusable set of worker goroutines. Run borrows workers for
// the duration of one parallel region and parks them again afterwards,
// so hot kernels that issue thousands of small regions (one per BFS
// level) do not pay a goroutine spawn per region.
//
// The zero Pool is not usable; call NewPool. A Pool never needs to be
// closed: parked goroutines are bounded by its idle capacity and are
// reused process-wide when obtained from Default.
type Pool struct {
	idle chan *pworker
}

// NewPool returns a pool that parks at most idleCap workers between
// regions (more may run transiently; extras exit instead of parking).
func NewPool(idleCap int) *Pool {
	if idleCap < 1 {
		idleCap = 1
	}
	return &Pool{idle: make(chan *pworker, idleCap)}
}

var (
	defaultPool     *Pool
	defaultPoolOnce sync.Once
)

// Default returns the process-wide shared pool. Its idle capacity
// scales with GOMAXPROCS but admits oversubscribed regions (worker
// counts above the core count are legal and used by the determinism
// tests).
func Default() *Pool {
	defaultPoolOnce.Do(func() {
		c := 4 * runtime.GOMAXPROCS(0)
		if c < 16 {
			c = 16
		}
		defaultPool = NewPool(c)
	})
	return defaultPool
}

// park returns a worker to the idle set; if the set is full the worker
// exits (its channel is closed by dropping the only reference — the
// goroutine ends when loop returns).
func (p *Pool) park(w *pworker) bool {
	select {
	case p.idle <- w:
		return true
	default:
		return false
	}
}

func (w *pworker) run(t task) bool {
	select {
	case w.tasks <- t:
		return true
	default:
		return false
	}
}

// Run executes fn(workerID) for worker IDs 0..workers-1 concurrently
// and returns when all have finished. The calling goroutine acts as
// worker 0, so Run(1, fn) is a plain function call with no goroutines,
// no channels, and no synchronization — the serial baseline really is
// serial. fn must not call Run on the same pool (regions do not nest;
// the engines' parallel regions never do).
//
// A panic inside fn on ANY worker is captured, the region is run to
// completion on the remaining workers, and the first panic value is
// re-raised on the calling goroutine. Without this a panicking pooled
// goroutine would kill the whole process (and strand the region's
// WaitGroup); with it, a long-running caller — the serving daemon —
// can recover per-query panics at the point it issued the region. The
// original panic value is preserved so callers that assert on panic
// messages (queue-overflow diagnostics) see it unchanged; the stack of
// the panicking worker is lost, which the re-raise trades for process
// survival.
func (p *Pool) Run(workers int, fn func(worker int)) {
	if workers <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	var panicked atomic.Bool
	var panicVal any
	capture := func(worker int) {
		defer func() {
			if r := recover(); r != nil {
				if panicked.CompareAndSwap(false, true) {
					panicVal = r // wg.Wait() orders this write before the read below
				}
			}
		}()
		fn(worker)
	}
	wg.Add(workers - 1)
	t := task{fn: capture, done: &wg}
	for id := 1; id < workers; id++ {
		t.id = id
		select {
		case w := <-p.idle:
			if !w.run(t) {
				// Cannot happen: parked workers have drained their
				// channel. Kept as a safe fallback.
				go func(t task) { t.fn(t.id); t.done.Done() }(t)
			}
		default:
			w := &pworker{tasks: make(chan task, 1)}
			w.run(t)
			go w.loop(p)
		}
	}
	capture(0)
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
}

// NumChunks returns the chunk count ParallelFor uses for n items at
// the given grain — the slot count for chunk-indexed reducers.
func NumChunks(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	return (n + grain - 1) / grain
}

// For executes body over [0, n) in chunks of the given grain on up to
// `workers` real workers from the pool. body receives the half-open
// index range, the chunk index (stable across runs and worker counts),
// and the real worker ID (for per-worker scratch; never use it to key
// results that must be deterministic).
func For(p *Pool, workers, n, grain int, sched Sched, body func(lo, hi, chunk, worker int)) {
	ForTopo(p, workers, n, grain, sched, Topology{}, body)
}

// ForTopo is For with an explicit socket topology for the NUMA policy
// (the other policies ignore it). The zero Topology resolves to
// DefaultTopology.
func ForTopo(p *Pool, workers, n, grain int, sched Sched, topo Topology, body func(lo, hi, chunk, worker int)) {
	nchunks := NumChunks(n, grain)
	if nchunks == 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	if workers > nchunks {
		workers = nchunks
	}
	if workers < 1 {
		workers = 1
	}
	runChunk := func(c, worker int) {
		lo := c * grain
		hi := lo + grain
		if hi > n {
			hi = n
		}
		body(lo, hi, c, worker)
	}
	switch sched {
	case Static:
		p.Run(workers, func(worker int) {
			for c := worker; c < nchunks; c += workers {
				runChunk(c, worker)
			}
		})
	case Steal:
		forSteal(p, workers, nchunks, runChunk)
	case NUMA:
		forStealTopo(p, workers, nchunks, topo, runChunk)
	default: // Dynamic
		var next atomic.Int64
		p.Run(workers, func(worker int) {
			for {
				c := int(next.Add(1)) - 1
				if c >= nchunks {
					return
				}
				runChunk(c, worker)
			}
		})
	}
}

// StealSeed derives the per-region RNG seed for steal victim
// selection from the region's shape: the chunk count and the number
// of consumers (real workers here; virtual lanes in the simmachine's
// steal simulation, which shares this formula so the modeled
// discipline mirrors the real one). A pure function, so the same
// region reruns with the same steal schedule — reproducibility of the
// *real* execution, though nothing observable depends on it (outputs
// key off chunk indices and modeled costs key off the virtual-lane
// policy).
func StealSeed(nchunks, consumers int) uint64 {
	return xrand.Mix64(0x57ea1<<40 ^ uint64(nchunks)<<16 ^ uint64(consumers))
}

// forSteal executes the chunks under work stealing: worker w's deque
// is prefilled with chunks w, w+workers, ... (the Static assignment),
// pushed in descending order so owners pop their share in ascending
// index order; thieves take a victim's highest-index chunk.
//
// Termination needs no counter: nothing is pushed after the prefill,
// so once a worker's own pop and a deterministic sweep of every other
// deque come up empty, all chunks have been claimed — their claimants
// finish them before returning from this region (Run waits on every
// worker), so the idle worker can exit instead of spinning.
func forSteal(p *Pool, workers, nchunks int, runChunk func(c, worker int)) {
	deques := prefillDeques(workers, nchunks)
	seed := StealSeed(nchunks, workers)
	p.Run(workers, func(worker int) {
		rng := xrand.New(seed ^ xrand.Mix64(uint64(worker)+1))
		own := deques[worker]
		for {
			if c, ok := own.PopBottom(); ok {
				runChunk(int(c), worker)
				continue
			}
			// Randomized victims first (decorrelates thieves), ...
			stole := false
			for tries := 0; tries < workers; tries++ {
				v := int(rng.Uint64() % uint64(workers))
				if v == worker {
					continue
				}
				if c, ok := deques[v].Steal(); ok {
					runChunk(int(c), worker)
					stole = true
					break
				}
			}
			if stole {
				continue
			}
			// ... then a deterministic sweep: empty everywhere means
			// every chunk is claimed and this worker is done.
			found := false
			for off := 1; off < workers; off++ {
				if c, ok := deques[(worker+off)%workers].Steal(); ok {
					runChunk(int(c), worker)
					found = true
					break
				}
			}
			if !found {
				return
			}
		}
	})
}
