package server

import (
	"container/heap"
	"math"
	"sort"

	"github.com/hpcl-repro/epg/internal/graph"
)

// Sketch is a landmark-distance oracle: for K high-degree landmarks it
// stores exact single-source distances to every vertex, and estimates
// dist(u,v) as min over landmarks L of d(L,u)+d(L,v) — an upper bound
// by the triangle inequality, exact whenever a shortest u-v path runs
// through a landmark. This is the degraded-mode answer: O(K) lookups
// instead of a traversal, precision traded for immediacy.
type Sketch struct {
	landmarks []graph.VID
	hops      [][]int32   // hops[l][v]; -1 unreachable
	dist      [][]float64 // weighted distances; nil on unweighted datasets
}

// BuildSketch selects the k highest-degree vertices (ties broken
// toward lower ID, so the landmark set is deterministic) and runs one
// serial BFS — plus one serial Dijkstra when the CSR is weighted —
// per landmark. Built once at startup on the homogenized CSR; the
// build is plain Go, off the modeled machine, because it is part of
// daemon startup rather than any measured phase.
func BuildSketch(c *graph.CSR, k int) *Sketch {
	n := c.NumVertices
	if k > n {
		k = n
	}
	s := &Sketch{}
	if k <= 0 || n == 0 {
		return s
	}
	order := make([]graph.VID, n)
	for i := range order {
		order[i] = graph.VID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := c.Degree(order[i]), c.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	s.landmarks = append(s.landmarks, order[:k]...)

	s.hops = make([][]int32, k)
	if c.Weights != nil {
		s.dist = make([][]float64, k)
	}
	for li, l := range s.landmarks {
		s.hops[li] = bfsHops(c, l)
		if c.Weights != nil {
			s.dist[li] = dijkstra(c, l)
		}
	}
	return s
}

// Landmarks returns the landmark set (for logs and tests).
func (s *Sketch) Landmarks() []graph.VID { return s.landmarks }

// EstimateHops returns the sketch upper bound on the hop distance, or
// -1 if no landmark reaches both endpoints.
func (s *Sketch) EstimateHops(u, v graph.VID) float64 {
	if u == v {
		return 0
	}
	best := int32(-1)
	for li := range s.hops {
		hu, hv := s.hops[li][u], s.hops[li][v]
		if hu < 0 || hv < 0 {
			continue
		}
		if sum := hu + hv; best < 0 || sum < best {
			best = sum
		}
	}
	return float64(best)
}

// EstimateDist returns the sketch upper bound on the weighted
// distance, or -1 if unreachable via every landmark (or unweighted).
func (s *Sketch) EstimateDist(u, v graph.VID) float64 {
	if s.dist == nil {
		return -1
	}
	if u == v {
		return 0
	}
	best := math.Inf(1)
	for li := range s.dist {
		du, dv := s.dist[li][u], s.dist[li][v]
		if sum := du + dv; sum < best {
			best = sum
		}
	}
	if math.IsInf(best, 1) {
		return -1
	}
	return best
}

// lookups is the per-estimate landmark count, for the executor's
// modeled charge.
func (s *Sketch) lookups() int { return len(s.landmarks) }

// bfsHops is a plain serial BFS returning hop counts (-1 unreached).
func bfsHops(c *graph.CSR, root graph.VID) []int32 {
	hops := make([]int32, c.NumVertices)
	for i := range hops {
		hops[i] = -1
	}
	hops[root] = 0
	queue := []graph.VID{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range c.Neighbors(v) {
			if hops[u] < 0 {
				hops[u] = hops[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return hops
}

// distItem is a Dijkstra frontier entry.
type distItem struct {
	v graph.VID
	d float64
}

type distHeap []distItem

func (h distHeap) Len() int { return len(h) }
func (h distHeap) Less(i, j int) bool {
	if h[i].d != h[j].d {
		return h[i].d < h[j].d
	}
	return h[i].v < h[j].v // deterministic tie-break
}
func (h distHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)   { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// dijkstra is a plain serial shortest-path pass (lazy-deletion heap).
func dijkstra(c *graph.CSR, root graph.VID) []float64 {
	n := c.NumVertices
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[root] = 0
	h := &distHeap{{v: root, d: 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(distItem)
		if it.d > dist[it.v] {
			continue
		}
		adj := c.Neighbors(it.v)
		ws := c.NeighborWeights(it.v)
		for i, u := range adj {
			if nd := it.d + float64(ws[i]); nd < dist[u] {
				dist[u] = nd
				heap.Push(h, distItem{v: u, d: nd})
			}
		}
	}
	return dist
}
