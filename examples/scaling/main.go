// scaling reproduces Figs. 5 and 6: the strong-scaling sweep of BFS
// across thread counts {1, 2, 4, ..., 72} with four trials per point,
// printing speedup and parallel efficiency per engine.
//
//	go run ./examples/scaling [-scale N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/hpcl-repro/epg"
)

func main() {
	scale := flag.Int("scale", 14, "Kronecker scale (the paper uses 23)")
	trials := flag.Int("trials", 4, "trials per point (the paper used 4)")
	flag.Parse()

	suite := epg.NewSuite()
	name := fmt.Sprintf("kron-%d", *scale)
	g, err := suite.Dataset(name)
	if err != nil {
		log.Fatal(err)
	}
	threads := []int{1, 2, 4, 8, 16, 32, 64, 72}
	fmt.Printf("BFS strong scaling on %s (%d vertices, %d edges), threads %v\n\n",
		name, g.NumVertices(), g.NumEdges(), threads)

	series, err := suite.Sweep(epg.Spec{Algorithm: epg.BFS}, g, threads, *trials)
	if err != nil {
		log.Fatal(err)
	}
	if err := epg.RenderScalingFigure(os.Stdout,
		"Figs. 5/6: BFS speedup and parallel efficiency", series); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe paper's scale-23 findings to compare against: generally")
	fmt.Println("poor scaling at this problem size; GAP the most scalable, with")
	fmt.Println("GraphMat closing in at high thread counts.")
}
