package graph

import (
	"math/rand"
	"testing"
)

// referenceCSR is the pre-rewrite builder, kept as a serial oracle: a
// plain two-pass counting sort with per-vertex cursors. The rewritten
// BuildCSR must produce an equivalent structure (identical once
// adjacency is sorted; bit-identical offsets always).
func referenceCSR(el *EdgeList, opt BuildOptions) *CSR {
	n := el.NumVertices
	counts := make([]int64, n+1)
	for _, e := range el.Edges {
		if opt.DropSelfLoops && e.Src == e.Dst {
			continue
		}
		counts[e.Src+1]++
		if opt.Symmetrize {
			counts[e.Dst+1]++
		}
	}
	for i := 1; i <= n; i++ {
		counts[i] += counts[i-1]
	}
	csr := &CSR{NumVertices: n, Offsets: counts, Adj: make([]VID, counts[n])}
	if el.Weighted {
		csr.Weights = make([]float32, counts[n])
	}
	cursors := make([]int64, n)
	copy(cursors, counts[:n])
	place := func(src, dst VID, w float32) {
		p := cursors[src]
		cursors[src]++
		csr.Adj[p] = dst
		if el.Weighted {
			csr.Weights[p] = w
		}
	}
	for _, e := range el.Edges {
		if opt.DropSelfLoops && e.Src == e.Dst {
			continue
		}
		place(e.Src, e.Dst, e.W)
		if opt.Symmetrize {
			place(e.Dst, e.Src, e.W)
		}
	}
	if opt.Sort || opt.Dedup {
		csr.SortAdjacency()
	}
	if opt.Dedup {
		csr = dedupCSR(csr)
	}
	return csr
}

func randomEdgeListDup(r *rand.Rand, n, m int, weighted, directed bool) *EdgeList {
	el := &EdgeList{NumVertices: n, Weighted: weighted, Directed: directed}
	for i := 0; i < m; i++ {
		e := Edge{Src: VID(r.Intn(n)), Dst: VID(r.Intn(n))}
		if weighted {
			e.W = float32(r.Intn(100)+1) / 100
		}
		el.Edges = append(el.Edges, e)
		if r.Intn(4) == 0 { // force duplicates
			el.Edges = append(el.Edges, e)
		}
		if r.Intn(8) == 0 { // force self-loops
			v := VID(r.Intn(n))
			el.Edges = append(el.Edges, Edge{Src: v, Dst: v, W: e.W})
		}
	}
	return el
}

// canonicalizeRows re-sorts every adjacency row by (neighbor, weight):
// SortAdjacency alone leaves the weight order among duplicate
// parallel edges unspecified (unstable sort), which is irrelevant to
// every kernel but would make a bitwise comparison flaky.
func canonicalizeRows(c *CSR) {
	for v := 0; v < c.NumVertices; v++ {
		lo, hi := c.Offsets[v], c.Offsets[v+1]
		adj := c.Adj[lo:hi]
		if c.Weights == nil {
			continue
		}
		w := c.Weights[lo:hi]
		for i := 1; i < len(adj); i++ { // rows are tiny: insertion sort
			for j := i; j > 0 && (adj[j] < adj[j-1] || (adj[j] == adj[j-1] && w[j] < w[j-1])); j-- {
				adj[j], adj[j-1] = adj[j-1], adj[j]
				w[j], w[j-1] = w[j-1], w[j]
			}
		}
	}
}

func sameCSR(t *testing.T, label string, want, got *CSR) {
	t.Helper()
	canonicalizeRows(want)
	canonicalizeRows(got)
	if got.NumVertices != want.NumVertices {
		t.Fatalf("%s: vertices %d vs %d", label, got.NumVertices, want.NumVertices)
	}
	for i := range want.Offsets {
		if got.Offsets[i] != want.Offsets[i] {
			t.Fatalf("%s: offsets[%d] = %d, want %d", label, i, got.Offsets[i], want.Offsets[i])
		}
	}
	if len(got.Adj) != len(want.Adj) {
		t.Fatalf("%s: adj length %d vs %d", label, len(got.Adj), len(want.Adj))
	}
	for i := range want.Adj {
		if got.Adj[i] != want.Adj[i] {
			t.Fatalf("%s: adj[%d] = %d, want %d", label, i, got.Adj[i], want.Adj[i])
		}
	}
	if (got.Weights == nil) != (want.Weights == nil) {
		t.Fatalf("%s: weights presence differs", label)
	}
	for i := range want.Weights {
		if got.Weights[i] != want.Weights[i] {
			t.Fatalf("%s: weights[%d] = %v, want %v", label, i, got.Weights[i], want.Weights[i])
		}
	}
}

// TestBuildCSREquivalentToReference is the old-vs-new builder wall:
// on randomized edge lists across the full option grid (weighted,
// symmetrized, deduplicated, self-loop-dropping) and a spread of
// worker counts, the atomic-free builder must match the serial
// reference exactly once adjacency order is canonicalized (Sort), and
// its offsets must match even unsorted.
func TestBuildCSREquivalentToReference(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		n := 2 + r.Intn(300)
		m := r.Intn(6000)
		weighted := trial%2 == 0
		el := randomEdgeListDup(r, n, m, weighted, trial%3 == 0)
		for _, opt := range []BuildOptions{
			{Sort: true},
			{Symmetrize: true, Sort: true},
			{DropSelfLoops: true, Sort: true},
			{Symmetrize: true, DropSelfLoops: true, Dedup: true, Sort: true},
			{DropSelfLoops: true, Dedup: true, Sort: true},
		} {
			want := referenceCSR(el, opt)
			for _, workers := range []int{1, 2, 3, 8} {
				opt.Workers = workers
				got := BuildCSR(el, opt)
				if err := got.Validate(); err != nil {
					t.Fatalf("trial %d workers %d: %v", trial, workers, err)
				}
				sameCSR(t, "sorted csr", want, got)
			}
		}
		// Unsorted: adjacency order is only deterministic up to worker
		// count, but the row offsets never depend on it.
		want := referenceCSR(el, BuildOptions{Symmetrize: true})
		for _, workers := range []int{1, 2, 5} {
			got := BuildCSR(el, BuildOptions{Symmetrize: true, Workers: workers})
			for i := range want.Offsets {
				if got.Offsets[i] != want.Offsets[i] {
					t.Fatalf("unsorted offsets[%d] = %d, want %d", i, got.Offsets[i], want.Offsets[i])
				}
			}
		}
	}
}

// TestTransposeEquivalentToReference checks the atomic-free transpose
// against a serial per-row scatter (the pre-rewrite implementation's
// output order: in-neighbors ascending by source).
func TestTransposeEquivalentToReference(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		n := 2 + r.Intn(200)
		el := randomEdgeListDup(r, n, r.Intn(4000), trial%2 == 1, true)
		c := BuildCSR(el, BuildOptions{Sort: true, Workers: 2})

		want := &CSR{NumVertices: n, Offsets: make([]int64, n+1), Adj: make([]VID, len(c.Adj))}
		if c.Weights != nil {
			want.Weights = make([]float32, len(c.Weights))
		}
		for _, u := range c.Adj {
			want.Offsets[u+1]++
		}
		for i := 1; i <= n; i++ {
			want.Offsets[i] += want.Offsets[i-1]
		}
		cursors := make([]int64, n)
		copy(cursors, want.Offsets[:n])
		for v := 0; v < n; v++ {
			for i := c.Offsets[v]; i < c.Offsets[v+1]; i++ {
				u := c.Adj[i]
				want.Adj[cursors[u]] = VID(v)
				if c.Weights != nil {
					want.Weights[cursors[u]] = c.Weights[i]
				}
				cursors[u]++
			}
		}
		for _, workers := range []int{1, 2, 4} {
			got := Transpose(c, workers)
			if err := got.Validate(); err != nil {
				t.Fatal(err)
			}
			sameCSR(t, "transpose", want, got)
		}
	}
}
