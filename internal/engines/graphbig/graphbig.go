// Package graphbig implements a Go analogue of GraphBIG (Nai et al.,
// SC'15), IBM System G's benchmark suite.
//
// Architectural character preserved from the original:
//
//   - a property-graph layout: per-vertex objects own their adjacency
//     lists (slice-of-slices here, matching the pointer-chasing and
//     allocation overhead of System G's vertex/edge property model);
//   - the input file is read and the graph built simultaneously —
//     there is no separately-timed construction phase, which is why
//     Figs. 2 and 3 omit GraphBIG from the construction plots;
//   - frontier-based kernels guard shared state with per-vertex
//     atomics (System G uses fine-grained locks), making GraphBIG the
//     most synchronization-heavy shared-memory system in the study;
//   - PageRank computes in float32 (single-precision vertex
//     properties), so the homogenized ε = 6e-8 L1 stop sits at the
//     precision floor.
package graphbig

import (
	"math"
	"sync"
	"sync/atomic"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// Cost constants: property-graph traversal pays pointer chasing and
// per-vertex lock traffic on every step.
var (
	costLoadEdge  = simmachine.Cost{Cycles: 34, Bytes: 48}
	costBFSEdge   = simmachine.Cost{Cycles: 30, Bytes: 38, Atomics: 1}
	costVisit     = simmachine.Cost{Cycles: 12, Bytes: 20, Atomics: 3}
	costSSSPEdge  = simmachine.Cost{Cycles: 34, Bytes: 44, Atomics: 1}
	costPREdge    = simmachine.Cost{Cycles: 18, Bytes: 24, Atomics: 1}
	costPRVertex  = simmachine.Cost{Cycles: 12, Bytes: 28}
	costCDLPEdge  = simmachine.Cost{Cycles: 30, Bytes: 30}
	costLCCCheck  = simmachine.Cost{Cycles: 14, Bytes: 18}
	costWCCEdge   = simmachine.Cost{Cycles: 12, Bytes: 22}
	costPropTouch = simmachine.Cost{Cycles: 6, Bytes: 12}
)

// Engine is the GraphBIG analogue.
type Engine struct{}

// New returns the engine.
func New() *Engine { return &Engine{} }

// Name implements engines.Engine.
func (e *Engine) Name() string { return "GraphBIG" }

// SeparateConstruction implements engines.Engine: GraphBIG reads the
// file and builds the graph simultaneously.
func (e *Engine) SeparateConstruction() bool { return false }

// Has implements engines.Engine.
func (e *Engine) Has(alg engines.Algorithm) bool {
	switch alg {
	case engines.BFS, engines.SSSP, engines.PageRank,
		engines.CDLP, engines.LCC, engines.WCC:
		return true
	}
	return false
}

// vertexProp is the per-vertex property object: adjacency plus the
// mutable algorithm properties System G attaches to vertices.
type vertexProp struct {
	out []graph.VID
	in  []graph.VID // nil when the graph is undirected (out is symmetric)
	w   []float32   // parallel to out; nil if unweighted
}

// Instance is a loaded GraphBIG property graph.
type Instance struct {
	m        *simmachine.Machine
	vertices []vertexProp
	directed bool
	weighted bool
	n        int
}

// Load implements engines.Engine: reading and construction are one
// phase, charged here.
func (e *Engine) Load(el *graph.EdgeList, m *simmachine.Machine) (engines.Instance, error) {
	if err := el.Validate(); err != nil {
		return nil, err
	}
	// Homogenized simple graph, then re-materialized as per-vertex
	// property objects.
	csr := graph.BuildCSR(el, graph.BuildOptions{
		Symmetrize:    !el.Directed,
		DropSelfLoops: true,
		Dedup:         true,
		Sort:          true,
	})
	n := csr.NumVertices
	inst := &Instance{m: m, directed: el.Directed, weighted: el.Weighted, n: n}
	inst.vertices = make([]vertexProp, n)
	for v := 0; v < n; v++ {
		inst.vertices[v].out = csr.Neighbors(graph.VID(v))
		if el.Weighted {
			inst.vertices[v].w = csr.NeighborWeights(graph.VID(v))
		}
	}
	if el.Directed {
		tr := graph.Transpose(csr, 0)
		tr.SortAdjacency()
		for v := 0; v < n; v++ {
			inst.vertices[v].in = tr.Neighbors(graph.VID(v))
		}
	}
	// Charge the combined read+build pass.
	m.FileRead(int64(len(el.Edges))*16, true)
	m.ParallelFor(len(el.Edges), 2048, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
		w.Charge(costLoadEdge.Scale(float64(hi - lo)))
	})
	return inst, nil
}

// BuildStructure implements engines.Instance: a no-op, construction
// happened during Load.
func (inst *Instance) BuildStructure() {}

// inNeighbors returns the in-adjacency (equal to out for undirected).
func (inst *Instance) inNeighbors(v graph.VID) []graph.VID {
	if !inst.directed {
		return inst.vertices[v].out
	}
	return inst.vertices[v].in
}

// BFS implements engines.Instance: plain level-synchronous traversal
// with per-vertex visited atomics.
func (inst *Instance) BFS(root graph.VID) (*engines.BFSResult, error) {
	n := inst.n
	res := &engines.BFSResult{
		Root:   root,
		Parent: make([]int64, n),
		Depth:  make([]int64, n),
	}
	for i := range res.Parent {
		res.Parent[i] = engines.NoParent
		res.Depth[i] = -1
	}
	res.Parent[root] = int64(root)
	res.Depth[root] = 0

	frontier := []graph.VID{root}
	level := int64(0)
	var examined int64
	for len(frontier) > 0 {
		var mu sync.Mutex
		var next []graph.VID
		inst.m.ParallelFor(len(frontier), 32, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
			var local []graph.VID
			var edges, visits int64
			for _, v := range frontier[lo:hi] {
				for _, u := range inst.vertices[v].out {
					edges++
					if atomic.LoadInt64(&res.Parent[u]) != engines.NoParent {
						continue
					}
					visits++
					if atomic.CompareAndSwapInt64(&res.Parent[u], engines.NoParent, int64(v)) {
						atomic.StoreInt64(&res.Depth[u], level+1)
						local = append(local, u)
					}
				}
			}
			if len(local) > 0 {
				mu.Lock()
				next = append(next, local...)
				mu.Unlock()
			}
			atomic.AddInt64(&examined, edges)
			w.Charge(costBFSEdge.Scale(float64(edges)))
			w.Charge(costVisit.Scale(float64(visits)))
		})
		frontier = next
		level++
	}
	res.EdgesExamined = examined
	return res, nil
}

// SSSP implements engines.Instance: frontier-driven Bellman-Ford
// relaxation (System G's "chaotic" parallel relaxation) with CAS-min
// distances.
func (inst *Instance) SSSP(root graph.VID) (*engines.SSSPResult, error) {
	if !inst.weighted {
		return nil, engines.ErrUnsupported
	}
	n := inst.n
	res := &engines.SSSPResult{
		Root:   root,
		Dist:   make([]float64, n),
		Parent: make([]int64, n),
	}
	dist := make([]uint64, n)
	inf := math.Float64bits(math.Inf(1))
	for i := range dist {
		dist[i] = inf
		res.Parent[i] = engines.NoParent
	}
	dist[root] = math.Float64bits(0)
	res.Parent[root] = int64(root)

	active := []graph.VID{root}
	inActive := make([]int32, n)
	var relaxations int64
	for len(active) > 0 {
		var mu sync.Mutex
		var next []graph.VID
		inst.m.ParallelFor(len(active), 32, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
			var local []graph.VID
			var edges int64
			for _, v := range active[lo:hi] {
				atomic.StoreInt32(&inActive[v], 0)
				dv := math.Float64frombits(atomic.LoadUint64(&dist[v]))
				vp := &inst.vertices[v]
				for i, u := range vp.out {
					edges++
					nd := dv + float64(vp.w[i])
					for {
						old := atomic.LoadUint64(&dist[u])
						if math.Float64frombits(old) <= nd {
							break
						}
						if atomic.CompareAndSwapUint64(&dist[u], old, math.Float64bits(nd)) {
							atomic.StoreInt64(&res.Parent[u], int64(v))
							if atomic.CompareAndSwapInt32(&inActive[u], 0, 1) {
								local = append(local, u)
							}
							break
						}
					}
				}
			}
			if len(local) > 0 {
				mu.Lock()
				next = append(next, local...)
				mu.Unlock()
			}
			atomic.AddInt64(&relaxations, edges)
			w.Charge(costSSSPEdge.Scale(float64(edges)))
			w.Charge(costPropTouch.Scale(float64(hi - lo)))
		})
		active = next
	}
	for v := 0; v < n; v++ {
		res.Dist[v] = math.Float64frombits(dist[v])
	}
	res.Relaxations = relaxations
	return res, nil
}
