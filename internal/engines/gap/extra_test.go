package gap

import (
	"math"
	"testing"

	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/verify"
)

func TestTriangleCountKnownGraph(t *testing.T) {
	// Two triangles sharing edge 1-2: {0,1,2} and {1,2,3}.
	el := &graph.EdgeList{
		NumVertices: 4,
		Weighted:    true,
		Edges: []graph.Edge{
			{Src: 0, Dst: 1, W: 1}, {Src: 1, Dst: 2, W: 1}, {Src: 2, Dst: 0, W: 1},
			{Src: 1, Dst: 3, W: 1}, {Src: 2, Dst: 3, W: 1},
		},
	}
	inst := load(t, New(), el, 4)
	got, err := inst.TriangleCount()
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("triangles = %d, want 2", got)
	}
}

func TestTriangleCountMatchesReference(t *testing.T) {
	el := kron(10, 21)
	p := verify.Prepare(el)
	want := verify.TriangleCount(p)
	inst := load(t, New(), el, 8)
	got, err := inst.TriangleCount()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("triangles = %d, reference %d", got, want)
	}
	if want == 0 {
		t.Error("test graph has no triangles; pick a denser seed")
	}
}

func TestTriangleCountRejectsDirected(t *testing.T) {
	el := &graph.EdgeList{NumVertices: 3, Directed: true,
		Edges: []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}}
	inst := load(t, New(), el, 2)
	if _, err := inst.TriangleCount(); err == nil {
		t.Error("directed graph accepted")
	}
}

func TestBetweennessCentralityPath(t *testing.T) {
	// Path 0-1-2-3-4: unnormalized BC from all sources is
	// 2*(k*(n-1-k)) pairs... just compare with the reference.
	el := &graph.EdgeList{NumVertices: 5, Weighted: true}
	for i := 0; i < 4; i++ {
		el.Edges = append(el.Edges, graph.Edge{Src: graph.VID(i), Dst: graph.VID(i + 1), W: 1})
	}
	p := verify.Prepare(el)
	sources := []graph.VID{0, 1, 2, 3, 4}
	want := verify.BetweennessCentrality(p, sources)
	inst := load(t, New(), el, 4)
	got, err := inst.BetweennessCentrality(sources)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Errorf("bc[%d] = %v, want %v", v, got[v], want[v])
		}
	}
	// The middle of a path carries the most shortest paths.
	if got[2] <= got[1] || got[1] <= got[0] {
		t.Errorf("path BC not peaked at center: %v", got)
	}
}

func TestBetweennessCentralityMatchesReferenceOnKron(t *testing.T) {
	el := kron(9, 5)
	p := verify.Prepare(el)
	var sources []graph.VID
	for v := 0; v < p.Out.NumVertices && len(sources) < 4; v++ {
		if p.Out.Degree(graph.VID(v)) > 1 {
			sources = append(sources, graph.VID(v))
		}
	}
	want := verify.BetweennessCentrality(p, sources)
	inst := load(t, New(), el, 8)
	got, err := inst.BetweennessCentrality(sources)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		tol := 1e-9 * (1 + math.Abs(want[v]))
		if math.Abs(got[v]-want[v]) > tol {
			t.Fatalf("bc[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestBetweennessCentralityErrors(t *testing.T) {
	inst := load(t, New(), kron(6, 1), 2)
	if _, err := inst.BetweennessCentrality(nil); err == nil {
		t.Error("no sources accepted")
	}
	if _, err := inst.BetweennessCentrality([]graph.VID{1 << 20}); err == nil {
		t.Error("out-of-range source accepted")
	}
}
