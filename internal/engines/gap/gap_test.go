package gap

import (
	"errors"
	"math"
	"testing"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/kronecker"
	"github.com/hpcl-repro/epg/internal/simmachine"
	"github.com/hpcl-repro/epg/internal/verify"
)

func machine(threads int) *simmachine.Machine {
	return simmachine.New(simmachine.Haswell72(), threads)
}

func load(t *testing.T, e *Engine, el *graph.EdgeList, threads int) *Instance {
	t.Helper()
	inst, err := e.Load(el, machine(threads))
	if err != nil {
		t.Fatal(err)
	}
	inst.(*Instance).BuildStructure()
	return inst.(*Instance)
}

func kron(scale int, seed uint64) *graph.EdgeList {
	return kronecker.Generate(kronecker.Params{Scale: scale, Seed: seed})
}

func TestEngineMetadata(t *testing.T) {
	e := New()
	if e.Name() != "GAP" {
		t.Errorf("name = %q", e.Name())
	}
	if !e.SeparateConstruction() {
		t.Error("GAP must have a separate construction phase")
	}
	if e.Alpha != DefaultAlpha || e.Beta != DefaultBeta {
		t.Error("defaults not applied")
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	bad := &graph.EdgeList{NumVertices: 2, Edges: []graph.Edge{{Src: 0, Dst: 9}}}
	if _, err := New().Load(bad, machine(2)); err == nil {
		t.Error("invalid edge list accepted")
	}
}

func TestUnsupportedAlgorithms(t *testing.T) {
	inst := load(t, New(), kron(6, 1), 2)
	if _, err := inst.CDLP(5); !errors.Is(err, engines.ErrUnsupported) {
		t.Error("CDLP should be unsupported")
	}
	if _, err := inst.LCC(); !errors.Is(err, engines.ErrUnsupported) {
		t.Error("LCC should be unsupported")
	}
}

func TestDirectionOptimizationTriggers(t *testing.T) {
	// On a dense Kronecker graph the frontier explodes quickly:
	// edges examined should be well below the full top-down count
	// (which is ~every directed edge).
	el := kron(12, 5)
	p := verify.Prepare(el)
	inst := load(t, New(), el, 8)
	var root graph.VID
	for v := 0; v < p.Out.NumVertices; v++ {
		if p.Out.Degree(graph.VID(v)) > 1 {
			root = graph.VID(v)
			break
		}
	}
	res, err := inst.BFS(root)
	if err != nil {
		t.Fatal(err)
	}
	full := p.Out.NumEdges()
	if res.EdgesExamined >= full {
		t.Errorf("examined %d edges of %d: direction optimization never engaged", res.EdgesExamined, full)
	}
	// And the result must still be exact.
	ref := verify.BFS(p, root)
	if err := verify.ValidateBFS(p, res, ref); err != nil {
		t.Error(err)
	}
}

func TestAlphaDisablesBottomUp(t *testing.T) {
	// Alpha <= 0 disables the bottom-up switch, so examined edges
	// equal the plain top-down count: one inspection per out-edge
	// of every reached vertex.
	el := kron(10, 9)
	p := verify.Prepare(el)
	e := New()
	e.Alpha = 0
	inst := load(t, e, el, 4)
	root := graph.VID(0)
	for v := 0; v < p.Out.NumVertices; v++ {
		if p.Out.Degree(graph.VID(v)) > 1 {
			root = graph.VID(v)
			break
		}
	}
	res, err := inst.BFS(root)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	ref := verify.BFS(p, root)
	for v := 0; v < p.Out.NumVertices; v++ {
		if ref.Parent[v] != engines.NoParent {
			want += p.Out.Degree(graph.VID(v))
		}
	}
	if res.EdgesExamined != want {
		t.Errorf("top-down examined %d edges, want %d", res.EdgesExamined, want)
	}
}

func TestSSSPDeltaInsensitivity(t *testing.T) {
	// Distances must be identical (within float noise) for any Δ.
	el := kron(10, 3)
	p := verify.Prepare(el)
	root := graph.VID(1)
	for v := 0; v < p.Out.NumVertices; v++ {
		if p.Out.Degree(graph.VID(v)) > 1 {
			root = graph.VID(v)
			break
		}
	}
	ref := verify.SSSP(p, root)
	for _, delta := range []float64{0.05, 0.25, 1.5} {
		e := New()
		e.Delta = delta
		inst := load(t, e, el, 4)
		res, err := inst.SSSP(root)
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.ValidateSSSP(p, res, ref); err != nil {
			t.Errorf("delta=%v: %v", delta, err)
		}
	}
}

func TestSSSPUnweightedUnsupported(t *testing.T) {
	el := &graph.EdgeList{NumVertices: 3, Directed: true,
		Edges: []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}}
	inst := load(t, New(), el, 2)
	if _, err := inst.SSSP(0); !errors.Is(err, engines.ErrUnsupported) {
		t.Errorf("err = %v, want ErrUnsupported", err)
	}
}

func TestPageRankConvergesAndNormalizes(t *testing.T) {
	el := kron(10, 7)
	inst := load(t, New(), el, 4)
	res, err := inst.PageRank(engines.PROpts{})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range res.Rank {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ranks sum to %v", sum)
	}
	if res.Iterations <= 1 {
		t.Errorf("converged suspiciously fast: %d iterations", res.Iterations)
	}
	// Tighter epsilon cannot converge in fewer iterations.
	strict, err := inst.PageRank(engines.PROpts{Epsilon: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if strict.Iterations < res.Iterations {
		t.Errorf("stricter epsilon took fewer iterations (%d < %d)", strict.Iterations, res.Iterations)
	}
}

func TestBFSModelTimeScalesDown(t *testing.T) {
	// More virtual threads => less modeled BFS time on a sizable
	// graph (up to bandwidth limits). Small graphs are dominated by
	// fork/barrier overhead — the paper's own scaling caveat — so
	// this uses the largest quick-test scale.
	el := kron(16, 2)
	p := verify.Prepare(el)
	var root graph.VID
	for v := 0; v < p.Out.NumVertices; v++ {
		if p.Out.Degree(graph.VID(v)) > 1 {
			root = graph.VID(v)
			break
		}
	}
	elapsed := func(threads int) float64 {
		inst := load(t, New(), el, threads)
		m := inst.m
		start := m.Elapsed()
		if _, err := inst.BFS(root); err != nil {
			t.Fatal(err)
		}
		return m.Elapsed() - start
	}
	t1, t8 := elapsed(1), elapsed(8)
	if t8 >= t1 {
		t.Errorf("8 threads (%v) not faster than 1 (%v)", t8, t1)
	}
	if speedup := t1 / t8; speedup < 1.5 {
		t.Errorf("8-thread speedup only %.2f", speedup)
	}
}

func TestBuildStructureChargesTime(t *testing.T) {
	m := machine(8)
	inst, err := New().Load(kron(12, 4), m)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Elapsed()
	inst.BuildStructure()
	if m.Elapsed() <= before {
		t.Error("construction charged no modeled time")
	}
}

func TestWCCMatchesReference(t *testing.T) {
	el := kron(10, 13)
	p := verify.Prepare(el)
	ref := verify.WCC(p)
	inst := load(t, New(), el, 4)
	got, err := inst.WCC()
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.ValidateWCC(got, ref); err != nil {
		t.Error(err)
	}
}
