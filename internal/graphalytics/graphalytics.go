// Package graphalytics reproduces the comparison methodology of LDBC
// Graphalytics v0.3 as the paper characterizes it — the foil against
// which easy-parallel-graph-* is positioned:
//
//   - each experiment is run exactly once ("just one run per
//     experiment is performed", Table I);
//   - what counts as the reported runtime differs per platform, the
//     paper's central fairness critique: GraphMat's reported time
//     includes reading the input file from disk and building the
//     matrix, GraphBIG's covers only the computation, and
//     PowerGraph's includes graph ingest and engine spin-up;
//   - platforms without a native kernel get a driver-provided one:
//     Graphalytics ships a BFS vertex program for PowerGraph, which
//     this package reproduces by running BFS as unit-weight SSSP
//     through the GAS engine;
//   - output is an HTML page per software package (Fig. 7).
package graphalytics

import (
	"fmt"
	"html/template"
	"io"
	"sort"
	"time"

	"github.com/hpcl-repro/epg/internal/core"
	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/harness"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// Platforms compared by the paper's Graphalytics experiments
// (Tables I and II).
var Platforms = []string{"GraphBIG", "PowerGraph", "GraphMat"}

// Algorithms in Graphalytics's column order (Table I).
var Algorithms = []engines.Algorithm{
	engines.BFS, engines.CDLP, engines.LCC,
	engines.PageRank, engines.SSSP, engines.WCC,
}

// Cell is one (platform, dataset, algorithm) measurement.
type Cell struct {
	Platform  string
	Dataset   string
	Algorithm engines.Algorithm
	// Seconds is the platform-reported runtime under Graphalytics's
	// inconsistent accounting; NA marks unsupported combinations
	// (e.g. SSSP on an unweighted graph).
	Seconds float64
	NA      bool
	// Breakdown retained so reports can expose the inconsistency.
	FileReadSec     float64
	ConstructionSec float64
	AlgorithmSec    float64
	WallSec         float64
}

// Comparator runs the methodology.
type Comparator struct {
	Registry interface {
		New(name string) (engines.Engine, error)
	}
	Model   simmachine.Model
	Threads int
	Seed    uint64
}

// New returns a comparator at the paper's 32-thread configuration.
func New(registry interface {
	New(name string) (engines.Engine, error)
}) *Comparator {
	return &Comparator{
		Registry: registry,
		Model:    simmachine.Haswell72(),
		Threads:  32,
		Seed:     1,
	}
}

// RunDataset measures every (platform, algorithm) cell on one
// dataset, one run each.
func (c *Comparator) RunDataset(dataset string, el *graph.EdgeList) ([]Cell, error) {
	var cells []Cell
	for _, platform := range Platforms {
		eng, err := c.Registry.New(platform)
		if err != nil {
			return nil, err
		}
		m := simmachine.New(c.Model, c.Threads)

		// Ingest phase, timed for the platforms whose reported
		// numbers include it.
		var fileRead, construction float64
		if eng.SeparateConstruction() {
			m.FileRead(int64(len(el.Edges))*harness.BytesPerTextEdge, true)
			fileRead = m.Elapsed()
		}
		loadStart := m.Elapsed()
		inst, err := eng.Load(el, m)
		if err != nil {
			return nil, fmt.Errorf("graphalytics: %s load: %w", platform, err)
		}
		if eng.SeparateConstruction() {
			bs := m.Elapsed()
			inst.BuildStructure()
			construction = m.Elapsed() - bs
		} else {
			fileRead = m.Elapsed() - loadStart
		}

		root := pickRoot(el)
		for _, alg := range Algorithms {
			cell := Cell{
				Platform: platform, Dataset: dataset, Algorithm: alg,
				FileReadSec: fileRead, ConstructionSec: construction,
			}
			_, t0 := m.Mark()
			wall0 := time.Now()
			err := c.runOnce(platform, inst, el, alg, root, m)
			cell.WallSec = time.Since(wall0).Seconds()
			_, t1 := m.Mark()
			cell.AlgorithmSec = t1 - t0
			if err != nil {
				if err == engines.ErrUnsupported {
					cell.NA = true
					cells = append(cells, cell)
					continue
				}
				return nil, fmt.Errorf("graphalytics: %s %s: %w", platform, alg, err)
			}
			cell.Seconds = c.reportedTime(platform, cell)
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// runOnce executes one algorithm, with Graphalytics's driver-provided
// BFS for PowerGraph.
func (c *Comparator) runOnce(platform string, inst engines.Instance, el *graph.EdgeList, alg engines.Algorithm, root graph.VID, m *simmachine.Machine) error {
	if alg == engines.BFS && platform == "PowerGraph" {
		// The Graphalytics platform driver: BFS as unit-weight
		// SSSP through the GAS engine. The unit-weight copy is
		// prepared once per call, charged as a dense vector pass.
		unit := &graph.EdgeList{
			NumVertices: el.NumVertices,
			Edges:       make([]graph.Edge, len(el.Edges)),
			Weighted:    true,
			Directed:    el.Directed,
		}
		for i, e := range el.Edges {
			unit.Edges[i] = graph.Edge{Src: e.Src, Dst: e.Dst, W: 0.5}
		}
		eng, err := c.Registry.New(platform)
		if err != nil {
			return err
		}
		uinst, err := eng.Load(unit, m)
		if err != nil {
			return err
		}
		_, err = uinst.SSSP(root)
		return err
	}
	_, err := engines.RunAlgorithm(inst, alg, root)
	return err
}

// reportedTime applies each platform's (inconsistent) accounting.
func (c *Comparator) reportedTime(platform string, cell Cell) float64 {
	switch platform {
	case "GraphMat":
		// Includes reading the file from disk and building the
		// matrix (the paper's Table I critique).
		return cell.FileReadSec + cell.ConstructionSec + cell.AlgorithmSec
	case "GraphBIG":
		// Computation only.
		return cell.AlgorithmSec
	case "PowerGraph":
		// Ingest + partitioning + compute.
		return cell.FileReadSec + cell.AlgorithmSec
	default:
		return cell.AlgorithmSec
	}
}

func pickRoot(el *graph.EdgeList) graph.VID {
	csr := graph.BuildCSR(el, graph.BuildOptions{Symmetrize: !el.Directed, DropSelfLoops: true})
	roots := core.SelectRoots(csr, 1, 1)
	if len(roots) == 0 {
		return 0
	}
	return roots[0]
}

// WriteTable renders cells in the layout of Tables I and II: one row
// block per platform, one column per algorithm.
func WriteTable(w io.Writer, title string, cells []Cell) {
	type key struct {
		platform, dataset string
	}
	rows := map[key]map[engines.Algorithm]Cell{}
	var keys []key
	for _, c := range cells {
		k := key{c.Platform, c.Dataset}
		if rows[k] == nil {
			rows[k] = map[engines.Algorithm]Cell{}
			keys = append(keys, k)
		}
		rows[k][c.Algorithm] = c
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].platform != keys[j].platform {
			return keys[i].platform < keys[j].platform
		}
		return keys[i].dataset < keys[j].dataset
	})
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-12s %-14s", "platform", "dataset")
	for _, alg := range Algorithms {
		fmt.Fprintf(w, " %8s", alg)
	}
	fmt.Fprintln(w)
	for _, k := range keys {
		fmt.Fprintf(w, "%-12s %-14s", k.platform, k.dataset)
		for _, alg := range Algorithms {
			c, ok := rows[k][alg]
			if !ok || c.NA {
				fmt.Fprintf(w, " %9s", "N/A")
				continue
			}
			fmt.Fprintf(w, " %9s", formatSeconds(c.Seconds))
		}
		fmt.Fprintln(w)
	}
}

// formatSeconds keeps one decimal for paper-scale values and switches
// to significant digits for small modeled times.
func formatSeconds(s float64) string {
	if s >= 10 {
		return fmt.Sprintf("%.1f", s)
	}
	return fmt.Sprintf("%.3g", s)
}

var htmlTemplate = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html><head><title>Graphalytics report: {{.Platform}}</title></head>
<body>
<h1>Benchmark report &mdash; {{.Platform}}</h1>
<p>One run per experiment. Reported times use the platform's own accounting.</p>
<table border="1">
<tr><th>Dataset</th><th>Algorithm</th><th>Runtime (s)</th></tr>
{{range .Cells}}<tr><td>{{.Dataset}}</td><td>{{.Algorithm}}</td><td>{{if .NA}}N/A{{else}}{{printf "%.2f" .Seconds}}{{end}}</td></tr>
{{end}}</table>
</body></html>
`))

// WriteHTML emits one HTML page for the given platform (Fig. 7:
// "Graphalytics outputs one HTML page per software package").
func WriteHTML(w io.Writer, platform string, cells []Cell) error {
	var mine []Cell
	for _, c := range cells {
		if c.Platform == platform {
			mine = append(mine, c)
		}
	}
	return htmlTemplate.Execute(w, struct {
		Platform string
		Cells    []Cell
	}{platform, mine})
}
