package parallel

import (
	"math"
	"sync/atomic"
)

// cacheLine is the assumed false-sharing granularity for padded slots.
const cacheLine = 64

// Reducer accumulates one partial value per chunk and folds the slots
// in chunk-index order, making floating-point reductions bit-identical
// across runs and real worker counts (FP addition is not associative,
// so per-worker accumulation under dynamic scheduling would not be).
// Slots are cache-line padded so neighboring chunks never share a
// line.
type Reducer[T any] struct {
	slots []paddedSlot[T]
}

type paddedSlot[T any] struct {
	v T
	_ [cacheLine]byte
}

// NewReducer returns a reducer with nslots zero-valued slots — one per
// chunk, i.e. NumChunks(n, grain).
func NewReducer[T any](nslots int) *Reducer[T] {
	return &Reducer[T]{slots: make([]paddedSlot[T], nslots)}
}

// At returns the slot for chunk c. Each chunk must only touch its own
// slot; no synchronization is needed or performed.
func (r *Reducer[T]) At(c int) *T { return &r.slots[c].v }

// Fold combines all slots in chunk order starting from init.
func (r *Reducer[T]) Fold(init T, combine func(acc, v T) T) T {
	acc := init
	for i := range r.slots {
		acc = combine(acc, r.slots[i].v)
	}
	return acc
}

// SumFloat64 folds float64 slots in chunk order.
func SumFloat64(r *Reducer[float64]) float64 {
	return r.Fold(0, func(a, v float64) float64 { return a + v })
}

// Counter is a set of cache-line padded int64 cells, one per worker,
// for high-frequency counters (edges examined, relaxations) that would
// otherwise contend on a single atomic. Integer addition is
// commutative, so the sum is deterministic even though the per-worker
// split is not.
type Counter struct {
	cells []paddedInt64
}

type paddedInt64 struct {
	v int64
	_ [cacheLine - 8]byte
}

// NewCounter returns a counter with one cell per worker.
func NewCounter(workers int) *Counter {
	if workers < 1 {
		workers = 1
	}
	return &Counter{cells: make([]paddedInt64, workers)}
}

// Add accumulates delta into the worker's cell (no atomics: each
// worker owns its cell).
func (c *Counter) Add(worker int, delta int64) { c.cells[worker].v += delta }

// Sum returns the total across cells. Call only after the region has
// completed.
func (c *Counter) Sum() int64 {
	var s int64
	for i := range c.cells {
		s += c.cells[i].v
	}
	return s
}

// WriteMinInt64 atomically lowers *addr to v, treating the sentinel
// `empty` as larger than everything. It returns true when this call
// performed the first write (i.e. *addr was empty), which happens for
// exactly one caller per address. The final value is the minimum over
// all concurrently written values — a commutative reduction, so it is
// schedule-independent (the priority-write of Dhulipala, Blelloch &
// Shun; GraphMat's REDUCE uses the same min-parent rule).
func WriteMinInt64(addr *int64, v, empty int64) (first bool) {
	for {
		old := atomic.LoadInt64(addr)
		if old != empty && old <= v {
			return false
		}
		if atomic.CompareAndSwapInt64(addr, old, v) {
			return old == empty
		}
	}
}

// LowerMinInt64 atomically lowers *addr to v, treating the sentinel
// `empty` as larger than everything. Unlike WriteMinInt64 it returns
// true whenever THIS call strictly lowered the stored value (the first
// write included) — which can happen for several callers per address,
// but always happens for the caller holding the global minimum (no
// smaller value can beat it to the slot). That guarantee is what lets
// the ChunkQueue claim protocol push on every lowering and filter to
// the final minimum afterwards (see Claim).
func LowerMinInt64(addr *int64, v, empty int64) (lowered bool) {
	for {
		old := atomic.LoadInt64(addr)
		if old != empty && old <= v {
			return false
		}
		if atomic.CompareAndSwapInt64(addr, old, v) {
			return true
		}
	}
}

// WriteMinUint32 atomically lowers *addr to v. Returns true if the
// value was lowered by this call.
func WriteMinUint32(addr *uint32, v uint32) bool {
	for {
		old := atomic.LoadUint32(addr)
		if old <= v {
			return false
		}
		if atomic.CompareAndSwapUint32(addr, old, v) {
			return true
		}
	}
}

// WriteMinFloat64Bits atomically lowers the float64 stored as bits at
// addr to v. Returns true if the value was strictly lowered by this
// call. Only the final value (a min, hence schedule-independent) may
// be used for deterministic outputs; the win report is racy.
func WriteMinFloat64Bits(addr *uint64, v float64) bool {
	for {
		old := atomic.LoadUint64(addr)
		if math.Float64frombits(old) <= v {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, math.Float64bits(v)) {
			return true
		}
	}
}
