package engines

import (
	"github.com/hpcl-repro/epg/internal/graph"
)

// Options is the unified knob surface for Configure: every optional
// engine capability the harness and the serving daemon used to wire
// through per-interface type assertions (SyncSSSPSetter,
// CompressSetter, CancelSetter, and the streaming-mutation hook) in
// one request. Zero-valued fields are not requested and leave the
// target untouched.
type Options struct {
	// SyncSSSP requests the synchronous SSSP mode (schedule-
	// independent parents/relaxations/durations).
	SyncSSSP bool
	// Compress requests delta+varint compressed-adjacency traversal;
	// engine-level and only effective before Load.
	Compress bool
	// Cancel installs a cooperative cancellation hook on an instance;
	// ClearCancel removes a previously installed hook. Setting both is
	// a clear (ClearCancel wins).
	Cancel      func() error
	ClearCancel bool
	// Mutations probes for streaming-mutation support: an instance
	// implementing Streamer, or an engine whose instances will.
	// Probing has no side effect.
	Mutations bool
}

// Applied reports, per requested knob, whether the target supports it
// (and, for the setters, that it was applied). Unrequested knobs are
// always false, so callers can warn with `requested && !applied.X`
// without tracking which knobs they asked for.
type Applied struct {
	SyncSSSP  bool
	Compress  bool
	Cancel    bool
	Mutations bool
}

// MutationSupporter is the engine-level half of the mutation probe:
// engines whose instances implement Streamer advertise it here so the
// harness can warn about a dropped Mutations knob before paying for
// Load. Callers should not use this directly — Configure dispatches
// to it.
type MutationSupporter interface {
	SupportsMutations() bool
}

// Configure applies the requested options to target — an Engine or an
// Instance — through whichever capability hooks it implements, and
// reports what took effect. It replaces the scattered per-interface
// type assertions at every call site: the harness wires knob-drop
// warnings off the returned Applied, and the serving daemon uses the
// same call for executor setup and per-query cancellation.
func Configure(target any, opts Options) Applied {
	var ap Applied
	if opts.SyncSSSP {
		if s, ok := target.(SyncSSSPSetter); ok {
			s.SetSyncSSSP(true)
			ap.SyncSSSP = true
		}
	}
	if opts.Compress {
		if s, ok := target.(CompressSetter); ok {
			s.SetCompress(true)
			ap.Compress = true
		}
	}
	if opts.Cancel != nil || opts.ClearCancel {
		if s, ok := target.(CancelSetter); ok {
			if opts.ClearCancel {
				s.SetCancel(nil)
			} else {
				s.SetCancel(opts.Cancel)
			}
			ap.Cancel = true
		}
	}
	if opts.Mutations {
		switch t := target.(type) {
		case Streamer:
			ap.Mutations = true
		case MutationSupporter:
			ap.Mutations = t.SupportsMutations()
		}
	}
	return ap
}

// MutationReport summarizes one applied batch for callers that charge
// or log mutation work.
type MutationReport struct {
	Stats graph.MutStats
	// DirtyRows counts adjacency rows rebuilt in the out-structure;
	// EdgesTouched is the total merge work (old + new row lengths over
	// dirty rows, out- and in-structure combined).
	DirtyRows    int
	EdgesTouched int64
}

// Streamer is implemented by engine *instances* that accept batched
// edge mutations with incremental result maintenance. The contract
// mirrors the six kernels' determinism walls: after any sequence of
// Mutate calls, IncrementalPageRank and IncrementalWCC return results
// bit-equal to a full PageRank/WCC recompute on the post-batch graph,
// identically across runs and worker counts. Mutations accumulate;
// each incremental call consumes the dirty state accumulated since the
// last one and becomes the new baseline.
type Streamer interface {
	Mutate(batch graph.Batch) (*MutationReport, error)
	IncrementalPageRank(opts PROpts) (*PRResult, error)
	IncrementalWCC() (*WCCResult, error)
}
