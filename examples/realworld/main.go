// realworld reproduces Fig. 8: BFS, PageRank, and SSSP across the two
// real-world datasets (synthetic analogues of Dota-League and
// cit-Patents), showing the dataset-dependent reversals the paper
// highlights — e.g. PowerGraph's vertex-cut paying off for SSSP on
// the dense Dota-League graph, and SSSP being unavailable on the
// unweighted cit-Patents.
//
//	go run ./examples/realworld [-divisor N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/hpcl-repro/epg"
)

func main() {
	divisor := flag.Int("divisor", 64, "dataset scale divisor (1 = published sizes; large and slow)")
	threads := flag.Int("threads", 32, "virtual threads")
	roots := flag.Int("roots", 8, "roots per algorithm (the paper uses 32)")
	flag.Parse()

	suite := epg.NewSuite(epg.Options{RealWorldDivisor: *divisor, Seed: 1})
	var results []epg.Result
	for _, dataset := range []string{"dota-league", "cit-Patents"} {
		g, err := suite.Dataset(dataset)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d vertices, %d edges, weighted=%v\n",
			dataset, g.NumVertices(), g.NumEdges(), g.Weighted())
		for _, alg := range []epg.Algorithm{epg.BFS, epg.PageRank, epg.SSSP} {
			if alg == epg.SSSP && !g.Weighted() {
				fmt.Printf("  %s: N/A (unweighted graph, as in Table I)\n", alg)
				continue
			}
			rs, err := suite.Run(epg.Spec{Algorithm: alg, Threads: *threads, Roots: *roots}, g)
			if err != nil {
				log.Fatal(err)
			}
			results = append(results, rs...)
		}
	}
	fmt.Println()
	epg.RenderRealWorldFigure(os.Stdout, results)
}
