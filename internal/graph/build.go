package graph

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// BuildOptions controls CSR construction.
type BuildOptions struct {
	// Workers is the number of construction goroutines; 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Symmetrize inserts the reverse of every edge, turning a
	// directed edge list into an undirected adjacency structure
	// (the Graph500 convention for Kronecker graphs).
	Symmetrize bool
	// DropSelfLoops removes u->u edges, as the Graph500 reference
	// does during Kernel 1.
	DropSelfLoops bool
	// Dedup removes duplicate (src,dst) pairs after sorting. For
	// weighted graphs the first-seen weight wins.
	Dedup bool
	// Sort sorts each adjacency list ascending.
	Sort bool
}

func (o *BuildOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// BuildCSR constructs a CSR from an edge list using a two-pass
// parallel counting-sort: pass one histograms out-degrees, pass two
// scatters edges into place via atomic cursors. The result is
// deterministic up to adjacency order; pass Sort for a canonical
// structure.
func BuildCSR(el *EdgeList, opt BuildOptions) *CSR {
	n := el.NumVertices
	w := opt.workers()

	// Pass 1: degree histogram.
	counts := make([]int64, n+1)
	parallelChunks(len(el.Edges), w, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := el.Edges[i]
			if opt.DropSelfLoops && e.Src == e.Dst {
				continue
			}
			atomic.AddInt64(&counts[e.Src+1], 1)
			if opt.Symmetrize {
				atomic.AddInt64(&counts[e.Dst+1], 1)
			}
		}
	})

	// Exclusive prefix sum (serial: n+1 adds is cheap relative to
	// the scatter pass and keeps determinism trivial).
	for i := 1; i <= n; i++ {
		counts[i] += counts[i-1]
	}
	total := counts[n]

	csr := &CSR{
		NumVertices: n,
		Offsets:     counts,
		Adj:         make([]VID, total),
	}
	if el.Weighted {
		csr.Weights = make([]float32, total)
	}

	// Pass 2: scatter with atomic per-vertex cursors.
	cursors := make([]int64, n)
	copy(cursors, counts[:n])
	parallelChunks(len(el.Edges), w, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := el.Edges[i]
			if opt.DropSelfLoops && e.Src == e.Dst {
				continue
			}
			p := atomic.AddInt64(&cursors[e.Src], 1) - 1
			csr.Adj[p] = e.Dst
			if el.Weighted {
				csr.Weights[p] = e.W
			}
			if opt.Symmetrize {
				q := atomic.AddInt64(&cursors[e.Dst], 1) - 1
				csr.Adj[q] = e.Src
				if el.Weighted {
					csr.Weights[q] = e.W
				}
			}
		}
	})

	if opt.Sort || opt.Dedup {
		csr.SortAdjacency()
	}
	if opt.Dedup {
		csr = dedupCSR(csr)
	}
	return csr
}

// dedupCSR removes duplicate neighbors from a sorted CSR. For
// weighted graphs the minimum weight among parallel edges is kept:
// a deterministic rule (independent of the order duplicates landed in
// the adjacency) that is also the right semantics for shortest paths.
func dedupCSR(c *CSR) *CSR {
	out := &CSR{
		NumVertices: c.NumVertices,
		Offsets:     make([]int64, c.NumVertices+1),
		Adj:         make([]VID, 0, len(c.Adj)),
	}
	if c.Weights != nil {
		out.Weights = make([]float32, 0, len(c.Weights))
	}
	for v := 0; v < c.NumVertices; v++ {
		lo, hi := c.Offsets[v], c.Offsets[v+1]
		var prev VID
		first := true
		for i := lo; i < hi; i++ {
			u := c.Adj[i]
			if !first && u == prev {
				if c.Weights != nil {
					if w := c.Weights[i]; w < out.Weights[len(out.Weights)-1] {
						out.Weights[len(out.Weights)-1] = w
					}
				}
				continue
			}
			out.Adj = append(out.Adj, u)
			if c.Weights != nil {
				out.Weights = append(out.Weights, c.Weights[i])
			}
			prev, first = u, false
		}
		out.Offsets[v+1] = int64(len(out.Adj))
	}
	return out
}

// Transpose returns the reverse-adjacency CSR (in-neighbors). For a
// symmetrized graph the transpose equals the original; engines that
// need pull-direction iteration (GAP's bottom-up BFS, pull PageRank)
// call this on directed graphs.
func Transpose(c *CSR, workers int) *CSR {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := c.NumVertices
	counts := make([]int64, n+1)
	parallelChunks(len(c.Adj), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt64(&counts[c.Adj[i]+1], 1)
		}
	})
	for i := 1; i <= n; i++ {
		counts[i] += counts[i-1]
	}
	t := &CSR{
		NumVertices: n,
		Offsets:     counts,
		Adj:         make([]VID, len(c.Adj)),
	}
	if c.Weights != nil {
		t.Weights = make([]float32, len(c.Weights))
	}
	cursors := make([]int64, n)
	copy(cursors, counts[:n])
	for v := 0; v < n; v++ { // serial scatter keeps transpose deterministic
		for i := c.Offsets[v]; i < c.Offsets[v+1]; i++ {
			u := c.Adj[i]
			p := cursors[u]
			cursors[u]++
			t.Adj[p] = VID(v)
			if c.Weights != nil {
				t.Weights[p] = c.Weights[i]
			}
		}
	}
	return t
}

// parallelChunks splits [0,n) into one contiguous chunk per worker and
// runs body on each concurrently.
func parallelChunks(n, workers int, body func(lo, hi int)) {
	if workers <= 1 || n < 1024 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
