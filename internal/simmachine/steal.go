package simmachine

import (
	"github.com/hpcl-repro/epg/internal/parallel"
	"github.com/hpcl-repro/epg/internal/xrand"
)

// laneLoad converts a chunk cost into the scalar "cycles-equivalent"
// load the schedulers order lanes by (atomics folded at uncontended
// cost, bytes at a nominal 4 B/cycle).
func laneLoad(c Cost, model *Model) float64 {
	return c.Cycles + c.Atomics*model.AtomicCycles + c.Bytes/4
}

// stealLanes deterministically simulates a flat (socket-blind)
// work-stealing execution with no locality penalties — the historical
// Steal accounting, preserved byte-for-byte. It is stealLanesTopo on
// a single socket; there is exactly one copy of the event loop.
func stealLanes(costs []Cost, t int, model *Model) []Cost {
	lanes, _ := stealLanesTopo(costs, t, 1, 1, 0, false, false, model)
	return lanes
}

// stealLanesTopo deterministically simulates a work-stealing
// execution of the chunk costs over t virtual lanes placed on
// `sockets` consecutive lane blocks, and returns the per-lane cost
// assignment plus — when needExec is set — the lane that executed
// each chunk (for the first-touch placement model's ownership
// bookkeeping; nil otherwise, sparing the allocation on the common
// no-placement path).
//
// The simulation mirrors the real runtime's discipline
// (parallel.Steal / parallel.NUMA): lane l starts owning chunks l,
// l+t, l+2t, ... and consumes its own share in ascending index order;
// when its queue is empty it steals the highest-index remaining chunk
// from a victim (falling back to a deterministic scan so progress
// never depends on RNG luck), paying one atomic RMW per successful
// steal. Lanes act in order of accumulated load — the least-loaded
// lane is the one whose "clock" is furthest behind, i.e. the first to
// go idle — which makes this a discrete-event approximation of the
// steal race.
//
// A chunk's home socket is its static owner's (the only queue it ever
// sits in), so a steal whose victim lives on another socket block
// carries the chunk's data across the interconnect: the stolen
// chunk's DRAM bytes are scaled by remoteBytes and the claiming CAS
// costs remoteSteal extra cycles. Both penalties need sockets > 1 to
// be reachable.
//
// twoLevel selects the victim order. Flat (Steal policy): randomized
// probes over all lanes, then a deterministic scan. Two-level (NUMA
// policy): same-socket probes and a same-socket scan first, remote
// lanes only when the whole socket is dry — fewer remote steals on
// the same workload, which is the regime the scheduling study
// quantifies. With one socket two-level collapses to flat (every
// victim is local, no penalty is ever reachable), so the sockets=1
// accounting is byte-identical to the historical flat simulation,
// which the determinism wall asserts for Sched="numa".
//
// Everything here is a pure function of (costs, t, sockets,
// penalties, model): the RNG seed derives from the region shape only,
// so modeled durations are bit-identical across runs and real worker
// counts.
func stealLanesTopo(costs []Cost, t, sockets int, remoteBytes, remoteSteal float64, twoLevel, needExec bool, model *Model) ([]Cost, []int) {
	lanes := make([]Cost, t)
	var execLane []int
	if needExec {
		execLane = make([]int, len(costs))
	}
	if len(costs) == 0 || t == 1 {
		for _, c := range costs {
			lanes[0].Add(c)
		}
		return lanes, execLane
	}
	if sockets < 1 {
		sockets = 1
	}
	if sockets > t {
		sockets = t
	}
	if sockets == 1 {
		// Two-level victim order on one socket IS the flat order;
		// taking the flat path keeps NUMA byte-identical to Steal
		// there (the determinism wall's contract).
		twoLevel = false
	}
	per := (t + sockets - 1) / sockets
	// Per-lane queues in ascending chunk order; owners take from the
	// front, thieves from the back (the real deque's two ends).
	queues := make([][]int, t)
	for c := range costs {
		queues[c%t] = append(queues[c%t], c)
	}
	head := make([]int, t)
	tail := make([]int, t)
	for l := range queues {
		tail[l] = len(queues[l])
	}

	r := xrand.New(parallel.StealSeed(len(costs), t))
	loads := make([]float64, t)
	remaining := len(costs)
	for remaining > 0 {
		// The lane that has accrued the least load acts next
		// (ties break toward the lowest lane index).
		l := 0
		for k := 1; k < t; k++ {
			if loads[k] < loads[l] {
				l = k
			}
		}
		if head[l] < tail[l] {
			c := queues[l][head[l]]
			head[l]++
			lanes[l].Add(costs[c])
			loads[l] += laneLoad(costs[c], model)
			if needExec {
				execLane[c] = l
			}
			remaining--
			continue
		}
		// Own queue empty: steal. Two-level tries the lane's own
		// socket first (random probes, then a same-socket scan). The
		// two orders charge probes the way their real executors do:
		// two-level filters self and off-socket draws arithmetically
		// (free — forStealTopo never issues a CAS for them) and pays
		// AtomicCycles only for a genuine probe of a local deque;
		// flat keeps the historical accounting of one AtomicCycles
		// per draw, so the steal-vs-numa gap at equal sockets
		// measures victim selection, not probe bookkeeping.
		victim := -1
		if twoLevel {
			for tries := 0; tries < t; tries++ {
				v := int(r.Uint64() % uint64(t))
				if v == l || v/per != l/per {
					continue // filtered arithmetically: no CAS issued
				}
				loads[l] += model.AtomicCycles // a real probe of a local deque
				if head[v] < tail[v] {
					victim = v
					break
				}
			}
			if victim < 0 {
				for off := 1; off < t; off++ {
					v := (l + off) % t
					if v/per == l/per && head[v] < tail[v] {
						victim = v
						break
					}
				}
			}
		}
		// Random probes over the remaining lanes: the only phase for
		// the flat order, the remote fallback for two-level (whose
		// local lanes are known dry and filtered for free).
		if victim < 0 {
			for tries := 0; tries < t; tries++ {
				v := int(r.Uint64() % uint64(t))
				if twoLevel {
					if v == l || v/per == l/per {
						continue
					}
					loads[l] += model.AtomicCycles
					if head[v] < tail[v] {
						victim = v
						break
					}
				} else {
					loads[l] += model.AtomicCycles
					if v != l && head[v] < tail[v] {
						victim = v
						break
					}
				}
			}
		}
		if victim < 0 {
			for off := 1; off < t; off++ {
				v := (l + off) % t
				if head[v] < tail[v] {
					victim = v
					break
				}
			}
		}
		tail[victim]--
		cIdx := queues[victim][tail[victim]]
		c := costs[cIdx]
		steal := Cost{Atomics: 1} // the claiming CAS
		if victim/per != l/per {
			// Remote-chunk-access and remote-steal penalties: the
			// chunk's home is its owner's socket (it was only ever in
			// the owner's queue).
			c.Bytes *= remoteBytes
			steal.Cycles += remoteSteal
		}
		lanes[l].Add(c)
		lanes[l].Add(steal)
		loads[l] += laneLoad(c, model) + model.AtomicCycles + steal.Cycles
		if needExec {
			execLane[cIdx] = l
		}
		remaining--
	}
	return lanes, execLane
}
