package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestTopologySocketPlacement(t *testing.T) {
	// 8 workers, 2 sockets: consecutive blocks of 4.
	topo := Topology{Sockets: 2}
	for w := 0; w < 8; w++ {
		want := w / 4
		if got := topo.socketOf(w, 8); got != want {
			t.Errorf("socketOf(%d, 8) = %d, want %d", w, got, want)
		}
	}
	// More sockets than workers clamps: every worker its own socket.
	topo = Topology{Sockets: 16}
	for w := 0; w < 3; w++ {
		if got := topo.socketOf(w, 3); got != w {
			t.Errorf("clamped socketOf(%d, 3) = %d, want %d", w, got, w)
		}
	}
	// Zero topology resolves to the GOMAXPROCS default, always valid.
	d := DefaultTopology()
	if d.Sockets < 1 || d.Sockets > 4 {
		t.Errorf("DefaultTopology sockets = %d, want 1..4", d.Sockets)
	}
	if got := (Topology{}).socketOf(0, 4); got != 0 {
		t.Errorf("zero topology socketOf(0, 4) = %d", got)
	}
}

func TestForTopoCoversAllIndices(t *testing.T) {
	p := NewPool(8)
	for _, sockets := range []int{0, 1, 2, 3, 8} {
		for _, workers := range []int{1, 3, 8} {
			seen := make([]int32, 1000)
			ForTopo(p, workers, 1000, 16, NUMA, Topology{Sockets: sockets}, func(lo, hi, chunk, worker int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("sockets=%d workers=%d: index %d ran %d times", sockets, workers, i, c)
				}
			}
		}
	}
}

func TestForTopoChunkIndicesStable(t *testing.T) {
	p := NewPool(8)
	n, grain := 997, 13
	for _, sockets := range []int{1, 2, 4} {
		for _, workers := range []int{1, 2, 7} {
			ForTopo(p, workers, n, grain, NUMA, Topology{Sockets: sockets}, func(lo, hi, chunk, worker int) {
				if lo != chunk*grain {
					t.Errorf("chunk %d starts at %d, want %d", chunk, lo, chunk*grain)
				}
				want := lo + grain
				if want > n {
					want = n
				}
				if hi != want {
					t.Errorf("chunk %d ends at %d, want %d", chunk, hi, want)
				}
			})
		}
	}
}

// TestForTopoOversubscribedDoesNotLeak mirrors the Steal leak wall:
// idle two-level thieves must exit on the empty sweep, not spin, even
// when workers exceed both the socket blocks and the pool's idle set.
func TestForTopoOversubscribedDoesNotLeak(t *testing.T) {
	p := NewPool(4)
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		var n atomic.Int64
		ForTopo(p, 16, 64, 1, NUMA, Topology{Sockets: 4}, func(lo, hi, chunk, worker int) {
			n.Add(1)
		})
		if n.Load() != 64 {
			t.Fatalf("round %d ran %d chunks", i, n.Load())
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+8 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d under two-level stealing",
		before, runtime.NumGoroutine())
}
