// Package parallel is the shared parallel-primitives runtime that all
// five engine analogues execute on: a reusable worker pool, a chunked
// ParallelFor with the simmachine's three scheduling policies,
// deterministic reducers, per-worker counters, write-min atomics, and
// an atomic frontier queue.
//
// # Scheduling policies
//
// For assigns chunk indices to real workers under one of three
// policies, mirroring simmachine.Sched so engines use one policy for
// both real execution and virtual-lane cost accounting:
//
//   - Static: chunk c runs on worker c % workers (OpenMP
//     schedule(static, grain)). Zero coordination, maximal imbalance
//     on skewed chunk costs.
//   - Dynamic: workers take the next unclaimed chunk off one shared
//     atomic counter (OpenMP schedule(dynamic, grain)). Balanced, but
//     every chunk claim contends on the same cache line, which
//     serializes at high worker counts.
//   - Steal: each worker owns a Chase–Lev deque prefilled with its
//     static share; owners pop locally (no contention at all while
//     work remains) and idle workers steal from victims chosen by a
//     per-region seeded RNG. This is the Cilk/TBB discipline that
//     work-stealing runtimes use to make graph kernels scale.
//
// # Determinism contract
//
// Everything in this package separates *real execution schedule*
// (which goroutine runs which chunk, decided by the OS and, under
// Steal, by steal races) from *logical schedule* (how chunk indices
// map to results). Kernel outputs and simmachine cost accounting key
// off chunk indices only, so results and modeled durations are
// identical across runs and across real worker counts under every
// policy. Floating-point reductions use per-chunk slots folded in
// chunk order (Reducer); racy helpers whose results are
// order-independent (WriteMinInt64, Counter sums, Queue membership)
// are safe because min and integer addition are commutative and the
// queue's contents are canonicalized by the caller (sorted frontiers).
//
// # Fidelity notes
//
// The pool models nothing: it is the real execution substrate. What
// it cannot reproduce is hardware concurrency beyond GOMAXPROCS —
// worker counts above the core count are legal (goroutines are
// multiplexed) and exercised by the determinism tests, but wall-clock
// speedup saturates at the host's parallelism. Modeled scaling comes
// from internal/simmachine instead.
package parallel
