# Lightweight CI for the epg reproduction. `make test` is the tier-1
# gate; `make race` is the concurrency wall over the parallel runtime
# and every engine kernel; `make bench` regenerates the paper's tables
# and figures once; `make baseline` rewrites BENCH_baseline.json.

GO ?= go

.PHONY: all build test race bench baseline vet

all: test race

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./internal/parallel/... ./internal/engines/...

race-full:
	$(GO) test -race ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

baseline:
	EPG_WRITE_BASELINE=1 $(GO) test -run TestWriteBenchBaseline -v .

big-conformance:
	EPG_BIG_CONFORMANCE=1 $(GO) test -run TestBigConformance -v -timeout 60m ./internal/engines/all/

vet:
	$(GO) vet ./...
