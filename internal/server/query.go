package server

import (
	"fmt"

	"github.com/hpcl-repro/epg/internal/graph"
)

// Op names a point-query kind.
type Op string

const (
	// OpBFS answers the hop distance from Source to Target (-1 if
	// unreachable). Degradable: under overload it is answered from the
	// landmark sketch as an upper bound.
	OpBFS Op = "bfs"
	// OpSSSP answers the weighted shortest-path distance from Source
	// to Target (+Inf encoded as -1 if unreachable). Degradable on
	// weighted datasets.
	OpSSSP Op = "sssp"
	// OpPR answers the precomputed PageRank score of Source.
	OpPR Op = "pr"
	// OpWCC answers 1 if Source and Target share a weakly connected
	// component (precomputed), else 0.
	OpWCC Op = "wcc"
	// OpKHop answers the number of vertices within K hops of Source
	// (inclusive of Source).
	OpKHop Op = "khop"
	// OpPanic deliberately panics inside the executor. Rejected unless
	// Config.FaultInjection is set; exists so the panic-isolation path
	// is drivable from tests and soak runs.
	OpPanic Op = "panic"
)

// Query is one point query.
type Query struct {
	Op     Op        `json:"op"`
	Source graph.VID `json:"src"`
	Target graph.VID `json:"dst,omitempty"`
	K      int       `json:"k,omitempty"`
	// DeadlineSec is the modeled-seconds service budget; 0 uses the
	// server default. The budget covers kernel execution (polled at
	// frontier granularity), not queue wait.
	DeadlineSec float64 `json:"deadline_s,omitempty"`
}

// Status classifies a response.
type Status string

const (
	StatusOK       Status = "ok"
	StatusShed     Status = "shed"     // admission refused (queue full or throttled)
	StatusDeadline Status = "deadline" // budget exhausted mid-kernel
	StatusPanic    Status = "panic"    // recovered executor panic
	StatusError    Status = "error"    // invalid query or engine error
)

// Response is the answer to one query.
type Response struct {
	Op     Op        `json:"op"`
	Source graph.VID `json:"src"`
	Target graph.VID `json:"dst,omitempty"`
	Status Status    `json:"status"`
	// Value is the answer: hop or weighted distance (-1 when
	// unreachable), PR score, WCC same-component 0/1, or k-hop count.
	Value float64 `json:"value"`
	// Degraded marks a sketch-derived upper bound served under
	// overload instead of an exact traversal.
	Degraded bool `json:"degraded,omitempty"`
	// ModeledSec is the modeled service time charged on the executor.
	ModeledSec float64 `json:"modeled_s"`
	Err        string  `json:"err,omitempty"`
}

// validate rejects structurally bad queries before they reach
// admission, so sheds and deadlines are never hiding a 400.
func (q Query) validate(n int, weighted, faultInjection bool) error {
	switch q.Op {
	case OpBFS, OpSSSP, OpWCC:
		if int(q.Target) >= n {
			return fmt.Errorf("target %d outside [0,%d)", q.Target, n)
		}
		if q.Op == OpSSSP && !weighted {
			return fmt.Errorf("sssp on unweighted dataset")
		}
	case OpPR:
	case OpKHop:
		if q.K < 0 {
			return fmt.Errorf("negative k %d", q.K)
		}
	case OpPanic:
		if !faultInjection {
			return fmt.Errorf("fault injection disabled")
		}
		return nil // no source check: the point is to reach the executor
	default:
		return fmt.Errorf("unknown op %q", q.Op)
	}
	if int(q.Source) >= n {
		return fmt.Errorf("source %d outside [0,%d)", q.Source, n)
	}
	return nil
}

// degradable reports whether the op has a sketch fallback.
func (q Query) degradable(weighted bool) bool {
	switch q.Op {
	case OpBFS:
		return true
	case OpSSSP:
		return weighted
	}
	return false
}
