package gap

import (
	"sync"
	"sync/atomic"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// BFS implements engines.Instance with the direction-optimizing
// algorithm of Beamer et al.: top-down steps process the frontier and
// claim children with CAS; once the frontier's outgoing edge count
// exceeds the unexplored edge count divided by α, the search switches
// to bottom-up steps in which every unvisited vertex scans its
// in-neighbors for a parent (no atomics needed — each vertex writes
// only its own state); it switches back once the frontier shrinks
// below n/β. Setting Alpha <= 0 disables bottom-up entirely (pure
// top-down), which the ablation benchmarks use.
//
// As in the real suite, the next frontier's scout count (sum of
// out-degrees of newly claimed vertices) is accumulated inside the
// step itself, so each level costs one parallel region.
func (inst *Instance) BFS(root graph.VID) (*engines.BFSResult, error) {
	inst.ensureBuilt()
	n := inst.n
	res := &engines.BFSResult{
		Root:   root,
		Parent: make([]int64, n),
		Depth:  make([]int64, n),
	}
	parent := res.Parent
	depth := res.Depth
	for i := range parent {
		parent[i] = engines.NoParent
		depth[i] = -1
	}
	parent[root] = int64(root)
	depth[root] = 0

	frontier := []graph.VID{root}
	scout := inst.out.Degree(root)
	level := int64(0)
	edgesUnexplored := inst.mEdges
	bottomUp := false
	var edgesExamined int64

	for len(frontier) > 0 {
		if inst.eng.Alpha > 0 {
			if !bottomUp && scout > edgesUnexplored/int64(inst.eng.Alpha) {
				bottomUp = true
			} else if bottomUp && int64(len(frontier)) < int64(n)/int64(inst.eng.Beta) {
				bottomUp = false
			}
		}

		var next []graph.VID
		var examined, nextScout int64
		if bottomUp {
			next, examined, nextScout = inst.stepBottomUp(parent, depth, level)
		} else {
			next, examined, nextScout = inst.stepTopDown(frontier, parent, depth, level)
		}
		edgesExamined += examined
		edgesUnexplored -= scout
		frontier = next
		scout = nextScout
		level++
	}
	res.EdgesExamined = edgesExamined
	return res, nil
}

// stepTopDown expands the frontier along out-edges, claiming children
// with CAS. Next-frontier fragments are collected per chunk and
// concatenated (the real suite uses per-thread queues; the merge cost
// is charged per vertex).
func (inst *Instance) stepTopDown(frontier []graph.VID, parent, depth []int64, level int64) (next []graph.VID, examined, nextScout int64) {
	var mu sync.Mutex
	inst.m.ParallelFor(len(frontier), 64, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
		var local []graph.VID
		var edges, claims, localScout int64
		for _, v := range frontier[lo:hi] {
			for _, u := range inst.out.Neighbors(v) {
				edges++
				if atomic.LoadInt64(&parent[u]) != engines.NoParent {
					continue
				}
				if atomic.CompareAndSwapInt64(&parent[u], engines.NoParent, int64(v)) {
					atomic.StoreInt64(&depth[u], level+1)
					local = append(local, u)
					localScout += inst.out.Degree(u)
					claims++
				}
			}
		}
		if len(local) > 0 {
			mu.Lock()
			next = append(next, local...)
			mu.Unlock()
		}
		atomic.AddInt64(&examined, edges)
		atomic.AddInt64(&nextScout, localScout)
		w.Charge(costTopDownEdge.Scale(float64(edges)))
		w.Charge(costClaim.Scale(float64(claims)))
		w.Cycles(float64(len(local)) * 4) // queue push
	})
	return next, examined, nextScout
}

// stepBottomUp scans unvisited vertices for a parent on the frontier
// (identified by depth == level). Each vertex mutates only its own
// entries, so no atomics are charged — the source of GAP's superior
// scaling on low-diameter graphs.
func (inst *Instance) stepBottomUp(parent, depth []int64, level int64) (next []graph.VID, examined, nextScout int64) {
	n := inst.n
	var mu sync.Mutex
	inst.m.ParallelFor(n, 1024, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
		var local []graph.VID
		var edges, localScout int64
		for v := lo; v < hi; v++ {
			if atomic.LoadInt64(&parent[v]) != engines.NoParent {
				continue
			}
			for _, u := range inst.in.Neighbors(graph.VID(v)) {
				edges++
				// depth[u] == level implies u was claimed in an
				// earlier step, so its parent entry is stable.
				if atomic.LoadInt64(&depth[u]) == level {
					atomic.StoreInt64(&parent[v], int64(u))
					atomic.StoreInt64(&depth[v], level+1)
					local = append(local, graph.VID(v))
					localScout += inst.out.Degree(graph.VID(v))
					break
				}
			}
		}
		if len(local) > 0 {
			mu.Lock()
			next = append(next, local...)
			mu.Unlock()
		}
		atomic.AddInt64(&examined, edges)
		atomic.AddInt64(&nextScout, localScout)
		w.Charge(costBottomUpEdge.Scale(float64(edges)))
		w.Cycles(float64(hi-lo) * 2) // visited-bitmap test per vertex
		w.Bytes(float64(hi-lo) * 1)
	})
	return next, examined, nextScout
}
