package core

import (
	"testing"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/kronecker"
)

func TestSpecValidate(t *testing.T) {
	good := Spec{Dataset: "kron-16", Algorithm: engines.BFS, Threads: 32}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	for name, s := range map[string]Spec{
		"no dataset":   {Algorithm: engines.BFS, Threads: 2},
		"no algorithm": {Dataset: "x", Threads: 2},
		"zero threads": {Dataset: "x", Algorithm: engines.BFS},
	} {
		if err := s.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestSpecValidateFreqState(t *testing.T) {
	s := Spec{Dataset: "kron-16", Algorithm: engines.BFS, Threads: 32}
	for _, freq := range []string{"", FreqTurbo, FreqBalanced, FreqPowersave} {
		s.FreqState = freq
		if err := s.Validate(); err != nil {
			t.Errorf("freq %q rejected: %v", freq, err)
		}
	}
	for _, freq := range []string{"overclocked", "Turbo", "TURBO", "power-save"} {
		s.FreqState = freq
		if err := s.Validate(); err == nil {
			t.Errorf("freq %q accepted", freq)
		}
	}
}

func TestNumRootsDefault(t *testing.T) {
	if got := (Spec{}).NumRoots(); got != DefaultRoots {
		t.Errorf("default roots = %d, want %d", got, DefaultRoots)
	}
	if got := (Spec{Roots: 4}).NumRoots(); got != 4 {
		t.Errorf("roots = %d, want 4", got)
	}
}

func buildKron(scale int) *graph.CSR {
	el := kronecker.Generate(kronecker.Params{Scale: scale, Seed: 1})
	return graph.BuildCSR(el, graph.BuildOptions{Symmetrize: true, DropSelfLoops: true, Dedup: true})
}

func TestSelectRootsDegreeRule(t *testing.T) {
	csr := buildKron(10)
	roots := SelectRoots(csr, 32, 7)
	if len(roots) != 32 {
		t.Fatalf("got %d roots, want 32", len(roots))
	}
	seen := map[graph.VID]bool{}
	for _, r := range roots {
		if csr.Degree(r) <= 1 {
			t.Errorf("root %d has degree %d", r, csr.Degree(r))
		}
		if seen[r] {
			t.Errorf("duplicate root %d", r)
		}
		seen[r] = true
	}
}

func TestSelectRootsDeterministic(t *testing.T) {
	csr := buildKron(9)
	a := SelectRoots(csr, 16, 42)
	b := SelectRoots(csr, 16, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("root selection not deterministic")
		}
	}
	c := SelectRoots(csr, 16, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical root order")
	}
}

func TestSelectRootsSmallGraph(t *testing.T) {
	el := &graph.EdgeList{
		NumVertices: 4,
		Edges:       []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}},
	}
	csr := graph.BuildCSR(el, graph.BuildOptions{Symmetrize: true})
	roots := SelectRoots(csr, 32, 1)
	if len(roots) != 1 { // only vertex 1 has degree 2
		t.Errorf("got %d roots, want 1", len(roots))
	}
}

func TestResultTEPS(t *testing.T) {
	r := Result{AlgorithmSec: 0.5, EdgesExamined: 1000}
	if got := r.TEPS(); got != 2000 {
		t.Errorf("TEPS = %v, want 2000", got)
	}
	if (Result{}).TEPS() != 0 {
		t.Error("zero result should have zero TEPS")
	}
}

func TestResultKey(t *testing.T) {
	r := Result{Engine: "GAP", Dataset: "kron-16", Algorithm: engines.BFS, Threads: 32}
	if got := r.Key(); got != "kron-16/BFS/GAP/t32" {
		t.Errorf("key = %q", got)
	}
}

func TestPhasesOrder(t *testing.T) {
	want := []Phase{PhaseInstall, PhaseHomogenize, PhaseRun, PhaseParse, PhaseAnalyze}
	if len(Phases) != len(want) {
		t.Fatal("phase count changed")
	}
	for i := range want {
		if Phases[i] != want[i] {
			t.Errorf("phase %d = %s, want %s", i, Phases[i], want[i])
		}
	}
}
