// Cluster conformance walls: the modeled distributed-memory mode
// (Spec.Nodes + Spec.Partition) may only move modeled time. Sharded
// runs must produce outputs bit-equal to the shared-memory runs on all
// six kernels — the classic distributed-framework conformance check,
// here enforced exactly rather than approximately — and Nodes=1 must
// reproduce the single-box trace byte for byte, modeled durations and
// all trace fields included.
package all

import (
	"testing"

	"github.com/hpcl-repro/epg/internal/core"
	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/engines/gap"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/harness"
	"github.com/hpcl-repro/epg/internal/kronecker"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// clusterOwner derives the 2D (vertex-cut) owner table the way the
// harness does: greedy streaming vertex-cut on the homogenized graph,
// each vertex homed on its lowest replica shard.
func clusterOwner(el *graph.EdgeList, nodes int) []int16 {
	csr := graph.BuildCSR(el, graph.BuildOptions{
		Symmetrize:    !el.Directed,
		DropSelfLoops: true,
		Dedup:         true,
	})
	return graph.GreedyVertexCut(csr, nodes, nil).Owners()
}

// clusterCells is the (nodes, partition) matrix of the sharded wall:
// all three node counts of the acceptance criterion with both
// partition schemes represented.
var clusterCells = []struct {
	nodes     int
	partition string
}{
	{1, core.Partition1D},
	{2, core.Partition1D},
	{2, core.Partition2D},
	{4, core.Partition1D},
	{4, core.Partition2D},
}

// TestClusterShardedConformanceAllKernels: for every engine and every
// kernel it implements, each sharded cell produces outputs bit-equal
// to the unsharded shared-memory run, and within a cell outputs AND
// modeled durations are identical across worker counts (the
// determinism wall pattern). Synchronous SSSP is enabled so every
// engine qualifies for the full comparison.
func TestClusterShardedConformanceAllKernels(t *testing.T) {
	el, root := determinismGraph()
	for _, alg := range engines.AllAlgorithms {
		t.Run(string(alg), func(t *testing.T) {
			for _, name := range Names {
				eng, err := Registry().New(name)
				if err != nil {
					t.Fatal(err)
				}
				if !eng.Has(alg) {
					continue
				}
				t.Run(name, func(t *testing.T) {
					shared := runKernelOpts(t, name, alg, el, root, workerCounts[0],
						runOpts{syncSSSP: true})
					for _, cell := range clusterCells {
						opts := runOpts{syncSSSP: true, nodes: cell.nodes, partition: cell.partition}
						base := runKernelOpts(t, name, alg, el, root, workerCounts[0], opts)
						sameOutputs(t, "sharded vs shared-memory", shared.out, base.out)
						for _, workers := range workerCounts[1:] {
							got := runKernelOpts(t, name, alg, el, root, workers, opts)
							sameOutputs(t, "sharded across workers", base.out, got.out)
							sameDurations(t, "sharded across workers", base, got)
						}
					}
				})
			}
		})
	}
}

// TestClusterNodesOneTraceByteIdentical: a machine given SetCluster(1,
// ...) must leave no trace of the cluster model — every Region field
// (durations, costs, NetBytes, utilization) byte-identical to a
// machine that never saw the knob. This is the Nodes=1 half of the
// acceptance criterion, checked at full trace granularity rather than
// through the duration summaries.
func TestClusterNodesOneTraceByteIdentical(t *testing.T) {
	el, root := determinismGraph()
	trace := func(cluster bool) []simmachine.Region {
		m := simmachine.New(simmachine.Haswell72(), 8)
		m.SetWorkers(2)
		if cluster {
			// An owner table alongside nodes=1: the table must be inert
			// too, not just tolerated.
			m.SetCluster(1, make([]int16, 1<<10))
		}
		eng := gap.New()
		instAny, err := eng.Load(el, m)
		if err != nil {
			t.Fatal(err)
		}
		inst := instAny.(*gap.Instance)
		inst.BuildStructure()
		m.Reset()
		if _, err := inst.BFS(root); err != nil {
			t.Fatal(err)
		}
		if _, err := inst.PageRank(engines.DefaultPROpts()); err != nil {
			t.Fatal(err)
		}
		out := make([]simmachine.Region, len(m.Trace()))
		copy(out, m.Trace())
		return out
	}
	off, on := trace(false), trace(true)
	if len(off) != len(on) {
		t.Fatalf("region count differs: %d without cluster, %d with nodes=1", len(off), len(on))
	}
	for i := range off {
		if off[i] != on[i] {
			t.Fatalf("region %d differs at nodes=1: %+v vs %+v", i, off[i], on[i])
		}
	}
}

// TestSpecClusterKnobEndToEnd drives the harness with the cluster
// knobs: per-trial modeled measurements under Nodes=4 must be
// identical across worker counts for both partitions; the knob must
// actually reach the network model (modeled seconds move, NetBytes
// lands in the results); Nodes<=1 must reproduce the single-box
// numbers bitwise with zero NetBytes; and malformed specs are
// rejected.
func TestSpecClusterKnobEndToEnd(t *testing.T) {
	el := kronecker.Generate(kronecker.Params{Scale: 9, Seed: 7})
	r := harness.NewRunner(Registry())
	run := func(workers, nodes int, partition string) ([]float64, []float64) {
		spec := coreSpec(engines.BFS, workers)
		spec.Nodes = nodes
		spec.Partition = partition
		rs, err := r.Run(spec, el)
		if err != nil {
			t.Fatal(err)
		}
		secs := make([]float64, len(rs))
		net := make([]float64, len(rs))
		for i, res := range rs {
			secs[i] = res.AlgorithmSec
			net[i] = res.NetBytes
		}
		return secs, net
	}
	single, singleNet := run(1, 0, "")
	for _, n := range singleNet {
		if n != 0 {
			t.Fatalf("single-box run recorded NetBytes %v", n)
		}
	}
	// Nodes=1 (with either partition name) is the single-box run.
	for _, partition := range []string{"", core.Partition1D, core.Partition2D} {
		secs, net := run(1, 1, partition)
		sameFloat64sBitwise(t, "nodes=1 seconds", single, secs)
		sameFloat64sBitwise(t, "nodes=1 net bytes", singleNet, net)
	}
	for _, partition := range []string{core.Partition1D, core.Partition2D} {
		base, baseNet := run(1, 4, partition)
		for _, workers := range []int{2, 4} {
			secs, net := run(workers, 4, partition)
			sameFloat64sBitwise(t, partition+" cluster seconds", base, secs)
			sameFloat64sBitwise(t, partition+" cluster net bytes", baseNet, net)
		}
		// The network model is live end-to-end: sharding moves modeled
		// time and records traffic.
		moved := false
		for i := range base {
			if base[i] != single[i] {
				moved = true
			}
		}
		if !moved {
			t.Errorf("%s: nodes=4 modeled seconds identical to single box — Spec.Nodes not reaching the network model", partition)
		}
		traffic := 0.0
		for _, n := range baseNet {
			traffic += n
		}
		if traffic <= 0 {
			t.Errorf("%s: nodes=4 recorded no NetBytes", partition)
		}
	}

	bad := coreSpec(engines.BFS, 1)
	bad.Nodes = core.MaxNodes + 1
	if _, err := r.Run(bad, el); err == nil {
		t.Error("node count above MaxNodes accepted")
	}
	bad = coreSpec(engines.BFS, 1)
	bad.Nodes = -1
	if _, err := r.Run(bad, el); err == nil {
		t.Error("negative node count accepted")
	}
	bad = coreSpec(engines.BFS, 1)
	bad.Partition = "hilbert"
	if _, err := r.Run(bad, el); err == nil {
		t.Error("unknown partition scheme accepted")
	}
}
