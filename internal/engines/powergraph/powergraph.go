package powergraph

import (
	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/parallel"
	"github.com/hpcl-repro/epg/internal/simmachine"
)

// Cost constants: GAS edge processing is an order of magnitude
// heavier than a tight CSR loop — each gather goes through the vertex
// program dispatch, edge iterator, and accumulator locking.
var (
	costGatherEdge  = simmachine.Cost{Cycles: 55, Bytes: 44, Atomics: 1}
	costScanEdge    = simmachine.Cost{Cycles: 4, Bytes: 6}
	costApplyVertex = simmachine.Cost{Cycles: 40, Bytes: 40}
	costSyncReplica = simmachine.Cost{Cycles: 10, Bytes: 28}
	costLoadEdge    = simmachine.Cost{Cycles: 45, Bytes: 56}
	costLCCCheck    = simmachine.Cost{Cycles: 18, Bytes: 20}
)

// maxShards bounds the vertex-cut width (replica masks are one word);
// the shared partitioner enforces the same bound.
const maxShards = graph.MaxVertexCutShards

// Engine is the PowerGraph analogue.
type Engine struct{}

// New returns the engine.
func New() *Engine { return &Engine{} }

// Name implements engines.Engine.
func (e *Engine) Name() string { return "PowerGraph" }

// SeparateConstruction implements engines.Engine: PowerGraph ingests
// and partitions while reading the input.
func (e *Engine) SeparateConstruction() bool { return false }

// Has implements engines.Engine: the toolkits cover everything here
// except BFS.
func (e *Engine) Has(alg engines.Algorithm) bool {
	switch alg {
	case engines.SSSP, engines.PageRank, engines.CDLP, engines.LCC, engines.WCC:
		return true
	}
	return false
}

type shardEdge struct {
	src, dst graph.VID
	w        float32
}

// Instance is a loaded, partitioned PowerGraph graph.
type Instance struct {
	m        *simmachine.Machine
	n        int
	directed bool
	weighted bool

	shards   [][]shardEdge
	replicas []uint64 // per-vertex shard mask
	totalRep int64    // sum of popcounts: ghost sync volume
	slotOff  []int64  // per-vertex replica-slot prefix (see accum.go)

	// Homogenized adjacency retained for apply-side degree lookups
	// and the neighborhood kernels (CDLP/LCC).
	out *graph.CSR
	in  *graph.CSR
}

// Load implements engines.Engine: read, homogenize, and greedily
// vertex-cut partition the edges, all charged as one phase.
func (e *Engine) Load(el *graph.EdgeList, m *simmachine.Machine) (engines.Instance, error) {
	if err := el.Validate(); err != nil {
		return nil, err
	}
	out := graph.BuildCSR(el, graph.BuildOptions{
		Symmetrize:    !el.Directed,
		DropSelfLoops: true,
		Dedup:         true,
		Sort:          true,
	})
	var in *graph.CSR
	if el.Directed {
		in = graph.Transpose(out, 0)
		in.SortAdjacency()
	} else {
		in = out
	}
	inst := &Instance{
		m: m, n: out.NumVertices,
		directed: el.Directed, weighted: el.Weighted,
		out: out, in: in,
	}

	p := m.Threads()
	if p > maxShards {
		p = maxShards
	}
	if p < 1 {
		p = 1
	}
	// Partition the deduplicated directed adjacency (the engine's true
	// edge set) with the shared greedy streaming vertex-cut — the same
	// machinery the modeled cluster's 2D partitioner uses.
	inst.shards = make([][]shardEdge, p)
	cut := graph.GreedyVertexCut(out, p, func(src, dst graph.VID, w float32, shard int) {
		inst.shards[shard] = append(inst.shards[shard], shardEdge{src, dst, w})
	})
	inst.replicas = cut.Replicas
	inst.totalRep = cut.TotalRep
	inst.buildSlots()

	m.FileRead(int64(len(el.Edges))*16, true)
	m.ParallelFor(int(out.NumEdges()), 2048, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
		w.Charge(costLoadEdge.Scale(float64(hi - lo)))
	})
	return inst, nil
}

// BuildStructure implements engines.Instance: a no-op; partitioning
// happened during Load.
func (inst *Instance) BuildStructure() {}

// ReplicationFactor returns the average number of shards holding each
// non-isolated vertex — PowerGraph's classic partition quality metric.
func (inst *Instance) ReplicationFactor() float64 {
	present := 0
	for _, mask := range inst.replicas {
		if mask != 0 {
			present++
		}
	}
	if present == 0 {
		return 0
	}
	return float64(inst.totalRep) / float64(present)
}

// syncGhosts charges one ghost-exchange round (every replica's state
// shipped to its master and back).
func (inst *Instance) syncGhosts() {
	rep := inst.totalRep
	inst.m.ParallelFor(int(rep), 4096, simmachine.Dynamic, func(lo, hi int, w *simmachine.W) {
		w.Charge(costSyncReplica.Scale(float64(hi - lo)))
	})
}

// gatherSweep runs one GAS gather phase: every shard scans its local
// edges; body is invoked with the shard ID for edges whose source is
// active (a bitmap frontier; nil means all-active), and accumulates
// into that shard's replica slots (shard-local writes: no atomics, see
// accum.go). The scan cost covers the engine's per-edge dispatch even
// for inactive edges. It returns the processed edge count
// (deterministic: the active set is fixed before the sweep).
func (inst *Instance) gatherSweep(active *parallel.Bitmap, body func(s int, e shardEdge)) int64 {
	shards := inst.shards
	processedBy := make([]int64, len(shards))
	inst.m.ForEachThread(func(tid int, w *simmachine.W) {
		if tid >= len(shards) {
			return
		}
		var scanned, processed int64
		for _, e := range shards[tid] {
			scanned++
			if active == nil || active.Test(int(e.src)) {
				processed++
				body(tid, e)
			}
		}
		processedBy[tid] = processed
		w.Charge(costScanEdge.Scale(float64(scanned)))
		w.Charge(costGatherEdge.Scale(float64(processed)))
	})
	var total int64
	for _, p := range processedBy {
		total += p
	}
	return total
}

// BFS implements engines.Instance: PowerGraph ships no BFS reference.
func (inst *Instance) BFS(graph.VID) (*engines.BFSResult, error) {
	return nil, engines.ErrUnsupported
}
