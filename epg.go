// Package epg is a Go reproduction of "A Comparison of Parallel Graph
// Processing Implementations" (Pollard & Norris, IEEE CLUSTER 2017):
// the easy-parallel-graph-* framework together with Go analogues of
// the five systems it studies — Graph500, the GAP Benchmark Suite,
// GraphBIG, GraphMat, and PowerGraph.
//
// The package is a façade over the internal packages. A typical
// session mirrors the paper's workflow:
//
//	suite := epg.NewSuite()
//	g, _ := suite.Dataset("kron-16")
//	results, _ := suite.Run(epg.Spec{
//	    Dataset:   "kron-16",
//	    Algorithm: epg.BFS,
//	    Threads:   32,
//	}, g)
//	epg.RenderTimeFigure(os.Stdout, "BFS Time", results)
//
// Engines run their algorithms for real (results are validated
// against serial references in the test suite) while all performance
// accounting flows through a deterministic model of the paper's
// 72-thread Haswell server; see DESIGN.md for the substitutions.
package epg

import (
	"fmt"
	"io"

	"github.com/hpcl-repro/epg/internal/core"
	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/engines/all"
	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/graphalytics"
	"github.com/hpcl-repro/epg/internal/harness"
	"github.com/hpcl-repro/epg/internal/logfmt"
	"github.com/hpcl-repro/epg/internal/power"
	"github.com/hpcl-repro/epg/internal/report"
	"github.com/hpcl-repro/epg/internal/simmachine"
	"github.com/hpcl-repro/epg/internal/snap"
)

// Algorithm identifies one of the study's kernels.
type Algorithm = engines.Algorithm

// The six kernels: the paper's three primary algorithms and the three
// Graphalytics extras.
const (
	BFS      = engines.BFS
	SSSP     = engines.SSSP
	PageRank = engines.PageRank
	CDLP     = engines.CDLP
	LCC      = engines.LCC
	WCC      = engines.WCC
)

// Spec describes one experiment (dataset, algorithm, engines,
// threads, roots, scheduling policy). Spec.Compress selects
// delta+varint byte-compressed adjacency (decoded on the fly with a
// modeled per-byte cost) in the GAP and Graph500 BFS/PageRank inner
// loops; outputs are identical, only the modeled roofline moves.
type Spec = core.Spec

// Scheduling policies for Spec.Sched. SchedAuto (the default) keeps
// each engine's own per-region policy — the paper's configuration;
// the others force one policy onto every parallel region, changing
// both real execution and the modeled virtual-lane accounting.
// SchedNUMA is two-level (socket-aware) work stealing; pair it with
// Spec.Sockets (and optionally Spec.RemotePenalty) to make the
// locality model charge cross-socket steals.
const (
	SchedAuto    = core.SchedAuto
	SchedStatic  = core.SchedStatic
	SchedDynamic = core.SchedDynamic
	SchedSteal   = core.SchedSteal
	SchedNUMA    = core.SchedNUMA
)

// Grain policies for Spec.Grain. GrainFixed (the default) keeps each
// engine's hand-picked per-region grain; GrainAdaptive derives grains
// from the live region size and Spec.Threads, so frontier regions
// always split into about eight chunks per lane — the configuration
// that keeps work stealing live on small BFS/SSSP frontiers.
const (
	GrainFixed    = core.GrainFixed
	GrainAdaptive = core.GrainAdaptive
)

// Placement models for Spec.Placement. PlacementNone (the default)
// charges locality penalties only when a chunk is stolen across
// sockets; PlacementFirstTouch additionally records first-touch socket
// ownership of resident data and charges remote reads under every
// scheduling policy. Pair it with Spec.Sockets > 1.
const (
	PlacementNone       = core.PlacementNone
	PlacementFirstTouch = core.PlacementFirstTouch
)

// Frequency states for Spec.FreqState. FreqTurbo (the default) is the
// historical calibration; FreqBalanced and FreqPowersave model lower
// DVFS operating points — core clocks scaled down, CPU-plane dynamic
// power scaled down superlinearly (voltage–frequency coupling), DRAM
// plane untouched. Both modeled seconds and modeled joules respond,
// so sweeping the states answers which configuration is fastest per
// joule (and which minimizes energy-delay product).
const (
	FreqTurbo     = core.FreqTurbo
	FreqBalanced  = core.FreqBalanced
	FreqPowersave = core.FreqPowersave
)

// Partition schemes for Spec.Partition, effective when Spec.Nodes > 1
// turns on the modeled distributed-memory cluster: lanes group into
// virtual nodes, inter-node traffic is charged through the network
// model (batched per superstep), and outputs stay bit-identical to the
// single-box run — only modeled durations move. Partition1D (the
// default) homes contiguous blocked vertex ranges on each node;
// Partition2D homes each vertex on its lowest greedy-vertex-cut
// replica shard, the PowerGraph-style edge partition.
const (
	Partition1D = core.Partition1D
	Partition2D = core.Partition2D
)

// MutationSchedule parameterizes Spec.Mutations, the streaming phase:
// deterministic batches of edge inserts/deletes applied through an
// engine's Streamer hook with incremental PageRank/WCC maintenance,
// each batch conformance-checked bit-equal against a full recompute on
// the post-batch graph. Stream rows carry Result.Batch > 0 with the
// mutate / maintain / recompute breakdown.
type MutationSchedule = core.MutationSchedule

// Result is one measured run with its phase breakdown.
type Result = core.Result

// GraphalyticsCell is one single-run measurement under the
// Graphalytics methodology.
type GraphalyticsCell = graphalytics.Cell

// Graph is a loaded dataset ready to hand to engines.
type Graph struct {
	Name string
	el   *graph.EdgeList
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return g.el.NumVertices }

// NumEdges returns the edge count of the raw edge list.
func (g *Graph) NumEdges() int { return len(g.el.Edges) }

// Weighted reports whether edges carry weights.
func (g *Graph) Weighted() bool { return g.el.Weighted }

// Engines lists the five systems in the paper's order.
func Engines() []string { return append([]string(nil), all.Names...) }

// Options configure a Suite.
type Options struct {
	// RealWorldDivisor shrinks the synthetic real-world datasets
	// (1 reproduces the published sizes). Default 64: laptop scale.
	RealWorldDivisor int
	// Seed drives all synthetic generation and root selection.
	Seed uint64
	// EdgeFactor overrides the Kronecker edge factor (default 16).
	EdgeFactor int
	// Warnings receives structured knob-drop warnings from the
	// harness (an engine silently ignoring a Spec knob means the
	// result row does not measure what the spec asked for). Nil
	// discards them; the CLI wires this to stderr.
	Warnings io.Writer
}

// Suite bundles the framework's runner, machine model, and dataset
// resolution.
type Suite struct {
	runner *harness.Runner
	opts   Options
}

// NewSuite returns a suite over all five engines with the paper's
// Haswell calibration.
func NewSuite(opts ...Options) *Suite {
	o := Options{RealWorldDivisor: 64, Seed: 1}
	if len(opts) > 0 {
		o = opts[0]
		if o.RealWorldDivisor == 0 {
			o.RealWorldDivisor = 64
		}
	}
	r := harness.NewRunner(all.Registry())
	r.Warnings = o.Warnings
	return &Suite{runner: r, opts: o}
}

// Dataset materializes a named dataset: "kron-<scale>", "dota-league"
// or "cit-Patents".
func (s *Suite) Dataset(name string) (*Graph, error) {
	el, err := harness.ResolveDataset(name, harness.DatasetOptions{
		Seed:             s.opts.Seed,
		RealWorldDivisor: s.opts.RealWorldDivisor,
		EdgeFactor:       s.opts.EdgeFactor,
	})
	if err != nil {
		return nil, err
	}
	return &Graph{Name: name, el: el}, nil
}

// ReadSNAP loads a graph from a SNAP-format stream, so arbitrary
// datasets can be used, as in the original framework.
func (s *Suite) ReadSNAP(r io.Reader, name string) (*Graph, error) {
	res, err := snap.Read(r)
	if err != nil {
		return nil, err
	}
	return &Graph{Name: name, el: res.Graph}, nil
}

// Homogenize writes the graph in the named engine format (phase 2 of
// the framework). See snap.AllFormats for the choices.
func (s *Suite) Homogenize(w io.Writer, g *Graph, format string) error {
	return snap.WriteFormat(w, g.el, snap.Format(format), g.Name)
}

// Formats lists the homogenization targets.
func Formats() []string {
	out := make([]string, len(snap.AllFormats))
	for i, f := range snap.AllFormats {
		out[i] = string(f)
	}
	return out
}

// Run executes a spec on g (phase 3) and returns normalized records
// (phase 4's output).
func (s *Suite) Run(spec Spec, g *Graph) ([]Result, error) {
	if spec.Dataset == "" {
		spec.Dataset = g.Name
	}
	if spec.Seed == 0 {
		spec.Seed = s.opts.Seed
	}
	return s.runner.Run(spec, g.el)
}

// Sweep measures spec across thread counts for the scalability
// figures; trials defaults to the paper's 4.
func (s *Suite) Sweep(spec Spec, g *Graph, threads []int, trials int) (map[string]map[int]float64, error) {
	if spec.Dataset == "" {
		spec.Dataset = g.Name
	}
	if spec.Seed == 0 {
		spec.Seed = s.opts.Seed
	}
	points, err := s.runner.Sweep(spec, g.el, threads, trials)
	if err != nil {
		return nil, err
	}
	out := map[string]map[int]float64{}
	for _, p := range points {
		if out[p.Engine] == nil {
			out[p.Engine] = map[int]float64{}
		}
		mean := 0.0
		for _, v := range p.Seconds {
			mean += v
		}
		out[p.Engine][p.Threads] = mean / float64(len(p.Seconds))
	}
	return out, nil
}

// Graphalytics runs the single-trial Graphalytics methodology on g at
// the given thread count (Tables I and II, Fig. 7).
func (s *Suite) Graphalytics(g *Graph, threads int) ([]GraphalyticsCell, error) {
	c := graphalytics.New(all.Registry())
	if threads > 0 {
		c.Threads = threads
	}
	c.Seed = s.opts.Seed
	return c.RunDataset(g.Name, g.el)
}

// SleepWatts returns the modeled idle draw (CPU+RAM), the paper's
// sleep(10) baseline.
func (s *Suite) SleepWatts() float64 { return s.runner.Power.SleepWatts() }

// CPUIdleWatts and RAMIdleWatts expose the per-plane idle calibration
// for Fig. 9's baselines.
func (s *Suite) CPUIdleWatts() float64 { return s.runner.Power.CPUIdleWatts }

// RAMIdleWatts returns the DRAM plane idle draw.
func (s *Suite) RAMIdleWatts() float64 { return s.runner.Power.RAMIdleWatts }

// MachineName describes the modeled machine.
func (s *Suite) MachineName() string { return s.runner.Model.Name }

// MeasureSleepBaseline reproduces the paper's ten-second sleep
// calibration and returns average watts.
func (s *Suite) MeasureSleepBaseline(seconds float64) float64 {
	m := simmachine.New(s.runner.Model, 1)
	rd := power.MeasureSleep(m, s.runner.Power, seconds)
	return rd.AvgWatts()
}

// WriteCSV writes normalized records (the phase-4 CSV).
func WriteCSV(w io.Writer, results []Result) error { return logfmt.WriteCSV(w, results) }

// ReadCSV parses the phase-4 CSV back into records.
func ReadCSV(r io.Reader) ([]Result, error) { return logfmt.ReadCSV(r) }

// EmitLog writes one result in its engine's native log format.
func EmitLog(w io.Writer, r Result) error { return logfmt.Emit(w, r) }

// ParseLog parses an engine log given the run's identity fields.
func ParseLog(r io.Reader, identity Result) (Result, error) { return logfmt.Parse(r, identity) }

// RenderTimeFigure renders a Fig. 2/3/4-style box-plot panel of
// algorithm times.
func RenderTimeFigure(w io.Writer, title string, results []Result) {
	report.TimeBoxFigure(w, title, results)
}

// RenderConstructionFigure renders the construction-time panel
// (engines without a separate phase are omitted, as in the paper).
func RenderConstructionFigure(w io.Writer, title string, results []Result) {
	report.ConstructionFigure(w, title, results)
}

// RenderIterationsFigure renders Fig. 4's iteration-count panel.
func RenderIterationsFigure(w io.Writer, title string, results []Result) {
	report.IterationsFigure(w, title, results)
}

// RenderScalingFigure renders Figs. 5/6 from Sweep output.
func RenderScalingFigure(w io.Writer, title string, byEngine map[string]map[int]float64) error {
	return report.ScalingFigure(w, title, byEngine)
}

// RenderRealWorldFigure renders Fig. 8.
func RenderRealWorldFigure(w io.Writer, results []Result) {
	report.RealWorldFigure(w, results)
}

// RenderPowerFigure renders Fig. 9 with the suite's idle baselines.
func (s *Suite) RenderPowerFigure(w io.Writer, results []Result) {
	report.PowerFigure(w, results, s.CPUIdleWatts(), s.RAMIdleWatts())
}

// RenderEnergyTable renders Table III.
func (s *Suite) RenderEnergyTable(w io.Writer, results []Result) {
	report.EnergyTable(w, results, s.SleepWatts())
}

// RenderGraphalyticsTable renders Tables I/II from comparator cells.
func RenderGraphalyticsTable(w io.Writer, title string, cells []GraphalyticsCell) {
	graphalytics.WriteTable(w, title, cells)
}

// RenderGraphalyticsHTML writes the per-platform HTML page (Fig. 7).
func RenderGraphalyticsHTML(w io.Writer, platform string, cells []GraphalyticsCell) error {
	return graphalytics.WriteHTML(w, platform, cells)
}

// Validate sanity-checks a loaded graph.
func (g *Graph) Validate() error {
	if g == nil || g.el == nil {
		return fmt.Errorf("epg: nil graph")
	}
	return g.el.Validate()
}
