package verify

import (
	"fmt"
	"math"

	"github.com/hpcl-repro/epg/internal/engines"
	"github.com/hpcl-repro/epg/internal/graph"
)

// ValidateBFS applies the Graph500-style correctness rules to a parent
// tree, using the reference run for reachability and level checks:
//
//  1. the root's parent is the root itself;
//  2. every tree edge (parent(v), v) exists in the graph;
//  3. levels are consistent: depth(v) == depth(parent(v)) + 1;
//  4. exactly the reference-reachable vertices are reached;
//  5. engine levels equal reference levels (BFS levels are unique
//     even when parent choices are not).
func ValidateBFS(p *Prepared, got, ref *engines.BFSResult) error {
	n := p.Out.NumVertices
	if len(got.Parent) != n || len(got.Depth) != n {
		return fmt.Errorf("bfs: result arrays sized %d/%d, want %d", len(got.Parent), len(got.Depth), n)
	}
	if got.Parent[got.Root] != int64(got.Root) {
		return fmt.Errorf("bfs: root %d parent is %d, want itself", got.Root, got.Parent[got.Root])
	}
	for v := 0; v < n; v++ {
		pv := got.Parent[v]
		if pv == engines.NoParent {
			if ref.Parent[v] != engines.NoParent {
				return fmt.Errorf("bfs: vertex %d unreached but reference reaches it", v)
			}
			if got.Depth[v] != -1 {
				return fmt.Errorf("bfs: unreached vertex %d has depth %d", v, got.Depth[v])
			}
			continue
		}
		if ref.Parent[v] == engines.NoParent {
			return fmt.Errorf("bfs: vertex %d reached but reference does not reach it", v)
		}
		if got.Depth[v] != ref.Depth[v] {
			return fmt.Errorf("bfs: vertex %d depth %d, reference %d", v, got.Depth[v], ref.Depth[v])
		}
		if graph.VID(v) == got.Root {
			continue
		}
		parent := graph.VID(pv)
		if !p.Out.HasEdge(parent, graph.VID(v)) {
			return fmt.Errorf("bfs: tree edge %d->%d not in graph", parent, v)
		}
		if got.Depth[v] != got.Depth[parent]+1 {
			return fmt.Errorf("bfs: vertex %d depth %d but parent %d depth %d", v, got.Depth[v], parent, got.Depth[parent])
		}
	}
	return nil
}

// SSSPTolerance bounds the acceptable absolute distance error, sized
// for float32 accumulation over paths of modest length.
const SSSPTolerance = 2e-4

// ValidateSSSP compares distances against the Dijkstra reference and
// additionally checks the triangle inequality on every edge.
func ValidateSSSP(p *Prepared, got, ref *engines.SSSPResult) error {
	n := p.Out.NumVertices
	if len(got.Dist) != n {
		return fmt.Errorf("sssp: result sized %d, want %d", len(got.Dist), n)
	}
	for v := 0; v < n; v++ {
		gd, rd := got.Dist[v], ref.Dist[v]
		switch {
		case math.IsInf(gd, 1) != math.IsInf(rd, 1):
			return fmt.Errorf("sssp: vertex %d reachability differs (got %v, ref %v)", v, gd, rd)
		case math.IsInf(gd, 1):
			continue
		case math.Abs(gd-rd) > SSSPTolerance*(1+math.Abs(rd)):
			return fmt.Errorf("sssp: vertex %d dist %v, reference %v", v, gd, rd)
		}
	}
	// Edge-wise optimality: no edge can relax further.
	for v := 0; v < n; v++ {
		dv := got.Dist[v]
		if math.IsInf(dv, 1) {
			continue
		}
		adj := p.Out.Neighbors(graph.VID(v))
		w := p.Out.NeighborWeights(graph.VID(v))
		for i, u := range adj {
			if got.Dist[u] > dv+float64(w[i])+SSSPTolerance {
				return fmt.Errorf("sssp: edge %d->%d violates optimality (%v > %v + %v)", v, u, got.Dist[u], dv, w[i])
			}
		}
	}
	return nil
}

// ValidatePageRank checks score closeness (L1), normalization, and
// non-negativity. tol should reflect the engine's precision: float64
// engines pass 1e-6; float32 engines need ~1e-3.
func ValidatePageRank(got, ref *engines.PRResult, tol float64) error {
	if len(got.Rank) != len(ref.Rank) {
		return fmt.Errorf("pagerank: result sized %d, want %d", len(got.Rank), len(ref.Rank))
	}
	var sum, l1 float64
	for i := range got.Rank {
		if got.Rank[i] < 0 {
			return fmt.Errorf("pagerank: negative rank at %d: %v", i, got.Rank[i])
		}
		sum += got.Rank[i]
		l1 += math.Abs(got.Rank[i] - ref.Rank[i])
	}
	if math.Abs(sum-1) > 1e-3 {
		return fmt.Errorf("pagerank: ranks sum to %v, want 1", sum)
	}
	if l1 > tol {
		return fmt.Errorf("pagerank: L1 distance to reference %v exceeds %v", l1, tol)
	}
	return nil
}

// ValidateCDLP requires exact agreement: the synchronous min-tie-break
// semantics are deterministic.
func ValidateCDLP(got, ref *engines.CDLPResult) error {
	if len(got.Label) != len(ref.Label) {
		return fmt.Errorf("cdlp: result sized %d, want %d", len(got.Label), len(ref.Label))
	}
	for v := range got.Label {
		if got.Label[v] != ref.Label[v] {
			return fmt.Errorf("cdlp: vertex %d label %d, reference %d", v, got.Label[v], ref.Label[v])
		}
	}
	return nil
}

// ValidateLCC compares coefficients within a tight epsilon (the values
// are ratios of integer counts).
func ValidateLCC(got, ref *engines.LCCResult) error {
	if len(got.Coeff) != len(ref.Coeff) {
		return fmt.Errorf("lcc: result sized %d, want %d", len(got.Coeff), len(ref.Coeff))
	}
	for v := range got.Coeff {
		if math.Abs(got.Coeff[v]-ref.Coeff[v]) > 1e-9 {
			return fmt.Errorf("lcc: vertex %d coeff %v, reference %v", v, got.Coeff[v], ref.Coeff[v])
		}
	}
	return nil
}

// ValidateWCC requires exact agreement of canonical component IDs.
func ValidateWCC(got, ref *engines.WCCResult) error {
	if len(got.Component) != len(ref.Component) {
		return fmt.Errorf("wcc: result sized %d, want %d", len(got.Component), len(ref.Component))
	}
	for v := range got.Component {
		if got.Component[v] != ref.Component[v] {
			return fmt.Errorf("wcc: vertex %d component %d, reference %d", v, got.Component[v], ref.Component[v])
		}
	}
	return nil
}
