package server

import (
	"fmt"
	"sort"

	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/xrand"
)

// SimConfig parameterizes one deterministic load run: a Poisson
// arrival stream of point queries pushed through the full admission /
// queue / deadline / degradation pipeline in virtual time.
type SimConfig struct {
	// Servers is the number of virtual executors. Service times come
	// from ONE real bench executor (they are pure functions of query
	// content), so the simulation itself is single-threaded and exact.
	Servers int
	// Admit is the admission configuration; the token bucket runs on
	// virtual time.
	Admit AdmitConfig
	// DeadlineSec is the modeled service budget applied to every query.
	DeadlineSec float64
	// OfferedQPS is the Poisson arrival rate in virtual queries/sec.
	OfferedQPS float64
	// NumQueries is the total offered load.
	NumQueries int
	// Seed drives arrivals and query content.
	Seed uint64
}

// SimStats is the outcome ledger of one load run. Every field is a
// pure function of (dataset, SimConfig): bit-identical across runs,
// worker counts, and hosts.
type SimStats struct {
	Offered          int
	Admitted         int
	ShedQueueFull    int
	ShedThrottled    int
	Completed        int
	Degraded         int
	DeadlineExceeded int
	Errors           int
	MaxDepth         int
	// Modeled service-time percentiles over admitted queries, in
	// microseconds (deadline-exceeded queries count at their
	// truncation time).
	P50US, P99US, MeanUS float64
}

// Conservation checks the exact-accounting invariants; the tests and
// the loadgen assert it after every run.
func (st SimStats) Conservation() error {
	if st.Admitted+st.ShedQueueFull+st.ShedThrottled != st.Offered {
		return fmt.Errorf("server: admitted %d + shed %d+%d != offered %d",
			st.Admitted, st.ShedQueueFull, st.ShedThrottled, st.Offered)
	}
	if st.Completed+st.DeadlineExceeded+st.Errors != st.Admitted {
		return fmt.Errorf("server: completed %d + deadline %d + errors %d != admitted %d",
			st.Completed, st.DeadlineExceeded, st.Errors, st.Admitted)
	}
	return nil
}

// simQuery is one generated arrival.
type simQuery struct {
	at float64
	q  Query
}

// genQueries draws the arrival stream: exponential interarrivals at
// OfferedQPS and a fixed op mix (40% BFS, 20% SSSP on weighted
// datasets — folded into BFS otherwise — 15% PR, 15% WCC, 10% 2-hop).
func genQueries(rng *xrand.RNG, n int, cfg SimConfig, weighted bool) []simQuery {
	out := make([]simQuery, 0, cfg.NumQueries)
	t := 0.0
	for i := 0; i < cfg.NumQueries; i++ {
		t += rng.Exp() / cfg.OfferedQPS
		q := Query{Source: graph.VID(rng.Intn(n)), Target: graph.VID(rng.Intn(n))}
		switch r := rng.Float64(); {
		case r < 0.40:
			q.Op = OpBFS
		case r < 0.60:
			if weighted {
				q.Op = OpSSSP
			} else {
				q.Op = OpBFS
			}
		case r < 0.75:
			q.Op = OpPR
		case r < 0.90:
			q.Op = OpWCC
		default:
			q.Op = OpKHop
			q.K = 2
		}
		out = append(out, simQuery{at: t, q: q})
	}
	return out
}

// Simulate runs the virtual-time discrete-event loop: arrivals meet
// the admission controller (queue-full shed, token throttle, degrade
// watermark), queued queries start as virtual servers free up, and
// each service consumes the bench executor's modeled duration for
// that query. Single-threaded and wall-clock-free end to end.
func Simulate(b *Bench, cfg SimConfig) (SimStats, error) {
	if cfg.Servers < 1 {
		cfg.Servers = 1
	}
	if err := cfg.Admit.validate(); err != nil {
		return SimStats{}, err
	}
	if cfg.OfferedQPS <= 0 || cfg.NumQueries <= 0 {
		return SimStats{}, fmt.Errorf("server: sim needs positive offered qps and query count")
	}
	rng := xrand.New(cfg.Seed)
	arrivals := genQueries(rng, b.n, cfg, b.weighted)

	var st SimStats
	bucket := newTokenBucket(cfg.Admit.QPS, cfg.Admit.Burst)
	freeAt := make([]float64, cfg.Servers)
	type queued struct {
		q        Query
		degraded bool
	}
	var queue []queued
	var serviceUS []float64

	serve := func(srv int, start float64, item queued) {
		// b.Run memoizes, so repeated queries cost one executor run each.
		resp := b.Run(item.q, cfg.DeadlineSec, item.degraded)
		switch resp.Status {
		case StatusOK:
			st.Completed++
			if resp.Degraded {
				st.Degraded++
			}
		case StatusDeadline:
			st.DeadlineExceeded++
		default:
			st.Errors++
		}
		serviceUS = append(serviceUS, resp.ModeledSec*1e6)
		freeAt[srv] = start + resp.ModeledSec
	}
	// earliestFree returns the server with the smallest free time
	// (lowest index on ties — deterministic).
	earliestFree := func() int {
		best := 0
		for s := 1; s < len(freeAt); s++ {
			if freeAt[s] < freeAt[best] {
				best = s
			}
		}
		return best
	}
	// drainUntil starts queued queries on servers that free up at or
	// before time t.
	drainUntil := func(t float64) {
		for len(queue) > 0 {
			s := earliestFree()
			if freeAt[s] > t {
				return
			}
			item := queue[0]
			queue = queue[1:]
			serve(s, freeAt[s], item)
		}
	}

	for _, a := range arrivals {
		drainUntil(a.at)
		st.Offered++
		if len(queue) >= cfg.Admit.QueueCap {
			st.ShedQueueFull++
			continue
		}
		if !bucket.allow(a.at) {
			st.ShedThrottled++
			continue
		}
		st.Admitted++
		degraded := a.q.degradable(b.weighted) &&
			cfg.Admit.DegradeWatermark > 0 && len(queue) >= cfg.Admit.DegradeWatermark
		item := queued{q: a.q, degraded: degraded}
		if s := earliestFree(); freeAt[s] <= a.at && len(queue) == 0 {
			serve(s, a.at, item) // idle server: straight to service
			continue
		}
		queue = append(queue, item)
		if len(queue) > st.MaxDepth {
			st.MaxDepth = len(queue)
		}
	}
	// End of arrivals: everything admitted still runs.
	for len(queue) > 0 {
		s := earliestFree()
		item := queue[0]
		queue = queue[1:]
		serve(s, freeAt[s], item)
	}

	sort.Float64s(serviceUS)
	st.P50US = percentile(serviceUS, 50)
	st.P99US = percentile(serviceUS, 99)
	if len(serviceUS) > 0 {
		sum := 0.0
		for _, v := range serviceUS {
			sum += v
		}
		st.MeanUS = sum / float64(len(serviceUS))
	}
	if err := st.Conservation(); err != nil {
		return st, err
	}
	return st, nil
}

// percentile returns the nearest-rank percentile of sorted values
// (0 when empty).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.9999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// CalibrateCapacity estimates the bench's service capacity in
// queries/sec for cfg.Servers virtual executors: it runs `probes`
// representative queries (same generator as the load stream, no
// budget, no degradation) and divides servers by the mean modeled
// service time. Deterministic, so offered-vs-capacity multipliers in
// the study are exact.
func CalibrateCapacity(b *Bench, servers, probes int, seed uint64) float64 {
	if probes < 1 {
		probes = 16
	}
	rng := xrand.New(seed)
	qs := genQueries(rng, b.n, SimConfig{NumQueries: probes, OfferedQPS: 1}, b.weighted)
	total := 0.0
	for _, a := range qs {
		resp := b.Run(a.q, 0, false)
		total += resp.ModeledSec
	}
	mean := total / float64(probes)
	if mean <= 0 {
		return 0
	}
	return float64(servers) / mean
}
