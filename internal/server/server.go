package server

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcl-repro/epg/internal/graph"
	"github.com/hpcl-repro/epg/internal/harness"
	"github.com/hpcl-repro/epg/internal/logfmt"
)

// Config parameterizes a daemon.
type Config struct {
	// Dataset is a harness dataset name ("kron-12", "dota-league",
	// "cit-Patents"); Seed feeds the synthetic generators.
	Dataset string
	Seed    uint64
	// Executors is the number of engine instances serving in parallel
	// (each owns a machine and serves one query at a time); Threads is
	// the modeled thread count of each. Defaults: 2 and 8.
	Executors int
	Threads   int
	// Admit configures admission control; zero values get defaults
	// (QueueCap 64, watermark half the cap, throttling off).
	Admit AdmitConfig
	// DefaultDeadlineSec is the modeled service budget applied when a
	// query does not carry one; <= 0 means no default budget.
	DefaultDeadlineSec float64
	// Landmarks sizes the degradation sketch (default 8; 0 after
	// defaulting disables degraded answers).
	Landmarks int
	// Compress serves BFS/PR from the delta+varint compressed
	// adjacency (trades decode cycles for bandwidth, as in the
	// compression study).
	Compress bool
	// FaultInjection permits OpPanic queries, for soak tests that
	// prove panic isolation.
	FaultInjection bool
	// QueryLog, when non-nil, receives one structured line per query
	// (logfmt.EmitQuery).
	QueryLog io.Writer
}

func (c Config) withDefaults() Config {
	if c.Executors <= 0 {
		c.Executors = 2
	}
	if c.Threads <= 0 {
		c.Threads = 8
	}
	if c.Admit.QueueCap == 0 {
		c.Admit.QueueCap = 64
	}
	if c.Admit.DegradeWatermark == 0 {
		c.Admit.DegradeWatermark = c.Admit.QueueCap / 2
	}
	if c.Landmarks == 0 {
		c.Landmarks = 8
	}
	return c
}

// pending is one admitted query waiting for an executor.
type pending struct {
	ctx      context.Context
	q        Query
	seq      int64
	budget   float64
	degraded bool
	refresh  bool
	depth    int // queue depth observed at admission, for the log
	resC     chan Response
}

// Server is a running daemon instance (transport-agnostic; see
// Handler for HTTP).
type Server struct {
	cfg   Config
	el    *graph.EdgeList
	csr   *graph.CSR
	execs []*executor

	// vecMu guards the precomputed state a refresh swaps: the PR/WCC
	// vectors AND the degradation sketch (plus its generation counter —
	// monotone, bumped by every successful refresh, so tests can prove
	// degraded answers come from the rebuilt sketch, not a stale one).
	vecMu     sync.RWMutex
	vec       vectors
	sketch    *Sketch
	sketchGen uint64

	admit   *admitter
	queue   chan *pending
	metrics Metrics
	seq     atomic.Int64
	started time.Time

	logMu   sync.Mutex
	wg      sync.WaitGroup
	stopped chan struct{}
	closed  atomic.Bool
}

// New resolves cfg.Dataset and starts a server.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	el, err := harness.ResolveDataset(cfg.Dataset, harness.DatasetOptions{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	return NewFromEdgeList(el, cfg)
}

// NewFromEdgeList starts a server over an in-memory edge list: builds
// the homogenized CSR, loads one engine instance per executor,
// precomputes the PR/WCC vectors, builds the landmark sketch, and
// starts the executor goroutines. The returned server is serving.
func NewFromEdgeList(el *graph.EdgeList, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Admit.validate(); err != nil {
		return nil, err
	}
	csr := graph.BuildCSR(el, graph.BuildOptions{
		Symmetrize:    !el.Directed,
		DropSelfLoops: true,
		Dedup:         true,
		Sort:          true,
	})
	s := &Server{
		cfg:     cfg,
		el:      el,
		csr:     csr,
		admit:   newAdmitter(cfg.Admit),
		queue:   make(chan *pending, cfg.Admit.QueueCap),
		started: time.Now(),
		stopped: make(chan struct{}),
	}
	for i := 0; i < cfg.Executors; i++ {
		e, err := newExecutor(i, el, csr, cfg.Threads, cfg.Compress)
		if err != nil {
			return nil, err
		}
		s.execs = append(s.execs, e)
	}
	vec, err := s.execs[0].computeVectors()
	if err != nil {
		return nil, err
	}
	s.vec = vec
	s.sketch = BuildSketch(csr, cfg.Landmarks)
	s.sketchGen = 1
	for _, e := range s.execs {
		s.wg.Add(1)
		go s.serveLoop(e)
	}
	return s, nil
}

// NumVertices reports the homogenized vertex count (query ID space).
func (s *Server) NumVertices() int { return s.csr.NumVertices }

// Weighted reports whether SSSP queries are servable.
func (s *Server) Weighted() bool { return s.el.Weighted }

// Metrics returns the live counters.
func (s *Server) Metrics() MetricsSnapshot { return s.metrics.Snapshot() }

// QueueDepth returns the current admission queue depth.
func (s *Server) QueueDepth() int { return s.admit.Depth() }

// MaxQueueDepth returns the depth high-water mark.
func (s *Server) MaxQueueDepth() int { return s.admit.MaxDepth() }

// Close stops accepting queries, drains the executors, and waits for
// them to exit. Safe to call twice.
func (s *Server) Close() {
	if s.closed.CompareAndSwap(false, true) {
		close(s.stopped)
	}
	s.wg.Wait()
}

func (s *Server) vectors() vectors {
	s.vecMu.RLock()
	defer s.vecMu.RUnlock()
	return s.vec
}

// snapshot returns the precomputed state one query serves from — the
// vectors and the sketch taken under one lock, so a query never mixes
// pre-refresh vectors with a post-refresh sketch or vice versa.
func (s *Server) snapshot() (vectors, *Sketch) {
	s.vecMu.RLock()
	defer s.vecMu.RUnlock()
	return s.vec, s.sketch
}

// SketchGeneration returns the degradation sketch's generation:
// 1 after construction, +1 per successful refresh.
func (s *Server) SketchGeneration() uint64 {
	s.vecMu.RLock()
	defer s.vecMu.RUnlock()
	return s.sketchGen
}

// serveLoop is one executor's goroutine: dequeue, serve, respond.
// After Close it drains whatever is already queued (those callers
// were admitted and are waiting) and exits.
func (s *Server) serveLoop(e *executor) {
	defer s.wg.Done()
	for {
		select {
		case p := <-s.queue:
			s.serveOne(e, p)
		case <-s.stopped:
			for {
				select {
				case p := <-s.queue:
					s.serveOne(e, p)
				default:
					return
				}
			}
		}
	}
}

func (s *Server) serveOne(e *executor, p *pending) {
	s.admit.release()
	var resp Response
	if p.refresh {
		vec, err := e.computeVectors()
		if err != nil {
			resp = Response{Status: StatusError, Err: err.Error()}
		} else {
			// The degradation sketch is precomputation too: a refresh
			// that swapped the vectors but kept the old sketch would
			// keep serving degraded answers from stale state. Rebuild
			// it and swap everything in one critical section.
			sketch := BuildSketch(s.csr, s.cfg.Landmarks)
			s.vecMu.Lock()
			s.vec = vec
			s.sketch = sketch
			s.sketchGen++
			s.vecMu.Unlock()
			resp = Response{Status: StatusOK}
		}
	} else {
		vec, sketch := s.snapshot()
		resp = e.run(p.ctx, p.q, p.budget, p.degraded, vec, sketch)
	}
	if p.refresh {
		// Refreshes hold a queue slot but are not queries: keeping them
		// out of the outcome counters preserves the exact identity
		// completed+deadline+errors+panics == admitted.
		p.resC <- resp
		return
	}
	switch resp.Status {
	case StatusOK:
		s.metrics.Completed.Add(1)
		if resp.Degraded {
			s.metrics.Degraded.Add(1)
		}
	case StatusDeadline:
		s.metrics.DeadlineExceeded.Add(1)
	case StatusPanic:
		s.metrics.Panics.Add(1)
	default:
		s.metrics.Errors.Add(1)
	}
	s.logQuery(p, resp)
	p.resC <- resp // buffered: never blocks, even if the caller left
}

func (s *Server) logQuery(p *pending, resp Response) {
	if s.cfg.QueryLog == nil {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	logfmt.EmitQuery(s.cfg.QueryLog, logfmt.QueryRecord{
		Seq:       p.seq,
		Op:        string(p.q.Op),
		Src:       uint32(p.q.Source),
		Dst:       uint32(p.q.Target),
		Status:    string(resp.Status),
		Degraded:  resp.Degraded,
		ModeledUS: resp.ModeledSec * 1e6,
		Depth:     p.depth,
	})
}

func (s *Server) logShed(seq int64, q Query, status Status, depth int) {
	if s.cfg.QueryLog == nil {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	logfmt.EmitQuery(s.cfg.QueryLog, logfmt.QueryRecord{
		Seq:    seq,
		Op:     string(q.Op),
		Src:    uint32(q.Source),
		Dst:    uint32(q.Target),
		Status: string(status),
		Depth:  depth,
	})
}

// Submit runs one query through admission, the queue, and an
// executor, blocking until the response (or ctx cancellation while
// queued — the executor will also observe the cancellation through
// its hook and abandon the kernel at the next frontier).
func (s *Server) Submit(ctx context.Context, q Query) Response {
	seq := s.seq.Add(1)
	if s.closed.Load() {
		return Response{Op: q.Op, Source: q.Source, Target: q.Target,
			Status: StatusError, Err: "server closed"}
	}
	if err := q.validate(s.csr.NumVertices, s.el.Weighted, s.cfg.FaultInjection); err != nil {
		s.metrics.Rejected.Add(1)
		return Response{Op: q.Op, Source: q.Source, Target: q.Target,
			Status: StatusError, Err: err.Error()}
	}
	s.metrics.Offered.Add(1)
	now := time.Since(s.started).Seconds()
	depth := s.admit.Depth()
	dec := s.admit.tryAdmit(now, q.degradable(s.el.Weighted))
	switch dec {
	case shedQueueFull:
		s.metrics.ShedQueueFull.Add(1)
		s.logShed(seq, q, StatusShed, depth)
		return Response{Op: q.Op, Source: q.Source, Target: q.Target,
			Status: StatusShed, Err: "queue full"}
	case shedThrottled:
		s.metrics.ShedThrottled.Add(1)
		s.logShed(seq, q, StatusShed, depth)
		return Response{Op: q.Op, Source: q.Source, Target: q.Target,
			Status: StatusShed, Err: "rate limited"}
	}
	s.metrics.Admitted.Add(1)
	budget := q.DeadlineSec
	if budget <= 0 {
		budget = s.cfg.DefaultDeadlineSec
	}
	p := &pending{
		ctx:      ctx,
		q:        q,
		seq:      seq,
		budget:   budget,
		degraded: dec == admitDegraded,
		depth:    depth,
		resC:     make(chan Response, 1),
	}
	// Never blocks: entries in the channel cannot exceed the admitted
	// depth, and depth <= QueueCap == cap(queue) by the admitter.
	s.queue <- p
	select {
	case resp := <-p.resC:
		return resp
	case <-ctx.Done():
		// The executor will still process p (and observe ctx through
		// the hook); the buffered resC absorbs its response.
		return Response{Op: q.Op, Source: q.Source, Target: q.Target,
			Status: StatusDeadline, Err: ctx.Err().Error()}
	}
}

// Refresh recomputes the PR/WCC vectors on an executor, swapping them
// in atomically. It shares the bounded queue (a refresh is heavy
// executor work and must not bypass overload protection) but not the
// token bucket.
func (s *Server) Refresh(ctx context.Context) error {
	if s.closed.Load() {
		return fmt.Errorf("server closed")
	}
	if !s.admit.tryReserve() {
		return fmt.Errorf("server overloaded: refresh shed (queue full)")
	}
	p := &pending{ctx: ctx, refresh: true, seq: s.seq.Add(1), resC: make(chan Response, 1)}
	s.queue <- p
	select {
	case resp := <-p.resC:
		if resp.Status != StatusOK {
			return fmt.Errorf("refresh failed: %s", resp.Err)
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
